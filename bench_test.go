package blob

// Benchmark harness regenerating the paper's evaluation (§V, Figure 3).
// Each benchmark reports the paper's metric through b.ReportMetric:
//
//   - Figure 3(a): metadata READ overhead (ms) vs segment size, for
//     10/20/40 storage nodes, single client, cache disabled;
//   - Figure 3(b): metadata WRITE overhead (ms), same sweep;
//   - Figure 3(c): average per-client bandwidth (MB/s) vs number of
//     concurrent clients, series Read / Write / Read (cached metadata).
//
// Absolute numbers come from the simulated Grid'5000 fabric
// (internal/netsim) at reduced scale; the shapes are the reproduction
// target. cmd/blobbench prints the full tables, EXPERIMENTS.md records
// paper-vs-measured values.
//
// Ablation benchmarks cover the design choices: RPC aggregation, client
// metadata cache, placement strategy, page size and replication factor.

import (
	"fmt"
	"testing"

	"blob/internal/bench"
)

// figScale returns the benchmark scaling; kept small enough that the
// whole -bench=. sweep finishes in minutes.
func figScale() bench.Scale {
	sc := bench.DefaultScale()
	sc.Iterations = 3
	return sc
}

// fig3SegmentsPages mirrors the paper's 64 KB..16 MB sweep at 64 KB
// pages: 1..256 pages, in the same powers of four.
var fig3SegmentsPages = []uint64{1, 4, 16, 64, 256}

// fig3Providers mirrors the paper's 10/20/40 storage-node deployments.
var fig3Providers = []int{10, 20, 40}

func BenchmarkFig3aMetadataRead(b *testing.B) {
	sc := figScale()
	for _, prov := range fig3Providers {
		for _, seg := range fig3SegmentsPages {
			name := fmt.Sprintf("providers=%d/segKB=%d", prov, seg*sc.PageSize/1024)
			b.Run(name, func(b *testing.B) {
				var last bench.MetaPoint
				for i := 0; i < b.N; i++ {
					pt, err := bench.Fig3aMetadataRead(prov, seg, sc)
					if err != nil {
						b.Fatal(err)
					}
					last = pt
				}
				b.ReportMetric(last.MeanTime.Seconds()*1e3, "ms/op-meta-read")
			})
		}
	}
}

func BenchmarkFig3bMetadataWrite(b *testing.B) {
	sc := figScale()
	for _, prov := range fig3Providers {
		for _, seg := range fig3SegmentsPages {
			name := fmt.Sprintf("providers=%d/segKB=%d", prov, seg*sc.PageSize/1024)
			b.Run(name, func(b *testing.B) {
				var last bench.MetaPoint
				for i := 0; i < b.N; i++ {
					pt, err := bench.Fig3bMetadataWrite(prov, seg, sc)
					if err != nil {
						b.Fatal(err)
					}
					last = pt
				}
				b.ReportMetric(last.MeanTime.Seconds()*1e3, "ms/op-meta-write")
			})
		}
	}
}

// fig3cClients mirrors the paper's 0..20 concurrent-client x-axis.
var fig3cClients = []int{1, 4, 8, 16, 20}

func BenchmarkFig3cThroughput(b *testing.B) {
	sc := figScale()
	fs := bench.DefaultFig3cScale()
	fs.Iterations = 5
	for _, mode := range []bench.Mode{bench.ModeRead, bench.ModeWrite, bench.ModeReadCached} {
		for _, n := range fig3cClients {
			name := fmt.Sprintf("%s/clients=%d", sanitize(mode.String()), n)
			b.Run(name, func(b *testing.B) {
				var last bench.ThroughputPoint
				for i := 0; i < b.N; i++ {
					pt, err := bench.Fig3cThroughput(n, mode, fs, sc)
					if err != nil {
						b.Fatal(err)
					}
					last = pt
				}
				b.ReportMetric(last.PerClientMBps, "MB/s/client")
				b.ReportMetric(last.AggregateMBps, "MB/s-total")
			})
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkAblationBatching(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblateBatching(10, 64, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationCache(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblateCache(10, 64, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblatePageSize(10, 256<<10, []uint64{4 << 10, 16 << 10, 64 << 10}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationReplication(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblateReplication(10, 16, []int{1, 2, 3}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblatePlacement(10, 20, 16, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

// metricName compresses an ablation point name into a benchstat-safe
// unit label.
func metricName(p bench.AblationPoint) string {
	out := make([]rune, 0, len(p.Name))
	for _, r := range p.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',':
			out = append(out, '-')
		}
	}
	return string(out) + "-" + p.Unit
}

func BenchmarkAblationHotPath(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblateHotPath(8, 64, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.WriteAllocReductionPct, "write-alloc-reduction-%")
			b.ReportMetric(rep.ReadAllocReductionPct, "read-alloc-reduction-%")
			b.ReportMetric(rep.WriteBytesReductionPct, "write-bytes-reduction-%")
			b.ReportMetric(rep.ReadBytesReductionPct, "read-bytes-reduction-%")
			b.ReportMetric(rep.WriteMeanSpeedupPct, "write-mean-speedup-%")
		}
	}
}

func BenchmarkAblationErasure(b *testing.B) {
	sc := figScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblateErasure(8, 16, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

// The workload-suite scenarios (docs/workloads.md) at benchmark scale:
// reduced read counts so -bench=. stays in CI budget; cmd/blobbench
// runs the full-scale versions for BENCH_8.json.

func BenchmarkAblationIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblateIngest(4, 60)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range rep.Points() {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationSwarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblateSwarm(8, 80)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range rep.Points() {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}

func BenchmarkAblationTimeTravel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblateTimeTravel(6, []int{1, 4}, 1, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range rep.TablePoints() {
				b.ReportMetric(p.Value, metricName(p))
			}
		}
	}
}
