package blob

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackageDocs is the documentation gate CI enforces: every
// package under internal/ must carry exactly one package-level doc
// comment, so `go doc blob/internal/<pkg>` describes each layer of the
// system and the description has one unambiguous home.
func TestInternalPackageDocs(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkg := d.Name()
		files, err := filepath.Glob(filepath.Join("internal", pkg, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var docFiles []string
		for _, path := range files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if f.Doc != nil {
				docFiles = append(docFiles, path)
			}
		}
		switch len(docFiles) {
		case 0:
			t.Errorf("internal/%s has no package doc comment; add one (`// Package %s ...`) so `go doc` describes the layer", pkg, pkg)
		case 1:
			// good
		default:
			t.Errorf("internal/%s has package doc comments in %v; keep exactly one", pkg, docFiles)
		}
	}
}
