module blob

go 1.24
