package blob

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repo's docs.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks is the link-checker half of the docs gate CI enforces:
// every relative link in README.md and docs/*.md must resolve to a file
// (or directory) in the repository, so the cross-referenced spec set
// never rots as files move. External URLs are out of scope — CI must
// not depend on the network.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("doc set too small (%v); the gate would check nothing", files)
	}

	for _, file := range files {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
		}
	}
}

// TestDocCrossReferences pins the documentation topology itself: the
// normative specs must be reachable from the README and from the
// architecture overview, so a reader landing anywhere finds them.
func TestDocCrossReferences(t *testing.T) {
	wants := map[string][]string{
		"README.md":              {"docs/architecture.md", "docs/diskstore-format.md", "docs/replication.md", "docs/erasure.md", "docs/perf.md", "docs/observability.md", "docs/vmanager-group.md", "docs/workloads.md", "docs/robustness.md"},
		"docs/architecture.md":   {"diskstore-format.md", "replication.md", "erasure.md", "perf.md", "observability.md", "vmanager-group.md", "workloads.md", "robustness.md"},
		"docs/workloads.md":      {"architecture.md", "perf.md"},
		"docs/erasure.md":        {"replication.md", "architecture.md"},
		"docs/replication.md":    {"erasure.md", "architecture.md"},
		"docs/perf.md":           {"architecture.md"},
		"docs/observability.md":  {"architecture.md", "perf.md", "replication.md", "vmanager-group.md", "robustness.md"},
		"docs/vmanager-group.md": {"architecture.md", "replication.md"},
		"docs/robustness.md":     {"architecture.md", "observability.md", "replication.md", "erasure.md", "workloads.md", "vmanager-group.md"},
	}
	for file, targets := range wants {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range targets {
			if !strings.Contains(string(body), "("+target+")") {
				t.Errorf("%s does not link %s", file, target)
			}
		}
	}
}
