package provider

import (
	"errors"
	"log"

	"blob/internal/diskstore"
	"blob/internal/stats"
)

// DiskStore is the persistent PageStore backend: a thin adapter over
// internal/diskstore's crash-recoverable segment log. Capacity is
// enforced by the diskstore on live page payload bytes — the same
// accounting the RAM store uses — so the load balancer's view is
// backend-agnostic; the extra disk occupied by dead records and
// tombstones shows up in the Stats disk fields and shrinks as the
// compactor runs.
type DiskStore struct {
	ds       *diskstore.Store
	capacity int64

	Puts   stats.Counter
	Gets   stats.Counter
	Misses stats.Counter
}

// NewDiskStore opens (or recovers) a persistent store in opts.Dir,
// bounded by capacity live bytes (0 = unlimited; overrides
// opts.Capacity).
func NewDiskStore(opts diskstore.Options, capacity int64) (*DiskStore, error) {
	opts.Capacity = capacity
	ds, err := diskstore.Open(opts)
	if err != nil {
		return nil, err
	}
	return &DiskStore{ds: ds, capacity: capacity}, nil
}

// PutPages implements PageStore.
func (d *DiskStore) PutPages(pages []Page) error {
	batch := make([]diskstore.Page, len(pages))
	for i, p := range pages {
		batch[i] = diskstore.Page{Blob: p.Blob, Write: p.Write, Rel: p.RelPage, Data: p.Data}
	}
	stored, err := d.ds.PutPages(batch)
	if errors.Is(err, diskstore.ErrCapacity) {
		return ErrFull
	}
	if err != nil {
		return err
	}
	d.Puts.Add(int64(stored))
	return nil
}

// GetPage implements PageStore.
func (d *DiskStore) GetPage(blob, write uint64, rel uint32) ([]byte, bool) {
	data, ok := d.ds.GetPage(blob, write, rel)
	d.Gets.Inc()
	if !ok {
		d.Misses.Inc()
	}
	return data, ok
}

// DeletePages implements PageStore. A failure to append the tombstone
// leaves the pages in place (and logs), so the GC's count stays honest.
func (d *DiskStore) DeletePages(blob, write uint64, rels []uint32) int {
	n, err := d.ds.DeletePages(blob, write, rels)
	if err != nil {
		log.Printf("provider: disk delete pages (%d,%d): %v", blob, write, err)
	}
	return n
}

// DeleteWrite implements PageStore.
func (d *DiskStore) DeleteWrite(blob, write uint64) int {
	n, err := d.ds.DeleteWrite(blob, write)
	if err != nil {
		log.Printf("provider: disk delete write (%d,%d): %v", blob, write, err)
	}
	return n
}

// ForEachPage implements PageStore.
func (d *DiskStore) ForEachPage(fn func(blob, write uint64, rel uint32, data []byte)) {
	d.ds.ForEachPage(fn)
}

// Snapshot implements PageStore.
func (d *DiskStore) Snapshot() Stats {
	ds := d.ds.Stats()
	return Stats{
		BytesUsed: ds.PageBytes,
		PageCount: ds.Pages,
		Capacity:  d.capacity,
		Puts:      d.Puts.Value(),
		Gets:      d.Gets.Value(),
		Misses:    d.Misses.Value(),
		DiskBytes: ds.DiskBytes,
		DiskLive:  ds.LiveBytes,
		Segments:  ds.Segments,

		ReplayedBytes:    ds.ReplayedBytes,
		SidecarBytes:     ds.SidecarBytes,
		SegmentsReplayed: ds.SegmentsReplayed,
		SidecarsLoaded:   ds.SidecarsLoaded,
	}
}

// BloomDigest implements the optional BloomSummary capability with the
// per-segment filters the diskstore's index sidecars already maintain —
// no page data is read and no filter is rebuilt.
func (d *DiskStore) BloomDigest() (Digest, bool) {
	return Digest{Filters: d.ds.BloomDigest()}, true
}

// ForEachWrite implements the optional WriteLister capability from the
// diskstore's in-memory index; no segment data is read.
func (d *DiskStore) ForEachWrite(fn func(blob, write uint64, pages int)) {
	d.ds.ForEachWrite(fn)
}

// CompactOnce exposes the underlying compactor for operational tooling
// and tests; background compaction is configured through
// diskstore.Options.CompactEvery.
func (d *DiskStore) CompactOnce() (bool, error) { return d.ds.CompactOnce() }

// Close fsyncs and closes the underlying segment files.
func (d *DiskStore) Close() error { return d.ds.Close() }
