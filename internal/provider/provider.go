// Package provider implements the data providers: the nodes that
// physically store blob pages. A WRITE never updates a page in place —
// each write stores a fresh set of pages keyed by the client-generated
// write identity — so a store is append-only until the garbage collector
// explicitly removes the pages of collected versions.
//
// Storage is pluggable behind the PageStore interface: the in-RAM Store
// (the paper's design), the persistent DiskStore over
// internal/diskstore, and the write-through CachedStore RAM tier all
// implement it, and the RPC Service hosts any of them.
//
// Pages are keyed (blobID, writeID, relPage). The write identity rather
// than the version number keys the data because, per the paper's
// protocol, pages are pushed to providers *before* the client asks the
// version manager for a version number.
package provider

import (
	"errors"
	"fmt"
	"sync"

	"blob/internal/stats"
	"blob/internal/wire"
)

// RPC method identifiers for the data provider service (0x03xx block).
const (
	MPutPages    = 0x0301
	MGetPages    = 0x0302
	MDeleteWrite = 0x0303
	MStats       = 0x0304
	MDeletePages = 0x0305
	// Repair protocol (docs/replication.md): enumerate holdings with a
	// bloom digest; pull missing pages from a named healthy peer.
	MListWrites = 0x0306
	MPullPages  = 0x0307

	// MLatency serves the provider's get/put latency histogram
	// snapshots for the monitor's cluster-wide quantile rollups.
	MLatency = 0x0308
)

// ErrFull is returned when a put would exceed the provider's capacity.
var ErrFull = errors.New("provider: capacity exceeded")

// PageStore is the storage backend of one data provider. Store (RAM),
// DiskStore (persistent segment log) and CachedStore (write-through RAM
// cache over another backend) implement it; the RPC Service serves any
// of them. Implementations must be safe for concurrent use — the paper's
// access model guarantees a page is never updated in place, so backends
// only ever add, serve and (on GC order) remove immutable pages.
type PageStore interface {
	// PutPages stores a batch of pages. Re-putting an existing page must
	// be idempotent (first wins) so client retries are safe. Returns
	// ErrFull when the batch would exceed the backend's capacity.
	PutPages(pages []Page) error
	// GetPage returns one page's bytes, or false if absent.
	GetPage(blob, write uint64, rel uint32) ([]byte, bool)
	// DeletePages removes specific pages of a write, returning how many
	// were present. Used by the GC when part of a write is superseded.
	DeletePages(blob, write uint64, rels []uint32) int
	// DeleteWrite removes every page of (blob, write), returning the
	// number of pages freed.
	DeleteWrite(blob, write uint64) int
	// ForEachPage visits every stored page; iteration order is
	// unspecified.
	ForEachPage(fn func(blob, write uint64, rel uint32, data []byte))
	// Snapshot returns current usage statistics.
	Snapshot() Stats
}

// pageShards must be a power of two.
const pageShards = 32

// writeKey identifies all pages of one write on one blob.
type writeKey struct {
	blob  uint64
	write uint64
}

// Store is the in-RAM page store of a single data provider.
type Store struct {
	capacity int64 // bytes; 0 means unlimited

	shards [pageShards]pageShard

	// Counters exposed through MStats and used by the load balancer.
	BytesUsed stats.Gauge
	PageCount stats.Gauge
	Puts      stats.Counter
	Gets      stats.Counter
	Misses    stats.Counter
}

type pageShard struct {
	mu sync.RWMutex
	m  map[writeKey]map[uint32][]byte
}

// NewStore creates a store bounded by capacity bytes (0 = unlimited).
func NewStore(capacity int64) *Store {
	s := &Store{capacity: capacity}
	for i := range s.shards {
		s.shards[i].m = make(map[writeKey]map[uint32][]byte)
	}
	return s
}

func (s *Store) shard(k writeKey) *pageShard {
	return &s.shards[wire.HashFields(k.blob, k.write)&(pageShards-1)]
}

// Page is one page upload or download unit.
type Page struct {
	Blob    uint64
	Write   uint64
	RelPage uint32
	Data    []byte
}

// PutPages stores a batch of pages atomically with respect to capacity
// accounting. Re-putting an existing page is idempotent (first wins),
// which makes client retries after partial failures safe — duplicates
// don't count against capacity, so a retry of a batch that already
// landed never trips ErrFull.
func (s *Store) PutPages(pages []Page) error {
	if s.capacity > 0 {
		var total int64
		for _, p := range pages {
			k := writeKey{p.Blob, p.Write}
			sh := s.shard(k)
			sh.mu.RLock()
			_, exists := sh.m[k][p.RelPage]
			sh.mu.RUnlock()
			if !exists {
				total += int64(len(p.Data))
			}
		}
		if s.BytesUsed.Value()+total > s.capacity {
			return ErrFull
		}
	}
	for _, p := range pages {
		k := writeKey{p.Blob, p.Write}
		sh := s.shard(k)
		sh.mu.Lock()
		wm := sh.m[k]
		if wm == nil {
			wm = make(map[uint32][]byte)
			sh.m[k] = wm
		}
		if _, exists := wm[p.RelPage]; !exists {
			buf := make([]byte, len(p.Data))
			copy(buf, p.Data)
			wm[p.RelPage] = buf
			s.BytesUsed.Add(int64(len(p.Data)))
			s.PageCount.Add(1)
			s.Puts.Inc()
		}
		sh.mu.Unlock()
	}
	return nil
}

// GetPage returns one page's bytes.
func (s *Store) GetPage(blob, write uint64, rel uint32) ([]byte, bool) {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.RLock()
	var data []byte
	var ok bool
	if wm := sh.m[k]; wm != nil {
		data, ok = wm[rel]
	}
	sh.mu.RUnlock()
	s.Gets.Inc()
	if !ok {
		s.Misses.Inc()
	}
	return data, ok
}

// DeletePages removes specific pages of a write, returning how many were
// present. The garbage collector uses this when only part of a write has
// been superseded.
func (s *Store) DeletePages(blob, write uint64, rels []uint32) int {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.Lock()
	wm := sh.m[k]
	n := 0
	var freed int64
	for _, rel := range rels {
		if d, ok := wm[rel]; ok {
			freed += int64(len(d))
			delete(wm, rel)
			n++
		}
	}
	if wm != nil && len(wm) == 0 {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
	if n > 0 {
		s.BytesUsed.Add(-freed)
		s.PageCount.Add(-int64(n))
	}
	return n
}

// DeleteWrite removes every page belonging to (blob, write), returning
// the number of pages freed. Used by the garbage collector.
func (s *Store) DeleteWrite(blob, write uint64) int {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.Lock()
	wm := sh.m[k]
	var freed int64
	for _, d := range wm {
		freed += int64(len(d))
	}
	n := len(wm)
	delete(sh.m, k)
	sh.mu.Unlock()
	if n > 0 {
		s.BytesUsed.Add(-freed)
		s.PageCount.Add(-int64(n))
	}
	return n
}

// ForEachPage visits every stored page. The data slice is the store's
// internal buffer; mutating it is only legitimate for fault-injection
// tests. Iteration order is unspecified.
func (s *Store) ForEachPage(fn func(blob, write uint64, rel uint32, data []byte)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, wm := range sh.m {
			for rel, data := range wm {
				fn(k.blob, k.write, rel, data)
			}
		}
		sh.mu.Unlock()
	}
}

// BloomDigest implements the optional BloomSummary capability: one
// filter built over the live index. Unlike the diskstore's per-segment
// filters this is computed per call; the shard walk touches keys only,
// never page data. Pages put concurrently with the walk may be missing
// from the digest — consumers must treat a digest as a point-in-time
// snapshot (docs/replication.md §3).
func (s *Store) BloomDigest() (Digest, bool) {
	b := wire.NewBloom(int(s.PageCount.Value()))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, wm := range sh.m {
			for rel := range wm {
				b.Add(k.blob, k.write, rel)
			}
		}
		sh.mu.RUnlock()
	}
	if s.PageCount.Value() == 0 {
		return Digest{}, true // empty store: zero filters, holds nothing
	}
	return Digest{Filters: []*wire.Bloom{b}}, true
}

// ForEachWrite implements the optional WriteLister capability without
// touching page data. Iteration order is unspecified.
func (s *Store) ForEachWrite(fn func(blob, write uint64, pages int)) {
	type entry struct {
		k     writeKey
		pages int
	}
	var entries []entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, wm := range sh.m {
			entries = append(entries, entry{k, len(wm)})
		}
		sh.mu.RUnlock()
	}
	for _, e := range entries {
		fn(e.k.blob, e.k.write, e.pages)
	}
}

// Stats is the load/usage snapshot served over MStats and piggybacked on
// heartbeats to the provider manager. The disk and cache fields are zero
// for backends without the corresponding tier.
type Stats struct {
	BytesUsed int64
	PageCount int64
	Capacity  int64
	Puts      int64
	Gets      int64
	Misses    int64
	ActiveOps int64

	// Disk tier (DiskStore): total segment-file bytes, the portion
	// occupied by live page records, and the segment-file count.
	DiskBytes int64
	DiskLive  int64
	Segments  int64

	// Disk-tier restart telemetry: segment bytes fully replayed at the
	// last open versus index-sidecar bytes read in their place, and the
	// per-path segment counts. A healthy restart replays only the active
	// tail (SegmentsReplayed == 1); higher values mean sidecars were
	// missing or stale. See docs/diskstore-format.md.
	ReplayedBytes    int64
	SidecarBytes     int64
	SegmentsReplayed int64
	SidecarsLoaded   int64

	// Cache tier (CachedStore): bytes resident in the RAM cache and
	// reads served from it.
	CacheBytes int64
	CacheHits  int64

	// Repair tier (docs/replication.md): pages this provider pulled from
	// peers over MPullPages since its service started, the page payload
	// bytes transferred for them, and lookups the provider resolved from
	// its bloom digest / local index instead of transferring data (pull
	// candidates it already held). Counters belong to the running
	// service: a restarted provider reports only its own repair work,
	// never its predecessor's.
	RepairedPages int64
	RepairBytes   int64
	BloomSkips    int64
}

// LiveRatio is the fraction of on-disk bytes still live (1 when the
// backend has no disk tier or no segments). Values well below 1 mean
// the compactor has reclaimable garbage.
func (st Stats) LiveRatio() float64 {
	if st.DiskBytes == 0 {
		return 1
	}
	return float64(st.DiskLive) / float64(st.DiskBytes)
}

// Snapshot returns current statistics.
func (s *Store) Snapshot() Stats {
	return Stats{
		BytesUsed: s.BytesUsed.Value(),
		PageCount: s.PageCount.Value(),
		Capacity:  s.capacity,
		Puts:      s.Puts.Value(),
		Gets:      s.Gets.Value(),
		Misses:    s.Misses.Value(),
	}
}

// Client-side request encoders, shared by the blob client and tests.

// EncodePutPages builds an MPutPages request body for pages of one write.
// All pages must share the same blob and write identity.
func EncodePutPages(blob, write uint64, rels []uint32, datas [][]byte) []byte {
	size := 24
	for _, d := range datas {
		size += len(d) + 8
	}
	w := wire.NewWriter(size)
	w.Uint64(blob)
	w.Uint64(write)
	w.Uvarint(uint64(len(rels)))
	for i := range rels {
		w.Uint32(rels[i])
		w.BytesField(datas[i])
	}
	return w.Bytes()
}

// PageRef identifies one page to fetch.
type PageRef struct {
	Blob    uint64
	Write   uint64
	RelPage uint32
}

// EncodeGetPages builds an MGetPages request body.
func EncodeGetPages(refs []PageRef) []byte {
	w := wire.NewWriter(4 + 20*len(refs))
	w.Uvarint(uint64(len(refs)))
	for _, p := range refs {
		w.Uint64(p.Blob)
		w.Uint64(p.Write)
		w.Uint32(p.RelPage)
	}
	return w.Bytes()
}

// DecodeGetPages parses an MGetPages response into per-request results;
// a nil slice means the page was absent on this provider.
func DecodeGetPages(body []byte, want int) ([][]byte, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	if n != want {
		return nil, fmt.Errorf("provider: response count %d != %d", n, want)
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			out[i] = r.BytesCopy()
		}
	}
	return out, r.Err()
}

// EncodeDeleteWrite builds an MDeleteWrite request body.
func EncodeDeleteWrite(blob, write uint64) []byte {
	w := wire.NewWriter(16)
	w.Uint64(blob)
	w.Uint64(write)
	return w.Bytes()
}

// EncodeDeletePages builds an MDeletePages request body.
func EncodeDeletePages(blob, write uint64, rels []uint32) []byte {
	w := wire.NewWriter(24 + 4*len(rels))
	w.Uint64(blob)
	w.Uint64(write)
	w.Uint32Slice(rels)
	return w.Bytes()
}
