// Package provider implements the data providers: the nodes that
// physically store blob pages in their local RAM. A WRITE never updates a
// page in place — each write stores a fresh set of pages keyed by the
// client-generated write identity — so the store is append-only until the
// garbage collector explicitly removes the pages of collected versions.
//
// Pages are keyed (blobID, writeID, relPage). The write identity rather
// than the version number keys the data because, per the paper's
// protocol, pages are pushed to providers *before* the client asks the
// version manager for a version number.
package provider

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/wire"
)

// RPC method identifiers for the data provider service (0x03xx block).
const (
	MPutPages    = 0x0301
	MGetPages    = 0x0302
	MDeleteWrite = 0x0303
	MStats       = 0x0304
	MDeletePages = 0x0305
)

// ErrFull is returned when a put would exceed the provider's capacity.
var ErrFull = errors.New("provider: capacity exceeded")

// pageShards must be a power of two.
const pageShards = 32

// writeKey identifies all pages of one write on one blob.
type writeKey struct {
	blob  uint64
	write uint64
}

// Store is the in-RAM page store of a single data provider.
type Store struct {
	capacity int64 // bytes; 0 means unlimited

	shards [pageShards]pageShard

	// Counters exposed through MStats and used by the load balancer.
	BytesUsed stats.Gauge
	PageCount stats.Gauge
	Puts      stats.Counter
	Gets      stats.Counter
	Misses    stats.Counter
	ActiveOps stats.Gauge
}

type pageShard struct {
	mu sync.RWMutex
	m  map[writeKey]map[uint32][]byte
}

// NewStore creates a store bounded by capacity bytes (0 = unlimited).
func NewStore(capacity int64) *Store {
	s := &Store{capacity: capacity}
	for i := range s.shards {
		s.shards[i].m = make(map[writeKey]map[uint32][]byte)
	}
	return s
}

func (s *Store) shard(k writeKey) *pageShard {
	return &s.shards[wire.HashFields(k.blob, k.write)&(pageShards-1)]
}

// Page is one page upload or download unit.
type Page struct {
	Blob    uint64
	Write   uint64
	RelPage uint32
	Data    []byte
}

// PutPages stores a batch of pages atomically with respect to capacity
// accounting. Re-putting an existing page is idempotent (first wins),
// which makes client retries after partial failures safe.
func (s *Store) PutPages(pages []Page) error {
	var total int64
	for _, p := range pages {
		total += int64(len(p.Data))
	}
	if s.capacity > 0 && s.BytesUsed.Value()+total > s.capacity {
		return ErrFull
	}
	for _, p := range pages {
		k := writeKey{p.Blob, p.Write}
		sh := s.shard(k)
		sh.mu.Lock()
		wm := sh.m[k]
		if wm == nil {
			wm = make(map[uint32][]byte)
			sh.m[k] = wm
		}
		if _, exists := wm[p.RelPage]; !exists {
			buf := make([]byte, len(p.Data))
			copy(buf, p.Data)
			wm[p.RelPage] = buf
			s.BytesUsed.Add(int64(len(p.Data)))
			s.PageCount.Add(1)
			s.Puts.Inc()
		}
		sh.mu.Unlock()
	}
	return nil
}

// GetPage returns one page's bytes.
func (s *Store) GetPage(blob, write uint64, rel uint32) ([]byte, bool) {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.RLock()
	var data []byte
	var ok bool
	if wm := sh.m[k]; wm != nil {
		data, ok = wm[rel]
	}
	sh.mu.RUnlock()
	s.Gets.Inc()
	if !ok {
		s.Misses.Inc()
	}
	return data, ok
}

// DeletePages removes specific pages of a write, returning how many were
// present. The garbage collector uses this when only part of a write has
// been superseded.
func (s *Store) DeletePages(blob, write uint64, rels []uint32) int {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.Lock()
	wm := sh.m[k]
	n := 0
	var freed int64
	for _, rel := range rels {
		if d, ok := wm[rel]; ok {
			freed += int64(len(d))
			delete(wm, rel)
			n++
		}
	}
	if wm != nil && len(wm) == 0 {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
	if n > 0 {
		s.BytesUsed.Add(-freed)
		s.PageCount.Add(-int64(n))
	}
	return n
}

// DeleteWrite removes every page belonging to (blob, write), returning
// the number of pages freed. Used by the garbage collector.
func (s *Store) DeleteWrite(blob, write uint64) int {
	k := writeKey{blob, write}
	sh := s.shard(k)
	sh.mu.Lock()
	wm := sh.m[k]
	var freed int64
	for _, d := range wm {
		freed += int64(len(d))
	}
	n := len(wm)
	delete(sh.m, k)
	sh.mu.Unlock()
	if n > 0 {
		s.BytesUsed.Add(-freed)
		s.PageCount.Add(-int64(n))
	}
	return n
}

// ForEachPage visits every stored page. The data slice is the store's
// internal buffer; mutating it is only legitimate for fault-injection
// tests. Iteration order is unspecified.
func (s *Store) ForEachPage(fn func(blob, write uint64, rel uint32, data []byte)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, wm := range sh.m {
			for rel, data := range wm {
				fn(k.blob, k.write, rel, data)
			}
		}
		sh.mu.Unlock()
	}
}

// Stats is the load/usage snapshot served over MStats and piggybacked on
// heartbeats to the provider manager.
type Stats struct {
	BytesUsed int64
	PageCount int64
	Capacity  int64
	Puts      int64
	Gets      int64
	Misses    int64
	ActiveOps int64
}

// Snapshot returns current statistics.
func (s *Store) Snapshot() Stats {
	return Stats{
		BytesUsed: s.BytesUsed.Value(),
		PageCount: s.PageCount.Value(),
		Capacity:  s.capacity,
		Puts:      s.Puts.Value(),
		Gets:      s.Gets.Value(),
		Misses:    s.Misses.Value(),
		ActiveOps: s.ActiveOps.Value(),
	}
}

// RegisterHandlers wires the provider's RPC methods onto srv.
func (s *Store) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MPutPages, s.handlePutPages)
	srv.Handle(MGetPages, s.handleGetPages)
	srv.Handle(MDeleteWrite, s.handleDeleteWrite)
	srv.Handle(MDeletePages, s.handleDeletePages)
	srv.Handle(MStats, s.handleStats)
}

// Wire formats.
//
//	MPutPages request:  u64 blob | u64 write | uvarint n | n × (u32 rel, bytes)
//	MGetPages request:  uvarint n | n × (u64 blob, u64 write, u32 rel)
//	MGetPages response: uvarint n | n × (bool found, bytes if found)

func (s *Store) handlePutPages(_ context.Context, body []byte) ([]byte, error) {
	s.ActiveOps.Add(1)
	defer s.ActiveOps.Add(-1)
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	n := int(r.Uvarint())
	pages := make([]Page, 0, n)
	for i := 0; i < n; i++ {
		rel := r.Uint32()
		data := r.BytesField()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("provider put: page %d: %w", i, err)
		}
		pages = append(pages, Page{Blob: blob, Write: write, RelPage: rel, Data: data})
	}
	if err := s.PutPages(pages); err != nil {
		return nil, err
	}
	return nil, nil
}

func (s *Store) handleGetPages(_ context.Context, body []byte) ([]byte, error) {
	s.ActiveOps.Add(1)
	defer s.ActiveOps.Add(-1)
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	w := wire.NewWriter(1 << 12)
	w.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		blob := r.Uint64()
		write := r.Uint64()
		rel := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("provider get: request %d: %w", i, err)
		}
		data, ok := s.GetPage(blob, write, rel)
		w.Bool(ok)
		if ok {
			w.BytesField(data)
		}
	}
	return w.Bytes(), nil
}

func (s *Store) handleDeleteWrite(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider delete: %w", err)
	}
	n := s.DeleteWrite(blob, write)
	w := wire.NewWriter(8)
	w.Uvarint(uint64(n))
	return w.Bytes(), nil
}

func (s *Store) handleDeletePages(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	rels := r.Uint32Slice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider delete pages: %w", err)
	}
	n := s.DeletePages(blob, write, rels)
	w := wire.NewWriter(8)
	w.Uvarint(uint64(n))
	return w.Bytes(), nil
}

func (s *Store) handleStats(_ context.Context, _ []byte) ([]byte, error) {
	st := s.Snapshot()
	w := wire.NewWriter(56)
	w.Varint(st.BytesUsed)
	w.Varint(st.PageCount)
	w.Varint(st.Capacity)
	w.Varint(st.Puts)
	w.Varint(st.Gets)
	w.Varint(st.Misses)
	w.Varint(st.ActiveOps)
	return w.Bytes(), nil
}

// DecodeStats parses an MStats response.
func DecodeStats(body []byte) (Stats, error) {
	r := wire.NewReader(body)
	st := Stats{
		BytesUsed: r.Varint(),
		PageCount: r.Varint(),
		Capacity:  r.Varint(),
		Puts:      r.Varint(),
		Gets:      r.Varint(),
		Misses:    r.Varint(),
		ActiveOps: r.Varint(),
	}
	return st, r.Err()
}

// Client-side request encoders, shared by the blob client and tests.

// EncodePutPages builds an MPutPages request body for pages of one write.
// All pages must share the same blob and write identity.
func EncodePutPages(blob, write uint64, rels []uint32, datas [][]byte) []byte {
	size := 24
	for _, d := range datas {
		size += len(d) + 8
	}
	w := wire.NewWriter(size)
	w.Uint64(blob)
	w.Uint64(write)
	w.Uvarint(uint64(len(rels)))
	for i := range rels {
		w.Uint32(rels[i])
		w.BytesField(datas[i])
	}
	return w.Bytes()
}

// PageRef identifies one page to fetch.
type PageRef struct {
	Blob    uint64
	Write   uint64
	RelPage uint32
}

// EncodeGetPages builds an MGetPages request body.
func EncodeGetPages(refs []PageRef) []byte {
	w := wire.NewWriter(4 + 20*len(refs))
	w.Uvarint(uint64(len(refs)))
	for _, p := range refs {
		w.Uint64(p.Blob)
		w.Uint64(p.Write)
		w.Uint32(p.RelPage)
	}
	return w.Bytes()
}

// DecodeGetPages parses an MGetPages response into per-request results;
// a nil slice means the page was absent on this provider.
func DecodeGetPages(body []byte, want int) ([][]byte, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	if n != want {
		return nil, fmt.Errorf("provider: response count %d != %d", n, want)
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			out[i] = r.BytesCopy()
		}
	}
	return out, r.Err()
}

// EncodeDeleteWrite builds an MDeleteWrite request body.
func EncodeDeleteWrite(blob, write uint64) []byte {
	w := wire.NewWriter(16)
	w.Uint64(blob)
	w.Uint64(write)
	return w.Bytes()
}

// EncodeDeletePages builds an MDeletePages request body.
func EncodeDeletePages(blob, write uint64, rels []uint32) []byte {
	w := wire.NewWriter(24 + 4*len(rels))
	w.Uint64(blob)
	w.Uint64(write)
	w.Uint32Slice(rels)
	return w.Bytes()
}
