package provider

// Tests for the zero-copy codecs: wire-format equivalence with the
// legacy pair, status semantics of DecodeGetPagesInto, and the
// allocation regression gates the hot path is held to.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// joinSegs flattens scatter-gather segments for comparison with the
// contiguous legacy encoding.
func joinSegs(segs [][]byte) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// TestEncodePutPagesVecEquivalent pins that the vectored encoder emits
// byte-identical frames to the legacy contiguous encoder, so either side
// of the ablation flag interoperates with any provider.
func TestEncodePutPagesVecEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, npages := range []int{0, 1, 3, 64} {
		rels := make([]uint32, npages)
		datas := make([][]byte, npages)
		for i := range rels {
			rels[i] = uint32(i * 7)
			datas[i] = make([]byte, 1+rng.Intn(4096))
			rng.Read(datas[i])
		}
		legacy := EncodePutPages(42, 99, rels, datas)
		vec := joinSegs(EncodePutPagesVec(42, 99, rels, datas))
		if !bytes.Equal(legacy, vec) {
			t.Fatalf("npages=%d: vectored encoding differs from legacy", npages)
		}
	}
}

// TestEncodePutPagesVecAliases pins the zero-copy property itself: the
// payload segments must alias the caller's buffers, not copies.
func TestEncodePutPagesVecAliases(t *testing.T) {
	data := []byte("the page payload")
	segs := EncodePutPagesVec(1, 2, []uint32{0}, [][]byte{data})
	found := false
	for _, s := range segs {
		if len(s) == len(data) && &s[0] == &data[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("no segment aliases the caller's page buffer")
	}
}

// TestDecodeGetPagesInto covers present, absent and wrong-size pages
// against the service's vectored encoder.
func TestDecodeGetPagesInto(t *testing.T) {
	st := NewStore(0)
	pageA := bytes.Repeat([]byte{0xAA}, 512)
	pageB := bytes.Repeat([]byte{0xBB}, 512)
	short := bytes.Repeat([]byte{0xCC}, 100)
	put := func(rel uint32, d []byte) {
		if err := st.PutPages([]Page{{Blob: 1, Write: 2, RelPage: rel, Data: d}}); err != nil {
			t.Fatal(err)
		}
	}
	put(0, pageA)
	put(1, pageB)
	put(3, short) // wrong size for a 512-byte destination

	sv := NewService(st)
	refs := []PageRef{
		{Blob: 1, Write: 2, RelPage: 0},
		{Blob: 1, Write: 2, RelPage: 1},
		{Blob: 1, Write: 2, RelPage: 2}, // absent
		{Blob: 1, Write: 2, RelPage: 3},
	}
	segs, err := sv.handleGetPages(context.Background(), EncodeGetPages(refs))
	if err != nil {
		t.Fatal(err)
	}
	body := joinSegs(segs)

	dsts := make([][]byte, len(refs))
	for i := range dsts {
		dsts[i] = make([]byte, 512)
	}
	status := make([]PageStatus, len(refs))
	if err := DecodeGetPagesInto(body, dsts, status); err != nil {
		t.Fatal(err)
	}
	want := []PageStatus{PageOK, PageOK, PageMissing, PageBad}
	for i, st := range status {
		if st != want[i] {
			t.Errorf("status[%d] = %d, want %d", i, st, want[i])
		}
	}
	if !bytes.Equal(dsts[0], pageA) || !bytes.Equal(dsts[1], pageB) {
		t.Error("destination bytes differ from stored pages")
	}

	// The legacy decoder must agree on the same body.
	datas, err := DecodeGetPages(body, len(refs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datas[0], pageA) || !bytes.Equal(datas[1], pageB) ||
		datas[2] != nil || !bytes.Equal(datas[3], short) {
		t.Error("legacy decode of vectored response differs")
	}
}

// TestEncodePutPagesVecAllocs is the allocation gate on the write-side
// codec: one header arena plus one segment list, independent of page
// count or payload size.
func TestEncodePutPagesVecAllocs(t *testing.T) {
	const npages = 64
	rels := make([]uint32, npages)
	datas := make([][]byte, npages)
	page := make([]byte, 4096)
	for i := range rels {
		rels[i] = uint32(i)
		datas[i] = page
	}
	avg := testing.AllocsPerRun(100, func() {
		EncodePutPagesVec(7, 8, rels, datas)
	})
	if avg > 2 {
		t.Fatalf("EncodePutPagesVec: %.1f allocs/op, want <= 2", avg)
	}
}

// TestDecodeGetPagesIntoAllocs is the allocation gate on the read-side
// codec: zero allocations — pages land straight in caller memory.
func TestDecodeGetPagesIntoAllocs(t *testing.T) {
	st := NewStore(0)
	const npages = 64
	refs := make([]PageRef, npages)
	for i := range refs {
		refs[i] = PageRef{Blob: 1, Write: 2, RelPage: uint32(i)}
		if err := st.PutPages([]Page{{Blob: 1, Write: 2, RelPage: uint32(i), Data: make([]byte, 4096)}}); err != nil {
			t.Fatal(err)
		}
	}
	sv := NewService(st)
	segs, err := sv.handleGetPages(context.Background(), EncodeGetPages(refs))
	if err != nil {
		t.Fatal(err)
	}
	body := joinSegs(segs)
	dsts := make([][]byte, npages)
	for i := range dsts {
		dsts[i] = make([]byte, 4096)
	}
	status := make([]PageStatus, npages)
	avg := testing.AllocsPerRun(100, func() {
		if err := DecodeGetPagesInto(body, dsts, status); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("DecodeGetPagesInto: %.1f allocs/op, want 0", avg)
	}
}

// TestHandleGetPagesVecAllocs bounds the provider-side serve path: the
// response is assembled from one arena, one segment list and the
// store's own page memory — no per-page payload copies.
func TestHandleGetPagesVecAllocs(t *testing.T) {
	st := NewStore(0)
	const npages = 64
	refs := make([]PageRef, npages)
	for i := range refs {
		refs[i] = PageRef{Blob: 1, Write: 2, RelPage: uint32(i)}
		if err := st.PutPages([]Page{{Blob: 1, Write: 2, RelPage: uint32(i), Data: make([]byte, 4096)}}); err != nil {
			t.Fatal(err)
		}
	}
	sv := NewService(st)
	body := EncodeGetPages(refs)
	ctx := context.Background()
	avg := testing.AllocsPerRun(100, func() {
		if _, err := sv.handleGetPages(ctx, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("handleGetPages: %.1f allocs/op, want <= 4", avg)
	}
}
