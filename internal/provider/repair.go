package provider

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blob/internal/throttle"
	"blob/internal/wire"
)

// Provider-to-provider repair protocol (normative spec:
// docs/replication.md). Two RPCs let a replica set heal itself without
// client involvement: MListWrites enumerates a provider's holdings per
// (blob, write) and piggybacks a bloom digest of its page keys, so a
// peer (or the repair agent driving it) can decide what is missing
// without transferring page lists; MPullPages then instructs the
// degraded provider to fetch the missing pages directly from a named
// healthy peer and store them locally. First-wins idempotent puts make
// every repair action safe to over-approximate and to retry.

// ErrRepairDisabled is returned by MPullPages on a provider whose
// service was not given a peer connection pool (Service.EnableRepair).
var ErrRepairDisabled = errors.New("provider: repair not enabled (no peer pool)")

// Digest is a conservative bloom summary of the page keys a provider
// may hold: MightContain returning false means the provider definitely
// held no live page under that key when the digest was taken; true
// means it may (live page, dead-but-unreclaimed record, or a bloom
// false positive). A digest is a point-in-time snapshot — consumers
// must tolerate staleness and never treat "might contain" as presence.
type Digest struct {
	// Filters are checked as a union: a key might be held if any filter
	// says so. The diskstore backend exports one filter per segment (the
	// same filters its index sidecars persist); RAM backends export one
	// filter over their whole index. Zero filters = holds nothing.
	Filters []*wire.Bloom
}

// MightContain reports whether the digested store may hold the page.
func (d Digest) MightContain(blob, write uint64, rel uint32) bool {
	for _, f := range d.Filters {
		if f.MightContain(blob, write, rel) {
			return true
		}
	}
	return false
}

// Encode appends the digest's wire form: uvarint filter count, then
// each filter in the layout of docs/diskstore-format.md §4.
func (d Digest) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(d.Filters)))
	for _, f := range d.Filters {
		f.Encode(w)
	}
}

// DecodeDigest reads a digest written by Encode. A structural defect
// poisons the reader and returns an empty digest.
func DecodeDigest(r *wire.Reader) Digest {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining())/8 {
		return Digest{}
	}
	fs := make([]*wire.Bloom, 0, n)
	for i := uint64(0); i < n; i++ {
		b := wire.DecodeBloom(r)
		if b == nil {
			return Digest{}
		}
		fs = append(fs, b)
	}
	return Digest{Filters: fs}
}

// BloomSummary is the optional PageStore capability behind MListWrites'
// digest: a backend that can summarize its holdings as bloom filters
// without touching page data. The in-RAM Store, the DiskStore (which
// reuses the per-segment filters its index sidecars already maintain)
// and CachedStore (delegating to its backend) all implement it. The
// boolean reports whether a summary exists at all — false means the
// backend cannot rule anything out and consumers must probe; true with
// zero filters means the store definitely holds nothing.
type BloomSummary interface {
	BloomDigest() (Digest, bool)
}

// WriteLister is the optional PageStore capability behind MListWrites'
// holdings enumeration: visit every (blob, write) with at least one
// live page and its live page count, without reading page data. Backends
// lacking it are enumerated through ForEachPage, which is correct but
// pays a full data scan.
type WriteLister interface {
	ForEachWrite(fn func(blob, write uint64, pages int))
}

// WriteRef identifies one write on one blob.
type WriteRef struct {
	Blob  uint64
	Write uint64
}

// WriteHolding is one write a provider holds pages for.
type WriteHolding struct {
	Blob  uint64
	Write uint64
	Pages int64 // live pages held for this write
}

// Holdings is a decoded MListWrites response.
type Holdings struct {
	Writes []WriteHolding
	// HasDigest distinguishes "backend cannot summarize" (false: nothing
	// can be ruled out) from "summarized as empty" (true, empty Digest).
	HasDigest bool
	Digest    Digest
}

// Holds returns the live page count for (blob, write), or 0.
func (h Holdings) Holds(blob, write uint64) int64 {
	for _, w := range h.Writes {
		if w.Blob == blob && w.Write == write {
			return w.Pages
		}
	}
	return 0
}

// EncodeListWrites builds an MListWrites request. An empty refs list
// asks for every write the provider holds.
func EncodeListWrites(refs []WriteRef) []byte {
	w := wire.NewWriter(4 + 16*len(refs))
	w.Uvarint(uint64(len(refs)))
	for _, ref := range refs {
		w.Uint64(ref.Blob)
		w.Uint64(ref.Write)
	}
	return w.Bytes()
}

// DecodeListWrites parses an MListWrites response.
func DecodeListWrites(body []byte) (Holdings, error) {
	r := wire.NewReader(body)
	n := r.Uvarint()
	if n > uint64(r.Remaining())/17 { // each entry ≥ 17 bytes
		return Holdings{}, fmt.Errorf("provider: holdings count %d exceeds body", n)
	}
	h := Holdings{Writes: make([]WriteHolding, 0, n)}
	for i := uint64(0); i < n; i++ {
		h.Writes = append(h.Writes, WriteHolding{
			Blob:  r.Uint64(),
			Write: r.Uint64(),
			Pages: int64(r.Uvarint()),
		})
	}
	h.HasDigest = r.Bool()
	if h.HasDigest {
		h.Digest = DecodeDigest(r)
	}
	return h, r.Err()
}

// PullRef is one page MPullPages should fetch, with the checksum the
// metadata leaf records for it (the puller verifies before storing).
type PullRef struct {
	Rel      uint32
	Checksum uint64
}

// EncodePullPages builds an MPullPages request: pull the listed pages of
// (blob, write) from the provider at peer and store them locally.
func EncodePullPages(peer string, blob, write uint64, refs []PullRef) []byte {
	w := wire.NewWriter(24 + len(peer) + 12*len(refs))
	w.String(peer)
	w.Uint64(blob)
	w.Uint64(write)
	w.Uvarint(uint64(len(refs)))
	for _, ref := range refs {
		w.Uint32(ref.Rel)
		w.Uint64(ref.Checksum)
	}
	return w.Bytes()
}

// PullResult is a decoded MPullPages response.
type PullResult struct {
	// Pulled pages were fetched from the peer and stored; Bytes counts
	// their payload. Skipped pages were already held locally and cost no
	// transfer. Pulled+Skipped < requested means the peer lacked pages
	// or served bytes failing the checksum — the caller should retry
	// against a different peer.
	Pulled  int64
	Bytes   int64
	Skipped int64
}

// DecodePullPages parses an MPullPages response.
func DecodePullPages(body []byte) (PullResult, error) {
	r := wire.NewReader(body)
	res := PullResult{
		Pulled:  int64(r.Uvarint()),
		Bytes:   int64(r.Uvarint()),
		Skipped: int64(r.Uvarint()),
	}
	return res, r.Err()
}

// EnableRepair arms the service's MPullPages handler: pool dials peer
// providers (it must dial from this provider's network vantage), and
// rateBytes > 0 throttles pulled page bytes through a token bucket so
// repair traffic cannot starve foreground reads and writes (the same
// policy compaction applies to its disk I/O).
func (sv *Service) EnableRepair(pool Caller, rateBytes int64) {
	sv.peers = pool
	if rateBytes > 0 {
		sv.pullTB = throttle.New(rateBytes)
	}
}

// Caller is the slice of rpc.Pool the pull handler needs; an interface
// so tests can fake a peer.
type Caller interface {
	Call(ctx context.Context, addr string, method uint32, body []byte) ([]byte, error)
}

// Wire formats (normative byte-level spec in docs/replication.md §4):
//
//	MListWrites request:  uvarint n | n × (u64 blob, u64 write)   (n = 0: all)
//	MListWrites response: uvarint m | m × (u64 blob, u64 write, uvarint pages)
//	                      | bool hasDigest | [digest]
//	MPullPages request:   string peer | u64 blob | u64 write
//	                      | uvarint n | n × (u32 rel, u64 checksum)
//	MPullPages response:  uvarint pulled | uvarint bytes | uvarint skipped

func (sv *Service) handleListWrites(ctx context.Context, body []byte) ([]byte, error) {
	sv.ActiveOps.Add(1)
	defer sv.ActiveOps.Add(-1)
	// Chaos mode covers the whole read-side serve path, holdings
	// listings included — so an injected gray failure is visible to the
	// repairer's sweeps (and trips its breakers), not only to clients
	// fetching pages.
	if err := sv.chaosEnter(ctx); err != nil {
		return nil, err
	}
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	var want map[WriteRef]bool
	if n > 0 {
		want = make(map[WriteRef]bool, n)
		for i := 0; i < n; i++ {
			want[WriteRef{Blob: r.Uint64(), Write: r.Uint64()}] = true
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider list writes: %w", err)
	}

	var holdings []WriteHolding
	visit := func(blob, write uint64, pages int) {
		if want != nil && !want[WriteRef{Blob: blob, Write: write}] {
			return
		}
		holdings = append(holdings, WriteHolding{Blob: blob, Write: write, Pages: int64(pages)})
	}
	if wl, ok := sv.store.(WriteLister); ok {
		wl.ForEachWrite(visit)
	} else {
		// Fallback for backends without the capability: derive the write
		// list from a full page walk (reads data; correct but slow).
		counts := make(map[WriteRef]int)
		sv.store.ForEachPage(func(blob, write uint64, _ uint32, _ []byte) {
			counts[WriteRef{Blob: blob, Write: write}]++
		})
		for ref, c := range counts {
			visit(ref.Blob, ref.Write, c)
		}
	}

	w := wire.NewWriter(64 + 24*len(holdings))
	w.Uvarint(uint64(len(holdings)))
	for _, h := range holdings {
		w.Uint64(h.Blob)
		w.Uint64(h.Write)
		w.Uvarint(uint64(h.Pages))
	}
	if bs, ok := sv.store.(BloomSummary); ok {
		if d, ok := bs.BloomDigest(); ok {
			w.Bool(true)
			d.Encode(w)
			return w.Bytes(), nil
		}
	}
	w.Bool(false)
	return w.Bytes(), nil
}

func (sv *Service) handlePullPages(ctx context.Context, body []byte) ([]byte, error) {
	sv.ActiveOps.Add(1)
	defer sv.ActiveOps.Add(-1)
	r := wire.NewReader(body)
	peer := r.String()
	blob := r.Uint64()
	write := r.Uint64()
	n := int(r.Uvarint())
	refs := make([]PullRef, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, PullRef{Rel: r.Uint32(), Checksum: r.Uint64()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider pull: %w", err)
	}
	if sv.peers == nil {
		return nil, ErrRepairDisabled
	}

	// Drop pages already held (exact local probe), so a re-driven repair
	// of a healthy provider transfers nothing and duplicate pulls from
	// racing repairers are free.
	var need []PullRef
	var skipped int64
	for _, ref := range refs {
		if _, ok := sv.store.GetPage(blob, write, ref.Rel); ok {
			skipped++
			sv.bloomSkips.Inc()
			continue
		}
		need = append(need, ref)
	}

	var pulled, bytes int64
	if len(need) > 0 {
		get := make([]PageRef, len(need))
		for i, ref := range need {
			get[i] = PageRef{Blob: blob, Write: write, RelPage: ref.Rel}
		}
		resp, err := sv.peers.Call(ctx, peer, MGetPages, EncodeGetPages(get))
		if err != nil {
			return nil, fmt.Errorf("provider pull from %s: %w", peer, err)
		}
		datas, err := DecodeGetPages(resp, len(get))
		if err != nil {
			return nil, err
		}
		var pages []Page
		for i, data := range datas {
			if data == nil || wire.Checksum64(data) != need[i].Checksum {
				continue // peer lacks it or served bad bytes: not repairable here
			}
			pages = append(pages, Page{Blob: blob, Write: write, RelPage: need[i].Rel, Data: data})
			bytes += int64(len(data))
		}
		if len(pages) > 0 {
			// Post-pay the throttle on the bytes actually transferred so
			// sustained repair cannot starve foreground traffic.
			if sv.pullTB != nil {
				if d := sv.pullTB.Reserve(bytes); d > 0 {
					t := time.NewTimer(d)
					select {
					case <-ctx.Done():
						t.Stop()
						return nil, ctx.Err()
					case <-t.C:
					}
				}
			}
			if err := sv.store.PutPages(pages); err != nil {
				return nil, fmt.Errorf("provider pull store: %w", err)
			}
			pulled = int64(len(pages))
			sv.repairedPages.Add(pulled)
			sv.repairBytes.Add(bytes)
		}
	}

	w := wire.NewWriter(24)
	w.Uvarint(uint64(pulled))
	w.Uvarint(uint64(bytes))
	w.Uvarint(uint64(skipped))
	return w.Bytes(), nil
}
