package provider

import "blob/internal/stats"

// statsMetric binds one Stats field to its exported metric series. The
// table drives RegisterMetrics and the coverage gate in metrics_test.go:
// every field carried on the MStats wire must appear here exactly once,
// so the RPC stats surface and the /metrics exposition cannot drift.
type statsMetric struct {
	field string // Stats struct field name, checked by reflection
	name  string // Prometheus series name
	gauge bool   // gauge (current level) vs counter (monotone total)
	get   func(Stats) int64
}

var statsMetrics = []statsMetric{
	{"BytesUsed", "provider_bytes_used", true, func(s Stats) int64 { return s.BytesUsed }},
	{"PageCount", "provider_pages", true, func(s Stats) int64 { return s.PageCount }},
	{"Capacity", "provider_capacity_bytes", true, func(s Stats) int64 { return s.Capacity }},
	{"Puts", "provider_puts_total", false, func(s Stats) int64 { return s.Puts }},
	{"Gets", "provider_gets_total", false, func(s Stats) int64 { return s.Gets }},
	{"Misses", "provider_misses_total", false, func(s Stats) int64 { return s.Misses }},
	{"ActiveOps", "provider_active_ops", true, func(s Stats) int64 { return s.ActiveOps }},
	{"DiskBytes", "provider_disk_bytes", true, func(s Stats) int64 { return s.DiskBytes }},
	{"DiskLive", "provider_disk_live_bytes", true, func(s Stats) int64 { return s.DiskLive }},
	{"Segments", "provider_disk_segments", true, func(s Stats) int64 { return s.Segments }},
	{"ReplayedBytes", "provider_restart_replayed_bytes_total", false, func(s Stats) int64 { return s.ReplayedBytes }},
	{"SidecarBytes", "provider_restart_sidecar_bytes_total", false, func(s Stats) int64 { return s.SidecarBytes }},
	{"SegmentsReplayed", "provider_restart_segments_replayed_total", false, func(s Stats) int64 { return s.SegmentsReplayed }},
	{"SidecarsLoaded", "provider_restart_sidecars_loaded_total", false, func(s Stats) int64 { return s.SidecarsLoaded }},
	{"CacheBytes", "provider_cache_bytes", true, func(s Stats) int64 { return s.CacheBytes }},
	{"CacheHits", "provider_cache_hits_total", false, func(s Stats) int64 { return s.CacheHits }},
	{"RepairedPages", "provider_repaired_pages_total", false, func(s Stats) int64 { return s.RepairedPages }},
	{"RepairBytes", "provider_repair_bytes_total", false, func(s Stats) int64 { return s.RepairBytes }},
	{"BloomSkips", "provider_bloom_skips_total", false, func(s Stats) int64 { return s.BloomSkips }},
}

// RegisterMetrics exports the service's statistics into reg as
// function-backed series evaluated at scrape time, one per Stats field.
func (sv *Service) RegisterMetrics(reg *stats.Registry) {
	for _, m := range statsMetrics {
		m := m
		f := func() int64 { return m.get(sv.Snapshot()) }
		if m.gauge {
			reg.GaugeFunc(m.name, f)
		} else {
			reg.CounterFunc(m.name, f)
		}
	}
}
