package provider

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"blob/internal/netsim"
	"blob/internal/rpc"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore(0)
	err := s.PutPages([]Page{
		{Blob: 1, Write: 10, RelPage: 0, Data: []byte("page zero")},
		{Blob: 1, Write: 10, RelPage: 1, Data: []byte("page one")},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.GetPage(1, 10, 1)
	if !ok || string(d) != "page one" {
		t.Errorf("GetPage = %q, %v", d, ok)
	}
	if _, ok := s.GetPage(1, 10, 2); ok {
		t.Error("absent page reported found")
	}
	if _, ok := s.GetPage(1, 11, 0); ok {
		t.Error("wrong write reported found")
	}
}

func TestPutIdempotent(t *testing.T) {
	s := NewStore(0)
	s.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: []byte("first")}})
	s.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: []byte("second")}})
	d, _ := s.GetPage(1, 1, 0)
	if string(d) != "first" {
		t.Errorf("page overwritten: %q", d)
	}
	if s.PageCount.Value() != 1 {
		t.Errorf("PageCount = %d, want 1", s.PageCount.Value())
	}
	if s.BytesUsed.Value() != 5 {
		t.Errorf("BytesUsed = %d, want 5", s.BytesUsed.Value())
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := NewStore(100)
	if err := s.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: make([]byte, 60)}}); err != nil {
		t.Fatal(err)
	}
	err := s.PutPages([]Page{{Blob: 1, Write: 2, RelPage: 0, Data: make([]byte, 60)}})
	if !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
	// After freeing space the put must succeed.
	s.DeleteWrite(1, 1)
	if err := s.PutPages([]Page{{Blob: 1, Write: 2, RelPage: 0, Data: make([]byte, 60)}}); err != nil {
		t.Errorf("put after delete: %v", err)
	}
}

func TestDeleteWriteFreesAccounting(t *testing.T) {
	s := NewStore(0)
	s.PutPages([]Page{
		{Blob: 1, Write: 1, RelPage: 0, Data: make([]byte, 10)},
		{Blob: 1, Write: 1, RelPage: 1, Data: make([]byte, 20)},
		{Blob: 1, Write: 2, RelPage: 0, Data: make([]byte, 40)},
	})
	if n := s.DeleteWrite(1, 1); n != 2 {
		t.Errorf("DeleteWrite freed %d pages, want 2", n)
	}
	if s.BytesUsed.Value() != 40 {
		t.Errorf("BytesUsed = %d, want 40", s.BytesUsed.Value())
	}
	if n := s.DeleteWrite(1, 1); n != 0 {
		t.Errorf("second DeleteWrite freed %d, want 0", n)
	}
}

func TestPutDoesNotAliasCallerBuffer(t *testing.T) {
	s := NewStore(0)
	buf := []byte{1, 2, 3}
	s.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: buf}})
	buf[0] = 99
	d, _ := s.GetPage(1, 1, 0)
	if d[0] != 1 {
		t.Error("store aliases caller buffer")
	}
}

func TestConcurrentWritesDistinctWrites(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pages := make([]Page, 32)
			for i := range pages {
				pages[i] = Page{Blob: 7, Write: uint64(w), RelPage: uint32(i), Data: []byte{byte(w), byte(i)}}
			}
			if err := s.PutPages(pages); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if got := s.PageCount.Value(); got != 16*32 {
		t.Fatalf("PageCount = %d, want %d", got, 16*32)
	}
	for w := 0; w < 16; w++ {
		for i := 0; i < 32; i++ {
			d, ok := s.GetPage(7, uint64(w), uint32(i))
			if !ok || d[0] != byte(w) || d[1] != byte(i) {
				t.Fatalf("page (%d,%d) = %v, %v", w, i, d, ok)
			}
		}
	}
}

type hostDialer struct{ h *netsim.Host }

func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

func startProvider(t testing.TB, fab *netsim.Net, name string, capacity int64) (*Store, string) {
	t.Helper()
	s := NewStore(capacity)
	srv := rpc.NewServer()
	NewService(s).RegisterHandlers(srv)
	l, err := fab.Host(name).Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(srv.Close)
	return s, name + ":rpc"
}

func TestRPCEndToEnd(t *testing.T) {
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	_, addr := startProvider(t, fab, "prov0", 0)
	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	ctx := context.Background()

	rels := []uint32{0, 1, 2}
	datas := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	if _, err := pool.Call(ctx, addr, MPutPages, EncodePutPages(9, 77, rels, datas)); err != nil {
		t.Fatal(err)
	}

	refs := []PageRef{{9, 77, 0}, {9, 77, 2}, {9, 77, 5}}
	resp, err := pool.Call(ctx, addr, MGetPages, EncodeGetPages(refs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGetPages(resp, len(refs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte("aa")) || !bytes.Equal(got[1], []byte("cc")) {
		t.Errorf("pages = %q, %q", got[0], got[1])
	}
	if got[2] != nil {
		t.Errorf("absent page = %q, want nil", got[2])
	}

	// Stats over RPC.
	sresp, err := pool.Call(ctx, addr, MStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeStats(sresp)
	if err != nil {
		t.Fatal(err)
	}
	if st.PageCount != 3 || st.BytesUsed != 6 {
		t.Errorf("stats = %+v", st)
	}

	// Delete over RPC.
	dresp, err := pool.Call(ctx, addr, MDeleteWrite, EncodeDeleteWrite(9, 77))
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp
	if _, ok := getOverRPC(t, pool, addr, PageRef{9, 77, 0}); ok {
		t.Error("page survived DeleteWrite")
	}
}

func getOverRPC(t *testing.T, pool *rpc.Pool, addr string, ref PageRef) ([]byte, bool) {
	t.Helper()
	resp, err := pool.Call(context.Background(), addr, MGetPages, EncodeGetPages([]PageRef{ref}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGetPages(resp, 1)
	if err != nil {
		t.Fatal(err)
	}
	return got[0], got[0] != nil
}

func TestRPCCapacityError(t *testing.T) {
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	_, addr := startProvider(t, fab, "tiny", 10)
	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	_, err := pool.Call(context.Background(), addr, MPutPages,
		EncodePutPages(1, 1, []uint32{0}, [][]byte{make([]byte, 100)}))
	if err == nil || !rpc.IsServerError(err) {
		t.Fatalf("err = %v, want ServerError(capacity)", err)
	}
}

func BenchmarkPutGet64KPages(b *testing.B) {
	s := NewStore(0)
	page := make([]byte, 64<<10)
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := uint64(i)
		s.PutPages([]Page{{Blob: 1, Write: w, RelPage: 0, Data: page}})
		if _, ok := s.GetPage(1, w, 0); !ok {
			b.Fatal("missing page")
		}
	}
}

func BenchmarkGetPagesRPC(b *testing.B) {
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	_, addr := startProvider(b, fab, "prov0", 0)
	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	ctx := context.Background()
	page := make([]byte, 64<<10)
	rels := make([]uint32, 16)
	datas := make([][]byte, 16)
	for i := range rels {
		rels[i] = uint32(i)
		datas[i] = page
	}
	if _, err := pool.Call(ctx, addr, MPutPages, EncodePutPages(1, 1, rels, datas)); err != nil {
		b.Fatal(err)
	}
	refs := make([]PageRef, 16)
	for i := range refs {
		refs[i] = PageRef{1, 1, uint32(i)}
	}
	req := EncodeGetPages(refs)
	b.SetBytes(int64(16 * len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := pool.Call(ctx, addr, MGetPages, req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeGetPages(resp, 16); err != nil {
			b.Fatal(err)
		}
	}
}
