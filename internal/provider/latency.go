package provider

import (
	"context"
	"fmt"

	"blob/internal/stats"
	"blob/internal/wire"
)

// MLatency answers with the provider's get/put latency distributions as
// histogram snapshots. The monitor merges snapshots across providers
// into cluster-wide quantiles — shipping buckets instead of precomputed
// percentiles is what makes the cluster p99 a real p99 rather than an
// average of per-node ones.
//
//	MLatency request:  (empty)
//	MLatency response: get HistogramSnapshot | put HistogramSnapshot
//	                   (layout in internal/stats/wire.go)

func (sv *Service) handleLatency(_ context.Context, _ []byte) ([]byte, error) {
	w := wire.NewWriter(160)
	sv.GetLatency.Snapshot().EncodeTo(w)
	sv.PutLatency.Snapshot().EncodeTo(w)
	return w.Bytes(), nil
}

// FetchLatency retrieves a provider's get/put latency snapshots.
func FetchLatency(ctx context.Context, c Caller, addr string) (get, put stats.HistogramSnapshot, err error) {
	resp, err := c.Call(ctx, addr, MLatency, nil)
	if err != nil {
		return get, put, err
	}
	r := wire.NewReader(resp)
	if get, err = stats.DecodeSnapshotFrom(r); err != nil {
		return get, put, fmt.Errorf("provider latency: get histogram: %w", err)
	}
	if put, err = stats.DecodeSnapshotFrom(r); err != nil {
		return get, put, fmt.Errorf("provider latency: put histogram: %w", err)
	}
	return get, put, nil
}

// DigestBytes summarizes the backend's holdings for the heartbeat
// piggyback: the encoded bloom digest plus its FNV-1a hash, which the
// provider compares against the manager's held hash to decide whether
// the bytes need resending at all. ok is false when the backend cannot
// summarize (no BloomSummary capability) — send nothing, consumers must
// probe.
func (sv *Service) DigestBytes() (hash uint64, enc []byte, ok bool) {
	bs, can := sv.store.(BloomSummary)
	if !can {
		return 0, nil, false
	}
	d, has := bs.BloomDigest()
	if !has {
		return 0, nil, false
	}
	w := wire.NewWriter(256)
	d.Encode(w)
	enc = w.Bytes()
	return wire.Checksum64(enc), enc, true
}
