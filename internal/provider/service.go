package provider

import (
	"context"
	"fmt"
	"time"

	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/throttle"
	"blob/internal/wire"
)

// Service hosts one data provider's RPC methods over any PageStore
// backend — the in-RAM Store, the persistent DiskStore, or a CachedStore
// stack. It owns the in-flight operation gauge the load balancer reads,
// so backends stay pure storage.
type Service struct {
	store PageStore

	// ActiveOps counts RPCs in flight, merged into Snapshot for the
	// provider manager's load-based placement.
	ActiveOps stats.Gauge

	// Repair plumbing (EnableRepair): peers dials other providers for
	// MPullPages, pullTB throttles pulled page bytes. Repair counters
	// are owned here, not by the store, so a restarted provider reports
	// only its own repair work (a fresh Service starts from zero).
	peers  Caller
	pullTB *throttle.TokenBucket

	repairedPages stats.Counter
	repairBytes   stats.Counter
	bloomSkips    stats.Counter

	// GetLatency and PutLatency record page-serving handler latency;
	// MLatency exports their snapshots for cluster-wide merging.
	GetLatency stats.Histogram
	PutLatency stats.Histogram

	// chaos holds injected gray-failure state (chaos.go). It applies to
	// page serves only — writes stay healthy, so injected chaos never
	// puts acked data at risk.
	chaos chaos
}

// NewService creates a Service serving ps.
func NewService(ps PageStore) *Service { return &Service{store: ps} }

// Store returns the backend the service serves.
func (sv *Service) Store() PageStore { return sv.store }

// Snapshot returns the backend's statistics with the service's in-flight
// operation count merged in.
func (sv *Service) Snapshot() Stats {
	st := sv.store.Snapshot()
	st.ActiveOps = sv.ActiveOps.Value()
	st.RepairedPages = sv.repairedPages.Value()
	st.RepairBytes = sv.repairBytes.Value()
	st.BloomSkips = sv.bloomSkips.Value()
	return st
}

func init() {
	rpc.RegisterMethodName(MPutPages, "provider.MPutPages")
	rpc.RegisterMethodName(MGetPages, "provider.MGetPages")
	rpc.RegisterMethodName(MDeleteWrite, "provider.MDeleteWrite")
	rpc.RegisterMethodName(MDeletePages, "provider.MDeletePages")
	rpc.RegisterMethodName(MStats, "provider.MStats")
	rpc.RegisterMethodName(MListWrites, "provider.MListWrites")
	rpc.RegisterMethodName(MPullPages, "provider.MPullPages")
	rpc.RegisterMethodName(MLatency, "provider.MLatency")
}

// RegisterHandlers wires the provider's RPC methods onto srv.
func (sv *Service) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MPutPages, sv.handlePutPages)
	srv.HandleVec(MGetPages, sv.handleGetPages)
	srv.Handle(MDeleteWrite, sv.handleDeleteWrite)
	srv.Handle(MDeletePages, sv.handleDeletePages)
	srv.Handle(MStats, sv.handleStats)
	srv.Handle(MListWrites, sv.handleListWrites)
	srv.Handle(MPullPages, sv.handlePullPages)
	srv.Handle(MLatency, sv.handleLatency)
	srv.Handle(MChaos, sv.handleChaos)
}

// Wire formats.
//
//	MPutPages request:  u64 blob | u64 write | uvarint n | n × (u32 rel, bytes)
//	MGetPages request:  uvarint n | n × (u64 blob, u64 write, u32 rel)
//	MGetPages response: uvarint n | n × (bool found, bytes if found)

func (sv *Service) handlePutPages(_ context.Context, body []byte) ([]byte, error) {
	sv.ActiveOps.Add(1)
	start := time.Now()
	defer func() {
		sv.PutLatency.Observe(time.Since(start))
		sv.ActiveOps.Add(-1)
	}()
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	n := int(r.Uvarint())
	pages := make([]Page, 0, n)
	for i := 0; i < n; i++ {
		rel := r.Uint32()
		data := r.BytesField()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("provider put: page %d: %w", i, err)
		}
		pages = append(pages, Page{Blob: blob, Write: write, RelPage: rel, Data: data})
	}
	if err := sv.store.PutPages(pages); err != nil {
		return nil, err
	}
	return nil, nil
}

// handleGetPages answers MGetPages as scatter-gather segments: flag and
// length headers accumulate in a small arena, page payloads alias the
// slices the PageStore hands back (immutable — pages are never updated
// in place, and a slice outlives even a concurrent GC delete of its map
// entry), so fetched pages travel from store memory to the socket
// without intermediate assembly.
func (sv *Service) handleGetPages(ctx context.Context, body []byte) ([][]byte, error) {
	sv.ActiveOps.Add(1)
	start := time.Now()
	defer func() {
		sv.GetLatency.Observe(time.Since(start))
		sv.ActiveOps.Add(-1)
	}()
	if err := sv.chaosEnter(ctx); err != nil {
		return nil, err
	}
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	// Each ref occupies exactly 20 request bytes, so any claimed count
	// beyond len(body)/20 is garbage — reject it before sizing the
	// response arena, or a small hostile body could demand gigabytes.
	if n < 0 || n > len(body)/20 {
		return nil, fmt.Errorf("provider get: request count %d exceeds body", n)
	}
	vw := wire.NewVec(10+11*n, 1+2*n) // count varint + per page flag + length varint
	vw.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		blob := r.Uint64()
		write := r.Uint64()
		rel := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("provider get: request %d: %w", i, err)
		}
		data, ok := sv.store.GetPage(blob, write, rel)
		if !ok {
			vw.Uint8(0)
			continue
		}
		vw.Uint8(1)
		vw.Uvarint(uint64(len(data)))
		vw.Alias(data)
	}
	return vw.Segs(), nil
}

func (sv *Service) handleDeleteWrite(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider delete: %w", err)
	}
	n := sv.store.DeleteWrite(blob, write)
	w := wire.NewWriter(8)
	w.Uvarint(uint64(n))
	return w.Bytes(), nil
}

func (sv *Service) handleDeletePages(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	write := r.Uint64()
	rels := r.Uint32Slice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("provider delete pages: %w", err)
	}
	n := sv.store.DeletePages(blob, write, rels)
	w := wire.NewWriter(8)
	w.Uvarint(uint64(n))
	return w.Bytes(), nil
}

func (sv *Service) handleStats(_ context.Context, _ []byte) ([]byte, error) {
	return encodeStats(sv.Snapshot()), nil
}

// encodeStats is the MStats wire encoding; DecodeStats is its inverse.
func encodeStats(st Stats) []byte {
	w := wire.NewWriter(96)
	w.Varint(st.BytesUsed)
	w.Varint(st.PageCount)
	w.Varint(st.Capacity)
	w.Varint(st.Puts)
	w.Varint(st.Gets)
	w.Varint(st.Misses)
	w.Varint(st.ActiveOps)
	w.Varint(st.DiskBytes)
	w.Varint(st.DiskLive)
	w.Varint(st.Segments)
	w.Varint(st.CacheBytes)
	w.Varint(st.CacheHits)
	w.Varint(st.ReplayedBytes)
	w.Varint(st.SidecarBytes)
	w.Varint(st.SegmentsReplayed)
	w.Varint(st.SidecarsLoaded)
	w.Varint(st.RepairedPages)
	w.Varint(st.RepairBytes)
	w.Varint(st.BloomSkips)
	return w.Bytes()
}

// DecodeStats parses an MStats response.
func DecodeStats(body []byte) (Stats, error) {
	r := wire.NewReader(body)
	st := Stats{
		BytesUsed:  r.Varint(),
		PageCount:  r.Varint(),
		Capacity:   r.Varint(),
		Puts:       r.Varint(),
		Gets:       r.Varint(),
		Misses:     r.Varint(),
		ActiveOps:  r.Varint(),
		DiskBytes:  r.Varint(),
		DiskLive:   r.Varint(),
		Segments:   r.Varint(),
		CacheBytes: r.Varint(),
		CacheHits:  r.Varint(),

		ReplayedBytes:    r.Varint(),
		SidecarBytes:     r.Varint(),
		SegmentsReplayed: r.Varint(),
		SidecarsLoaded:   r.Varint(),

		RepairedPages: r.Varint(),
		RepairBytes:   r.Varint(),
		BloomSkips:    r.Varint(),
	}
	return st, r.Err()
}
