package provider

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"blob/internal/diskstore"
	"blob/internal/wire"
)

// fakePeer routes a pull handler's MGetPages calls straight into another
// service's handler, standing in for an rpc.Pool.
type fakePeer struct {
	services map[string]*Service
}

func (f fakePeer) Call(ctx context.Context, addr string, method uint32, body []byte) ([]byte, error) {
	sv, ok := f.services[addr]
	if !ok {
		return nil, fmt.Errorf("fakePeer: no service at %s", addr)
	}
	if method != MGetPages {
		return nil, fmt.Errorf("fakePeer: unexpected method %#x", method)
	}
	segs, err := sv.handleGetPages(ctx, body)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, s := range segs {
		out = append(out, s...)
	}
	return out, nil
}

func put(t *testing.T, ps PageStore, blob, write uint64, rel uint32, data []byte) {
	t.Helper()
	if err := ps.PutPages([]Page{{Blob: blob, Write: write, RelPage: rel, Data: data}}); err != nil {
		t.Fatal(err)
	}
}

// TestBloomDigestAcrossBackends pins the BloomSummary contract on every
// store: no false negatives for held pages, empty-store digests rule
// everything out, and the digest survives its wire round trip.
func TestBloomDigestAcrossBackends(t *testing.T) {
	newDisk := func(t *testing.T) PageStore {
		ds, err := NewDiskStore(diskstore.Options{Dir: t.TempDir(), SegmentSize: 512}, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ds.Close() })
		return ds
	}
	backends := []struct {
		name string
		mk   func(t *testing.T) PageStore
	}{
		{"ram", func(t *testing.T) PageStore { return NewStore(0) }},
		{"disk", newDisk},
		{"cached", func(t *testing.T) PageStore { return NewCachedStore(newDisk(t), 1<<20) }},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			ps := be.mk(t)
			bs, ok := ps.(BloomSummary)
			if !ok {
				t.Fatalf("%T does not implement BloomSummary", ps)
			}
			if d, ok := bs.BloomDigest(); !ok {
				t.Fatal("empty store: no digest")
			} else if d.MightContain(1, 2, 3) {
				t.Error("empty store digest claims a page")
			}
			for rel := uint32(0); rel < 20; rel++ {
				put(t, ps, 1, 7, rel, []byte{byte(rel), 1, 2})
			}
			d, ok := bs.BloomDigest()
			if !ok {
				t.Fatal("no digest after puts")
			}
			// Wire round trip, as MListWrites ships it.
			w := wire.NewWriter(256)
			d.Encode(w)
			got := DecodeDigest(wire.NewReader(w.Bytes()))
			for rel := uint32(0); rel < 20; rel++ {
				if !got.MightContain(1, 7, rel) {
					t.Fatalf("false negative for held page %d", rel)
				}
			}
			fp := 0
			for i := uint64(0); i < 1000; i++ {
				if got.MightContain(99, i, 0) {
					fp++
				}
			}
			if fp > 100 {
				t.Errorf("%d/1000 false positives; digest useless", fp)
			}
		})
	}
}

// TestListWritesEnumeratesHoldings exercises the MListWrites handler:
// full enumeration, targeted enumeration, and the digest flag.
func TestListWritesEnumeratesHoldings(t *testing.T) {
	st := NewStore(0)
	for rel := uint32(0); rel < 3; rel++ {
		put(t, st, 1, 100, rel, []byte("aaa"))
	}
	put(t, st, 1, 200, 0, []byte("bbb"))
	put(t, st, 2, 300, 0, []byte("ccc"))
	sv := NewService(st)

	resp, err := sv.handleListWrites(context.Background(), EncodeListWrites(nil))
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeListWrites(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Writes) != 3 || h.Holds(1, 100) != 3 || h.Holds(1, 200) != 1 || h.Holds(2, 300) != 1 {
		t.Fatalf("holdings = %+v", h.Writes)
	}
	if !h.HasDigest || !h.Digest.MightContain(1, 100, 2) {
		t.Error("digest missing or lost a held page")
	}

	// Targeted: only the requested writes come back.
	resp, err = sv.handleListWrites(context.Background(),
		EncodeListWrites([]WriteRef{{Blob: 1, Write: 200}, {Blob: 5, Write: 5}}))
	if err != nil {
		t.Fatal(err)
	}
	h, err = DecodeListWrites(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Writes) != 1 || h.Holds(1, 200) != 1 {
		t.Fatalf("targeted holdings = %+v", h.Writes)
	}
	if h.Holds(5, 5) != 0 {
		t.Error("absent write reported as held")
	}
}

// TestPullPagesRepairsFromPeer drives the full provider-to-provider pull:
// a degraded provider fetches missing pages from a healthy peer, verifies
// checksums, stores them, and skips pages it already holds on a re-run.
func TestPullPagesRepairsFromPeer(t *testing.T) {
	healthy := NewStore(0)
	pages := [][]byte{[]byte("page0"), []byte("page1"), []byte("page2")}
	refs := make([]PullRef, len(pages))
	for i, p := range pages {
		put(t, healthy, 9, 42, uint32(i), p)
		refs[i] = PullRef{Rel: uint32(i), Checksum: wire.Checksum64(p)}
	}
	healthySvc := NewService(healthy)

	degraded := NewStore(0)
	put(t, degraded, 9, 42, 0, pages[0]) // one page survived
	sv := NewService(degraded)

	// Without EnableRepair the method must refuse.
	req := EncodePullPages("peer", 9, 42, refs)
	if _, err := sv.handlePullPages(context.Background(), req); !errors.Is(err, ErrRepairDisabled) {
		t.Fatalf("pull without pool: %v", err)
	}

	sv.EnableRepair(fakePeer{services: map[string]*Service{"peer": healthySvc}}, 0)
	resp, err := sv.handlePullPages(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodePullPages(resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pulled != 2 || res.Skipped != 1 || res.Bytes != 10 {
		t.Fatalf("pull result = %+v, want 2 pulled / 1 skipped / 10 bytes", res)
	}
	for i, p := range pages {
		if got, ok := degraded.GetPage(9, 42, uint32(i)); !ok || string(got) != string(p) {
			t.Fatalf("page %d not repaired: %q %v", i, got, ok)
		}
	}
	st := sv.Snapshot()
	if st.RepairedPages != 2 || st.RepairBytes != 10 || st.BloomSkips != 1 {
		t.Fatalf("repair counters = %d/%d/%d", st.RepairedPages, st.RepairBytes, st.BloomSkips)
	}

	// Re-run: everything is held, nothing is transferred.
	resp, err = sv.handlePullPages(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = DecodePullPages(resp)
	if res.Pulled != 0 || res.Skipped != 3 {
		t.Fatalf("idempotent re-pull = %+v", res)
	}
}

// TestPullPagesRejectsBadChecksum pins that a peer serving bytes that
// fail the metadata checksum never pollutes the degraded store.
func TestPullPagesRejectsBadChecksum(t *testing.T) {
	healthy := NewStore(0)
	put(t, healthy, 9, 42, 0, []byte("genuine"))
	degraded := NewStore(0)
	sv := NewService(degraded)
	sv.EnableRepair(fakePeer{services: map[string]*Service{"peer": NewService(healthy)}}, 0)

	req := EncodePullPages("peer", 9, 42, []PullRef{{Rel: 0, Checksum: 0xBAD}})
	resp, err := sv.handlePullPages(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := DecodePullPages(resp)
	if res.Pulled != 0 {
		t.Fatalf("checksum-failing page pulled: %+v", res)
	}
	if _, ok := degraded.GetPage(9, 42, 0); ok {
		t.Fatal("bad page stored")
	}
}

// TestStatsWireCarriesRepairCounters round-trips the extended MStats
// encoding.
func TestStatsWireCarriesRepairCounters(t *testing.T) {
	sv := NewService(NewStore(0))
	sv.repairedPages.Add(5)
	sv.repairBytes.Add(1234)
	sv.bloomSkips.Add(2)
	body, err := sv.handleStats(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairedPages != 5 || st.RepairBytes != 1234 || st.BloomSkips != 2 {
		t.Fatalf("decoded repair counters = %d/%d/%d", st.RepairedPages, st.RepairBytes, st.BloomSkips)
	}
}
