package provider

// Zero-copy request/response codecs for the page data path. The wire
// layouts are byte-identical to the legacy EncodePutPages/DecodeGetPages
// pair (docs/perf.md records the copy budget): the difference is purely
// in memory traffic. EncodePutPagesVec emits scatter-gather segments
// whose page payloads alias the caller's buffer — the rpc layer flushes
// them with one vectored write, so page bytes cross client memory zero
// times between the caller's buffer and the socket. DecodeGetPagesInto
// copies each fetched page exactly once, from the pooled response frame
// straight into the read destination the caller computed.

import (
	"fmt"

	"blob/internal/wire"
)

// EncodePutPagesVec builds an MPutPages request as scatter-gather body
// segments for rpc.Pool.GoVec: small header segments carved from one
// arena, page payload segments aliasing datas. The datas slices must
// stay immutable until the call completes (Pending.Wait returns). All
// pages must share the same blob and write identity.
func EncodePutPagesVec(blob, write uint64, rels []uint32, datas [][]byte) [][]byte {
	// Exact worst-case header arena: blob+write (16) + count varint (10)
	// + per page rel (4) and length varint (10). One allocation each for
	// the arena and the segment list.
	vw := wire.NewVec(26+14*len(rels), 1+2*len(rels))
	vw.Uint64(blob)
	vw.Uint64(write)
	vw.Uvarint(uint64(len(rels)))
	for i := range rels {
		vw.Uint32(rels[i])
		vw.Uvarint(uint64(len(datas[i])))
		vw.Alias(datas[i])
	}
	return vw.Segs()
}

// PageStatus is the per-page outcome of DecodeGetPagesInto.
type PageStatus uint8

// DecodeGetPagesInto outcomes.
const (
	// PageMissing: the provider answered and does not hold the page — a
	// definite miss (read-repair target).
	PageMissing PageStatus = iota
	// PageOK: the payload was copied into the destination slice.
	// Integrity is the caller's job (checksum the destination).
	PageOK
	// PageBad: the provider returned a payload whose size does not
	// match the destination — treated like a corrupt copy.
	PageBad
)

// DecodeGetPagesInto parses an MGetPages response, copying each present
// page directly into dsts[i] (the destination sub-slices of the read
// buffer) and recording the per-page outcome in status. It performs no
// allocations: dsts and status are caller-provided, and the response
// body may be released as soon as it returns. len(status) must equal
// len(dsts).
func DecodeGetPagesInto(body []byte, dsts [][]byte, status []PageStatus) error {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	if n != len(dsts) {
		return fmt.Errorf("provider: response count %d != %d", n, len(dsts))
	}
	for i := range dsts {
		if !r.Bool() {
			status[i] = PageMissing
			continue
		}
		data := r.BytesField()
		if r.Err() != nil {
			break
		}
		if len(data) != len(dsts[i]) {
			status[i] = PageBad
			continue
		}
		copy(dsts[i], data)
		status[i] = PageOK
	}
	return r.Err()
}
