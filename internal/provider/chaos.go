package provider

// Chaos injection for real-TCP deployments (docs/robustness.md): a
// provider can be told — at boot via blobnode's -chaos-delay flag, or
// live via the MChaos RPC (blobctl chaos) — to hold every read-side
// serve (page gets and holdings listings) for a fixed delay, or to
// stall them outright. Writes stay healthy, so no acked data is ever
// endangered, and the process stays alive, registered and
// heartbeating: nothing upstream sees a crash. It is the gray failure
// the deadline/hedge/breaker machinery exists to absorb, injected on
// demand for acceptance runs. The netsim fabric has its own,
// finer-grained fault injection (netsim.Fault); this path is for
// deployments made of real processes.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blob/internal/rpc"
	"blob/internal/wire"
)

// MChaos sets or clears the provider's chaos mode at runtime.
//
//	request:  u64 delay nanoseconds | u8 stall (0/1)
//	response: empty
const MChaos = 0x0309

func init() {
	rpc.RegisterMethodName(MChaos, "provider.MChaos")
}

// chaos is a Service's injected-fault state. Reads are frequent (every
// page serve) and writes are rare (operator actions), hence RWMutex.
type chaos struct {
	mu    sync.RWMutex
	delay time.Duration
	stall chan struct{} // non-nil while stalled; closed on heal
}

// SetChaos installs (or, with 0/false, clears) the service's chaos
// mode: every subsequent read-side serve sleeps delay, and while stall
// is set it blocks outright until the mode changes or the caller's
// propagated deadline expires.
func (sv *Service) SetChaos(delay time.Duration, stall bool) {
	sv.chaos.mu.Lock()
	sv.chaos.delay = delay
	if stall && sv.chaos.stall == nil {
		sv.chaos.stall = make(chan struct{})
	} else if !stall && sv.chaos.stall != nil {
		close(sv.chaos.stall)
		sv.chaos.stall = nil
	}
	sv.chaos.mu.Unlock()
}

// Chaos reports the current chaos mode.
func (sv *Service) Chaos() (delay time.Duration, stall bool) {
	sv.chaos.mu.RLock()
	defer sv.chaos.mu.RUnlock()
	return sv.chaos.delay, sv.chaos.stall != nil
}

// chaosEnter applies the current chaos mode to one page serve. It
// returns ctx.Err() when the caller's deadline expires mid-stall — the
// wire deadline (docs/robustness.md) reaches handlers through ctx, so
// stalled work is shed exactly like any other expired work.
func (sv *Service) chaosEnter(ctx context.Context) error {
	sv.chaos.mu.RLock()
	delay, stall := sv.chaos.delay, sv.chaos.stall
	sv.chaos.mu.RUnlock()
	if stall != nil {
		select {
		case <-stall: // healed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// EncodeChaos builds an MChaos request body.
func EncodeChaos(delay time.Duration, stall bool) []byte {
	w := wire.NewWriter(9)
	w.Uint64(uint64(delay))
	if stall {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
	return w.Bytes()
}

// DecodeChaos parses an MChaos request body.
func DecodeChaos(body []byte) (delay time.Duration, stall bool, err error) {
	r := wire.NewReader(body)
	delay = time.Duration(r.Uint64())
	stall = r.Uint8() != 0
	if err := r.Err(); err != nil {
		return 0, false, fmt.Errorf("provider chaos: %w", err)
	}
	return delay, stall, nil
}

func (sv *Service) handleChaos(_ context.Context, body []byte) ([]byte, error) {
	delay, stall, err := DecodeChaos(body)
	if err != nil {
		return nil, err
	}
	sv.SetChaos(delay, stall)
	return nil, nil
}
