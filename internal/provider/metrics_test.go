package provider

import (
	"reflect"
	"strings"
	"testing"

	"blob/internal/stats"
)

// sentinelStats builds a Stats whose i-th field holds 1000+i, so every
// field carries a distinguishable value.
func sentinelStats(t *testing.T) Stats {
	t.Helper()
	var st Stats
	v := reflect.ValueOf(&st).Elem()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Stats field %s is %s, want int64", v.Type().Field(i).Name, v.Field(i).Kind())
		}
		v.Field(i).SetInt(int64(1000 + i))
	}
	return st
}

// TestStatsWireCoversAllFields proves the MStats wire encoding carries
// every Stats field: a fully-sentineled struct must round-trip intact.
// A field added to Stats but forgotten in encodeStats/DecodeStats fails
// here.
func TestStatsWireCoversAllFields(t *testing.T) {
	want := sentinelStats(t)
	got, err := DecodeStats(encodeStats(want))
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	if got != want {
		t.Fatalf("stats wire round trip dropped fields:\n got %+v\nwant %+v", got, want)
	}
}

// TestMetricsCoverStatsWire is the drift gate between the two stats
// surfaces: every field threaded through the MStats wire must map to
// exactly one /metrics series, and each table getter must read exactly
// its declared field.
func TestMetricsCoverStatsWire(t *testing.T) {
	rt := reflect.TypeOf(Stats{})

	byField := make(map[string]statsMetric, len(statsMetrics))
	names := make(map[string]string, len(statsMetrics))
	for _, m := range statsMetrics {
		if _, dup := byField[m.field]; dup {
			t.Errorf("field %s mapped twice in statsMetrics", m.field)
		}
		byField[m.field] = m
		if prev, dup := names[m.name]; dup {
			t.Errorf("metric name %s used by both %s and %s", m.name, prev, m.field)
		}
		names[m.name] = m.field
		if _, ok := rt.FieldByName(m.field); !ok {
			t.Errorf("statsMetrics entry %s names no Stats field", m.field)
		}
	}
	if len(statsMetrics) != rt.NumField() {
		t.Errorf("statsMetrics has %d entries, Stats has %d fields", len(statsMetrics), rt.NumField())
	}

	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		m, ok := byField[f.Name]
		if !ok {
			t.Errorf("Stats field %s reaches the wire but has no /metrics series", f.Name)
			continue
		}
		// The getter must read exactly its declared field: with only
		// that field set it returns the sentinel, with everything but
		// that field set it returns zero.
		var only Stats
		reflect.ValueOf(&only).Elem().Field(i).SetInt(7777)
		if got := m.get(only); got != 7777 {
			t.Errorf("metric %s getter does not read field %s (got %d)", m.name, f.Name, got)
		}
		others := sentinelStats(t)
		reflect.ValueOf(&others).Elem().Field(i).SetInt(0)
		if got := m.get(others); got != 0 {
			t.Errorf("metric %s getter reads a field other than %s (got %d)", m.name, f.Name, got)
		}
	}
}

// TestRegisterMetricsExposition checks every table series actually
// renders in the Prometheus exposition of a registered service.
func TestRegisterMetricsExposition(t *testing.T) {
	sv := NewService(NewStore(1 << 20))
	if err := sv.Store().PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: []byte("abcd")}}); err != nil {
		t.Fatal(err)
	}
	reg := stats.NewRegistry()
	sv.RegisterMetrics(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, m := range statsMetrics {
		if !strings.Contains(out, "\n"+m.name+" ") && !strings.HasPrefix(out, m.name+" ") {
			t.Errorf("series %s missing from exposition:\n%s", m.name, out)
		}
	}
	if !strings.Contains(out, "provider_bytes_used 4\n") {
		t.Errorf("provider_bytes_used should report 4 live bytes:\n%s", out)
	}
}
