package provider

import (
	"container/list"
	"io"
	"sync"

	"blob/internal/stats"
)

// CachedStore is a write-through RAM cache tier in front of another
// PageStore (typically a DiskStore): puts go to the backend first and
// then populate the cache, reads are served from RAM when possible, and
// deletions evict before hitting the backend. Because pages are
// immutable, the cache never needs invalidation beyond GC-driven
// deletes — a hit is always correct.
type CachedStore struct {
	inner PageStore
	limit int64 // cache byte budget

	mu    sync.Mutex
	bytes int64
	lru   *list.List // front = most recent; values are *cacheEntry
	byKey map[writeKey]map[uint32]*list.Element
	// epoch guards insertions against racing deletions: it is bumped
	// before and after every backend delete, and an insert is abandoned
	// if the epoch moved since the inserter read the backend. Without it
	// a read that fetched a page just before a GC delete could re-insert
	// the page after the delete evicted it, resurrecting dead data in
	// RAM.
	epoch uint64

	hits stats.Counter
}

type cacheEntry struct {
	k    writeKey
	rel  uint32
	data []byte
}

// NewCachedStore wraps inner with a write-through cache holding at most
// limit bytes of page data (limit <= 0 disables caching entirely and
// just forwards).
func NewCachedStore(inner PageStore, limit int64) *CachedStore {
	c := &CachedStore{
		inner: inner,
		limit: limit,
		lru:   list.New(),
		byKey: make(map[writeKey]map[uint32]*list.Element),
	}
	return c
}

// PutPages implements PageStore: backend first (durability), cache after.
func (c *CachedStore) PutPages(pages []Page) error {
	if c.limit <= 0 {
		return c.inner.PutPages(pages)
	}
	c.mu.Lock()
	e := c.epoch
	c.mu.Unlock()
	if err := c.inner.PutPages(pages); err != nil {
		return err
	}
	c.mu.Lock()
	if c.epoch == e { // no delete raced the backend write
		for _, p := range pages {
			c.insertLocked(writeKey{p.Blob, p.Write}, p.RelPage, p.Data)
		}
	}
	c.mu.Unlock()
	return nil
}

// insertLocked copies data into the cache and evicts LRU entries over
// budget. Pages larger than the whole budget are not cached.
func (c *CachedStore) insertLocked(k writeKey, rel uint32, data []byte) {
	if int64(len(data)) > c.limit {
		return
	}
	wm := c.byKey[k]
	if wm == nil {
		wm = make(map[uint32]*list.Element)
		c.byKey[k] = wm
	}
	if e, ok := wm[rel]; ok {
		c.lru.MoveToFront(e)
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	wm[rel] = c.lru.PushFront(&cacheEntry{k: k, rel: rel, data: buf})
	c.bytes += int64(len(buf))
	for c.bytes > c.limit {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
	}
}

// removeLocked drops one cache element.
func (c *CachedStore) removeLocked(e *list.Element) {
	ent := e.Value.(*cacheEntry)
	c.lru.Remove(e)
	c.bytes -= int64(len(ent.data))
	if wm := c.byKey[ent.k]; wm != nil {
		delete(wm, ent.rel)
		if len(wm) == 0 {
			delete(c.byKey, ent.k)
		}
	}
}

// GetPage implements PageStore: RAM hit or write-allocate from backend.
func (c *CachedStore) GetPage(blob, write uint64, rel uint32) ([]byte, bool) {
	k := writeKey{blob, write}
	var epoch uint64
	if c.limit > 0 {
		c.mu.Lock()
		if e, ok := c.byKey[k][rel]; ok {
			c.lru.MoveToFront(e)
			data := e.Value.(*cacheEntry).data
			c.mu.Unlock()
			c.hits.Inc()
			return data, true
		}
		epoch = c.epoch
		c.mu.Unlock()
	}
	data, ok := c.inner.GetPage(blob, write, rel)
	if ok && c.limit > 0 {
		c.mu.Lock()
		if c.epoch == epoch { // no delete raced the backend read
			c.insertLocked(k, rel, data)
		}
		c.mu.Unlock()
	}
	return data, ok
}

// bumpEpoch invalidates in-flight insertions (see the epoch field).
func (c *CachedStore) bumpEpoch() {
	c.mu.Lock()
	c.epoch++
	c.mu.Unlock()
}

// DeletePages implements PageStore.
func (c *CachedStore) DeletePages(blob, write uint64, rels []uint32) int {
	k := writeKey{blob, write}
	c.mu.Lock()
	for _, rel := range rels {
		if e, ok := c.byKey[k][rel]; ok {
			c.removeLocked(e)
		}
	}
	c.epoch++
	c.mu.Unlock()
	n := c.inner.DeletePages(blob, write, rels)
	c.bumpEpoch()
	return n
}

// DeleteWrite implements PageStore.
func (c *CachedStore) DeleteWrite(blob, write uint64) int {
	k := writeKey{blob, write}
	c.mu.Lock()
	for _, e := range c.byKey[k] {
		c.removeLocked(e)
	}
	c.epoch++
	c.mu.Unlock()
	n := c.inner.DeleteWrite(blob, write)
	c.bumpEpoch()
	return n
}

// ForEachPage implements PageStore, iterating the authoritative backend.
func (c *CachedStore) ForEachPage(fn func(blob, write uint64, rel uint32, data []byte)) {
	c.inner.ForEachPage(fn)
}

// Snapshot implements PageStore, layering cache occupancy and hit counts
// over the backend's statistics.
func (c *CachedStore) Snapshot() Stats {
	st := c.inner.Snapshot()
	c.mu.Lock()
	st.CacheBytes = c.bytes
	c.mu.Unlock()
	st.CacheHits = c.hits.Value()
	return st
}

// BloomDigest implements the optional BloomSummary capability by
// delegating to the authoritative backend (the cache holds a subset of
// it, so the backend's digest covers every cached page too).
func (c *CachedStore) BloomDigest() (Digest, bool) {
	if bs, ok := c.inner.(BloomSummary); ok {
		return bs.BloomDigest()
	}
	return Digest{}, false
}

// ForEachWrite implements the optional WriteLister capability by
// delegating to the authoritative backend when it has the capability;
// otherwise it falls back to a (data-reading) page walk.
func (c *CachedStore) ForEachWrite(fn func(blob, write uint64, pages int)) {
	if wl, ok := c.inner.(WriteLister); ok {
		wl.ForEachWrite(fn)
		return
	}
	counts := make(map[writeKey]int)
	c.inner.ForEachPage(func(blob, write uint64, _ uint32, _ []byte) {
		counts[writeKey{blob, write}]++
	})
	for k, n := range counts {
		fn(k.blob, k.write, n)
	}
}

// Close closes the backend if it is closeable.
func (c *CachedStore) Close() error {
	if cl, ok := c.inner.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}
