package provider

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"blob/internal/diskstore"
	"blob/internal/netsim"
	"blob/internal/rpc"
)

func newDisk(t *testing.T, dir string, capacity int64) *DiskStore {
	t.Helper()
	d, err := NewDiskStore(diskstore.Options{Dir: dir}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// backends returns one of each PageStore implementation, so shared
// contract tests run against all of them.
func backends(t *testing.T) map[string]PageStore {
	return map[string]PageStore{
		"ram":         NewStore(0),
		"disk":        newDisk(t, t.TempDir(), 0),
		"disk+cache":  NewCachedStore(newDisk(t, t.TempDir(), 0), 1<<20),
		"cache(tiny)": NewCachedStore(newDisk(t, t.TempDir(), 0), 8), // constant thrash
	}
}

func TestPageStoreContract(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.PutPages([]Page{
				{Blob: 1, Write: 10, RelPage: 0, Data: []byte("page zero")},
				{Blob: 1, Write: 10, RelPage: 1, Data: []byte("page one")},
				{Blob: 1, Write: 11, RelPage: 0, Data: []byte("other write")},
			}); err != nil {
				t.Fatal(err)
			}
			// Idempotent re-put: first wins.
			if err := s.PutPages([]Page{{Blob: 1, Write: 10, RelPage: 0, Data: []byte("overwrite")}}); err != nil {
				t.Fatal(err)
			}
			if d, ok := s.GetPage(1, 10, 0); !ok || string(d) != "page zero" {
				t.Errorf("GetPage = %q, %v", d, ok)
			}
			if _, ok := s.GetPage(1, 10, 9); ok {
				t.Error("absent page reported found")
			}
			if n := s.DeletePages(1, 10, []uint32{1, 9}); n != 1 {
				t.Errorf("DeletePages = %d, want 1", n)
			}
			if _, ok := s.GetPage(1, 10, 1); ok {
				t.Error("deleted page still served")
			}
			if n := s.DeleteWrite(1, 11); n != 1 {
				t.Errorf("DeleteWrite = %d, want 1", n)
			}
			st := s.Snapshot()
			if st.PageCount != 1 || st.BytesUsed != int64(len("page zero")) {
				t.Errorf("snapshot = %+v", st)
			}
			seen := 0
			s.ForEachPage(func(blob, write uint64, rel uint32, data []byte) { seen++ })
			if seen != 1 {
				t.Errorf("ForEachPage visited %d pages, want 1", seen)
			}
		})
	}
}

func TestDiskStoreCapacity(t *testing.T) {
	d := newDisk(t, t.TempDir(), 100)
	if err := d.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: make([]byte, 60)}}); err != nil {
		t.Fatal(err)
	}
	err := d.PutPages([]Page{{Blob: 1, Write: 2, RelPage: 0, Data: make([]byte, 60)}})
	if !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
	d.DeleteWrite(1, 1)
	if err := d.PutPages([]Page{{Blob: 1, Write: 2, RelPage: 0, Data: make([]byte, 60)}}); err != nil {
		t.Errorf("put after delete: %v", err)
	}
}

func TestDiskStoreStatsFields(t *testing.T) {
	d := newDisk(t, t.TempDir(), 0)
	if err := d.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: make([]byte, 100)}}); err != nil {
		t.Fatal(err)
	}
	st := d.Snapshot()
	if st.DiskBytes == 0 || st.Segments == 0 || st.DiskLive == 0 {
		t.Errorf("disk stats empty: %+v", st)
	}
	if r := st.LiveRatio(); r != 1 {
		t.Errorf("live ratio of fresh store = %v, want 1", r)
	}
	d.DeleteWrite(1, 1)
	if r := d.Snapshot().LiveRatio(); r >= 1 {
		t.Errorf("live ratio after delete = %v, want < 1", r)
	}
}

func TestCachedStoreServesFromRAM(t *testing.T) {
	disk := newDisk(t, t.TempDir(), 0)
	c := NewCachedStore(disk, 1<<20)
	data := bytes.Repeat([]byte("x"), 512)
	if err := c.PutPages([]Page{{Blob: 1, Write: 1, RelPage: 0, Data: data}}); err != nil {
		t.Fatal(err)
	}
	// Write-through population: the read after a put must hit the cache,
	// not the disk.
	before := disk.Gets.Value()
	d, ok := c.GetPage(1, 1, 0)
	if !ok || !bytes.Equal(d, data) {
		t.Fatalf("GetPage = %v, %v", ok, d)
	}
	if disk.Gets.Value() != before {
		t.Error("cached read went to disk")
	}
	st := c.Snapshot()
	if st.CacheHits != 1 || st.CacheBytes == 0 {
		t.Errorf("cache stats = %+v", st)
	}
	// Deletion evicts: the page must be gone from both tiers.
	c.DeleteWrite(1, 1)
	if _, ok := c.GetPage(1, 1, 0); ok {
		t.Error("deleted page still served")
	}
}

func TestCachedStoreEviction(t *testing.T) {
	disk := newDisk(t, t.TempDir(), 0)
	c := NewCachedStore(disk, 256)
	for i := uint32(0); i < 8; i++ {
		if err := c.PutPages([]Page{{Blob: 1, Write: 1, RelPage: i, Data: bytes.Repeat([]byte{byte(i)}, 64)}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Snapshot(); st.CacheBytes > 256 {
		t.Errorf("cache over budget: %d bytes", st.CacheBytes)
	}
	// Every page is still readable — evicted ones come from disk.
	for i := uint32(0); i < 8; i++ {
		d, ok := c.GetPage(1, 1, i)
		if !ok || !bytes.Equal(d, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("page %d lost after eviction", i)
		}
	}
}

// TestServiceOverDiskBackend runs the RPC surface against a persistent
// backend, then restarts it over the same directory and reads back.
func TestServiceOverDiskBackend(t *testing.T) {
	dir := t.TempDir()
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	ctx := context.Background()

	start := func(name string) (*rpc.Server, string, *DiskStore) {
		d, err := NewDiskStore(diskstore.Options{Dir: dir}, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		NewService(d).RegisterHandlers(srv)
		l, err := fab.Host(name).Listen("rpc")
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(l)
		t.Cleanup(func() { srv.Close(); d.Close() })
		return srv, name + ":rpc", d
	}

	srv, addr, d := start("prov0")
	rels := []uint32{0, 1}
	datas := [][]byte{[]byte("persist me"), []byte("and me")}
	if _, err := pool.Call(ctx, addr, MPutPages, EncodePutPages(4, 44, rels, datas)); err != nil {
		t.Fatal(err)
	}
	sresp, err := pool.Call(ctx, addr, MStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeStats(sresp)
	if err != nil {
		t.Fatal(err)
	}
	if st.PageCount != 2 || st.DiskBytes == 0 || st.Segments == 0 {
		t.Errorf("stats over RPC = %+v", st)
	}

	// Crash the node, relaunch over the same directory, read back.
	srv.Close()
	d.Close()
	_, addr2, _ := start("prov1")
	resp, err := pool.Call(ctx, addr2, MGetPages, EncodeGetPages([]PageRef{{4, 44, 0}, {4, 44, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGetPages(resp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], datas[0]) || !bytes.Equal(got[1], datas[1]) {
		t.Errorf("after restart: %q, %q", got[0], got[1])
	}
}
