package mstore

import (
	"container/list"
	"sync"

	"blob/internal/meta"
	"blob/internal/stats"
)

// nodeCache is a sharded, bounded LRU over immutable metadata tree nodes.
// Because nodes are write-once and deterministically keyed, the cache
// needs no invalidation protocol — exactly why the paper reports that
// "client-side caching of metadata tree nodes results in optimizing out a
// large amount of RPC calls" (§V.D; their cache held 2^20 nodes).
type nodeCache struct {
	shards   [cacheShards]cacheShard
	capShard int

	hits   stats.Counter
	misses stats.Counter
}

const cacheShards = 16

type cacheShard struct {
	mu sync.Mutex
	m  map[meta.NodeKey]*list.Element
	ll *list.List
}

type cacheEntry struct {
	key  meta.NodeKey
	node *meta.Node
}

// newNodeCache creates a cache holding up to capacity nodes in total.
// A capacity of zero disables caching (every lookup misses).
func newNodeCache(capacity int) *nodeCache {
	c := &nodeCache{capShard: capacity / cacheShards}
	if capacity > 0 && c.capShard == 0 {
		c.capShard = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[meta.NodeKey]*list.Element)
		c.shards[i].ll = list.New()
	}
	return c
}

func (c *nodeCache) shard(k meta.NodeKey) *cacheShard {
	return &c.shards[k.Hash()&(cacheShards-1)]
}

// get returns the cached node, if present.
func (c *nodeCache) get(k meta.NodeKey) (*meta.Node, bool) {
	if c.capShard == 0 {
		c.misses.Inc()
		return nil, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if ok {
		sh.ll.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return el.Value.(*cacheEntry).node, true
}

// put inserts a node, evicting the least recently used entry if full.
func (c *nodeCache) put(k meta.NodeKey, n *meta.Node) {
	if c.capShard == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, dup := sh.m[k]; dup {
		sh.ll.MoveToFront(el)
		return
	}
	sh.m[k] = sh.ll.PushFront(&cacheEntry{key: k, node: n})
	if sh.ll.Len() > c.capShard {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.m, oldest.Value.(*cacheEntry).key)
	}
}

// remove drops a key (used after GC deletes nodes).
func (c *nodeCache) remove(k meta.NodeKey) {
	if c.capShard == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	if el, ok := sh.m[k]; ok {
		sh.ll.Remove(el)
		delete(sh.m, k)
	}
	sh.mu.Unlock()
}

// len returns the number of cached nodes.
func (c *nodeCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].ll.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits   int64
	Misses int64
	Len    int
}
