package mstore

import (
	"sync"

	"blob/internal/meta"
	"blob/internal/stats"
)

// nodeCache is a sharded, bounded LRU over immutable metadata tree nodes.
// Because nodes are write-once and deterministically keyed, the cache
// needs no invalidation protocol — exactly why the paper reports that
// "client-side caching of metadata tree nodes results in optimizing out a
// large amount of RPC calls" (§V.D; their cache held 2^20 nodes).
//
// The LRU list is intrusive: each entry embeds its own links, so an
// insert costs one allocation instead of the entry-plus-list-element
// pair container/list would allocate — metadata writes insert every
// stored node, which made that second allocation a measurable slice of
// the write hot path (docs/perf.md).
type nodeCache struct {
	shards   [cacheShards]cacheShard
	capShard int

	hits   stats.Counter
	misses stats.Counter
}

const cacheShards = 16

type cacheShard struct {
	mu   sync.Mutex
	m    map[meta.NodeKey]*cacheEntry
	head *cacheEntry // most recently used
	tail *cacheEntry // least recently used
	n    int
}

type cacheEntry struct {
	key        meta.NodeKey
	node       *meta.Node
	prev, next *cacheEntry
}

// newNodeCache creates a cache holding up to capacity nodes in total.
// A capacity of zero disables caching (every lookup misses).
func newNodeCache(capacity int) *nodeCache {
	c := &nodeCache{capShard: capacity / cacheShards}
	if capacity > 0 && c.capShard == 0 {
		c.capShard = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[meta.NodeKey]*cacheEntry)
	}
	return c
}

func (c *nodeCache) shard(k meta.NodeKey) *cacheShard {
	return &c.shards[k.Hash()&(cacheShards-1)]
}

// unlink removes e from the shard's LRU list (e must be linked).
func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront links e as the most recently used entry.
func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// get returns the cached node, if present.
func (c *nodeCache) get(k meta.NodeKey) (*meta.Node, bool) {
	if c.capShard == 0 {
		c.misses.Inc()
		return nil, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if ok && sh.head != e {
		sh.unlink(e)
		sh.pushFront(e)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return e.node, true
}

// put inserts a node, evicting the least recently used entry if full.
func (c *nodeCache) put(k meta.NodeKey, n *meta.Node) {
	if c.capShard == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, dup := sh.m[k]; dup {
		if sh.head != e {
			sh.unlink(e)
			sh.pushFront(e)
		}
		return
	}
	e := &cacheEntry{key: k, node: n}
	sh.m[k] = e
	sh.pushFront(e)
	sh.n++
	if sh.n > c.capShard {
		oldest := sh.tail
		sh.unlink(oldest)
		delete(sh.m, oldest.key)
		sh.n--
	}
}

// remove drops a key (used after GC deletes nodes).
func (c *nodeCache) remove(k meta.NodeKey) {
	if c.capShard == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		sh.unlink(e)
		delete(sh.m, k)
		sh.n--
	}
	sh.mu.Unlock()
}

// len returns the number of cached nodes.
func (c *nodeCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].n
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits   int64
	Misses int64
	Len    int
}
