package mstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"blob/internal/dht"
	"blob/internal/meta"
	"blob/internal/netsim"
	"blob/internal/rpc"
)

type hostDialer struct{ h *netsim.Host }

func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

// newFabric starts n metadata providers and returns an mstore client.
func newFabric(t testing.TB, n, cacheNodes int) *Client {
	t.Helper()
	fab := netsim.New(netsim.Fast())
	t.Cleanup(fab.Close)
	nodes := make([]dht.NodeInfo, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		st := dht.NewStore()
		st.RegisterHandlers(srv)
		host := fab.Host(fmt.Sprintf("meta%d", i))
		l, err := host.Listen("rpc")
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(l)
		t.Cleanup(srv.Close)
		nodes[i] = dht.NodeInfo{ID: uint64(i + 1), Addr: fmt.Sprintf("meta%d:rpc", i)}
	}
	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	t.Cleanup(pool.Close)
	kv := dht.NewClient(pool, dht.NewRing(nodes), 1)
	return New(kv, cacheNodes)
}

// writeVersion runs the full write-side metadata pipeline against an
// interval map, returning the built nodes.
func writeVersion(t testing.TB, c *Client, ivm *meta.IntervalVersionMap, blob uint64,
	v meta.Version, total uint64, wr meta.PageRange, writeID uint64) {
	t.Helper()
	borders := meta.Borders(total, wr)
	ivm.ResolveBorders(borders)
	ivm.Assign(wr, v)
	nodes, err := meta.Build(blob, v, total, wr, meta.BorderResolver(borders),
		func(p uint64) (meta.LeafData, error) {
			return meta.LeafData{Write: writeID, RelPage: uint32(p - wr.First), Providers: []uint32{1}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreNodes(context.Background(), nodes); err != nil {
		t.Fatal(err)
	}
}

func TestStoreFetchRoundTrip(t *testing.T) {
	c := newFabric(t, 3, 0)
	ctx := context.Background()
	n := meta.Node{
		Key:     meta.NodeKey{Blob: 1, Version: 1, Range: meta.NodeRange{Start: 0, Size: 8}},
		LeftVer: 1, RightVer: 0,
	}
	if err := c.StoreNodes(ctx, []meta.Node{n}); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchNode(ctx, n.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.LeftVer != 1 || got.RightVer != 0 {
		t.Errorf("fetched = %+v", got)
	}
}

func TestFetchMissing(t *testing.T) {
	c := newFabric(t, 2, 0)
	key := meta.NodeKey{Blob: 9, Version: 9, Range: meta.NodeRange{Start: 0, Size: 4}}
	if _, err := c.FetchNode(context.Background(), key); !errors.Is(err, ErrMissingNode) {
		t.Errorf("err = %v, want ErrMissingNode", err)
	}
	if _, err := c.FetchNodes(context.Background(), []meta.NodeKey{key}); !errors.Is(err, ErrMissingNode) {
		t.Errorf("batch err = %v, want ErrMissingNode", err)
	}
}

func TestReadPlanZeroVersion(t *testing.T) {
	c := newFabric(t, 2, 0)
	leaves, err := c.ReadPlan(context.Background(), 1, meta.ZeroVersion, 16, meta.PageRange{First: 3, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 5 {
		t.Fatalf("leaves = %d, want 5", len(leaves))
	}
	for i, l := range leaves {
		if l.Page != uint64(3+i) || l.Leaf.Write != 0 {
			t.Errorf("leaf %d = %+v", i, l)
		}
	}
}

func TestReadPlanResolvesAcrossVersions(t *testing.T) {
	c := newFabric(t, 4, 0)
	const total = 32
	const blob = 5
	ivm, _ := meta.NewIntervalVersionMap(total)

	writeVersion(t, c, ivm, blob, 1, total, meta.PageRange{First: 0, Count: 16}, 101)
	writeVersion(t, c, ivm, blob, 2, total, meta.PageRange{First: 8, Count: 8}, 102)
	writeVersion(t, c, ivm, blob, 3, total, meta.PageRange{First: 12, Count: 12}, 103)

	ctx := context.Background()
	// Version 3's view: pages 0-7 from write 101, 8-11 from 102,
	// 12-23 from 103, 24-31 zero.
	leaves, err := c.ReadPlan(ctx, blob, 3, total, meta.PageRange{First: 0, Count: 32})
	if err != nil {
		t.Fatal(err)
	}
	wantWrite := func(p uint64) uint64 {
		switch {
		case p < 8:
			return 101
		case p < 12:
			return 102
		case p < 24:
			return 103
		default:
			return 0
		}
	}
	for _, l := range leaves {
		if l.Leaf.Write != wantWrite(l.Page) {
			t.Errorf("v3 page %d -> write %d, want %d", l.Page, l.Leaf.Write, wantWrite(l.Page))
		}
	}

	// Version 1's view is unchanged by later writes (snapshot isolation).
	leaves, err = c.ReadPlan(ctx, blob, 1, total, meta.PageRange{First: 0, Count: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		if l.Leaf.Write != 101 {
			t.Errorf("v1 page %d -> write %d, want 101", l.Page, l.Leaf.Write)
		}
	}
}

func TestReadPlanSubRange(t *testing.T) {
	c := newFabric(t, 3, 0)
	const total = 64
	ivm, _ := meta.NewIntervalVersionMap(total)
	writeVersion(t, c, ivm, 1, 1, total, meta.PageRange{First: 0, Count: 64}, 500)

	leaves, err := c.ReadPlan(context.Background(), 1, 1, total, meta.PageRange{First: 17, Count: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 9 {
		t.Fatalf("leaves = %d, want 9", len(leaves))
	}
	for i, l := range leaves {
		if l.Page != uint64(17+i) {
			t.Errorf("leaf %d = page %d, want %d (sorted, contiguous)", i, l.Page, 17+i)
		}
		if l.Leaf.RelPage != uint32(l.Page) {
			t.Errorf("page %d rel = %d", l.Page, l.Leaf.RelPage)
		}
	}
}

func TestReadPlanRandomizedOracle(t *testing.T) {
	c := newFabric(t, 5, 0)
	const total = 64
	const blob = 2
	rng := rand.New(rand.NewSource(31))
	ivm, _ := meta.NewIntervalVersionMap(total)

	// Flat model: owner[v][p] = writeID.
	owners := [][]uint64{make([]uint64, total)}
	const writes = 20
	for v := meta.Version(1); v <= writes; v++ {
		first := uint64(rng.Intn(total))
		count := uint64(rng.Intn(int(total-first))) + 1
		wr := meta.PageRange{First: first, Count: count}
		writeID := 7000 + uint64(v)
		writeVersion(t, c, ivm, blob, v, total, wr, writeID)
		next := append([]uint64(nil), owners[v-1]...)
		for p := wr.First; p < wr.End(); p++ {
			next[p] = writeID
		}
		owners = append(owners, next)
	}

	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		v := meta.Version(rng.Intn(writes + 1))
		first := uint64(rng.Intn(total))
		count := uint64(rng.Intn(int(total-first))) + 1
		leaves, err := c.ReadPlan(ctx, blob, v, total, meta.PageRange{First: first, Count: count})
		if err != nil {
			t.Fatalf("v%d [%d,%d): %v", v, first, first+count, err)
		}
		for _, l := range leaves {
			if l.Leaf.Write != owners[v][l.Page] {
				t.Fatalf("v%d page %d -> %d, want %d", v, l.Page, l.Leaf.Write, owners[v][l.Page])
			}
		}
	}
}

func TestCacheServesRepeatReads(t *testing.T) {
	c := newFabric(t, 3, 1<<16)
	const total = 32
	ivm, _ := meta.NewIntervalVersionMap(total)
	writeVersion(t, c, ivm, 1, 1, total, meta.PageRange{First: 0, Count: 32}, 42)
	ctx := context.Background()

	// StoreNodes primed the cache; clear effect by measuring hit delta
	// across two identical reads.
	if _, err := c.ReadPlan(ctx, 1, 1, total, meta.PageRange{First: 0, Count: 32}); err != nil {
		t.Fatal(err)
	}
	h1 := c.CacheStats()
	if _, err := c.ReadPlan(ctx, 1, 1, total, meta.PageRange{First: 0, Count: 32}); err != nil {
		t.Fatal(err)
	}
	h2 := c.CacheStats()
	if h2.Misses != h1.Misses {
		t.Errorf("second identical read missed the cache: %+v -> %+v", h1, h2)
	}
	if h2.Hits <= h1.Hits {
		t.Error("second read produced no cache hits")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newFabric(t, 2, 0)
	const total = 8
	ivm, _ := meta.NewIntervalVersionMap(total)
	writeVersion(t, c, ivm, 1, 1, total, meta.PageRange{First: 0, Count: 8}, 42)
	ctx := context.Background()
	c.ReadPlan(ctx, 1, 1, total, meta.PageRange{First: 0, Count: 8})
	st := c.CacheStats()
	if st.Hits != 0 || st.Len != 0 {
		t.Errorf("disabled cache recorded hits: %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	cache := newNodeCache(32)
	for i := 0; i < 500; i++ {
		k := meta.NodeKey{Blob: 1, Version: meta.Version(i), Range: meta.NodeRange{Start: 0, Size: 1}}
		cache.put(k, &meta.Node{Key: k, Leaf: &meta.LeafData{Write: uint64(i)}})
	}
	if n := cache.len(); n > 32 {
		t.Errorf("cache grew to %d entries, cap 32", n)
	}
	// Most recent key should still be present.
	last := meta.NodeKey{Blob: 1, Version: 499, Range: meta.NodeRange{Start: 0, Size: 1}}
	if _, ok := cache.get(last); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestDeleteNodeRemovesEverywhere(t *testing.T) {
	c := newFabric(t, 2, 1<<10)
	ctx := context.Background()
	n := meta.Node{
		Key:  meta.NodeKey{Blob: 1, Version: 1, Range: meta.NodeRange{Start: 3, Size: 1}},
		Leaf: &meta.LeafData{Write: 9},
	}
	c.StoreNodes(ctx, []meta.Node{n})
	if err := c.DeleteNode(ctx, n.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchNode(ctx, n.Key); !errors.Is(err, ErrMissingNode) {
		t.Errorf("node survived delete: %v", err)
	}
}

func BenchmarkReadPlan128Pages(b *testing.B) {
	c := newFabric(b, 8, 0)
	const total = 1 << 16
	ivm, _ := meta.NewIntervalVersionMap(total)
	writeVersion(b, c, ivm, 1, 1, total, meta.PageRange{First: 0, Count: 1024}, 9)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadPlan(ctx, 1, 1, total, meta.PageRange{First: 128, Count: 128}); err != nil {
			b.Fatal(err)
		}
	}
}
