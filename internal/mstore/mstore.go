// Package mstore implements the metadata-provider client: typed storage
// and retrieval of segment-tree nodes over the DHT, plus the level-batched
// tree traversal a READ uses to resolve its segment to page locations.
//
// The traversal proceeds breadth-first: all node fetches of one tree
// level are issued as a single batch (grouped per metadata provider by
// the DHT client, coalesced into single frames by the RPC layer), so a
// read of a segment of P pages costs O(log2 totalPages) round trips of
// parallel requests rather than O(P log P) sequential lookups.
package mstore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blob/internal/dht"
	"blob/internal/meta"
	"blob/internal/trace"
	"blob/internal/wire"
)

// ErrMissingNode is returned when a tree node cannot be found on any
// metadata provider — either the version is not yet (fully) written or
// the metadata was lost.
var ErrMissingNode = errors.New("mstore: metadata node not found")

// Client provides typed access to the metadata providers.
type Client struct {
	kv    *dht.Client
	cache *nodeCache

	// ProcessDelay models the client-side cost of receiving and
	// deserializing one tree node fetched over the network (the paper's
	// §V.C observation that "the main limiting factor is actually the
	// performance of the client's processing power"). Cache hits skip
	// it, so it also drives the cached-vs-uncached gap of Figure 3c.
	// Zero (the default) disables the model.
	ProcessDelay time.Duration

	// Vectored selects the zero-copy store path: a write's nodes are
	// encoded into one shared arena and dispatched with scatter-gather
	// MultiPutVec requests whose value segments alias that arena. Off,
	// the legacy per-node encode + contiguous MultiPut path runs (the
	// hot-path ablation's baseline, core.Options.LegacyDataPath).
	Vectored bool
}

// DefaultCacheNodes mirrors the paper's experimental setup: the client
// cache can accommodate 2^20 tree nodes.
const DefaultCacheNodes = 1 << 20

// New creates a metadata client over kv with a node cache of cacheNodes
// entries (0 disables caching; negative uses DefaultCacheNodes).
func New(kv *dht.Client, cacheNodes int) *Client {
	if cacheNodes < 0 {
		cacheNodes = DefaultCacheNodes
	}
	return &Client{kv: kv, cache: newNodeCache(cacheNodes)}
}

// StoreNodes writes a batch of tree nodes to the metadata providers.
// Nodes are also inserted into the local cache: a writer frequently
// re-reads its own recent versions. On the vectored path the whole
// batch encodes into one arena whose slices ride the scatter-gather
// MultiPutVec untouched; a sealed arena slice stays valid even when
// later encodes grow the arena into fresh memory.
func (c *Client) StoreNodes(ctx context.Context, nodes []meta.Node) error {
	ctx, op := trace.Start(ctx, "mstore.store")
	op.Notef("%d nodes", len(nodes))
	kvs := make([]dht.KV, len(nodes))
	var err error
	if c.Vectored {
		arena := wire.NewWriter(96 * len(nodes))
		start := 0
		for i := range nodes {
			nodes[i].EncodeTo(arena)
			end := arena.Len()
			kvs[i] = dht.KV{Key: nodes[i].Key.Hash(), Value: arena.Bytes()[start:end:end]}
			start = end
		}
		err = c.kv.MultiPutVec(ctx, kvs)
	} else {
		for i := range nodes {
			kvs[i] = dht.KV{Key: nodes[i].Key.Hash(), Value: nodes[i].Encode()}
		}
		err = c.kv.MultiPut(ctx, kvs)
	}
	op.EndErr(err)
	if err != nil {
		return fmt.Errorf("mstore: store %d nodes: %w", len(nodes), err)
	}
	for i := range nodes {
		n := nodes[i]
		c.cache.put(n.Key, &n)
	}
	return nil
}

// FetchNode retrieves a single node.
func (c *Client) FetchNode(ctx context.Context, key meta.NodeKey) (*meta.Node, error) {
	if n, ok := c.cache.get(key); ok {
		return n, nil
	}
	ctx, op := trace.Start(ctx, "mstore.fetch")
	body, err := c.kv.Get(ctx, key.Hash())
	op.EndErr(err)
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return nil, fmt.Errorf("%w: %+v", ErrMissingNode, key)
		}
		return nil, err
	}
	if c.ProcessDelay > 0 {
		time.Sleep(c.ProcessDelay)
	}
	n, err := meta.DecodeNode(body, key)
	if err != nil {
		return nil, err
	}
	c.cache.put(key, n)
	return n, nil
}

// FetchNodes retrieves a batch of nodes, serving what it can from the
// cache and batching the rest per provider. Missing nodes yield
// ErrMissingNode.
func (c *Client) FetchNodes(ctx context.Context, keys []meta.NodeKey) (map[meta.NodeKey]*meta.Node, error) {
	out := make(map[meta.NodeKey]*meta.Node, len(keys))
	var missKeys []meta.NodeKey
	var missHashes []uint64
	for _, k := range keys {
		if n, ok := c.cache.get(k); ok {
			out[k] = n
			continue
		}
		missKeys = append(missKeys, k)
		missHashes = append(missHashes, k.Hash())
	}
	if len(missKeys) == 0 {
		return out, nil
	}
	fctx, op := trace.Start(ctx, "mstore.fetch")
	op.Notef("%d/%d cached", len(keys)-len(missKeys), len(keys))
	got, err := c.kv.MultiGet(fctx, missHashes)
	op.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("mstore: fetch %d nodes: %w", len(missKeys), err)
	}
	if c.ProcessDelay > 0 {
		// One sleep for the whole batch: the per-node costs are
		// sequential on the client CPU.
		time.Sleep(time.Duration(len(missKeys)) * c.ProcessDelay)
	}
	for i, k := range missKeys {
		body, ok := got[missHashes[i]]
		if !ok {
			return nil, fmt.Errorf("%w: %+v", ErrMissingNode, k)
		}
		n, err := meta.DecodeNode(body, k)
		if err != nil {
			return nil, err
		}
		c.cache.put(k, n)
		out[k] = n
	}
	return out, nil
}

// DeleteNode removes a node from the providers and the local cache (GC).
func (c *Client) DeleteNode(ctx context.Context, key meta.NodeKey) error {
	c.cache.remove(key)
	return c.kv.Delete(ctx, key.Hash())
}

// PageLeaf is one resolved page of a read plan.
type PageLeaf struct {
	// Page is the absolute page index within the blob.
	Page uint64
	// Leaf locates the bytes; Leaf.Write == 0 denotes the zero page.
	Leaf meta.LeafData
}

// ReadPlan resolves the segment pr of version v down to its page
// locations by descending the version's tree. The returned leaves are
// sorted by page index and cover every page of pr (zero pages included,
// with Leaf.Write == 0).
//
// The plan covers a contiguous page range, so every resolved leaf's
// slot is its page offset within pr: leaves are placed directly into a
// pre-sized slice in O(n), with no comparison sort. A coverage bitmap
// keeps the old integrity check's strength — a tree that resolves a
// page twice or not at all is reported, never silently accepted.
//
// Per the paper's read protocol, the traversal needs no locks and no
// interaction with the version manager: the sub-forest reachable from a
// published version's root is immutable.
func (c *Client) ReadPlan(ctx context.Context, blob uint64, v meta.Version, totalPages uint64, pr meta.PageRange) ([]PageLeaf, error) {
	if err := meta.ValidateGeometry(totalPages, pr); err != nil {
		return nil, err
	}
	// Pre-fill the plan with zero pages in order; resolving a leaf (or
	// absorbing a zero subtree) then only touches its own slots.
	leaves := make([]PageLeaf, pr.Count)
	for i := range leaves {
		leaves[i].Page = pr.First + uint64(i)
	}
	if v == meta.ZeroVersion {
		return leaves, nil
	}
	covered := make([]bool, pr.Count)
	placed := uint64(0)
	cover := func(lo, hi uint64) error { // [lo,hi) absolute page indexes
		for p := lo; p < hi; p++ {
			if covered[p-pr.First] {
				return fmt.Errorf("mstore: read plan resolved page %d twice (corrupt tree?)", p)
			}
			covered[p-pr.First] = true
		}
		placed += hi - lo
		return nil
	}

	frontier := []meta.NodeKey{meta.RootKey(blob, v, totalPages)}
	for len(frontier) > 0 {
		nodes, err := c.FetchNodes(ctx, frontier)
		if err != nil {
			return nil, err
		}
		var next []meta.NodeKey
		for _, key := range frontier {
			n := nodes[key]
			if n.IsLeaf() {
				p := n.Key.Range.Start
				if p < pr.First || p >= pr.End() {
					return nil, fmt.Errorf("mstore: read plan leaf %d outside segment [%d,%d) (corrupt tree?)", p, pr.First, pr.End())
				}
				if err := cover(p, p+1); err != nil {
					return nil, err
				}
				leaves[p-pr.First].Leaf = *n.Leaf
				continue
			}
			left, right := n.Key.Range.Children()
			for _, side := range [2]struct {
				r   meta.NodeRange
				ver meta.Version
			}{{left, n.LeftVer}, {right, n.RightVer}} {
				if !pr.Intersects(side.r) {
					continue
				}
				if side.ver == meta.ZeroVersion {
					lo, hi := side.r.Start, side.r.End()
					if lo < pr.First {
						lo = pr.First
					}
					if hi > pr.End() {
						hi = pr.End()
					}
					if err := cover(lo, hi); err != nil {
						return nil, err
					}
					continue
				}
				next = append(next, meta.NodeKey{Blob: blob, Version: side.ver, Range: side.r})
			}
		}
		frontier = next
	}
	if placed != pr.Count {
		return nil, fmt.Errorf("mstore: read plan resolved %d pages, want %d (corrupt tree?)", placed, pr.Count)
	}
	return leaves, nil
}

// CacheStats returns local cache effectiveness counters.
func (c *Client) CacheStats() CacheStats {
	return CacheStats{
		Hits:   c.cache.hits.Value(),
		Misses: c.cache.misses.Value(),
		Len:    c.cache.len(),
	}
}

// StoreStats returns per-provider storage statistics.
func (c *Client) StoreStats(ctx context.Context) (map[string]dht.StoreStats, error) {
	return c.kv.Stats(ctx)
}

// Refresh refetches the metadata provider membership from the
// directory, if the underlying kv client knows one. Long-lived agents
// (the repairer) call this per sweep: a boot-time ring snapshot can
// predate some providers' registration, and a stale ring hashes node
// keys to the wrong provider forever.
func (c *Client) Refresh(ctx context.Context) error {
	return c.kv.Refresh(ctx)
}
