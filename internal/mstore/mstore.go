// Package mstore implements the metadata-provider client: typed storage
// and retrieval of segment-tree nodes over the DHT, plus the level-batched
// tree traversal a READ uses to resolve its segment to page locations.
//
// The traversal proceeds breadth-first: all node fetches of one tree
// level are issued as a single batch (grouped per metadata provider by
// the DHT client, coalesced into single frames by the RPC layer), so a
// read of a segment of P pages costs O(log2 totalPages) round trips of
// parallel requests rather than O(P log P) sequential lookups.
package mstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"blob/internal/dht"
	"blob/internal/meta"
)

// ErrMissingNode is returned when a tree node cannot be found on any
// metadata provider — either the version is not yet (fully) written or
// the metadata was lost.
var ErrMissingNode = errors.New("mstore: metadata node not found")

// Client provides typed access to the metadata providers.
type Client struct {
	kv    *dht.Client
	cache *nodeCache

	// ProcessDelay models the client-side cost of receiving and
	// deserializing one tree node fetched over the network (the paper's
	// §V.C observation that "the main limiting factor is actually the
	// performance of the client's processing power"). Cache hits skip
	// it, so it also drives the cached-vs-uncached gap of Figure 3c.
	// Zero (the default) disables the model.
	ProcessDelay time.Duration
}

// DefaultCacheNodes mirrors the paper's experimental setup: the client
// cache can accommodate 2^20 tree nodes.
const DefaultCacheNodes = 1 << 20

// New creates a metadata client over kv with a node cache of cacheNodes
// entries (0 disables caching; negative uses DefaultCacheNodes).
func New(kv *dht.Client, cacheNodes int) *Client {
	if cacheNodes < 0 {
		cacheNodes = DefaultCacheNodes
	}
	return &Client{kv: kv, cache: newNodeCache(cacheNodes)}
}

// StoreNodes writes a batch of tree nodes to the metadata providers.
// Nodes are also inserted into the local cache: a writer frequently
// re-reads its own recent versions.
func (c *Client) StoreNodes(ctx context.Context, nodes []meta.Node) error {
	kvs := make([]dht.KV, len(nodes))
	for i := range nodes {
		kvs[i] = dht.KV{Key: nodes[i].Key.Hash(), Value: nodes[i].Encode()}
	}
	if err := c.kv.MultiPut(ctx, kvs); err != nil {
		return fmt.Errorf("mstore: store %d nodes: %w", len(nodes), err)
	}
	for i := range nodes {
		n := nodes[i]
		c.cache.put(n.Key, &n)
	}
	return nil
}

// FetchNode retrieves a single node.
func (c *Client) FetchNode(ctx context.Context, key meta.NodeKey) (*meta.Node, error) {
	if n, ok := c.cache.get(key); ok {
		return n, nil
	}
	body, err := c.kv.Get(ctx, key.Hash())
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return nil, fmt.Errorf("%w: %+v", ErrMissingNode, key)
		}
		return nil, err
	}
	if c.ProcessDelay > 0 {
		time.Sleep(c.ProcessDelay)
	}
	n, err := meta.DecodeNode(body, key)
	if err != nil {
		return nil, err
	}
	c.cache.put(key, n)
	return n, nil
}

// FetchNodes retrieves a batch of nodes, serving what it can from the
// cache and batching the rest per provider. Missing nodes yield
// ErrMissingNode.
func (c *Client) FetchNodes(ctx context.Context, keys []meta.NodeKey) (map[meta.NodeKey]*meta.Node, error) {
	out := make(map[meta.NodeKey]*meta.Node, len(keys))
	var missKeys []meta.NodeKey
	var missHashes []uint64
	for _, k := range keys {
		if n, ok := c.cache.get(k); ok {
			out[k] = n
			continue
		}
		missKeys = append(missKeys, k)
		missHashes = append(missHashes, k.Hash())
	}
	if len(missKeys) == 0 {
		return out, nil
	}
	got, err := c.kv.MultiGet(ctx, missHashes)
	if err != nil {
		return nil, fmt.Errorf("mstore: fetch %d nodes: %w", len(missKeys), err)
	}
	if c.ProcessDelay > 0 {
		// One sleep for the whole batch: the per-node costs are
		// sequential on the client CPU.
		time.Sleep(time.Duration(len(missKeys)) * c.ProcessDelay)
	}
	for i, k := range missKeys {
		body, ok := got[missHashes[i]]
		if !ok {
			return nil, fmt.Errorf("%w: %+v", ErrMissingNode, k)
		}
		n, err := meta.DecodeNode(body, k)
		if err != nil {
			return nil, err
		}
		c.cache.put(k, n)
		out[k] = n
	}
	return out, nil
}

// DeleteNode removes a node from the providers and the local cache (GC).
func (c *Client) DeleteNode(ctx context.Context, key meta.NodeKey) error {
	c.cache.remove(key)
	return c.kv.Delete(ctx, key.Hash())
}

// PageLeaf is one resolved page of a read plan.
type PageLeaf struct {
	// Page is the absolute page index within the blob.
	Page uint64
	// Leaf locates the bytes; Leaf.Write == 0 denotes the zero page.
	Leaf meta.LeafData
}

// ReadPlan resolves the segment pr of version v down to its page
// locations by descending the version's tree. The returned leaves are
// sorted by page index and cover every page of pr (zero pages included,
// with Leaf.Write == 0).
//
// Per the paper's read protocol, the traversal needs no locks and no
// interaction with the version manager: the sub-forest reachable from a
// published version's root is immutable.
func (c *Client) ReadPlan(ctx context.Context, blob uint64, v meta.Version, totalPages uint64, pr meta.PageRange) ([]PageLeaf, error) {
	if err := meta.ValidateGeometry(totalPages, pr); err != nil {
		return nil, err
	}
	leaves := make([]PageLeaf, 0, pr.Count)
	if v == meta.ZeroVersion {
		for p := pr.First; p < pr.End(); p++ {
			leaves = append(leaves, PageLeaf{Page: p})
		}
		return leaves, nil
	}

	frontier := []meta.NodeKey{meta.RootKey(blob, v, totalPages)}
	for len(frontier) > 0 {
		nodes, err := c.FetchNodes(ctx, frontier)
		if err != nil {
			return nil, err
		}
		var next []meta.NodeKey
		for _, key := range frontier {
			n := nodes[key]
			if n.IsLeaf() {
				leaves = append(leaves, PageLeaf{Page: n.Key.Range.Start, Leaf: *n.Leaf})
				continue
			}
			left, right := n.Key.Range.Children()
			for _, side := range [2]struct {
				r   meta.NodeRange
				ver meta.Version
			}{{left, n.LeftVer}, {right, n.RightVer}} {
				if !pr.Intersects(side.r) {
					continue
				}
				if side.ver == meta.ZeroVersion {
					appendZeroPages(&leaves, side.r, pr)
					continue
				}
				next = append(next, meta.NodeKey{Blob: blob, Version: side.ver, Range: side.r})
			}
		}
		frontier = next
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Page < leaves[j].Page })
	if uint64(len(leaves)) != pr.Count {
		return nil, fmt.Errorf("mstore: read plan resolved %d pages, want %d (corrupt tree?)", len(leaves), pr.Count)
	}
	return leaves, nil
}

// appendZeroPages records the pages of r∩pr as zero pages.
func appendZeroPages(leaves *[]PageLeaf, r meta.NodeRange, pr meta.PageRange) {
	lo, hi := r.Start, r.End()
	if lo < pr.First {
		lo = pr.First
	}
	if hi > pr.End() {
		hi = pr.End()
	}
	for p := lo; p < hi; p++ {
		*leaves = append(*leaves, PageLeaf{Page: p})
	}
}

// CacheStats returns local cache effectiveness counters.
func (c *Client) CacheStats() CacheStats {
	return CacheStats{
		Hits:   c.cache.hits.Value(),
		Misses: c.cache.misses.Value(),
		Len:    c.cache.len(),
	}
}

// StoreStats returns per-provider storage statistics.
func (c *Client) StoreStats(ctx context.Context) (map[string]dht.StoreStats, error) {
	return c.kv.Stats(ctx)
}
