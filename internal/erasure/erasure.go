// Package erasure implements Reed-Solomon erasure coding of page groups
// — the storage-efficient alternative to full page replication
// (normative spec: docs/erasure.md). A blob in rs(k,m) mode groups each
// k consecutive page slots of a write into a stripe, computes m parity
// pages over them, and spreads the k+m shards over k+m distinct data
// providers. Any k surviving shards reconstruct the rest, so the stripe
// tolerates m provider losses at a storage overhead of (k+m)/k — e.g.
// rs(4,2) matches 2-replication's fault tolerance at 1.5x instead of 2x.
//
// The codec is a systematic Vandermonde-style construction over GF(2^8)
// built from a Cauchy matrix: the first k rows of the encode matrix are
// the identity (data shards are stored verbatim — reads in the healthy
// path never touch the codec), and the m parity rows are
// inv(x_i XOR y_j) with distinct field points x_i = k+i, y_j = j. Every
// square submatrix of a Cauchy matrix is invertible, which combined
// with the identity rows makes the construction MDS: any k of the k+m
// shards recover the stripe.
//
// Parity pages are ordinary pages to the provider layer: they are keyed
// (blob, write, rel) like data pages, with parity slots carved out of
// the high half of the rel-page space (ParityFlag). Every PageStore
// backend therefore stores, serves, repairs and garbage-collects parity
// without knowing it exists.
package erasure

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"sync"
)

// Shard-count limits: GF(2^8) gives 256 distinct evaluation points, so
// k+m may not exceed 256.
const maxShards = 256

// Errors returned by the codec.
var (
	// ErrTooFewShards is returned by Reconstruct when fewer than k
	// shards survive — the stripe is lost.
	ErrTooFewShards = errors.New("erasure: fewer than k shards survive")
	// ErrShardSize is returned when shards have mismatched or zero sizes.
	ErrShardSize = errors.New("erasure: shard size mismatch")
)

// gfExp and gfLog are the exponential and logarithm tables of GF(2^8)
// under the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d). gfExp is
// doubled so products of two logs index without a modulo.
var (
	gfExp [512]byte
	gfLog [256]int32
	// gfMulTable[c][x] = c*x in GF(2^8); 64 KB, built once, makes the
	// encode/decode inner loops a single table lookup per byte.
	gfMulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = int32(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 1; c < 256; c++ {
		for x := 1; x < 256; x++ {
			gfMulTable[c][x] = gfExp[gfLog[c]+gfLog[x]]
		}
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte { return gfMulTable[a][b] }

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte { return gfExp[255-gfLog[a]] }

// Code is an RS(k,m) codec: k data shards, m parity shards. It is
// immutable and safe for concurrent use.
type Code struct {
	k, m int
	// matrix is the (k+m)xk systematic encode matrix: shard i is the
	// dot product of row i with the k data shards. Rows [0,k) are the
	// identity, rows [k,k+m) the Cauchy parity rows.
	matrix [][]byte
}

// New builds an RS(k,m) codec. 1 <= k, 1 <= m, k+m <= 256.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 || k+m > maxShards {
		return nil, fmt.Errorf("erasure: invalid geometry rs(%d,%d): need k>=1, m>=1, k+m<=%d", k, m, maxShards)
	}
	mat := make([][]byte, k+m)
	for i := range mat {
		mat[i] = make([]byte, k)
	}
	for i := 0; i < k; i++ {
		mat[i][i] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			mat[k+i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return &Code{k: k, m: m, matrix: mat}, nil
}

var (
	codecMu    sync.Mutex
	codecCache = make(map[[2]int]*Code)
)

// Cached returns a shared codec for the geometry; codecs are immutable,
// so the read/write/repair hot paths reuse one matrix per (k,m) instead
// of rebuilding it per stripe.
func Cached(k, m int) (*Code, error) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if c, ok := codecCache[[2]int{k, m}]; ok {
		return c, nil
	}
	c, err := New(k, m)
	if err != nil {
		return nil, err
	}
	codecCache[[2]int{k, m}] = c
	return c, nil
}

// K returns the data shard count.
func (c *Code) K() int { return c.k }

// M returns the parity shard count.
func (c *Code) M() int { return c.m }

// MatrixRow exposes one encode-matrix row (tests pin the golden matrix
// so the construction can never silently change).
func (c *Code) MatrixRow(i int) []byte {
	return append([]byte(nil), c.matrix[i]...)
}

// mulAdd accumulates dst ^= coef*src bytewise.
func mulAdd(dst, src []byte, coef byte) {
	switch coef {
	case 0:
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		tbl := &gfMulTable[coef]
		for i, s := range src {
			dst[i] ^= tbl[s]
		}
	}
}

// Encode computes the m parity shards of k equal-length data shards.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: encode got %d data shards, codec is rs(%d,%d)", len(data), c.k, c.m)
	}
	size := len(data[0])
	for _, d := range data {
		if len(d) != size || size == 0 {
			return nil, ErrShardSize
		}
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
		row := c.matrix[c.k+i]
		for j, src := range data {
			mulAdd(parity[i], src, row[j])
		}
	}
	return parity, nil
}

// Reconstruct fills in the missing (nil) entries of a full shard slice:
// shards[0:k] are data, shards[k:k+m] parity. Any k present shards
// recover all the rest; fewer returns ErrTooFewShards. Present shards
// are never modified; reconstructed ones are freshly allocated.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("erasure: reconstruct got %d shards, codec is rs(%d,%d)", len(shards), c.k, c.m)
	}
	size, present := 0, 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size == 0 {
			size = len(s)
		}
		if len(s) != size || size == 0 {
			return ErrShardSize
		}
		present++
	}
	if present < c.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, present, c.k+c.m, c.k)
	}

	dataMissing := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			dataMissing = true
			break
		}
	}
	if dataMissing {
		// Decode: take the encode-matrix rows of the first k present
		// shards, invert them, and multiply the present shards back
		// through the inverse to recover every data shard.
		rows := make([]int, 0, c.k)
		for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
			if shards[i] != nil {
				rows = append(rows, i)
			}
		}
		sub := make([][]byte, c.k)
		for i, r := range rows {
			sub[i] = append([]byte(nil), c.matrix[r]...)
		}
		inv, err := invert(sub)
		if err != nil {
			return err // unreachable for a Cauchy construction
		}
		for i := 0; i < c.k; i++ {
			if shards[i] != nil {
				continue
			}
			out := make([]byte, size)
			for j, r := range rows {
				mulAdd(out, shards[r], inv[i][j])
			}
			shards[i] = out
		}
	}
	// Data is complete: recompute any missing parity directly.
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.matrix[c.k+i]
		for j := 0; j < c.k; j++ {
			mulAdd(out, shards[j], row[j])
		}
		shards[c.k+i] = out
	}
	return nil
}

// invert returns the inverse of a square matrix over GF(2^8) by
// Gauss-Jordan elimination. The input is consumed.
func invert(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("erasure: singular decode matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if d := m[col][col]; d != 1 {
			di := gfInv(d)
			for j := 0; j < n; j++ {
				m[col][j] = gfMul(m[col][j], di)
				inv[col][j] = gfMul(inv[col][j], di)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gfMul(f, m[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Redundancy names a deployment's (or blob's) page redundancy scheme:
// the zero value is full replication (the paper's mode, copy count set
// by the data replication factor); K > 0 selects rs(K,M) erasure-coded
// stripes.
type Redundancy struct {
	K int // data shards per stripe; 0 = full replication
	M int // parity shards per stripe
	// Pinned marks a mode the user chose explicitly (ParseRedundancy
	// sets it for every non-empty input). Only consultation points that
	// fall back to an advertised default care: an unpinned zero value
	// means "defer to the deployment", a pinned one means "replicate,
	// even if the deployment advertises rs". Pinned is client-side
	// intent only — it is never stored or sent on the wire.
	Pinned bool
}

// IsRS reports whether the mode is erasure coding.
func (r Redundancy) IsRS() bool { return r.K > 0 }

// Shards returns K+M, the provider group size of one stripe.
func (r Redundancy) Shards() int { return r.K + r.M }

// Overhead returns the storage expansion factor: (K+M)/K for RS, or
// float64(replicas) for replication.
func (r Redundancy) Overhead(replicas int) float64 {
	if r.IsRS() {
		return float64(r.K+r.M) / float64(r.K)
	}
	if replicas < 1 {
		replicas = 1
	}
	return float64(replicas)
}

// Validate checks the geometry.
func (r Redundancy) Validate() error {
	if !r.IsRS() {
		if r.M != 0 {
			return fmt.Errorf("erasure: parity %d without data shards", r.M)
		}
		return nil
	}
	_, err := New(r.K, r.M)
	return err
}

// String renders the mode in the form ParseRedundancy accepts.
func (r Redundancy) String() string {
	if !r.IsRS() {
		return "replicate"
	}
	return fmt.Sprintf("rs(%d,%d)", r.K, r.M)
}

var rsModeRE = regexp.MustCompile(`^rs\((\d+),(\d+)\)$`)

// ParseRedundancy parses "replicate" or "rs(k,m)" (e.g. "rs(4,2)").
// Any non-empty input returns a Pinned mode: an explicit "replicate"
// overrides an advertised rs default instead of deferring to it.
func ParseRedundancy(s string) (Redundancy, error) {
	if s == "" {
		return Redundancy{}, nil
	}
	if s == "replicate" {
		return Redundancy{Pinned: true}, nil
	}
	m := rsModeRE.FindStringSubmatch(s)
	if m == nil {
		return Redundancy{}, fmt.Errorf("erasure: bad redundancy mode %q (want \"replicate\" or \"rs(k,m)\")", s)
	}
	k, _ := strconv.Atoi(m[1])
	p, _ := strconv.Atoi(m[2])
	r := Redundancy{K: k, M: p, Pinned: true}
	if err := r.Validate(); err != nil {
		return Redundancy{}, err
	}
	return r, nil
}
