package erasure

// Stripe layout (docs/erasure.md §2). A write of n pages in rs(k,m)
// mode is cut into ceil(n/k) stripes of k consecutive page slots; a
// final short stripe simply uses a smaller k' = n mod k (the codec
// accepts any geometry, and a self-describing per-stripe k keeps short
// writes from paying zero-padding transfers). Each stripe's m parity
// pages are stored under the same (blob, write) key as its data pages,
// in the parity half of the rel-page space: parity j of stripe s lives
// at rel = ParityFlag | s*m + j. Data writes are bounded well below
// 2^31 pages, so the flag bit can never collide with a data rel.

// ParityFlag marks parity slots in a write's rel-page space. Data pages
// of a write occupy rels [0, n); parity pages occupy
// ParityFlag | [0, ceil(n/k)*m).
const ParityFlag uint32 = 1 << 31

// IsParityRel reports whether a rel-page addresses a parity slot.
func IsParityRel(rel uint32) bool { return rel&ParityFlag != 0 }

// ParityRel returns the rel-page of parity shard j of stripe s under m
// parity shards per stripe.
func ParityRel(stripe uint32, j, m int) uint32 {
	return ParityFlag | (stripe*uint32(m) + uint32(j))
}

// NumStripes returns how many stripes a write of n pages forms under k
// data shards per stripe.
func NumStripes(n uint64, k int) uint64 {
	return (n + uint64(k) - 1) / uint64(k)
}

// StripeOf returns the stripe index of data rel r under k data shards
// per stripe.
func StripeOf(rel uint32, k int) uint32 { return rel / uint32(k) }

// StripeWidth returns the data shard count k' of stripe s of an n-page
// write under k data shards per stripe: k for full stripes, n mod k for
// a short final stripe.
func StripeWidth(s uint64, n uint64, k int) int {
	first := s * uint64(k)
	if rem := n - first; rem < uint64(k) {
		return int(rem)
	}
	return k
}
