package erasure

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// TestGFAxioms sanity-checks the field tables: multiplicative inverses
// and distributivity over a sample of elements.
func TestGFAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails for %d,%d", a, b)
		}
	}
}

// TestRoundTripAllLossPatterns drops every subset of up to m shards of
// an rs(4,2) and an rs(3,3) stripe and reconstructs, byte-comparing the
// result against the originals.
func TestRoundTripAllLossPatterns(t *testing.T) {
	for _, geom := range []struct{ k, m int }{{4, 2}, {3, 3}, {1, 1}, {2, 1}} {
		c, err := New(geom.k, geom.m)
		if err != nil {
			t.Fatal(err)
		}
		n := geom.k + geom.m
		rng := rand.New(rand.NewSource(42))
		data := make([][]byte, geom.k)
		for i := range data {
			data[i] = make([]byte, 64)
			rng.Read(data[i])
		}
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([][]byte{}, data...), parity...)

		// Every loss mask with <= m bits set must reconstruct.
		for mask := 0; mask < 1<<n; mask++ {
			lost := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					lost++
				}
			}
			if lost == 0 || lost > geom.m {
				continue
			}
			shards := make([][]byte, n)
			for i := range shards {
				if mask&(1<<i) == 0 {
					shards[i] = full[i]
				}
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("rs(%d,%d) mask %b: %v", geom.k, geom.m, mask, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], full[i]) {
					t.Fatalf("rs(%d,%d) mask %b: shard %d differs", geom.k, geom.m, mask, i)
				}
			}
		}
	}
}

// TestTooFewShards pins the failure mode past the MDS limit.
func TestTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	shards := make([][]byte, 6)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	shards[2] = make([]byte, 8)
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with 3 of 6 shards should fail")
	}
}

// TestGoldenMatrix pins the rs(4,2) encode matrix byte-for-byte: the
// stripe layout on disk depends on it, so it must never silently change
// (a different matrix would make existing parity undecodable).
func TestGoldenMatrix(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	// Parity rows: inv((k+i) ^ j) for i in [0,2), j in [0,4).
	for i := 0; i < 2; i++ {
		row := make([]byte, 4)
		for j := 0; j < 4; j++ {
			row[j] = gfInv(byte(4+i) ^ byte(j))
		}
		want = append(want, row)
	}
	for i := range want {
		if got := c.MatrixRow(i); !bytes.Equal(got, want[i]) {
			t.Fatalf("matrix row %d = %v, want %v", i, got, want[i])
		}
	}
}

// TestGoldenEncoding pins an end-to-end parity vector: a fixed rs(4,2)
// stripe must always encode to these exact parity bytes. If the field
// polynomial, the table construction, or the matrix ever changes, this
// fails before any on-disk stripe becomes undecodable.
func TestGoldenEncoding(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{
		{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07},
		{0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17},
		{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87},
		{0xde, 0xad, 0xbe, 0xef, 0x00, 0xff, 0x55, 0xaa},
	}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(parity[0]) + "|" + hex.EncodeToString(parity[1])
	const want = "19b3b4a933ad47d9|6e3614439f0e62f3"
	if got != want {
		t.Fatalf("golden rs(4,2) parity drifted:\n got %s\nwant %s", got, want)
	}
}

// TestShortStripeGeometry exercises the per-stripe width helper and a
// short stripe round trip (k'=2 under nominal rs(4,2)).
func TestShortStripeGeometry(t *testing.T) {
	if n := NumStripes(10, 4); n != 3 {
		t.Fatalf("NumStripes(10,4) = %d", n)
	}
	if w := StripeWidth(2, 10, 4); w != 2 {
		t.Fatalf("StripeWidth(2,10,4) = %d", w)
	}
	if w := StripeWidth(1, 10, 4); w != 4 {
		t.Fatalf("StripeWidth(1,10,4) = %d", w)
	}
	c, err := New(2, 2) // the short stripe's own geometry
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1, 2, 3}, {4, 5, 6}}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{nil, nil, parity[0], parity[1]}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0], data[0]) || !bytes.Equal(shards[1], data[1]) {
		t.Fatal("short stripe reconstruct mismatch")
	}
}

// TestParityRelSpace pins the rel-page carving for parity slots.
func TestParityRelSpace(t *testing.T) {
	if r := ParityRel(0, 0, 2); r != ParityFlag {
		t.Fatalf("ParityRel(0,0,2) = %#x", r)
	}
	if r := ParityRel(3, 1, 2); r != ParityFlag|7 {
		t.Fatalf("ParityRel(3,1,2) = %#x", r)
	}
	if IsParityRel(7) || !IsParityRel(ParityFlag|7) {
		t.Fatal("IsParityRel misclassifies")
	}
	if s := StripeOf(11, 4); s != 2 {
		t.Fatalf("StripeOf(11,4) = %d", s)
	}
}

// TestParseRedundancy covers the mode grammar.
func TestParseRedundancy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Redundancy
		ok   bool
	}{
		{"", Redundancy{}, true}, // unset: defer to the advertised mode
		{"replicate", Redundancy{Pinned: true}, true},
		{"rs(4,2)", Redundancy{K: 4, M: 2, Pinned: true}, true},
		{"rs(1,1)", Redundancy{K: 1, M: 1, Pinned: true}, true},
		{"rs(0,2)", Redundancy{}, false},
		{"rs(4,0)", Redundancy{}, false},
		{"rs(200,100)", Redundancy{}, false}, // k+m > 256
		{"rs(4;2)", Redundancy{}, false},
		{"raid5", Redundancy{}, false},
	} {
		got, err := ParseRedundancy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseRedundancy(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseRedundancy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	if s := (Redundancy{K: 4, M: 2}).String(); s != "rs(4,2)" {
		t.Fatalf("String() = %q", s)
	}
	if s := (Redundancy{}).String(); s != "replicate" {
		t.Fatalf("String() = %q", s)
	}
	if o := (Redundancy{K: 4, M: 2}).Overhead(0); o != 1.5 {
		t.Fatalf("Overhead = %v", o)
	}
}

// BenchmarkEncode measures parity throughput at the default page size.
func BenchmarkEncode(b *testing.B) {
	c, _ := New(4, 2)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64<<10)
	}
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstruct measures the degraded-read decode cost: two data
// shards lost from an rs(4,2) stripe of 64 KB pages.
func BenchmarkReconstruct(b *testing.B) {
	c, _ := New(4, 2)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		for j := range data[i] {
			data[i][j] = byte(i * j)
		}
	}
	parity, _ := c.Encode(data)
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := [][]byte{nil, data[1], nil, data[3], parity[0], parity[1]}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCode() {
	c, _ := New(4, 2)
	data := [][]byte{{1}, {2}, {3}, {4}}
	parity, _ := c.Encode(data)
	// Lose two shards — any four survivors recover the stripe.
	shards := [][]byte{nil, data[1], data[2], nil, parity[0], parity[1]}
	_ = c.Reconstruct(shards)
	fmt.Println(shards[0][0], shards[3][0])
	// Output: 1 4
}
