package erasure

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip is the satellite fuzz gate for the codec: encode a
// stripe from fuzzer-chosen geometry and bytes, drop a fuzzer-chosen
// set of <= m shards, optionally corrupt-then-drop extras, reconstruct,
// and require a byte-identical round trip. CI runs it with a short
// -fuzztime budget over the fixed seed corpus below; the corpus seeds
// keep the interesting geometries (short stripes, k=1, max parity)
// exercised even in the plain `go test` run.
func FuzzCodecRoundTrip(f *testing.F) {
	// Fixed corpus: (k, m, lossMask, payload).
	f.Add(uint8(4), uint8(2), uint16(0b000011), []byte("supernovae detection at LSST scale"))
	f.Add(uint8(4), uint8(2), uint16(0b100001), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(uint8(1), uint8(1), uint16(0b01), []byte{0})
	f.Add(uint8(2), uint8(3), uint16(0b10100), []byte("short"))
	f.Add(uint8(8), uint8(4), uint16(0xfff), bytes.Repeat([]byte{7}, 129))
	f.Add(uint8(3), uint8(2), uint16(0), []byte("no loss"))

	f.Fuzz(func(t *testing.T, k, m uint8, lossMask uint16, payload []byte) {
		ki, mi := int(k%16)+1, int(m%8)+1 // bounded geometry keeps iterations fast
		c, err := New(ki, mi)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", ki, mi, err)
		}
		size := len(payload)/ki + 1
		data := make([][]byte, ki)
		for i := range data {
			data[i] = make([]byte, size)
			for j := range data[i] {
				if idx := i*size + j; idx < len(payload) {
					data[i][j] = payload[idx]
				}
			}
		}
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		full := append(append([][]byte{}, data...), parity...)

		// Drop the masked shards, keeping at least k survivors (drop
		// order: lowest mask bits first).
		shards := make([][]byte, ki+mi)
		copy(shards, full)
		dropped := 0
		for i := 0; i < ki+mi && dropped < mi; i++ {
			if lossMask&(1<<i) != 0 {
				shards[i] = nil
				dropped++
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("reconstruct rs(%d,%d) mask %b: %v", ki, mi, lossMask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("rs(%d,%d) mask %b: shard %d not byte-identical", ki, mi, lossMask, i)
			}
		}
	})
}
