package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestNilAndDisabledTracers pins the no-op contract: a nil tracer, an
// unsampled root and a child started from an untraced context must all
// pass the context through and hand back nil Ops whose methods are
// safe.
func TestNilAndDisabledTracers(t *testing.T) {
	ctx := context.Background()
	var tr *Tracer
	c2, op := tr.Root(ctx, "x")
	if c2 != ctx || op != nil {
		t.Fatal("nil tracer must pass through")
	}
	op.AddBytes(1)
	op.Note("ignored")
	op.EndErr(nil)

	never := New("n", 8, 0) // sampleEvery 0: no roots
	c2, op = never.Root(ctx, "x")
	if c2 != ctx || op != nil {
		t.Fatal("unsampled root must pass through")
	}
	if c3, op := Start(ctx, "child"); c3 != ctx || op != nil {
		t.Fatal("child of untraced context must pass through")
	}
	if !FromContext(ctx).Zero() {
		t.Fatal("background context must carry a zero Ctx")
	}
}

// TestRootAllocFree pins the headline constraint: the disabled/unsampled
// paths on the operation hot path allocate nothing.
func TestRootAllocFree(t *testing.T) {
	ctx := context.Background()
	var nilTr *Tracer
	never := New("n", 8, 0)
	if avg := testing.AllocsPerRun(200, func() {
		c, op := nilTr.Root(ctx, "w")
		op.End()
		c, op = never.Root(c, "w")
		op.End()
		_, op = Start(c, "child")
		op.EndErr(nil)
		_ = FromContext(c)
	}); avg != 0 {
		t.Fatalf("disabled tracing allocated %.1f/op, want 0", avg)
	}
}

// TestSampling pins 1-in-N root sampling.
func TestSampling(t *testing.T) {
	tr := New("n", 1024, 4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if _, op := tr.Root(context.Background(), "op"); op != nil {
			sampled++
			op.End()
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400 at 1-in-4, want 100", sampled)
	}
}

// TestSpanTreeAcrossTracers builds a trace that hops "processes" (three
// tracers) and checks the reconstructed tree shape and annotations.
func TestSpanTreeAcrossTracers(t *testing.T) {
	client := New("client", 64, 1)
	vm := New("vm", 64, 1)
	prov := New("prov", 64, 1)

	ctx, root := client.ForceRoot(context.Background(), "core.WriteBlob")
	root.AddBytes(4096)

	// Client-side child span.
	pctx, push := Start(ctx, "write.push")
	// "RPC" into the provider: server resumes under the propagated ids.
	_, srv := prov.Resume(context.Background(), FromContext(pctx), "provider.MPutPages")
	srv.AddBytes(4096)
	srv.End()
	push.End()

	// Second hop to the vmanager.
	_, asg := vm.Resume(context.Background(), FromContext(ctx), "vmanager.MAssign")
	asg.Note("retry")
	asg.End()
	root.End()

	var all []Span
	for _, tr := range []*Tracer{client, vm, prov} {
		all = append(all, tr.SpansFor(root.TraceID())...)
	}
	if got := Processes(all); got != 3 {
		t.Fatalf("Processes = %d, want 3", got)
	}
	roots := BuildTree(all)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	r := roots[0]
	if r.Span.Name != "core.WriteBlob" || len(r.Children) != 2 {
		t.Fatalf("bad root: %+v (%d children)", r.Span, len(r.Children))
	}
	if r.Children[0].Span.Name != "write.push" || len(r.Children[0].Children) != 1 {
		t.Fatalf("bad push subtree: %+v", r.Children[0].Span)
	}
	if got := r.Children[0].Children[0].Span.Node; got != "prov" {
		t.Fatalf("provider span node = %q", got)
	}
	out := FormatTree(roots)
	for _, want := range []string{"core.WriteBlob", "provider.MPutPages", "[vm]", "4096B", "(retry)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTree output missing %q:\n%s", want, out)
		}
	}
}

// TestRingOverwrite pins the fixed-size semantics: the ring keeps the
// newest spans and SpansFor never returns more than its capacity.
func TestRingOverwrite(t *testing.T) {
	tr := New("n", 4, 1)
	for i := 0; i < 10; i++ {
		_, op := tr.Root(context.Background(), "op")
		op.AddBytes(int64(i))
		op.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring returned %d spans, want 4", len(spans))
	}
	if spans[0].Bytes != 6 || spans[3].Bytes != 9 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", spans[0].Bytes, spans[3].Bytes)
	}
}

// TestConcurrentRecording is the -race stress gate on the ring buffer:
// many goroutines record while others snapshot.
func TestConcurrentRecording(t *testing.T) {
	tr := New("n", 256, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range tr.Spans() {
					if sp.ID == 0 {
						t.Error("snapshot returned a zero span")
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				ctx, root := tr.Root(context.Background(), "op")
				_, child := Start(ctx, "child")
				child.AddBytes(int64(i))
				child.EndErr(nil)
				root.End()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if len(tr.Spans()) != 256 {
		t.Fatalf("ring holds %d spans, want full 256", len(tr.Spans()))
	}
}

// TestSpanCodecRoundTrip pins the MSpans wire format.
func TestSpanCodecRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: 1, ID: 2, Parent: 0, Name: "a", Node: "n0", Start: 100, Dur: 5, Bytes: 7},
		{TraceID: 1, ID: 3, Parent: 2, Name: "b", Node: "n1", Start: 101, Dur: 2, Note: `x="1"; error: boom`},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("span %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if id, err := DecodeSpansQuery(EncodeSpansQuery(42)); err != nil || id != 42 {
		t.Fatalf("query round trip: %d, %v", id, err)
	}
	if id, err := DecodeSpansQuery(nil); err != nil || id != 0 {
		t.Fatalf("empty query: %d, %v", id, err)
	}
	if _, err := DecodeSpans([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("corrupt body decoded")
	}
}
