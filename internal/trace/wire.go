package trace

import (
	"fmt"

	"blob/internal/wire"
)

// MSpans is the RPC method every instrumented node serves (the rpc
// server registers it when given a tracer): it returns the node's span
// buffer, optionally filtered to one trace.
//
//	request:  u64 traceID (0 = all)
//	response: uvarint n | n × span (see EncodeSpans)
const MSpans = 0x0601

// EncodeSpansQuery builds an MSpans request body.
func EncodeSpansQuery(traceID uint64) []byte {
	w := wire.NewWriter(8)
	w.Uint64(traceID)
	return w.Bytes()
}

// DecodeSpansQuery parses an MSpans request body. An empty body asks
// for everything.
func DecodeSpansQuery(body []byte) (uint64, error) {
	if len(body) == 0 {
		return 0, nil
	}
	r := wire.NewReader(body)
	id := r.Uint64()
	return id, r.Err()
}

// EncodeSpans serializes spans as an MSpans response.
func EncodeSpans(spans []Span) []byte {
	w := wire.NewWriter(64 * (1 + len(spans)))
	w.Uvarint(uint64(len(spans)))
	for _, sp := range spans {
		w.Uint64(sp.TraceID)
		w.Uint64(sp.ID)
		w.Uint64(sp.Parent)
		w.String(sp.Name)
		w.String(sp.Node)
		w.Varint(sp.Start)
		w.Varint(sp.Dur)
		w.Varint(sp.Bytes)
		w.String(sp.Note)
	}
	return w.Bytes()
}

// DecodeSpans parses an MSpans response.
func DecodeSpans(body []byte) ([]Span, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("trace: decode spans: %w", err)
	}
	// Each span costs at least 28 bytes on the wire; reject counts a
	// corrupt frame could not actually carry before allocating.
	if n < 0 || n > r.Remaining()/28+1 {
		return nil, fmt.Errorf("trace: span count %d exceeds body", n)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		sp := Span{
			TraceID: r.Uint64(),
			ID:      r.Uint64(),
			Parent:  r.Uint64(),
			Name:    r.String(),
			Node:    r.String(),
			Start:   r.Varint(),
			Dur:     r.Varint(),
			Bytes:   r.Varint(),
			Note:    r.String(),
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("trace: decode span %d: %w", i, err)
		}
		out = append(out, sp)
	}
	return out, nil
}
