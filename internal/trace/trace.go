// Package trace implements end-to-end request tracing for the system:
// allocation-free span recording into a fixed-size per-process ring
// buffer, trace-context propagation through context.Context and (via the
// rpc layer's optional frame-header extension) across processes, and the
// reconstruction of a single operation's span tree from the buffers of
// every node it touched.
//
// The design goals, in order:
//
//   - Zero cost when disabled. A nil *Tracer is a valid tracer whose
//     every method is a no-op, and an unsampled operation allocates
//     nothing: Root returns the caller's context unchanged and a nil
//     *Op whose methods are nil-receiver no-ops.
//   - Cheap when sampled. Recording a span is one short critical
//     section copying a value into a preallocated ring slot; the ring
//     never grows and old spans are overwritten, so a tracer's memory
//     is fixed at construction.
//   - Reconstructible. Span and trace identities are 64-bit values
//     drawn from a per-tracer splitmix64 sequence seeded randomly, so
//     ids minted by different processes never need coordination; a
//     trace id plus the parent-span links are enough to rebuild the
//     tree from any mix of buffers (BuildTree).
//
// Wire format and propagation rules are specified in
// docs/observability.md.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Ctx is the propagated trace context: the trace's identity and the
// span that is the parent of whatever happens next. The zero value
// means "not traced" and is what every untraced operation carries.
type Ctx struct {
	TraceID uint64
	SpanID  uint64
}

// Zero reports whether the context carries no trace.
func (c Ctx) Zero() bool { return c.TraceID == 0 }

// Span is one recorded unit of work. Spans are plain values: recording
// copies them into the ring, collection copies them out.
type Span struct {
	TraceID uint64
	ID      uint64
	Parent  uint64 // 0 for a root span
	Name    string // static operation name, e.g. "core.WriteBlob"
	Node    string // the recording tracer's node name
	Start   int64  // unix nanoseconds
	Dur     int64  // nanoseconds
	Bytes   int64  // payload bytes the operation moved, when known
	Note    string // annotations: error text, retry/degraded markers
}

// Tracer records spans for one node (one logical process: in a netsim
// cluster every simulated node has its own). The zero ring size and the
// nil tracer are both valid and record nothing.
type Tracer struct {
	node string

	mu   sync.Mutex
	ring []Span
	next uint64 // total spans ever recorded; ring slot = next % len(ring)

	seed uint64
	ctr  atomic.Uint64

	// sampleEvery selects which Root calls start a trace: 0 never, 1
	// always, N every Nth. Child spans follow their parent regardless.
	sampleEvery uint32
	rootCtr     atomic.Uint32
}

// DefaultRing is the per-process ring size used when a caller passes 0.
const DefaultRing = 4096

// New creates a tracer for the named node with a ring of ringSize spans
// (0 selects DefaultRing) sampling one in sampleEvery root operations
// (0 disables root sampling entirely, 1 traces everything).
func New(node string, ringSize, sampleEvery int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Monotonic fallback: ids stay unique within the process.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return &Tracer{
		node:        node,
		ring:        make([]Span, ringSize),
		seed:        binary.LittleEndian.Uint64(b[:]),
		sampleEvery: uint32(sampleEvery),
	}
}

// Node returns the tracer's node name ("" for a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Enabled reports whether the tracer can record at all (it may still
// sample no roots of its own while recording propagated child spans).
func (t *Tracer) Enabled() bool { return t != nil && len(t.ring) > 0 }

// mix is the splitmix64 finalizer: a bijective scramble of the counter
// so ids from a random seed are uniformly spread.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newID mints a process-unique nonzero 64-bit identity.
func (t *Tracer) newID() uint64 {
	id := mix(t.seed + t.ctr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// sampleRoot decides whether this Root call starts a trace.
func (t *Tracer) sampleRoot() bool {
	switch t.sampleEvery {
	case 0:
		return false
	case 1:
		return true
	default:
		return t.rootCtr.Add(1)%t.sampleEvery == 0
	}
}

// record copies sp into the ring.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if n := len(t.ring); n > 0 {
		t.ring[t.next%uint64(n)] = sp
		t.next++
	}
	t.mu.Unlock()
}

// Spans returns a copy of every live span in the ring, oldest first.
func (t *Tracer) Spans() []Span {
	return t.SpansFor(0)
}

// SpansFor returns the ring's spans belonging to traceID (0 matches
// every trace), oldest first.
func (t *Tracer) SpansFor(traceID uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	if n == 0 {
		return nil
	}
	count := t.next
	if count > n {
		count = n
	}
	out := make([]Span, 0, count)
	start := t.next - count
	for i := uint64(0); i < count; i++ {
		sp := t.ring[(start+i)%n]
		if sp.ID == 0 {
			continue
		}
		if traceID != 0 && sp.TraceID != traceID {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// Op is one in-progress span. A nil *Op (untraced operation) is valid:
// every method is a no-op, so call sites need no branches.
type Op struct {
	t    *Tracer
	span Span
}

// ctxKey carries the active trace through a context.Context.
type ctxKey struct{}

// ctxVal is what the context holds: the local tracer (nil when the
// trace merely transits an instrumented-but-untraced process) and the
// propagated ids.
type ctxVal struct {
	t *Tracer
	c Ctx
}

// ContextWith returns a context carrying tracer t and trace context c.
// Most callers use Root or Start instead; the rpc server uses this to
// hand an incoming trace to its handler.
func ContextWith(ctx context.Context, t *Tracer, c Ctx) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, c: c})
}

// FromContext returns the context's trace ids (the zero Ctx when the
// operation is untraced). This is what the rpc layer stamps into the
// frame header.
func FromContext(ctx context.Context) Ctx {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.c
	}
	return Ctx{}
}

// Root begins a new trace for a top-level operation, subject to the
// tracer's sampling. It returns the (possibly trace-carrying) context
// and the root Op; for a nil tracer or an unsampled call both are
// passed through untouched with a nil Op and zero allocations.
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Op) {
	if t == nil || len(t.ring) == 0 || !t.sampleRoot() {
		return ctx, nil
	}
	op := &Op{t: t, span: Span{
		TraceID: t.newID(),
		ID:      t.newID(),
		Name:    name,
		Node:    t.node,
		Start:   time.Now().UnixNano(),
	}}
	return ContextWith(ctx, t, Ctx{TraceID: op.span.TraceID, SpanID: op.span.ID}), op
}

// ForceRoot begins a trace unconditionally (blobctl trace and tests),
// bypassing sampling. Nil tracers still return a nil Op.
func (t *Tracer) ForceRoot(ctx context.Context, name string) (context.Context, *Op) {
	if t == nil || len(t.ring) == 0 {
		return ctx, nil
	}
	op := &Op{t: t, span: Span{
		TraceID: t.newID(),
		ID:      t.newID(),
		Name:    name,
		Node:    t.node,
		Start:   time.Now().UnixNano(),
	}}
	return ContextWith(ctx, t, Ctx{TraceID: op.span.TraceID, SpanID: op.span.ID}), op
}

// Start begins a child span of whatever trace ctx carries. Untraced
// contexts (or contexts propagated through a process without a tracer)
// return ctx unchanged and a nil Op, allocation-free.
func Start(ctx context.Context, name string) (context.Context, *Op) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.t == nil || v.c.Zero() {
		return ctx, nil
	}
	op := &Op{t: v.t, span: Span{
		TraceID: v.c.TraceID,
		ID:      v.t.newID(),
		Parent:  v.c.SpanID,
		Name:    name,
		Node:    v.t.node,
		Start:   time.Now().UnixNano(),
	}}
	return ContextWith(ctx, v.t, Ctx{TraceID: v.c.TraceID, SpanID: op.span.ID}), op
}

// Resume begins a span under an explicitly propagated parent — the rpc
// server's entry point for an incoming traced request. The returned
// context carries the tracer and the new span as parent for everything
// the handler does.
func (t *Tracer) Resume(ctx context.Context, parent Ctx, name string) (context.Context, *Op) {
	if t == nil || len(t.ring) == 0 || parent.Zero() {
		return ctx, nil
	}
	op := &Op{t: t, span: Span{
		TraceID: parent.TraceID,
		ID:      t.newID(),
		Parent:  parent.SpanID,
		Name:    name,
		Node:    t.node,
		Start:   time.Now().UnixNano(),
	}}
	return ContextWith(ctx, t, Ctx{TraceID: parent.TraceID, SpanID: op.span.ID}), op
}

// Ctx returns the op's trace context (zero for a nil Op).
func (o *Op) Ctx() Ctx {
	if o == nil {
		return Ctx{}
	}
	return Ctx{TraceID: o.span.TraceID, SpanID: o.span.ID}
}

// TraceID returns the op's trace identity (0 for a nil Op).
func (o *Op) TraceID() uint64 {
	if o == nil {
		return 0
	}
	return o.span.TraceID
}

// AddBytes accumulates payload bytes onto the span.
func (o *Op) AddBytes(n int64) {
	if o != nil {
		o.span.Bytes += n
	}
}

// Note appends an annotation (retry counts, degraded-read markers).
// Notes are joined with "; " in the recorded span.
func (o *Op) Note(s string) {
	if o == nil {
		return
	}
	if o.span.Note == "" {
		o.span.Note = s
	} else {
		o.span.Note += "; " + s
	}
}

// Notef appends a formatted annotation.
func (o *Op) Notef(format string, args ...any) {
	if o != nil {
		o.Note(fmt.Sprintf(format, args...))
	}
}

// End completes the span and records it into the tracer's ring.
func (o *Op) End() {
	if o == nil {
		return
	}
	o.span.Dur = time.Now().UnixNano() - o.span.Start
	o.t.record(o.span)
}

// EndErr completes the span, annotating it with err when non-nil.
func (o *Op) EndErr(err error) {
	if o == nil {
		return
	}
	if err != nil {
		o.Note("error: " + err.Error())
	}
	o.End()
}

// TreeNode is one span with its resolved children, ordered by start
// time.
type TreeNode struct {
	Span     Span
	Children []*TreeNode
}

// BuildTree reconstructs span trees from an unordered collection
// gathered across processes. Spans whose parent is absent from the
// collection (including true roots) become top-level nodes; duplicate
// ids (a span collected from two snapshots) are collapsed.
func BuildTree(spans []Span) []*TreeNode {
	nodes := make(map[uint64]*TreeNode, len(spans))
	order := make([]*TreeNode, 0, len(spans))
	for _, sp := range spans {
		if sp.ID == 0 {
			continue
		}
		if _, dup := nodes[sp.ID]; dup {
			continue
		}
		n := &TreeNode{Span: sp}
		nodes[sp.ID] = n
		order = append(order, n)
	}
	var roots []*TreeNode
	for _, n := range order {
		if p, ok := nodes[n.Span.Parent]; ok && n.Span.Parent != n.Span.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortTree := func(ns []*TreeNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.Start < ns[j].Span.Start })
	}
	var rec func(n *TreeNode)
	rec = func(n *TreeNode) {
		sortTree(n.Children)
		for _, c := range n.Children {
			rec(c)
		}
	}
	sortTree(roots)
	for _, r := range roots {
		rec(r)
	}
	return roots
}

// Processes counts the distinct node names appearing in the spans.
func Processes(spans []Span) int {
	seen := make(map[string]struct{}, 8)
	for _, sp := range spans {
		seen[sp.Node] = struct{}{}
	}
	return len(seen)
}

// FormatTree renders span trees for logs and blobctl trace: one line
// per span, indented by depth, with duration, node, byte counts and
// notes.
func FormatTree(roots []*TreeNode) string {
	var b strings.Builder
	var rec func(n *TreeNode, depth int)
	rec = func(n *TreeNode, depth int) {
		sp := n.Span
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%-*s %9.3fms  [%s]", 28-2*depth, sp.Name,
			float64(sp.Dur)/1e6, sp.Node)
		if sp.Bytes > 0 {
			fmt.Fprintf(&b, " %dB", sp.Bytes)
		}
		if sp.Note != "" {
			fmt.Fprintf(&b, "  (%s)", sp.Note)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range roots {
		rec(r, 0)
	}
	return b.String()
}
