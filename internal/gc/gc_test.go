package gc_test

import (
	"bytes"
	"context"
	"testing"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/erasure"
	"blob/internal/gc"
	"blob/internal/meta"
)

const pageSize = 4 << 10

func launch(t *testing.T, cfg cluster.Config) (*cluster.Cluster, *core.Client) {
	t.Helper()
	cl, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	c, err := cl.NewClient(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return cl, c
}

func pattern(seed byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i*13)
	}
	return buf
}

func TestCollectFullySupersededVersion(t *testing.T) {
	// CacheNodes: 0 — the GC must observe real deletions, and reads
	// afterwards must hit the providers, not a stale client cache.
	cl, c := launch(t, cluster.Config{CacheNodes: 0})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)

	d1 := pattern(1, 4*pageSize)
	d2 := pattern(2, 4*pageSize)
	d3 := pattern(3, 4*pageSize)
	if _, err := b.Write(ctx, d1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, d2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, d3, 0); err != nil {
		t.Fatal(err)
	}

	pagesBefore := cl.TotalDataPages()
	nodesBefore := cl.TotalMetaNodes()

	rep, err := gc.New(c).Collect(ctx, b.ID(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VersionsCollected != 2 {
		t.Errorf("versions collected = %d, want 2", rep.VersionsCollected)
	}
	// v1 and v2 are fully superseded by v3 on the same range: all their
	// pages die (4 each), and all their nodes die.
	if rep.PagesDeleted != 8 {
		t.Errorf("pages deleted = %d, want 8", rep.PagesDeleted)
	}
	if cl.TotalDataPages() != pagesBefore-8 {
		t.Errorf("provider pages %d -> %d, want -8", pagesBefore, cl.TotalDataPages())
	}
	if cl.TotalMetaNodes() >= nodesBefore {
		t.Errorf("metadata nodes did not shrink: %d -> %d", nodesBefore, cl.TotalMetaNodes())
	}

	// v3 must remain perfectly readable.
	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, 3); err != nil {
		t.Fatalf("read v3 after GC: %v", err)
	}
	if !bytes.Equal(got, d3) {
		t.Fatal("v3 corrupted by GC")
	}

	// Collected versions fail.
	if _, err := b.Read(ctx, got, 0, 1); err == nil {
		t.Error("read of collected v1 succeeded")
	}
}

func TestCollectKeepsSharedPages(t *testing.T) {
	cl, c := launch(t, cluster.Config{CacheNodes: 0})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)

	base := pattern(1, 8*pageSize) // v1: pages [0,8)
	if _, err := b.Write(ctx, base, 0); err != nil {
		t.Fatal(err)
	}
	patch := pattern(2, 2*pageSize) // v2: pages [2,4)
	if _, err := b.Write(ctx, patch, 2*pageSize); err != nil {
		t.Fatal(err)
	}

	pagesBefore := cl.TotalDataPages() // 8 + 2

	rep, err := gc.New(c).Collect(ctx, b.ID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only v1's pages [2,4) are superseded; the other six stay live.
	if rep.PagesDeleted != 2 {
		t.Errorf("pages deleted = %d, want 2", rep.PagesDeleted)
	}
	if got := cl.TotalDataPages(); got != pagesBefore-2 {
		t.Errorf("pages %d -> %d, want -2", pagesBefore, got)
	}

	// v2's full view: base with patch, still readable through v1's
	// surviving pages.
	want := append([]byte(nil), base...)
	copy(want[2*pageSize:], patch)
	got := make([]byte, 8*pageSize)
	if _, err := b.Read(ctx, got, 0, 2); err != nil {
		t.Fatalf("read v2 after GC: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("v2 content corrupted by GC")
	}
}

func TestCollectHorizonValidation(t *testing.T) {
	_, c := launch(t, cluster.Config{CacheNodes: 0})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	b.Write(ctx, pattern(1, pageSize), 0)

	if _, err := gc.New(c).Collect(ctx, b.ID(), 5); err == nil {
		t.Error("horizon above latest accepted")
	}
	rep, err := gc.New(c).Collect(ctx, b.ID(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VersionsCollected != 0 || rep.PagesDeleted != 0 {
		t.Errorf("horizon 1 collected something: %+v", rep)
	}
}

func TestCollectIdempotent(t *testing.T) {
	_, c := launch(t, cluster.Config{CacheNodes: 0})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	b.Write(ctx, pattern(1, 2*pageSize), 0)
	b.Write(ctx, pattern(2, 2*pageSize), 0)

	g := gc.New(c)
	if _, err := g.Collect(ctx, b.ID(), 2); err != nil {
		t.Fatal(err)
	}
	rep, err := g.Collect(ctx, b.ID(), 2)
	if err != nil {
		t.Fatalf("second collect: %v", err)
	}
	if rep.PagesDeleted != 0 {
		t.Errorf("second collect deleted %d pages", rep.PagesDeleted)
	}
}

func TestCollectLongChainKeepsLatestComposition(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 3, MetaProviders: 3, CacheNodes: 0})
	ctx := context.Background()
	const totalPages = 32
	b, _ := c.CreateBlob(ctx, pageSize, totalPages*pageSize)

	flat := make([]byte, totalPages*pageSize)
	writes := []struct {
		off, n int
	}{{0, 8}, {4, 4}, {10, 6}, {0, 2}, {14, 2}, {6, 6}}
	for i, w := range writes {
		data := pattern(byte(i+1), w.n*pageSize)
		if _, err := b.Write(ctx, data, uint64(w.off)*pageSize); err != nil {
			t.Fatal(err)
		}
		copy(flat[w.off*pageSize:], data)
	}
	latest := meta.Version(len(writes))

	rep, err := gc.New(c).Collect(ctx, b.ID(), latest-1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VersionsCollected != int(latest)-2 {
		t.Errorf("collected %d versions, want %d", rep.VersionsCollected, latest-2)
	}

	for _, v := range []meta.Version{latest - 1, latest} {
		got := make([]byte, totalPages*pageSize)
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read v%d after GC: %v", v, err)
		}
	}
	got := make([]byte, totalPages*pageSize)
	b.Read(ctx, got, 0, latest)
	if !bytes.Equal(got, flat) {
		t.Fatal("latest composition corrupted by GC")
	}
	_ = cl
}

func TestCollectAfterAbortedWrite(t *testing.T) {
	// An aborted (repaired) version below the horizon: its orphan pages
	// die via broadcast deletion even though no leaf references them.
	cl, err := cluster.Launch(cluster.Config{CacheNodes: 0, RepairTimeout: 50_000_000}) // 50ms
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	if _, err := b.Write(ctx, pattern(1, 4*pageSize), 0); err != nil {
		t.Fatal(err)
	}

	// v2 supersedes v1 entirely.
	if _, err := b.Write(ctx, pattern(2, 4*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	rep, err := gc.New(c).Collect(ctx, b.ID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesDeleted != 4 {
		t.Errorf("pages deleted = %d, want 4", rep.PagesDeleted)
	}
	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, 2); err != nil {
		t.Fatal(err)
	}
}

// TestCollectErasureParity pins the parity sweep for erasure-coded
// blobs: collecting a fully superseded write removes its parity pages
// along with its data pages — parity lives outside the logical rel
// space and no leaf references it, so the GC must delete it explicitly
// (docs/erasure.md §6).
func TestCollectErasureParity(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		Redundancy:    erasure.Redundancy{K: 4, M: 2},
		CacheNodes:    0,
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	// v1: 8 pages = 2 full stripes (8 data + 4 parity shards).
	// v2 fully supersedes it with the same shard footprint.
	d1 := pattern(1, 8*pageSize)
	d2 := pattern(2, 8*pageSize)
	if _, err := b.Write(ctx, d1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, d2, 0); err != nil {
		t.Fatal(err)
	}
	if got := cl.TotalDataPages(); got != 24 {
		t.Fatalf("setup: stored shards = %d, want 24", got)
	}

	rep, err := gc.New(c).Collect(ctx, b.ID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 8 data + 4 parity pages of v1's write must be gone.
	if rep.PagesDeleted != 12 {
		t.Fatalf("pages deleted = %d, want 12 (8 data + 4 parity)", rep.PagesDeleted)
	}
	if got := cl.TotalDataPages(); got != 12 {
		t.Fatalf("stored shards after GC = %d, want 12 (parity leak?)", got)
	}

	// The surviving version still reads, including after a provider
	// stop (its stripes kept their parity).
	cl.DataServers[0].Close()
	got := make([]byte, len(d2))
	if _, err := b.Read(ctx, got, 0, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d2) {
		t.Fatal("post-GC degraded read mismatch")
	}
}
