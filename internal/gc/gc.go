// Package gc implements version garbage collection — the extension the
// paper defers to future work ("we also intend to address the issue of
// garbage collection"), with the paper's framing that "no page is deleted
// from the system [at write time]: the previous version of the pages
// remain available ... until some garbage collection is ordered by the
// client".
//
// The collector is a mark-and-sweep over the version forest:
//
//   - MARK: walk the metadata tree of every published version >= the
//     keep horizon. Shared subtrees are visited once (the trees of
//     consecutive versions overlap heavily by design). Every visited
//     node key and every (write, page) reference of a visited leaf is
//     live.
//   - SWEEP: for every write in the history below the horizon, delete
//     unmarked tree nodes (their keys are recomputable from the write's
//     extent) and unmarked pages. Page deletions are broadcast to all
//     data providers, which makes the sweep robust to orphaned pages
//     left behind by torn (repaired) writes whose placement was never
//     recorded anywhere.
//
// Safety contract: the caller guarantees no reader is using versions
// below the horizon, and the horizon is at most the latest published
// version. In-flight writers are safe: any old subtree an unpublished
// version can reference is, by the border-resolution rule, also
// referenced by a published version at or above the horizon, and is
// therefore marked.
//
// Caching note: clients with warm metadata caches may keep resolving a
// collected version from cache until entries evict; the bytes served are
// still correct (nodes and pages are immutable) as long as the cached
// leaves point at surviving pages — which the safety contract's
// "no readers below the horizon" clause is precisely there to ensure.
package gc

import (
	"context"
	"errors"
	"fmt"

	"blob/internal/core"
	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/mstore"
	"blob/internal/provider"
	"blob/internal/rpc"
)

// Report summarizes one collection run.
type Report struct {
	// Horizon is the oldest version kept readable.
	Horizon meta.Version
	// VersionsCollected counts history records swept.
	VersionsCollected int
	// NodesDeleted counts metadata tree nodes removed.
	NodesDeleted int
	// PagesDeleted counts page replicas removed across providers.
	PagesDeleted int
	// NodesKept counts candidate nodes retained because marked.
	NodesKept int
}

// Collector garbage-collects blob versions.
type Collector struct {
	c *core.Client
}

// New creates a Collector operating through an existing client.
func New(c *core.Client) *Collector { return &Collector{c: c} }

// ErrBadHorizon is returned when the horizon exceeds the latest
// published version.
var ErrBadHorizon = errors.New("gc: horizon above latest published version")

// Collect removes everything only reachable from versions strictly below
// keepFrom. After collection, reads of versions >= keepFrom (and of
// version 0 ranges never overwritten) behave exactly as before; reads of
// collected versions fail with a missing-node error.
func (g *Collector) Collect(ctx context.Context, blobID uint64, keepFrom meta.Version) (Report, error) {
	rep := Report{Horizon: keepFrom}
	vm := g.c.VersionManager()
	info, err := vm.Info(ctx, blobID)
	if err != nil {
		return rep, err
	}
	latest := info.LatestPublished
	if keepFrom > latest {
		return rep, fmt.Errorf("%w: keepFrom %d > latest %d", ErrBadHorizon, keepFrom, latest)
	}
	if keepFrom <= 1 {
		return rep, nil // nothing below the horizon can exist
	}

	history, err := vm.History(ctx, blobID, 0, latest)
	if err != nil {
		return rep, err
	}

	// MARK.
	markedNodes := make(map[meta.NodeKey]bool)
	markedPages := make(map[pageRef]bool)
	ms := g.c.Meta()
	for v := keepFrom; v <= latest; v++ {
		if err := g.mark(ctx, ms, blobID, v, info.TotalPages, markedNodes, markedPages); err != nil {
			return rep, fmt.Errorf("gc: mark v%d: %w", v, err)
		}
	}

	// SWEEP.
	providers, err := g.c.AllProviders(ctx)
	if err != nil {
		return rep, err
	}
	for _, rec := range history {
		if rec.Version >= keepFrom {
			continue
		}
		rep.VersionsCollected++

		// Sweep tree nodes of this write.
		for _, r := range meta.WriteSet(info.TotalPages, rec.Range) {
			key := meta.NodeKey{Blob: blobID, Version: rec.Version, Range: r}
			if markedNodes[key] {
				rep.NodesKept++
				continue
			}
			if err := ms.DeleteNode(ctx, key); err != nil {
				return rep, fmt.Errorf("gc: delete node %+v: %w", key, err)
			}
			rep.NodesDeleted++
		}

		// Sweep this write's pages: every rel not referenced by a marked
		// leaf dies, broadcast to all providers (covers orphans from
		// torn writes whose placement was never recorded).
		var deadRels []uint32
		for rel := uint32(0); uint64(rel) < rec.Range.Count; rel++ {
			if !markedPages[pageRef{write: rec.WriteID, rel: rel}] {
				deadRels = append(deadRels, rel)
			}
		}
		// Erasure-coded blobs (docs/erasure.md): parity pages live in
		// the high half of the rel space and are referenced by no leaf,
		// so sweep them explicitly — a stripe whose every data page
		// died takes its parity along. Partially-dead stripes keep
		// parity, or their surviving pages would lose reconstructability.
		if red := info.Redundancy; red.IsRS() {
			k := uint64(red.K)
			for s := uint64(0); s < erasure.NumStripes(rec.Range.Count, red.K); s++ {
				allDead := true
				for rel := s * k; rel < (s+1)*k && rel < rec.Range.Count; rel++ {
					if markedPages[pageRef{write: rec.WriteID, rel: uint32(rel)}] {
						allDead = false
						break
					}
				}
				if allDead {
					for j := 0; j < red.M; j++ {
						deadRels = append(deadRels, erasure.ParityRel(uint32(s), j, red.M))
					}
				}
			}
		}
		if len(deadRels) == 0 {
			continue
		}
		body := provider.EncodeDeletePages(blobID, rec.WriteID, deadRels)
		pend := make([]*rpc.Pending, 0, len(providers))
		for _, p := range providers {
			pend = append(pend, g.c.Pool().Go(p.Addr, provider.MDeletePages, body))
		}
		for _, p := range pend {
			resp, err := p.Wait(ctx)
			if err != nil {
				return rep, fmt.Errorf("gc: delete pages of write %d: %w", rec.WriteID, err)
			}
			rep.PagesDeleted += decodeCount(resp)
		}
	}
	return rep, nil
}

type pageRef struct {
	write uint64
	rel   uint32
}

// mark walks version v's tree breadth-first, recording reachable node
// keys and leaf page references. Already-marked subtrees are skipped, so
// the total work across all versions is proportional to the number of
// distinct stored nodes.
func (g *Collector) mark(ctx context.Context, ms *mstore.Client, blob uint64, v meta.Version,
	totalPages uint64, markedNodes map[meta.NodeKey]bool, markedPages map[pageRef]bool) error {

	if v == meta.ZeroVersion {
		return nil
	}
	frontier := []meta.NodeKey{meta.RootKey(blob, v, totalPages)}
	for len(frontier) > 0 {
		var fetch []meta.NodeKey
		for _, k := range frontier {
			if !markedNodes[k] {
				markedNodes[k] = true
				fetch = append(fetch, k)
			}
		}
		if len(fetch) == 0 {
			return nil
		}
		nodes, err := ms.FetchNodes(ctx, fetch)
		if err != nil {
			return err
		}
		var next []meta.NodeKey
		for _, k := range fetch {
			n := nodes[k]
			if n.IsLeaf() {
				if n.Leaf.Write != 0 {
					markedPages[pageRef{write: n.Leaf.Write, rel: n.Leaf.RelPage}] = true
				}
				continue
			}
			left, right := n.Key.Range.Children()
			if n.LeftVer != meta.ZeroVersion {
				next = append(next, meta.NodeKey{Blob: blob, Version: n.LeftVer, Range: left})
			}
			if n.RightVer != meta.ZeroVersion {
				next = append(next, meta.NodeKey{Blob: blob, Version: n.RightVer, Range: right})
			}
		}
		frontier = next
	}
	return nil
}

func decodeCount(resp []byte) int {
	if len(resp) == 0 {
		return 0
	}
	// uvarint count
	n := 0
	shift := 0
	for _, b := range resp {
		n |= int(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	return n
}
