package wire

// Bloom is the fixed-size bloom filter over page keys shared by the
// diskstore's index sidecars and the repair protocol's holdings digests
// (docs/diskstore-format.md §4, docs/replication.md §3). Both exchange
// the same wire form, so a sealed segment's filter can be served to a
// remote peer verbatim. False positives are possible; false negatives
// are not: MightContain returning false is a definitive "this key was
// never added".
//
// Sizing: BloomBitsPerEntry bits per expected entry with BloomHashes
// probe positions gives a false-positive rate under 1%. Probe positions
// use double hashing over the page key's dispersal hash (HashFields);
// the stride is forced odd so it is coprime with the power-of-two bit
// count and never degenerates to a single position.

// Bloom filter sizing parameters (see docs/diskstore-format.md §4).
const (
	BloomBitsPerEntry = 10
	BloomHashes       = 7
)

// Bloom is a bloom filter over (blob, write, rel) page keys.
type Bloom struct {
	k    uint32
	bits []uint64
}

// NewBloom sizes a filter for n expected entries.
func NewBloom(n int) *Bloom {
	words := (n*BloomBitsPerEntry + 63) / 64
	if words < 1 {
		words = 1
	}
	return &Bloom{k: BloomHashes, bits: make([]uint64, words)}
}

// hashPageKey derives the two double-hashing bases for one page key.
func hashPageKey(blob, write uint64, rel uint32) (h1, h2 uint64) {
	h1 = HashFields(blob, write, uint64(rel))
	h2 = Mix64(h1) | 1
	return h1, h2
}

func (b *Bloom) nbits() uint64 { return uint64(len(b.bits)) * 64 }

// Add records one page key.
func (b *Bloom) Add(blob, write uint64, rel uint32) {
	h1, h2 := hashPageKey(blob, write, rel)
	m := b.nbits()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MightContain reports whether the key may have been added: false means
// definitely absent, true means possibly present.
func (b *Bloom) MightContain(blob, write uint64, rel uint32) bool {
	h1, h2 := hashPageKey(blob, write, rel)
	m := b.nbits()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// EncodedLen returns the filter's encoded size in bytes.
func (b *Bloom) EncodedLen() int { return 8 + 8*len(b.bits) }

// Encode appends the filter's wire form (hash count, word count, words).
func (b *Bloom) Encode(w *Writer) {
	w.Uint32(b.k)
	w.Uint32(uint32(len(b.bits)))
	for _, word := range b.bits {
		w.Uint64(word)
	}
}

// DecodeBloom reads a filter written by Encode. Structural errors poison
// the reader and return nil (callers treat that as "no filter").
func DecodeBloom(r *Reader) *Bloom {
	k := r.Uint32()
	words := int(r.Uint32())
	if r.Err() != nil || k == 0 || words <= 0 || words > r.Remaining()/8+1 {
		return nil
	}
	b := &Bloom{k: k, bits: make([]uint64, words)}
	for i := range b.bits {
		b.bits[i] = r.Uint64()
	}
	if r.Err() != nil {
		return nil
	}
	return b
}
