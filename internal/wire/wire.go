// Package wire implements the compact binary encoding used by every RPC
// message in the system. The paper's prototype relied on Boost
// serialization; we substitute a small, allocation-conscious codec with
// explicit little-endian layout so that message bytes are deterministic
// across nodes and releases.
//
// The encoding is positional: writer and reader must agree on the field
// sequence. Variable-length values (byte slices, strings, lists) carry a
// uvarint length prefix. There is no reflection and no schema negotiation;
// each RPC method owns its layout, which keeps the hot encode/decode paths
// free of interface conversions.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Common decoding errors. Decoders fail softly: after the first error the
// Reader is poisoned and every subsequent Get returns the zero value, so
// call sites may decode a full struct and check Err once at the end.
var (
	// ErrShort reports a truncated buffer.
	ErrShort = errors.New("wire: buffer too short")
	// ErrOverflow reports a varint that does not fit the target width.
	ErrOverflow = errors.New("wire: varint overflows")
	// ErrTooLarge reports a length prefix exceeding the configured limit.
	ErrTooLarge = errors.New("wire: length prefix exceeds limit")
)

// MaxElemLen bounds any single length-prefixed element. It protects a
// decoder from allocating unbounded memory on corrupt or hostile input.
// 256 MiB comfortably exceeds the largest page or batched metadata frame
// the system produces.
const MaxElemLen = 256 << 20

// Writer accumulates an encoded message. The zero value is ready to use.
// Writer never fails; sizing errors surface at the decoding side.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset truncates the writer for reuse, keeping the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the encoded message. The slice aliases the writer's
// internal buffer and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Uint16 appends a fixed-width little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends a variable-width unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a variable-width signed integer (zig-zag).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Float64 appends an IEEE-754 double in little-endian byte order.
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// Bytes appends a uvarint length prefix followed by the raw bytes.
func (w *Writer) BytesField(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a uvarint length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes verbatim, without a length prefix. The reader must
// know the exact width from context.
func (w *Writer) Raw(p []byte) { w.buf = append(w.buf, p...) }

// Uint64Slice appends a uvarint count followed by fixed-width elements.
func (w *Writer) Uint64Slice(vs []uint64) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uint64(v)
	}
}

// Uint32Slice appends a uvarint count followed by fixed-width elements.
func (w *Writer) Uint32Slice(vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uint32(v)
	}
}

// StringSlice appends a uvarint count followed by length-prefixed strings.
func (w *Writer) StringSlice(vs []string) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.String(v)
	}
}

// Reader decodes a message produced by Writer. It is poisoned by the first
// error: subsequent reads return zero values and Err reports the cause.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail poisons the reader with err (keeping the first error).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrShort)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Uint8 reads a single byte.
func (r *Reader) Uint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a boolean encoded as one byte.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a fixed-width little-endian uint16.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// Uint32 reads a fixed-width little-endian uint32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// Uint64 reads a fixed-width little-endian uint64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Uvarint reads a variable-width unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n == 0 {
		r.fail(ErrShort)
		return 0
	}
	if n < 0 {
		r.fail(ErrOverflow)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a variable-width signed integer (zig-zag).
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n == 0 {
		r.fail(ErrShort)
		return 0
	}
	if n < 0 {
		r.fail(ErrOverflow)
		return 0
	}
	r.off += n
	return v
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// length reads and validates a uvarint length prefix.
func (r *Reader) length() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > MaxElemLen {
		r.fail(fmt.Errorf("%w: %d", ErrTooLarge, n))
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrShort)
		return 0
	}
	return int(n)
}

// BytesField reads a length-prefixed byte slice. The result aliases the
// reader's backing buffer; copy it if it must outlive the buffer.
func (r *Reader) BytesField() []byte {
	n := r.length()
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// BytesCopy reads a length-prefixed byte slice into fresh memory.
func (r *Reader) BytesCopy() []byte {
	p := r.BytesField()
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	p := r.BytesField()
	if p == nil {
		return ""
	}
	return string(p)
}

// Raw reads exactly n bytes without a length prefix.
func (r *Reader) Raw(n int) []byte {
	if n < 0 || n > MaxElemLen {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(n)
}

// Uint64Slice reads a counted slice of fixed-width uint64 values.
func (r *Reader) Uint64Slice() []uint64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n*8 > uint64(r.Remaining()) {
		r.fail(ErrShort)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Uint32Slice reads a counted slice of fixed-width uint32 values.
func (r *Reader) Uint32Slice() []uint32 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n*4 > uint64(r.Remaining()) {
		r.fail(ErrShort)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// StringSlice reads a counted slice of length-prefixed strings.
func (r *Reader) StringSlice() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) { // each string costs at least 1 byte
		r.fail(ErrShort)
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return out
}
