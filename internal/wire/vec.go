package wire

// VecWriter assembles a scatter-gather message body for the rpc layer's
// vectored calls (rpc.Client.GoVec / rpc.VecHandlerFunc): header fields
// accumulate in one arena, payload segments alias the caller's buffers
// untouched, and consecutive header runs share a single segment. It is
// the one audited home of the arena-aliasing subtlety: a sealed segment
// is carved with a full slice expression (arena[start:len:len]), so
// later appends that grow the arena into fresh memory leave already
// sealed segments pointing at their original, final bytes.
//
// The zero value is usable; NewVec pre-sizes the arena and segment
// list. VecWriter is returned by value so the usual pattern (build,
// hand Segs to GoVec) costs exactly two allocations.

import "encoding/binary"

// VecWriter builds one scatter-gather body. Not safe for concurrent
// use.
type VecWriter struct {
	arena []byte
	segs  [][]byte
	start int
}

// NewVec returns a writer with capacity for arenaCap header bytes and
// segsCap segments.
func NewVec(arenaCap, segsCap int) VecWriter {
	return VecWriter{arena: make([]byte, 0, arenaCap), segs: make([][]byte, 0, segsCap)}
}

// Uint8 appends a header byte.
func (v *VecWriter) Uint8(x uint8) { v.arena = append(v.arena, x) }

// Uint32 appends a fixed-width little-endian header field.
func (v *VecWriter) Uint32(x uint32) {
	v.arena = binary.LittleEndian.AppendUint32(v.arena, x)
}

// Uint64 appends a fixed-width little-endian header field.
func (v *VecWriter) Uint64(x uint64) {
	v.arena = binary.LittleEndian.AppendUint64(v.arena, x)
}

// Uvarint appends a variable-width header field.
func (v *VecWriter) Uvarint(x uint64) {
	v.arena = binary.AppendUvarint(v.arena, x)
}

// seal closes the current header run into a segment.
func (v *VecWriter) seal() {
	if len(v.arena) > v.start {
		v.segs = append(v.segs, v.arena[v.start:len(v.arena):len(v.arena)])
		v.start = len(v.arena)
	}
}

// Alias appends p as a payload segment without copying. p must stay
// immutable until the message has been flushed (for rpc calls: until
// Pending.Wait returns; for handler responses: until the handler's
// response is on the wire, which the rpc server guarantees before
// completing the client's call).
func (v *VecWriter) Alias(p []byte) {
	v.seal()
	v.segs = append(v.segs, p)
}

// ReserveSeg appends a placeholder segment and returns its index, for
// fields whose value is only known once the message is complete (batch
// counts). Fill it with SetSeg before handing Segs to the rpc layer.
func (v *VecWriter) ReserveSeg() int {
	v.seal()
	v.segs = append(v.segs, nil)
	return len(v.segs) - 1
}

// SetSeg fills a segment reserved with ReserveSeg.
func (v *VecWriter) SetSeg(i int, p []byte) { v.segs[i] = p }

// Segs seals any trailing header run and returns the segment list.
func (v *VecWriter) Segs() [][]byte {
	v.seal()
	return v.segs
}
