package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFixedWidthRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xbeef)
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0123456789abcdef)
	w.Float64(-math.Pi)

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x, want 0xab", got)
	}
	if !r.Bool() {
		t.Error("first Bool = false, want true")
	}
	if r.Bool() {
		t.Error("second Bool = true, want false")
	}
	if got := r.Uint16(); got != 0xbeef {
		t.Errorf("Uint16 = %#x, want 0xbeef", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x, want 0xdeadbeef", got)
	}
	if got := r.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Float64(); got != -math.Pi {
		t.Errorf("Float64 = %v, want -pi", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, c := range cases {
		w := NewWriter(16)
		w.Varint(c)
		r := NewReader(w.Bytes())
		if got := r.Varint(); got != c {
			t.Errorf("Varint(%d) round-trips to %d", c, got)
		}
		if r.Err() != nil {
			t.Errorf("Varint(%d): err %v", c, r.Err())
		}
	}
}

func TestUvarintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(16)
		w.Uvarint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesAndStringRoundTripQuick(t *testing.T) {
	f := func(p []byte, s string) bool {
		w := NewWriter(len(p) + len(s) + 16)
		w.BytesField(p)
		w.String(s)
		r := NewReader(w.Bytes())
		gp := r.BytesField()
		gs := r.String()
		return bytes.Equal(gp, p) && gs == s && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlicesRoundTripQuick(t *testing.T) {
	f := func(a []uint64, b []uint32, c []string) bool {
		w := NewWriter(64)
		w.Uint64Slice(a)
		w.Uint32Slice(b)
		w.StringSlice(c)
		r := NewReader(w.Bytes())
		ga := r.Uint64Slice()
		gb := r.Uint32Slice()
		gc := r.StringSlice()
		if r.Err() != nil {
			return false
		}
		if len(ga) != len(a) || len(gb) != len(b) || len(gc) != len(c) {
			return false
		}
		for i := range a {
			if ga[i] != a[i] {
				return false
			}
		}
		for i := range b {
			if gb[i] != b[i] {
				return false
			}
		}
		for i := range c {
			if gc[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortBufferPoisons(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(42)
	p := w.Bytes()[:4] // truncate mid-field
	r := NewReader(p)
	if got := r.Uint64(); got != 0 {
		t.Errorf("truncated Uint64 = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error after truncated read")
	}
	// Poisoned reader keeps failing and returns zero values.
	if got := r.Uint32(); got != 0 {
		t.Errorf("post-poison Uint32 = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Error("Err cleared unexpectedly")
	}
}

func TestLengthPrefixTooLarge(t *testing.T) {
	w := NewWriter(16)
	w.Uvarint(MaxElemLen + 1)
	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("BytesField = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected ErrTooLarge")
	}
}

func TestLengthPrefixBeyondBuffer(t *testing.T) {
	w := NewWriter(16)
	w.Uvarint(1000) // claims 1000 bytes, provides none
	r := NewReader(w.Bytes())
	if got := r.BytesField(); got != nil {
		t.Errorf("BytesField = %v, want nil", got)
	}
	if r.Err() != ErrShort {
		t.Fatalf("Err = %v, want ErrShort", r.Err())
	}
}

func TestSliceCountBeyondBuffer(t *testing.T) {
	w := NewWriter(16)
	w.Uvarint(1 << 40) // absurd element count
	r := NewReader(w.Bytes())
	if got := r.Uint64Slice(); got != nil {
		t.Errorf("Uint64Slice = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error for oversized count")
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	w := NewWriter(16)
	w.BytesField([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.BytesCopy()
	buf[len(buf)-1] = 99 // mutate backing store
	if got[2] != 3 {
		t.Errorf("BytesCopy aliases input: got %v", got)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(7)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Uint32(5)
	r := NewReader(w.Bytes())
	if got := r.Uint32(); got != 5 {
		t.Errorf("after reset Uint32 = %d, want 5", got)
	}
}

func TestRawRoundTrip(t *testing.T) {
	w := NewWriter(8)
	w.Raw([]byte{9, 8, 7})
	r := NewReader(w.Bytes())
	got := r.Raw(3)
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("Raw = %v", got)
	}
	if r.Raw(1) != nil || r.Err() == nil {
		t.Error("Raw past end should poison the reader")
	}
}

func TestChecksumDistinguishesData(t *testing.T) {
	a := Checksum64([]byte("supernova"))
	b := Checksum64([]byte("supernovb"))
	if a == b {
		t.Error("checksum collision on adjacent strings")
	}
	if Checksum64(nil) != Checksum64([]byte{}) {
		t.Error("nil and empty should hash identically")
	}
}

func TestMix64AvalanchesLowBits(t *testing.T) {
	// Consecutive integers must land far apart: count distinct high bytes
	// across 256 consecutive inputs; a weak mixer would keep them clustered.
	seen := map[byte]bool{}
	for i := uint64(0); i < 256; i++ {
		seen[byte(Mix64(i)>>56)] = true
	}
	if len(seen) < 100 {
		t.Errorf("high-byte diversity = %d, want >= 100", len(seen))
	}
}

func TestHashFieldsOrderSensitive(t *testing.T) {
	if HashFields(1, 2) == HashFields(2, 1) {
		t.Error("HashFields should be order sensitive")
	}
	if HashFields(1, 2, 3) == HashFields(1, 2) {
		t.Error("HashFields should be length sensitive")
	}
}

func BenchmarkWriterUint64(b *testing.B) {
	w := NewWriter(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 64; j++ {
			w.Uint64(uint64(j))
		}
	}
}

func BenchmarkChecksum64KPage(b *testing.B) {
	page := make([]byte, 64<<10)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum64(page)
	}
}
