package wire

// Hashing helpers shared by the DHT key space, page placement and
// checksums. We use FNV-1a for streaming checksums (simple, stdlib-free,
// good enough for integrity of RAM-resident pages) and a splitmix64-style
// finalizer for key dispersal, whose avalanche behaviour gives the uniform
// node spread the segment-tree dispersal relies on.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Checksum64 returns the FNV-1a hash of p. Used as a page integrity check:
// leaves record the checksum at write time and readers verify it.
func Checksum64(p []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// Mix64 finalizes x with the splitmix64 mixing function. All bits of the
// input affect all bits of the output, so consecutive keys (version
// numbers, page indexes) disperse uniformly over the ring.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashFields mixes a sequence of integers into one well-dispersed key.
// It is the canonical way to derive a DHT key from a composite identity
// such as (blobID, version, offset, size).
func HashFields(fields ...uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, f := range fields {
		h ^= Mix64(f)
		h *= fnvPrime64
		h = Mix64(h)
	}
	return h
}
