package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"blob/internal/events"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/stats"
)

// Health verdicts, ordered by severity.
const (
	HealthGreen  = "green"  // fully redundant, all planes answering
	HealthYellow = "yellow" // degraded but self-healing (dead provider, debt)
	HealthRed    = "red"    // operator needed (plane down, unrepairable data)
)

// ClusterSnapshot is the monitor's rolled-up view of the whole
// deployment — what MCluster serves and blobctl top renders. All
// fields are plain values; the struct marshals to JSON.
type ClusterSnapshot struct {
	Time    int64    `json:"time"` // unix nanoseconds of the poll
	Health  string   `json:"health"`
	Reasons []string `json:"reasons,omitempty"`

	Epoch      uint64 `json:"epoch"`      // provider membership epoch
	Redundancy string `json:"redundancy"` // advertised mode, e.g. "replicate" or "rs(4,2)"

	Providers []ProviderRoll `json:"providers"`
	Shards    []ShardRoll    `json:"shards,omitempty"`

	CapacityBytes int64 `json:"capacity_bytes"` // 0 = unbounded
	UsedBytes     int64 `json:"used_bytes"`
	TotalPages    int64 `json:"total_pages"`
	DeadProviders int   `json:"dead_providers"`

	// RedundancyDebt is the degraded page slots outstanding after the
	// newest repair sweep (0 = full redundancy); DebtPeak is the
	// largest degradation any sweep found since the last clean one.
	// RepairPending reports a heartbeat death newer than that sweep —
	// the debt number is stale until the next sweep lands.
	RedundancyDebt int64 `json:"redundancy_debt"`
	DebtPeak       int64 `json:"debt_peak"`
	RepairPending  bool  `json:"repair_pending"`
	LastSweep      int64 `json:"last_sweep,omitempty"` // unix ns of newest RepairFinish

	// Cluster-wide latency quantiles from merged provider histograms,
	// in nanoseconds.
	ReadP50  int64 `json:"read_p50,omitempty"`
	ReadP99  int64 `json:"read_p99,omitempty"`
	ReadMax  int64 `json:"read_max,omitempty"`
	WriteP50 int64 `json:"write_p50,omitempty"`
	WriteP99 int64 `json:"write_p99,omitempty"`
	WriteMax int64 `json:"write_max,omitempty"`

	// Gray-failure plane (docs/robustness.md): circuit breakers
	// currently open anywhere in the cluster, derived from the
	// BreakerOpen/BreakerClose event stream. Each entry reads
	// "observer -> peer" — the node whose pool tripped, and the peer it
	// tripped on.
	BreakersOpen int      `json:"breakers_open"`
	OpenBreakers []string `json:"open_breakers,omitempty"`

	// Recent merged events, oldest first (bounded tail).
	Events []events.Event `json:"events,omitempty"`
}

// ProviderRoll is one data provider's row in the snapshot.
type ProviderRoll struct {
	ID         uint32  `json:"id"`
	Addr       string  `json:"addr"`
	Alive      bool    `json:"alive"`
	LastSeenMS int64   `json:"last_seen_ms"`
	Capacity   int64   `json:"capacity"`
	BytesUsed  int64   `json:"bytes_used"`
	PageCount  int64   `json:"pages"`
	ActiveOps  int64   `json:"active_ops"`
	GetsPerSec float64 `json:"gets_per_sec"`
	PutsPerSec float64 `json:"puts_per_sec"`
}

// ShardRoll is one vmanager shard's row: which replica leads, at what
// term, and how many replicas answered the status poll.
type ShardRoll struct {
	Shard     int    `json:"shard"`
	Leader    int    `json:"leader"` // -1: no reachable replica claims leadership
	Term      uint64 `json:"term"`
	Reachable int    `json:"reachable"`
	Replicas  int    `json:"replicas"`
	LogLen    uint64 `json:"log_len"`
	Blobs     uint64 `json:"blobs"`
}

// eventAgg folds the event stream into the running aggregates the
// health rules read. It sees every event exactly once (the poller
// feeds it the per-node incremental tails), so the aggregates survive
// ring overwrites in the source journals.
type eventAgg struct {
	lastFinishT int64 // newest RepairFinish
	debt        int64 // its Val
	lastCleanT  int64 // newest RepairFinish with Val == 0
	degradedT   int64 // newest RedundancyDegraded
	debtPeak    int64 // max RedundancyDegraded.Val since lastCleanT
	lastDeathT  int64 // newest HeartbeatDeath
	lastUnrepT  int64 // newest Unrepairable
	elections   []int64
	// breakers tracks each observer->peer circuit by its newest open
	// and close event times; a circuit is open while openT > closeT.
	breakers map[string][2]int64
}

// ingest folds newly collected events in. Events may arrive slightly
// out of time order across nodes; aggregates use per-type newest-wins.
func (a *eventAgg) ingest(evs []events.Event) {
	for _, e := range evs {
		switch e.Type {
		case events.RepairFinish:
			if e.Time >= a.lastFinishT {
				a.lastFinishT, a.debt = e.Time, e.Val
			}
			if e.Val == 0 && e.Time >= a.lastCleanT {
				a.lastCleanT = e.Time
				a.debtPeak = 0
			}
		case events.RedundancyDegraded:
			if e.Time >= a.degradedT {
				a.degradedT = e.Time
			}
			if e.Time >= a.lastCleanT && e.Val > a.debtPeak {
				a.debtPeak = e.Val
			}
		case events.HeartbeatDeath:
			if e.Time >= a.lastDeathT {
				a.lastDeathT = e.Time
			}
		case events.Unrepairable:
			if e.Time >= a.lastUnrepT {
				a.lastUnrepT = e.Time
			}
		case events.ElectionWon:
			a.elections = append(a.elections, e.Time)
			if len(a.elections) > 256 {
				a.elections = a.elections[len(a.elections)-256:]
			}
		case events.BreakerOpen, events.BreakerClose:
			if a.breakers == nil {
				a.breakers = make(map[string][2]int64)
			}
			key := e.Node + " -> " + breakerPeer(e.Msg)
			t := a.breakers[key]
			if e.Type == events.BreakerOpen && e.Time >= t[0] {
				t[0] = e.Time
			}
			if e.Type == events.BreakerClose && e.Time >= t[1] {
				t[1] = e.Time
			}
			a.breakers[key] = t
		}
	}
}

// breakerPeer extracts the peer address from a breaker event message
// ("peer <addr>: circuit breaker ..."); unknown shapes pass through
// whole, so a changed emit format degrades the label, never the count.
func breakerPeer(msg string) string {
	const prefix = "peer "
	rest, ok := strings.CutPrefix(msg, prefix)
	if !ok {
		return msg
	}
	// "host:port: circuit ..." — the address ends at the colon after
	// the port, i.e. the second colon (or the first, if no port).
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		if j := strings.IndexByte(rest[i+1:], ':'); j >= 0 {
			return rest[:i+1+j]
		}
		return rest[:i]
	}
	return rest
}

// openBreakers lists the observer->peer circuits currently open,
// sorted for stable snapshots.
func (a *eventAgg) openBreakers() []string {
	var open []string
	for key, t := range a.breakers {
		if t[0] > t[1] {
			open = append(open, key)
		}
	}
	sort.Strings(open)
	return open
}

// electionsSince counts leader elections recorded after t.
func (a *eventAgg) electionsSince(t int64) int {
	n := 0
	for _, et := range a.elections {
		if et > t {
			n++
		}
	}
	return n
}

// counterRate turns two successive counter readings into a per-second
// rate that can never go negative: a reading below the previous one
// means the process restarted and its counter began again at zero, so
// the delta is the new reading itself (everything counted since the
// restart), exactly like Prometheus rate().
func counterRate(prev, cur int64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	delta := cur - prev
	if delta < 0 {
		delta = cur
	}
	if delta < 0 {
		delta = 0
	}
	return float64(delta) / dt.Seconds()
}

// rateTracker derives per-provider gets/puts rates across polls,
// restart-safe via counterRate.
type rateTracker struct {
	prev  map[uint32]provider.Stats
	prevT time.Time
}

// rates folds the latest stats for provider id and returns its
// gets/puts per second since the previous poll (0 on the first one).
func (t *rateTracker) rates(id uint32, cur provider.Stats, now time.Time) (gets, puts float64) {
	if t.prev == nil {
		t.prev = make(map[uint32]provider.Stats)
	}
	if p, ok := t.prev[id]; ok {
		dt := now.Sub(t.prevT)
		gets = counterRate(p.Gets, cur.Gets, dt)
		puts = counterRate(p.Puts, cur.Puts, dt)
	}
	t.prev[id] = cur
	return gets, puts
}

// advance stamps the poll time after every provider's rates were taken.
func (t *rateTracker) advance(now time.Time) { t.prevT = now }

// rollupInput is everything one poll collected — a plain value so the
// health rules and snapshot assembly are pure and unit-testable.
type rollupInput struct {
	now        time.Time
	pmErr      error // provider manager unreachable
	membership pmanager.Membership
	provStats  map[uint32]provider.Stats             // per alive provider
	provRates  map[uint32][2]float64                 // gets, puts per sec
	latency    map[uint32][2]stats.HistogramSnapshot // get, put
	shards     []ShardRoll                           // pre-assembled from status polls
	agg        *eventAgg
	tail       []events.Event
}

// electionChurnWindow is how far back "recent elections" reaches when
// judging version-plane stability.
const electionChurnWindow = time.Minute

// rollup assembles the cluster snapshot, health verdict included.
func rollup(in rollupInput) ClusterSnapshot {
	s := ClusterSnapshot{
		Time:   in.now.UnixNano(),
		Events: in.tail,
		Shards: in.shards,
	}
	var reasons []string

	if in.pmErr != nil {
		s.Health = HealthRed
		s.Reasons = []string{fmt.Sprintf("provider manager unreachable: %v", in.pmErr)}
		return s
	}
	s.Epoch = in.membership.Epoch
	s.Redundancy = in.membership.Redundancy.String()

	unbounded := false
	for _, m := range in.membership.Members {
		roll := ProviderRoll{
			ID:         m.ID,
			Addr:       m.Addr,
			Alive:      m.Alive,
			LastSeenMS: m.LastSeen.Milliseconds(),
			Capacity:   m.Capacity,
			BytesUsed:  m.BytesUsed,
			ActiveOps:  m.ActiveOps,
		}
		if st, ok := in.provStats[m.ID]; ok {
			roll.BytesUsed = st.BytesUsed
			roll.PageCount = st.PageCount
			roll.ActiveOps = st.ActiveOps
			s.TotalPages += st.PageCount
		}
		if r, ok := in.provRates[m.ID]; ok {
			roll.GetsPerSec, roll.PutsPerSec = r[0], r[1]
		}
		s.Providers = append(s.Providers, roll)
		s.UsedBytes += roll.BytesUsed
		if m.Capacity <= 0 {
			unbounded = true
		} else {
			s.CapacityBytes += m.Capacity
		}
		if !m.Alive {
			s.DeadProviders++
			reasons = append(reasons, fmt.Sprintf("provider %d (%s) dead: no heartbeat for %v",
				m.ID, m.Addr, m.LastSeen.Round(time.Millisecond)))
		}
	}
	if unbounded {
		s.CapacityBytes = 0 // any unbounded provider makes the sum meaningless
	}
	sort.Slice(s.Providers, func(i, j int) bool { return s.Providers[i].ID < s.Providers[j].ID })

	// Version plane: every shard needs a reachable leader.
	noLeader := 0
	for _, sh := range in.shards {
		if sh.Leader < 0 {
			noLeader++
			reasons = append(reasons, fmt.Sprintf("vmanager shard %d has no reachable leader (%d/%d replicas answered)",
				sh.Shard, sh.Reachable, sh.Replicas))
		}
	}

	// Redundancy accounting from the event stream.
	a := in.agg
	if a != nil {
		s.RedundancyDebt = a.debt
		s.DebtPeak = a.debtPeak
		s.LastSweep = a.lastFinishT
		s.RepairPending = a.lastDeathT > a.lastFinishT
		if s.RedundancyDebt > 0 {
			reasons = append(reasons, fmt.Sprintf("redundancy debt: %d degraded page slots after last sweep", s.RedundancyDebt))
		}
		if s.RepairPending {
			reasons = append(reasons, "repair pending: provider death newer than last repair sweep")
		}
		if n := a.electionsSince(in.now.Add(-electionChurnWindow).UnixNano()); len(in.shards) > 0 && n > len(in.shards) {
			reasons = append(reasons, fmt.Sprintf("election churn: %d leader elections in the last %v", n, electionChurnWindow))
		}
		// Open circuit breakers mark gray peers: some node has stopped
		// routing to a peer that is slow or erroring but not dead.
		s.OpenBreakers = a.openBreakers()
		s.BreakersOpen = len(s.OpenBreakers)
		if s.BreakersOpen > 0 {
			reasons = append(reasons, fmt.Sprintf("circuit breakers open: %d (%s)",
				s.BreakersOpen, strings.Join(s.OpenBreakers, ", ")))
		}
	}

	// Latency rollup: merge every provider's histograms.
	var get, put stats.HistogramSnapshot
	for _, hs := range in.latency {
		get.Merge(hs[0])
		put.Merge(hs[1])
	}
	if get.Count > 0 {
		s.ReadP50 = get.Quantile(0.50).Nanoseconds()
		s.ReadP99 = get.Quantile(0.99).Nanoseconds()
		s.ReadMax = get.Max().Nanoseconds()
	}
	if put.Count > 0 {
		s.WriteP50 = put.Quantile(0.50).Nanoseconds()
		s.WriteP99 = put.Quantile(0.99).Nanoseconds()
		s.WriteMax = put.Max().Nanoseconds()
	}

	// Verdict: red for conditions needing an operator, yellow for
	// degradation the cluster heals on its own, green otherwise.
	switch {
	case noLeader > 0:
		s.Health = HealthRed
	case a != nil && a.lastUnrepT > 0 && a.lastUnrepT > a.lastCleanT:
		s.Health = HealthRed
		reasons = append(reasons, "unrepairable pages: a sweep found stripes with too few survivors")
	case len(reasons) > 0:
		s.Health = HealthYellow
	default:
		s.Health = HealthGreen
	}
	s.Reasons = reasons
	return s
}
