package monitor

import (
	"context"
	"encoding/json"
	"fmt"

	"blob/internal/events"
	"blob/internal/rpc"
	"blob/internal/wire"
)

// MCluster serves the monitor's latest ClusterSnapshot as JSON — a
// control-plane query, so readability beats compactness.
//
//	MCluster request:  (empty: snapshot with its default event tail)
//	                   | varint sinceUnixNano, u8 minSeverity
//	                     (tail filtered: Time > since, Sev >= min —
//	                     the blobctl events -follow cursor)
//	MCluster response: ClusterSnapshot JSON
const MCluster = 0x0702

func init() {
	rpc.RegisterMethodName(MCluster, "monitor.MCluster")
}

// RegisterHandlers wires the monitor's RPC methods onto srv.
func (m *Monitor) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MCluster, m.handleCluster)
}

func (m *Monitor) handleCluster(_ context.Context, body []byte) ([]byte, error) {
	snap := m.Snapshot()
	if len(body) > 0 {
		r := wire.NewReader(body)
		since := r.Varint()
		minSev := events.Severity(r.Uint8())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("monitor: cluster query: %w", err)
		}
		snap.Events = m.EventsSince(since, minSev)
	}
	return json.Marshal(snap)
}

// EncodeClusterQuery builds an MCluster request asking only for events
// after since (unix nanoseconds) at or above minSev.
func EncodeClusterQuery(since int64, minSev events.Severity) []byte {
	w := wire.NewWriter(10)
	w.Varint(since)
	w.Uint8(uint8(minSev))
	return w.Bytes()
}

// FetchCluster retrieves a monitor's snapshot. body is nil for the
// default view or an EncodeClusterQuery result.
func FetchCluster(ctx context.Context, pool *rpc.Pool, addr string, body []byte) (ClusterSnapshot, error) {
	resp, err := pool.Call(ctx, addr, MCluster, body)
	if err != nil {
		return ClusterSnapshot{}, err
	}
	var s ClusterSnapshot
	if err := json.Unmarshal(resp, &s); err != nil {
		return ClusterSnapshot{}, fmt.Errorf("monitor: decode snapshot: %w", err)
	}
	return s, nil
}
