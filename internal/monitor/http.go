package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"blob/internal/events"
)

// RegisterHTTP mounts the monitor's admin endpoints on mux:
//
//	/cluster/metrics — federated Prometheus rollups (cluster_* series)
//	/cluster/healthz — JSON verdict; 200 for green/yellow, 503 for red
//	/cluster/events  — merged event tail as text
//	                   (?min=warn filters severity, ?n=100 caps lines,
//	                   ?format=json for structured output)
func (m *Monitor) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/metrics", m.serveMetrics)
	mux.HandleFunc("/cluster/healthz", m.serveHealthz)
	mux.HandleFunc("/cluster/events", m.serveEvents)
}

// healthValue maps the verdict to the cluster_health gauge: 0 green,
// 1 yellow, 2 red — "bigger is worse", so alerts are simple threshold
// rules.
func healthValue(h string) int {
	switch h {
	case HealthYellow:
		return 1
	case HealthRed:
		return 2
	}
	return 0
}

func (m *Monitor) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	s := m.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# TYPE cluster_health gauge\ncluster_health %d\n", healthValue(s.Health))
	p("# TYPE cluster_membership_epoch gauge\ncluster_membership_epoch %d\n", s.Epoch)
	p("# TYPE cluster_capacity_bytes gauge\ncluster_capacity_bytes %d\n", s.CapacityBytes)
	p("# TYPE cluster_used_bytes gauge\ncluster_used_bytes %d\n", s.UsedBytes)
	p("# TYPE cluster_pages gauge\ncluster_pages %d\n", s.TotalPages)
	p("# TYPE cluster_providers gauge\n")
	p("cluster_providers{state=\"alive\"} %d\n", len(s.Providers)-s.DeadProviders)
	p("cluster_providers{state=\"dead\"} %d\n", s.DeadProviders)
	p("# TYPE cluster_redundancy_debt gauge\ncluster_redundancy_debt %d\n", s.RedundancyDebt)
	p("# TYPE cluster_redundancy_debt_peak gauge\ncluster_redundancy_debt_peak %d\n", s.DebtPeak)
	repairPending := 0
	if s.RepairPending {
		repairPending = 1
	}
	p("# TYPE cluster_repair_pending gauge\ncluster_repair_pending %d\n", repairPending)
	p("# TYPE cluster_breakers_open gauge\ncluster_breakers_open %d\n", s.BreakersOpen)
	if s.ReadP99 > 0 {
		p("# TYPE cluster_read_seconds gauge\n")
		p("cluster_read_seconds{quantile=\"0.5\"} %g\n", float64(s.ReadP50)/1e9)
		p("cluster_read_seconds{quantile=\"0.99\"} %g\n", float64(s.ReadP99)/1e9)
		p("cluster_read_seconds{quantile=\"1\"} %g\n", float64(s.ReadMax)/1e9)
	}
	if s.WriteP99 > 0 {
		p("# TYPE cluster_write_seconds gauge\n")
		p("cluster_write_seconds{quantile=\"0.5\"} %g\n", float64(s.WriteP50)/1e9)
		p("cluster_write_seconds{quantile=\"0.99\"} %g\n", float64(s.WriteP99)/1e9)
		p("cluster_write_seconds{quantile=\"1\"} %g\n", float64(s.WriteMax)/1e9)
	}
	p("# TYPE cluster_provider_bytes_used gauge\n")
	for _, pr := range s.Providers {
		p("cluster_provider_bytes_used{id=\"%d\"} %d\n", pr.ID, pr.BytesUsed)
	}
	p("# TYPE cluster_provider_ops_per_sec gauge\n")
	for _, pr := range s.Providers {
		p("cluster_provider_ops_per_sec{id=\"%d\",op=\"get\"} %g\n", pr.ID, pr.GetsPerSec)
		p("cluster_provider_ops_per_sec{id=\"%d\",op=\"put\"} %g\n", pr.ID, pr.PutsPerSec)
	}
	if len(s.Shards) > 0 {
		p("# TYPE cluster_shard_term gauge\n")
		for _, sh := range s.Shards {
			p("cluster_shard_term{shard=\"%d\"} %d\n", sh.Shard, sh.Term)
		}
		p("# TYPE cluster_shard_leader gauge\n")
		for _, sh := range s.Shards {
			p("cluster_shard_leader{shard=\"%d\"} %d\n", sh.Shard, sh.Leader)
		}
	}
}

func (m *Monitor) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	s := m.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if s.Health == HealthRed || s.Health == "" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	status := s.Health
	if status == "" {
		status = "unknown" // no poll has completed yet
	}
	json.NewEncoder(w).Encode(struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons,omitempty"`
	}{status, s.Reasons})
}

func (m *Monitor) serveEvents(w http.ResponseWriter, r *http.Request) {
	minSev := events.SevInfo
	if v := r.URL.Query().Get("min"); v != "" {
		sev, err := events.ParseSeverity(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		minSev = sev
	}
	evs := m.EventsSince(0, minSev)
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(evs)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, e := range evs {
		fmt.Fprintln(w, e.Format())
	}
}
