// Package monitor implements the cluster health plane's aggregator: a
// process that polls every node's stats, status and event-journal RPCs,
// rolls them up into one ClusterSnapshot (capacity, per-shard leaders,
// redundancy debt, merged latency quantiles, a green/yellow/red
// verdict with reasons) and serves the result three ways — the
// MCluster RPC for blobctl top, and /cluster/metrics, /cluster/healthz
// and /cluster/events on an admin HTTP listener for scrapers and
// probes. Semantics are specified in docs/observability.md.
//
// The monitor is a pure observer: it holds no cluster state, issues
// only read RPCs, and any number of monitors may watch one deployment.
// Everything it reports is reconstructed from poll responses, so a
// restarted monitor converges within one poll (event-derived aggregates
// like debt converge at the next repair sweep).
package monitor

import (
	"context"
	"sort"
	"sync"
	"time"

	"blob/internal/events"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/vmanager"
)

// Config describes what to watch and how often.
type Config struct {
	// Pool is the RPC client pool used for every poll. The monitor does
	// not close it.
	Pool *rpc.Pool
	// PMAddr is the provider manager's RPC address (required: provider
	// membership is discovered from it every poll).
	PMAddr string
	// VMShards lists the version-manager group's replica addresses,
	// VMShards[s][r] = replica r of shard s. Empty for single-manager
	// deployments (the monitor then skips leader checks).
	VMShards [][]string
	// EventNodes are additional RPC addresses to tail MEvents from,
	// beyond the provider manager, vmanager replicas and providers —
	// e.g. the node hosting the repair agent's journal.
	EventNodes []string
	// Interval is the poll period (default 1s).
	Interval time.Duration
	// CallTimeout bounds each individual poll RPC (default 2s, clamped
	// to Interval when the interval is shorter).
	CallTimeout time.Duration
	// EventTail caps the merged recent-events buffer (default 512).
	EventTail int
	// Logf, when set, receives poll-loop diagnostics.
	Logf func(format string, args ...any)
}

// Monitor polls the cluster and maintains the latest ClusterSnapshot.
type Monitor struct {
	cfg Config

	mu      sync.Mutex
	snap    ClusterSnapshot
	lastSeq map[string]uint64 // per-node MEvents cursor
	tail    []events.Event    // merged recent events, oldest first
	agg     eventAgg
	rates   rateTracker
	polls   int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New creates a monitor; Start begins polling.
func New(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.CallTimeout > cfg.Interval {
		cfg.CallTimeout = cfg.Interval
	}
	if cfg.EventTail <= 0 {
		cfg.EventTail = 512
	}
	return &Monitor{
		cfg:     cfg,
		lastSeq: make(map[string]uint64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the poll loop (first poll immediately, then every
// Interval).
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		m.Poll(context.Background())
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Poll(context.Background())
			}
		}
	}()
}

// Close stops the poll loop and waits for it to exit.
func (m *Monitor) Close() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

// Snapshot returns the latest rolled-up cluster view. The zero
// snapshot (Health == "") means no poll has completed yet.
func (m *Monitor) Snapshot() ClusterSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.snap
	// Aliased slices are never mutated in place (each poll builds fresh
	// ones), so handing them out without copying is safe.
	return s
}

// EventsSince returns the merged event tail with Time > since and
// severity >= minSev, oldest first.
func (m *Monitor) EventsSince(since int64, minSev events.Severity) []events.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []events.Event
	for _, e := range m.tail {
		if e.Time > since && e.Sev >= minSev {
			out = append(out, e)
		}
	}
	return out
}

// Polls returns how many polls have completed (for overhead tests).
func (m *Monitor) Polls() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.polls
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf("monitor: "+format, args...)
	}
}

// call wraps one poll RPC in its timeout.
func (m *Monitor) call(ctx context.Context, f func(context.Context) error) error {
	cctx, cancel := context.WithTimeout(ctx, m.cfg.CallTimeout)
	defer cancel()
	return f(cctx)
}

// Poll runs one collection round and publishes the resulting snapshot.
// The loop calls it on its ticker; tests may call it directly.
func (m *Monitor) Poll(ctx context.Context) ClusterSnapshot {
	now := time.Now()
	in := rollupInput{now: now}

	// Membership first: it names the providers everything else polls.
	var ms pmanager.Membership
	in.pmErr = m.call(ctx, func(c context.Context) (err error) {
		ms, err = pmanager.FetchMembers(c, m.cfg.Pool, m.cfg.PMAddr)
		return err
	})
	in.membership = ms

	// Fan out the per-node polls; each has its own timeout, so one dead
	// node cannot stall the round past CallTimeout.
	var wg sync.WaitGroup
	var collMu sync.Mutex
	in.provStats = make(map[uint32]provider.Stats)
	in.latency = make(map[uint32][2]stats.HistogramSnapshot)

	eventTargets := map[string]bool{m.cfg.PMAddr: true}
	for _, a := range m.cfg.EventNodes {
		eventTargets[a] = true
	}
	for _, sh := range m.cfg.VMShards {
		for _, a := range sh {
			eventTargets[a] = true
		}
	}
	for _, mem := range ms.Members {
		if mem.Alive {
			eventTargets[mem.Addr] = true
		}
		if !mem.Alive {
			continue
		}
		mem := mem
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st provider.Stats
			err := m.call(ctx, func(c context.Context) error {
				resp, err := m.cfg.Pool.Call(c, mem.Addr, provider.MStats, nil)
				if err != nil {
					return err
				}
				st, err = provider.DecodeStats(resp)
				return err
			})
			if err != nil {
				m.logf("stats %s: %v", mem.Addr, err)
				return
			}
			var get, put stats.HistogramSnapshot
			if err := m.call(ctx, func(c context.Context) (err error) {
				get, put, err = provider.FetchLatency(c, m.cfg.Pool, mem.Addr)
				return err
			}); err != nil {
				m.logf("latency %s: %v", mem.Addr, err)
			}
			collMu.Lock()
			in.provStats[mem.ID] = st
			in.latency[mem.ID] = [2]stats.HistogramSnapshot{get, put}
			collMu.Unlock()
		}()
	}

	// Version-plane status, one shard at a time (replicas within a
	// shard polled sequentially — there are few).
	shardRolls := make([]ShardRoll, len(m.cfg.VMShards))
	for s := range m.cfg.VMShards {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			roll := ShardRoll{Shard: s, Leader: -1, Replicas: len(m.cfg.VMShards[s])}
			for rIdx, addr := range m.cfg.VMShards[s] {
				var st vmanager.ReplicaStatus
				err := m.call(ctx, func(c context.Context) error {
					resp, err := m.cfg.Pool.Call(c, addr, vmanager.MVmStatus, nil)
					if err != nil {
						return err
					}
					st, err = vmanager.DecodeReplicaStatus(resp)
					return err
				})
				if err != nil {
					continue
				}
				roll.Reachable++
				if st.Term > roll.Term {
					roll.Term = st.Term
				}
				if st.LogLen > roll.LogLen {
					roll.LogLen = st.LogLen
				}
				if st.Blobs > roll.Blobs {
					roll.Blobs = st.Blobs
				}
				if st.IsLeader {
					roll.Leader = rIdx
				}
			}
			shardRolls[s] = roll
		}()
	}

	// Event tails, incremental per node.
	var freshMu sync.Mutex
	var fresh []events.Event
	for addr := range eventTargets {
		addr := addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.mu.Lock()
			since := m.lastSeq[addr]
			m.mu.Unlock()
			var latest uint64
			var evs []events.Event
			err := m.call(ctx, func(c context.Context) error {
				resp, err := m.cfg.Pool.Call(c, addr, events.MEvents, events.EncodeEventsQuery(since, events.SevInfo))
				if err != nil {
					return err
				}
				latest, evs, err = events.DecodeEvents(resp)
				return err
			})
			if err != nil {
				return
			}
			m.mu.Lock()
			if latest < since {
				// The node restarted: its journal's sequence numbers
				// began again at 1. Reset the cursor so the next poll
				// collects the reborn journal from the top.
				m.lastSeq[addr] = 0
			} else if len(evs) > 0 {
				m.lastSeq[addr] = evs[len(evs)-1].Seq
			}
			m.mu.Unlock()
			if len(evs) == 0 {
				return
			}
			freshMu.Lock()
			fresh = append(fresh, evs...)
			freshMu.Unlock()
		}()
	}
	wg.Wait()
	in.shards = shardRolls

	// Merge fresh events into the bounded tail and the aggregates.
	sort.SliceStable(fresh, func(i, j int) bool { return fresh[i].Time < fresh[j].Time })

	m.mu.Lock()
	m.agg.ingest(fresh)
	m.tail = append(m.tail, fresh...)
	if len(m.tail) > m.cfg.EventTail {
		m.tail = append([]events.Event(nil), m.tail[len(m.tail)-m.cfg.EventTail:]...)
	}
	in.agg = &m.agg
	in.tail = append([]events.Event(nil), m.tail...)
	rates := make(map[uint32][2]float64, len(in.provStats))
	for id, st := range in.provStats {
		g, p := m.rates.rates(id, st, now)
		rates[id] = [2]float64{g, p}
	}
	m.rates.advance(now)
	in.provRates = rates

	snap := rollup(in)
	m.snap = snap
	m.polls++
	m.mu.Unlock()
	return snap
}
