package monitor

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blob/internal/events"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/stats"
)

func TestCounterRateResetSafe(t *testing.T) {
	dt := time.Second
	if r := counterRate(100, 150, dt); r != 50 {
		t.Errorf("steady rate = %v, want 50", r)
	}
	// Restart: counter fell below the previous reading. The delta is
	// the new absolute value, never negative.
	if r := counterRate(1000, 30, dt); r != 30 {
		t.Errorf("post-restart rate = %v, want 30", r)
	}
	if r := counterRate(5, 5, 0); r != 0 {
		t.Errorf("zero-interval rate = %v, want 0", r)
	}
}

func TestRateTrackerNeverNegative(t *testing.T) {
	var tr rateTracker
	t0 := time.Now()
	g, p := tr.rates(1, provider.Stats{Gets: 100, Puts: 50}, t0)
	if g != 0 || p != 0 {
		t.Errorf("first poll rates = %v/%v, want 0/0", g, p)
	}
	tr.advance(t0)
	// Second poll: provider restarted, counters collapsed.
	g, p = tr.rates(1, provider.Stats{Gets: 10, Puts: 2}, t0.Add(time.Second))
	if g < 0 || p < 0 {
		t.Fatalf("negative rates after counter reset: %v/%v", g, p)
	}
	if g != 10 || p != 2 {
		t.Errorf("post-restart rates = %v/%v, want 10/2", g, p)
	}
}

func TestEventAggDebtLifecycle(t *testing.T) {
	var a eventAgg
	ts := func(s int64) int64 { return s * int64(time.Second) }
	// A death, then a sweep that finds 6 degraded slots and fixes 4.
	a.ingest([]events.Event{
		{Time: ts(1), Type: events.HeartbeatDeath, Val: 2},
		{Time: ts(2), Type: events.RepairStart, Val: 10},
		{Time: ts(3), Type: events.RedundancyDegraded, Val: 6},
		{Time: ts(4), Type: events.RepairFinish, Val: 2},
	})
	if a.debt != 2 || a.debtPeak != 6 {
		t.Fatalf("debt = %d peak = %d, want 2/6", a.debt, a.debtPeak)
	}
	if a.lastDeathT > a.lastFinishT {
		t.Error("sweep finished after the death; repair should not read as pending")
	}
	// A later clean sweep zeroes the books.
	a.ingest([]events.Event{{Time: ts(9), Type: events.RepairFinish, Val: 0}})
	if a.debt != 0 || a.debtPeak != 0 {
		t.Errorf("after clean sweep debt = %d peak = %d, want 0/0", a.debt, a.debtPeak)
	}
}

func TestEventAggBreakers(t *testing.T) {
	var a eventAgg
	ts := func(s int64) int64 { return s * int64(time.Second) }
	open := func(at int64, node, peer string) events.Event {
		return events.Event{Time: ts(at), Type: events.BreakerOpen, Node: node,
			Msg: "peer " + peer + ": circuit breaker open (trip 1, err-rate 0.62, lat-ewma 310ms)"}
	}
	closed := func(at int64, node, peer string) events.Event {
		return events.Event{Time: ts(at), Type: events.BreakerClose, Node: node,
			Msg: "peer " + peer + ": circuit breaker closed after probe"}
	}

	// Two clients trip against the same sick peer; one recovers.
	a.ingest([]events.Event{
		open(1, "client0", "node2:data"),
		open(2, "client1", "node2:data"),
		closed(3, "client0", "node2:data"),
	})
	got := a.openBreakers()
	if len(got) != 1 || got[0] != "client1 -> node2:data" {
		t.Fatalf("open breakers = %v, want [client1 -> node2:data]", got)
	}

	// Re-open after a close: newest event wins per (node, peer) slot.
	a.ingest([]events.Event{open(4, "client0", "node2:data")})
	if got := a.openBreakers(); len(got) != 2 {
		t.Fatalf("after re-open, open breakers = %v, want 2 entries", got)
	}

	// Portless peer addresses must still parse.
	a.ingest([]events.Event{open(5, "client2", "node9")})
	found := false
	for _, b := range a.openBreakers() {
		if b == "client2 -> node9" {
			found = true
		}
	}
	if !found {
		t.Errorf("portless peer missing from %v", a.openBreakers())
	}

	// Rollup surfaces open breakers as a yellow reason.
	in := rollupInput{
		now: time.Now(),
		membership: pmanager.Membership{Members: []pmanager.Member{
			{ID: 1, Addr: "a", Alive: true}}},
		agg: &a,
	}
	s := rollup(in)
	if s.Health != HealthYellow || s.BreakersOpen != 3 {
		t.Errorf("open breakers -> %s open=%d, want yellow/3", s.Health, s.BreakersOpen)
	}
	reasonFound := false
	for _, r := range s.Reasons {
		if strings.Contains(r, "circuit breakers open: 3") {
			reasonFound = true
		}
	}
	if !reasonFound {
		t.Errorf("no breaker reason in %v", s.Reasons)
	}

	// All healed: green again, gauge zeroed.
	a.ingest([]events.Event{
		closed(6, "client0", "node2:data"),
		closed(6, "client1", "node2:data"),
		closed(6, "client2", "node9"),
	})
	if s := rollup(in); s.Health != HealthGreen || s.BreakersOpen != 0 {
		t.Errorf("after heal -> %s open=%d, want green/0", s.Health, s.BreakersOpen)
	}
}

func TestRollupHealthRules(t *testing.T) {
	now := time.Now()
	alive := pmanager.Membership{Epoch: 3, Members: []pmanager.Member{
		{ID: 1, Addr: "a", Alive: true},
		{ID: 2, Addr: "b", Alive: true},
	}}

	base := func() rollupInput {
		return rollupInput{now: now, membership: alive, agg: &eventAgg{}}
	}

	if s := rollup(base()); s.Health != HealthGreen {
		t.Errorf("healthy cluster = %s (%v), want green", s.Health, s.Reasons)
	}

	in := base()
	in.membership.Members[1].Alive = false
	if s := rollup(in); s.Health != HealthYellow || s.DeadProviders != 1 {
		t.Errorf("dead provider -> %s dead=%d, want yellow/1", s.Health, s.DeadProviders)
	}
	in.membership.Members[1].Alive = true

	in = base()
	in.agg = &eventAgg{debt: 4, lastFinishT: 10}
	s := rollup(in)
	if s.Health != HealthYellow || s.RedundancyDebt != 4 {
		t.Errorf("debt -> %s debt=%d, want yellow/4", s.Health, s.RedundancyDebt)
	}

	in = base()
	in.agg = &eventAgg{lastFinishT: 10, lastDeathT: 20}
	if s := rollup(in); s.Health != HealthYellow || !s.RepairPending {
		t.Errorf("death newer than sweep -> %s pending=%v, want yellow/true", s.Health, s.RepairPending)
	}

	in = base()
	in.pmErr = context.DeadlineExceeded
	if s := rollup(in); s.Health != HealthRed {
		t.Errorf("pmanager unreachable -> %s, want red", s.Health)
	}

	in = base()
	in.shards = []ShardRoll{{Shard: 0, Leader: 0, Term: 1, Reachable: 3, Replicas: 3},
		{Shard: 1, Leader: -1, Reachable: 1, Replicas: 3}}
	if s := rollup(in); s.Health != HealthRed {
		t.Errorf("leaderless shard -> %s, want red", s.Health)
	}

	in = base()
	in.agg = &eventAgg{lastUnrepT: 50, lastCleanT: 10}
	if s := rollup(in); s.Health != HealthRed {
		t.Errorf("unrepairable pages -> %s, want red", s.Health)
	}
	// ... until a clean sweep supersedes the unrepairable finding.
	in.agg = &eventAgg{lastUnrepT: 50, lastCleanT: 60}
	if s := rollup(in); s.Health != HealthGreen {
		t.Errorf("clean sweep after unrepairable -> %s, want green", s.Health)
	}
}

func TestRollupLatencyMerge(t *testing.T) {
	var fast, slow stats.Histogram
	for i := 0; i < 99; i++ {
		fast.Observe(100 * time.Microsecond)
	}
	slow.Observe(50 * time.Millisecond)
	in := rollupInput{
		now:        time.Now(),
		membership: pmanager.Membership{Members: []pmanager.Member{{ID: 1, Alive: true}, {ID: 2, Alive: true}}},
		latency: map[uint32][2]stats.HistogramSnapshot{
			1: {fast.Snapshot(), {}},
			2: {slow.Snapshot(), {}},
		},
		agg: &eventAgg{},
	}
	s := rollup(in)
	if s.ReadP50 > int64(time.Millisecond) {
		t.Errorf("merged p50 = %v, want sub-ms", time.Duration(s.ReadP50))
	}
	// The one 50ms outlier across 100 merged observations must surface
	// at p100 — and p99 must round up to the slow bucket, proving the
	// merge keeps buckets rather than averaging per-node percentiles.
	if s.ReadMax < int64(40*time.Millisecond) {
		t.Errorf("merged max = %v, want ~50ms", time.Duration(s.ReadMax))
	}
	if s.WriteP99 != 0 {
		t.Errorf("no write observations but WriteP99 = %d", s.WriteP99)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	m := New(Config{PMAddr: "pm:rpc"})
	now := time.Now().UnixNano()
	m.mu.Lock()
	m.snap = ClusterSnapshot{
		Time: now, Health: HealthYellow,
		Reasons:        []string{"redundancy debt: 3 degraded page slots after last sweep"},
		Epoch:          7,
		RedundancyDebt: 3,
		Providers: []ProviderRoll{
			{ID: 1, Addr: "a", Alive: true, BytesUsed: 100, GetsPerSec: 2.5},
			{ID: 2, Addr: "b", Alive: false},
		},
		DeadProviders: 1,
		Shards:        []ShardRoll{{Shard: 0, Leader: 1, Term: 4, Reachable: 3, Replicas: 3}},
		ReadP50:       int64(time.Millisecond), ReadP99: int64(5 * time.Millisecond), ReadMax: int64(6 * time.Millisecond),
	}
	m.tail = []events.Event{
		{Seq: 1, Time: now - 100, Sev: events.SevInfo, Type: events.RepairStart, Node: "repair", Msg: "sweep over 5 blobs"},
		{Seq: 2, Time: now - 50, Sev: events.SevWarn, Type: events.HeartbeatDeath, Node: "pm", Msg: "provider 2 silent", Val: 2},
	}
	m.mu.Unlock()

	mux := http.NewServeMux()
	m.RegisterHTTP(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	code, body := get("/cluster/metrics")
	if code != 200 {
		t.Fatalf("/cluster/metrics = %d", code)
	}
	for _, want := range []string{
		"cluster_health 1",
		"cluster_membership_epoch 7",
		"cluster_redundancy_debt 3",
		`cluster_providers{state="dead"} 1`,
		`cluster_provider_ops_per_sec{id="1",op="get"} 2.5`,
		`cluster_shard_term{shard="0"} 4`,
		`cluster_read_seconds{quantile="0.99"} 0.005`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/cluster/healthz")
	if code != 200 || !strings.Contains(body, `"status":"yellow"`) {
		t.Errorf("/cluster/healthz = %d %q, want 200 yellow", code, body)
	}

	// Red must fail the probe.
	m.mu.Lock()
	m.snap.Health = HealthRed
	m.mu.Unlock()
	if code, _ = get("/cluster/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("red /cluster/healthz = %d, want 503", code)
	}
	m.mu.Lock()
	m.snap.Health = HealthYellow
	m.mu.Unlock()

	code, body = get("/cluster/events")
	if code != 200 || !strings.Contains(body, "heartbeat-death") || !strings.Contains(body, "repair-start") {
		t.Errorf("/cluster/events = %d:\n%s", code, body)
	}
	_, body = get("/cluster/events?min=warn")
	if strings.Contains(body, "repair-start") || !strings.Contains(body, "heartbeat-death") {
		t.Errorf("severity filter failed:\n%s", body)
	}
	_, body = get("/cluster/events?format=json")
	if !strings.Contains(body, `"heartbeat-death"`) && !strings.Contains(body, `"Type":6`) && !strings.Contains(body, `"type":6`) {
		// JSON encodes Type numerically; just check it parses as a list.
		if !strings.HasPrefix(strings.TrimSpace(body), "[") {
			t.Errorf("json events malformed:\n%s", body)
		}
	}
	if code, _ := get("/cluster/events?min=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus severity = %d, want 400", code)
	}
}
