package pmanager

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"blob/internal/netsim"
	"blob/internal/rpc"
)

func newManagerWith(t *testing.T, cfg Config, n int) *Manager {
	t.Helper()
	m := New(cfg)
	for i := 0; i < n; i++ {
		m.Register(fmt.Sprintf("prov%d:rpc", i), 0)
	}
	return m
}

func TestRegisterIdempotent(t *testing.T) {
	m := New(Config{})
	id1 := m.Register("a:1", 100)
	id2 := m.Register("a:1", 200)
	if id1 != id2 {
		t.Errorf("re-register changed ID: %d vs %d", id1, id2)
	}
	if id3 := m.Register("b:1", 100); id3 == id1 {
		t.Error("distinct providers share an ID")
	}
}

func TestAllocateNoProviders(t *testing.T) {
	m := New(Config{})
	if _, _, err := m.Allocate(4, 1); !errors.Is(err, ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}

func TestAllocateShape(t *testing.T) {
	m := newManagerWith(t, Config{}, 5)
	ids, addrs, err := m.Allocate(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 16 {
		t.Fatalf("len(ids) = %d, want 16", len(ids))
	}
	for i := 0; i < 8; i++ {
		a, b := ids[i*2], ids[i*2+1]
		if a == b {
			t.Errorf("page %d: replicas on the same provider %d", i, a)
		}
	}
	for _, id := range ids {
		if _, ok := addrs[id]; !ok {
			t.Errorf("id %d missing from address map", id)
		}
	}
}

func TestRoundRobinBalances(t *testing.T) {
	m := newManagerWith(t, Config{Strategy: RoundRobin}, 4)
	counts := map[uint32]int{}
	for i := 0; i < 25; i++ {
		ids, _, err := m.Allocate(4, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			counts[id]++
		}
	}
	for id, c := range counts {
		if c != 25 {
			t.Errorf("provider %d got %d pages, want exactly 25 under round-robin", id, c)
		}
	}
}

func TestLeastLoadedPrefersEmpty(t *testing.T) {
	m := newManagerWith(t, Config{Strategy: LeastLoaded}, 3)
	// Report heavy load on providers 1 and 2.
	m.Heartbeat(1, 1<<30, 0, 0, nil)
	m.Heartbeat(2, 1<<30, 0, 0, nil)
	m.Heartbeat(3, 0, 0, 0, nil)
	ids, _, err := m.Allocate(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id != 3 {
			t.Errorf("least-loaded placed a page on loaded provider %d", id)
		}
	}
}

func TestPowerOfTwoSpreads(t *testing.T) {
	m := newManagerWith(t, Config{Strategy: PowerOfTwo, Seed: 42}, 6)
	counts := map[uint32]int{}
	for i := 0; i < 120; i++ {
		ids, _, err := m.Allocate(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[ids[0]]++
	}
	if len(counts) < 4 {
		t.Errorf("power-of-two used only %d of 6 providers", len(counts))
	}
	for id, c := range counts {
		if c > 60 {
			t.Errorf("provider %d hot-spotted with %d placements", id, c)
		}
	}
}

func TestHeartbeatTimeoutExcludesDead(t *testing.T) {
	m := New(Config{HeartbeatTimeout: 30 * time.Millisecond})
	idA := m.Register("a:1", 0)
	_ = m.Register("b:1", 0)
	time.Sleep(50 * time.Millisecond) // both go stale
	if _, _, err := m.Allocate(1, 1); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("stale providers still allocatable: %v", err)
	}
	m.Heartbeat(idA, 10, 0, 0, nil) // A comes back
	ids, _, err := m.Allocate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id != idA {
			t.Errorf("allocated dead provider %d", id)
		}
	}
}

func TestHeartbeatUnknownID(t *testing.T) {
	m := New(Config{})
	if known, _ := m.Heartbeat(99, 0, 0, 0, nil); known {
		t.Error("heartbeat for unknown ID should report false")
	}
}

func TestReplicasClampedToLiveCount(t *testing.T) {
	m := newManagerWith(t, Config{}, 2)
	ids, _, err := m.Allocate(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("got %d replicas, want clamp to 2", len(ids))
	}
}

type hostDialer struct{ h *netsim.Host }

func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

func TestRPCEndToEnd(t *testing.T) {
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	m := New(Config{})
	srv := rpc.NewServer()
	m.RegisterHandlers(srv)
	l, err := fab.Host("pm").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	defer srv.Close()

	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	ctx := context.Background()

	id, err := RegisterProvider(ctx, pool, "pm:rpc", "prov0:rpc", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := SendHeartbeat(ctx, pool, "pm:rpc", id, 123, 4); err != nil {
		t.Fatal(err)
	}

	resp, err := pool.Call(ctx, "pm:rpc", MAllocate, EncodeAllocate(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := DecodeAllocation(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.IDs) != 3 {
		t.Fatalf("alloc IDs = %v", alloc.IDs)
	}
	if alloc.Addrs[id] != "prov0:rpc" {
		t.Errorf("addr map = %v", alloc.Addrs)
	}

	dir, err := FetchProviders(ctx, pool, "pm:rpc")
	if err != nil {
		t.Fatal(err)
	}
	if dir.Epoch == 0 || len(dir.Providers) != 1 || dir.Providers[0].Addr != "prov0:rpc" {
		t.Errorf("list = %+v", dir)
	}
	if dir.Redundancy.IsRS() {
		t.Errorf("default deployment advertises %v, want replicate", dir.Redundancy)
	}

	// Digest piggyback: the first extended heartbeat carries the bytes
	// (manager held nothing), after which the held hash matches and a
	// hash-only beat suffices. MDigests then serves the stored copy.
	dig := []byte{1, 2, 3, 4}
	held, err := SendHeartbeatDigest(ctx, pool, "pm:rpc", id, 123, 4, 0xfeed, dig)
	if err != nil {
		t.Fatal(err)
	}
	if held != 0xfeed {
		t.Errorf("held hash after digest beat = %#x, want 0xfeed", held)
	}
	held, err = SendHeartbeatDigest(ctx, pool, "pm:rpc", id, 123, 4, 0xfeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if held != 0xfeed {
		t.Errorf("hash-only beat lost the held digest: held = %#x", held)
	}
	digs, err := FetchDigests(ctx, pool, "pm:rpc")
	if err != nil {
		t.Fatal(err)
	}
	if len(digs) != 1 || digs[0].ID != id || digs[0].DigHash != 0xfeed ||
		string(digs[0].Digest) != string(dig) {
		t.Errorf("digests = %+v", digs)
	}

	// Membership snapshot carries load and the digest hash.
	ms, err := FetchMembers(ctx, pool, "pm:rpc")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Members) != 1 || !ms.Members[0].Alive || ms.Members[0].DigHash != 0xfeed ||
		ms.Members[0].BytesUsed != 123 {
		t.Errorf("members = %+v", ms)
	}
}

func TestAllocateInvalidCount(t *testing.T) {
	m := newManagerWith(t, Config{}, 1)
	if _, _, err := m.Allocate(0, 1); err == nil {
		t.Error("Allocate(0) should fail")
	}
}

func TestStrategyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" ||
		PowerOfTwo.String() != "power-of-two" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func BenchmarkAllocate256Pages(b *testing.B) {
	m := New(Config{})
	for i := 0; i < 40; i++ {
		m.Register(fmt.Sprintf("p%d:rpc", i), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Allocate(256, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeathWatch pins the heartbeat-death notification protocol: one
// callback per detected death, re-armed by a later heartbeat.
func TestDeathWatch(t *testing.T) {
	m := New(Config{HeartbeatTimeout: 40 * time.Millisecond})
	id := m.Register("prov0:rpc", 0)

	deaths := make(chan uint32, 8)
	stop := make(chan struct{})
	defer close(stop)
	go m.DeathWatch(stop, func(id uint32) { deaths <- id })

	// Silence past the timeout: exactly one notification.
	select {
	case got := <-deaths:
		if got != id {
			t.Fatalf("death of %d, want %d", got, id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no death notification")
	}
	select {
	case got := <-deaths:
		t.Fatalf("duplicate death notification for %d", got)
	case <-time.After(150 * time.Millisecond):
	}

	// A heartbeat revives the provider and re-arms the watch.
	if known, _ := m.Heartbeat(id, 0, 0, 0, nil); !known {
		t.Fatal("heartbeat rejected")
	}
	select {
	case got := <-deaths:
		if got != id {
			t.Fatalf("death of %d, want %d", got, id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no death notification after revival lapse")
	}
}

// TestDeathWatchDisabled pins that the watch is inert without a
// heartbeat timeout (no liveness signal exists to judge death by).
func TestDeathWatchDisabled(t *testing.T) {
	m := New(Config{})
	m.Register("prov0:rpc", 0)
	done := make(chan struct{})
	go func() {
		m.DeathWatch(make(chan struct{}), func(uint32) { t.Error("death reported without timeout") })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("DeathWatch did not return immediately")
	}
}
