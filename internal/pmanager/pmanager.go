// Package pmanager implements the provider manager: the registry of data
// providers and the page-placement policy. On each WRITE the client asks
// the provider manager for one provider per page (times the replication
// factor); the manager picks providers "based on some strategy that
// favors global load balancing" (paper §III.A).
//
// Three strategies are provided: round-robin (the default; matches the
// paper's global balancing), least-loaded (by reported bytes used), and
// power-of-two-choices (random pair, pick the lighter). Providers report
// load through periodic heartbeats; providers that miss heartbeats are
// excluded from placement until they reappear.
package pmanager

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/rpc"
	"blob/internal/wire"
)

// RPC method identifiers for the provider manager service (0x04xx block).
const (
	MRegister  = 0x0401
	MHeartbeat = 0x0402
	MAllocate  = 0x0403
	MList      = 0x0404
	MMembers   = 0x0405
	MDigests   = 0x0406
)

func init() {
	rpc.RegisterMethodName(MRegister, "pmanager.MRegister")
	rpc.RegisterMethodName(MHeartbeat, "pmanager.MHeartbeat")
	rpc.RegisterMethodName(MAllocate, "pmanager.MAllocate")
	rpc.RegisterMethodName(MList, "pmanager.MList")
	rpc.RegisterMethodName(MMembers, "pmanager.MMembers")
	rpc.RegisterMethodName(MDigests, "pmanager.MDigests")
}

// Strategy selects providers for new pages.
type Strategy int

// Placement strategies.
const (
	// RoundRobin rotates uniformly over live providers.
	RoundRobin Strategy = iota
	// LeastLoaded picks the providers with the fewest stored bytes.
	LeastLoaded
	// PowerOfTwo samples two random providers and picks the lighter.
	PowerOfTwo
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case PowerOfTwo:
		return "power-of-two"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrNoProviders is returned when placement cannot be satisfied.
var ErrNoProviders = errors.New("pmanager: no live data providers")

// ProviderInfo describes a registered provider to clients.
type ProviderInfo struct {
	ID   uint32
	Addr string
}

// provider is the manager's record of one data provider.
type provider struct {
	info      ProviderInfo
	capacity  int64
	bytesUsed int64
	activeOps int64
	lastSeen  time.Time
	// deadNotified marks that a DeathWatch pass already reported this
	// provider silent; a heartbeat or re-registration re-arms it.
	deadNotified bool
	// digHash/digest hold the provider's latest bloom holdings digest,
	// piggybacked on heartbeats (docs/replication.md): clients seed
	// their routing caches from here instead of probing providers on
	// first miss. digest is the wire encoding (provider.Digest.Encode).
	digHash uint64
	digest  []byte
}

// Manager is the provider manager service.
type Manager struct {
	strategy   Strategy
	hbTimeout  time.Duration // 0 disables liveness filtering
	replicas   int
	red        erasure.Redundancy
	rrCounter  uint64
	rng        *rand.Rand
	journal    *events.Journal
	mu         sync.Mutex
	byID       map[uint32]*provider
	nextID     uint32
	epoch      uint64
	allocCalls uint64
}

// Config parameterizes a Manager.
type Config struct {
	// Strategy is the placement policy (default RoundRobin).
	Strategy Strategy
	// HeartbeatTimeout excludes providers silent for longer than this
	// from placement. Zero disables the filter (useful in tests and
	// single-process clusters where processes cannot silently die).
	HeartbeatTimeout time.Duration
	// Replicas is the number of copies of each page (default 1).
	Replicas int
	// Redundancy is the deployment's advertised redundancy mode
	// (docs/erasure.md): the zero value advertises full replication;
	// rs(k,m) tells connecting clients to erasure-code new blobs unless
	// they override it. The manager itself only advertises the mode —
	// placement always yields distinct providers per group, which is
	// exactly what a stripe needs.
	Redundancy erasure.Redundancy
	// Seed seeds the randomized strategies (0 uses a fixed seed, keeping
	// placement reproducible in experiments).
	Seed int64
	// Journal, if set, records membership transitions (heartbeat
	// deaths, registrations, digest refreshes) for the monitor plane.
	Journal *events.Journal
}

// New creates a Manager.
func New(cfg Config) *Manager {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Manager{
		strategy:  cfg.Strategy,
		hbTimeout: cfg.HeartbeatTimeout,
		replicas:  cfg.Replicas,
		red:       cfg.Redundancy,
		rng:       rand.New(rand.NewSource(seed)),
		journal:   cfg.Journal,
		byID:      make(map[uint32]*provider),
		nextID:    1,
	}
}

// Replicas returns the configured replication factor for data pages.
func (m *Manager) Replicas() int { return m.replicas }

// Redundancy returns the deployment's advertised redundancy mode.
func (m *Manager) Redundancy() erasure.Redundancy { return m.red }

// Register adds (or re-registers) a provider, returning its ID.
func (m *Manager) Register(addr string, capacity int64) uint32 {
	m.mu.Lock()
	for _, p := range m.byID {
		if p.info.Addr == addr {
			p.capacity = capacity
			p.lastSeen = time.Now()
			wasDead := p.deadNotified
			p.deadNotified = false
			id, epoch := p.info.ID, m.epoch
			m.mu.Unlock()
			if wasDead {
				m.journal.Emit(events.SevInfo, events.MembershipRefresh, int64(epoch),
					"provider %d (%s) re-registered after death", id, addr)
			}
			return id
		}
	}
	id := m.nextID
	m.nextID++
	m.byID[id] = &provider{
		info:     ProviderInfo{ID: id, Addr: addr},
		capacity: capacity,
		lastSeen: time.Now(),
	}
	m.epoch++
	epoch := m.epoch
	m.mu.Unlock()
	m.journal.Emit(events.SevInfo, events.MembershipRefresh, int64(epoch),
		"provider %d (%s) registered; epoch %d", id, addr, epoch)
	return id
}

// Heartbeat records a provider's load report plus an optional bloom
// holdings digest (digHash identifies it; digest is its wire encoding,
// sent only when the provider believes ours is stale). It returns
// whether the id is known and the digest hash now held, so the sender
// can decide whether the next beat needs the bytes. Unknown IDs are
// ignored (the provider should re-register after a manager restart).
func (m *Manager) Heartbeat(id uint32, bytesUsed, activeOps int64, digHash uint64, digest []byte) (known bool, heldHash uint64) {
	m.mu.Lock()
	p, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return false, 0
	}
	p.bytesUsed = bytesUsed
	p.activeOps = activeOps
	p.lastSeen = time.Now()
	p.deadNotified = false
	refreshed := false
	if len(digest) > 0 && digHash != p.digHash {
		p.digHash = digHash
		p.digest = append([]byte(nil), digest...)
		refreshed = true
	}
	held := p.digHash
	m.mu.Unlock()
	if refreshed {
		m.journal.Emit(events.SevInfo, events.DigestRefresh, int64(id),
			"provider %d pushed holdings digest (%d bytes)", id, len(digest))
	}
	return true, held
}

// DeathWatch scans for providers that stopped heartbeating and calls
// onDeath once per detected death (a provider that resumes heartbeats
// re-arms). It blocks until stop closes, so callers run it in a
// goroutine; a manager without a heartbeat timeout has no liveness
// signal and returns immediately. The repair pipeline hangs off this:
// the cluster (and blobnode's pmanager role) wire onDeath to trigger an
// immediate repair pass instead of waiting out the RepairInterval
// timer, cutting the window a second failure could widen into data
// loss.
func (m *Manager) DeathWatch(stop <-chan struct{}, onDeath func(id uint32)) {
	if m.hbTimeout <= 0 || onDeath == nil {
		return
	}
	scan := m.hbTimeout / 4
	if scan <= 0 {
		scan = m.hbTimeout
	}
	t := time.NewTicker(scan)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		var dead []uint32
		m.mu.Lock()
		cutoff := time.Now().Add(-m.hbTimeout)
		for _, p := range m.byID {
			if !p.deadNotified && p.lastSeen.Before(cutoff) {
				p.deadNotified = true
				dead = append(dead, p.info.ID)
			}
		}
		m.mu.Unlock()
		for _, id := range dead {
			m.journal.Emit(events.SevWarn, events.HeartbeatDeath, int64(id),
				"provider %d silent past %s; excluded from placement", id, m.hbTimeout)
			m.journal.Emit(events.SevInfo, events.DeathWatchTrigger, int64(id),
				"triggering repair for dead provider %d", id)
			onDeath(id)
		}
	}
}

// live returns providers considered alive, under the lock.
func (m *Manager) liveLocked() []*provider {
	out := make([]*provider, 0, len(m.byID))
	cutoff := time.Time{}
	if m.hbTimeout > 0 {
		cutoff = time.Now().Add(-m.hbTimeout)
	}
	for _, p := range m.byID {
		if m.hbTimeout > 0 && p.lastSeen.Before(cutoff) {
			continue
		}
		out = append(out, p)
	}
	// Deterministic order for reproducible round-robin.
	sort.Slice(out, func(a, b int) bool { return out[a].info.ID < out[b].info.ID })
	return out
}

// Allocate picks placement for n pages with r replicas each. The result
// is a flat slice of n*r provider IDs: page i's replicas occupy positions
// [i*r, (i+1)*r). The second return value maps every used ID to its
// address.
func (m *Manager) Allocate(n, r int) ([]uint32, map[uint32]string, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("pmanager: invalid page count %d", n)
	}
	if r < 1 {
		r = m.replicas
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allocCalls++
	live := m.liveLocked()
	if len(live) == 0 {
		return nil, nil, ErrNoProviders
	}
	if r > len(live) {
		r = len(live)
	}
	ids := make([]uint32, 0, n*r)
	addrs := make(map[uint32]string)
	pick := func(exclude map[uint32]bool) *provider {
		switch m.strategy {
		case LeastLoaded:
			var best *provider
			for _, p := range live {
				if exclude[p.info.ID] {
					continue
				}
				if best == nil || p.bytesUsed < best.bytesUsed {
					best = p
				}
			}
			return best
		case PowerOfTwo:
			var a, b *provider
			for tries := 0; tries < 8 && (a == nil || b == nil); tries++ {
				c := live[m.rng.Intn(len(live))]
				if exclude[c.info.ID] {
					continue
				}
				if a == nil {
					a = c
				} else if c != a {
					b = c
				}
			}
			if a == nil {
				for _, p := range live {
					if !exclude[p.info.ID] {
						a = p
						break
					}
				}
			}
			if b == nil || (a != nil && a.bytesUsed <= b.bytesUsed) {
				return a
			}
			return b
		default: // RoundRobin
			for range live {
				p := live[m.rrCounter%uint64(len(live))]
				m.rrCounter++
				if !exclude[p.info.ID] {
					return p
				}
			}
			return nil
		}
	}
	for i := 0; i < n; i++ {
		used := make(map[uint32]bool, r)
		for j := 0; j < r; j++ {
			p := pick(used)
			if p == nil {
				return nil, nil, ErrNoProviders
			}
			used[p.info.ID] = true
			ids = append(ids, p.info.ID)
			addrs[p.info.ID] = p.info.Addr
			// Account the expected load immediately so a burst of
			// Allocate calls spreads even before heartbeats catch up.
			p.bytesUsed += 1
		}
	}
	return ids, addrs, nil
}

// List returns all registered providers (dead or alive) and the epoch.
func (m *Manager) List() (uint64, []ProviderInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ProviderInfo, 0, len(m.byID))
	for _, p := range m.byID {
		out = append(out, p.info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return m.epoch, out
}

// Member is the monitor-facing view of one registered provider.
type Member struct {
	ID        uint32
	Addr      string
	Alive     bool
	LastSeen  time.Duration // age of the last heartbeat
	Capacity  int64
	BytesUsed int64
	ActiveOps int64
	DigHash   uint64
}

// Members returns every registered provider with liveness, the epoch
// and the advertised redundancy — the monitor's membership snapshot.
func (m *Manager) Members() (uint64, []Member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]Member, 0, len(m.byID))
	for _, p := range m.byID {
		age := now.Sub(p.lastSeen)
		out = append(out, Member{
			ID:        p.info.ID,
			Addr:      p.info.Addr,
			Alive:     m.hbTimeout <= 0 || age <= m.hbTimeout,
			LastSeen:  age,
			Capacity:  p.capacity,
			BytesUsed: p.bytesUsed,
			ActiveOps: p.activeOps,
			DigHash:   p.digHash,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return m.epoch, out
}

// ProviderDigest is one provider's piggybacked holdings digest.
type ProviderDigest struct {
	ID      uint32
	DigHash uint64
	Digest  []byte // wire encoding (provider.Digest.Encode); empty = none held
}

// Digests returns the holdings digests collected from heartbeats.
func (m *Manager) Digests() []ProviderDigest {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ProviderDigest, 0, len(m.byID))
	for _, p := range m.byID {
		if len(p.digest) == 0 {
			continue
		}
		out = append(out, ProviderDigest{ID: p.info.ID, DigHash: p.digHash, Digest: p.digest})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// RegisterHandlers wires the manager's RPC methods onto srv.
func (m *Manager) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MRegister, m.handleRegister)
	srv.Handle(MHeartbeat, m.handleHeartbeat)
	srv.Handle(MAllocate, m.handleAllocate)
	srv.Handle(MList, m.handleList)
	srv.Handle(MMembers, m.handleMembers)
	srv.Handle(MDigests, m.handleDigests)
}

func (m *Manager) handleRegister(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	addr := r.String()
	capacity := r.Varint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pmanager register: %w", err)
	}
	id := m.Register(addr, capacity)
	w := wire.NewWriter(8)
	w.Uint32(id)
	return w.Bytes(), nil
}

func (m *Manager) handleHeartbeat(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	id := r.Uint32()
	bytesUsed := r.Varint()
	activeOps := r.Varint()
	// Digest piggyback fields; absent on the legacy 3-field form.
	var digHash uint64
	var digest []byte
	if r.Remaining() > 0 {
		digHash = r.Uint64()
		digest = r.BytesField()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pmanager heartbeat: %w", err)
	}
	known, held := m.Heartbeat(id, bytesUsed, activeOps, digHash, digest)
	w := wire.NewWriter(12)
	w.Bool(known)
	w.Uint64(held)
	return w.Bytes(), nil
}

func (m *Manager) handleMembers(_ context.Context, _ []byte) ([]byte, error) {
	epoch, members := m.Members()
	w := wire.NewWriter(32 + 48*len(members))
	w.Uint64(epoch)
	w.Uint8(uint8(m.red.K))
	w.Uint8(uint8(m.red.M))
	w.Uvarint(uint64(len(members)))
	for _, mb := range members {
		w.Uint32(mb.ID)
		w.String(mb.Addr)
		w.Bool(mb.Alive)
		w.Varint(int64(mb.LastSeen))
		w.Varint(mb.Capacity)
		w.Varint(mb.BytesUsed)
		w.Varint(mb.ActiveOps)
		w.Uint64(mb.DigHash)
	}
	return w.Bytes(), nil
}

func (m *Manager) handleDigests(_ context.Context, _ []byte) ([]byte, error) {
	ds := m.Digests()
	sz := 16
	for _, d := range ds {
		sz += 16 + len(d.Digest)
	}
	w := wire.NewWriter(sz)
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.Uint32(d.ID)
		w.Uint64(d.DigHash)
		w.BytesField(d.Digest)
	}
	return w.Bytes(), nil
}

func (m *Manager) handleAllocate(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	rep := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pmanager allocate: %w", err)
	}
	ids, addrs, err := m.Allocate(n, rep)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8 + 4*len(ids) + 24*len(addrs))
	w.Uint32Slice(ids)
	w.Uvarint(uint64(len(addrs)))
	for id, addr := range addrs {
		w.Uint32(id)
		w.String(addr)
	}
	return w.Bytes(), nil
}

func (m *Manager) handleList(_ context.Context, _ []byte) ([]byte, error) {
	epoch, infos := m.List()
	w := wire.NewWriter(24 + 24*len(infos))
	w.Uint64(epoch)
	w.Uint8(uint8(m.red.K))
	w.Uint8(uint8(m.red.M))
	w.Uvarint(uint64(len(infos)))
	for _, p := range infos {
		w.Uint32(p.ID)
		w.String(p.Addr)
	}
	return w.Bytes(), nil
}

// Client-side helpers.

// Allocation is a decoded MAllocate response.
type Allocation struct {
	// IDs holds n*r provider IDs; page i's replicas are IDs[i*r:(i+1)*r].
	IDs []uint32
	// Addrs maps each used provider ID to its RPC address.
	Addrs map[uint32]string
}

// EncodeAllocate builds an MAllocate request.
func EncodeAllocate(pages, replicas int) []byte {
	w := wire.NewWriter(8)
	w.Uvarint(uint64(pages))
	w.Uvarint(uint64(replicas))
	return w.Bytes()
}

// DecodeAllocation parses an MAllocate response.
func DecodeAllocation(body []byte) (Allocation, error) {
	r := wire.NewReader(body)
	var a Allocation
	a.IDs = r.Uint32Slice()
	n := int(r.Uvarint())
	a.Addrs = make(map[uint32]string, n)
	for i := 0; i < n; i++ {
		id := r.Uint32()
		a.Addrs[id] = r.String()
	}
	return a, r.Err()
}

// RegisterProvider announces a data provider to the manager at pmAddr.
func RegisterProvider(ctx context.Context, pool *rpc.Pool, pmAddr, addr string, capacity int64) (uint32, error) {
	w := wire.NewWriter(len(addr) + 12)
	w.String(addr)
	w.Varint(capacity)
	resp, err := pool.Call(ctx, pmAddr, MRegister, w.Bytes())
	if err != nil {
		return 0, fmt.Errorf("pmanager: register: %w", err)
	}
	r := wire.NewReader(resp)
	id := r.Uint32()
	return id, r.Err()
}

// SendHeartbeat reports load for a provider.
func SendHeartbeat(ctx context.Context, pool *rpc.Pool, pmAddr string, id uint32, bytesUsed, activeOps int64) error {
	_, err := SendHeartbeatDigest(ctx, pool, pmAddr, id, bytesUsed, activeOps, 0, nil)
	return err
}

// SendHeartbeatDigest reports load plus the provider's holdings digest:
// digHash identifies the digest the provider currently has, digest (its
// wire encoding) rides along only when the sender believes the manager
// is stale. The returned heldHash is what the manager holds after this
// beat — when it differs from digHash the next beat should carry the
// bytes.
func SendHeartbeatDigest(ctx context.Context, pool *rpc.Pool, pmAddr string, id uint32, bytesUsed, activeOps int64, digHash uint64, digest []byte) (heldHash uint64, err error) {
	w := wire.NewWriter(36 + len(digest))
	w.Uint32(id)
	w.Varint(bytesUsed)
	w.Varint(activeOps)
	w.Uint64(digHash)
	w.BytesField(digest)
	resp, err := pool.Call(ctx, pmAddr, MHeartbeat, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	r.Bool() // known
	if r.Remaining() > 0 {
		heldHash = r.Uint64()
	}
	return heldHash, r.Err()
}

// Directory is a decoded MList response: the registration epoch, the
// deployment's advertised redundancy mode, and every registered
// provider.
type Directory struct {
	Epoch      uint64
	Redundancy erasure.Redundancy
	Providers  []ProviderInfo
}

// Membership is a decoded MMembers response.
type Membership struct {
	Epoch      uint64
	Redundancy erasure.Redundancy
	Members    []Member
}

// FetchMembers retrieves the monitor-facing membership snapshot.
func FetchMembers(ctx context.Context, pool *rpc.Pool, pmAddr string) (Membership, error) {
	resp, err := pool.Call(ctx, pmAddr, MMembers, nil)
	if err != nil {
		return Membership{}, fmt.Errorf("pmanager: members: %w", err)
	}
	r := wire.NewReader(resp)
	ms := Membership{Epoch: r.Uint64()}
	ms.Redundancy = erasure.Redundancy{K: int(r.Uint8()), M: int(r.Uint8())}
	n := int(r.Uvarint())
	if n > r.Remaining()/12+1 {
		return Membership{}, fmt.Errorf("pmanager: member count %d exceeds body", n)
	}
	ms.Members = make([]Member, 0, n)
	for i := 0; i < n; i++ {
		ms.Members = append(ms.Members, Member{
			ID:        r.Uint32(),
			Addr:      r.String(),
			Alive:     r.Bool(),
			LastSeen:  time.Duration(r.Varint()),
			Capacity:  r.Varint(),
			BytesUsed: r.Varint(),
			ActiveOps: r.Varint(),
			DigHash:   r.Uint64(),
		})
	}
	return ms, r.Err()
}

// FetchDigests retrieves the holdings digests the manager collected
// from provider heartbeats. Digest bytes are copied out of the pooled
// response, so callers may retain them.
func FetchDigests(ctx context.Context, pool *rpc.Pool, pmAddr string) ([]ProviderDigest, error) {
	resp, err := pool.Call(ctx, pmAddr, MDigests, nil)
	if err != nil {
		return nil, fmt.Errorf("pmanager: digests: %w", err)
	}
	r := wire.NewReader(resp)
	n := int(r.Uvarint())
	if n > r.Remaining()/13+1 {
		return nil, fmt.Errorf("pmanager: digest count %d exceeds body", n)
	}
	out := make([]ProviderDigest, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ProviderDigest{
			ID:      r.Uint32(),
			DigHash: r.Uint64(),
			Digest:  r.BytesCopy(),
		})
	}
	return out, r.Err()
}

// FetchProviders retrieves the provider directory.
func FetchProviders(ctx context.Context, pool *rpc.Pool, pmAddr string) (Directory, error) {
	resp, err := pool.Call(ctx, pmAddr, MList, nil)
	if err != nil {
		return Directory{}, fmt.Errorf("pmanager: list: %w", err)
	}
	r := wire.NewReader(resp)
	d := Directory{Epoch: r.Uint64()}
	d.Redundancy = erasure.Redundancy{K: int(r.Uint8()), M: int(r.Uint8())}
	n := int(r.Uvarint())
	d.Providers = make([]ProviderInfo, 0, n)
	for i := 0; i < n; i++ {
		d.Providers = append(d.Providers, ProviderInfo{ID: r.Uint32(), Addr: r.String()})
	}
	return d, r.Err()
}
