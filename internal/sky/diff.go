package sky

import (
	"context"
	"fmt"
	"math"
	"sync"

	"blob/internal/meta"
)

// Time-travel analytics: difference any two captured epochs, however far
// apart, by reading both at their pinned blob versions. Nothing here
// touches the version manager — both versions were published when their
// epochs were captured, so the whole query runs lock-free against
// immutable snapshots (core.Blob.ReadPinned), no matter how many newer
// epochs writers publish meanwhile. This is the paper's versioning put
// to work as a query primitive: "what changed in the sky between night
// i and night j?"

// EpochDiff is the result of differencing two epochs of the whole sky.
type EpochDiff struct {
	// EpochA is the reference (earlier) epoch, EpochB the target.
	EpochA, EpochB int
	// VersionA, VersionB are the blob versions the tiles were read at.
	VersionA, VersionB meta.Version
	// Candidates are all significant-change components found, brightest
	// first within each tile.
	Candidates []Detection
	// TilesDiffed counts tiles compared; BytesRead the tile bytes
	// fetched from the blob (both epochs).
	TilesDiffed int
	BytesRead   uint64
}

// DiffEpochs difference-images every tile of epoch b against epoch a —
// the epochs need not be adjacent — and returns the candidates. Tiles
// are processed by `workers` goroutines in parallel; threshold is in
// noise sigmas, as for DetectEpoch. Both epochs are read at their
// pinned versions via ReadPinned, so the query never interacts with the
// version manager.
func (s *Survey) DiffEpochs(ctx context.Context, epochA, epochB int, threshold float64, workers int) (EpochDiff, error) {
	d := EpochDiff{EpochA: epochA, EpochB: epochB}
	if epochA == epochB {
		return d, fmt.Errorf("sky: diff of epoch %d against itself", epochA)
	}
	va, err := s.VersionForEpoch(epochA)
	if err != nil {
		return d, err
	}
	vb, err := s.VersionForEpoch(epochB)
	if err != nil {
		return d, err
	}
	d.VersionA, d.VersionB = va, vb
	if workers < 1 {
		workers = 4
	}

	type tileJob struct{ tx, ty int }
	jobs := make(chan tileJob)
	tileBytes := s.geo.TileBytes()
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufA := make([]byte, tileBytes)
			bufB := make([]byte, tileBytes)
			for j := range jobs {
				off := s.geo.TileOffset(j.tx, j.ty)
				err := s.blob.ReadPinned(ctx, bufA, off, va)
				if err == nil {
					err = s.blob.ReadPinned(ctx, bufB, off, vb)
				}
				var prev, cur *Image
				if err == nil {
					prev, err = DecodeImage(bufA, s.geo.TileW, s.geo.TileH)
				}
				if err == nil {
					cur, err = DecodeImage(bufB, s.geo.TileW, s.geo.TileH)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sky: diff tile (%d,%d): %w", j.tx, j.ty, err)
					}
					mu.Unlock()
					continue
				}
				cands := DiffDetect(prev, cur, threshold, s.cat.noiseSigma)
				mu.Lock()
				for _, c := range cands {
					d.Candidates = append(d.Candidates, Detection{
						TileX: j.tx, TileY: j.ty, Candidate: c, Epoch: epochB,
					})
				}
				d.TilesDiffed++
				d.BytesRead += 2 * tileBytes
				mu.Unlock()
			}
		}()
	}
	for ty := 0; ty < s.geo.TilesY; ty++ {
		for tx := 0; tx < s.geo.TilesX; tx++ {
			jobs <- tileJob{tx, ty}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return d, firstErr
	}
	return d, nil
}

// DiffOutcome classifies, from ground truth, whether an injected
// transient must, may, or must not show up in a diff of two epochs.
type DiffOutcome int

// Ground-truth diff outcomes.
const (
	// DiffAbsent — the flux change is too small for even one pixel to
	// cross the detection cut (noise margin included): the diff must not
	// report the transient.
	DiffAbsent DiffOutcome = iota
	// DiffAmbiguous — the change is within the noise margin of the cut;
	// detection legitimately depends on the realized noise. Property
	// tests skip these pairs.
	DiffAmbiguous
	// DiffExpected — the change is so large that at least two connected
	// pixels clear the cut under any noise realization: the diff must
	// report the transient.
	DiffExpected
)

// String names the outcome.
func (o DiffOutcome) String() string {
	switch o {
	case DiffExpected:
		return "expected"
	case DiffAmbiguous:
		return "ambiguous"
	default:
		return "absent"
	}
}

// ExpectedOutcome predicts a transient's fate in DiffEpochs(epochA,
// epochB, threshold, ...) from the catalog's analytic light curve.
//
// The decision compares the transient's flux change against the
// per-pixel detection cut. A PSF splat at sigma 1 puts 1/(2*pi) of the
// flux on the center pixel and exp(-1/2)/(2*pi) on each 4-neighbour;
// DiffDetect keeps components of >= 2 connected hot pixels, so
// detection hinges on the *second-brightest* pixel crossing the cut.
// The margin term keeps both verdicts robust to any plausible noise
// realization (the difference of two frames carries noise sigma*sqrt2;
// quantization adds at most 1 count per frame).
func (c *Catalog) ExpectedOutcome(tr Transient, epochA, epochB int, threshold float64) DiffOutcome {
	delta := math.Abs(tr.TransientFlux(epochB) - tr.TransientFlux(epochA))
	cut := threshold * c.noiseSigma * math.Sqrt2
	// 8 sigma of difference noise + quantization slack: the chance of a
	// violating realization over a whole survey is negligible.
	margin := 8*c.noiseSigma*math.Sqrt2 + 2
	second := delta * math.Exp(-0.5) / (2 * math.Pi)
	center := delta / (2 * math.Pi)
	switch {
	case second > cut+margin:
		return DiffExpected
	case center < cut-margin:
		return DiffAbsent
	default:
		return DiffAmbiguous
	}
}

// ExpectedDiff splits the catalog's transients into those a
// DiffEpochs(epochA, epochB, threshold, ...) run must find and those
// whose outcome is noise-dependent. Transients in neither slice must
// not be found. Ground truth for the time-travel property tests.
func (c *Catalog) ExpectedDiff(epochA, epochB int, threshold float64) (expected, ambiguous []Transient) {
	for _, tr := range c.transients {
		switch c.ExpectedOutcome(tr, epochA, epochB, threshold) {
		case DiffExpected:
			expected = append(expected, tr)
		case DiffAmbiguous:
			ambiguous = append(ambiguous, tr)
		}
	}
	return expected, ambiguous
}
