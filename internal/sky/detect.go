package sky

import (
	"math"
	"sort"
)

// Candidate is a variable object found by difference imaging: something
// whose brightness changed significantly between two epochs of the same
// tile.
type Candidate struct {
	// X, Y is the flux-weighted centroid within the tile.
	X, Y int
	// Flux is the total absolute difference flux of the component.
	Flux float64
	// NPix is the number of pixels in the connected component.
	NPix int
}

// DiffDetect compares two epochs of one tile and returns the connected
// components of significant change, brightest first. threshold is in
// noise sigmas; sigma is the expected per-pixel noise of the difference.
func DiffDetect(prev, cur *Image, threshold, sigma float64) []Candidate {
	w, h := cur.W, cur.H
	cut := threshold * sigma * math.Sqrt2 // difference of two noisy frames
	hot := make([]bool, w*h)
	diff := make([]float64, w*h)
	for i := range diff {
		d := float64(cur.Pix[i]) - float64(prev.Pix[i])
		diff[i] = d
		if math.Abs(d) > cut {
			hot[i] = true
		}
	}

	// Connected components over the hot mask (4-connectivity BFS).
	seen := make([]bool, w*h)
	var out []Candidate
	var queue []int
	for start := range hot {
		if !hot[start] || seen[start] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, start)
		seen[start] = true
		var flux, cx, cy float64
		npix := 0
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := i%w, i/w
			f := math.Abs(diff[i])
			flux += f
			cx += f * float64(x)
			cy += f * float64(y)
			npix++
			for _, ni := range [4]int{i - 1, i + 1, i - w, i + w} {
				if ni < 0 || ni >= w*h {
					continue
				}
				// Avoid wrapping across rows for the +-1 neighbours.
				if (ni == i-1 || ni == i+1) && ni/w != y {
					continue
				}
				if hot[ni] && !seen[ni] {
					seen[ni] = true
					queue = append(queue, ni)
				}
			}
		}
		if npix < 2 {
			continue // single hot pixels are noise
		}
		out = append(out, Candidate{
			X:    int(cx/flux + 0.5),
			Y:    int(cy/flux + 0.5),
			Flux: flux,
			NPix: npix,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Flux > out[b].Flux })
	return out
}

// ApertureFlux sums the background-subtracted counts in a small box
// around (x, y) — the photometry used to build light curves.
func ApertureFlux(im *Image, x, y, radius int, background float64) float64 {
	var sum float64
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			px, py := x+dx, y+dy
			if px < 0 || py < 0 || px >= im.W || py >= im.H {
				continue
			}
			sum += float64(im.At(px, py)) - background
		}
	}
	return sum
}

// Class is the outcome of light-curve classification.
type Class int

// Classification outcomes.
const (
	// ClassNoise — no significant brightening.
	ClassNoise Class = iota
	// ClassSupernova — a single rise-then-decay event.
	ClassSupernova
	// ClassVariable — periodic or multi-peaked variability.
	ClassVariable
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassSupernova:
		return "supernova"
	case ClassVariable:
		return "variable"
	default:
		return "noise"
	}
}

// LightCurve is flux per epoch for one object.
type LightCurve []float64

// Classify decides whether a light curve looks like a supernova (one
// asymmetric rise-and-decay event), a periodic variable (multiple
// significant maxima), or noise. minAmplitude is the detection floor in
// flux units.
func Classify(lc LightCurve, minAmplitude float64) Class {
	if len(lc) < 4 {
		return ClassNoise
	}
	// Baseline: median of the curve.
	sorted := append(LightCurve(nil), lc...)
	sort.Float64s(sorted)
	baseline := sorted[len(sorted)/2]

	peakIdx, peak := 0, math.Inf(-1)
	for i, f := range lc {
		if f > peak {
			peak, peakIdx = f, i
		}
	}
	amp := peak - baseline
	if amp < minAmplitude {
		return ClassNoise
	}

	// Count significant local maxima: epochs above baseline + amp/2 that
	// dominate their neighbourhood.
	half := baseline + amp/2
	peaks := 0
	for i := 1; i < len(lc)-1; i++ {
		if lc[i] > half && lc[i] >= lc[i-1] && lc[i] >= lc[i+1] {
			peaks++
		}
	}
	// Endpoints can hide maxima of periodic curves.
	if lc[0] > half && lc[0] >= lc[1] {
		peaks++
	}
	if lc[len(lc)-1] > half && lc[len(lc)-1] >= lc[len(lc)-2] {
		peaks++
	}
	if peaks > 1 {
		return ClassVariable
	}

	// One peak: supernovae decay slower than they rise. Measure the time
	// above half-max on each side of the peak.
	riseHalf, decayHalf := 0, 0
	for i := peakIdx; i >= 0 && lc[i] > half; i-- {
		riseHalf++
	}
	for i := peakIdx; i < len(lc) && lc[i] > half; i++ {
		decayHalf++
	}
	if decayHalf >= riseHalf {
		return ClassSupernova
	}
	// Fast decay relative to rise: likely an artifact or eclipsing
	// system; treat as variable.
	return ClassVariable
}
