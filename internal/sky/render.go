package sky

import (
	"math"

	"blob/internal/wire"
)

// Catalog deterministically generates the synthetic sky: a fixed star
// field per tile, per-epoch photon noise, optional periodic variable
// stars, and injected supernova transients. Determinism (everything is a
// hash of seed, tile, epoch and pixel) means any process can re-render
// any tile at any epoch bit-identically — which stands in for "the
// telescope took this picture" without storing source imagery.
type Catalog struct {
	geo  Geometry
	seed uint64

	// background is the mean sky level in counts.
	background float64
	// noiseSigma is the per-pixel Gaussian noise amplitude.
	noiseSigma float64
	// starsPerTile is the number of static stars rendered per tile.
	starsPerTile int

	transients []Transient
	variables  []VariableStar
	asteroids  []Asteroid
}

// Transient is an injected supernova: it brightens quickly around
// PeakEpoch and decays exponentially — the light-curve shape the
// classifier keys on.
type Transient struct {
	TileX, TileY int
	X, Y         int
	PeakFlux     float64
	PeakEpoch    int
	// RiseEpochs is the linear rise duration; DecayTau the exponential
	// decay constant (in epochs).
	RiseEpochs int
	DecayTau   float64
}

// VariableStar is a periodic variable: a sinusoidal brightness
// modulation, the classic false-positive the analysis must reject.
type VariableStar struct {
	TileX, TileY int
	X, Y         int
	MeanFlux     float64
	Amplitude    float64
	PeriodEpochs float64
}

// NewCatalog creates a catalog with sensible survey-like defaults.
func NewCatalog(geo Geometry, seed uint64) *Catalog {
	return &Catalog{
		geo:          geo,
		seed:         seed,
		background:   1000,
		noiseSigma:   12,
		starsPerTile: 12,
	}
}

// Geometry returns the catalog's tiling.
func (c *Catalog) Geometry() Geometry { return c.geo }

// AddTransient injects a supernova.
func (c *Catalog) AddTransient(tr Transient) { c.transients = append(c.transients, tr) }

// AddVariable injects a periodic variable star.
func (c *Catalog) AddVariable(v VariableStar) { c.variables = append(c.variables, v) }

// Transients returns the injected supernovae (ground truth for tests).
func (c *Catalog) Transients() []Transient { return c.transients }

// rng is a splitmix64 sequence generator for deterministic noise.
type rng struct{ state uint64 }

func newRng(parts ...uint64) *rng {
	return &rng{state: wire.HashFields(parts...)}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return wire.Mix64(r.state)
}

// float returns a uniform float in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// gaussian returns a standard normal deviate (Box-Muller).
func (r *rng) gaussian() float64 {
	u1 := r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	u2 := r.float()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// starField returns the tile's static stars: position, peak flux, PSF
// width. Deterministic per (seed, tile).
type star struct {
	x, y  int
	flux  float64
	sigma float64
}

func (c *Catalog) starField(tx, ty int) []star {
	r := newRng(c.seed, uint64(tx), uint64(ty), 0xdeadbeef)
	stars := make([]star, c.starsPerTile)
	for i := range stars {
		stars[i] = star{
			x:     int(r.next() % uint64(c.geo.TileW)),
			y:     int(r.next() % uint64(c.geo.TileH)),
			flux:  2000 + r.float()*20000,
			sigma: 0.8 + r.float()*1.2,
		}
	}
	return stars
}

// TransientFlux returns the supernova's brightness at an epoch.
func (tr Transient) TransientFlux(epoch int) float64 {
	rise := tr.RiseEpochs
	if rise < 1 {
		rise = 1
	}
	start := tr.PeakEpoch - rise
	switch {
	case epoch <= start:
		return 0
	case epoch <= tr.PeakEpoch:
		return tr.PeakFlux * float64(epoch-start) / float64(rise)
	default:
		tau := tr.DecayTau
		if tau <= 0 {
			tau = 4
		}
		return tr.PeakFlux * math.Exp(-float64(epoch-tr.PeakEpoch)/tau)
	}
}

// variableFlux returns a variable star's brightness at an epoch.
func (v VariableStar) variableFlux(epoch int) float64 {
	return v.MeanFlux + v.Amplitude*math.Sin(2*math.Pi*float64(epoch)/v.PeriodEpochs)
}

// splat renders a Gaussian point-spread function around (cx, cy).
func splat(im *Image, cx, cy int, flux, sigma float64) {
	radius := int(3*sigma) + 1
	norm := flux / (2 * math.Pi * sigma * sigma)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || y < 0 || x >= im.W || y >= im.H {
				continue
			}
			d2 := float64(dx*dx + dy*dy)
			im.Add(x, y, norm*math.Exp(-d2/(2*sigma*sigma)))
		}
	}
}

// RenderTile produces the tile's image at an epoch: background + noise +
// static stars + any variables and transients that live on the tile.
func (c *Catalog) RenderTile(tx, ty, epoch int) *Image {
	im := NewImage(c.geo.TileW, c.geo.TileH)
	noise := newRng(c.seed, uint64(tx), uint64(ty), uint64(epoch), 0xabcdef)
	for i := range im.Pix {
		v := c.background + c.noiseSigma*noise.gaussian()
		if v < 0 {
			v = 0
		}
		im.Pix[i] = uint16(v)
	}
	for _, s := range c.starField(tx, ty) {
		splat(im, s.x, s.y, s.flux, s.sigma)
	}
	for _, v := range c.variables {
		if v.TileX == tx && v.TileY == ty {
			splat(im, v.X, v.Y, v.variableFlux(epoch), 1.0)
		}
	}
	for _, tr := range c.transients {
		if tr.TileX == tx && tr.TileY == ty {
			if f := tr.TransientFlux(epoch); f > 0 {
				splat(im, tr.X, tr.Y, f, 1.0)
			}
		}
	}
	for _, a := range c.asteroids {
		if a.TileX == tx && a.TileY == ty {
			x, y := a.positionAt(epoch)
			xi, yi := int(x+0.5), int(y+0.5)
			if xi >= 0 && yi >= 0 && xi < im.W && yi < im.H {
				splat(im, xi, yi, a.Flux, 1.0)
			}
		}
	}
	return im
}

// RenderTileBytes renders straight into the wire encoding.
func (c *Catalog) RenderTileBytes(tx, ty, epoch int, buf []byte) error {
	return c.RenderTile(tx, ty, epoch).Encode(buf)
}
