package sky

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Extensions beyond the paper's minimal pipeline, in the directions its
// introduction motivates: image co-addition (stacking epochs to detect
// fainter objects) and moving-object rejection (asteroids masquerade as
// one-epoch transients, the other classic supernova false positive).

// Asteroid is a solar-system object: constant brightness, moving across
// the tile at a fixed pixel velocity per epoch.
type Asteroid struct {
	TileX, TileY int
	X0, Y0       float64 // position at epoch 0
	VX, VY       float64 // pixels per epoch
	Flux         float64
}

// positionAt returns the asteroid's pixel position at an epoch.
func (a Asteroid) positionAt(epoch int) (x, y float64) {
	return a.X0 + a.VX*float64(epoch), a.Y0 + a.VY*float64(epoch)
}

// AddAsteroid injects a moving object into the catalog.
func (c *Catalog) AddAsteroid(a Asteroid) { c.asteroids = append(c.asteroids, a) }

// Stack co-adds images pixel-wise (mean). Stacking n epochs suppresses
// the per-pixel noise by sqrt(n), revealing sources below the single-
// epoch detection limit — the standard deep-survey technique.
func Stack(images []*Image) (*Image, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("sky: nothing to stack")
	}
	w, h := images[0].W, images[0].H
	acc := make([]float64, w*h)
	for _, im := range images {
		if im.W != w || im.H != h {
			return nil, fmt.Errorf("sky: stack size mismatch %dx%d vs %dx%d", im.W, im.H, w, h)
		}
		for i, p := range im.Pix {
			acc[i] += float64(p)
		}
	}
	out := NewImage(w, h)
	n := float64(len(images))
	for i, v := range acc {
		out.Set(i%w, i/w, v/n)
	}
	return out, nil
}

// StackTile reads and co-adds a tile over an epoch range.
func (s *Survey) StackTile(ctx context.Context, tx, ty, fromEpoch, toEpoch int) (*Image, error) {
	if fromEpoch < 0 || toEpoch < fromEpoch {
		return nil, fmt.Errorf("sky: bad stack range [%d,%d]", fromEpoch, toEpoch)
	}
	images := make([]*Image, 0, toEpoch-fromEpoch+1)
	for e := fromEpoch; e <= toEpoch; e++ {
		im, err := s.ReadTile(ctx, tx, ty, e)
		if err != nil {
			return nil, err
		}
		images = append(images, im)
	}
	return Stack(images)
}

// Track is a linked sequence of detections consistent with linear motion
// — a moving object.
type Track struct {
	Detections []Detection
	// VX, VY is the fitted velocity in pixels per epoch.
	VX, VY float64
}

// LinkMovingObjects groups per-tile detections across epochs into
// linear-motion tracks. Two detections in consecutive epochs of the same
// tile link when their displacement lies in (minStep, maxStep] pixels;
// chains of at least three linked detections become tracks. The
// remaining (stationary) detections are returned separately.
func LinkMovingObjects(dets []Detection, minStep, maxStep float64) (tracks []Track, stationary []Detection) {
	type tileKey struct{ tx, ty int }
	byTile := make(map[tileKey][]Detection)
	for _, d := range dets {
		k := tileKey{d.TileX, d.TileY}
		byTile[k] = append(byTile[k], d)
	}
	used := make(map[int]bool) // index into per-tile slice

	for _, tds := range byTile {
		sort.Slice(tds, func(a, b int) bool { return tds[a].Epoch < tds[b].Epoch })
		for k := range used {
			delete(used, k)
		}
		for i := range tds {
			if used[i] {
				continue
			}
			chain := []int{i}
			cur := i
			for {
				next := -1
				for j := cur + 1; j < len(tds); j++ {
					if used[j] || tds[j].Epoch != tds[cur].Epoch+1 {
						continue
					}
					dx := float64(tds[j].X - tds[cur].X)
					dy := float64(tds[j].Y - tds[cur].Y)
					step := math.Hypot(dx, dy)
					if step > minStep && step <= maxStep {
						next = j
						break
					}
				}
				if next < 0 {
					break
				}
				chain = append(chain, next)
				cur = next
			}
			if len(chain) < 3 {
				continue
			}
			tr := Track{}
			for _, idx := range chain {
				used[idx] = true
				tr.Detections = append(tr.Detections, tds[idx])
			}
			n := len(tr.Detections)
			de := float64(tr.Detections[n-1].Epoch - tr.Detections[0].Epoch)
			tr.VX = float64(tr.Detections[n-1].X-tr.Detections[0].X) / de
			tr.VY = float64(tr.Detections[n-1].Y-tr.Detections[0].Y) / de
			tracks = append(tracks, tr)
		}
		for i, d := range tds {
			if !used[i] {
				stationary = append(stationary, d)
			}
		}
	}
	return tracks, stationary
}

// HuntResult is the outcome of the full supernova-hunt pipeline.
type HuntResult struct {
	// Supernovae are detections whose light curves classify as SN.
	Supernovae []Detection
	// Variables are periodic or multi-peaked objects.
	Variables []Detection
	// MovingObjects are linked asteroid tracks.
	MovingObjects []Track
	// Rejected counts candidates dismissed as noise.
	Rejected int
}

// HuntSupernovae runs the complete pipeline over all captured epochs:
// difference-detect every consecutive epoch pair, link and reject moving
// objects, deduplicate stationary candidates per position, extract light
// curves and classify. workers bounds the parallel tile analyses.
func (s *Survey) HuntSupernovae(ctx context.Context, threshold float64, workers int) (HuntResult, error) {
	var res HuntResult
	epochs := s.Epochs()
	if epochs < 2 {
		return res, fmt.Errorf("sky: need at least two epochs, have %d", epochs)
	}
	var all []Detection
	for e := 1; e < epochs; e++ {
		dets, err := s.DetectEpoch(ctx, e, threshold, workers)
		if err != nil {
			return res, err
		}
		all = append(all, dets...)
	}

	tracks, stationary := LinkMovingObjects(all, 1.5, 12)
	res.MovingObjects = tracks

	// Deduplicate stationary candidates: same tile, nearby centroid.
	type obj struct {
		d    Detection
		flux float64
	}
	var objs []obj
	for _, d := range stationary {
		merged := false
		for i := range objs {
			o := &objs[i]
			if o.d.TileX == d.TileX && o.d.TileY == d.TileY {
				dx, dy := d.X-o.d.X, d.Y-o.d.Y
				if dx*dx+dy*dy <= 16 {
					if d.Flux > o.flux {
						o.d, o.flux = d, d.Flux
					}
					merged = true
					break
				}
			}
		}
		if !merged {
			objs = append(objs, obj{d: d, flux: d.Flux})
		}
	}

	for _, o := range objs {
		class, _, err := s.ClassifyDetection(ctx, o.d)
		if err != nil {
			return res, err
		}
		switch class {
		case ClassSupernova:
			res.Supernovae = append(res.Supernovae, o.d)
		case ClassVariable:
			res.Variables = append(res.Variables, o.d)
		default:
			res.Rejected++
		}
	}
	return res, nil
}
