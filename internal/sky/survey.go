package sky

import (
	"context"
	"fmt"
	"sync"

	"blob/internal/core"
	"blob/internal/meta"
)

// Survey drives the full application pipeline of the paper's case study
// against a versioned blob:
//
//   - ALLOC one blob for the whole sky (TB-scale in the paper;
//     allocate-on-write means only touched tiles cost memory);
//   - each epoch, several telescopes concurrently WRITE their bands of
//     the sky — write/write concurrency across disjoint segments;
//   - analysis READs tiles of older epochs while new epochs are being
//     written — read/write concurrency;
//   - tiles are analyzed in parallel — read/read concurrency
//     ("as there is no dependency between different regions of space,
//     the analysis itself is an embarrassingly parallel problem").
type Survey struct {
	blob *core.Blob
	cat  *Catalog
	geo  Geometry

	// telescopes is the number of concurrent writers per epoch; each
	// owns a contiguous band of tile rows.
	telescopes int

	mu        sync.Mutex
	epochVers []meta.Version // epochVers[e] = version capturing epoch e
}

// NewSurvey binds a catalog to a blob. The blob must be large enough for
// one full sky view and its page size must divide the tile size.
func NewSurvey(blob *core.Blob, cat *Catalog, telescopes int) (*Survey, error) {
	geo := cat.Geometry()
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if geo.SkyBytes() > blob.CapacityBytes() {
		return nil, fmt.Errorf("sky: blob capacity %d < sky size %d", blob.CapacityBytes(), geo.SkyBytes())
	}
	if geo.TileBytes()%blob.PageSize() != 0 {
		return nil, fmt.Errorf("sky: tile size %d not a multiple of page size %d", geo.TileBytes(), blob.PageSize())
	}
	if telescopes < 1 {
		telescopes = 1
	}
	if telescopes > geo.TilesY {
		telescopes = geo.TilesY
	}
	return &Survey{blob: blob, cat: cat, geo: geo, telescopes: telescopes}, nil
}

// Blob returns the underlying blob handle.
func (s *Survey) Blob() *core.Blob { return s.blob }

// Geometry returns the survey tiling.
func (s *Survey) Geometry() Geometry { return s.geo }

// Epochs returns how many epochs have been captured.
func (s *Survey) Epochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.epochVers)
}

// VersionForEpoch returns the blob version that contains epoch e's
// complete sky view.
func (s *Survey) VersionForEpoch(e int) (meta.Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e < 0 || e >= len(s.epochVers) {
		return 0, fmt.Errorf("sky: epoch %d not captured (have %d)", e, len(s.epochVers))
	}
	return s.epochVers[e], nil
}

// bandRows splits the tile rows into the telescope bands.
func (s *Survey) bandRows(telescope int) (fromRow, toRow int) {
	per := (s.geo.TilesY + s.telescopes - 1) / s.telescopes
	fromRow = telescope * per
	toRow = fromRow + per
	if toRow > s.geo.TilesY {
		toRow = s.geo.TilesY
	}
	return fromRow, toRow
}

// CaptureEpoch renders and writes the next epoch: each telescope writes
// its band as one contiguous segment, all telescopes concurrently. It
// returns the version at which the epoch's full view is visible.
func (s *Survey) CaptureEpoch(ctx context.Context) (meta.Version, error) {
	s.mu.Lock()
	epoch := len(s.epochVers)
	s.mu.Unlock()
	bands, err := s.RenderEpochBands(epoch)
	if err != nil {
		return 0, err
	}
	return s.CaptureEpochBands(ctx, epoch, bands)
}

// RenderEpochBands renders every telescope's band of an epoch without
// writing anything: bands[t] is telescope t's contiguous slice of the
// sky (nil for a telescope with no rows). Rendering is the camera's
// job, not the store's; splitting it out lets an ingest pipeline
// prepare exposures ahead of the write-out (sky.IngestOptions.Prerender)
// so storage benchmarks do not time the pixel synthesis.
func (s *Survey) RenderEpochBands(epoch int) ([][]byte, error) {
	bands := make([][]byte, s.telescopes)
	errs := make([]error, s.telescopes)
	var wg sync.WaitGroup
	for tscope := 0; tscope < s.telescopes; tscope++ {
		fromRow, toRow := s.bandRows(tscope)
		if fromRow >= toRow {
			continue
		}
		wg.Add(1)
		go func(tscope, fromRow, toRow int) {
			defer wg.Done()
			tileBytes := s.geo.TileBytes()
			band := make([]byte, uint64(toRow-fromRow)*uint64(s.geo.TilesX)*tileBytes)
			for ty := fromRow; ty < toRow; ty++ {
				for tx := 0; tx < s.geo.TilesX; tx++ {
					off := (uint64(ty-fromRow)*uint64(s.geo.TilesX) + uint64(tx)) * tileBytes
					if err := s.cat.RenderTileBytes(tx, ty, epoch, band[off:off+tileBytes]); err != nil {
						errs[tscope] = err
						return
					}
				}
			}
			bands[tscope] = band
		}(tscope, fromRow, toRow)
	}
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sky: telescope %d epoch %d render: %w", t, epoch, err)
		}
	}
	return bands, nil
}

// CaptureEpochBands writes pre-rendered telescope bands (from
// RenderEpochBands) as epoch `epoch`, all telescopes concurrently. The
// epoch number must be the next uncaptured one — bands render
// epoch-dependent pixels, so writing them under any other epoch would
// break the catalog ground truth every test leans on.
func (s *Survey) CaptureEpochBands(ctx context.Context, epoch int, bands [][]byte) (meta.Version, error) {
	s.mu.Lock()
	next := len(s.epochVers)
	s.mu.Unlock()
	if epoch != next {
		return 0, fmt.Errorf("sky: capture of epoch %d out of order (next is %d)", epoch, next)
	}
	if len(bands) != s.telescopes {
		return 0, fmt.Errorf("sky: %d bands for %d telescopes", len(bands), s.telescopes)
	}
	vers := make([]meta.Version, s.telescopes)
	errs := make([]error, s.telescopes)
	var wg sync.WaitGroup
	for tscope := 0; tscope < s.telescopes; tscope++ {
		fromRow, toRow := s.bandRows(tscope)
		if fromRow >= toRow {
			continue
		}
		wg.Add(1)
		go func(tscope, fromRow int) {
			defer wg.Done()
			v, err := s.blob.Write(ctx, bands[tscope], s.geo.TileOffset(0, fromRow))
			vers[tscope], errs[tscope] = v, err
		}(tscope, fromRow)
	}
	wg.Wait()
	var maxVer meta.Version
	for t := 0; t < s.telescopes; t++ {
		if errs[t] != nil {
			return 0, fmt.Errorf("sky: telescope %d epoch %d: %w", t, epoch, errs[t])
		}
		if vers[t] > maxVer {
			maxVer = vers[t]
		}
	}
	s.mu.Lock()
	s.epochVers = append(s.epochVers, maxVer)
	s.mu.Unlock()
	return maxVer, nil
}

// ReadTile fetches and decodes one tile at an epoch.
func (s *Survey) ReadTile(ctx context.Context, tx, ty, epoch int) (*Image, error) {
	v, err := s.VersionForEpoch(epoch)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, s.geo.TileBytes())
	if _, err := s.blob.Read(ctx, buf, s.geo.TileOffset(tx, ty), v); err != nil {
		return nil, err
	}
	return DecodeImage(buf, s.geo.TileW, s.geo.TileH)
}

// Detection is one variable-object candidate located on the sky.
type Detection struct {
	TileX, TileY int
	Candidate
	Epoch int
}

// DetectEpoch difference-images every tile of epoch e against e-1, in
// parallel, and returns all candidates. threshold is in noise sigmas.
func (s *Survey) DetectEpoch(ctx context.Context, epoch int, threshold float64, workers int) ([]Detection, error) {
	if epoch < 1 {
		return nil, fmt.Errorf("sky: need two epochs to difference, got epoch %d", epoch)
	}
	if workers < 1 {
		workers = 4
	}
	type tileJob struct{ tx, ty int }
	jobs := make(chan tileJob)
	var mu sync.Mutex
	var out []Detection
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				prev, err := s.ReadTile(ctx, j.tx, j.ty, epoch-1)
				if err == nil {
					var cur *Image
					cur, err = s.ReadTile(ctx, j.tx, j.ty, epoch)
					if err == nil {
						for _, c := range DiffDetect(prev, cur, threshold, s.cat.noiseSigma) {
							mu.Lock()
							out = append(out, Detection{TileX: j.tx, TileY: j.ty, Candidate: c, Epoch: epoch})
							mu.Unlock()
						}
						continue
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	for ty := 0; ty < s.geo.TilesY; ty++ {
		for tx := 0; tx < s.geo.TilesX; tx++ {
			jobs <- tileJob{tx, ty}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// LightCurve extracts the aperture flux of a detection across epochs
// [from, to] by reading the tile at every captured epoch version —
// exactly the paper's "analyze the light curve of each potential
// candidate".
func (s *Survey) LightCurve(ctx context.Context, d Detection, from, to int) (LightCurve, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("sky: bad epoch range [%d,%d]", from, to)
	}
	lc := make(LightCurve, 0, to-from+1)
	for e := from; e <= to; e++ {
		im, err := s.ReadTile(ctx, d.TileX, d.TileY, e)
		if err != nil {
			return nil, err
		}
		lc = append(lc, ApertureFlux(im, d.X, d.Y, 3, s.cat.background))
	}
	return lc, nil
}

// ClassifyDetection extracts the full light curve of a detection and
// classifies it.
func (s *Survey) ClassifyDetection(ctx context.Context, d Detection) (Class, LightCurve, error) {
	last := s.Epochs() - 1
	lc, err := s.LightCurve(ctx, d, 0, last)
	if err != nil {
		return ClassNoise, nil, err
	}
	// Amplitude floor: several sigma of aperture noise (7x7 box).
	minAmp := 8 * s.cat.noiseSigma * 7
	return Classify(lc, minAmp), lc, nil
}
