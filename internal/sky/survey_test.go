package sky_test

import (
	"context"
	"sync"
	"testing"

	"blob/internal/cluster"
	"blob/internal/sky"
)

// surveyFixture spins up a cluster and a survey over it.
func surveyFixture(t testing.TB, geo sky.Geometry, telescopes int, seed uint64) (*cluster.Cluster, *sky.Catalog, *sky.Survey) {
	t.Helper()
	cl, err := cluster.Launch(cluster.Config{DataProviders: 4, MetaProviders: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	c, err := cl.NewClient(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	cat := sky.NewCatalog(geo, seed)
	pageSize := uint64(1024)
	if geo.TileBytes() < pageSize {
		pageSize = geo.TileBytes() // tile size is a power of two in tests
	}
	capacity := geo.SkyBytes() * 2
	// Round capacity up to a power-of-two page count.
	pages := capacity / pageSize
	p2 := uint64(1)
	for p2 < pages {
		p2 *= 2
	}
	b, err := c.CreateBlob(context.Background(), pageSize, p2*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := sky.NewSurvey(b, cat, telescopes)
	if err != nil {
		t.Fatal(err)
	}
	return cl, cat, sv
}

func TestSurveyEndToEndSupernovaHunt(t *testing.T) {
	geo := sky.Geometry{TilesX: 4, TilesY: 4, TileW: 32, TileH: 32}
	_, cat, sv := surveyFixture(t, geo, 2, 11)

	// Ground truth: one supernova peaking at epoch 3, one periodic
	// variable star as the classic false positive.
	cat.AddTransient(sky.Transient{
		TileX: 2, TileY: 1, X: 10, Y: 20,
		PeakFlux: 40000, PeakEpoch: 3, RiseEpochs: 1, DecayTau: 3,
	})
	cat.AddVariable(sky.VariableStar{
		TileX: 0, TileY: 3, X: 16, Y: 16,
		MeanFlux: 20000, Amplitude: 15000, PeriodEpochs: 2.7,
	})

	ctx := context.Background()
	const epochs = 10
	for e := 0; e < epochs; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatalf("capture epoch %d: %v", e, err)
		}
	}
	if sv.Epochs() != epochs {
		t.Fatalf("epochs = %d", sv.Epochs())
	}

	// Detect at the supernova's peak epoch.
	dets, err := sv.DetectEpoch(ctx, 3, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	var snDet *sky.Detection
	for i := range dets {
		if dets[i].TileX == 2 && dets[i].TileY == 1 {
			snDet = &dets[i]
		}
	}
	if snDet == nil {
		t.Fatalf("supernova tile produced no detection; got %d detections elsewhere", len(dets))
	}
	if dx, dy := snDet.X-10, snDet.Y-20; dx*dx+dy*dy > 9 {
		t.Errorf("supernova localized at (%d,%d), want near (10,20)", snDet.X, snDet.Y)
	}

	// Classification: the supernova tile's light curve must classify as
	// supernova, the variable star's as variable.
	class, lc, err := sv.ClassifyDetection(ctx, *snDet)
	if err != nil {
		t.Fatal(err)
	}
	if class != sky.ClassSupernova {
		t.Errorf("supernova classified as %v (lc=%v)", class, lc)
	}

	varDet := sky.Detection{TileX: 0, TileY: 3, Candidate: sky.Candidate{X: 16, Y: 16}}
	class, lc, err = sv.ClassifyDetection(ctx, varDet)
	if err != nil {
		t.Fatal(err)
	}
	if class != sky.ClassVariable {
		t.Errorf("variable star classified as %v (lc=%v)", class, lc)
	}
}

func TestSurveyQuietSkyNoDetections(t *testing.T) {
	geo := sky.Geometry{TilesX: 2, TilesY: 2, TileW: 32, TileH: 32}
	_, _, sv := surveyFixture(t, geo, 1, 5)
	ctx := context.Background()
	for e := 0; e < 3; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}
	dets, err := sv.DetectEpoch(ctx, 2, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("quiet sky produced %d detections: %+v", len(dets), dets)
	}
}

func TestSurveySnapshotIsolationAcrossEpochs(t *testing.T) {
	// Reading epoch e's tile must be bit-identical to the catalog's
	// rendering for epoch e even after later epochs were written —
	// the application-level statement of the paper's versioning.
	geo := sky.Geometry{TilesX: 2, TilesY: 1, TileW: 16, TileH: 16}
	_, cat, sv := surveyFixture(t, geo, 1, 9)
	ctx := context.Background()
	for e := 0; e < 4; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 4; e++ {
		got, err := sv.ReadTile(ctx, 1, 0, e)
		if err != nil {
			t.Fatal(err)
		}
		want := cat.RenderTile(1, 0, e)
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("epoch %d pixel %d: stored %d, rendered %d", e, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

func TestSurveyConcurrentCaptureAndAnalysis(t *testing.T) {
	// The paper's headline scenario: telescopes write new epochs while
	// analysis reads old ones, concurrently.
	geo := sky.Geometry{TilesX: 4, TilesY: 2, TileW: 16, TileH: 16}
	_, _, sv := surveyFixture(t, geo, 2, 21)
	ctx := context.Background()

	// Seed two epochs so analysis has something to difference.
	for e := 0; e < 2; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	// Writer: capture 4 more epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := 0; e < 4; e++ {
			if _, err := sv.CaptureEpoch(ctx); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Analysts: repeatedly difference epochs 0/1 while writes proceed.
	for a := 0; a < 3; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sv.DetectEpoch(ctx, 1, 6, 2); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if sv.Epochs() != 6 {
		t.Errorf("epochs = %d, want 6", sv.Epochs())
	}
}

func TestSurveyValidation(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	c, err := cl.NewClient(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	geo := sky.Geometry{TilesX: 4, TilesY: 4, TileW: 32, TileH: 32}
	cat := sky.NewCatalog(geo, 1)

	// Blob too small.
	small, _ := c.CreateBlob(context.Background(), 1024, 4*1024)
	if _, err := sky.NewSurvey(small, cat, 1); err == nil {
		t.Error("undersized blob accepted")
	}

	// Page size not dividing tile size.
	odd, _ := c.CreateBlob(context.Background(), 4096, 1<<20)
	catOdd := sky.NewCatalog(sky.Geometry{TilesX: 2, TilesY: 2, TileW: 10, TileH: 10}, 1)
	if _, err := sky.NewSurvey(odd, catOdd, 1); err == nil {
		t.Error("tile/page mismatch accepted")
	}
}

func TestSurveyLightCurveErrors(t *testing.T) {
	geo := sky.Geometry{TilesX: 2, TilesY: 1, TileW: 16, TileH: 16}
	_, _, sv := surveyFixture(t, geo, 1, 2)
	ctx := context.Background()
	sv.CaptureEpoch(ctx)
	d := sky.Detection{TileX: 0, TileY: 0}
	if _, err := sv.LightCurve(ctx, d, 3, 1); err == nil {
		t.Error("reversed epoch range accepted")
	}
	if _, err := sv.LightCurve(ctx, d, 0, 9); err == nil {
		t.Error("uncaptured epoch accepted")
	}
	if _, err := sv.DetectEpoch(ctx, 0, 5, 1); err == nil {
		t.Error("DetectEpoch(0) should fail (needs a predecessor)")
	}
}

func ExampleSurvey() {
	// See examples/supernovae for the full runnable pipeline.
}
