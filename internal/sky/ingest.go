package sky

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"blob/internal/core"
	"blob/internal/meta"
	"blob/internal/wire"
)

// Streaming ingestion: an LSST-style survey never stops observing, so
// epochs arrive as a continuous append stream of new blob versions while
// analysis keeps reading pinned older snapshots. Ingestor is the write
// side of that pipeline; PinnedReader is the read side, with built-in
// byte-stability verification (the snapshot-isolation invariant as a
// runtime check, not just a test).

// Ingestor captures epochs in a background loop until stopped.
type Ingestor struct {
	sv       *Survey
	cancel   context.CancelFunc
	done     chan struct{}
	captured atomic.Int64
	err      error
}

// IngestOptions configures the continuous-capture loop.
type IngestOptions struct {
	// MaxEpochs bounds the number of epochs captured (0 = until Stop).
	MaxEpochs int
	// Cadence is the survey's observation cadence — the pause between
	// consecutive epoch captures (0 = capture back to back). Real
	// surveys expose on a fixed cadence (LSST: one visit every ~40 s per
	// field); the knob also sets the ingestion duty cycle benchmarks
	// contend readers against.
	Cadence time.Duration
	// Prerender renders this many upcoming epochs' bands synchronously
	// in StartIngest, before the loop starts, so the loop's steady state
	// is pure write-out. Real pipelines overlap exposure with write-out
	// the same way; for benchmarks on small hosts it also keeps pixel
	// synthesis (pure CPU) from being timed as storage behavior. Epochs
	// past the prerendered stock fall back to inline rendering.
	Prerender int
}

// StartIngest begins continuous epoch capture on the survey. Any
// Prerender work happens before it returns; the capture loop runs in
// the background until MaxEpochs or Stop. The loop stops on the first
// capture error; Stop returns it.
func StartIngest(ctx context.Context, sv *Survey, opts IngestOptions) *Ingestor {
	ctx, cancel := context.WithCancel(ctx)
	ing := &Ingestor{sv: sv, cancel: cancel, done: make(chan struct{})}
	base := sv.Epochs()
	pre := make([][][]byte, 0, opts.Prerender)
	for i := 0; i < opts.Prerender; i++ {
		bands, err := sv.RenderEpochBands(base + i)
		if err != nil {
			ing.err = err
			cancel()
			close(ing.done)
			return ing
		}
		pre = append(pre, bands)
	}
	go func() {
		defer close(ing.done)
		for n := 0; opts.MaxEpochs <= 0 || n < opts.MaxEpochs; n++ {
			if ctx.Err() != nil {
				return
			}
			var err error
			if n < len(pre) {
				_, err = sv.CaptureEpochBands(ctx, base+n, pre[n])
				pre[n] = nil
			} else {
				_, err = sv.CaptureEpoch(ctx)
			}
			if err != nil {
				if ctx.Err() == nil {
					ing.err = err
				}
				return
			}
			ing.captured.Add(1)
			if opts.Cadence > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(opts.Cadence):
				}
			}
		}
	}()
	return ing
}

// Captured returns how many epochs the ingestor has published so far.
func (ing *Ingestor) Captured() int { return int(ing.captured.Load()) }

// Stop halts ingestion and waits for the loop to exit. It returns the
// number of epochs captured and the first capture error, if any.
func (ing *Ingestor) Stop() (int, error) {
	ing.cancel()
	<-ing.done
	return ing.Captured(), ing.err
}

// PinnedReader reads tiles of one pinned epoch version, verifying every
// read against the checksum of the first: a pinned snapshot must be
// byte-stable no matter how much ingestion happens after the pin.
type PinnedReader struct {
	sv      *Survey
	blob    *core.Blob
	epoch   int
	version meta.Version
	buf     []byte
	// sums[tileIndex] is the checksum of the tile's first observation;
	// sumSeen marks which tiles have one. Single-goroutine use; create
	// one PinnedReader per concurrent reader.
	sums    []uint64
	sumSeen []bool
	reads   int
}

// PinReader pins epoch e's version and returns a verifying reader for
// it. The pin is a client-side fact — nothing is communicated to the
// cluster, which is the point: the snapshot needs no server-side lease
// or lock to stay stable.
func (s *Survey) PinReader(epoch int) (*PinnedReader, error) {
	return s.PinReaderOn(s.blob, epoch)
}

// PinReaderOn is PinReader reading through an independent blob handle —
// typically the survey's blob opened by a separate client, so an
// analysis process has its own connections and shares nothing with the
// ingest path but the storage nodes themselves.
func (s *Survey) PinReaderOn(b *core.Blob, epoch int) (*PinnedReader, error) {
	v, err := s.VersionForEpoch(epoch)
	if err != nil {
		return nil, err
	}
	if b == nil {
		b = s.blob
	}
	tiles := s.geo.TilesX * s.geo.TilesY
	return &PinnedReader{
		sv:      s,
		blob:    b,
		epoch:   epoch,
		version: v,
		buf:     make([]byte, s.geo.TileBytes()),
		sums:    make([]uint64, tiles),
		sumSeen: make([]bool, tiles),
	}, nil
}

// Version returns the pinned blob version.
func (r *PinnedReader) Version() meta.Version { return r.version }

// Reads returns how many tile reads the reader has performed.
func (r *PinnedReader) Reads() int { return r.reads }

// ReadTile reads one tile of the pinned snapshot (lock-free: no
// version-manager interaction) and fails if its bytes differ from the
// first time this reader observed the tile.
func (r *PinnedReader) ReadTile(ctx context.Context, tx, ty int) error {
	geo := r.sv.geo
	if err := r.blob.ReadPinned(ctx, r.buf, geo.TileOffset(tx, ty), r.version); err != nil {
		return err
	}
	r.reads++
	idx := ty*geo.TilesX + tx
	sum := wire.Checksum64(r.buf)
	if !r.sumSeen[idx] {
		r.sums[idx], r.sumSeen[idx] = sum, true
		return nil
	}
	if sum != r.sums[idx] {
		return fmt.Errorf("sky: snapshot violation: tile (%d,%d) of epoch %d (v%d) changed bytes across reads",
			tx, ty, r.epoch, r.version)
	}
	return nil
}

// VerifyAgainstCatalog re-renders the tile from the catalog and checks
// the pinned snapshot matches it bit for bit — end-to-end ground truth
// on top of the cross-read stability check.
func (r *PinnedReader) VerifyAgainstCatalog(ctx context.Context, tx, ty int) error {
	if err := r.ReadTile(ctx, tx, ty); err != nil {
		return err
	}
	want := make([]byte, r.sv.geo.TileBytes())
	if err := r.sv.cat.RenderTileBytes(tx, ty, r.epoch, want); err != nil {
		return err
	}
	if wire.Checksum64(want) != r.sums[ty*r.sv.geo.TilesX+tx] {
		return fmt.Errorf("sky: tile (%d,%d) of epoch %d does not match its catalog rendering", tx, ty, r.epoch)
	}
	return nil
}
