package sky_test

import (
	"context"
	"testing"

	"blob/internal/sky"
)

func TestHuntSupernovaeFullPipeline(t *testing.T) {
	geo := sky.Geometry{TilesX: 4, TilesY: 3, TileW: 32, TileH: 32}
	_, cat, sv := surveyFixture(t, geo, 2, 77)

	// Ground truth: a supernova, a variable star and an asteroid.
	cat.AddTransient(sky.Transient{
		TileX: 1, TileY: 1, X: 12, Y: 12,
		PeakFlux: 42000, PeakEpoch: 4, RiseEpochs: 1, DecayTau: 3,
	})
	cat.AddVariable(sky.VariableStar{
		TileX: 3, TileY: 0, X: 16, Y: 16,
		MeanFlux: 22000, Amplitude: 16000, PeriodEpochs: 2.4,
	})
	cat.AddAsteroid(sky.Asteroid{
		TileX: 0, TileY: 2, X0: 4, Y0: 16, VX: 3, VY: 0, Flux: 35000,
	})

	ctx := context.Background()
	const epochs = 10
	for e := 0; e < epochs; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}

	res, err := sv.HuntSupernovae(ctx, 6, 4)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Supernovae) != 1 {
		t.Fatalf("supernovae = %d, want 1 (%+v)", len(res.Supernovae), res.Supernovae)
	}
	sn := res.Supernovae[0]
	if sn.TileX != 1 || sn.TileY != 1 {
		t.Errorf("supernova located on tile (%d,%d), want (1,1)", sn.TileX, sn.TileY)
	}

	if len(res.Variables) != 1 {
		t.Errorf("variables = %d, want 1", len(res.Variables))
	}

	if len(res.MovingObjects) == 0 {
		t.Fatal("asteroid not linked into a track")
	}
	track := res.MovingObjects[0]
	if track.Detections[0].TileX != 0 || track.Detections[0].TileY != 2 {
		t.Errorf("track on tile (%d,%d), want (0,2)",
			track.Detections[0].TileX, track.Detections[0].TileY)
	}
	if track.VX < 2 || track.VX > 4 {
		t.Errorf("track VX = %.1f, want ~3", track.VX)
	}

	// Crucially, the asteroid must NOT be in the supernova list — the
	// rejection the moving-object linker exists for.
	for _, d := range res.Supernovae {
		if d.TileX == 0 && d.TileY == 2 {
			t.Error("asteroid misclassified as supernova")
		}
	}
}

func TestHuntNeedsTwoEpochs(t *testing.T) {
	geo := sky.Geometry{TilesX: 2, TilesY: 1, TileW: 16, TileH: 16}
	_, _, sv := surveyFixture(t, geo, 1, 4)
	ctx := context.Background()
	sv.CaptureEpoch(ctx)
	if _, err := sv.HuntSupernovae(ctx, 6, 2); err == nil {
		t.Error("hunt with one epoch accepted")
	}
}

func TestStackTileOverSurvey(t *testing.T) {
	geo := sky.Geometry{TilesX: 2, TilesY: 1, TileW: 16, TileH: 16}
	_, _, sv := surveyFixture(t, geo, 1, 6)
	ctx := context.Background()
	for e := 0; e < 4; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}
	im, err := sv.StackTile(ctx, 0, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 16 || im.H != 16 {
		t.Errorf("stacked size %dx%d", im.W, im.H)
	}
	if _, err := sv.StackTile(ctx, 0, 0, 2, 1); err == nil {
		t.Error("reversed stack range accepted")
	}
}
