package sky_test

import (
	"context"
	"math/rand"
	"testing"

	"blob/internal/cluster"
	"blob/internal/erasure"
	"blob/internal/sky"
)

// checkDiffAgainstCatalog runs the time-travel diff property for one
// epoch pair: every transient the catalog says MUST appear has a
// candidate on its tile near its position, and no candidate lands on a
// tile without an expected-or-ambiguous transient. Returns how many
// must-appear transients the pair carried, so callers can assert the
// test wasn't vacuous.
func checkDiffAgainstCatalog(t *testing.T, sv *sky.Survey, cat *sky.Catalog, a, b int, threshold float64) int {
	t.Helper()
	d, err := sv.DiffEpochs(context.Background(), a, b, threshold, 4)
	if err != nil {
		t.Fatalf("diff(%d,%d): %v", a, b, err)
	}
	geo := sv.Geometry()
	if d.TilesDiffed != geo.TilesX*geo.TilesY {
		t.Fatalf("diff(%d,%d) covered %d tiles, want %d", a, b, d.TilesDiffed, geo.TilesX*geo.TilesY)
	}
	if want := 2 * uint64(d.TilesDiffed) * geo.TileBytes(); d.BytesRead != want {
		t.Fatalf("diff(%d,%d) read %d bytes, want %d", a, b, d.BytesRead, want)
	}

	expected, ambiguous := cat.ExpectedDiff(a, b, threshold)
	type tile struct{ x, y int }
	allowed := map[tile]bool{}
	for _, tr := range expected {
		allowed[tile{tr.TileX, tr.TileY}] = true
	}
	for _, tr := range ambiguous {
		allowed[tile{tr.TileX, tr.TileY}] = true
	}
	for _, tr := range expected {
		found := false
		for _, c := range d.Candidates {
			if c.TileX == tr.TileX && c.TileY == tr.TileY {
				if dx, dy := c.X-tr.X, c.Y-tr.Y; dx*dx+dy*dy <= 9 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("diff(%d,%d): expected transient on tile (%d,%d) at (%d,%d) not found among %d candidates",
				a, b, tr.TileX, tr.TileY, tr.X, tr.Y, len(d.Candidates))
		}
	}
	for _, c := range d.Candidates {
		if !allowed[tile{c.TileX, c.TileY}] {
			t.Fatalf("diff(%d,%d): spurious candidate on quiet tile (%d,%d) at (%d,%d)",
				a, b, c.TileX, c.TileY, c.X, c.Y)
		}
	}
	return len(expected)
}

// TestDiffEpochsPropertyRandomPairs is the time-travel property test:
// for random epoch pairs of a survey with injected transients, the diff
// result must round-trip the catalog's analytically predicted delta
// exactly — must-appear transients found, quiet tiles silent — with
// ambiguous (noise-straddling) cases excluded by construction.
func TestDiffEpochsPropertyRandomPairs(t *testing.T) {
	geo := sky.Geometry{TilesX: 3, TilesY: 3, TileW: 32, TileH: 32}
	_, cat, sv := surveyFixture(t, geo, 2, 1717)
	cat.AddTransient(sky.Transient{
		TileX: 0, TileY: 1, X: 10, Y: 12,
		PeakFlux: 50000, PeakEpoch: 2, RiseEpochs: 1, DecayTau: 2,
	})
	cat.AddTransient(sky.Transient{
		TileX: 2, TileY: 2, X: 20, Y: 8,
		PeakFlux: 60000, PeakEpoch: 5, RiseEpochs: 2, DecayTau: 3,
	})
	cat.AddTransient(sky.Transient{
		TileX: 1, TileY: 0, X: 16, Y: 24,
		PeakFlux: 40000, PeakEpoch: 7, RiseEpochs: 1, DecayTau: 2,
	})

	ctx := context.Background()
	const epochs = 9
	for e := 0; e < epochs; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	const threshold = 6.0
	decisivePairs := 0
	for i := 0; i < 12; i++ {
		a, b := rng.Intn(epochs), rng.Intn(epochs)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		decisivePairs += checkDiffAgainstCatalog(t, sv, cat, a, b, threshold)
	}
	if decisivePairs == 0 {
		t.Fatal("no random pair carried a must-appear transient; property test was vacuous")
	}
}

// TestDiffEpochsErasureDegraded runs the same property on an rs(3,2)
// erasure-coded deployment, then stops one data provider and proves the
// time-travel diff still round-trips exactly through inline stripe
// reconstruction — historical epochs stay first-class even degraded.
func TestDiffEpochsErasureDegraded(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		CoLocate:      true,
		Redundancy:    erasure.Redundancy{K: 3, M: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	geo := sky.Geometry{TilesX: 2, TilesY: 2, TileW: 32, TileH: 32}
	cat := sky.NewCatalog(geo, 33)
	cat.AddTransient(sky.Transient{
		TileX: 1, TileY: 0, X: 14, Y: 14,
		PeakFlux: 50000, PeakEpoch: 2, RiseEpochs: 1, DecayTau: 2,
	})
	b, err := c.CreateBlob(ctx, 1024, 16*geo.SkyBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Redundancy().IsRS() {
		t.Fatal("blob did not adopt the deployment's rs(3,2) mode")
	}
	sv, err := sky.NewSurvey(b, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 5
	for e := 0; e < epochs; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy pass over the peak pair.
	if n := checkDiffAgainstCatalog(t, sv, cat, 0, 2, 6.0); n == 0 {
		t.Fatal("peak pair carried no must-appear transient; fixture is miscalibrated")
	}

	// Degrade: one provider of every stripe group goes away for good (RAM
	// providers lose their shards on close). rs(3,2) tolerates it inline.
	cl.DataServers[1].Close()

	if n := checkDiffAgainstCatalog(t, sv, cat, 0, 2, 6.0); n == 0 {
		t.Fatal("degraded peak pair lost its must-appear transient")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		a, b := rng.Intn(epochs), rng.Intn(epochs)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		checkDiffAgainstCatalog(t, sv, cat, a, b, 6.0)
	}

	// The pinned-reader invariant holds degraded too: epoch 0 rereads
	// byte-identical to the catalog rendering via reconstruction.
	pr, err := sv.PinReader(0)
	if err != nil {
		t.Fatal(err)
	}
	for ty := 0; ty < geo.TilesY; ty++ {
		for tx := 0; tx < geo.TilesX; tx++ {
			if err := pr.VerifyAgainstCatalog(ctx, tx, ty); err != nil {
				t.Fatal(err)
			}
		}
	}
}
