package sky

import (
	"math"
	"testing"
)

func TestStackReducesNoise(t *testing.T) {
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 32, TileH: 32}
	c := NewCatalog(g, 13)

	// Measure background standard deviation in a single frame vs a
	// 16-frame stack (star-free corner pixels).
	stddev := func(im *Image) float64 {
		var sum, sum2 float64
		n := 0
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := float64(im.At(x, y))
				sum += v
				sum2 += v * v
				n++
			}
		}
		mean := sum / float64(n)
		return math.Sqrt(sum2/float64(n) - mean*mean)
	}

	single := c.RenderTile(0, 0, 0)
	var frames []*Image
	for e := 0; e < 16; e++ {
		frames = append(frames, c.RenderTile(0, 0, e))
	}
	stacked, err := Stack(frames)
	if err != nil {
		t.Fatal(err)
	}
	s1, s16 := stddev(single), stddev(stacked)
	// sqrt(16) = 4x noise suppression; allow generous slack for the
	// small sample and quantization.
	if s16 > s1/2 {
		t.Errorf("stack stddev %.2f vs single %.2f: insufficient suppression", s16, s1)
	}
}

func TestStackValidation(t *testing.T) {
	if _, err := Stack(nil); err == nil {
		t.Error("empty stack accepted")
	}
	a, b := NewImage(4, 4), NewImage(8, 8)
	if _, err := Stack([]*Image{a, b}); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestAsteroidMovesAcrossEpochs(t *testing.T) {
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 32, TileH: 32}
	c := NewCatalog(g, 3)
	c.AddAsteroid(Asteroid{X0: 5, Y0: 16, VX: 3, VY: 0, Flux: 30000})

	locate := func(epoch int) int {
		im := c.RenderTile(0, 0, epoch)
		// Find the brightest pixel in the asteroid's row band.
		best, bx := uint16(0), -1
		for x := 0; x < im.W; x++ {
			if v := im.At(x, 16); v > best {
				best, bx = v, x
			}
		}
		return bx
	}
	x0, x2 := locate(0), locate(2)
	if x2-x0 < 4 || x2-x0 > 8 {
		t.Errorf("asteroid moved %d pixels over 2 epochs, want ~6", x2-x0)
	}
}

func TestLinkMovingObjects(t *testing.T) {
	// Synthetic detections: an asteroid moving +3px/epoch and a
	// stationary transient.
	var dets []Detection
	for e := 1; e <= 4; e++ {
		dets = append(dets, Detection{
			TileX: 0, TileY: 0, Epoch: e,
			Candidate: Candidate{X: 5 + 3*e, Y: 10, Flux: 1000, NPix: 5},
		})
	}
	dets = append(dets,
		Detection{TileX: 1, TileY: 0, Epoch: 2, Candidate: Candidate{X: 20, Y: 20, Flux: 9000, NPix: 9}},
		Detection{TileX: 1, TileY: 0, Epoch: 3, Candidate: Candidate{X: 20, Y: 20, Flux: 7000, NPix: 8}},
	)

	tracks, stationary := LinkMovingObjects(dets, 1.5, 6)
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1", len(tracks))
	}
	tr := tracks[0]
	if len(tr.Detections) != 4 {
		t.Errorf("track length = %d, want 4", len(tr.Detections))
	}
	if math.Abs(tr.VX-3) > 0.5 || math.Abs(tr.VY) > 0.5 {
		t.Errorf("track velocity = (%.1f, %.1f), want (3, 0)", tr.VX, tr.VY)
	}
	if len(stationary) != 2 {
		t.Errorf("stationary = %d, want 2 (the transient's two epochs)", len(stationary))
	}
}

func TestLinkRequiresThreeEpochs(t *testing.T) {
	dets := []Detection{
		{TileX: 0, TileY: 0, Epoch: 1, Candidate: Candidate{X: 5, Y: 5}},
		{TileX: 0, TileY: 0, Epoch: 2, Candidate: Candidate{X: 8, Y: 5}},
	}
	tracks, stationary := LinkMovingObjects(dets, 1.5, 6)
	if len(tracks) != 0 {
		t.Errorf("two-point chain became a track")
	}
	if len(stationary) != 2 {
		t.Errorf("stationary = %d, want 2", len(stationary))
	}
}
