package sky

import (
	"bytes"
	"math"
	"testing"
)

func TestGeometryMapping(t *testing.T) {
	g := Geometry{TilesX: 8, TilesY: 4, TileW: 16, TileH: 16}
	if g.TileBytes() != 16*16*2 {
		t.Errorf("TileBytes = %d", g.TileBytes())
	}
	if g.SkyBytes() != 32*g.TileBytes() {
		t.Errorf("SkyBytes = %d", g.SkyBytes())
	}
	for ty := 0; ty < g.TilesY; ty++ {
		for tx := 0; tx < g.TilesX; tx++ {
			off := g.TileOffset(tx, ty)
			gx, gy := g.TileAt(off)
			if gx != tx || gy != ty {
				t.Fatalf("TileAt(TileOffset(%d,%d)) = (%d,%d)", tx, ty, gx, gy)
			}
		}
	}
	if err := (Geometry{TilesX: 0, TilesY: 1, TileW: 1, TileH: 1}).Validate(); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	im := NewImage(8, 4)
	for i := range im.Pix {
		im.Pix[i] = uint16(i * 1000)
	}
	buf := make([]byte, 8*4*2)
	if err := im.Encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(buf, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d: %d != %d", i, got.Pix[i], im.Pix[i])
		}
	}
	if err := im.Encode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := DecodeImage(buf, 100, 100); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestImageSaturation(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 1e9)
	im.Set(1, 0, -5)
	if im.At(0, 0) != 65535 || im.At(1, 0) != 0 {
		t.Errorf("saturation: %d, %d", im.At(0, 0), im.At(1, 0))
	}
	im.Set(0, 1, 60000)
	im.Add(0, 1, 60000)
	if im.At(0, 1) != 65535 {
		t.Errorf("Add saturation: %d", im.At(0, 1))
	}
}

func TestRenderDeterministic(t *testing.T) {
	g := Geometry{TilesX: 2, TilesY: 2, TileW: 32, TileH: 32}
	c1 := NewCatalog(g, 42)
	c2 := NewCatalog(g, 42)
	a := c1.RenderTile(1, 0, 5)
	b := c2.RenderTile(1, 0, 5)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed, different pixels")
		}
	}
	// Different epochs must differ (noise), different seeds must differ.
	d := c1.RenderTile(1, 0, 6)
	same := 0
	for i := range a.Pix {
		if a.Pix[i] == d.Pix[i] {
			same++
		}
	}
	if same == len(a.Pix) {
		t.Error("epochs 5 and 6 rendered identically")
	}
}

func TestRenderedStarsAreStable(t *testing.T) {
	// The static star field must not move between epochs: the brightest
	// pixel of a tile should stay at the same location.
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 32, TileH: 32}
	c := NewCatalog(g, 7)
	locate := func(im *Image) int {
		best, bi := uint16(0), 0
		for i, p := range im.Pix {
			if p > best {
				best, bi = p, i
			}
		}
		return bi
	}
	p0 := locate(c.RenderTile(0, 0, 0))
	p1 := locate(c.RenderTile(0, 0, 9))
	if p0 != p1 {
		t.Errorf("brightest pixel moved: %d -> %d", p0, p1)
	}
}

func TestTransientLightCurveShape(t *testing.T) {
	tr := Transient{PeakFlux: 1000, PeakEpoch: 10, RiseEpochs: 2, DecayTau: 4}
	if f := tr.TransientFlux(7); f != 0 {
		t.Errorf("flux before rise = %v", f)
	}
	if f := tr.TransientFlux(9); math.Abs(f-500) > 1 {
		t.Errorf("mid-rise flux = %v, want 500", f)
	}
	if f := tr.TransientFlux(10); f != 1000 {
		t.Errorf("peak flux = %v", f)
	}
	f14 := tr.TransientFlux(14)
	if math.Abs(f14-1000*math.Exp(-1)) > 1 {
		t.Errorf("decay flux = %v", f14)
	}
	if tr.TransientFlux(40) > tr.TransientFlux(20) {
		t.Error("decay not monotone")
	}
}

func TestDiffDetectFindsInjectedTransient(t *testing.T) {
	g := Geometry{TilesX: 2, TilesY: 1, TileW: 32, TileH: 32}
	c := NewCatalog(g, 3)
	c.AddTransient(Transient{
		TileX: 1, TileY: 0, X: 16, Y: 16,
		PeakFlux: 30000, PeakEpoch: 2, RiseEpochs: 1, DecayTau: 4,
	})

	// Quiet tile: no detections between consecutive epochs.
	prev := c.RenderTile(0, 0, 1)
	cur := c.RenderTile(0, 0, 2)
	if cands := DiffDetect(prev, cur, 6, c.noiseSigma); len(cands) != 0 {
		t.Errorf("quiet tile produced %d candidates", len(cands))
	}

	// Transient tile: detection near (16,16).
	prev = c.RenderTile(1, 0, 1)
	cur = c.RenderTile(1, 0, 2)
	cands := DiffDetect(prev, cur, 6, c.noiseSigma)
	if len(cands) == 0 {
		t.Fatal("transient not detected")
	}
	best := cands[0]
	if dx, dy := best.X-16, best.Y-16; dx*dx+dy*dy > 9 {
		t.Errorf("detection at (%d,%d), want near (16,16)", best.X, best.Y)
	}
}

func TestClassifySyntheticCurves(t *testing.T) {
	// Supernova: rise 2, decay tau 5 around epoch 6.
	tr := Transient{PeakFlux: 5000, PeakEpoch: 6, RiseEpochs: 2, DecayTau: 5}
	var sn LightCurve
	for e := 0; e < 16; e++ {
		sn = append(sn, tr.TransientFlux(e))
	}
	if got := Classify(sn, 100); got != ClassSupernova {
		t.Errorf("supernova curve classified as %v", got)
	}

	// Periodic variable.
	var vr LightCurve
	for e := 0; e < 16; e++ {
		vr = append(vr, 2000+1500*math.Sin(float64(e)))
	}
	if got := Classify(vr, 100); got != ClassVariable {
		t.Errorf("variable curve classified as %v", got)
	}

	// Flat noise.
	var nz LightCurve
	for e := 0; e < 16; e++ {
		nz = append(nz, 10*math.Sin(float64(e*3)))
	}
	if got := Classify(nz, 100); got != ClassNoise {
		t.Errorf("noise curve classified as %v", got)
	}

	if got := Classify(LightCurve{1, 2}, 0); got != ClassNoise {
		t.Errorf("too-short curve classified as %v", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassSupernova.String() != "supernova" || ClassVariable.String() != "variable" ||
		ClassNoise.String() != "noise" {
		t.Error("class names wrong")
	}
}

func TestApertureFlux(t *testing.T) {
	im := NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 1000
	}
	splat(im, 8, 8, 10000, 1.0)
	f := ApertureFlux(im, 8, 8, 3, 1000)
	if f < 8000 || f > 12000 {
		t.Errorf("aperture flux = %v, want ~10000", f)
	}
	// Off-source aperture is near zero.
	f0 := ApertureFlux(im, 2, 2, 1, 1000)
	if math.Abs(f0) > 500 {
		t.Errorf("background aperture = %v", f0)
	}
}

func TestRenderTileBytes(t *testing.T) {
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 8, TileH: 8}
	c := NewCatalog(g, 1)
	buf := make([]byte, g.TileBytes())
	if err := c.RenderTileBytes(0, 0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, make([]byte, len(buf))) {
		t.Error("rendered tile is all zeros")
	}
}

func BenchmarkRenderTile64(b *testing.B) {
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 64, TileH: 64}
	c := NewCatalog(g, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.RenderTile(0, 0, i)
	}
}

func BenchmarkDiffDetect64(b *testing.B) {
	g := Geometry{TilesX: 1, TilesY: 1, TileW: 64, TileH: 64}
	c := NewCatalog(g, 1)
	prev := c.RenderTile(0, 0, 0)
	cur := c.RenderTile(0, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffDetect(prev, cur, 6, c.noiseSigma)
	}
}
