// Package sky implements the paper's motivating application: searching
// for supernovae in a survey of the sky. The whole sky is "a very long
// string of bytes (blob), obtained by concatenating the images in binary
// form. Assuming all images have a fixed size, a specific part of the sky
// is accessible by providing the corresponding offset in the string. A
// simple transformation from two-dimensional to unidimensional
// coordinates is sufficient." (paper §I)
//
// The package provides the full pipeline on synthetic data (the
// substitution for real telescope imagery): deterministic star-field
// rendering with injected transients, epoch capture into a versioned
// blob, difference-imaging detection, light-curve extraction across
// versions, and a supernova-vs-variable-star classifier.
package sky

import (
	"encoding/binary"
	"fmt"
)

// Geometry describes the sky tiling: a TilesX x TilesY grid of images,
// each TileW x TileH pixels of 2 bytes (16-bit counts).
type Geometry struct {
	TilesX, TilesY int
	TileW, TileH   int
}

// BytesPerPixel is the pixel encoding width (uint16 little endian).
const BytesPerPixel = 2

// TileBytes returns the byte size of one tile image.
func (g Geometry) TileBytes() uint64 {
	return uint64(g.TileW) * uint64(g.TileH) * BytesPerPixel
}

// SkyBytes returns the byte size of one full sky view.
func (g Geometry) SkyBytes() uint64 {
	return g.TileBytes() * uint64(g.TilesX) * uint64(g.TilesY)
}

// Validate checks the geometry is usable.
func (g Geometry) Validate() error {
	if g.TilesX <= 0 || g.TilesY <= 0 || g.TileW <= 0 || g.TileH <= 0 {
		return fmt.Errorf("sky: invalid geometry %+v", g)
	}
	return nil
}

// TileOffset maps 2-D tile coordinates to the 1-D blob offset — the
// paper's dimensional transformation.
func (g Geometry) TileOffset(tx, ty int) uint64 {
	return (uint64(ty)*uint64(g.TilesX) + uint64(tx)) * g.TileBytes()
}

// TileAt inverts TileOffset.
func (g Geometry) TileAt(offset uint64) (tx, ty int) {
	idx := offset / g.TileBytes()
	return int(idx % uint64(g.TilesX)), int(idx / uint64(g.TilesX))
}

// Image is one decoded tile: row-major 16-bit photon counts.
type Image struct {
	W, H int
	Pix  []uint16
}

// NewImage allocates a zeroed image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint16, w*h)}
}

// At returns the pixel value at (x, y).
func (im *Image) At(x, y int) uint16 { return im.Pix[y*im.W+x] }

// Set stores a pixel value, saturating at the uint16 range.
func (im *Image) Set(x, y int, v float64) {
	switch {
	case v <= 0:
		im.Pix[y*im.W+x] = 0
	case v >= 65535:
		im.Pix[y*im.W+x] = 65535
	default:
		im.Pix[y*im.W+x] = uint16(v)
	}
}

// Add accumulates flux into a pixel, saturating.
func (im *Image) Add(x, y int, v float64) {
	im.Set(x, y, float64(im.At(x, y))+v)
}

// Encode serializes the image into buf (little-endian uint16), which
// must be exactly W*H*2 bytes.
func (im *Image) Encode(buf []byte) error {
	if len(buf) != im.W*im.H*BytesPerPixel {
		return fmt.Errorf("sky: encode buffer %d bytes, want %d", len(buf), im.W*im.H*BytesPerPixel)
	}
	for i, p := range im.Pix {
		binary.LittleEndian.PutUint16(buf[i*2:], p)
	}
	return nil
}

// DecodeImage parses a tile image of the given dimensions.
func DecodeImage(buf []byte, w, h int) (*Image, error) {
	if len(buf) != w*h*BytesPerPixel {
		return nil, fmt.Errorf("sky: decode buffer %d bytes, want %d", len(buf), w*h*BytesPerPixel)
	}
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = binary.LittleEndian.Uint16(buf[i*2:])
	}
	return im, nil
}
