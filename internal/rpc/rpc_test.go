package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blob/internal/netsim"
	"blob/internal/wire"
)

const (
	mEcho  = 1
	mAdd   = 2
	mFail  = 3
	mSlow  = 4
	mPanic = 5
)

// newTestServer starts a server with the standard test handlers over a
// fresh netsim fabric and returns a dial function and cleanup.
func newTestServer(t testing.TB, cfg netsim.Config) (*netsim.Net, string) {
	t.Helper()
	n := netsim.New(cfg)
	s := NewServer()
	s.Handle(mEcho, func(_ context.Context, body []byte) ([]byte, error) {
		return body, nil
	})
	s.Handle(mAdd, func(_ context.Context, body []byte) ([]byte, error) {
		r := wire.NewReader(body)
		a, b := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		w := wire.NewWriter(8)
		w.Uint64(a + b)
		return w.Bytes(), nil
	})
	s.Handle(mFail, func(_ context.Context, body []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure: %s", body)
	})
	s.Handle(mSlow, func(ctx context.Context, body []byte) ([]byte, error) {
		select {
		case <-time.After(50 * time.Millisecond):
			return body, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	l, err := n.Host("srv").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(l)
	t.Cleanup(func() {
		s.Close()
		n.Close()
	})
	return n, "srv:rpc"
}

func dialTest(t testing.TB, n *netsim.Net, addr string) *Client {
	t.Helper()
	c, err := Dial(netDialer{n.Host("cli")}, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// netDialer adapts a netsim host to the rpc.Network interface.
type netDialer struct{ h *netsim.Host }

func (d netDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

func TestEcho(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	msg := []byte("versioned blobs")
	got, err := c.Call(context.Background(), mEcho, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q, want %q", got, msg)
	}
}

func TestTypedCall(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	w := wire.NewWriter(16)
	w.Uint64(40)
	w.Uint64(2)
	got, err := c.Call(context.Background(), mAdd, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v := wire.NewReader(got).Uint64(); v != 42 {
		t.Errorf("add = %d, want 42", v)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	_, err := c.Call(context.Background(), mFail, []byte("boom"))
	if err == nil {
		t.Fatal("expected error")
	}
	if !IsServerError(err) {
		t.Errorf("err = %v, want ServerError", err)
	}
	if want := "deliberate failure: boom"; err.Error() != want {
		t.Errorf("err = %q, want %q", err.Error(), want)
	}
}

func TestUnknownMethod(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	_, err := c.Call(context.Background(), 0xdead, nil)
	if err == nil || !IsServerError(err) {
		t.Fatalf("err = %v, want ServerError for unknown method", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("call-%d", i))
			got, err := c.Call(context.Background(), mEcho, msg)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("call %d: cross-talk %q", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestAsyncCallsComplete(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	pend := make([]*Pending, 32)
	for i := range pend {
		pend[i] = c.Go(mEcho, []byte{byte(i)})
	}
	for i, p := range pend {
		got, err := p.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Errorf("async %d: got %d", i, got[0])
		}
	}
}

func TestContextCancellation(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, mSlow, []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	// Connection must still be usable for later calls.
	got, err := c.Call(context.Background(), mEcho, []byte("after"))
	if err != nil {
		t.Fatalf("post-cancel call failed: %v", err)
	}
	if string(got) != "after" {
		t.Errorf("post-cancel echo = %q", got)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	p := c.Go(mSlow, []byte("x"))
	time.Sleep(5 * time.Millisecond)
	// Closing the client should fail the pending call promptly.
	c.Close()
	_, err := p.Wait(context.Background())
	if err == nil {
		t.Fatal("pending call should fail on close")
	}
	if _, err := c.Call(context.Background(), mEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close = %v, want ErrClosed", err)
	}
}

func TestLargeBody(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	got, err := c.Call(context.Background(), mEcho, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large body corrupted")
	}
}

func TestTooLargeRejectedLocally(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	huge := make([]byte, MaxBody+1)
	_, err := c.Call(context.Background(), mEcho, huge)
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestBatchingCoalescesMessages(t *testing.T) {
	// With latency, concurrent calls issued together should share frames.
	n, addr := newTestServer(t, netsim.Config{Latency: 2 * time.Millisecond})
	c := dialTest(t, n, addr)

	// Warm up the connection.
	if _, err := c.Call(context.Background(), mEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	framesBefore := M.FramesSent.Value()
	coaledBefore := M.MessagesCoaled.Value()

	const calls = 100
	pend := make([]*Pending, calls)
	for i := range pend {
		pend[i] = c.Go(mEcho, []byte{byte(i)})
	}
	for _, p := range pend {
		if _, err := p.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	frames := M.FramesSent.Value() - framesBefore
	coaled := M.MessagesCoaled.Value() - coaledBefore
	if coaled < calls {
		t.Fatalf("coalesced messages = %d, want >= %d", coaled, calls)
	}
	// 100 requests + 100 responses = 200 logical messages. Aggregation
	// should use far fewer physical frames.
	if frames >= coaled {
		t.Errorf("frames (%d) not fewer than messages (%d): batching inactive", frames, coaled)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()
	c1, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("pool dialed twice for the same address")
	}
}

func TestPoolRedialsAfterFailure(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()

	got, err := p.Call(context.Background(), addr, mEcho, []byte("one"))
	if err != nil || string(got) != "one" {
		t.Fatalf("first call: %q, %v", got, err)
	}
	// Break the cached connection behind the pool's back.
	c, _ := p.Get(addr)
	c.Close()
	got, err = p.Call(context.Background(), addr, mEcho, []byte("two"))
	if err != nil || string(got) != "two" {
		t.Fatalf("post-failure call: %q, %v", got, err)
	}
}

func TestPoolDialErrorSurfaces(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()
	if _, err := p.Call(context.Background(), "nobody:1", mEcho, nil); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestPoolGoAsync(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()
	pd := p.Go(addr, mEcho, []byte("async"))
	got, err := pd.Wait(context.Background())
	if err != nil || string(got) != "async" {
		t.Fatalf("async: %q, %v", got, err)
	}
}

func TestPoolClosedRefusesWork(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	p := NewPool(netDialer{n.Host("cli")})
	p.Close()
	if _, err := p.Call(context.Background(), addr, mEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed pool = %v, want ErrClosed", err)
	}
}

func TestServerOverTCPLoopback(t *testing.T) {
	// The same stack must run over real TCP (deployment mode).
	s := NewServer()
	s.Handle(mEcho, func(_ context.Context, body []byte) ([]byte, error) {
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP available: %v", err)
	}
	s.Start(l)
	defer s.Close()

	c, err := Dial(TCP{}, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call(context.Background(), mEcho, []byte("tcp"))
	if err != nil || string(got) != "tcp" {
		t.Fatalf("tcp echo: %q, %v", got, err)
	}
}

func BenchmarkCallLatencyFastNet(b *testing.B) {
	n, addr := newTestServer(b, netsim.Fast())
	c := dialTest(b, n, addr)
	body := []byte("ping")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), mEcho, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchedFanout(b *testing.B) {
	n, addr := newTestServer(b, netsim.Config{Latency: 100 * time.Microsecond})
	c := dialTest(b, n, addr)
	body := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pend := make([]*Pending, 64)
		for j := range pend {
			pend[j] = c.Go(mEcho, body)
		}
		for _, p := range pend {
			if _, err := p.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
}
