package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"blob/internal/netsim"
	"blob/internal/trace"
)

// captureConn is a net.Conn sink that records everything written to it;
// reads block until Close. It lets tests pin the exact bytes the client
// writer loop puts on the wire.
type captureConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed chan struct{}
	once   sync.Once
}

func newCaptureConn() *captureConn { return &captureConn{closed: make(chan struct{})} }

func (c *captureConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *captureConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}

func (c *captureConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *captureConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *captureConn) LocalAddr() net.Addr              { return nil }
func (c *captureConn) RemoteAddr() net.Addr             { return nil }
func (c *captureConn) SetDeadline(time.Time) error      { return nil }
func (c *captureConn) SetReadDeadline(time.Time) error  { return nil }
func (c *captureConn) SetWriteDeadline(time.Time) error { return nil }

func waitCaptured(t *testing.T, c *captureConn, n int) []byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b := c.bytes(); len(b) >= n {
			return b
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("captured %d bytes, want %d", len(c.bytes()), n)
	return nil
}

// TestUntracedFrameByteIdentical pins wire compatibility: a call whose
// trace context is zero must emit exactly the legacy 0x01 frame — the
// tracing extension is invisible unless used.
func TestUntracedFrameByteIdentical(t *testing.T) {
	conn := newCaptureConn()
	c := NewClient(conn)
	defer c.Close()
	c.GoVec(7, [][]byte{[]byte("hi")})

	want := []byte{kindRequest}
	want = binary.LittleEndian.AppendUint64(want, 1) // first call id
	want = binary.LittleEndian.AppendUint32(want, 7)
	want = append(want, 2) // uvarint body length
	want = append(want, "hi"...)
	got := waitCaptured(t, c.conn.(*captureConn), len(want))
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced frame:\n got %x\nwant %x", got, want)
	}
}

// TestTracedFrameLayout pins the traced request extension: kind 0x03
// with traceID and spanID between method and body length.
func TestTracedFrameLayout(t *testing.T) {
	conn := newCaptureConn()
	c := NewClient(conn)
	defer c.Close()
	tc := trace.Ctx{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00}
	c.GoVecT(7, [][]byte{[]byte("hi")}, tc)

	want := []byte{kindRequestTraced}
	want = binary.LittleEndian.AppendUint64(want, 1)
	want = binary.LittleEndian.AppendUint32(want, 7)
	want = binary.LittleEndian.AppendUint64(want, tc.TraceID)
	want = binary.LittleEndian.AppendUint64(want, tc.SpanID)
	want = append(want, 2)
	want = append(want, "hi"...)
	got := waitCaptured(t, conn, len(want))
	if !bytes.Equal(got, want) {
		t.Fatalf("traced frame:\n got %x\nwant %x", got, want)
	}
}

// TestTracedUntracedInterop proves the four peer pairings work over one
// wire: traced and untraced clients against servers with and without a
// tracer, with ids forwarded or dropped exactly as specified.
func TestTracedUntracedInterop(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()

	const mSeen = 0x0042
	startServer := func(host string, tr *trace.Tracer) chan trace.Ctx {
		seen := make(chan trace.Ctx, 16)
		s := NewServer()
		s.SetTracer(tr)
		s.Handle(mSeen, func(ctx context.Context, body []byte) ([]byte, error) {
			seen <- trace.FromContext(ctx)
			return body, nil
		})
		l, err := n.Host(host).Listen("rpc")
		if err != nil {
			t.Fatal(err)
		}
		s.Start(l)
		t.Cleanup(s.Close)
		return seen
	}

	plainSeen := startServer("plain", nil)
	tr := trace.New("srv", 64, 1)
	tracedSeen := startServer("traced", tr)

	pool := NewPool(netDialer{n.Host("cli")})
	defer pool.Close()

	// Untraced client → either server: zero ids, no spans recorded.
	for _, addr := range []string{"plain:rpc", "traced:rpc"} {
		if _, err := pool.Call(context.Background(), addr, mSeen, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := <-plainSeen; !got.Zero() {
		t.Fatalf("untraced call reached plain server with ids %+v", got)
	}
	if got := <-tracedSeen; !got.Zero() {
		t.Fatalf("untraced call reached traced server with ids %+v", got)
	}
	if spans := tr.Spans(); len(spans) != 0 {
		t.Fatalf("untraced call recorded %d spans", len(spans))
	}

	// Traced client → untracered server: the server forwards the ids
	// (so a downstream hop could still join the trace) without
	// recording anything.
	ctr := trace.New("cli", 64, 1)
	ctx, op := ctr.ForceRoot(context.Background(), "test.op")
	if _, err := pool.Call(ctx, "plain:rpc", mSeen, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := <-plainSeen
	if got.TraceID != op.TraceID() {
		t.Fatalf("plain server saw trace %x, want %x", got.TraceID, op.TraceID())
	}

	// Traced client → traced server: a server-side span is recorded
	// under the propagated parent, and the handler context's parent is
	// that new span, not the client's.
	if _, err := pool.Call(ctx, "traced:rpc", mSeen, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got = <-tracedSeen
	if got.TraceID != op.TraceID() {
		t.Fatalf("traced server saw trace %x, want %x", got.TraceID, op.TraceID())
	}
	if got.SpanID == op.Ctx().SpanID {
		t.Fatal("traced server did not interpose its own span")
	}
	op.End()

	spans := tr.SpansFor(op.TraceID())
	if len(spans) != 1 {
		t.Fatalf("traced server recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Parent != op.Ctx().SpanID || sp.ID != got.SpanID || sp.Bytes != 3 {
		t.Fatalf("server span %+v, want parent=%x id=%x bytes=3", sp, op.Ctx().SpanID, got.SpanID)
	}

	// The span buffer is served over the MSpans RPC.
	body, err := pool.Call(context.Background(), "traced:rpc", trace.MSpans,
		trace.EncodeSpansQuery(op.TraceID()))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := trace.DecodeSpans(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 1 || remote[0] != sp {
		t.Fatalf("MSpans returned %+v, want [%+v]", remote, sp)
	}
}
