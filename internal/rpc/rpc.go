// Package rpc implements the lightweight remote procedure call framework
// the system's processes communicate through. It reproduces the key
// property the paper calls out in §V.A: a single client performs a large
// number of concurrent RPCs, and the framework "delays RPC calls to a
// single machine and streams all of them in a single real RPC call" —
// i.e. every connection has a writer loop that coalesces all pending
// outgoing messages into one network frame. Fine-grain dispersal of data
// and metadata then costs little more than coarse-grain transfers.
//
// Design:
//
//   - A Client multiplexes concurrent calls over one connection using
//     64-bit call identifiers.
//   - Outgoing requests are queued; a writer goroutine drains the queue
//     and writes everything available as one frame (the aggregation the
//     paper describes). Responses are batched the same way on the server
//     side.
//   - Message bodies are scatter-gather: a caller hands the framework a
//     list of segments (GoVec) and the writer loop flushes header bytes
//     and payload segments with a single vectored write (net.Buffers /
//     writev), so page payloads are never copied into a contiguous
//     encode buffer. Inbound bodies land in pooled buffers (see buf.go)
//     released when the handler returns or the caller is done.
//   - Handlers run in their own goroutines, so a slow request does not
//     head-of-line-block the connection.
//   - Transport is any net.Conn source: real TCP (Dialer) or the
//     simulated fabric in internal/netsim.
//
// Message wire format (both directions, little endian):
//
//	request:          0x01 | u64 id | u32 method | uvarint len | body
//	traced request:   0x03 | u64 id | u32 method | u64 traceID | u64 spanID | uvarint len | body
//	deadline request: 0x04 | u64 id | u32 method | u64 traceID | u64 spanID | uvarint deadlineMS | uvarint len | body
//	response:         0x02 | u64 id | u8 status  | uvarint len | body-or-error
//
// The traced request kind is an optional extension (see
// docs/observability.md): a call whose context carries no trace emits
// the byte-identical legacy 0x01 frame, and a server that does not
// trace still understands 0x03 and simply forwards the ids.
//
// The deadline request kind (docs/robustness.md) additionally carries
// the caller's remaining time budget in whole milliseconds (always
// ≥ 1 on the wire; an already-expired call never leaves the client).
// The server derives a handler-context deadline from it and drops
// work whose budget lapsed while queued, so abandoned requests stop
// consuming the cluster hop by hop. Its trace ids are zero when the
// call is untraced. Calls without a context deadline keep emitting
// the 0x01/0x03 frames byte-identically.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/stats"
	"blob/internal/trace"
)

// Network abstracts connection establishment so the same stack runs over
// TCP and over the netsim fabric.
type Network interface {
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network implementation of Network.
type TCP struct{}

// Dial connects over TCP.
func (TCP) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// HandlerFunc processes one request body and returns the response body.
// Returning an error sends a ServerError to the caller. The context is
// cancelled when the server shuts down. The body is a pooled buffer that
// stays valid until the handler's response has been flushed — answering
// with slices of the request is fine — but anything retained beyond that
// (stored, captured by a goroutine) must be copied.
type HandlerFunc func(ctx context.Context, body []byte) ([]byte, error)

// VecHandlerFunc is the scatter-gather variant of HandlerFunc: the
// returned segments are written to the connection back to back without
// being copied into a contiguous response buffer, so a handler can
// answer straight out of long-lived store memory. Segments must stay
// immutable until flushed, which happens before the client's call
// completes; the request-body lifetime rule is the same as
// HandlerFunc's.
type VecHandlerFunc func(ctx context.Context, body []byte) ([][]byte, error)

// ServerError is an application-level error propagated from a remote
// handler. It is distinguishable from transport failures so callers can
// decide whether retrying on another replica makes sense.
type ServerError string

// Error implements the error interface.
func (e ServerError) Error() string { return string(e) }

// IsServerError reports whether err is an application error returned by a
// remote handler (as opposed to a transport failure).
func IsServerError(err error) bool {
	var se ServerError
	return errors.As(err, &se)
}

// ErrClosed is returned for calls on a closed client or server.
var ErrClosed = errors.New("rpc: connection closed")

// ErrRemoteExpired is returned when the server reports that the call's
// propagated deadline lapsed before or during handling. It matches
// context.DeadlineExceeded under errors.Is, so callers need no special
// case: a deadline blown remotely looks like one blown locally.
var ErrRemoteExpired error = remoteExpiredError{}

type remoteExpiredError struct{}

func (remoteExpiredError) Error() string { return "rpc: deadline exceeded on server" }

func (remoteExpiredError) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrTooLarge is returned when a message exceeds the frame limit.
var ErrTooLarge = errors.New("rpc: message too large")

// MaxBody bounds a single request or response body.
const MaxBody = 128 << 20

const (
	kindRequest         = 0x01
	kindResponse        = 0x02
	kindRequestTraced   = 0x03
	kindRequestDeadline = 0x04

	statusOK  = 0
	statusErr = 1
	// statusExpired marks a reply to a deadline request whose budget ran
	// out server-side (queued too long, or the handler overran it). It
	// is only ever sent in response to kind 0x04, which old clients
	// never emit, so the status byte stays interop-safe.
	statusExpired = 2
)

// maxFrame bounds how many payload bytes one writer-loop flush coalesces.
const maxFrame = 1 << 20

// Metrics collects framework-level counters, shared process-wide so the
// experiment harness can report how many physical frames carried how many
// logical messages (the aggregation ratio).
type Metrics struct {
	CallsSent      stats.Counter
	CallsHandled   stats.Counter
	CallsExpired   stats.Counter // requests dropped server-side: deadline lapsed in queue
	FramesSent     stats.Counter
	MessagesCoaled stats.Counter
	BytesSent      stats.Counter
	BytesReceived  stats.Counter
}

// M is the process-global metrics instance.
var M Metrics

// call tracks one in-flight request on a client.
type call struct {
	id     uint64
	method uint32
	tc     trace.Ctx // zero for untraced calls (the common case)
	dlMS   uint64    // remaining deadline budget in ms; 0 = no deadline
	segs   [][]byte
	done   chan struct{}
	resp   *Buf
	err    error
}

// Client is one multiplexed RPC connection to a remote server.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	pending map[uint64]*call
	closed  bool

	nextID atomic.Uint64
	sendq  chan *call
	done   chan struct{}

	writerDone chan struct{}
	readerDone chan struct{}
}

// NewClient wraps an established connection. Most callers use Dial or a
// Pool instead.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]*call),
		sendq:      make(chan *call, 4096),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Dial establishes a client connection to addr over the given network.
func Dial(n Network, addr string) (*Client, error) {
	conn, err := n.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Go starts an asynchronous call. The returned call completes when a
// response arrives or the connection fails; wait on it with Wait.
func (c *Client) Go(method uint32, body []byte) *Pending {
	return c.GoVec(method, [][]byte{body})
}

// GoT starts an asynchronous call carrying an explicit trace context.
// A zero tc emits the byte-identical legacy frame.
func (c *Client) GoT(method uint32, body []byte, tc trace.Ctx) *Pending {
	return c.GoVecT(method, [][]byte{body}, tc)
}

// GoVec starts an asynchronous call whose body is the concatenation of
// segs. The segments are not copied: they must stay immutable until the
// call completes (Wait returns), at which point the frame has been
// flushed to the connection.
func (c *Client) GoVec(method uint32, segs [][]byte) *Pending {
	return c.GoVecT(method, segs, trace.Ctx{})
}

// GoVecT is GoVec with an explicit trace context stamped into the
// frame header. A zero tc selects the legacy request kind, so untraced
// traffic is byte-identical with pre-tracing builds.
func (c *Client) GoVecT(method uint32, segs [][]byte, tc trace.Ctx) *Pending {
	return c.GoVecTD(method, segs, tc, time.Time{})
}

// deadlineBudget converts an absolute deadline into the wire's whole-
// millisecond remaining budget. expired reports a deadline already in
// the past — such a call must fail locally, never reach the wire.
func deadlineBudget(deadline time.Time) (ms uint64, expired bool) {
	if deadline.IsZero() {
		return 0, false
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return 0, true
	}
	ms = uint64((rem + time.Millisecond - 1) / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return ms, false
}

// GoVecTD is GoVecT with an absolute deadline: the remaining budget is
// stamped into the frame (kind 0x04) so the server can stop working on
// a request its caller has already abandoned. A zero deadline emits
// the legacy frames; an already-expired one fails without touching the
// connection.
func (c *Client) GoVecTD(method uint32, segs [][]byte, tc trace.Ctx, deadline time.Time) *Pending {
	dlMS, expired := deadlineBudget(deadline)
	if expired {
		return &Pending{c: &call{err: context.DeadlineExceeded, done: closedChan}}
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxBody {
		return &Pending{c: &call{err: ErrTooLarge, done: closedChan}}
	}
	cl := &call{
		id:     c.nextID.Add(1),
		method: method,
		tc:     tc,
		dlMS:   dlMS,
		segs:   segs,
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cl.err = ErrClosed
		close(cl.done)
		return &Pending{c: cl}
	}
	c.pending[cl.id] = cl
	c.mu.Unlock()

	select {
	case c.sendq <- cl:
	default:
		// Queue full: block (backpressure) rather than fail.
		c.sendq <- cl
	}
	M.CallsSent.Inc()
	return &Pending{c: cl}
}

// Call performs a synchronous RPC. Any trace the context carries is
// propagated in the frame header, and any context deadline rides along
// as the request's remaining budget (see the deadline request kind).
func (c *Client) Call(ctx context.Context, method uint32, body []byte) ([]byte, error) {
	dl, _ := ctx.Deadline()
	return c.GoVecTD(method, [][]byte{body}, trace.FromContext(ctx), dl).Wait(ctx)
}

// Pending represents an in-flight asynchronous call.
type Pending struct {
	c *call
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Done returns a channel that is closed when the call completes; Wait
// then returns without blocking. Hedged fan-outs select over several
// calls with it.
func (p *Pending) Done() <-chan struct{} { return p.c.done }

// Wait blocks until the call completes or ctx is done. The returned body
// sits in a pooled buffer: a caller that fully consumes it may hand the
// buffer back with Release; a caller that retains it simply never
// releases (the buffer is then garbage-collected as usual).
func (p *Pending) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-p.c.done:
		if p.c.resp == nil {
			return nil, p.c.err
		}
		return p.c.resp.Bytes(), p.c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns the response body's pooled buffer for reuse. Call it
// only after Wait has returned and the body bytes (including any
// sub-slices of them) are no longer referenced; calling it before the
// call completed is a no-op. Never calling Release is always safe.
func (p *Pending) Release() {
	select {
	case <-p.c.done:
	default:
		return
	}
	if b := p.c.resp; b != nil {
		p.c.resp = nil
		b.Release()
	}
}

// frameEncoder assembles one outbound frame as scatter-gather segments:
// header bytes accumulate in a reusable arena (consecutive headers share
// one segment), payload segments alias the callers' buffers untouched.
// Growing the arena is safe mid-frame: sealed segments keep referencing
// the memory they were carved from, whose contents are final.
type frameEncoder struct {
	arena []byte
	segs  [][]byte
	start int // arena offset where the current unsealed header run began
	total int // payload bytes accumulated (headers + bodies)
}

func newFrameEncoder() *frameEncoder {
	return &frameEncoder{arena: make([]byte, 0, 16<<10), segs: make([][]byte, 0, 64)}
}

func (e *frameEncoder) reset() {
	e.arena = e.arena[:0]
	e.segs = e.segs[:0]
	e.start = 0
	e.total = 0
}

func (e *frameEncoder) hdrByte(v byte) { e.arena = append(e.arena, v) }

func (e *frameEncoder) hdrUint32(v uint32) {
	e.arena = binary.LittleEndian.AppendUint32(e.arena, v)
}

func (e *frameEncoder) hdrUint64(v uint64) {
	e.arena = binary.LittleEndian.AppendUint64(e.arena, v)
}

func (e *frameEncoder) hdrUvarint(v uint64) {
	e.arena = binary.AppendUvarint(e.arena, v)
}

// sealHeader closes the current header run into a segment.
func (e *frameEncoder) sealHeader() {
	if len(e.arena) > e.start {
		e.segs = append(e.segs, e.arena[e.start:len(e.arena):len(e.arena)])
		e.total += len(e.arena) - e.start
		e.start = len(e.arena)
	}
}

// bodySeg appends one payload segment (sealing any pending header run).
func (e *frameEncoder) bodySeg(s []byte) {
	if len(s) == 0 {
		return
	}
	e.sealHeader()
	e.segs = append(e.segs, s)
	e.total += len(s)
}

// flush writes the frame with a single vectored write.
func (e *frameEncoder) flush(conn net.Conn) error {
	e.sealHeader()
	bufs := net.Buffers(e.segs)
	return writeBuffers(conn, &bufs)
}

// BuffersWriter is the fast path for conns that can accept a whole
// scatter-gather frame at once (netsim implements it to coalesce the
// frame into a single simulated segment). net.Conns without it go
// through net.Buffers.WriteTo, which uses writev on TCP.
type BuffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

func writeBuffers(conn net.Conn, bufs *net.Buffers) error {
	if bw, ok := conn.(BuffersWriter); ok {
		_, err := bw.WriteBuffers(bufs)
		return err
	}
	_, err := bufs.WriteTo(conn)
	return err
}

// writeLoop drains the send queue, coalescing every queued request into a
// single vectored write — the paper's RPC aggregation, minus the copies.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	enc := newFrameEncoder()
	for {
		var cl *call
		select {
		case cl = <-c.sendq:
		case <-c.done:
			return
		}
		enc.reset()
		n := 0
		appendReq := func(cl *call) {
			blen := 0
			for _, s := range cl.segs {
				blen += len(s)
			}
			switch {
			case cl.dlMS > 0:
				enc.hdrByte(kindRequestDeadline)
				enc.hdrUint64(cl.id)
				enc.hdrUint32(cl.method)
				enc.hdrUint64(cl.tc.TraceID)
				enc.hdrUint64(cl.tc.SpanID)
				enc.hdrUvarint(cl.dlMS)
			case cl.tc.Zero():
				enc.hdrByte(kindRequest)
				enc.hdrUint64(cl.id)
				enc.hdrUint32(cl.method)
			default:
				enc.hdrByte(kindRequestTraced)
				enc.hdrUint64(cl.id)
				enc.hdrUint32(cl.method)
				enc.hdrUint64(cl.tc.TraceID)
				enc.hdrUint64(cl.tc.SpanID)
			}
			enc.hdrUvarint(uint64(blen))
			for _, s := range cl.segs {
				enc.bodySeg(s)
			}
			n++
		}
		appendReq(cl)
		// Opportunistically drain whatever else is queued right now:
		// every message collected here travels in the same frame.
	drain:
		for enc.total < maxFrame {
			select {
			case more := <-c.sendq:
				appendReq(more)
			default:
				break drain
			}
		}
		enc.sealHeader()
		M.FramesSent.Inc()
		M.MessagesCoaled.Add(int64(n))
		M.BytesSent.Add(int64(enc.total))
		if err := enc.flush(c.conn); err != nil {
			c.failAll(fmt.Errorf("rpc: write: %w", err))
			return
		}
	}
}

// readLoop parses responses from the connection and completes calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := newFrameReader(c.conn)
	for {
		kind, err := br.readByte()
		if err != nil {
			c.failAll(fmt.Errorf("rpc: read: %w", err))
			return
		}
		if kind != kindResponse {
			c.failAll(fmt.Errorf("rpc: protocol error: kind %#x", kind))
			return
		}
		id, err := br.readUint64()
		if err != nil {
			c.failAll(err)
			return
		}
		status, err := br.readByte()
		if err != nil {
			c.failAll(err)
			return
		}
		body, err := br.readBody()
		if err != nil {
			c.failAll(err)
			return
		}
		M.BytesReceived.Add(int64(body.Len()))

		c.mu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if cl == nil {
			body.Release()
			continue // cancelled or duplicate; drop
		}
		switch status {
		case statusOK:
			cl.resp = body
		case statusExpired:
			cl.err = ErrRemoteExpired
			body.Release()
		default:
			cl.err = ServerError(body.Bytes())
			body.Release()
		}
		close(cl.done)
	}
}

// failAll completes every pending call with err and closes the client.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pend := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()

	close(c.done)
	c.conn.Close()
	for _, cl := range pend {
		cl.err = err
		close(cl.done)
	}
}

// Close shuts the connection down; pending calls fail with ErrClosed.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return nil
}

// Closed reports whether the client has failed or been closed.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
