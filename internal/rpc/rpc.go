// Package rpc implements the lightweight remote procedure call framework
// the system's processes communicate through. It reproduces the key
// property the paper calls out in §V.A: a single client performs a large
// number of concurrent RPCs, and the framework "delays RPC calls to a
// single machine and streams all of them in a single real RPC call" —
// i.e. every connection has a writer loop that coalesces all pending
// outgoing messages into one network frame. Fine-grain dispersal of data
// and metadata then costs little more than coarse-grain transfers.
//
// Design:
//
//   - A Client multiplexes concurrent calls over one connection using
//     64-bit call identifiers.
//   - Outgoing requests are queued; a writer goroutine drains the queue
//     and writes everything available as one buffered frame (the
//     aggregation the paper describes). Responses are batched the same
//     way on the server side.
//   - Handlers run in their own goroutines, so a slow request does not
//     head-of-line-block the connection.
//   - Transport is any net.Conn source: real TCP (Dialer) or the
//     simulated fabric in internal/netsim.
//
// Message wire format (both directions, little endian):
//
//	request:  0x01 | u64 id | u32 method | uvarint len | body
//	response: 0x02 | u64 id | u8 status  | uvarint len | body-or-error
package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"blob/internal/stats"
	"blob/internal/wire"
)

// Network abstracts connection establishment so the same stack runs over
// TCP and over the netsim fabric.
type Network interface {
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network implementation of Network.
type TCP struct{}

// Dial connects over TCP.
func (TCP) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// HandlerFunc processes one request body and returns the response body.
// Returning an error sends a ServerError to the caller. The context is
// cancelled when the server shuts down.
type HandlerFunc func(ctx context.Context, body []byte) ([]byte, error)

// ServerError is an application-level error propagated from a remote
// handler. It is distinguishable from transport failures so callers can
// decide whether retrying on another replica makes sense.
type ServerError string

// Error implements the error interface.
func (e ServerError) Error() string { return string(e) }

// IsServerError reports whether err is an application error returned by a
// remote handler (as opposed to a transport failure).
func IsServerError(err error) bool {
	var se ServerError
	return errors.As(err, &se)
}

// ErrClosed is returned for calls on a closed client or server.
var ErrClosed = errors.New("rpc: connection closed")

// ErrTooLarge is returned when a message exceeds the frame limit.
var ErrTooLarge = errors.New("rpc: message too large")

// MaxBody bounds a single request or response body.
const MaxBody = 128 << 20

const (
	kindRequest  = 0x01
	kindResponse = 0x02

	statusOK  = 0
	statusErr = 1
)

// Metrics collects framework-level counters, shared process-wide so the
// experiment harness can report how many physical frames carried how many
// logical messages (the aggregation ratio).
type Metrics struct {
	CallsSent      stats.Counter
	CallsHandled   stats.Counter
	FramesSent     stats.Counter
	MessagesCoaled stats.Counter
	BytesSent      stats.Counter
	BytesReceived  stats.Counter
}

// M is the process-global metrics instance.
var M Metrics

// call tracks one in-flight request on a client.
type call struct {
	id     uint64
	method uint32
	body   []byte
	done   chan struct{}
	resp   []byte
	err    error
}

// Client is one multiplexed RPC connection to a remote server.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	pending map[uint64]*call
	closed  bool

	nextID atomic.Uint64
	sendq  chan *call
	done   chan struct{}

	writerDone chan struct{}
	readerDone chan struct{}
}

// NewClient wraps an established connection. Most callers use Dial or a
// Pool instead.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]*call),
		sendq:      make(chan *call, 4096),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Dial establishes a client connection to addr over the given network.
func Dial(n Network, addr string) (*Client, error) {
	conn, err := n.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Go starts an asynchronous call. The returned call completes when a
// response arrives or the connection fails; wait on it with Wait.
func (c *Client) Go(method uint32, body []byte) *Pending {
	if len(body) > MaxBody {
		return &Pending{c: &call{err: ErrTooLarge, done: closedChan}}
	}
	cl := &call{
		id:     c.nextID.Add(1),
		method: method,
		body:   body,
		done:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cl.err = ErrClosed
		close(cl.done)
		return &Pending{c: cl}
	}
	c.pending[cl.id] = cl
	c.mu.Unlock()

	select {
	case c.sendq <- cl:
	default:
		// Queue full: block (backpressure) rather than fail.
		c.sendq <- cl
	}
	M.CallsSent.Inc()
	return &Pending{c: cl}
}

// Call performs a synchronous RPC.
func (c *Client) Call(ctx context.Context, method uint32, body []byte) ([]byte, error) {
	return c.Go(method, body).Wait(ctx)
}

// Pending represents an in-flight asynchronous call.
type Pending struct {
	c *call
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Wait blocks until the call completes or ctx is done.
func (p *Pending) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-p.c.done:
		return p.c.resp, p.c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// writeLoop drains the send queue, coalescing every queued request into a
// single conn.Write — the paper's RPC aggregation.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	w := wire.NewWriter(64 << 10)
	for {
		var cl *call
		select {
		case cl = <-c.sendq:
		case <-c.done:
			return
		}
		w.Reset()
		n := 0
		appendReq := func(cl *call) {
			w.Uint8(kindRequest)
			w.Uint64(cl.id)
			w.Uint32(cl.method)
			w.BytesField(cl.body)
			n++
		}
		appendReq(cl)
		// Opportunistically drain whatever else is queued right now:
		// every message collected here travels in the same frame.
	drain:
		for w.Len() < 1<<20 {
			select {
			case more := <-c.sendq:
				appendReq(more)
			default:
				break drain
			}
		}
		M.FramesSent.Inc()
		M.MessagesCoaled.Add(int64(n))
		M.BytesSent.Add(int64(w.Len()))
		if _, err := c.conn.Write(w.Bytes()); err != nil {
			c.failAll(fmt.Errorf("rpc: write: %w", err))
			return
		}
	}
}

// readLoop parses responses from the connection and completes calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := newFrameReader(c.conn)
	for {
		kind, err := br.readByte()
		if err != nil {
			c.failAll(fmt.Errorf("rpc: read: %w", err))
			return
		}
		if kind != kindResponse {
			c.failAll(fmt.Errorf("rpc: protocol error: kind %#x", kind))
			return
		}
		id, err := br.readUint64()
		if err != nil {
			c.failAll(err)
			return
		}
		status, err := br.readByte()
		if err != nil {
			c.failAll(err)
			return
		}
		body, err := br.readBytes()
		if err != nil {
			c.failAll(err)
			return
		}
		M.BytesReceived.Add(int64(len(body)))

		c.mu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if cl == nil {
			continue // cancelled or duplicate; drop
		}
		if status == statusOK {
			cl.resp = body
		} else {
			cl.err = ServerError(body)
		}
		close(cl.done)
	}
}

// failAll completes every pending call with err and closes the client.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pend := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()

	close(c.done)
	c.conn.Close()
	for _, cl := range pend {
		cl.err = err
		close(cl.done)
	}
}

// Close shuts the connection down; pending calls fail with ErrClosed.
func (c *Client) Close() error {
	c.failAll(ErrClosed)
	return nil
}

// Closed reports whether the client has failed or been closed.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
