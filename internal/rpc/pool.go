package rpc

import (
	"context"
	"errors"
	"sync"
	"time"

	"blob/internal/backoff"
	"blob/internal/events"
	"blob/internal/trace"
)

// Pool maintains one multiplexed client connection per remote address,
// dialing lazily and transparently redialing after transport failures.
// Every component that talks to many peers (clients fanning out to data
// and metadata providers, the GC agent, the repair path in the version
// manager) shares this type.
//
// Failure handling is policy-driven (docs/robustness.md): transport
// failures retry under a jittered-exponential backoff bounded by a
// per-pool retry budget (so a cluster-wide outage cannot become a
// retry storm), and optional per-peer circuit breakers fail calls to a
// persistently failing or crawling peer fast, probing it back to
// health once it recovers.
type Pool struct {
	network Network

	mu      sync.Mutex
	clients map[string]*Client
	closed  bool

	// retry policy for transport failures; the budget is shared by all
	// peers of this pool.
	retry       backoff.Policy
	retryBudget *backoff.Budget

	breakMu  sync.Mutex
	breakCfg BreakerConfig
	breakOn  bool
	breakers map[string]*breaker

	journal *events.Journal
	dialsMu sync.Mutex
	dials   map[string]*dialState
}

// maxCallRetries bounds how many times one logical call is retried
// after transport failures (the first attempt is free).
const maxCallRetries = 2

// dialState tracks consecutive dial failures to one address so the
// journal records failure bursts, not every failed attempt.
type dialState struct {
	fails    int64
	lastEmit time.Time
}

// dialEventCooldown is the minimum spacing between dial-failure events
// for the same address.
const dialEventCooldown = 5 * time.Second

// NewPool returns an empty pool over the given network.
func NewPool(n Network) *Pool {
	return &Pool{
		network:     n,
		clients:     make(map[string]*Client),
		retryBudget: backoff.NewBudget(0.1, 10),
	}
}

// SetJournal attaches a cluster event journal: bursts of dial failures
// to one address emit a rate-limited events.DialFailure, and breaker
// transitions emit events.BreakerOpen / events.BreakerClose. Call
// before the pool is shared.
func (p *Pool) SetJournal(j *events.Journal) {
	if !j.Enabled() {
		return
	}
	p.dialsMu.Lock()
	p.journal = j
	p.dials = make(map[string]*dialState)
	p.dialsMu.Unlock()
}

// EnableBreakers turns on per-peer circuit breakers with the given
// config (zero fields take defaults; see BreakerConfig). Call before
// the pool is shared.
func (p *Pool) EnableBreakers(cfg BreakerConfig) {
	p.breakMu.Lock()
	p.breakCfg = cfg.withDefaults()
	p.breakOn = true
	p.breakers = make(map[string]*breaker)
	p.breakMu.Unlock()
}

// breakerFor returns addr's breaker, creating it on first use, or nil
// when breakers are disabled.
func (p *Pool) breakerFor(addr string) *breaker {
	p.breakMu.Lock()
	defer p.breakMu.Unlock()
	if !p.breakOn {
		return nil
	}
	b, ok := p.breakers[addr]
	if !ok {
		b = newBreaker(p.breakCfg)
		p.breakers[addr] = b
	}
	return b
}

// Available reports whether calls to addr are currently admitted —
// false only while addr's breaker is open. Routing layers use it the
// way they use bloom hints: skip the peer, unless it is the last one
// holding the data.
func (p *Pool) Available(addr string) bool {
	p.breakMu.Lock()
	b := p.breakers[addr]
	p.breakMu.Unlock()
	return b == nil || b.available()
}

// OpenBreakers returns the addresses whose breakers are currently
// denying traffic (for gauges and tests).
func (p *Pool) OpenBreakers() []string {
	p.breakMu.Lock()
	defer p.breakMu.Unlock()
	var open []string
	for addr, b := range p.breakers {
		if !b.available() {
			open = append(open, addr)
		}
	}
	return open
}

// callFailure classifies err for breaker accounting: transport errors
// and blown deadlines are the peer's failures; application errors and
// caller-side cancellation are not.
func callFailure(err error) bool {
	return err != nil && !IsServerError(err) && !errors.Is(err, context.Canceled)
}

// Observe feeds one call outcome into addr's breaker — the hook for
// async callers (GoVecT fan-outs) that wait on Pendings themselves and
// would otherwise bypass breaker accounting. latency matters only for
// successes. Safe to call with breakers disabled.
func (p *Pool) Observe(addr string, err error, latency time.Duration) {
	if err != nil && (errors.Is(err, ErrBreakerOpen) || errors.Is(err, context.Canceled)) {
		return // never admitted, or abandoned by the caller: not evidence
	}
	br := p.breakerFor(addr)
	if br == nil {
		return
	}
	opened, closed := br.record(callFailure(err), latency)
	if opened || closed {
		p.journalBreaker(addr, br, opened)
	}
}

// journalBreaker emits breaker transition events.
func (p *Pool) journalBreaker(addr string, br *breaker, opened bool) {
	if p.journal == nil {
		return
	}
	_, trips, errRate, lat := br.snapshot()
	if opened {
		p.journal.Emit(events.SevWarn, events.BreakerOpen, trips,
			"peer %s: circuit breaker open (trip %d, err-rate %.2f, lat-ewma %s)",
			addr, trips, errRate, lat.Round(time.Millisecond))
	} else {
		p.journal.Emit(events.SevInfo, events.BreakerClose, trips,
			"peer %s: circuit breaker closed after probe", addr)
	}
}

// noteDial records a dial outcome for addr, emitting a DialFailure
// event when failures persist past the per-address cooldown.
func (p *Pool) noteDial(addr string, err error) {
	if p.journal == nil {
		return
	}
	p.dialsMu.Lock()
	if err == nil {
		delete(p.dials, addr)
		p.dialsMu.Unlock()
		return
	}
	st := p.dials[addr]
	if st == nil {
		st = &dialState{}
		p.dials[addr] = st
	}
	st.fails++
	fails := st.fails
	emit := time.Since(st.lastEmit) >= dialEventCooldown
	if emit {
		st.lastEmit = time.Now()
	}
	p.dialsMu.Unlock()
	if emit {
		p.journal.Emit(events.SevWarn, events.DialFailure, fails,
			"dial %s failing (%d consecutive): %v", addr, fails, err)
	}
}

// Get returns a live client for addr, dialing if necessary.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := p.clients[addr]; ok && !c.Closed() {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	// Dial outside the lock; racing dials are harmless (loser is closed).
	c, err := Dial(p.network, addr)
	p.noteDial(addr, err)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if exist, ok := p.clients[addr]; ok && !exist.Closed() {
		p.mu.Unlock()
		c.Close()
		return exist, nil
	}
	p.clients[addr] = c
	p.mu.Unlock()
	return c, nil
}

// Invalidate drops the cached connection for addr, closing it.
func (p *Pool) Invalidate(addr string) {
	p.mu.Lock()
	c := p.clients[addr]
	delete(p.clients, addr)
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// do runs one logical call under the pool's failure policy: breaker
// admission, then up to 1+maxCallRetries attempts with backoff between
// them, each attempt's outcome fed to the breaker. handle performs the
// call on the given client and reports (error, final); final
// short-circuits the retry loop (used for decode errors — the response
// arrived, so re-asking would return the same bytes).
func (p *Pool) do(ctx context.Context, addr string, handle func(*Client) (error, bool)) error {
	br := p.breakerFor(addr)
	var err error
	for attempt := 0; ; attempt++ {
		if br != nil && !br.allow() {
			if err != nil {
				return err // breaker slammed shut mid-loop: report the real failure
			}
			return ErrBreakerOpen
		}
		start := time.Now()
		var final bool
		var c *Client
		c, err = p.Get(addr)
		if err == nil {
			err, final = handle(c)
		}
		if br != nil && !errors.Is(err, context.Canceled) {
			if opened, closed := br.record(callFailure(err), time.Since(start)); opened || closed {
				p.journalBreaker(addr, br, opened)
			}
		}
		if err == nil {
			p.retryBudget.Success()
			return nil
		}
		if final || IsServerError(err) || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// Transport failure: the cached connection is dead.
		p.Invalidate(addr)
		if attempt >= maxCallRetries || !p.retryBudget.Allow() {
			return err
		}
		if p.retry.Sleep(ctx, attempt) != nil {
			return err
		}
	}
}

// Call performs a synchronous RPC to addr under the pool's retry and
// breaker policy. Application errors (ServerError) are returned as-is
// and never retried — re-asking the same node is futile.
func (p *Pool) Call(ctx context.Context, addr string, method uint32, body []byte) ([]byte, error) {
	tc := trace.FromContext(ctx)
	dl, _ := ctx.Deadline()
	var resp []byte
	err := p.do(ctx, addr, func(c *Client) (error, bool) {
		b, err := c.GoVecTD(method, [][]byte{body}, tc, dl).Wait(ctx)
		resp = b
		return err, false
	})
	return resp, err
}

// CallWith performs a synchronous RPC with Call's retry semantics,
// hands the response to decode, and then releases the pooled response
// buffer. decode must not retain the body (or any sub-slice of it)
// past its return — copy what it keeps. This is the hot-path shape:
// callers get pooled-buffer reuse without giving up transparent
// retries.
func (p *Pool) CallWith(ctx context.Context, addr string, method uint32, body []byte, decode func([]byte) error) error {
	tc := trace.FromContext(ctx)
	dl, _ := ctx.Deadline()
	return p.do(ctx, addr, func(c *Client) (error, bool) {
		pd := c.GoVecTD(method, [][]byte{body}, tc, dl)
		resp, err := pd.Wait(ctx)
		if err != nil {
			return err, false
		}
		err = decode(resp)
		pd.Release()
		// The response arrived; a decode error is final.
		return err, true
	})
}

// Go starts an asynchronous call to addr. Dial errors surface through
// the returned Pending's Wait.
func (p *Pool) Go(addr string, method uint32, body []byte) *Pending {
	return p.GoVec(addr, method, [][]byte{body})
}

// GoT is Go with an explicit trace context for the frame header.
func (p *Pool) GoT(addr string, method uint32, body []byte, tc trace.Ctx) *Pending {
	return p.GoVecT(addr, method, [][]byte{body}, tc)
}

// GoVec starts an asynchronous scatter-gather call to addr (see
// Client.GoVec for the segment aliasing rules). A warm address enqueues
// on the cached connection immediately; a cold one dials in the
// background, so a fan-out wave that touches a new provider is never
// serialized behind that one dial on the calling goroutine.
func (p *Pool) GoVec(addr string, method uint32, segs [][]byte) *Pending {
	return p.GoVecT(addr, method, segs, trace.Ctx{})
}

// GoVecT is GoVec with an explicit trace context for the frame header —
// the shape async fan-outs use, since they have no per-call context to
// extract a trace from. A zero tc emits the legacy frame.
func (p *Pool) GoVecT(addr string, method uint32, segs [][]byte, tc trace.Ctx) *Pending {
	return p.GoVecTD(addr, method, segs, tc, time.Time{})
}

// GoVecTD is GoVecT with an absolute deadline stamped into the frame
// (zero = none), so async fan-outs propagate their remaining budget
// the way synchronous Calls do. Async calls bypass breaker admission —
// fan-outs consult Available for routing instead — but callers should
// feed outcomes back via Observe.
func (p *Pool) GoVecTD(addr string, method uint32, segs [][]byte, tc trace.Ctx, deadline time.Time) *Pending {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return &Pending{c: &call{err: ErrClosed, done: closedChan}}
	}
	c, warm := p.clients[addr]
	p.mu.Unlock()
	if warm && !c.Closed() {
		return c.GoVecTD(method, segs, tc, deadline)
	}

	// Cold address: complete the Pending from a dialing goroutine. The
	// inner call's pooled response buffer transfers to the outer call,
	// so Release keeps working through the indirection.
	cl := &call{done: make(chan struct{})}
	go func() {
		defer close(cl.done)
		c, err := p.Get(addr)
		if err != nil {
			cl.err = err
			return
		}
		inner := c.GoVecTD(method, segs, tc, deadline)
		<-inner.c.done
		cl.resp, cl.err = inner.c.resp, inner.c.err
	}()
	return &Pending{c: cl}
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	cs := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		cs = append(cs, c)
	}
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
}
