package rpc

import (
	"context"
	"sync"
	"time"

	"blob/internal/events"
	"blob/internal/trace"
)

// Pool maintains one multiplexed client connection per remote address,
// dialing lazily and transparently redialing after transport failures.
// Every component that talks to many peers (clients fanning out to data
// and metadata providers, the GC agent, the repair path in the version
// manager) shares this type.
type Pool struct {
	network Network

	mu      sync.Mutex
	clients map[string]*Client
	closed  bool

	journal *events.Journal
	dialsMu sync.Mutex
	dials   map[string]*dialState
}

// dialState tracks consecutive dial failures to one address so the
// journal records failure bursts, not every failed attempt.
type dialState struct {
	fails    int64
	lastEmit time.Time
}

// dialEventCooldown is the minimum spacing between dial-failure events
// for the same address.
const dialEventCooldown = 5 * time.Second

// NewPool returns an empty pool over the given network.
func NewPool(n Network) *Pool {
	return &Pool{network: n, clients: make(map[string]*Client)}
}

// SetJournal attaches a cluster event journal: bursts of dial failures
// to one address emit a rate-limited events.DialFailure. Call before
// the pool is shared.
func (p *Pool) SetJournal(j *events.Journal) {
	if !j.Enabled() {
		return
	}
	p.dialsMu.Lock()
	p.journal = j
	p.dials = make(map[string]*dialState)
	p.dialsMu.Unlock()
}

// noteDial records a dial outcome for addr, emitting a DialFailure
// event when failures persist past the per-address cooldown.
func (p *Pool) noteDial(addr string, err error) {
	if p.journal == nil {
		return
	}
	p.dialsMu.Lock()
	if err == nil {
		delete(p.dials, addr)
		p.dialsMu.Unlock()
		return
	}
	st := p.dials[addr]
	if st == nil {
		st = &dialState{}
		p.dials[addr] = st
	}
	st.fails++
	fails := st.fails
	emit := time.Since(st.lastEmit) >= dialEventCooldown
	if emit {
		st.lastEmit = time.Now()
	}
	p.dialsMu.Unlock()
	if emit {
		p.journal.Emit(events.SevWarn, events.DialFailure, fails,
			"dial %s failing (%d consecutive): %v", addr, fails, err)
	}
}

// Get returns a live client for addr, dialing if necessary.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := p.clients[addr]; ok && !c.Closed() {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	// Dial outside the lock; racing dials are harmless (loser is closed).
	c, err := Dial(p.network, addr)
	p.noteDial(addr, err)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if exist, ok := p.clients[addr]; ok && !exist.Closed() {
		p.mu.Unlock()
		c.Close()
		return exist, nil
	}
	p.clients[addr] = c
	p.mu.Unlock()
	return c, nil
}

// Invalidate drops the cached connection for addr, closing it.
func (p *Pool) Invalidate(addr string) {
	p.mu.Lock()
	c := p.clients[addr]
	delete(p.clients, addr)
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Call performs a synchronous RPC to addr. On a transport failure it
// redials once and retries; application errors (ServerError) are returned
// as-is, since retrying a failed operation on the same node is futile.
func (p *Pool) Call(ctx context.Context, addr string, method uint32, body []byte) ([]byte, error) {
	c, err := p.Get(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(ctx, method, body)
	if err == nil || IsServerError(err) || ctx.Err() != nil {
		return resp, err
	}
	// Transport failure: one redial attempt.
	p.Invalidate(addr)
	c, err = p.Get(addr)
	if err != nil {
		return nil, err
	}
	return c.Call(ctx, method, body)
}

// CallWith performs a synchronous RPC with Call's redial-once-and-retry
// semantics, hands the response to decode, and then releases the pooled
// response buffer. decode must not retain the body (or any sub-slice of
// it) past its return — copy what it keeps. This is the hot-path shape:
// callers get pooled-buffer reuse without giving up the transparent
// redial Call provides.
func (p *Pool) CallWith(ctx context.Context, addr string, method uint32, body []byte, decode func([]byte) error) error {
	tc := trace.FromContext(ctx)
	attempt := func() (err error, transported bool) {
		c, err := p.Get(addr)
		if err != nil {
			return err, false
		}
		pd := c.GoT(method, body, tc)
		resp, err := pd.Wait(ctx)
		if err != nil {
			return err, false
		}
		err = decode(resp)
		pd.Release()
		return err, true
	}
	err, transported := attempt()
	if transported || err == nil || IsServerError(err) || ctx.Err() != nil {
		return err
	}
	// Transport failure: one redial attempt (decode errors never retry —
	// the response arrived; re-asking would return the same bytes).
	p.Invalidate(addr)
	err, _ = attempt()
	return err
}

// Go starts an asynchronous call to addr. Dial errors surface through
// the returned Pending's Wait.
func (p *Pool) Go(addr string, method uint32, body []byte) *Pending {
	return p.GoVec(addr, method, [][]byte{body})
}

// GoT is Go with an explicit trace context for the frame header.
func (p *Pool) GoT(addr string, method uint32, body []byte, tc trace.Ctx) *Pending {
	return p.GoVecT(addr, method, [][]byte{body}, tc)
}

// GoVec starts an asynchronous scatter-gather call to addr (see
// Client.GoVec for the segment aliasing rules). A warm address enqueues
// on the cached connection immediately; a cold one dials in the
// background, so a fan-out wave that touches a new provider is never
// serialized behind that one dial on the calling goroutine.
func (p *Pool) GoVec(addr string, method uint32, segs [][]byte) *Pending {
	return p.GoVecT(addr, method, segs, trace.Ctx{})
}

// GoVecT is GoVec with an explicit trace context for the frame header —
// the shape async fan-outs use, since they have no per-call context to
// extract a trace from. A zero tc emits the legacy frame.
func (p *Pool) GoVecT(addr string, method uint32, segs [][]byte, tc trace.Ctx) *Pending {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return &Pending{c: &call{err: ErrClosed, done: closedChan}}
	}
	c, warm := p.clients[addr]
	p.mu.Unlock()
	if warm && !c.Closed() {
		return c.GoVecT(method, segs, tc)
	}

	// Cold address: complete the Pending from a dialing goroutine. The
	// inner call's pooled response buffer transfers to the outer call,
	// so Release keeps working through the indirection.
	cl := &call{done: make(chan struct{})}
	go func() {
		defer close(cl.done)
		c, err := p.Get(addr)
		if err != nil {
			cl.err = err
			return
		}
		inner := c.GoVecT(method, segs, tc)
		<-inner.c.done
		cl.resp, cl.err = inner.c.resp, inner.c.err
	}()
	return &Pending{c: cl}
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	cs := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		cs = append(cs, c)
	}
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
}
