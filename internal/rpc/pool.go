package rpc

import (
	"context"
	"sync"
)

// Pool maintains one multiplexed client connection per remote address,
// dialing lazily and transparently redialing after transport failures.
// Every component that talks to many peers (clients fanning out to data
// and metadata providers, the GC agent, the repair path in the version
// manager) shares this type.
type Pool struct {
	network Network

	mu      sync.Mutex
	clients map[string]*Client
	closed  bool
}

// NewPool returns an empty pool over the given network.
func NewPool(n Network) *Pool {
	return &Pool{network: n, clients: make(map[string]*Client)}
}

// Get returns a live client for addr, dialing if necessary.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := p.clients[addr]; ok && !c.Closed() {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	// Dial outside the lock; racing dials are harmless (loser is closed).
	c, err := Dial(p.network, addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if exist, ok := p.clients[addr]; ok && !exist.Closed() {
		p.mu.Unlock()
		c.Close()
		return exist, nil
	}
	p.clients[addr] = c
	p.mu.Unlock()
	return c, nil
}

// Invalidate drops the cached connection for addr, closing it.
func (p *Pool) Invalidate(addr string) {
	p.mu.Lock()
	c := p.clients[addr]
	delete(p.clients, addr)
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Call performs a synchronous RPC to addr. On a transport failure it
// redials once and retries; application errors (ServerError) are returned
// as-is, since retrying a failed operation on the same node is futile.
func (p *Pool) Call(ctx context.Context, addr string, method uint32, body []byte) ([]byte, error) {
	c, err := p.Get(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(ctx, method, body)
	if err == nil || IsServerError(err) || ctx.Err() != nil {
		return resp, err
	}
	// Transport failure: one redial attempt.
	p.Invalidate(addr)
	c, err = p.Get(addr)
	if err != nil {
		return nil, err
	}
	return c.Call(ctx, method, body)
}

// Go starts an asynchronous call to addr. Dial errors surface as an
// already-failed Pending.
func (p *Pool) Go(addr string, method uint32, body []byte) *Pending {
	c, err := p.Get(addr)
	if err != nil {
		return &Pending{c: &call{err: err, done: closedChan}}
	}
	return c.Go(method, body)
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	cs := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		cs = append(cs, c)
	}
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
}
