package rpc

// Tests for the vectored data path: scatter-gather framing equivalence,
// pooled-buffer lifecycle (double-release and use-after-release fail
// fast; concurrent release/reuse is race-free), the async cold dial in
// Pool.Go, and the allocation regression gate on the frame path.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"blob/internal/netsim"
)

// mVecEcho echoes the request body through a vectored handler that
// answers with slices of the request itself — the aliasing pattern the
// release-after-flush protocol must support.
const mVecEcho = 40

// mVecSplit answers with the body split into single-byte segments,
// exercising many-segment frames.
const mVecSplit = 41

func newVecServer(t testing.TB, cfg netsim.Config) (*netsim.Net, string) {
	t.Helper()
	n := netsim.New(cfg)
	s := NewServer()
	s.HandleVec(mVecEcho, func(_ context.Context, body []byte) ([][]byte, error) {
		if len(body) < 2 {
			return [][]byte{body}, nil
		}
		mid := len(body) / 2
		return [][]byte{body[:mid], body[mid:]}, nil
	})
	s.HandleVec(mVecSplit, func(_ context.Context, body []byte) ([][]byte, error) {
		segs := make([][]byte, len(body))
		for i := range body {
			segs[i] = body[i : i+1]
		}
		return segs, nil
	})
	s.Handle(mEcho, func(_ context.Context, body []byte) ([]byte, error) {
		return body, nil
	})
	l, err := n.Host("srv").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(l)
	t.Cleanup(func() {
		s.Close()
		n.Close()
	})
	return n, "srv:rpc"
}

// TestGoVecFramesEquivalent pins that a vectored request produces the
// same observable RPC as the same bytes sent contiguously, for several
// segmentations including empty segments.
func TestGoVecFramesEquivalent(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	msg := []byte("fine-grain pages, coarse-grain cost")
	cases := [][][]byte{
		{msg},
		{msg[:5], msg[5:]},
		{nil, msg[:10], {}, msg[10:20], msg[20:]},
		{},
	}
	for i, segs := range cases {
		var want []byte
		for _, s := range segs {
			want = append(want, s...)
		}
		got, err := c.GoVec(mVecEcho, segs).Wait(context.Background())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: echo = %q, want %q", i, got, want)
		}
	}
}

// TestVecHandlerManySegments drives a response of one segment per byte
// through the writer loop.
func TestVecHandlerManySegments(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i)
	}
	got, err := c.Call(context.Background(), mVecSplit, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("split echo mismatch: got %d bytes", len(got))
	}
}

// TestPendingRelease exercises the explicit-release path: waiting,
// releasing, and the idempotence of releasing an incomplete or
// already-released Pending.
func TestPendingRelease(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	p := c.Go(mEcho, []byte("release me"))
	p.Release() // before completion: no-op
	got, err := p.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "release me" {
		t.Fatalf("echo = %q", got)
	}
	p.Release()
	p.Release() // second Pending release: no-op (resp already detached)
}

// TestBufDoubleReleasePanics pins the fail-fast contract: releasing the
// same buffer twice must panic, and the buffer can never be inserted
// into the pool twice.
func TestBufDoubleReleasePanics(t *testing.T) {
	b := getBuf(100)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

// TestBufUseAfterReleasePanics pins that Bytes on a released buffer
// fails fast instead of reading recycled memory.
func TestBufUseAfterReleasePanics(t *testing.T) {
	b := getBuf(100)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes after Release did not panic")
		}
	}()
	_ = b.Bytes()
}

// TestPooledBufferStress hammers the pooled-buffer path from many
// goroutines with release enabled, verifying every response against its
// expected payload. Under -race this is the reuse-correctness gate: a
// buffer returned to the pool while still aliased by another call's
// response would be detected as cross-talk or a data race.
func TestPooledBufferStress(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	const workers = 16
	const calls = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := dialTest(t, n, addr)
		wg.Add(1)
		go func(w int, c *Client) {
			defer wg.Done()
			payload := make([]byte, 4096)
			for i := 0; i < calls; i++ {
				binary.LittleEndian.PutUint64(payload, uint64(w)<<32|uint64(i))
				for j := 8; j < len(payload); j += 512 {
					payload[j] = byte(w ^ i)
				}
				p := c.GoVec(mVecEcho, [][]byte{payload[:1024], payload[1024:]})
				got, err := p.Wait(context.Background())
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if len(got) != len(payload) ||
					binary.LittleEndian.Uint64(got) != uint64(w)<<32|uint64(i) ||
					got[8+512] != byte(w^i) {
					t.Errorf("worker %d call %d: payload cross-talk", w, i)
					return
				}
				p.Release()
			}
		}(w, c)
	}
	wg.Wait()
}

// TestPoolGoColdDialAsync pins the satellite fix: Pool.Go on a cold
// address must not block the calling goroutine on the dial. A fan-out
// wave over one dead address and one live address must dispatch the
// live call immediately even though the dead dial would block/fail.
func TestPoolGoColdDialAsync(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	pool := NewPool(netDialer{n.Host("cli")})
	defer pool.Close()

	// Cold fan-out: every Go returns without a round trip to the dialer.
	start := time.Now()
	pending := []*Pending{
		pool.Go("dead:rpc", mEcho, []byte("a")), // refused: no listener
		pool.Go(addr, mEcho, []byte("b")),
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cold Go blocked the caller for %v", elapsed)
	}
	if resp, err := pending[1].Wait(context.Background()); err != nil || string(resp) != "b" {
		t.Fatalf("live call: %q, %v", resp, err)
	}
	if _, err := pending[0].Wait(context.Background()); err == nil {
		t.Fatal("dead-address call succeeded")
	}
}

// TestFramePathAllocs is the allocation regression gate on the rpc frame
// path: one full vectored call round trip (client encode, server decode
// and vec-echo, response into a pooled buffer, release) must stay within
// a fixed allocation budget. The bound is deliberately loose — it
// catches a reintroduced per-page or per-body copy (which costs
// allocations proportional to the payload), not incidental small
// allocations.
func TestFramePathAllocs(t *testing.T) {
	n, addr := newVecServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	payload := make([]byte, 256<<10) // lands in the 256 KiB pool class
	segs := [][]byte{payload[:128<<10], payload[128<<10:]}
	ctx := context.Background()
	// Warm the connection and the buffer pools.
	for i := 0; i < 8; i++ {
		p := c.GoVec(mVecEcho, segs)
		if _, err := p.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	const runs = 50
	avg := testing.AllocsPerRun(runs, func() {
		p := c.GoVec(mVecEcho, segs)
		if _, err := p.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		p.Release()
	})
	// A 256 KiB payload copied even once through a fresh allocation
	// would show up as a large B/op spike; the structural allocations
	// per call (call struct, done channel, Pending, pool bookkeeping,
	// netsim's owned segment copy) stay far below this bound.
	if avg > 60 {
		t.Fatalf("frame path allocations regressed: %.1f allocs/op (budget 60)", avg)
	}
}

// TestVecErrorPath pins that vec handlers returning errors still
// propagate as ServerError with the pooled request released.
func TestVecErrorPath(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	s := NewServer()
	s.HandleVec(7, func(_ context.Context, body []byte) ([][]byte, error) {
		return nil, fmt.Errorf("vec says no to %q", body)
	})
	l, err := n.Host("srv").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(l)
	defer s.Close()
	c := dialTest(t, n, "srv:rpc")
	_, err = c.Call(context.Background(), 7, []byte("zz"))
	if !IsServerError(err) {
		t.Fatalf("err = %v, want ServerError", err)
	}
	if want := `vec says no to "zz"`; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}
