package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"blob/internal/wire"
)

// Server dispatches incoming requests to registered handlers. Responses
// are coalesced per connection exactly like client requests: one response
// writer goroutine per connection drains completed replies into single
// frames.
type Server struct {
	mu       sync.Mutex
	handlers map[uint32]HandlerFunc
	conns    map[net.Conn]struct{}
	lis      []net.Listener
	closed   bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewServer returns an empty server; register handlers before Serve.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers: make(map[uint32]HandlerFunc),
		conns:    make(map[net.Conn]struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Handle registers a handler for a method identifier. Registration after
// Serve has started is allowed but must not race with itself.
func (s *Server) Handle(method uint32, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for method %#x", method))
	}
	s.handlers[method] = h
}

// lookup returns the handler for a method, if any.
func (s *Server) lookup(method uint32) HandlerFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handlers[method]
}

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (ErrClosed after Close). Serve may be invoked
// concurrently on several listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close the listener here: a Close that ran before this Serve
		// registered l never saw it, and leaving it open would leak a
		// zombie listener that accepts connections nobody serves.
		l.Close()
		return ErrClosed
	}
	s.lis = append(s.lis, l)
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Start runs Serve in a goroutine, for callers that manage lifecycle
// through Close.
func (s *Server) Start(l net.Listener) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(l)
	}()
}

// Close stops all listeners and connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	for _, l := range lis {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// reply is one completed response awaiting transmission.
type reply struct {
	id     uint64
	status uint8
	body   []byte
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	replies := make(chan reply, 1024)
	connDone := make(chan struct{})
	defer close(connDone)

	// Response writer: coalesce everything available into one frame.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		w := wire.NewWriter(64 << 10)
		for {
			var r reply
			select {
			case r = <-replies:
			case <-connDone:
				return
			}
			w.Reset()
			n := 0
			appendResp := func(r reply) {
				w.Uint8(kindResponse)
				w.Uint64(r.id)
				w.Uint8(r.status)
				w.BytesField(r.body)
				n++
			}
			appendResp(r)
		drain:
			for w.Len() < 1<<20 {
				select {
				case more := <-replies:
					appendResp(more)
				default:
					break drain
				}
			}
			M.FramesSent.Inc()
			M.MessagesCoaled.Add(int64(n))
			M.BytesSent.Add(int64(w.Len()))
			if _, err := conn.Write(w.Bytes()); err != nil {
				conn.Close() // unblocks the read loop below
				return
			}
		}
	}()

	br := newFrameReader(conn)
	for {
		kind, err := br.readByte()
		if err != nil {
			return
		}
		if kind != kindRequest {
			return
		}
		id, err := br.readUint64()
		if err != nil {
			return
		}
		method, err := br.readUint32()
		if err != nil {
			return
		}
		body, err := br.readBytes()
		if err != nil {
			return
		}
		M.BytesReceived.Add(int64(len(body)))

		h := s.lookup(method)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var r reply
			r.id = id
			if h == nil {
				r.status = statusErr
				r.body = []byte(fmt.Sprintf("rpc: unknown method %#x", method))
			} else if out, err := h(s.ctx, body); err != nil {
				r.status = statusErr
				r.body = []byte(err.Error())
			} else {
				r.status = statusOK
				r.body = out
			}
			M.CallsHandled.Inc()
			select {
			case replies <- r:
			case <-connDone:
			case <-s.ctx.Done():
			}
		}()
	}
}

// frameReader incrementally parses the message stream from a connection.
// Bodies are copied out of the buffered reader so handlers and callers
// may retain them.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(conn net.Conn) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(conn, 256<<10)}
}

func (f *frameReader) readByte() (byte, error) {
	return f.br.ReadByte()
}

func (f *frameReader) readUint32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(f.br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (f *frameReader) readUint64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(f.br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (f *frameReader) readBytes() ([]byte, error) {
	n, err := binary.ReadUvarint(f.br)
	if err != nil {
		return nil, err
	}
	if n > MaxBody {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(f.br, body); err != nil {
		return nil, err
	}
	return body, nil
}
