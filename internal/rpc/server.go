package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"blob/internal/events"
	"blob/internal/stats"
	"blob/internal/trace"
)

// methodNames maps method identifiers to human-readable names for span
// labels and metric labels. Service packages register their methods
// from init(); unknown ids render as hex.
var methodNames sync.Map // uint32 -> string

// RegisterMethodName associates a method id with a name like
// "provider.MPutPages". Typically called from a service package's
// init(); later registrations for the same id win.
func RegisterMethodName(method uint32, name string) {
	methodNames.Store(method, name)
}

func init() {
	// trace and events cannot import rpc (rpc imports both), so their
	// method ids are named here.
	RegisterMethodName(trace.MSpans, "trace.MSpans")
	RegisterMethodName(events.MEvents, "events.MEvents")
}

// MethodName returns the registered name for a method id, or a hex
// rendering when none is known.
func MethodName(method uint32) string {
	if v, ok := methodNames.Load(method); ok {
		return v.(string)
	}
	return fmt.Sprintf("m_0x%04x", method)
}

// Server dispatches incoming requests to registered handlers. Responses
// are coalesced per connection exactly like client requests: one response
// writer goroutine per connection drains completed replies into single
// vectored frames. Request bodies live in pooled buffers that are
// released the moment the handler returns.
type Server struct {
	mu       sync.Mutex
	handlers map[uint32]handlerEntry
	conns    map[net.Conn]struct{}
	lis      []net.Listener
	closed   bool

	tracer  *trace.Tracer
	metrics *serverMetrics

	stallTimeout time.Duration // mid-frame read deadline; 0 = DefaultStallTimeout

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// DefaultStallTimeout bounds how long a connection may sit mid-frame:
// once a request's first header byte has arrived, the rest of the
// message must follow within this window or the connection is cut. A
// peer that opens a frame and stalls (slowloris) would otherwise pin a
// connection goroutine and its pooled buffers forever. Idle
// connections — no frame in progress — are never timed out.
const DefaultStallTimeout = 30 * time.Second

// SetStallTimeout overrides the mid-frame stall timeout (tests use
// short values). Call before Serve.
func (s *Server) SetStallTimeout(d time.Duration) {
	s.mu.Lock()
	s.stallTimeout = d
	s.mu.Unlock()
}

// serverMetrics accumulates per-method handler latency into a
// long-lived registry (served over /metrics by the admin listener).
type serverMetrics struct {
	mu    sync.Mutex
	reg   *stats.Registry
	hists map[uint32]*stats.Histogram
}

func (m *serverMetrics) hist(method uint32) *stats.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[method]
	if !ok {
		h = m.reg.Histogram(stats.Label("rpc_handler_seconds", "method", MethodName(method)))
		m.hists[method] = h
	}
	return h
}

// handlerEntry holds one registered handler in either calling convention.
type handlerEntry struct {
	plain HandlerFunc
	vec   VecHandlerFunc
}

// NewServer returns an empty server; register handlers before Serve.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers: make(map[uint32]handlerEntry),
		conns:    make(map[net.Conn]struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Handle registers a handler for a method identifier. Registration after
// Serve has started is allowed but must not race with itself.
func (s *Server) Handle(method uint32, h HandlerFunc) {
	s.register(method, handlerEntry{plain: h})
}

// HandleVec registers a scatter-gather handler: its response segments
// are written to the connection without intermediate assembly (see
// VecHandlerFunc for the aliasing rules).
func (s *Server) HandleVec(method uint32, h VecHandlerFunc) {
	s.register(method, handlerEntry{vec: h})
}

func (s *Server) register(method uint32, e handlerEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for method %#x", method))
	}
	s.handlers[method] = e
}

// lookup returns the handler for a method, if any, plus the server's
// observability hooks (tracer, metrics) under one lock acquisition.
func (s *Server) lookup(method uint32) (handlerEntry, bool, *trace.Tracer, *serverMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.handlers[method]
	return e, ok, s.tracer, s.metrics
}

// SetTracer attaches a tracer: every incoming traced request gets a
// server-side span named after its method, handlers run under a
// context carrying the trace, and the trace.MSpans method is served
// from the tracer's ring. Call at most once, before Serve.
func (s *Server) SetTracer(t *trace.Tracer) {
	if t == nil {
		return
	}
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
	s.Handle(trace.MSpans, func(_ context.Context, body []byte) ([]byte, error) {
		id, err := trace.DecodeSpansQuery(body)
		if err != nil {
			return nil, err
		}
		return trace.EncodeSpans(t.SpansFor(id)), nil
	})
}

// SetJournal attaches a cluster event journal: the events.MEvents
// method is served from the journal's ring, so the monitor and blobctl
// can tail this node's state transitions. Call at most once, before
// Serve.
func (s *Server) SetJournal(j *events.Journal) {
	if !j.Enabled() {
		return
	}
	s.Handle(events.MEvents, func(_ context.Context, body []byte) ([]byte, error) {
		since, minSev, err := events.DecodeEventsQuery(body)
		if err != nil {
			return nil, err
		}
		return events.EncodeEvents(j.LatestSeq(), j.EventsSince(since, minSev)), nil
	})
}

// EnableMetrics records per-method handler latency histograms into reg
// (series rpc_handler_seconds{method="..."}). Call before Serve.
func (s *Server) EnableMetrics(reg *stats.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = &serverMetrics{reg: reg, hists: make(map[uint32]*stats.Histogram)}
}

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (ErrClosed after Close). Serve may be invoked
// concurrently on several listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close the listener here: a Close that ran before this Serve
		// registered l never saw it, and leaving it open would leak a
		// zombie listener that accepts connections nobody serves.
		l.Close()
		return ErrClosed
	}
	s.lis = append(s.lis, l)
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Start runs Serve in a goroutine, for callers that manage lifecycle
// through Close.
func (s *Server) Start(l net.Listener) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(l)
	}()
}

// Close stops all listeners and connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	for _, l := range lis {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// reply is one completed response awaiting transmission. segs are the
// body segments, written back to back. req is the pooled request body,
// released once the response is flushed — not when the handler returns —
// so a handler may answer with slices of the request itself.
type reply struct {
	id     uint64
	status uint8
	segs   [][]byte
	req    *Buf
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	replies := make(chan reply, 1024)
	connDone := make(chan struct{})
	defer close(connDone)

	// Response writer: coalesce everything available into one vectored
	// frame. Handler output segments go to the connection untouched;
	// request buffers are released once the frame carrying their
	// response is on the wire.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		enc := newFrameEncoder()
		reqs := make([]*Buf, 0, 64)
		for {
			var r reply
			select {
			case r = <-replies:
			case <-connDone:
				return
			}
			enc.reset()
			reqs = reqs[:0]
			n := 0
			appendResp := func(r reply) {
				blen := 0
				for _, s := range r.segs {
					blen += len(s)
				}
				enc.hdrByte(kindResponse)
				enc.hdrUint64(r.id)
				enc.hdrByte(r.status)
				enc.hdrUvarint(uint64(blen))
				for _, s := range r.segs {
					enc.bodySeg(s)
				}
				if r.req != nil {
					reqs = append(reqs, r.req)
				}
				n++
			}
			appendResp(r)
		drain:
			for enc.total < maxFrame {
				select {
				case more := <-replies:
					appendResp(more)
				default:
					break drain
				}
			}
			enc.sealHeader()
			M.FramesSent.Inc()
			M.MessagesCoaled.Add(int64(n))
			M.BytesSent.Add(int64(enc.total))
			err := enc.flush(conn)
			for _, b := range reqs {
				b.Release()
			}
			if err != nil {
				conn.Close() // unblocks the read loop below
				return
			}
		}
	}()

	s.mu.Lock()
	stall := s.stallTimeout
	s.mu.Unlock()
	if stall <= 0 {
		stall = DefaultStallTimeout
	}

	br := newFrameReader(conn)
	for {
		// Between messages the connection may idle forever; once a
		// message's first byte arrives the rest must follow within the
		// stall timeout (see DefaultStallTimeout).
		conn.SetReadDeadline(time.Time{})
		kind, err := br.readByte()
		if err != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(stall))
		if kind != kindRequest && kind != kindRequestTraced && kind != kindRequestDeadline {
			return
		}
		id, err := br.readUint64()
		if err != nil {
			return
		}
		method, err := br.readUint32()
		if err != nil {
			return
		}
		var tc trace.Ctx
		if kind == kindRequestTraced || kind == kindRequestDeadline {
			if tc.TraceID, err = br.readUint64(); err != nil {
				return
			}
			if tc.SpanID, err = br.readUint64(); err != nil {
				return
			}
		}
		// The deadline kind carries the caller's remaining budget in
		// ms; anchor it to the moment the header was parsed.
		var deadline time.Time
		if kind == kindRequestDeadline {
			dlMS, err := br.readUvarint()
			if err != nil {
				return
			}
			if dlMS > 0 {
				deadline = time.Now().Add(time.Duration(dlMS) * time.Millisecond)
			}
		}
		body, err := br.readBody()
		if err != nil {
			return
		}
		M.BytesReceived.Add(int64(body.Len()))

		h, ok, tracer, metrics := s.lookup(method)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Observability around the handler: a server-side span when
			// the request carries a trace (an untracered server still
			// forwards the ids to any RPCs the handler makes), and a
			// per-method latency observation when metrics are enabled.
			hctx := s.ctx
			var op *trace.Op
			if !tc.Zero() {
				if tracer != nil {
					hctx, op = tracer.Resume(s.ctx, tc, MethodName(method))
					op.AddBytes(int64(body.Len()))
				} else {
					hctx = trace.ContextWith(s.ctx, nil, tc)
				}
			}
			// Deadline propagation: the handler context expires when
			// the caller's budget does, so nested RPCs the handler
			// makes carry a shrunken budget downstream. Work whose
			// budget lapsed while queued is dropped outright — the
			// caller has already given up on it.
			if !deadline.IsZero() {
				if !time.Now().Before(deadline) {
					M.CallsExpired.Inc()
					op.EndErr(context.DeadlineExceeded)
					r := reply{id: id, req: body, status: statusExpired}
					select {
					case replies <- r:
					case <-connDone:
					case <-s.ctx.Done():
					}
					return
				}
				var cancel context.CancelFunc
				hctx, cancel = context.WithDeadline(hctx, deadline)
				defer cancel()
			}
			var start time.Time
			if metrics != nil {
				start = time.Now()
			}
			// The request body stays alive until its response is
			// flushed (the reply carries it), so handlers may answer
			// with slices of the request; anything retained beyond the
			// response lifetime must still be copied.
			segs, err := func() ([][]byte, error) {
				switch {
				case !ok:
					return nil, fmt.Errorf("rpc: unknown method %#x", method)
				case h.vec != nil:
					return h.vec(hctx, body.Bytes())
				default:
					out, err := h.plain(hctx, body.Bytes())
					if err != nil {
						return nil, err
					}
					return [][]byte{out}, nil
				}
			}()
			if metrics != nil {
				// Traced requests leave their trace ID as the bucket's
				// exemplar, so a latency spike on /metrics points at a
				// concrete span tree.
				metrics.hist(method).ObserveExemplar(time.Since(start), tc.TraceID)
			}
			op.EndErr(err)
			r := reply{id: id, req: body}
			switch {
			case err == nil:
				r.status = statusOK
				r.segs = segs
			case !deadline.IsZero() && errors.Is(err, context.DeadlineExceeded):
				// The propagated budget ran out mid-handler: report it
				// as an expiry, not an application error, so the client
				// sees the same context.DeadlineExceeded it would have
				// produced locally.
				M.CallsExpired.Inc()
				r.status = statusExpired
			default:
				r.status = statusErr
				r.segs = [][]byte{[]byte(err.Error())}
			}
			M.CallsHandled.Inc()
			select {
			case replies <- r:
			case <-connDone:
			case <-s.ctx.Done():
			}
			// A reply dropped on shutdown keeps its buffer; the pool
			// refills on demand and the GC reclaims it.
		}()
	}
}

// frameReader incrementally parses the message stream from a connection.
// Bodies are copied out of the buffered reader into pooled buffers so
// handlers and callers may retain them until release.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(conn net.Conn) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(conn, 256<<10)}
}

func (f *frameReader) readByte() (byte, error) {
	return f.br.ReadByte()
}

func (f *frameReader) readUint32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(f.br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (f *frameReader) readUint64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(f.br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (f *frameReader) readUvarint() (uint64, error) {
	return binary.ReadUvarint(f.br)
}

// readBody reads one length-prefixed body into a pooled buffer.
func (f *frameReader) readBody() (*Buf, error) {
	n, err := binary.ReadUvarint(f.br)
	if err != nil {
		return nil, err
	}
	if n > MaxBody {
		return nil, ErrTooLarge
	}
	body := getBuf(int(n))
	if _, err := io.ReadFull(f.br, body.Bytes()); err != nil {
		body.Release()
		return nil, err
	}
	return body, nil
}
