package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"blob/internal/netsim"
	"blob/internal/trace"
)

// TestDeadlineFrameLayout pins the kind-0x04 wire format: a call made
// with a context deadline must emit exactly
// 0x04 | u64 id | u32 method | u64 traceID | u64 spanID | uvarint dlMS | uvarint len | body.
func TestDeadlineFrameLayout(t *testing.T) {
	cliSide, srvSide := net.Pipe()
	defer srvSide.Close()
	c := NewClient(cliSide)
	defer c.Close()

	tc := trace.Ctx{TraceID: 0xaaaa, SpanID: 0xbbbb}
	go c.GoVecTD(7, [][]byte{[]byte("hi")}, tc, time.Now().Add(250*time.Millisecond))

	// net.Pipe delivers each vectored segment as its own write; keep
	// reading until the whole message (header + 2-byte body) is in.
	buf := make([]byte, 0, 64)
	tmp := make([]byte, 64)
	srvSide.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := srvSide.Read(tmp)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, tmp[:n]...)
		// Fixed header is 29 bytes; once both uvarints parse, the
		// message is complete when the body is in too.
		if len(buf) > 29 {
			dl, nn := binary.Uvarint(buf[29:])
			_ = dl
			if nn > 0 {
				if bl, bn := binary.Uvarint(buf[29+nn:]); bn > 0 && len(buf) >= 29+nn+bn+int(bl) {
					break
				}
			}
		}
	}
	if buf[0] != kindRequestDeadline {
		t.Fatalf("kind = %#x, want %#x", buf[0], kindRequestDeadline)
	}
	if id := binary.LittleEndian.Uint64(buf[1:]); id != 1 {
		t.Errorf("id = %d, want 1", id)
	}
	if m := binary.LittleEndian.Uint32(buf[9:]); m != 7 {
		t.Errorf("method = %d, want 7", m)
	}
	if tr := binary.LittleEndian.Uint64(buf[13:]); tr != 0xaaaa {
		t.Errorf("traceID = %#x, want 0xaaaa", tr)
	}
	if sp := binary.LittleEndian.Uint64(buf[21:]); sp != 0xbbbb {
		t.Errorf("spanID = %#x, want 0xbbbb", sp)
	}
	dlMS, nn := binary.Uvarint(buf[29:])
	if nn <= 0 || dlMS == 0 || dlMS > 250 {
		t.Errorf("deadlineMS = %d (read %d bytes), want 1..250", dlMS, nn)
	}
	blen, bn := binary.Uvarint(buf[29+nn:])
	if bn <= 0 || blen != 2 {
		t.Errorf("body len = %d, want 2", blen)
	}
	if got := string(buf[29+nn+bn:]); got != "hi" {
		t.Errorf("body = %q, want %q", got, "hi")
	}
}

// TestNoDeadlineKeepsLegacyFrames pins interop: without a context
// deadline the legacy kinds must still be emitted byte-for-byte — an
// untraced call is 0x01 and a traced one 0x03, never 0x04.
func TestNoDeadlineKeepsLegacyFrames(t *testing.T) {
	for _, tt := range []struct {
		name string
		tc   trace.Ctx
		kind byte
	}{
		{"untraced", trace.Ctx{}, kindRequest},
		{"traced", trace.Ctx{TraceID: 1, SpanID: 2}, kindRequestTraced},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cliSide, srvSide := net.Pipe()
			defer srvSide.Close()
			c := NewClient(cliSide)
			defer c.Close()
			go c.GoVecTD(9, [][]byte{[]byte("x")}, tt.tc, time.Time{})
			one := make([]byte, 1)
			if _, err := io.ReadFull(srvSide, one); err != nil {
				t.Fatal(err)
			}
			if one[0] != tt.kind {
				t.Fatalf("kind = %#x, want %#x", one[0], tt.kind)
			}
		})
	}
}

// TestExpiredDeadlineFailsLocally: a call whose deadline already passed
// must fail with context.DeadlineExceeded without touching the wire.
func TestExpiredDeadlineFailsLocally(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	c := dialTest(t, n, addr)
	sent := M.CallsSent.Value()
	p := c.GoVecTD(mEcho, [][]byte{[]byte("x")}, trace.Ctx{}, time.Now().Add(-time.Second))
	if _, err := p.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := M.CallsSent.Value(); got != sent {
		t.Errorf("expired call was sent (CallsSent %d -> %d)", sent, got)
	}
}

// TestDeadlinePropagatesToHandler: the server must hand the handler a
// context that expires when the caller's budget does, and report the
// overrun as a deadline error (not an opaque ServerError).
func TestDeadlinePropagatesToHandler(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	s := NewServer()
	sawDeadline := make(chan time.Duration, 1)
	s.Handle(1, func(ctx context.Context, _ []byte) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			sawDeadline <- -1
		} else {
			sawDeadline <- time.Until(dl)
		}
		return nil, nil
	})
	s.Handle(2, func(ctx context.Context, _ []byte) ([]byte, error) {
		<-ctx.Done() // overrun the budget
		return nil, ctx.Err()
	})
	l, err := n.Host("srv").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(l)
	defer s.Close()
	c := dialTest(t, n, "srv:rpc")

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	rem := <-sawDeadline
	if rem <= 0 || rem > 400*time.Millisecond {
		t.Errorf("handler saw remaining budget %v, want (0, 400ms]", rem)
	}

	// Method 2 blocks until its propagated budget lapses; the client
	// must see DeadlineExceeded whichever side reports first.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := c.Call(ctx2, 2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("overrun err = %v, want DeadlineExceeded", err)
	}
}

// TestDeadlineShrinksHopByHop: A's handler calls B with its own
// handler context, so B must observe a strictly smaller budget than
// the client gave A.
func TestDeadlineShrinksHopByHop(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()

	bSrv := NewServer()
	bBudget := make(chan time.Duration, 1)
	bSrv.Handle(1, func(ctx context.Context, _ []byte) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			bBudget <- -1
		} else {
			bBudget <- time.Until(dl)
		}
		return nil, nil
	})
	lb, err := n.Host("b").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	bSrv.Start(lb)
	defer bSrv.Close()

	aSrv := NewServer()
	pool := NewPool(netDialer{n.Host("a")})
	defer pool.Close()
	aSrv.Handle(1, func(ctx context.Context, _ []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond) // burn part of the budget
		_, err := pool.Call(ctx, "b:rpc", 1, nil)
		return nil, err
	})
	la, err := n.Host("a").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	aSrv.Start(la)
	defer aSrv.Close()

	c := dialTest(t, n, "a:rpc")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	got := <-bBudget
	if got <= 0 {
		t.Fatal("B saw no deadline; budget was not propagated through A")
	}
	if got > 280*time.Millisecond {
		t.Errorf("B saw budget %v, want visibly less than the client's 300ms", got)
	}
}

// TestStalledClientIsCut pins the slowloris fix: a peer that begins a
// frame and stalls mid-header must have its connection closed once the
// stall timeout lapses, while byte-free idle connections live on.
func TestStalledClientIsCut(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	s := NewServer()
	s.Handle(mEcho, func(_ context.Context, body []byte) ([]byte, error) { return body, nil })
	s.SetStallTimeout(50 * time.Millisecond)
	l, err := n.Host("srv").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	s.Start(l)
	defer s.Close()

	// An idle connection (no bytes at all) must survive far past the
	// stall timeout and still work afterwards.
	idle := dialTest(t, n, "srv:rpc")
	time.Sleep(150 * time.Millisecond)
	if _, err := idle.Call(context.Background(), mEcho, []byte("still here")); err != nil {
		t.Fatalf("idle connection was cut: %v", err)
	}

	// A mid-frame stall — kind byte plus half the id, then silence —
	// must get the connection closed.
	raw, err := n.Host("cli").Dial("srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{kindRequest, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		one := make([]byte, 1)
		_, err := raw.Read(one)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned bytes; want connection closed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled connection was not cut within 2s")
	}
}
