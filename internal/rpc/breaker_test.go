package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"blob/internal/events"
	"blob/internal/netsim"
)

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := newBreaker(BreakerConfig{ConsecFails: 3}.withDefaults())
	for i := 0; i < 2; i++ {
		if opened, _ := b.record(true, 0); opened {
			t.Fatalf("opened after %d failures, want 3", i+1)
		}
	}
	opened, _ := b.record(true, 0)
	if !opened {
		t.Fatal("did not open after 3 consecutive failures")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call immediately")
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	cfg := BreakerConfig{ConsecFails: 1, OpenFor: 20 * time.Millisecond, ProbeEvery: 10 * time.Millisecond}.withDefaults()
	b := newBreaker(cfg)
	b.record(true, 0) // trip
	if b.allow() {
		t.Fatal("admitted during open window")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe admitted after OpenFor elapsed")
	}
	// Second call inside ProbeEvery must be denied (single probe).
	if b.allow() {
		t.Fatal("second probe admitted before ProbeEvery elapsed")
	}
	_, closed := b.record(false, time.Millisecond)
	if !closed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.allow() {
		t.Fatal("closed breaker denied a call")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	cfg := BreakerConfig{ConsecFails: 1, OpenFor: 10 * time.Millisecond}.withDefaults()
	b := newBreaker(cfg)
	b.record(true, 0)
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("no probe admitted")
	}
	if opened, _ := b.record(true, 0); !opened {
		t.Fatal("failed probe did not reopen")
	}
	if b.allow() {
		t.Fatal("reopened breaker admitted a call")
	}
}

func TestBreakerLatencyEWMATrips(t *testing.T) {
	cfg := BreakerConfig{LatencyTrip: 10 * time.Millisecond, MinSamples: 4, ConsecFails: 1000, ErrRate: 2}.withDefaults()
	b := newBreaker(cfg)
	// Successful but consistently slow calls must trip the breaker —
	// the alive-yet-crawling gray failure replication cannot mask.
	tripped := false
	for i := 0; i < 20; i++ {
		if opened, _ := b.record(false, 100*time.Millisecond); opened {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("20 slow successes never tripped the latency breaker")
	}
}

// TestPoolBreakerFailsFastAndRecovers runs the full loop against a real
// server: kill it, watch the breaker open (with a journal event), renew
// it, watch a probe close the breaker (with a journal event).
func TestPoolBreakerFailsFastAndRecovers(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	newServer := func() *Server {
		s := NewServer()
		s.Handle(mEcho, func(_ context.Context, body []byte) ([]byte, error) { return body, nil })
		l, err := n.Host("srv").Listen("rpc")
		if err != nil {
			t.Fatal(err)
		}
		s.Start(l)
		return s
	}
	s := newServer()

	j := events.NewJournal("cli", 0)
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()
	p.SetJournal(j)
	p.EnableBreakers(BreakerConfig{
		ConsecFails: 3,
		OpenFor:     30 * time.Millisecond,
		ProbeEvery:  10 * time.Millisecond,
	})

	ctx := context.Background()
	if _, err := p.Call(ctx, "srv:rpc", mEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if !p.Available("srv:rpc") {
		t.Fatal("healthy peer reported unavailable")
	}

	// Kill the server: calls fail until the breaker opens.
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.Available("srv:rpc") {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened against a dead peer")
		}
		p.Call(ctx, "srv:rpc", mEcho, []byte("x"))
	}
	if _, err := p.Call(ctx, "srv:rpc", mEcho, []byte("x")); err == nil {
		t.Fatal("call to dead open peer succeeded")
	}
	if len(p.OpenBreakers()) != 1 {
		t.Fatalf("OpenBreakers = %v, want [srv:rpc]", p.OpenBreakers())
	}

	// Revive the server: a half-open probe must close the breaker.
	s = newServer()
	defer s.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := p.Call(ctx, "srv:rpc", mEcho, []byte("probe")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after server revival")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !p.Available("srv:rpc") {
		t.Fatal("recovered peer still unavailable")
	}

	var sawOpen, sawClose bool
	for _, e := range j.Events() {
		switch e.Type {
		case events.BreakerOpen:
			sawOpen = true
		case events.BreakerClose:
			sawClose = true
		}
	}
	if !sawOpen || !sawClose {
		t.Fatalf("journal missing breaker transitions: open=%v close=%v", sawOpen, sawClose)
	}
}

// TestPoolBreakerOpenError pins the fast-fail error for routing layers.
func TestPoolBreakerOpenError(t *testing.T) {
	n := netsim.New(netsim.Fast())
	defer n.Close()
	p := NewPool(netDialer{n.Host("cli")})
	defer p.Close()
	p.EnableBreakers(BreakerConfig{ConsecFails: 1, OpenFor: time.Minute})

	ctx := context.Background()
	p.Call(ctx, "ghost:rpc", mEcho, nil) // dial failure trips instantly
	_, err := p.Call(ctx, "ghost:rpc", mEcho, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
}
