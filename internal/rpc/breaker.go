package rpc

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by pool calls to a peer whose circuit
// breaker is open: recent traffic to that peer failed or crawled, so
// new calls fail fast instead of queueing behind a browning-out node.
// Routing layers treat it like a missing replica — try the next one.
var ErrBreakerOpen = errors.New("rpc: peer circuit breaker open")

// Breaker states, in transition order.
const (
	breakerClosed   = iota // normal operation
	breakerOpen            // failing fast; no traffic except scheduled probes
	breakerHalfOpen        // probing: limited traffic decides open vs closed
)

// BreakerConfig tunes the per-peer circuit breakers a Pool maintains
// (see docs/robustness.md for the state machine). The zero value turns
// every knob into its listed default.
type BreakerConfig struct {
	// ErrRate trips the breaker when the error-rate EWMA exceeds it
	// with at least MinSamples observations folded in. Default 0.5.
	ErrRate float64
	// MinSamples gates both EWMA trips. Default 8.
	MinSamples int
	// ConsecFails trips the breaker outright after this many
	// consecutive failures, regardless of the EWMA. Default 5.
	ConsecFails int
	// LatencyTrip, when > 0, trips the breaker once the success
	// latency EWMA exceeds it — the gray-failure case where a peer
	// answers everything, slowly. Default 0 (disabled).
	LatencyTrip time.Duration
	// OpenFor is how long the breaker stays open before the first
	// half-open probe. Default 500ms.
	OpenFor time.Duration
	// ProbeEvery spaces half-open probes, so an unhealed peer sees a
	// trickle of traffic rather than a thundering herd. Default 250ms.
	ProbeEvery time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ErrRate <= 0 {
		c.ErrRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.ConsecFails <= 0 {
		c.ConsecFails = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	return c
}

// ewmaAlpha weights each new observation in the error-rate and latency
// EWMAs: high enough that ~10 bad calls dominate the history, low
// enough that one blip does not trip anything.
const ewmaAlpha = 0.2

// breaker is one peer's circuit breaker. All methods are safe for
// concurrent use.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     int
	errEWMA   float64       // failure rate, 0..1
	latEWMA   time.Duration // success latency
	samples   int
	consec    int       // consecutive failures
	openedAt  time.Time // state == breakerOpen
	lastProbe time.Time // state == breakerHalfOpen
	trips     int64
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg}
}

// allow reports whether a call to this peer may proceed right now.
// Open breakers deny until OpenFor has elapsed, then admit one probe
// per ProbeEvery via the half-open state.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = breakerHalfOpen
		b.lastProbe = now
		return true
	default: // breakerHalfOpen
		if now.Sub(b.lastProbe) < b.cfg.ProbeEvery {
			return false
		}
		b.lastProbe = now
		return true
	}
}

// available reports whether routing should consider this peer at all —
// like allow, but without consuming a probe slot.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return true
	}
	return time.Since(b.openedAt) >= b.cfg.OpenFor
}

// record folds one call outcome in and returns the state transition it
// caused: opened (closed/half-open → open) or closed (half-open →
// closed). failure should be true for transport errors and blown
// deadlines — not application errors, which prove the peer healthy.
func (b *breaker) record(failure bool, latency time.Duration) (opened, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.samples++
	if failure {
		b.consec++
		b.errEWMA += ewmaAlpha * (1 - b.errEWMA)
	} else {
		b.consec = 0
		b.errEWMA *= 1 - ewmaAlpha
		if latency > 0 {
			if b.latEWMA == 0 {
				b.latEWMA = latency
			} else {
				b.latEWMA += time.Duration(ewmaAlpha * float64(latency-b.latEWMA))
			}
		}
	}

	switch b.state {
	case breakerHalfOpen:
		if failure {
			b.trip()
			return true, false
		}
		return b.probeSucceeded()
	case breakerOpen:
		// Async callers (Go/GoVec) never pass through allow, so their
		// outcomes reach an open breaker directly. Once OpenFor has
		// elapsed, routing re-admits the peer (available) and these
		// observations are its probes: a success closes the breaker, a
		// failure re-arms the open window.
		if time.Since(b.openedAt) < b.cfg.OpenFor {
			return false, false
		}
		if failure {
			b.trip()
			return false, false // still open: no new transition to journal
		}
		return b.probeSucceeded()
	case breakerClosed:
		tripNow := b.consec >= b.cfg.ConsecFails ||
			(b.samples >= b.cfg.MinSamples && b.errEWMA > b.cfg.ErrRate) ||
			(b.cfg.LatencyTrip > 0 && b.samples >= b.cfg.MinSamples && b.latEWMA > b.cfg.LatencyTrip)
		if tripNow {
			b.trip()
			return true, false
		}
	}
	return false, false
}

// probeSucceeded closes the breaker after a healthy probe and resets
// the history that tripped it; latency keeps its reading so a
// still-slow peer re-trips quickly. Caller holds b.mu.
func (b *breaker) probeSucceeded() (opened, closed bool) {
	b.state = breakerClosed
	b.errEWMA, b.samples, b.consec = 0, 0, 0
	if b.cfg.LatencyTrip > 0 && b.latEWMA > b.cfg.LatencyTrip {
		b.trip()
		return true, true // closed and immediately re-opened
	}
	return false, true
}

// trip moves to open; caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.trips++
}

// snapshot returns the state and trip count for gauges and tests.
func (b *breaker) snapshot() (state int, trips int64, errRate float64, lat time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.errEWMA, b.latEWMA
}
