package rpc

import (
	"context"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"blob/internal/netsim"
)

// These tests feed the server malformed byte streams and confirm it
// closes the connection cleanly instead of panicking, corrupting other
// connections, or leaking the accept loop.

func rawDial(t *testing.T, n *netsim.Net, addr string) io.ReadWriteCloser {
	t.Helper()
	c, err := n.Host("attacker").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerSurvivesGarbageStream(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	raw := rawDial(t, n, addr)
	raw.Write([]byte("this is definitely not the protocol"))
	raw.Close()

	// A well-behaved client on the same server still works.
	c := dialTest(t, n, addr)
	got, err := c.Call(context.Background(), mEcho, []byte("still alive"))
	if err != nil || string(got) != "still alive" {
		t.Fatalf("healthy client after garbage: %q, %v", got, err)
	}
}

func TestServerSurvivesTruncatedRequest(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	raw := rawDial(t, n, addr)
	// A valid prefix: kind + id + method, then a length prefix promising
	// 1000 bytes that never arrive.
	buf := []byte{kindRequest}
	buf = binary.LittleEndian.AppendUint64(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, mEcho)
	buf = binary.AppendUvarint(buf, 1000)
	buf = append(buf, []byte("short")...)
	raw.Write(buf)
	raw.Close() // EOF mid-body

	c := dialTest(t, n, addr)
	if _, err := c.Call(context.Background(), mEcho, []byte("x")); err != nil {
		t.Fatalf("server wedged by truncated request: %v", err)
	}
}

func TestServerRejectsOversizedBody(t *testing.T) {
	n, addr := newTestServer(t, netsim.Fast())
	raw := rawDial(t, n, addr)
	buf := []byte{kindRequest}
	buf = binary.LittleEndian.AppendUint64(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, mEcho)
	buf = binary.AppendUvarint(buf, MaxBody+1) // absurd length claim
	raw.Write(buf)

	// The server must drop the connection rather than try to allocate.
	done := make(chan struct{})
	go func() {
		defer close(done)
		one := make([]byte, 1)
		raw.Read(one) // returns when the server closes
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("server did not drop connection with oversized length")
	}

	c := dialTest(t, n, addr)
	if _, err := c.Call(context.Background(), mEcho, []byte("y")); err != nil {
		t.Fatalf("server unusable after oversized claim: %v", err)
	}
}

func TestClientSurvivesGarbageResponse(t *testing.T) {
	// A fake "server" that answers with protocol garbage: the client
	// must fail all pending calls with an error, not hang or panic.
	n := netsim.New(netsim.Fast())
	defer n.Close()
	l, err := n.Host("evil").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Read a bit then spew garbage.
		buf := make([]byte, 64)
		conn.Read(buf)
		conn.Write([]byte{0xff, 0xee, 0xdd})
		conn.Close()
	}()

	c, err := Dial(netDialer{n.Host("cli")}, "evil:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, mEcho, []byte("hello?")); err == nil {
		t.Fatal("call against garbage-speaking server succeeded")
	}
	if !c.Closed() {
		t.Error("client should close after protocol error")
	}
}

func TestServerDuplicateHandlerPanics(t *testing.T) {
	s := NewServer()
	s.Handle(1, func(context.Context, []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Handle should panic")
		}
	}()
	s.Handle(1, func(context.Context, []byte) ([]byte, error) { return nil, nil })
}

func TestConcurrentClientsIndependentFailure(t *testing.T) {
	// Killing one client's connection must not affect another client of
	// the same server.
	n, addr := newTestServer(t, netsim.Fast())
	c1 := dialTest(t, n, addr)
	c2 := dialTest(t, n, addr)
	c1.Close()
	if _, err := c2.Call(context.Background(), mEcho, []byte("independent")); err != nil {
		t.Fatalf("c2 affected by c1's close: %v", err)
	}
}
