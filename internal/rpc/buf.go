package rpc

// Pooled message-body buffers for the inbound half of the framework.
// Every request body a server reads and every response body a client
// reads lands in a size-classed sync.Pool buffer instead of a fresh
// allocation, so a busy connection recycles a small working set of
// buffers instead of churning the garbage collector — the client-CPU
// half of the paper's §V.C observation that processing power, not the
// network, bounds fine-grain throughput.
//
// Ownership protocol:
//
//   - The reader that filled a Buf owns it until it hands it off (to the
//     handler goroutine on a server, to the completed call on a client).
//   - Exactly one Release returns the buffer to its pool. Release is
//     guarded by an atomic swap, so a double release can never insert
//     the same buffer into the pool twice (no aliased reuse — impossible
//     by construction); the second Release panics to make the bug loud.
//   - Bytes panics after Release, so use-after-release fails fast
//     instead of silently reading recycled memory.
//   - Never calling Release is always safe: the buffer is simply
//     garbage-collected and the pool refills on demand.

import (
	"sync"
	"sync/atomic"
)

// bufClasses are the pooled capacity classes. Bodies above the largest
// class fall back to plain allocation (MaxBody-sized messages are rare
// enough that pinning them in pools would waste memory).
var bufClasses = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

var bufPools [len(bufClasses)]sync.Pool

// Buf is one pooled message body. The zero value is invalid; Bufs come
// from getBuf only.
type Buf struct {
	data     []byte
	ref      *[]byte // full-capacity backing slice, nil when unpooled
	cls      int
	released atomic.Bool
}

// getBuf returns a buffer holding n writable bytes, pooled when a size
// class fits.
func getBuf(n int) *Buf {
	for cls, size := range bufClasses {
		if n <= size {
			ref, _ := bufPools[cls].Get().(*[]byte)
			if ref == nil {
				s := make([]byte, size)
				ref = &s
			}
			return &Buf{data: (*ref)[:n], ref: ref, cls: cls}
		}
	}
	return &Buf{data: make([]byte, n), cls: -1}
}

// Bytes returns the body. The slice is valid until Release.
func (b *Buf) Bytes() []byte {
	if b.released.Load() {
		panic("rpc: Buf.Bytes after Release")
	}
	return b.data
}

// Len returns the body length without the release check (metrics).
func (b *Buf) Len() int { return len(b.data) }

// Release returns the buffer to its pool. It must be called at most
// once, by the final owner, after the body bytes are no longer needed;
// calling it twice panics, and the swap guarantee means even a
// panicking double release cannot hand the buffer to two users.
func (b *Buf) Release() {
	if b.released.Swap(true) {
		panic("rpc: Buf double Release")
	}
	if b.ref != nil {
		ref := b.ref
		b.ref, b.data = nil, nil
		bufPools[b.cls].Put(ref)
	} else {
		b.data = nil
	}
}
