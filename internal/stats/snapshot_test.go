package stats

import (
	"strings"
	"testing"
	"time"

	"blob/internal/wire"
)

func TestSnapshotMergeQuantile(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 90; i++ {
		a.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.Observe(10 * time.Millisecond)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 100 {
		t.Fatalf("merged count = %d, want 100", s.Count)
	}
	if s.Max() != 10*time.Millisecond {
		t.Errorf("merged max = %v, want 10ms", s.Max())
	}
	// p50 must land in the fast population, p99 in the slow one.
	if p50 := s.Quantile(0.50); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want sub-millisecond", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 5*time.Millisecond {
		t.Errorf("p99 = %v, want in the 10ms band", p99)
	}
	// Single-histogram quantiles agree with snapshot quantiles.
	if a.Quantile(0.99) != a.Snapshot().Quantile(0.99) {
		t.Error("Histogram.Quantile disagrees with its own snapshot")
	}
}

func TestSnapshotEmptyMerge(t *testing.T) {
	var s HistogramSnapshot
	s.Merge(HistogramSnapshot{})
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("empty merged snapshot should report zeros")
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	want := h.Snapshot()

	var w wire.Writer
	want.EncodeTo(&w)
	w.String("tail") // snapshots must not consume past their end

	r := wire.NewReader(w.Bytes())
	got, err := DecodeSnapshotFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if r.String() != "tail" {
		t.Error("decode consumed past the snapshot")
	}

	// A bucket count beyond the fixed array is rejected, not written
	// out of bounds.
	var bad wire.Writer
	bad.Uvarint(64)
	if _, err := DecodeSnapshotFrom(wire.NewReader(bad.Bytes())); err == nil {
		t.Error("oversized bucket count accepted")
	}
}

func TestObserveExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(100*time.Microsecond, 0xabcd)
	h.ObserveExemplar(100*time.Microsecond, 0) // untraced: keeps prior exemplar
	b := bucketOf(100)
	if got := h.Exemplar(b); got != 0xabcd {
		t.Fatalf("exemplar = %#x, want 0xabcd", got)
	}
	h.ObserveExemplar(100*time.Microsecond, 0xbeef) // last traced writer wins
	if got := h.Exemplar(b); got != 0xbeef {
		t.Fatalf("exemplar = %#x, want 0xbeef", got)
	}
	if h.Exemplar(-1) != 0 || h.Exemplar(99) != 0 {
		t.Error("out-of-range exemplar index should return 0")
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3 (exemplar observations still count)", h.Count())
	}
}

func TestPrometheusExemplarComment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label("req_seconds", "method", "MGet"))
	h.ObserveExemplar(100*time.Microsecond, 0xdead)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# exemplar ") || !strings.Contains(out, "trace=000000000000dead") {
		t.Errorf("exposition missing exemplar comment:\n%s", out)
	}
	// The comment must reference the bucket series it annotates.
	if !strings.Contains(out, `# exemplar req_seconds_bucket{method="MGet",le=`) {
		t.Errorf("exemplar comment not tied to its bucket series:\n%s", out)
	}
}
