package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label builds a metric name with Prometheus-style labels:
// Label("rpc_calls_total", "method", "MPutPages") returns
// `rpc_calls_total{method="MPutPages"}`. Values are escaped per the
// text exposition format (backslash, quote, newline). kv must hold an
// even number of strings; keys are emitted in the given order.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// family returns the metric family of a possibly-labeled series name:
// everything before the first '{'.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel appends one more label to a possibly-labeled series name,
// used to thread `le` into histogram bucket series.
func withLabel(name, key, value string) string {
	esc := escapeLabelValue(value)
	if strings.IndexByte(name, '{') >= 0 {
		return name[:len(name)-1] + "," + key + `="` + esc + `"}`
	}
	return name + "{" + key + `="` + esc + `"}`
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Output is sorted by family
// then series name, so it is stable across runs and safe to pin with
// golden tests. Histograms are exported with cumulative `_bucket`
// series in seconds plus `_sum` and `_count`, matching native
// Prometheus histogram conventions.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type series struct {
		name string
		kind string // counter | gauge
		val  int64
	}
	var scalars []series
	for n, c := range r.counters {
		scalars = append(scalars, series{n, "counter", c.Value()})
	}
	for n, f := range r.counterFuncs {
		scalars = append(scalars, series{n, "counter", f()})
	}
	for n, g := range r.gauges {
		scalars = append(scalars, series{n, "gauge", g.Value()})
	}
	for n, f := range r.gaugeFuncs {
		scalars = append(scalars, series{n, "gauge", f()})
	}
	type hseries struct {
		name string
		h    *Histogram
	}
	var hists []hseries
	for n, h := range r.histograms {
		hists = append(hists, hseries{n, h})
	}
	r.mu.Unlock()

	sort.Slice(scalars, func(i, j int) bool { return scalars[i].name < scalars[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	var lastFamily string
	for _, s := range scalars {
		if f := family(s.name); f != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, s.kind); err != nil {
				return err
			}
			lastFamily = f
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.val); err != nil {
			return err
		}
	}
	for _, hs := range hists {
		if f := family(hs.name); f != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", f); err != nil {
				return err
			}
			lastFamily = f
		}
		if err := writeHistogram(w, hs.name, hs.h); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	fam := family(name)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 {
			continue // keep the exposition compact; +Inf always closes the series
		}
		_, hi := bucketBounds(i)
		le := fmt.Sprintf("%g", float64(hi)/1e6) // µs bound → seconds
		series := withLabel(fam+"_bucket"+name[len(fam):], "le", le)
		if _, err := fmt.Fprintf(w, "%s %d\n", series, cum); err != nil {
			return err
		}
		// Exemplar trace IDs ride as comment lines (the 0.0.4 text
		// format has no exemplar syntax; comments keep every parser
		// happy while `blobctl trace <id>` can still pivot from them).
		if ex := h.exemplars[i].Load(); ex != 0 {
			if _, err := fmt.Fprintf(w, "# exemplar %s trace=%016x\n", series, ex); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(fam+"_bucket"+name[len(fam):], "le", "+Inf"), h.count.Load()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", fam+"_sum"+name[len(fam):], float64(h.sumUS.Load())/1e6); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", fam+"_count"+name[len(fam):], h.count.Load())
	return err
}
