package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("Counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Gauge = %d, want 7", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("Mean = %v, want ~50ms", mean)
	}
	if h.Max() < 100*time.Millisecond {
		t.Errorf("Max = %v, want >= 100ms", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 32*time.Millisecond || p50 > 128*time.Millisecond {
		t.Errorf("p50 = %v, want within a power-of-two of 50ms", p50)
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Error("quantiles must be monotone")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clock skew should not panic or corrupt
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.String()
	if !strings.Contains(s, "n=1") {
		t.Errorf("String = %q, want n=1", s)
	}
}

func TestRate(t *testing.T) {
	r := NewRate()
	r.Add(1000)
	time.Sleep(10 * time.Millisecond)
	ps := r.PerSecond()
	if ps <= 0 {
		t.Errorf("PerSecond = %v, want > 0", ps)
	}
	if r.Total() != 1000 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(3)
	r.Counter("writes").Inc()
	r.Counter("reads").Inc()
	snap := r.Snapshot()
	if snap["reads"] != 4 || snap["writes"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	s := r.String()
	if !strings.Contains(s, "reads=4") || !strings.Contains(s, "writes=1") {
		t.Errorf("String = %q", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot()["shared"]; got != 800 {
		t.Errorf("shared = %d, want 800", got)
	}
}

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1 << 31, 31}, {1 << 40, 31}}
	for _, c := range cases {
		if got := bucketOf(c.us); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}
