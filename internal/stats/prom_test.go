package stats

import (
	"strings"
	"testing"
	"time"
)

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Errorf("no labels: %q", got)
	}
	if got := Label("x_total", "a", "1", "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Errorf("two labels: %q", got)
	}
	if got := Label("x_total", "p", "a\"b\\c\nd"); got != `x_total{p="a\"b\\c\nd"}` {
		t.Errorf("escaping: %q", got)
	}
}

// TestQuantileInterpolation pins the satellite change: Quantile must
// interpolate linearly inside its bucket rather than returning the
// bare power-of-two upper bound.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 100 samples spread across bucket 10 ([1024µs, 2048µs)).
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(1024+i*10) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 1024*time.Microsecond || p50 >= 2048*time.Microsecond {
		t.Fatalf("p50 = %v, want strictly inside (1024µs, 2048µs)", p50)
	}
	// The old behavior returned the bucket's upper bound exactly.
	if p50 == 2048*time.Microsecond {
		t.Fatal("p50 is the raw bucket bound; interpolation missing")
	}
	// With uniform spread over [1024µs, 2014µs] the midpoint estimate
	// should land near the true median (~1519µs under the clamped
	// bucket model); allow generous slack for the bucket approximation.
	if p50 < 1300*time.Microsecond || p50 > 1750*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1.5ms", p50)
	}
	if got, max := h.Quantile(1.0), h.Max(); got != max {
		t.Fatalf("Quantile(1) = %v, want Max = %v", got, max)
	}
	if h.Quantile(0.25) >= h.Quantile(0.75) {
		t.Fatal("quantiles must be monotone under interpolation")
	}
}

func TestRegistryGaugesAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").Set(5)
	r.Histogram("lat").Observe(time.Millisecond)
	if r.Gauge("depth").Value() != 5 {
		t.Error("gauge not shared by name")
	}
	if r.Histogram("lat").Count() != 1 {
		t.Error("histogram not shared by name")
	}
	live := int64(1)
	r.CounterFunc("ops_total", func() int64 { return live })
	r.GaugeFunc("temp", func() int64 { return 20 })
	live = 9
	snap := r.Snapshot()
	if snap["depth"] != 5 || snap["ops_total"] != 9 || snap["temp"] != 20 {
		t.Errorf("Snapshot = %v", snap)
	}
}

// TestWritePrometheusGolden pins the full text exposition: stable
// sort order, one TYPE line per family, label escaping, and the
// cumulative-seconds histogram encoding.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("blob_reads_total").Add(4)
	r.Counter(Label("rpc_calls_total", "method", "MPutPages")).Add(7)
	r.Counter(Label("rpc_calls_total", "method", "MGetPages")).Add(2)
	r.Gauge("blob_pages").Set(12)
	r.GaugeFunc("process_uptime", func() int64 { return 3 })
	r.Counter(Label("weird_total", "path", "a\"b\\c\nd")).Inc()
	h := r.Histogram(Label("op_latency_seconds", "op", "write"))
	h.Observe(1500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)

	const want = `# TYPE blob_pages gauge
blob_pages 12
# TYPE blob_reads_total counter
blob_reads_total 4
# TYPE process_uptime gauge
process_uptime 3
# TYPE rpc_calls_total counter
rpc_calls_total{method="MGetPages"} 2
rpc_calls_total{method="MPutPages"} 7
# TYPE weird_total counter
weird_total{path="a\"b\\c\nd"} 1
# TYPE op_latency_seconds histogram
op_latency_seconds_bucket{op="write",le="0.002048"} 1
op_latency_seconds_bucket{op="write",le="0.004096"} 3
op_latency_seconds_bucket{op="write",le="+Inf"} 3
op_latency_seconds_sum{op="write"} 0.0075
op_latency_seconds_count{op="write"} 3
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	// A second render must be byte-identical (stable ordering).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("exposition not stable across renders")
	}
}
