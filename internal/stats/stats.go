// Package stats provides the lightweight metrics primitives used across
// the system: monotone counters, fixed-bucket latency histograms and
// windowed rates. Services expose these through their Stats RPCs and the
// benchmark harness aggregates them to regenerate the paper's figures
// (bandwidth per client, RPC counts saved by batching or caching).
//
// All primitives are safe for concurrent use and allocation-free on the
// hot path.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable 64-bit value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records durations into exponential buckets:
// bucket i covers [2^i, 2^(i+1)) microseconds, with the last bucket
// catching everything beyond. It answers approximate quantiles, which
// is all the experiment reports need.
type Histogram struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	// exemplars[i] holds the trace ID of the most recent traced
	// observation that landed in bucket i (0 = none yet), giving each
	// latency bucket a concrete request to pivot into via MSpans.
	exemplars [32]atomic.Uint64
}

func bucketOf(us int64) int {
	if us < 1 {
		return 0
	}
	b := 63 - bits.LeadingZeros64(uint64(us))
	if b > 31 {
		b = 31
	}
	return b
}

// bucketBounds returns bucket i's value range [lo, hi) in microseconds.
// Bucket 0 also absorbs zero; the last bucket is open-ended (hi is only
// its nominal boundary).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 2
	}
	return 1 << uint(i), 1 << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.buckets[bucketOf(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// ObserveExemplar records one duration and, when traceID is nonzero,
// remembers it as the bucket's exemplar: a real request whose span tree
// explains that latency band. The last writer wins, which is exactly
// the freshness an operator pivoting from a histogram wants.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	if traceID != 0 {
		h.exemplars[bucketOf(us)].Store(traceID)
	}
	h.Observe(d)
}

// Exemplar returns the trace ID most recently recorded for bucket i
// (0 when the bucket has never seen a traced observation).
func (h *Histogram) Exemplar(i int) uint64 {
	if i < 0 || i >= len(h.exemplars) {
		return 0
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/n) * time.Microsecond
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// containing the target rank and interpolating linearly within its
// value range, assuming observations spread uniformly inside a bucket.
// The estimate is clamped to the observed maximum, so Quantile(1) ==
// Max and the tail bucket (whose upper bound is open) stays honest.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets —
// a plain value that travels over RPCs (see EncodeTo/DecodeSnapshot)
// and merges with snapshots from other nodes, which is how the monitor
// computes cluster-wide quantiles from per-node histograms.
type HistogramSnapshot struct {
	Buckets [32]int64
	Count   int64
	SumUS   int64
	MaxUS   int64
}

// Snapshot copies the histogram's current state. Buckets are loaded
// individually, so a snapshot taken during concurrent observation may
// be off by the in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	s.MaxUS = h.maxUS.Load()
	return s
}

// Merge folds another snapshot into s (bucket-wise sum, max of maxes).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumUS += o.SumUS
	if o.MaxUS > s.MaxUS {
		s.MaxUS = o.MaxUS
	}
}

// Max returns the largest observation in the snapshot.
func (s HistogramSnapshot) Max() time.Duration {
	return time.Duration(s.MaxUS) * time.Microsecond
}

// Mean returns the snapshot's mean observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumUS/s.Count) * time.Microsecond
}

// Quantile estimates the q-quantile of the snapshot; see
// Histogram.Quantile for the interpolation rules.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := int64(0)
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	max := s.Max()
	var cum int64
	for i := range s.Buckets {
		n := s.Buckets[i]
		cum += n
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(i)
		if hiUS := max.Microseconds(); hiUS < hi {
			hi = hiUS // the bucket holding the max cannot extend past it
		}
		// Position of the target rank within this bucket's n samples.
		frac := float64(rank-(cum-n)) / float64(n)
		est := time.Duration(float64(lo)+frac*float64(hi-lo)) * time.Microsecond
		if est > max {
			est = max
		}
		return est
	}
	return max
}

// String summarizes the histogram for logs and experiment output.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Rate measures throughput: bytes (or events) per elapsed wall time.
type Rate struct {
	start time.Time
	n     atomic.Int64
}

// NewRate starts a rate measurement now.
func NewRate() *Rate { return &Rate{start: time.Now()} }

// Add records n units.
func (r *Rate) Add(n int64) { r.n.Add(n) }

// Total returns the accumulated units.
func (r *Rate) Total() int64 { return r.n.Load() }

// PerSecond returns units per second since the rate was created.
func (r *Rate) PerSecond() float64 {
	el := time.Since(r.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.n.Load()) / el
}

// Registry is a named collection of metrics: counters, gauges,
// histograms and function-backed series. Names may carry Prometheus
// style labels ("rpc_calls_total{method=\"MPutPages\"}"); the part
// before the first '{' is the metric family. Handy for snapshotting a
// service's state over an RPC and for serving /metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// Function-backed series let a registry export values owned
	// elsewhere (rpc.Metrics, provider.Stats) without double counting:
	// the function is evaluated at scrape time.
	counterFuncs map[string]func() int64
	gaugeFuncs   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		histograms:   make(map[string]*Histogram),
		counterFuncs: make(map[string]func() int64),
		gaugeFuncs:   make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterFunc registers a counter series whose value comes from f at
// read time. Re-registering a name replaces the previous function.
func (r *Registry) CounterFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = f
}

// GaugeFunc registers a gauge series whose value comes from f at read
// time. Re-registering a name replaces the previous function.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Snapshot returns a copy of all scalar values (counters, gauges and
// function-backed series; histograms are omitted).
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+len(r.counterFuncs)+len(r.gaugeFuncs))
	for k, v := range r.counters {
		out[k] = v.Value()
	}
	for k, v := range r.gauges {
		out[k] = v.Value()
	}
	for k, f := range r.counterFuncs {
		out[k] = f()
	}
	for k, f := range r.gaugeFuncs {
		out[k] = f()
	}
	return out
}

// String renders the snapshot sorted by name.
func (r *Registry) String() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}
