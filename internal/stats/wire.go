package stats

import (
	"fmt"

	"blob/internal/wire"
)

// Histogram snapshots travel inside latency RPCs (provider.MLatency)
// so the monitor can merge per-node distributions into cluster
// quantiles. The encoding trims trailing empty buckets: a histogram
// whose slowest observation sits in bucket 12 costs 13 varints, not 32.

// EncodeTo appends the snapshot to w.
func (s HistogramSnapshot) EncodeTo(w *wire.Writer) {
	n := len(s.Buckets)
	for n > 0 && s.Buckets[n-1] == 0 {
		n--
	}
	w.Uvarint(uint64(n))
	for i := 0; i < n; i++ {
		w.Varint(s.Buckets[i])
	}
	w.Varint(s.Count)
	w.Varint(s.SumUS)
	w.Varint(s.MaxUS)
}

// DecodeSnapshotFrom reads one snapshot written by EncodeTo. It leaves
// r positioned after the snapshot, so several can be concatenated.
func DecodeSnapshotFrom(r *wire.Reader) (HistogramSnapshot, error) {
	var s HistogramSnapshot
	n := r.Uvarint()
	if n > uint64(len(s.Buckets)) {
		return s, fmt.Errorf("stats: snapshot has %d buckets, max %d", n, len(s.Buckets))
	}
	for i := uint64(0); i < n; i++ {
		s.Buckets[i] = r.Varint()
	}
	s.Count = r.Varint()
	s.SumUS = r.Varint()
	s.MaxUS = r.Varint()
	return s, r.Err()
}
