// Package repair implements the replica repair agent: the active half
// of the provider-side repair protocol specified in docs/replication.md.
// The agent walks a blob's metadata to learn where every page replica
// should live, asks each involved provider what it actually holds
// (MListWrites — an exact write list plus a bloom digest, never full
// page lists), and directs each degraded provider to pull its missing
// pages straight from a healthy peer (MPullPages). Page bytes flow
// provider-to-provider only; the agent moves metadata-sized messages,
// so one small process can heal a large cluster.
//
// Repair is safe to over-approximate and to re-run: providers store
// pulled pages with the same first-wins idempotent puts the write path
// uses, and the pulling provider skips pages it already holds. A second
// pass reporting zero missing pages is therefore the agent's
// convergence proof, and what the tests assert.
package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"blob/internal/core"
	"blob/internal/events"
	"blob/internal/meta"
	"blob/internal/mstore"
	"blob/internal/provider"
	"blob/internal/trace"
	"blob/internal/vmanager"
)

// Repairer drives repair through an ordinary client connection: the
// metadata traversal uses the client's mstore, and the control RPCs its
// connection pool. It holds no state between runs.
type Repairer struct {
	c *core.Client
	// Log, when set, receives progress lines (blobnode wires its logger).
	Log func(format string, args ...any)
	// Journal, when set, records sweep-level cluster events
	// (repair-start/finish, redundancy degradation) for the monitor.
	Journal *events.Journal
}

// New creates a repair agent over an established client.
func New(c *core.Client) *Repairer { return &Repairer{c: c} }

func (r *Repairer) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// Report summarizes one repair pass.
type Report struct {
	// PagesChecked counts (page, replica) slots examined; PagesMissing
	// how many were found degraded. PagesRepaired/BytesPulled are the
	// slots restored and the page bytes that moved between providers for
	// them; PagesSkipped were reported already-held by the pulling
	// provider (a racing read-repair or earlier pass got there first).
	PagesChecked  int64
	PagesMissing  int64
	PagesRepaired int64
	BytesPulled   int64
	PagesSkipped  int64
	// BloomSkips counts slots settled from MListWrites results alone —
	// no page data RPC — either ruled healthy (counts and digest agree)
	// or ruled definitely-missing by the digest.
	BloomSkips int64
	// Erasure-coded stripes (docs/erasure.md): PagesReconstructed counts
	// shards the agent rebuilt by decoding k survivors and re-pushed to
	// their providers; ReconstructedBytes is the payload pushed for
	// them (the bytes the degraded providers had to ingest — compare
	// with BytesPulled for replication); SurvivorBytes the shard bytes
	// the agent read to feed the decodes.
	PagesReconstructed int64
	ReconstructedBytes int64
	SurvivorBytes      int64
	// Unrepairable counts slots that stayed degraded: no healthy peer
	// holds the page, or the degraded provider is unreachable.
	Unrepairable int64
	// ProviderErrors counts providers that could not be queried or
	// instructed (down or erroring); their slots count as Unrepairable.
	ProviderErrors int
}

// FullyRedundant reports whether the pass left every replica slot
// restored: nothing unrepairable and every provider answerable. (Every
// missing slot that was fixed shows up in PagesRepaired or PagesSkipped;
// anything else lands in Unrepairable.)
func (rep Report) FullyRedundant() bool {
	return rep.Unrepairable == 0 && rep.ProviderErrors == 0
}

// pageNeed is one page's placement: where its replicas must live.
type pageNeed struct {
	write uint64
	rel   uint32
	sum   uint64
	provs []uint32
}

// RepairBlob runs one repair pass over every published version of one
// blob and returns what it found and fixed. A pass is idempotent;
// callers needing a convergence proof run a second pass and check
// Report.FullyRedundant with zero missing.
func (r *Repairer) RepairBlob(ctx context.Context, blobID uint64) (rep Report, err error) {
	ctx, op := r.c.Tracer().Root(ctx, "repair.RepairBlob")
	if op != nil {
		defer func() { op.EndErr(err) }()
	}
	b, err := r.c.OpenBlob(ctx, blobID)
	if err != nil {
		return rep, err
	}
	latest, _, err := b.Latest(ctx)
	if err != nil {
		return rep, err
	}
	if latest == 0 {
		return rep, nil // nothing published, nothing to repair
	}

	// The written extents, from the version manager's history: metadata
	// is walked only over pages some write actually covered, never the
	// whole virtual blob (a TB-scale blob is almost entirely zero pages
	// the tree resolves without any provider holding anything).
	hist, err := r.c.VersionManager().History(ctx, blobID, 0, latest)
	if err != nil {
		return rep, err
	}
	extents := mergeExtents(hist)
	if len(extents) == 0 {
		return rep, nil
	}

	// Collect every page's placement across all published versions.
	// (write, rel) identifies page content; the same pair always maps to
	// the same replicas and checksum, so later versions just dedupe.
	type pageKey struct {
		write uint64
		rel   uint32
	}
	needs := make(map[pageKey]pageNeed)
	stripes := make(map[stripeKey]*stripeState)
walk:
	for v := latest; v >= 1; v-- {
		for _, ext := range extents {
			leaves, err := b.ReadMeta(ctx, ext.First*b.PageSize(), ext.Count*b.PageSize(), v)
			if err != nil {
				if v < latest && errors.Is(err, mstore.ErrMissingNode) {
					// An older version whose nodes are gone has been
					// garbage collected (versions collect bottom-up), so
					// everything below it is gone too: stop walking back.
					// Its surviving pages are exactly the ones later
					// versions still reference — already gathered above.
					break walk
				}
				// Anything else — latest's tree, or a transient metadata
				// failure at any version — must fail the pass: silently
				// shrinking the walk would let the report claim full
				// redundancy for slots it never examined.
				return rep, fmt.Errorf("repair: metadata of blob %d v%d: %w", blobID, v, err)
			}
			for _, l := range leaves {
				if l.Leaf.Write == 0 {
					continue // never-written page: nothing stored anywhere
				}
				if s := l.Leaf.Stripe; s != nil {
					// Erasure-coded page: repaired per stripe, by
					// reconstruction rather than replica pulls.
					sk := stripeKey{l.Leaf.Write, s.FirstRel}
					st := stripes[sk]
					if st == nil {
						st = &stripeState{write: l.Leaf.Write, ref: s, refd: make(map[int]bool)}
						stripes[sk] = st
					}
					if slot := s.SlotOf(l.Leaf.RelPage); slot >= 0 {
						st.refd[slot] = true
					}
					continue
				}
				k := pageKey{l.Leaf.Write, l.Leaf.RelPage}
				if _, ok := needs[k]; !ok {
					needs[k] = pageNeed{
						write: l.Leaf.Write, rel: l.Leaf.RelPage,
						sum: l.Leaf.Checksum, provs: l.Leaf.Providers,
					}
				}
			}
		}
	}
	if len(needs) == 0 && len(stripes) == 0 {
		return rep, nil
	}

	// Resolve provider addresses once.
	infos, err := r.c.AllProviders(ctx)
	if err != nil {
		return rep, err
	}
	addrs := make(map[uint32]string, len(infos))
	for _, p := range infos {
		addrs[p.ID] = p.Addr
	}

	// Group: provider → write → the pages it must hold.
	perProv := make(map[uint32]map[uint64][]pageNeed)
	for _, n := range needs {
		for _, id := range n.provs {
			wm := perProv[id]
			if wm == nil {
				wm = make(map[uint64][]pageNeed)
				perProv[id] = wm
			}
			wm[n.write] = append(wm[n.write], n)
		}
	}

	// The MListWrites scope: every (provider, write) replication needs,
	// plus every (provider, write) an erasure stripe's checked slots
	// touch.
	wantWrites := make(map[uint32]map[uint64]bool)
	addWant := func(id uint32, w uint64) {
		wm := wantWrites[id]
		if wm == nil {
			wm = make(map[uint64]bool)
			wantWrites[id] = wm
		}
		wm[w] = true
	}
	for id, wm := range perProv {
		for w := range wm {
			addWant(id, w)
		}
	}
	for _, st := range stripes {
		for _, slot := range st.checkedSlots() {
			addWant(st.ref.Provs[slot], st.write)
		}
	}

	// Ask every involved provider what it holds (one RPC each). heldBy
	// indexes each response's write list for O(1) lookups in the
	// diagnosis loops below.
	holdings := make(map[uint32]provider.Holdings)
	heldBy := make(map[uint32]map[uint64]int64)
	reachable := make(map[uint32]bool)
	for id, wm := range wantWrites {
		addr, ok := addrs[id]
		if !ok {
			rep.ProviderErrors++
			continue
		}
		refs := make([]provider.WriteRef, 0, len(wm))
		for w := range wm {
			refs = append(refs, provider.WriteRef{Blob: blobID, Write: w})
		}
		resp, err := r.c.Pool().Call(ctx, addr, provider.MListWrites, provider.EncodeListWrites(refs))
		if err != nil {
			r.logf("repair: list writes on provider %d (%s): %v", id, addr, err)
			rep.ProviderErrors++
			continue
		}
		h, err := provider.DecodeListWrites(resp)
		if err != nil {
			rep.ProviderErrors++
			continue
		}
		held := make(map[uint64]int64, len(h.Writes))
		for _, wh := range h.Writes {
			if wh.Blob == blobID {
				held[wh.Write] = wh.Pages
			}
		}
		holdings[id] = h
		heldBy[id] = held
		reachable[id] = true
	}

	// Diagnose and pull, provider by provider.
	for id, wm := range perProv {
		if !reachable[id] {
			for _, ns := range wm {
				rep.PagesChecked += int64(len(ns))
				rep.Unrepairable += int64(len(ns))
			}
			continue
		}
		h := holdings[id]
		// One MPullPages per (write, first-choice source) batch — the
		// fast path. A batch that comes back short (bloom false positive
		// at the source, concurrent GC, source lost the page) degrades to
		// per-page pulls over each page's remaining replicas.
		type pullKey struct {
			write  uint64
			source uint32
		}
		pulls := make(map[pullKey][]pageNeed)
		for w, ns := range wm {
			rep.PagesChecked += int64(len(ns))
			missing := diagnose(h, heldBy[id][w], blobID, w, ns)
			rep.BloomSkips += int64(len(ns) - len(missing))
			for _, n := range missing {
				rep.PagesMissing++
				cands := eligibleSources(holdings, heldBy, reachable, n, id, blobID)
				if len(cands) == 0 {
					rep.Unrepairable++
					continue
				}
				pulls[pullKey{w, cands[0]}] = append(pulls[pullKey{w, cands[0]}], n)
			}
		}
		for pk, ns := range pulls {
			refs := make([]provider.PullRef, len(ns))
			for i, n := range ns {
				refs[i] = provider.PullRef{Rel: n.rel, Checksum: n.sum}
			}
			res, err := r.pull(ctx, addrs[id], addrs[pk.source], blobID, pk.write, refs)
			if err != nil {
				r.logf("repair: pull %d pages onto provider %d: %v", len(refs), id, err)
				res = provider.PullResult{} // resolve every page below
			}
			rep.PagesRepaired += res.Pulled
			rep.BytesPulled += res.Bytes
			rep.PagesSkipped += res.Skipped
			if res.Pulled+res.Skipped >= int64(len(refs)) {
				continue // every slot covered
			}
			// Short batch: the response doesn't say which pages failed,
			// so resolve each one individually against every candidate
			// source in turn. The degraded provider skips pages the batch
			// already landed, so re-asking is a free membership check;
			// only genuinely new pulls are counted (skips here would
			// double-count the batch's work).
			for _, n := range ns {
				resolved := false
				for _, src := range eligibleSources(holdings, heldBy, reachable, n, id, blobID) {
					one, err := r.pull(ctx, addrs[id], addrs[src], blobID, pk.write,
						[]provider.PullRef{{Rel: n.rel, Checksum: n.sum}})
					if err != nil {
						continue // next candidate
					}
					if one.Pulled > 0 {
						rep.PagesRepaired += one.Pulled
						rep.BytesPulled += one.Bytes
					}
					if one.Pulled+one.Skipped > 0 {
						resolved = true
						break
					}
				}
				if !resolved {
					rep.Unrepairable++
				}
			}
		}
	}
	// Erasure-coded stripes: reconstruction plans (reconstruct.go).
	r.repairStripes(ctx, &rep, blobID, stripes, addrs, holdings, heldBy, reachable)

	if rep.PagesMissing > 0 {
		r.logf("repair: blob %d: %d/%d replica slots degraded, %d repaired (%d bytes pulled), %d reconstructed (%d bytes pushed), %d unrepairable",
			blobID, rep.PagesMissing, rep.PagesChecked, rep.PagesRepaired, rep.BytesPulled,
			rep.PagesReconstructed, rep.ReconstructedBytes, rep.Unrepairable)
	}
	return rep, nil
}

// mergeExtents folds the history's written page ranges into a sorted,
// disjoint cover (aborted writes carry no surviving pages and are
// skipped). The repair walk reads metadata only inside this cover.
func mergeExtents(hist []vmanager.WriteRecord) []meta.PageRange {
	var rs []meta.PageRange
	for _, rec := range hist {
		if !rec.Aborted && rec.Range.Count > 0 {
			rs = append(rs, rec.Range)
		}
	}
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].First < rs[j].First })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.First <= last.First+last.Count {
			if end := r.First + r.Count; end > last.First+last.Count {
				last.Count = end - last.First
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// diagnose returns the pages of one write that provider holdings show
// missing. The write list is exact, the digest conservative, and counts
// reconcile the two: a write the provider doesn't list is entirely
// missing; a listed write's definite misses come from the digest; and
// whenever presence can't be affirmed — no digest at all, or a count
// proving more pages gone than the digest names — every page is pulled,
// because the pulling provider skips the ones it has, so
// over-approximation costs one RPC, never correctness. A slot is
// trusted healthy only when the count covers the expectation AND the
// digest clears every page; the residual unsoundness (dead pages
// inflating the count while a bloom false positive hides the real miss)
// is the documented ~1%-of-rare window read-repair closes on access.
func diagnose(h provider.Holdings, held int64, blob, write uint64, ns []pageNeed) []pageNeed {
	if held == 0 {
		return ns
	}
	if !h.HasDigest {
		// Counts alone can't affirm presence (dead pages a missed GC
		// sweep left behind inflate them): pull everything; the
		// provider-side skip check turns this into a membership probe.
		return ns
	}
	var missing []pageNeed
	for _, n := range ns {
		if !h.Digest.MightContain(blob, write, n.rel) {
			missing = append(missing, n)
		}
	}
	if held >= int64(len(ns)) {
		return missing // count covers and digest clears the rest
	}
	if int64(len(ns))-held > int64(len(missing)) {
		// The digest under-detected (false positives): the count proves
		// more pages are gone than the digest names. Pull everything.
		return ns
	}
	return missing
}

// pull issues one MPullPages: targetAddr pulls refs of (blob, write)
// from srcAddr.
func (r *Repairer) pull(ctx context.Context, targetAddr, srcAddr string,
	blob, write uint64, refs []provider.PullRef) (provider.PullResult, error) {
	pctx, op := trace.Start(ctx, "repair.pull")
	op.Notef("%d pages from %s", len(refs), srcAddr)
	body := provider.EncodePullPages(srcAddr, blob, write, refs)
	resp, err := r.c.Pool().Call(pctx, targetAddr, provider.MPullPages, body)
	op.EndErr(err)
	if err != nil {
		return provider.PullResult{}, err
	}
	return provider.DecodePullPages(resp)
}

// eligibleSources orders the healthy peers one page could be pulled
// from: first the replicas whose holdings affirmatively suggest the
// page (listed write, digest not ruling it out), then — so a bloom
// false positive at one source can never strand a slot a later replica
// holds — every other reachable replica as a long-shot fallback.
func eligibleSources(holdings map[uint32]provider.Holdings, heldBy map[uint32]map[uint64]int64,
	reachable map[uint32]bool, n pageNeed, target uint32, blob uint64) []uint32 {
	var likely, longshot []uint32
	for _, id := range n.provs {
		if id == target || !reachable[id] {
			continue
		}
		h := holdings[id]
		if heldBy[id][n.write] > 0 &&
			(!h.HasDigest || h.Digest.MightContain(blob, n.write, n.rel)) {
			likely = append(likely, id)
		} else {
			longshot = append(longshot, id)
		}
	}
	return append(likely, longshot...)
}

// RepairAll runs RepairBlob over a set of blobs, merging reports. The
// first hard error aborts (per-provider failures are soft and counted
// in the report).
func (r *Repairer) RepairAll(ctx context.Context, blobs []uint64) (Report, error) {
	r.Journal.Emit(events.SevInfo, events.RepairStart, int64(len(blobs)),
		"sweep over %d blobs", len(blobs))
	var total Report
	for _, id := range blobs {
		rep, err := r.RepairBlob(ctx, id)
		total.PagesChecked += rep.PagesChecked
		total.PagesMissing += rep.PagesMissing
		total.PagesRepaired += rep.PagesRepaired
		total.BytesPulled += rep.BytesPulled
		total.PagesSkipped += rep.PagesSkipped
		total.BloomSkips += rep.BloomSkips
		total.PagesReconstructed += rep.PagesReconstructed
		total.ReconstructedBytes += rep.ReconstructedBytes
		total.SurvivorBytes += rep.SurvivorBytes
		total.Unrepairable += rep.Unrepairable
		total.ProviderErrors += rep.ProviderErrors
		if err != nil {
			r.emitSweep(total, err)
			return total, err
		}
	}
	r.emitSweep(total, nil)
	return total, nil
}

// emitSweep records the sweep's outcome in the journal: what was found
// degraded, what reconstruction rebuilt, what stayed broken, and the
// redundancy debt left outstanding (RepairFinish.Val — the monitor's
// debt source).
func (r *Repairer) emitSweep(total Report, err error) {
	if r.Journal == nil {
		return
	}
	if total.PagesMissing > 0 {
		r.Journal.Emit(events.SevWarn, events.RedundancyDegraded, total.PagesMissing,
			"sweep found %d degraded slots (%d checked)", total.PagesMissing, total.PagesChecked)
	}
	if total.PagesReconstructed > 0 {
		r.Journal.Emit(events.SevInfo, events.PagesReconstructed, total.PagesReconstructed,
			"reconstructed %d pages (%d bytes pushed, %d survivor bytes read)",
			total.PagesReconstructed, total.ReconstructedBytes, total.SurvivorBytes)
	}
	if total.Unrepairable > 0 {
		r.Journal.Emit(events.SevError, events.Unrepairable, total.Unrepairable,
			"%d slots unrepairable (%d provider errors)", total.Unrepairable, total.ProviderErrors)
	}
	outstanding := total.Unrepairable
	sev := events.SevInfo
	detail := ""
	if err != nil {
		sev = events.SevError
		detail = "; aborted: " + err.Error()
		// An aborted sweep proves nothing about unexamined slots: keep
		// whatever degradation it saw on the books.
		if m := total.PagesMissing - total.PagesRepaired - total.PagesSkipped - total.PagesReconstructed; m > outstanding {
			outstanding = m
		}
	} else if outstanding > 0 {
		sev = events.SevWarn
	}
	r.Journal.Emit(sev, events.RepairFinish, outstanding,
		"sweep done: %d repaired, %d reconstructed, %d outstanding%s",
		total.PagesRepaired, total.PagesReconstructed, outstanding, detail)
}
