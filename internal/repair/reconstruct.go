package repair

// Reconstruction plans for erasure-coded stripes (docs/erasure.md §5).
// Replicated pages heal by provider-to-provider pulls (repair.go); an
// rs(k,m) shard has no replica to pull, so the agent rebuilds it: pull
// any k surviving shards of the stripe, decode, and re-push only the
// missing slots to their providers. Traffic to the degraded provider is
// exactly its lost shards — under rs(k,m) a provider holds a (k+m)/k / n
// share of the logical bytes, measurably less than a replica's r/n
// share, which is what AblateErasure demonstrates against 2x
// replication. First-wins idempotent puts keep re-pushes safe to
// over-approximate and to race with degraded reads doing the same.

import (
	"context"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/provider"
	"blob/internal/wire"
)

// stripeKey identifies one stripe of one write.
type stripeKey struct {
	write uint64
	first uint32
}

// stripeState is the repair agent's record of one stripe: its layout
// and which data slots live metadata still references.
type stripeState struct {
	write uint64
	ref   *meta.StripeRef
	// refd marks data slots referenced by at least one surviving
	// version. A data slot no slot references has been garbage
	// collected — restoring it would resurrect a dead page, so the
	// agent leaves it missing (the stripe's loss tolerance degrades by
	// one for each collected slot; see docs/erasure.md §6).
	refd map[int]bool
}

// checkedSlots returns the slots the agent must keep healthy: every
// referenced data slot plus all parity slots.
func (st *stripeState) checkedSlots() []int {
	k, m := int(st.ref.K), int(st.ref.M)
	slots := make([]int, 0, k+m)
	for s := 0; s < k; s++ {
		if st.refd[s] {
			slots = append(slots, s)
		}
	}
	for s := k; s < k+m; s++ {
		slots = append(slots, s)
	}
	return slots
}

// repairStripes diagnoses and heals every collected stripe, folding
// results into rep. holdings/heldBy/reachable come from the shared
// MListWrites sweep in RepairBlob.
func (r *Repairer) repairStripes(ctx context.Context, rep *Report, blobID uint64,
	stripes map[stripeKey]*stripeState, addrs map[uint32]string,
	holdings map[uint32]provider.Holdings, heldBy map[uint32]map[uint64]int64,
	reachable map[uint32]bool) {
	for _, st := range stripes {
		r.repairStripe(ctx, rep, blobID, st, addrs, holdings, heldBy, reachable)
	}
}

// slotSuspect reports whether provider holdings fail to affirm the
// slot's presence. Conservative in the pull-everything direction, like
// diagnose: a suspect slot is verified by an actual fetch before any
// decode work happens, so over-suspicion costs one page read, never a
// wrong reconstruction.
func slotSuspect(h provider.Holdings, held int64, blob, write uint64, rel uint32) bool {
	if held == 0 {
		return true // write not listed at all
	}
	if !h.HasDigest {
		return true // cannot affirm: verify by fetching
	}
	return !h.Digest.MightContain(blob, write, rel)
}

// repairStripe heals one stripe: settle it from digests when every
// checked slot is affirmed; otherwise fetch all reachable shards,
// reconstruct from any k verified survivors, and push exactly the
// missing slots back to their providers.
func (r *Repairer) repairStripe(ctx context.Context, rep *Report, blobID uint64,
	st *stripeState, addrs map[uint32]string,
	holdings map[uint32]provider.Holdings, heldBy map[uint32]map[uint64]int64,
	reachable map[uint32]bool) {
	ref := st.ref
	n := int(ref.K) + int(ref.M)
	checked := st.checkedSlots()
	rep.PagesChecked += int64(len(checked))

	suspects := make(map[int]bool)
	anyUnreachable := false
	for _, slot := range checked {
		id := ref.Provs[slot]
		if !reachable[id] {
			anyUnreachable = true
			suspects[slot] = true
			continue
		}
		if slotSuspect(holdings[id], heldBy[id][st.write], blobID, st.write, ref.SlotRel(slot)) {
			suspects[slot] = true
		}
	}
	if len(suspects) == 0 {
		rep.BloomSkips += int64(len(checked)) // settled without page I/O
		return
	}
	if anyUnreachable {
		// Slots on unreachable providers cannot be restored this pass;
		// count them now so FullyRedundant stays honest, but still try
		// to heal the rest of the stripe below.
		for _, slot := range checked {
			if !reachable[ref.Provs[slot]] {
				rep.PagesMissing++
				rep.Unrepairable++
			}
		}
	}

	// Fetch every reachable shard of the stripe (suspects included —
	// the fetch is both the verification of the suspicion and the
	// survivor gathering; extra shards cost one page read and raise
	// decode resilience). Batched per provider.
	type group struct {
		refs  []provider.PageRef
		slots []int
	}
	groups := make(map[uint32]*group)
	for slot := 0; slot < n; slot++ {
		id := ref.Provs[slot]
		if _, ok := addrs[id]; !ok {
			continue
		}
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		g.refs = append(g.refs, provider.PageRef{Blob: blobID, Write: st.write, RelPage: ref.SlotRel(slot)})
		g.slots = append(g.slots, slot)
	}
	shards := make([][]byte, n)
	for id, g := range groups {
		resp, err := r.c.Pool().Call(ctx, addrs[id], provider.MGetPages, provider.EncodeGetPages(g.refs))
		if err != nil {
			r.logf("repair: fetch stripe shards from provider %d: %v", id, err)
			continue
		}
		datas, err := provider.DecodeGetPages(resp, len(g.refs))
		if err != nil {
			continue
		}
		for i, data := range datas {
			slot := g.slots[i]
			if data == nil || wire.Checksum64(data) != ref.Sums[slot] {
				continue
			}
			shards[slot] = data
			rep.SurvivorBytes += int64(len(data))
		}
	}

	// The slots to restore: checked, reachable, and absent in fact.
	var missing []int
	for _, slot := range checked {
		if shards[slot] == nil && reachable[ref.Provs[slot]] {
			missing = append(missing, slot)
		}
	}
	if len(missing) == 0 {
		return // suspicion not confirmed (stale digest, racing heal)
	}
	rep.PagesMissing += int64(len(missing))

	code, err := erasure.Cached(int(ref.K), int(ref.M))
	if err != nil {
		rep.Unrepairable += int64(len(missing))
		return
	}
	if err := code.Reconstruct(shards); err != nil {
		// Fewer than k survivors: the stripe is lost until a provider
		// returns with its shards intact.
		r.logf("repair: stripe at rel %d of write %d: %v", ref.FirstRel, st.write, err)
		rep.Unrepairable += int64(len(missing))
		return
	}

	// Push exactly the missing slots, batched per provider.
	type push struct {
		rels  []uint32
		datas [][]byte
		slots []int
	}
	pushes := make(map[uint32]*push)
	for _, slot := range missing {
		id := ref.Provs[slot]
		p := pushes[id]
		if p == nil {
			p = &push{}
			pushes[id] = p
		}
		p.rels = append(p.rels, ref.SlotRel(slot))
		p.datas = append(p.datas, shards[slot])
		p.slots = append(p.slots, slot)
	}
	for id, p := range pushes {
		body := provider.EncodePutPages(blobID, st.write, p.rels, p.datas)
		if _, err := r.c.Pool().Call(ctx, addrs[id], provider.MPutPages, body); err != nil {
			r.logf("repair: push %d reconstructed shards to provider %d: %v", len(p.rels), id, err)
			rep.Unrepairable += int64(len(p.rels))
			continue
		}
		rep.PagesReconstructed += int64(len(p.rels))
		for _, d := range p.datas {
			rep.ReconstructedBytes += int64(len(d))
		}
	}
}
