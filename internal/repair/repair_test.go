package repair_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/gc"
	"blob/internal/repair"
)

const pageSize = 4 << 10

func launch(t *testing.T, cfg cluster.Config) (*cluster.Cluster, *core.Client) {
	t.Helper()
	cl, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return cl, c
}

func pattern(seed byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i%31)
	}
	return buf
}

// TestRepairRestoresWipedProvider is the acceptance test for the repair
// subsystem (ISSUE 3): a 3-provider / 2-replica persistent cluster loses
// one provider's entire data directory; one repair pass must return the
// replica set to full strength — proven by reading every page with each
// *other* provider stopped afterward, so every page whose surviving
// replica was elsewhere must now be served by the wiped-and-repaired
// provider.
func TestRepairRestoresWipedProvider(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 3,
		MetaProviders: 3,
		DataReplicas:  2,
		DataDir:       t.TempDir(),
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 256*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Several writes, partially overlapping, so multiple versions and
	// writes are live at once.
	data1 := pattern(1, 12*pageSize)
	if _, err := b.Write(ctx, data1, 0); err != nil {
		t.Fatal(err)
	}
	data2 := pattern(2, 6*pageSize)
	if _, err := b.Write(ctx, data2, 4*pageSize); err != nil {
		t.Fatal(err)
	}
	v, err := b.Write(ctx, pattern(3, 2*pageSize), 16*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 18*pageSize)
	copy(want, data1)
	copy(want[4*pageSize:], data2)
	copy(want[16*pageSize:], pattern(3, 2*pageSize))

	// 12 + 6 + 2 pages were written; superseded copies stay until GC, so
	// every one of the 20 pages is live on 2 replicas.
	totalBefore := cl.TotalDataPages()
	if totalBefore != 2*20 {
		t.Fatalf("pages before crash = %d, want %d", totalBefore, 2*20)
	}

	// Total disk loss on provider 0: restart over a destroyed data dir.
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}
	if cl.TotalDataPages() == totalBefore {
		t.Fatal("test bug: wipe lost no pages")
	}

	// One repair pass restores redundancy; a second proves convergence.
	agent := repair.New(c)
	rep, err := agent.RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesMissing == 0 || rep.PagesRepaired == 0 {
		t.Fatalf("repair found/fixed nothing: %+v", rep)
	}
	if !rep.FullyRedundant() {
		t.Fatalf("repair left slots degraded: %+v", rep)
	}
	if cl.TotalDataPages() != totalBefore {
		t.Fatalf("pages after repair = %d, want %d", cl.TotalDataPages(), totalBefore)
	}
	verify, err := agent.RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if verify.PagesMissing != 0 || !verify.FullyRedundant() {
		t.Fatalf("second pass still degraded: %+v", verify)
	}

	// The proof: with any one *other* provider stopped, every page whose
	// replica set was {0, j} must now be served by provider 0 itself.
	for j := 1; j < 3; j++ {
		cl.DataServers[j].Close()
		c.InvalidateDigests()
		got := make([]byte, len(want))
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read with provider %d stopped after repair: %v", j, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("wrong bytes with provider %d stopped", j)
		}
		// Disk-backed: restart re-serves the same data at the same addr.
		if err := cl.RestartDataProvider(j); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRepairLoopHealsWithoutClientInvolvement pins the cluster wiring:
// with RepairInterval set, a wiped provider converges back to full
// redundancy with no client action at all.
func TestRepairLoopHealsWithoutClientInvolvement(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders:  3,
		MetaProviders:  3,
		DataReplicas:   2,
		DataDir:        t.TempDir(),
		RepairInterval: 20 * time.Millisecond,
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, pattern(7, 8*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	total := cl.TotalDataPages()
	if err := cl.WipeDataProvider(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.TotalDataPages() != total {
		if time.Now().After(deadline) {
			t.Fatalf("repair loop never restored redundancy: %d/%d pages",
				cl.TotalDataPages(), total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairReportsBloomEfficiency pins that a repair pass over a
// healthy cluster settles every slot from holdings digests alone — no
// page pulls, everything bloom-skipped.
func TestRepairReportsBloomEfficiency(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 3, MetaProviders: 3, DataReplicas: 2})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, pattern(4, 10*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	rep, err := repair.New(c).RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesChecked != 20 { // 10 pages × 2 replicas
		t.Fatalf("checked %d slots, want 20", rep.PagesChecked)
	}
	if rep.PagesMissing != 0 || rep.BytesPulled != 0 {
		t.Fatalf("healthy cluster diagnosed degraded: %+v", rep)
	}
	if rep.BloomSkips != rep.PagesChecked {
		t.Errorf("bloom skips = %d, want %d (all slots settled digest-side)", rep.BloomSkips, rep.PagesChecked)
	}
	if !rep.FullyRedundant() {
		t.Errorf("healthy cluster not fully redundant: %+v", rep)
	}
}

// TestRepairToleratesCollectedVersions pins the GC interaction: repair
// of a blob whose old versions were collected walks only the surviving
// metadata and still converges.
func TestRepairToleratesCollectedVersions(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 3,
		MetaProviders: 3,
		DataReplicas:  2,
		DataDir:       t.TempDir(),
		CacheNodes:    0,
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, pattern(1, 4*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, pattern(2, 4*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.New(c).Collect(ctx, b.ID(), 2); err != nil {
		t.Fatal(err)
	}
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}
	rep, err := repair.New(c).RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyRedundant() {
		t.Fatalf("repair after GC left slots degraded: %+v", rep)
	}
	// Only v2's 4 pages remain live; both replicas must exist again.
	if got := cl.TotalDataPages(); got != 8 {
		t.Fatalf("pages after GC+repair = %d, want 8", got)
	}
}

// TestRepairFailsOverToSecondSource pins the source-failover rule: when
// the first-choice source's digest claims pages it no longer holds
// (disk-backed stores keep deleted keys in their segment blooms), the
// short batch must degrade to per-page pulls that reach the replica
// that really has each page — a wrong digest can cost round trips,
// never strand a slot.
func TestRepairFailsOverToSecondSource(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 3,
		MetaProviders: 3,
		DataReplicas:  3,
		DataDir:       t.TempDir(),
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, pattern(6, 2*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	var write uint64
	cl.DataStores[0].ForEachPage(func(_, w uint64, _ uint32, _ []byte) { write = w })

	// Target: provider 0 loses everything. Sources: providers 1 and 2
	// each keep only ONE of the two pages — but their disk blooms still
	// claim the deleted one, so whichever is tried first for the full
	// batch comes back short.
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}
	cl.DataStores[1].DeletePages(b.ID(), write, []uint32{0})
	cl.DataStores[2].DeletePages(b.ID(), write, []uint32{1})

	rep, err := repair.New(c).RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrepairable != 0 {
		t.Fatalf("failover left slots stranded: %+v", rep)
	}
	// Provider 0 must hold both pages again, each pulled from the one
	// replica that really had it.
	if got := cl.DataStores[0].Snapshot().PageCount; got != 2 {
		t.Fatalf("target holds %d pages after repair, want 2", got)
	}
}
