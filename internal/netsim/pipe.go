package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// segment is one written frame in flight: its payload and the simulated
// time at which it becomes visible to the reader.
type segment struct {
	data []byte
	at   time.Time
}

// pipeBuf is a unidirectional byte stream with delayed delivery.
// Writers enqueue segments stamped now+latency; readers block until the
// head segment's timestamp has passed. Capacity is bounded so a fast
// writer experiences backpressure like a TCP send buffer would.
type pipeBuf struct {
	ch     chan segment
	closed chan struct{}
	once   sync.Once

	mu      sync.Mutex
	pending []byte // partially consumed head segment
}

func newPipeBuf() *pipeBuf {
	return &pipeBuf{
		ch:     make(chan segment, 256),
		closed: make(chan struct{}),
	}
}

func (b *pipeBuf) close() {
	b.once.Do(func() { close(b.closed) })
}

func (b *pipeBuf) write(p []byte, at time.Time) error {
	data := make([]byte, len(p))
	copy(data, p)
	return b.writeOwned(data, at)
}

// writeOwned enqueues a segment whose backing slice the caller hands
// over (no defensive copy) — the vectored-write path coalesces a whole
// frame into one owned buffer and delivers it as a single segment.
func (b *pipeBuf) writeOwned(data []byte, at time.Time) error {
	select {
	case b.ch <- segment{data: data, at: at}:
		return nil
	case <-b.closed:
		return io.ErrClosedPipe
	}
}

// read delivers available bytes, honouring segment timestamps and an
// optional deadline (zero means none).
func (b *pipeBuf) read(p []byte, deadline time.Time) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	if len(b.pending) == 0 {
		var seg segment
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			t := time.NewTimer(d)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case seg = <-b.ch:
		case <-b.closed:
			// Drain anything already queued before reporting EOF.
			select {
			case seg = <-b.ch:
			default:
				return 0, io.EOF
			}
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		}
		if wait := time.Until(seg.at); wait > 0 {
			if !deadline.IsZero() && seg.at.After(deadline) {
				// Deliverable only after the deadline; requeue is not
				// possible on a channel, so hold it as pending and fail.
				b.pending = seg.data
				return 0, os.ErrDeadlineExceeded
			}
			b.mu.Unlock()
			time.Sleep(wait)
			b.mu.Lock()
		}
		b.pending = seg.data
	}

	n := copy(p, b.pending)
	b.pending = b.pending[n:]
	return n, nil
}

// conn is one endpoint of a simulated duplex connection.
type conn struct {
	net          *Net // fault lookup (nil in direct newPipePair tests)
	rd, wr       *pipeBuf
	local, peer  net.Addr
	srcHost      string
	dstHost      string
	latency      time.Duration
	srcNIC       *nic
	dstNIC       *nic
	readDeadline atomicTime
	closeOnce    sync.Once
}

// newPipePair creates the two endpoints of a connection between hosts.
// Frames written on either end are charged to both NICs, delivered
// after the configured latency, and subjected to whatever faults the
// fabric has installed on the link at write time.
func newPipePair(n *Net, latency time.Duration, cliNIC, srvNIC *nic, cliAddr, srvAddr net.Addr) (cli, srv net.Conn) {
	c2s := newPipeBuf()
	s2c := newPipeBuf()
	cliHost, srvHost := hostOf(cliAddr.String()), hostOf(srvAddr.String())
	cli = &conn{
		net: n, rd: s2c, wr: c2s,
		local: cliAddr, peer: srvAddr,
		srcHost: cliHost, dstHost: srvHost,
		latency: latency, srcNIC: cliNIC, dstNIC: srvNIC,
	}
	srv = &conn{
		net: n, rd: c2s, wr: s2c,
		local: srvAddr, peer: cliAddr,
		srcHost: srvHost, dstHost: cliHost,
		latency: latency, srcNIC: srvNIC, dstNIC: cliNIC,
	}
	return cli, srv
}

// injectFault applies the link's current fault to one outbound frame:
// stall, reset, or an extra delivery delay.
func (c *conn) injectFault() (time.Duration, error) {
	if c.net == nil {
		return 0, nil
	}
	return c.net.faultDelay(c)
}

func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return c.rd.read(p, c.readDeadline.load())
}

// minMaterializedSleep is the smallest NIC wait actually slept. Shorter
// waits stay as debt in the NIC's virtual-finish-time horizon — they are
// still accounted exactly, and once the horizon runs far enough ahead
// the accumulated wait crosses the threshold and is slept. This keeps
// the rate limit accurate under sustained load without issuing
// sub-granularity sleeps the kernel would inflate.
const minMaterializedSleep = time.Millisecond

func (c *conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	extra, err := c.injectFault()
	if err != nil {
		return 0, err
	}
	// Serialization delay on both NICs: the sender blocks until its NIC
	// would have drained the frame (backpressure), and the receive NIC's
	// horizon advances too so inbound and outbound traffic contend.
	w1 := c.srcNIC.reserve(len(p))
	w2 := c.dstNIC.reserve(len(p))
	wait := w1
	if w2 > wait {
		wait = w2
	}
	if wait >= minMaterializedSleep {
		time.Sleep(wait)
	}
	if err := c.wr.write(p, time.Now().Add(c.latency+extra)); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteBuffers implements the rpc layer's vectored-write fast path
// (rpc.BuffersWriter): the whole scatter-gather frame is coalesced into
// one owned segment, charged to both NICs once and delivered after one
// link latency — exactly what a writev on a real socket would cost,
// without a per-segment pass through the simulated pipe.
func (c *conn) WriteBuffers(bufs *net.Buffers) (int64, error) {
	total := 0
	for _, b := range *bufs {
		total += len(b)
	}
	if total == 0 {
		*bufs = nil
		return 0, nil
	}
	data := make([]byte, 0, total)
	for _, b := range *bufs {
		data = append(data, b...)
	}
	*bufs = nil
	extra, err := c.injectFault()
	if err != nil {
		return 0, err
	}
	w1 := c.srcNIC.reserve(total)
	w2 := c.dstNIC.reserve(total)
	wait := w1
	if w2 > wait {
		wait = w2
	}
	if wait >= minMaterializedSleep {
		time.Sleep(wait)
	}
	if err := c.wr.writeOwned(data, time.Now().Add(c.latency+extra)); err != nil {
		return 0, err
	}
	return int64(total), nil
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.close()
		c.rd.close()
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.peer }

func (c *conn) SetDeadline(t time.Time) error {
	c.readDeadline.store(t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.readDeadline.store(t)
	return nil
}

// SetWriteDeadline is accepted but not enforced: simulated writes block
// only for the metered serialization time, which is always finite.
func (c *conn) SetWriteDeadline(time.Time) error { return nil }

// atomicTime is a mutex-guarded time value (time.Time is not atomically
// storable without sync/atomic.Pointer indirection; contention here is
// negligible).
type atomicTime struct {
	mu sync.Mutex
	t  time.Time
}

func (a *atomicTime) store(t time.Time) {
	a.mu.Lock()
	a.t = t
	a.mu.Unlock()
}

func (a *atomicTime) load() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}
