package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startEcho runs an accept loop that echoes every byte back, returning a
// stop function.
func startEcho(t *testing.T, l net.Listener) func() {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return func() {
		l.Close()
		wg.Wait()
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	if _, err := n.Host("a").Dial("b:1"); err == nil {
		t.Fatal("Dial to unbound address should fail")
	}
}

func TestRoundTripBytes(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	l, err := n.Host("srv").Listen("7")
	if err != nil {
		t.Fatal(err)
	}
	stop := startEcho(t, l)
	defer stop()

	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("hello, distributed world")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestLargeTransferPreservesOrder(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	stop := startEcho(t, l)
	defer stop()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	go func() {
		for off := 0; off < len(data); off += 8 << 10 {
			end := off + 8<<10
			if end > len(data) {
				end = len(data)
			}
			c.Write(data[off:end])
		}
	}()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestLatencyIsApplied(t *testing.T) {
	const lat = 5 * time.Millisecond
	n := New(Config{Latency: lat})
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	stop := startEcho(t, l)
	defer stop()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 2*lat {
		t.Errorf("round trip = %v, want >= %v (two one-way latencies)", rtt, 2*lat)
	}
	if rtt > 20*lat {
		t.Errorf("round trip = %v, implausibly slow", rtt)
	}
}

func TestBandwidthMetering(t *testing.T) {
	// 1 MB at 10 MB/s should take about 100 ms of serialization time.
	n := New(Config{BandwidthBps: 10e6})
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 64<<10)
	start := time.Now()
	total := 0
	for total < 1<<20 {
		nn, err := c.Write(payload)
		if err != nil {
			t.Fatal(err)
		}
		total += nn
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("1MB at 10MB/s finished in %v, want >= 80ms", elapsed)
	}
}

func TestSharedNICContention(t *testing.T) {
	// Two clients writing to one server host: the server NIC is shared,
	// so aggregate goodput should be capped near the NIC rate, not 2x.
	n := New(Config{BandwidthBps: 20e6})
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	const perClient = 1 << 20
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		host := n.Host(string(rune('a' + i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := host.Dial("srv:7")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			buf := make([]byte, 64<<10)
			for sent := 0; sent < perClient; sent += len(buf) {
				c.Write(buf)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 2 MB through a 20 MB/s shared NIC needs at least ~100 ms.
	if elapsed < 80*time.Millisecond {
		t.Errorf("shared NIC transfer took %v, want >= 80ms", elapsed)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 1)
		_, err = c.Read(buf)
		done <- err
	}()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Errorf("reader got %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by peer close")
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	defer l.Close()
	go l.Accept()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err = c.Read(buf)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if time.Since(start) > time.Second {
		t.Error("deadline ignored")
	}
}

func TestListenTwiceFails(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	h := n.Host("srv")
	if _, err := h.Listen("7"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen("7"); err == nil {
		t.Fatal("duplicate Listen should fail")
	}
}

func TestListenerCloseReleasesAddress(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	h := n.Host("srv")
	l, _ := h.Listen("7")
	l.Close()
	if _, err := h.Listen("7"); err != nil {
		t.Fatalf("re-Listen after Close failed: %v", err)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	stop := startEcho(t, l)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Host("cli").Dial("srv:7")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte{byte(i)}
			c.Write(msg)
			got := make([]byte, 1)
			if _, err := io.ReadFull(c, got); err != nil {
				t.Error(err)
				return
			}
			if got[0] != byte(i) {
				t.Errorf("conn %d cross-talk: got %d", i, got[0])
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkPipeThroughputUnmetered(b *testing.B) {
	n := New(Fast())
	defer n.Close()
	l, _ := n.Host("srv").Listen("7")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(buf)
	}
}
