// Package netsim provides an in-memory network with configurable link
// latency and per-NIC bandwidth metering. It substitutes for the paper's
// Grid'5000 cluster (1 Gbit/s Ethernet: 117.5 MB/s measured TCP rate,
// 0.1 ms latency): every process in the reproduced system talks over
// net.Conn, so the same binaries run over netsim in a single process or
// over real TCP across machines.
//
// The model is deliberately simple but captures the two effects the
// paper's evaluation measures:
//
//   - per-message latency: each written frame becomes readable at the
//     receiver only after the configured one-way delay, so a request/
//     response exchange costs a round trip, and batching several logical
//     calls into one frame (the paper's aggregated RPC) saves latency;
//   - NIC saturation: each simulated host owns a token-bucket NIC.
//     Writing charges both the sender's and the receiver's NIC, so many
//     clients hammering one provider share that provider's bandwidth —
//     which is what bounds per-client throughput in Figure 3(c).
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// Config describes the simulated fabric.
type Config struct {
	// Latency is the one-way delivery delay for every frame.
	Latency time.Duration
	// BandwidthBps is the per-NIC capacity in bytes per second.
	// Zero means unlimited.
	BandwidthBps float64
}

// TimeScale is the simulation time dilation: 1 simulated time unit =
// TimeScale real time units. The paper's cluster has 0.1 ms latency, but
// the host kernel's sleep granularity is on the order of a millisecond,
// so sub-millisecond delays cannot be slept accurately. Dilating all
// simulated delays by 10x keeps every materialized sleep comfortably
// above the granularity floor while preserving the ratios the
// experiments measure (the latency x bandwidth product is invariant).
// Durations measured over a Grid5000() fabric therefore compare to the
// paper's after dividing by TimeScale; bandwidths after multiplying.
const TimeScale = 10

// Grid5000 reproduces the paper's measured testbed parameters — 0.1 ms
// latency, 117.5 MB/s TCP throughput on 1 Gbit/s Ethernet — dilated by
// TimeScale (see its comment).
func Grid5000() Config {
	return Config{
		Latency:      TimeScale * 100 * time.Microsecond,
		BandwidthBps: 117.5e6 / TimeScale,
	}
}

// Fast returns a configuration with no latency and no bandwidth cap,
// for unit tests that exercise logic rather than performance shape.
func Fast() Config { return Config{} }

// Net is a simulated network fabric. Hosts are created on demand; each
// host has one NIC. Addresses take the form "host:port".
type Net struct {
	cfg Config

	mu        sync.Mutex
	listeners map[string]*listener
	nics      map[string]*nic
	closed    bool

	// Injected faults (docs/robustness.md): live connections consult
	// these maps on every frame, so installing or clearing a fault takes
	// effect immediately — including for connections dialed before it.
	faultMu    sync.Mutex
	linkFaults map[linkKey]Fault
	hostFaults map[string]Fault
	addrFaults map[string]Fault
}

// linkKey identifies one directed link for fault injection.
type linkKey struct{ from, to string }

// New creates an empty fabric.
func New(cfg Config) *Net {
	return &Net{
		cfg:        cfg,
		listeners:  make(map[string]*listener),
		nics:       make(map[string]*nic),
		linkFaults: make(map[linkKey]Fault),
		hostFaults: make(map[string]Fault),
		addrFaults: make(map[string]Fault),
	}
}

// Fault describes injected link misbehaviour — the gray failures the
// robustness machinery (deadlines, hedges, breakers; docs/robustness.md)
// is built to absorb. The zero Fault injects nothing.
type Fault struct {
	// ExtraLatency delays every frame's delivery by this much on top of
	// the fabric's configured latency (a slow or overloaded peer).
	ExtraLatency time.Duration
	// Jitter adds a further uniformly random delay in [0, Jitter) per
	// frame (an erratic peer).
	Jitter time.Duration
	// DropProb resets the connection with this per-frame probability:
	// the frame is not delivered and the connection dies, as a TCP RST
	// would — never silent byte loss, which a stream transport cannot
	// produce (a flaky link).
	DropProb float64
	// Stall blocks every frame indefinitely — the connection stays up
	// but nothing moves, the classic gray failure — until the fault is
	// cleared (writers then resume) or the connection is closed.
	Stall bool
	// RefuseDial makes new dials across the faulted link fail with
	// ErrRefused while established connections keep working.
	RefuseDial bool
}

// active reports whether the fault injects anything.
func (f Fault) active() bool {
	return f.ExtraLatency > 0 || f.Jitter > 0 || f.DropProb > 0 || f.Stall || f.RefuseDial
}

// SetLinkFault installs f on the directed link from -> to (replacing
// any previous link fault there). Frames already in flight keep their
// original delivery time.
func (n *Net) SetLinkFault(from, to string, f Fault) {
	n.faultMu.Lock()
	if f.active() {
		n.linkFaults[linkKey{from, to}] = f
	} else {
		delete(n.linkFaults, linkKey{from, to})
	}
	n.faultMu.Unlock()
}

// SetHostFault installs f on every link touching host, in both
// directions (a sick machine rather than a sick cable).
func (n *Net) SetHostFault(host string, f Fault) {
	n.faultMu.Lock()
	if f.active() {
		n.hostFaults[host] = f
	} else {
		delete(n.hostFaults, host)
	}
	n.faultMu.Unlock()
}

// SetAddrFault installs f on every link whose either endpoint is the
// service bound to addr (host:port), in both directions. It scopes a
// fault to one service on a host that runs several — the co-located
// data provider can be sick while the meta provider beside it stays
// healthy.
func (n *Net) SetAddrFault(addr string, f Fault) {
	n.faultMu.Lock()
	if f.active() {
		n.addrFaults[addr] = f
	} else {
		delete(n.addrFaults, addr)
	}
	n.faultMu.Unlock()
}

// ClearLinkFault removes the directed link fault from -> to.
func (n *Net) ClearLinkFault(from, to string) { n.SetLinkFault(from, to, Fault{}) }

// ClearHostFault removes host's fault.
func (n *Net) ClearHostFault(host string) { n.SetHostFault(host, Fault{}) }

// ClearAddrFault removes addr's fault.
func (n *Net) ClearAddrFault(addr string) { n.SetAddrFault(addr, Fault{}) }

// Heal removes every installed fault; stalled writers resume at their
// next poll tick.
func (n *Net) Heal() {
	n.faultMu.Lock()
	clear(n.linkFaults)
	clear(n.hostFaults)
	clear(n.addrFaults)
	n.faultMu.Unlock()
}

// faultFor combines the faults affecting one frame between the given
// endpoints: the directed link fault between the hosts, both hosts'
// faults, and both endpoint addresses' faults. Delays add, drop
// probabilities and booleans take the worst case.
func (n *Net) faultFor(src, dst, srcAddr, dstAddr string) (Fault, bool) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	if len(n.linkFaults) == 0 && len(n.hostFaults) == 0 && len(n.addrFaults) == 0 {
		return Fault{}, false
	}
	var out Fault
	found := false
	for _, f := range []Fault{n.linkFaults[linkKey{src, dst}], n.hostFaults[src], n.hostFaults[dst],
		n.addrFaults[srcAddr], n.addrFaults[dstAddr]} {
		if !f.active() {
			continue
		}
		found = true
		out.ExtraLatency += f.ExtraLatency
		out.Jitter += f.Jitter
		if f.DropProb > out.DropProb {
			out.DropProb = f.DropProb
		}
		out.Stall = out.Stall || f.Stall
		out.RefuseDial = out.RefuseDial || f.RefuseDial
	}
	return out, found
}

// faultDelay applies the current fault on src->dst for one frame about
// to be written on conn c: it blocks while the link is stalled,
// resets the connection on a drop, and otherwise returns the extra
// delivery delay to add to the frame.
func (n *Net) faultDelay(c *conn) (time.Duration, error) {
	for {
		f, ok := n.faultFor(c.srcHost, c.dstHost, c.local.String(), c.peer.String())
		if !ok {
			return 0, nil
		}
		if f.Stall {
			select {
			case <-c.wr.closed:
				return 0, io.ErrClosedPipe
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		if f.DropProb > 0 && rand.Float64() < f.DropProb {
			c.Close()
			return 0, io.ErrClosedPipe
		}
		d := f.ExtraLatency
		if f.Jitter > 0 {
			d += time.Duration(rand.Int63n(int64(f.Jitter)))
		}
		return d, nil
	}
}

// ErrRefused is returned by Dial when no listener is bound to the address.
var ErrRefused = errors.New("netsim: connection refused")

// ErrClosed is returned after the fabric or an endpoint has been closed.
var ErrClosed = errors.New("netsim: closed")

func hostOf(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

func (n *Net) nicFor(host string) *nic {
	n.mu.Lock()
	defer n.mu.Unlock()
	nc, ok := n.nics[host]
	if !ok {
		nc = &nic{bps: n.cfg.BandwidthBps}
		n.nics[host] = nc
	}
	return nc
}

// Host returns a dialing/listening endpoint bound to the named host.
// All connections made through the returned Host are metered by the
// host's single NIC.
func (n *Net) Host(name string) *Host {
	return &Host{net: n, name: name, nic: n.nicFor(name)}
}

// Close tears down the fabric: all listeners stop accepting.
func (n *Net) Close() {
	n.mu.Lock()
	ls := make([]*listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
}

// Host is one simulated machine on the fabric.
type Host struct {
	net  *Net
	name string
	nic  *nic
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listen binds a listener to "host:port".
func (h *Host) Listen(port string) (net.Listener, error) {
	addr := h.name + ":" + port
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.net.closed {
		return nil, ErrClosed
	}
	if _, busy := h.net.listeners[addr]; busy {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &listener{
		net:     h.net,
		addr:    simAddr(addr),
		backlog: make(chan net.Conn, 128),
		done:    make(chan struct{}),
	}
	h.net.listeners[addr] = l
	return l, nil
}

// Dial connects to addr ("host:port"). The connection is metered by both
// this host's NIC and the target host's NIC.
func (h *Host) Dial(addr string) (net.Conn, error) {
	h.net.mu.Lock()
	l := h.net.listeners[addr]
	h.net.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	if f, ok := h.net.faultFor(h.name, hostOf(addr), "", addr); ok && f.RefuseDial {
		return nil, fmt.Errorf("%w: %s (injected fault)", ErrRefused, addr)
	}
	remoteNIC := h.net.nicFor(hostOf(addr))
	cliEnd, srvEnd := newPipePair(
		h.net,
		h.net.cfg.Latency,
		h.nic, remoteNIC,
		simAddr(h.name+":0"), simAddr(addr),
	)
	// The backlog send and the done channel can both be ready (the
	// backlog is buffered), and a buffered conn on a dead listener
	// would strand its dialer forever — a crashed node must refuse, not
	// black-hole. Check done around the send; Close additionally drains
	// whatever a racing dial still deposited.
	select {
	case <-l.done:
		cliEnd.Close()
		srvEnd.Close()
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	default:
	}
	select {
	case l.backlog <- srvEnd:
		select {
		case <-l.done:
			cliEnd.Close()
			srvEnd.Close()
			return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
		default:
		}
		return cliEnd, nil
	case <-l.done:
		cliEnd.Close()
		srvEnd.Close()
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
}

type listener struct {
	net     *Net
	addr    simAddr
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, string(l.addr))
		l.net.mu.Unlock()
		// Drain connections stranded in the backlog so their dialers
		// see a reset instead of waiting on an accept that will never
		// come (Dial rechecks done after its send, so nothing new can
		// land here once the drain finishes).
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// nic models a network interface as a virtual-finish-time token bucket.
// Each write advances the NIC's horizon by the serialization time of the
// written bytes; the writer sleeps until its bytes would have drained.
// Concurrent connections on the same host therefore share the capacity
// fairly, which is the contention behaviour the throughput experiment
// (Figure 3c) depends on.
type nic struct {
	mu   sync.Mutex
	bps  float64
	next time.Time
}

// reserve accounts for n bytes and returns how long the caller must wait
// before the bytes are considered on the wire.
func (c *nic) reserve(n int) time.Duration {
	if c == nil || c.bps <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / c.bps * float64(time.Second))
	now := time.Now()
	c.mu.Lock()
	if c.next.Before(now) {
		c.next = now
	}
	c.next = c.next.Add(d)
	wait := c.next.Sub(now)
	c.mu.Unlock()
	return wait
}
