package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoPair dials an echo server and returns the client conn.
func echoPair(t *testing.T, n *Net, cliHost, srvHost string) net.Conn {
	t.Helper()
	l, err := n.Host(srvHost).Listen("7")
	if err != nil {
		t.Fatal(err)
	}
	stop := startEcho(t, l)
	t.Cleanup(stop)
	c, err := n.Host(cliHost).Dial(srvHost + ":7")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func echoOnce(c net.Conn, msg []byte) error {
	if _, err := c.Write(msg); err != nil {
		return err
	}
	got := make([]byte, len(msg))
	_, err := io.ReadFull(c, got)
	return err
}

func TestFaultExtraLatency(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	c := echoPair(t, n, "cli", "srv")

	msg := []byte("ping")
	start := time.Now()
	if err := echoOnce(c, msg); err != nil {
		t.Fatal(err)
	}
	healthy := time.Since(start)

	const extra = 30 * time.Millisecond
	n.SetHostFault("srv", Fault{ExtraLatency: extra})
	start = time.Now()
	if err := echoOnce(c, msg); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	// Both directions cross the faulted host, so the echo pays >= 2x.
	if slow < healthy+2*extra {
		t.Fatalf("faulted echo took %v, want >= %v", slow, healthy+2*extra)
	}

	// Healing is immediate, including for this already-open connection.
	n.Heal()
	start = time.Now()
	if err := echoOnce(c, msg); err != nil {
		t.Fatal(err)
	}
	if healed := time.Since(start); healed >= extra {
		t.Fatalf("healed echo took %v, want < %v", healed, extra)
	}
}

func TestFaultStallAndHeal(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	c := echoPair(t, n, "cli", "srv")
	if err := echoOnce(c, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	n.SetHostFault("srv", Fault{Stall: true})
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- echoOnce(c, []byte("stalled")) }()

	select {
	case err := <-done:
		t.Fatalf("echo completed during stall (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	n.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("echo still stalled after Heal")
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("stall released after only %v", d)
	}
}

func TestFaultDropResetsConnection(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	c := echoPair(t, n, "cli", "srv")
	if err := echoOnce(c, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	n.SetLinkFault("cli", "srv", Fault{DropProb: 1})
	if err := echoOnce(c, []byte("doomed")); err == nil {
		t.Fatal("write over a DropProb=1 link should reset the connection")
	}
	// The reset is a full connection close, like a TCP RST: reads fail too.
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after injected reset should fail")
	}

	// A fresh dial still works: the fault resets connections, it does not
	// unbind the listener — and healing restores clean traffic.
	n.Heal()
	c2, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := echoOnce(c2, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultRefuseDial(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	echoPair(t, n, "cli", "srv") // binds the listener

	n.SetHostFault("srv", Fault{RefuseDial: true})
	if _, err := n.Host("cli").Dial("srv:7"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial under RefuseDial fault: err = %v, want ErrRefused", err)
	}
	n.ClearHostFault("srv")
	c, err := n.Host("cli").Dial("srv:7")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestFaultAddrScoped(t *testing.T) {
	n := New(Fast())
	defer n.Close()
	// Two services on one host: the fault targets only port 7.
	sick := echoPair(t, n, "cli", "srv")
	l, err := n.Host("srv").Listen("8")
	if err != nil {
		t.Fatal(err)
	}
	stop := startEcho(t, l)
	defer stop()
	healthy, err := n.Host("cli").Dial("srv:8")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	const extra = 40 * time.Millisecond
	n.SetAddrFault("srv:7", Fault{ExtraLatency: extra})

	start := time.Now()
	if err := echoOnce(healthy, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= extra {
		t.Fatalf("co-located healthy service delayed %v by an addr fault on the sick one", d)
	}
	start = time.Now()
	if err := echoOnce(sick, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*extra {
		t.Fatalf("addr-faulted echo took %v, want >= %v", d, 2*extra)
	}
}
