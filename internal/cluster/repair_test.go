package cluster_test

import (
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/repair"
)

// TestRestartZeroesRepairCounters pins the stats-honesty fix: repair
// counters belong to the running provider service, so a provider
// restarted after doing repair work reports zero — post-restart stats
// must never claim the dead incarnation's pulls.
func TestRestartZeroesRepairCounters(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		DataReplicas:  2,
		DataDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, 4<<10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, make([]byte, 4*(4<<10)), 0); err != nil {
		t.Fatal(err)
	}

	// Degrade provider 0, repair it, and observe its counters move.
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}
	rep, err := repair.New(c).RepairBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesRepaired == 0 {
		t.Fatalf("setup: nothing repaired: %+v", rep)
	}
	if got := cl.DataServices[0].Snapshot(); got.RepairedPages == 0 || got.RepairBytes == 0 {
		t.Fatalf("setup: provider 0 reports no repair work: %+v", got)
	}

	// A crash-and-relaunch must start the counters over.
	if err := cl.RestartDataProvider(0); err != nil {
		t.Fatal(err)
	}
	st := cl.DataServices[0].Snapshot()
	if st.RepairedPages != 0 || st.RepairBytes != 0 || st.BloomSkips != 0 {
		t.Fatalf("post-restart repair counters = %d/%d/%d, want zero",
			st.RepairedPages, st.RepairBytes, st.BloomSkips)
	}
	// The repaired pages themselves are durable — only the counters reset.
	if st.PageCount == 0 {
		t.Fatal("repaired pages lost across restart")
	}
}

// TestHeartbeatDeathTriggersRepair pins the ROADMAP follow-up: the
// repair pass fires from provider-manager death detection, not from
// the RepairInterval timer. With the interval set to an hour, only the
// DeathWatch trigger can explain redundancy returning within seconds.
func TestHeartbeatDeathTriggersRepair(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders:     3,
		MetaProviders:     3,
		DataReplicas:      2,
		DataDir:           t.TempDir(),
		HeartbeatInterval: 10 * time.Millisecond,
		RepairInterval:    time.Hour, // the timer alone would never fire in-test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, 4<<10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, make([]byte, 8*(4<<10)), 0); err != nil {
		t.Fatal(err)
	}
	fullPages := cl.TotalDataPages()

	// The node "dies silently": heartbeats stop, and its disk is lost.
	// (The replacement keeps serving RPCs at the same address so the
	// repair pass has somewhere to push replicas back to.)
	cl.StopProviderHeartbeat(0)
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}
	if cl.TotalDataPages() == fullPages {
		t.Fatal("setup: wipe removed nothing")
	}

	deadline := time.Now().Add(10 * time.Second)
	for cl.TotalDataPages() != fullPages {
		if time.Now().After(deadline) {
			t.Fatalf("death-triggered repair did not restore redundancy (%d/%d pages)",
				cl.TotalDataPages(), fullPages)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
