package cluster

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"blob/internal/trace"
)

// TestTracedWriteSpansThreeProcesses is the tracing acceptance test: one
// traced WriteBlob against the simulated cluster must leave spans in at
// least three processes' ring buffers (client, version manager, data
// provider), reassemblable into a single tree rooted at core.WriteBlob.
func TestTracedWriteSpansThreeProcesses(t *testing.T) {
	c, err := Launch(Config{
		DataProviders:    2,
		MetaProviders:    2,
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ctx := context.Background()
	cl, err := c.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	b, err := cl.CreateBlob(ctx, 4096, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 4*4096)
	if _, err := b.Write(ctx, data, 0); err != nil {
		t.Fatal(err)
	}

	// The client's ring holds the root span; its trace id keys the
	// cluster-wide gather.
	var traceID uint64
	for _, sp := range cl.Tracer().Spans() {
		if sp.Name == "core.WriteBlob" {
			traceID = sp.TraceID
		}
	}
	if traceID == 0 {
		t.Fatal("no core.WriteBlob root span recorded on the client")
	}

	spans := c.TraceSpans(traceID)
	if procs := trace.Processes(spans); procs < 3 {
		t.Fatalf("trace %#x spans %d processes, want >= 3:\n%s",
			traceID, procs, trace.FormatTree(trace.BuildTree(spans)))
	}
	roots := trace.BuildTree(spans)
	if len(roots) != 1 || roots[0].Span.Name != "core.WriteBlob" {
		t.Fatalf("expected one tree rooted at core.WriteBlob, got %d roots:\n%s",
			len(roots), trace.FormatTree(roots))
	}
	tree := trace.FormatTree(roots)
	for _, want := range []string{"write.push", "write.meta", "write.commit", "provider.MPutPages", "vmanager."} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}

	// The same spans are reachable over the wire the way blobctl trace
	// gathers them: every node serves its ring via the MSpans RPC.
	resp, err := cl.Pool().Call(ctx, c.VMAddr, trace.MSpans, trace.EncodeSpansQuery(traceID))
	if err != nil {
		t.Fatalf("MSpans on vmanager: %v", err)
	}
	remote, err := trace.DecodeSpans(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) == 0 {
		t.Fatal("vmanager served no spans for the trace over MSpans")
	}
}
