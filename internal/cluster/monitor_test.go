package cluster_test

import (
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/events"
	"blob/internal/monitor"
)

// waitHealth polls the embedded monitor until the verdict matches (and
// check, when set, also passes) or the deadline expires.
func waitHealth(t *testing.T, cl *cluster.Cluster, want string, check func(monitor.ClusterSnapshot) bool, timeout time.Duration) monitor.ClusterSnapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last monitor.ClusterSnapshot
	for {
		last = cl.Mon.Snapshot()
		if last.Health == want && (check == nil || check(last)) {
			return last
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor never reached %s (health %q, reasons %v)", want, last.Health, last.Reasons)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorKillProviderDrill is the acceptance drill: a provider dies
// silently, the monitor turns yellow with the death visible in its
// event tail, death-triggered repair restores redundancy (debt back to
// zero), and once the node's heartbeats resume the verdict returns to
// green. The repair interval is an hour, so any repair seen here was
// driven by death detection, not the timer.
func TestMonitorKillProviderDrill(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders:     3,
		MetaProviders:     3,
		DataReplicas:      2,
		DataDir:           t.TempDir(),
		HeartbeatInterval: 10 * time.Millisecond,
		RepairInterval:    time.Hour,
		Monitor:           true,
		MonitorInterval:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, 4<<10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, make([]byte, 8*(4<<10)), 0); err != nil {
		t.Fatal(err)
	}
	fullPages := cl.TotalDataPages()

	green := waitHealth(t, cl, monitor.HealthGreen, nil, 5*time.Second)
	if green.DeadProviders != 0 || len(green.Providers) != 3 {
		t.Fatalf("baseline snapshot wrong: %+v", green)
	}

	// The node dies silently: heartbeats stop and its disk is lost. The
	// replacement keeps serving at the same address, so repair has
	// somewhere to push replicas back to.
	cl.StopProviderHeartbeat(0)
	if err := cl.WipeDataProvider(0); err != nil {
		t.Fatal(err)
	}

	yellow := waitHealth(t, cl, monitor.HealthYellow, func(s monitor.ClusterSnapshot) bool {
		return s.DeadProviders == 1
	}, 10*time.Second)
	if len(yellow.Reasons) == 0 {
		t.Fatalf("yellow verdict carries no reasons: %+v", yellow)
	}

	// Redundancy converges back without the node: death-triggered
	// repair restores every page, and the sweep's finish event drives
	// the monitor's debt back to zero.
	deadline := time.Now().Add(10 * time.Second)
	for cl.TotalDataPages() != fullPages {
		if time.Now().After(deadline) {
			t.Fatalf("repair did not restore redundancy (%d/%d pages)", cl.TotalDataPages(), fullPages)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The node comes back: heartbeats resume, the manager re-admits it,
	// and with debt zero and nobody dead the verdict returns to green.
	cl.ResumeProviderHeartbeat(0)
	waitHealth(t, cl, monitor.HealthGreen, func(s monitor.ClusterSnapshot) bool {
		return s.DeadProviders == 0 && s.RedundancyDebt == 0 && !s.RepairPending
	}, 10*time.Second)

	// The monitor's merged event tail must tell the story in order:
	// the death was detected, then a sweep started, then it finished.
	tail := cl.Mon.EventsSince(0, events.SevInfo)
	var death, start, finish int64
	for _, e := range tail {
		switch e.Type {
		case events.HeartbeatDeath:
			if death == 0 {
				death = e.Time
			}
		case events.RepairStart:
			if start == 0 {
				start = e.Time
			}
		case events.RepairFinish:
			if finish == 0 && e.Time >= start && start > 0 {
				finish = e.Time
			}
		}
	}
	if death == 0 || start == 0 || finish == 0 {
		t.Fatalf("event tail missing the drill's transitions (death %d, start %d, finish %d):\n%v",
			death, start, finish, tail)
	}
	if !(death <= start && start <= finish) {
		t.Fatalf("events out of order: death %d, repair-start %d, repair-finish %d", death, start, finish)
	}

	// The in-process merged journal view agrees.
	all := cl.Events()
	if len(all) == 0 {
		t.Fatal("cluster.Events returned nothing")
	}
}

// TestMonitorSnapshotRPC smoke-tests the federated plane end to end
// inside netsim: the embedded monitor's rollup reflects the deployment
// (providers, shard leaders) and the event journals feed its tail.
func TestMonitorSnapshotRPC(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders:     2,
		MetaProviders:     2,
		DataReplicas:      2,
		HeartbeatInterval: 10 * time.Millisecond,
		VShards:           2,
		VReplicas:         3,
		VMHeartbeat:       20 * time.Millisecond,
		Monitor:           true,
		MonitorInterval:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	snap := waitHealth(t, cl, monitor.HealthGreen, func(s monitor.ClusterSnapshot) bool {
		if len(s.Providers) != 2 || len(s.Shards) != 2 {
			return false
		}
		for _, sh := range s.Shards {
			if sh.Leader < 0 || sh.Reachable != 3 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	// The pm journal's registration events must have reached the
	// monitor's merged tail (a clean boot elects nobody — replica 0
	// starts out leading — so membership is the guaranteed traffic).
	refreshes := 0
	for _, e := range cl.Mon.EventsSince(0, events.SevInfo) {
		if e.Type == events.MembershipRefresh {
			refreshes++
		}
	}
	if refreshes < 2 {
		t.Fatalf("want ≥2 membership-refresh events in the monitor tail, got %d (snapshot %+v)", refreshes, snap)
	}
}
