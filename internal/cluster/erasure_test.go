package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"blob/internal/cluster"
	"blob/internal/erasure"
	"blob/internal/repair"
)

// launchRS starts a 6-provider rs(4,2) deployment (persistent when dir
// is non-empty) and writes a multi-stripe, multi-write data set,
// returning the expected latest contents.
func launchRS(t *testing.T, dir string) (*cluster.Cluster, []byte, uint64) {
	t.Helper()
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		CoLocate:      true,
		Redundancy:    erasure.Redundancy{K: 4, M: 2},
		DataDir:       dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		cl.Shutdown()
		t.Fatal(err)
	}
	defer c.Close()

	const pageSize = 1 << 10
	b, err := c.CreateBlob(ctx, pageSize, 1<<20)
	if err != nil {
		cl.Shutdown()
		t.Fatal(err)
	}
	if got := b.Redundancy(); got != (erasure.Redundancy{K: 4, M: 2}) {
		cl.Shutdown()
		t.Fatalf("blob redundancy = %v (client adoption of the advertised mode failed)", got)
	}

	// 3 writes x 10 pages: full stripes plus a short final stripe each,
	// overlapping so several versions stay live.
	rng := rand.New(rand.NewSource(7))
	want := make([]byte, 24*pageSize)
	for i := 0; i < 3; i++ {
		seg := make([]byte, 10*pageSize)
		rng.Read(seg)
		off := uint64(i) * 7 * pageSize
		if _, err := b.Write(ctx, seg, off); err != nil {
			cl.Shutdown()
			t.Fatalf("write %d: %v", i, err)
		}
		copy(want[off:], seg)
	}
	return cl, want, b.ID()
}

// readAll reads the whole expected extent with a fresh client.
func readAll(t *testing.T, cl *cluster.Cluster, blobID uint64, want []byte) error {
	t.Helper()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return err
	}
	defer c.Close()
	b, err := c.OpenBlob(ctx, blobID)
	if err != nil {
		return err
	}
	buf := make([]byte, len(want))
	if _, err := b.ReadLatest(ctx, buf, 0); err != nil {
		return err
	}
	if !bytes.Equal(buf, want) {
		return fmt.Errorf("read content mismatch")
	}
	return nil
}

// TestErasureRoundTrip covers the healthy rs(4,2) path: striped writes
// (including short stripes), reads, and the expected storage footprint.
func TestErasureRoundTrip(t *testing.T) {
	cl, want, blobID := launchRS(t, "")
	defer cl.Shutdown()
	if err := readAll(t, cl, blobID, want); err != nil {
		t.Fatal(err)
	}
	// 30 logical pages in stripes of (4,2),(4,2),(2,2) per 10-page
	// write: 10 data + 6 parity = 16 shards per write, 48 total.
	if got := cl.TotalDataPages(); got != 48 {
		t.Fatalf("stored shards = %d, want 48 (data+parity)", got)
	}
}

// TestErasureDegradedReads is the fault-tolerance half of the
// acceptance bar: with any 2 of the 6 providers stopped, every page
// must remain readable via inline stripe reconstruction. Providers are
// persistent so each pair's restart brings its shards back (a RAM
// provider restarts empty, which would accumulate losses beyond m).
func TestErasureDegradedReads(t *testing.T) {
	cl, want, blobID := launchRS(t, t.TempDir())
	defer cl.Shutdown()

	// All distinct provider pairs: rs(4,2) must survive every one.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			cl.DataServers[i].Close()
			cl.DataServers[j].Close()
			if err := readAll(t, cl, blobID, want); err != nil {
				t.Fatalf("read with providers %d,%d stopped: %v", i, j, err)
			}
			if err := cl.RestartDataProvider(i); err != nil {
				t.Fatal(err)
			}
			if err := cl.RestartDataProvider(j); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestErasureReconstructionRepair is the acceptance scenario: a
// 6-provider rs(4,2) cluster with one provider's data dir wiped returns
// to full redundancy via the repair agent's reconstruction plan, proven
// by a clean second pass and by reads surviving two further stops.
func TestErasureReconstructionRepair(t *testing.T) {
	cl, want, blobID := launchRS(t, t.TempDir())
	defer cl.Shutdown()
	ctx := context.Background()
	fullPages := cl.TotalDataPages()

	if err := cl.WipeDataProvider(2); err != nil {
		t.Fatal(err)
	}
	if cl.TotalDataPages() == fullPages {
		t.Fatal("setup: wipe removed nothing")
	}

	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agent := repair.New(c)
	rep, err := agent.RepairBlob(ctx, blobID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesReconstructed == 0 {
		t.Fatalf("repair reconstructed nothing: %+v", rep)
	}
	if !rep.FullyRedundant() {
		t.Fatalf("repair left slots degraded: %+v", rep)
	}
	if got := cl.TotalDataPages(); got != fullPages {
		t.Fatalf("pages after repair = %d, want %d", got, fullPages)
	}

	// Convergence proof: a second pass finds nothing missing.
	verify, err := agent.RepairBlob(ctx, blobID)
	if err != nil {
		t.Fatal(err)
	}
	if verify.PagesMissing != 0 || !verify.FullyRedundant() {
		t.Fatalf("verify pass = %+v, want clean", verify)
	}

	// Full redundancy restored: any two providers (including the
	// repaired one) may now stop without losing a page.
	cl.DataServers[2].Close()
	cl.DataServers[5].Close()
	if err := readAll(t, cl, blobID, want); err != nil {
		t.Fatalf("read after repair with providers 2,5 stopped: %v", err)
	}
}
