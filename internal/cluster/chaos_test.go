package cluster_test

// Chaos smoke (docs/robustness.md): concurrent writers and readers over
// the simulated fabric while the new fault API degrades it mid-run — a
// gray-slow provider, a flaky provider dropping a quarter of its
// connections, a flaky reader-to-storage link — with hedging and
// breakers enabled, the production shape. The invariants are absolute,
// not statistical: an acked write is never lost (its bytes reread
// identical after the storm), and a pinned version rereads
// byte-identical even while the fabric is misbehaving. Operations may
// fail transiently under the storm; they may never lie. CI runs this
// under the race detector alongside the snapshot-isolation drill.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/meta"
)

func TestChaosStormNoAckedWriteLoss(t *testing.T) {
	ctx := context.Background()
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 4,
		MetaProviders: 4,
		DataReplicas:  2,
		Breakers:      true,
		// A write killed mid-flight by a dropped connection leaves its
		// allocated version uncommitted; dead-writer repair is what
		// unblocks the publish window behind the hole. Any deployment
		// facing real faults runs with it armed.
		RepairTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	const (
		page      = 1 << 10
		regPages  = 8 // pages per writer region
		writers   = 2
		perWriter = 10
		readers   = 2
	)

	admin, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	blob, err := admin.CreateBlob(ctx, page, writers*regPages*page)
	if err != nil {
		t.Fatal(err)
	}

	// acked records every write the storm acknowledged: version, offset,
	// and the exact bytes. The final sweep holds each one to its ack.
	type ackedWrite struct {
		v    meta.Version
		off  uint64
		data []byte
	}
	var (
		mu    sync.Mutex
		acked []ackedWrite
	)

	// retry runs op until it succeeds or the storm budget runs out —
	// transient failures under injected faults are legitimate; only
	// giving up entirely is not.
	retry := func(what string, op func() error) error {
		var err error
		for i := 0; i < 60; i++ {
			if err = op(); err == nil {
				return nil
			}
			time.Sleep(25 * time.Millisecond)
		}
		return fmt.Errorf("%s: retries exhausted: %w", what, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	// The storm: a gray-slow provider, a flaky provider, a flaky
	// reader-to-storage link; heal and re-injure midway so recovery
	// paths run too. All cleared before the final sweep.
	stormDone := make(chan struct{})
	var stormWg sync.WaitGroup
	stormWg.Add(1)
	go func() {
		defer stormWg.Done()
		cl.SlowProvider(0, 20*time.Millisecond, 5*time.Millisecond)
		cl.FlakyProvider(1, 0.25)
		cl.FlakyLink("reader0", cl.DataHostName(2), 0.2)
		select {
		case <-time.After(300 * time.Millisecond):
		case <-stormDone:
			return
		}
		cl.Heal()
		select {
		case <-time.After(100 * time.Millisecond):
		case <-stormDone:
			return
		}
		cl.SlowProvider(2, 20*time.Millisecond, 5*time.Millisecond)
		cl.FlakyProvider(3, 0.25)
		<-stormDone
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClientAt(ctx, fmt.Sprintf("writer%d", w))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			b, err := c.OpenBlob(ctx, blob.ID())
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(w)*97 + 11))
			off := uint64(w) * regPages * page
			for i := 0; i < perWriter; i++ {
				seg := make([]byte, regPages*page)
				rng.Read(seg)
				var v meta.Version
				err := retry(fmt.Sprintf("writer%d write %d", w, i), func() error {
					var werr error
					v, werr = b.Write(ctx, seg, off)
					return werr
				})
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				acked = append(acked, ackedWrite{v, off, seg})
				mu.Unlock()
			}
		}(w)
	}

	writersDone := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := cl.NewClientAt(ctx, fmt.Sprintf("reader%d", r))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			b, err := c.OpenBlob(ctx, blob.ID())
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(r)*31 + 7))
			buf := make([]byte, regPages*page)
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				mu.Lock()
				var aw ackedWrite
				if len(acked) > 0 {
					aw = acked[rng.Intn(len(acked))]
					aw.data = append([]byte(nil), aw.data...)
				}
				mu.Unlock()
				if aw.data == nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				// Pinned read mid-storm: transient errors are tolerated,
				// wrong bytes never.
				if _, err := b.Read(ctx, buf, aw.off, aw.v); err != nil {
					continue
				}
				if !bytes.Equal(buf, aw.data) {
					errs <- fmt.Errorf("reader%d: pinned read of v%v at %d returned wrong bytes mid-storm",
						r, aw.v, aw.off)
					return
				}
			}
		}(r)
	}

	go func() {
		// Close writersDone when every writer goroutine has finished; the
		// readers poll it. Writer completion is observable through acked
		// only with errs as the failure channel, so wait on the count.
		for {
			mu.Lock()
			n := len(acked)
			mu.Unlock()
			if n >= writers*perWriter || len(errs) > 0 {
				close(writersDone)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stormDone)
	stormWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The storm is over; the fabric is healed. Every acked write must
	// reread byte-identical at its pinned version — zero tolerance now.
	cl.Heal()
	buf := make([]byte, regPages*page)
	mu.Lock()
	final := append([]ackedWrite(nil), acked...)
	mu.Unlock()
	if len(final) != writers*perWriter {
		t.Fatalf("acked %d writes, want %d", len(final), writers*perWriter)
	}
	for _, aw := range final {
		if _, err := blob.Read(ctx, buf, aw.off, aw.v); err != nil {
			t.Fatalf("acked write v%v at %d lost after heal: %v", aw.v, aw.off, err)
		}
		if !bytes.Equal(buf, aw.data) {
			t.Fatalf("acked write v%v at %d rereads different bytes after heal", aw.v, aw.off)
		}
	}
}
