package cluster_test

// Fault-injection tests for the sharded, replicated version plane
// (docs/vmanager-group.md). The marquee scenario: kill one shard's
// leader in the middle of a publish storm and prove that (a) the other
// shards never stall, (b) the killed shard resumes under a new leader,
// and (c) no acked publish is ever lost.

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/netsim"
	"blob/internal/vmanager"
)

// vmGroupConfig returns a cluster config for a VShards x VReplicas
// version plane with election timings fast enough for test-scale
// failovers.
func vmGroupConfig(shards, replicas int) cluster.Config {
	return cluster.Config{
		DataProviders: 3, MetaProviders: 3,
		VShards: shards, VReplicas: replicas,
		VMHeartbeat:       4 * time.Millisecond,
		VMElectionTimeout: 30 * time.Millisecond,
	}
}

// blobPerShard creates blobs until every vmanager shard owns at least
// one, returning one open blob per shard (indexed by shard).
func blobPerShard(t *testing.T, ctx context.Context, c *core.Client, shards int) []*core.Blob {
	t.Helper()
	blobs := make([]*core.Blob, shards)
	covered := 0
	for i := 0; i < 16*shards && covered < shards; i++ {
		b, err := c.CreateBlob(ctx, pageSize, 16*pageSize)
		if err != nil {
			t.Fatalf("create blob %d: %v", i, err)
		}
		if s := vmanager.ShardOf(shards, b.ID()); blobs[s] == nil {
			blobs[s] = b
			covered++
		}
	}
	if covered < shards {
		t.Fatalf("only %d of %d shards own a blob", covered, shards)
	}
	return blobs
}

// TestVMGroupKillLeaderMidStorm runs a concurrent publish storm across a
// 3-shard x 3-replica version plane through the full client stack (data
// pages, metadata, version commits), kills shard 0's leader mid-storm,
// and asserts the three fault-tolerance claims the design document
// makes: unaffected shards keep publishing throughout the outage, the
// killed shard elects a new leader and resumes, and every write the
// storm saw acked is still published afterwards.
func TestVMGroupKillLeaderMidStorm(t *testing.T) {
	cfg := vmGroupConfig(3, 3)
	// Repair must be armed: a writer whose commit response is lost in
	// the crash leaves a pending version that would otherwise block the
	// publish chain forever.
	cfg.RepairTimeout = 150 * time.Millisecond
	cl, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	blobs := blobPerShard(t, ctx, c, 3)

	// One writer per shard. Each records the versions its writes were
	// acked at; acked slices are read only after the writers exit.
	var (
		stop  = make(chan struct{})
		wg    sync.WaitGroup
		succ  [3]atomic.Uint64
		acked [3][]meta.Version
	)
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(s + 1)}, pageSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wctx, cancel := context.WithTimeout(ctx, 3*time.Second)
				v, err := blobs[s].Write(wctx, payload, uint64(i%4)*pageSize)
				cancel()
				if err == nil {
					acked[s] = append(acked[s], v)
					succ[s].Add(1)
				}
			}
		}(s)
	}
	waitCount := func(s int, min uint64, d time.Duration) {
		t.Helper()
		deadline := time.Now().Add(d)
		for succ[s].Load() < min {
			if time.Now().After(deadline) {
				t.Fatalf("shard %d: stuck at %d acked writes, want >= %d", s, succ[s].Load(), min)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Warm up: every shard must be publishing before the fault.
	for s := 0; s < 3; s++ {
		waitCount(s, 5, 10*time.Second)
	}

	// Crash shard 0's leader mid-storm.
	leader := cl.VMShardLeader(0)
	if leader < 0 {
		t.Fatal("shard 0 has no leader")
	}
	before0, before1, before2 := succ[0].Load(), succ[1].Load(), succ[2].Load()
	if err := cl.KillVMReplica(0, leader); err != nil {
		t.Fatal(err)
	}

	// The unaffected shards never stall: they make progress during the
	// outage window, before shard 0 has recovered.
	waitCount(1, before1+5, 10*time.Second)
	waitCount(2, before2+5, 10*time.Second)

	// The killed shard hands off and resumes.
	newLeader := cl.WaitVMLeader(0, leader, 10*time.Second)
	if newLeader < 0 {
		t.Fatal("shard 0 elected no new leader")
	}
	if newLeader == leader {
		t.Fatalf("dead replica %d still leads shard 0", leader)
	}
	waitCount(0, before0+5, 10*time.Second)

	// The crashed replica rejoins and catches up from the new leader.
	if err := cl.RestartVMReplica(0, leader); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Zero acked-publish loss: for every shard, the latest published
	// version reaches the storm's high-water mark (repair may first have
	// to clear a crash-orphaned pending version), and every acked write
	// sits in the history, not aborted.
	for s := 0; s < 3; s++ {
		if len(acked[s]) == 0 {
			t.Fatalf("shard %d: no acked writes", s)
		}
		max := acked[s][0]
		for _, v := range acked[s] {
			if v > max {
				max = v
			}
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			v, _, err := blobs[s].Latest(ctx)
			if err == nil && v >= max {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d: latest %v (err %v) never reached acked v%d", s, v, err, max)
			}
			time.Sleep(5 * time.Millisecond)
		}
		hist, err := c.VersionManager().History(ctx, blobs[s].ID(), 0, ^uint64(0))
		if err != nil {
			t.Fatalf("shard %d history: %v", s, err)
		}
		byVersion := make(map[meta.Version]vmanager.WriteRecord, len(hist))
		for _, rec := range hist {
			byVersion[rec.Version] = rec
		}
		for _, v := range acked[s] {
			rec, ok := byVersion[v]
			if !ok {
				t.Errorf("shard %d: acked v%d missing from history", s, v)
			} else if rec.Aborted {
				t.Errorf("shard %d: acked v%d was aborted", s, v)
			}
		}
	}

	// The restarted replica converges with its shard once the storm
	// quiesces: same term, same log length as the current leader.
	deadline := time.Now().Add(10 * time.Second)
	for {
		lead := cl.VMShardLeader(0)
		rep := cl.VMReplica(0, leader)
		if lead >= 0 && rep != nil {
			ls, rs := cl.VMReplica(0, lead).Status(), rep.Status()
			if rs.Term == ls.Term && rs.LogLen == ls.LogLen && rs.Blobs == ls.Blobs {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never converged with shard 0")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestVMGroupPartitionHealStress drives concurrent AssignVersion/Commit
// traffic against both shards of a 2x3 group while the test repeatedly
// partitions the current leader of alternating shards, waits out the
// election, and heals the stale leader. Run under -race this exercises
// every replica-state transition concurrently with client traffic. After
// the last heal every shard must still accept writes and all replicas of
// a shard must converge to one term and log.
func TestVMGroupPartitionHealStress(t *testing.T) {
	cl, err := cluster.Launch(vmGroupConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vm := c.VersionManager()

	blobs := blobPerShard(t, ctx, c, 2)

	var (
		stop sync.Once
		done = make(chan struct{})
		wg   sync.WaitGroup
		succ [2]atomic.Uint64
	)
	// Two writers per shard, all through the redirect-following group
	// client; errors during partitions are expected, successes must be
	// replicated mutations.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := w % 2
			id := blobs[s].ID()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				octx, cancel := context.WithTimeout(ctx, time.Second)
				a, err := vm.AssignVersion(octx, id, uint64(1000*w+i), 0, pageSize, false)
				if err == nil {
					if _, err = vm.Commit(octx, id, a.Version, false); err == nil {
						succ[s].Add(1)
					}
				}
				cancel()
			}
		}(w)
	}
	defer func() { stop.Do(func() { close(done) }); wg.Wait() }()

	for round := 0; round < 6; round++ {
		s := round % 2
		leader := cl.WaitVMLeader(s, -1, 10*time.Second)
		if leader < 0 {
			t.Fatalf("round %d: shard %d has no leader", round, s)
		}
		cl.PartitionVMReplica(s, leader)
		next := cl.WaitVMLeader(s, leader, 10*time.Second)
		if next < 0 {
			t.Fatalf("round %d: shard %d elected no successor to %d", round, s, leader)
		}
		cl.HealVMReplica(s, leader)
		time.Sleep(20 * time.Millisecond)
	}
	stop.Do(func() { close(done) })
	wg.Wait()

	for s := 0; s < 2; s++ {
		if succ[s].Load() == 0 {
			t.Errorf("shard %d: no write ever succeeded", s)
		}
		// The shard still takes writes after the final heal.
		a, err := vm.AssignVersion(ctx, blobs[s].ID(), 9999, 0, pageSize, false)
		if err != nil {
			t.Fatalf("shard %d post-heal assign: %v", s, err)
		}
		if _, err := vm.Commit(ctx, blobs[s].ID(), a.Version, false); err != nil {
			t.Fatalf("shard %d post-heal commit: %v", s, err)
		}
		// All three replicas converge: healed stale leaders resync to
		// the incumbent's term and log.
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := make([]vmanager.ReplicaStatus, 3)
			for j := 0; j < 3; j++ {
				st[j] = cl.VMReplica(s, j).Status()
			}
			if st[0].Term == st[1].Term && st[1].Term == st[2].Term &&
				st[0].LogLen == st[1].LogLen && st[1].LogLen == st[2].LogLen {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d replicas never converged: %+v", s, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestVMGroupElectionUnderLatency reruns leader handoff on a fabric with
// a materialized 1 ms one-way delay, so heartbeats, election timeouts
// and snapshot catch-up all ride visibly slower links (the
// netsim-delayed election variant).
func TestVMGroupElectionUnderLatency(t *testing.T) {
	cfg := cluster.Config{
		DataProviders: 3, MetaProviders: 3,
		Net:     netsim.Config{Latency: time.Millisecond},
		VShards: 1, VReplicas: 3,
		VMHeartbeat:       10 * time.Millisecond,
		VMElectionTimeout: 80 * time.Millisecond,
	}
	cl, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vm := c.VersionManager()

	blob, err := vm.CreateBlob(ctx, pageSize, 16*pageSize, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	var last meta.Version
	publish := func(writeID uint64) {
		t.Helper()
		a, err := vm.AssignVersion(ctx, blob, writeID, 0, pageSize, false)
		if err != nil {
			t.Fatalf("assign %d: %v", writeID, err)
		}
		if _, err := vm.Commit(ctx, blob, a.Version, true); err != nil {
			t.Fatalf("commit %d: %v", writeID, err)
		}
		last = a.Version
	}
	for i := 0; i < 5; i++ {
		publish(uint64(100 + i))
	}

	leader := cl.VMShardLeader(0)
	if leader < 0 {
		t.Fatal("no leader")
	}
	if err := cl.KillVMReplica(0, leader); err != nil {
		t.Fatal(err)
	}
	if next := cl.WaitVMLeader(0, leader, 15*time.Second); next < 0 {
		t.Fatal("no new leader under latency")
	}
	if v, _, err := vm.Latest(ctx, blob); err != nil || v != last {
		t.Fatalf("latest after handoff = v%d, %v; want v%d", v, err, last)
	}
	publish(200)
	if err := cl.RestartVMReplica(0, leader); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		lead := cl.VMShardLeader(0)
		rep := cl.VMReplica(0, leader)
		if lead >= 0 && rep != nil {
			ls, rs := cl.VMReplica(0, lead).Status(), rep.Status()
			if rs.Term == ls.Term && rs.LogLen == ls.LogLen {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never caught up over the slow fabric")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVMGroupRoutingAndStatus sanity-checks the per-blob shard routing
// the clients use: blobs created round-robin land on distinct shards,
// redirects reach the right leader, and FetchStatus exposes each
// replica's view (what blobctl vmstatus prints).
func TestVMGroupRoutingAndStatus(t *testing.T) {
	cl, err := cluster.Launch(vmGroupConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vm := c.VersionManager()

	if got := len(vm.Shards()); got != 3 {
		t.Fatalf("client sees %d shards, want 3", got)
	}
	blobs := blobPerShard(t, ctx, c, 3)
	for s, b := range blobs {
		if _, err := b.Write(ctx, bytes.Repeat([]byte{7}, pageSize), 0); err != nil {
			t.Fatalf("shard %d write: %v", s, err)
		}
		// Only the owning shard knows the blob.
		for s2 := 0; s2 < 3; s2++ {
			for j := 0; j < 2; j++ {
				st, err := vm.FetchStatus(ctx, s2, j)
				if err != nil {
					t.Fatalf("status s%dr%d: %v", s2, j, err)
				}
				if st.Shard != s2 || st.Index != j {
					t.Fatalf("status s%dr%d reports s%dr%d", s2, j, st.Shard, st.Index)
				}
			}
		}
	}
	// Each shard's Blobs union equals the full blob set.
	all, err := vm.Blobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, len(all))
	for _, id := range all {
		seen[id] = true
	}
	for s, b := range blobs {
		if !seen[b.ID()] {
			t.Errorf("shard %d blob %d missing from group Blobs()", s, b.ID())
		}
	}
}
