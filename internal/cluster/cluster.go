// Package cluster assembles a full deployment of the system inside one
// process, over the simulated network fabric: a version manager, a
// provider manager (co-hosting the metadata directory), N data providers
// and M metadata providers — the paper's experimental topology, where
// each storage node hosts one data provider and one metadata provider and
// the two managers run on dedicated nodes.
//
// The same service implementations run over real TCP through
// cmd/blobnode; this package is the laboratory the tests, examples and
// benchmark harness use.
package cluster

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"blob/internal/core"
	"blob/internal/dht"
	"blob/internal/mstore"
	"blob/internal/netsim"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/vmanager"
)

// Config describes a deployment.
type Config struct {
	// DataProviders is the number of data provider processes (default 4).
	DataProviders int
	// MetaProviders is the number of metadata providers (default 4).
	MetaProviders int
	// CoLocate places data provider i and metadata provider i on the same
	// simulated host, sharing its NIC — the paper's topology (default
	// true when DataProviders == MetaProviders).
	CoLocate bool
	// DataReplicas is the page replication factor (default 1).
	DataReplicas int
	// MetaReplicas is the tree node replication factor (default 1).
	MetaReplicas int
	// Net is the simulated fabric configuration (latency/bandwidth);
	// zero value = instant network.
	Net netsim.Config
	// ProviderCapacity bounds each data provider's RAM (0 = unlimited).
	ProviderCapacity int64
	// Strategy is the page placement policy.
	Strategy pmanager.Strategy
	// RepairTimeout enables dead-writer repair at the version manager.
	RepairTimeout time.Duration
	// CacheNodes is the default client metadata cache size (0 disables,
	// negative = the paper's 2^20).
	CacheNodes int
	// HeartbeatInterval, when positive, starts per-provider heartbeat
	// loops and makes the provider manager filter silent providers after
	// 4 intervals.
	HeartbeatInterval time.Duration
	// MetaPutDelay models the metadata backend's per-entry put cost (the
	// BambooDHT asymmetry; see dht.Store.PutDelay). Zero for unit tests.
	MetaPutDelay time.Duration
	// MetaProcessDelay models the client-side per-node deserialization
	// cost (see mstore.Client.ProcessDelay). Zero for unit tests.
	MetaProcessDelay time.Duration
}

func (c *Config) fillDefaults() {
	if c.DataProviders <= 0 {
		c.DataProviders = 4
	}
	if c.MetaProviders <= 0 {
		c.MetaProviders = 4
	}
	if c.DataReplicas < 1 {
		c.DataReplicas = 1
	}
	if c.MetaReplicas < 1 {
		c.MetaReplicas = 1
	}
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config
	fab *netsim.Net

	VM  *vmanager.Manager
	PM  *pmanager.Manager
	Dir *dht.Directory

	DataStores []*provider.Store
	MetaStores []*dht.Store

	// DataServers and MetaServers expose the per-node RPC servers for
	// failure injection in tests (stopping one simulates a node crash).
	DataServers []*rpc.Server
	MetaServers []*rpc.Server

	VMAddr  string
	PMAddr  string
	DirAddr string

	servers   []*rpc.Server
	pools     []*rpc.Pool
	hbStop    chan struct{}
	clientSeq atomic.Int64
}

// hostDialer adapts a netsim host to rpc.Network.
type hostDialer struct{ h *netsim.Host }

// Dial implements rpc.Network.
func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

// Launch starts a deployment.
func Launch(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	c := &Cluster{
		cfg:    cfg,
		fab:    netsim.New(cfg.Net),
		hbStop: make(chan struct{}),
	}

	var lastServer *rpc.Server
	serve := func(host *netsim.Host, port string, register func(*rpc.Server)) (string, error) {
		srv := rpc.NewServer()
		register(srv)
		l, err := host.Listen(port)
		if err != nil {
			return "", err
		}
		srv.Start(l)
		c.servers = append(c.servers, srv)
		lastServer = srv
		return host.Name() + ":" + port, nil
	}

	// Provider manager + metadata directory share the "pm" node.
	var hbTimeout time.Duration
	if cfg.HeartbeatInterval > 0 {
		hbTimeout = 4 * cfg.HeartbeatInterval
	}
	c.PM = pmanager.New(pmanager.Config{
		Strategy:         cfg.Strategy,
		HeartbeatTimeout: hbTimeout,
		Replicas:         cfg.DataReplicas,
	})
	c.Dir = dht.NewDirectory()
	pmHost := c.fab.Host("pm")
	addr, err := serve(pmHost, "rpc", func(s *rpc.Server) {
		c.PM.RegisterHandlers(s)
		c.Dir.RegisterHandlers(s)
	})
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.PMAddr, c.DirAddr = addr, addr

	// Storage nodes.
	dataHost := func(i int) string {
		if cfg.CoLocate || (cfg.DataProviders == cfg.MetaProviders) {
			return fmt.Sprintf("node%d", i)
		}
		return fmt.Sprintf("data%d", i)
	}
	metaHost := func(i int) string {
		if cfg.CoLocate || (cfg.DataProviders == cfg.MetaProviders) {
			return fmt.Sprintf("node%d", i)
		}
		return fmt.Sprintf("meta%d", i)
	}
	for i := 0; i < cfg.DataProviders; i++ {
		st := provider.NewStore(cfg.ProviderCapacity)
		c.DataStores = append(c.DataStores, st)
		addr, err := serve(c.fab.Host(dataHost(i)), "data", st.RegisterHandlers)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.PM.Register(addr, cfg.ProviderCapacity)
		c.DataServers = append(c.DataServers, lastServer)
	}
	for i := 0; i < cfg.MetaProviders; i++ {
		st := dht.NewStore()
		st.PutDelay = cfg.MetaPutDelay
		c.MetaStores = append(c.MetaStores, st)
		addr, err := serve(c.fab.Host(metaHost(i)), "meta", st.RegisterHandlers)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Dir.Register(addr)
		c.MetaServers = append(c.MetaServers, lastServer)
	}

	// Version manager on its own node; its repair path needs a metadata
	// client dialing from the vm host.
	vmHost := c.fab.Host("vm")
	var repairStore vmanager.NodeStore
	if cfg.RepairTimeout > 0 {
		pool := rpc.NewPool(hostDialer{vmHost})
		c.pools = append(c.pools, pool)
		kv, err := dht.NewDirectoryClient(context.Background(), pool, c.DirAddr, cfg.MetaReplicas)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		repairStore = mstore.New(kv, 0)
	}
	c.VM = vmanager.New(vmanager.Config{
		RepairTimeout: cfg.RepairTimeout,
		Store:         repairStore,
	})
	c.VMAddr, err = serve(vmHost, "rpc", c.VM.RegisterHandlers)
	if err != nil {
		c.Shutdown()
		return nil, err
	}

	if cfg.HeartbeatInterval > 0 {
		c.startHeartbeats()
	}
	return c, nil
}

// startHeartbeats runs one reporting loop per data provider.
func (c *Cluster) startHeartbeats() {
	pool := rpc.NewPool(hostDialer{c.fab.Host("hb")})
	c.pools = append(c.pools, pool)
	for i, st := range c.DataStores {
		id := uint32(i + 1) // registration order matches IDs
		st := st
		go func() {
			t := time.NewTicker(c.cfg.HeartbeatInterval)
			defer t.Stop()
			for {
				select {
				case <-c.hbStop:
					return
				case <-t.C:
					snap := st.Snapshot()
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					pmanager.SendHeartbeat(ctx, pool, c.PMAddr, id, snap.BytesUsed, snap.ActiveOps)
					cancel()
				}
			}
		}()
	}
}

// ClientOptions returns core.Options for a client on the named simulated
// host (each client host has its own NIC, like the paper's client nodes).
func (c *Cluster) ClientOptions(hostName string) core.Options {
	return core.Options{
		Network:          hostDialer{c.fab.Host(hostName)},
		VManagerAddr:     c.VMAddr,
		PManagerAddr:     c.PMAddr,
		MetaDirAddr:      c.DirAddr,
		DataReplicas:     c.cfg.DataReplicas,
		MetaReplicas:     c.cfg.MetaReplicas,
		CacheNodes:       c.cfg.CacheNodes,
		MetaProcessDelay: c.cfg.MetaProcessDelay,
	}
}

// NewClient connects a client on a fresh simulated host.
func (c *Cluster) NewClient(ctx context.Context) (*core.Client, error) {
	seq := c.clientSeq.Add(1)
	return core.NewClient(ctx, c.ClientOptions(fmt.Sprintf("client%d", seq)))
}

// NewClientAt connects a client on a specific simulated host.
func (c *Cluster) NewClientAt(ctx context.Context, host string) (*core.Client, error) {
	return core.NewClient(ctx, c.ClientOptions(host))
}

// TotalDataPages sums the page counts across data providers.
func (c *Cluster) TotalDataPages() int64 {
	var n int64
	for _, st := range c.DataStores {
		n += st.Snapshot().PageCount
	}
	return n
}

// TotalMetaNodes sums stored tree nodes across metadata providers.
func (c *Cluster) TotalMetaNodes() int {
	n := 0
	for _, st := range c.MetaStores {
		n += st.Len()
	}
	return n
}

// Shutdown stops every service and the fabric.
func (c *Cluster) Shutdown() {
	select {
	case <-c.hbStop:
	default:
		close(c.hbStop)
	}
	if c.VM != nil {
		c.VM.Close()
	}
	for _, p := range c.pools {
		p.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
	c.fab.Close()
}
