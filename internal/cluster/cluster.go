// Package cluster assembles a full deployment of the system inside one
// process, over the simulated network fabric: a version manager, a
// provider manager (co-hosting the metadata directory), N data providers
// and M metadata providers — the paper's experimental topology, where
// each storage node hosts one data provider and one metadata provider and
// the two managers run on dedicated nodes.
//
// The same service implementations run over real TCP through
// cmd/blobnode; this package is the laboratory the tests, examples and
// benchmark harness use.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/core"
	"blob/internal/dht"
	"blob/internal/diskstore"
	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/monitor"
	"blob/internal/mstore"
	"blob/internal/netsim"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/repair"
	"blob/internal/rpc"
	"blob/internal/trace"
	"blob/internal/vmanager"
)

// Config describes a deployment.
type Config struct {
	// DataProviders is the number of data provider processes (default 4).
	DataProviders int
	// MetaProviders is the number of metadata providers (default 4).
	MetaProviders int
	// CoLocate places data provider i and metadata provider i on the same
	// simulated host, sharing its NIC — the paper's topology (default
	// true when DataProviders == MetaProviders).
	CoLocate bool
	// DataReplicas is the page replication factor (default 1). Ignored
	// when Redundancy selects erasure coding.
	DataReplicas int
	// Redundancy is the deployment's redundancy mode (docs/erasure.md):
	// the zero value keeps full replication at DataReplicas copies;
	// rs(k,m) stripes every new blob over k+m distinct providers with m
	// parity pages per stripe. The provider manager advertises the mode
	// and every cluster client (including the repair agent) adopts it.
	// Requires DataProviders >= k+m.
	Redundancy erasure.Redundancy
	// MetaReplicas is the tree node replication factor (default 1).
	MetaReplicas int
	// Net is the simulated fabric configuration (latency/bandwidth);
	// zero value = instant network.
	Net netsim.Config
	// ProviderCapacity bounds each data provider's RAM (0 = unlimited).
	ProviderCapacity int64
	// Strategy is the page placement policy.
	Strategy pmanager.Strategy
	// RepairTimeout enables dead-writer repair at the version manager.
	RepairTimeout time.Duration
	// CacheNodes is the default client metadata cache size (0 disables,
	// negative = the paper's 2^20).
	CacheNodes int
	// HeartbeatInterval, when positive, starts per-provider heartbeat
	// loops and makes the provider manager filter silent providers after
	// 4 intervals.
	HeartbeatInterval time.Duration
	// MetaPutDelay models the metadata backend's per-entry put cost (the
	// BambooDHT asymmetry; see dht.Store.PutDelay). Zero for unit tests.
	MetaPutDelay time.Duration
	// MetaProcessDelay models the client-side per-node deserialization
	// cost (see mstore.Client.ProcessDelay). Zero for unit tests.
	MetaProcessDelay time.Duration
	// DataDir, when non-empty, makes data providers persistent: provider
	// i keeps its pages in a diskstore segment log under
	// DataDir/provider-<i> and serves them again after a restart
	// (RestartDataProvider). Empty keeps the paper's RAM-only providers.
	DataDir string
	// SegmentSize is the disk-backed providers' segment file size
	// (0 = diskstore default, 4 MiB). Ignored without DataDir.
	SegmentSize int64
	// DiskCacheBytes, when positive, fronts each disk-backed provider
	// with a write-through RAM cache of that many bytes. Ignored without
	// DataDir.
	DiskCacheBytes int64
	// CompactEvery, when positive, runs each disk-backed provider's
	// segment compactor with that period. Ignored without DataDir.
	CompactEvery time.Duration
	// CompactRateBytes, when positive, throttles each disk-backed
	// provider's compaction I/O to roughly that many bytes per second so
	// reclamation cannot starve foreground page traffic. Ignored without
	// DataDir.
	CompactRateBytes int64
	// RepairInterval, when positive, runs a background replica-repair
	// agent (internal/repair, protocol in docs/replication.md) over every
	// blob with that period, so a replica set degraded by a provider
	// crash or disk loss returns to full strength without client
	// involvement. Provider-to-provider pulls are always served
	// regardless; the interval only drives the in-process agent.
	RepairInterval time.Duration
	// RepairRateBytes, when positive, throttles each provider's repair
	// page pulls to roughly that many bytes per second (token bucket,
	// like CompactRateBytes for compaction) so repair traffic cannot
	// starve foreground reads and writes.
	RepairRateBytes int64
	// VShards is the number of version-manager shards (default 1). With
	// VShards or VReplicas above 1 the deployment runs a sharded,
	// replicated vmanager group (docs/vmanager-group.md) instead of the
	// single Manager: blob ids place onto shards by ring hash, and each
	// shard is a leader + followers replica set.
	VShards int
	// VReplicas is the replica count per vmanager shard (default 1).
	// Mutations are acked by a follower quorum before returning.
	VReplicas int
	// VMHeartbeat is the shard leaders' idle append interval (default
	// 25ms — simulation-fast).
	VMHeartbeat time.Duration
	// VMElectionTimeout is the base silence before a follower
	// campaigns (default 8*VMHeartbeat).
	VMElectionTimeout time.Duration
	// VMMaxLogRecords caps each vmanager replica's in-memory publish
	// log (group mode only; 0 = the replica default). Beyond the cap
	// the leader drops the older half and lagging followers catch up
	// from a checkpoint snapshot instead of log replay. Tests set it
	// low to force truncation at small scale and prove historical
	// versions stay readable afterwards (the blob state checkpoints
	// carry every version's size and history; page metadata lives in
	// the DHT and is never truncated).
	VMMaxLogRecords int
	// VMAppendDelay simulates per-record log append durability cost at
	// each shard leader, slept under the shard's serializing lock — the
	// knob that makes publish throughput scale measurably with shard
	// count (bench.AblateVmanagerShards).
	VMAppendDelay time.Duration
	// TraceSampleEvery, when positive, arms every node role and every
	// cluster client with a span tracer sampling 1-in-N root operations
	// (1 = trace everything). Spans land in per-process ring buffers;
	// TraceSpans gathers one trace across all of them, like blobctl
	// trace does over MSpans in a real deployment. Zero disables
	// tracing entirely (the allocation-free path).
	TraceSampleEvery int
	// SlowThreshold is forwarded to each client's slow-request log (see
	// core.Options.SlowThreshold). Only meaningful with tracing armed.
	SlowThreshold time.Duration
	// EventRing overrides every node's event-journal ring size
	// (0 = events.DefaultRing; negative disables journals entirely).
	EventRing int
	// Breakers arms per-peer circuit breakers (rpc.BreakerConfig
	// defaults) on every cluster client's connection pool; breaker
	// transitions land in the client's event journal and surface
	// through Events and the monitor.
	Breakers bool
	// DisableHedging turns off clients' hedged reads (on by default;
	// the knob exists for the chaos bench ablation).
	DisableHedging bool
	// Monitor, when true, embeds a cluster monitor (internal/monitor)
	// polling the deployment from its own "monitor" host; Cluster.Mon
	// exposes it.
	Monitor bool
	// MonitorInterval is the embedded monitor's poll period
	// (0 = the monitor default, 1s).
	MonitorInterval time.Duration
}

func (c *Config) fillDefaults() {
	if c.DataProviders <= 0 {
		c.DataProviders = 4
	}
	if c.MetaProviders <= 0 {
		c.MetaProviders = 4
	}
	if c.DataReplicas < 1 {
		c.DataReplicas = 1
	}
	if c.MetaReplicas < 1 {
		c.MetaReplicas = 1
	}
	if c.VShards < 1 {
		c.VShards = 1
	}
	if c.VReplicas < 1 {
		c.VReplicas = 1
	}
	if c.VMHeartbeat <= 0 {
		c.VMHeartbeat = 25 * time.Millisecond
	}
	if c.VMElectionTimeout <= 0 {
		c.VMElectionTimeout = 8 * c.VMHeartbeat
	}
}

// vmGrouped reports whether the deployment runs the sharded/replicated
// vmanager plane rather than the single in-process Manager.
func (c *Config) vmGrouped() bool { return c.VShards > 1 || c.VReplicas > 1 }

// Cluster is a running deployment.
type Cluster struct {
	cfg Config
	fab *netsim.Net

	// VM is the single version manager (nil when the deployment runs a
	// vmanager group — see VMReplicas).
	VM  *vmanager.Manager
	PM  *pmanager.Manager
	Dir *dht.Directory

	// VMReplicas[s][r] is replica r of vmanager shard s (group mode
	// only); VMShardAddrs mirrors it with the replica RPC addresses and
	// VMServers with the per-replica RPC servers (for kill injection).
	VMReplicas   [][]*vmanager.Replica
	VMShardAddrs [][]string
	VMServers    [][]*rpc.Server

	// DataStores holds each data provider's storage backend: in-RAM
	// provider.Store by default, or a disk-backed (optionally cached)
	// stack when Config.DataDir is set.
	DataStores []provider.PageStore
	// DataServices hosts the RPC handlers over the corresponding
	// DataStores entry.
	DataServices []*provider.Service
	MetaStores   []*dht.Store

	// DataServers and MetaServers expose the per-node RPC servers for
	// failure injection in tests (stopping one simulates a node crash).
	DataServers []*rpc.Server
	MetaServers []*rpc.Server

	VMAddr  string
	PMAddr  string
	DirAddr string
	// RepairAddr serves the repair agent's event journal over MEvents
	// (set when Config.RepairInterval > 0 and journals are enabled).
	RepairAddr string

	// Mon is the embedded cluster monitor (Config.Monitor).
	Mon *monitor.Monitor

	dataHosts []string
	servers   []*rpc.Server
	pools     []*rpc.Pool
	hbStop    chan struct{}
	clientSeq atomic.Int64
	// repairNow wakes the repair loop ahead of its ticker when the
	// provider manager detects a heartbeat death (capacity 1: coalesces
	// a burst of deaths into one immediate pass).
	repairNow chan struct{}
	// hbProvStop lets tests kill one provider's heartbeat loop
	// (StopProviderHeartbeat) to simulate a silent node death.
	hbProvStop []chan struct{}

	// svcMu guards the Data* slice elements against RestartDataProvider
	// racing the heartbeat loops and the aggregate accessors. Tests that
	// index the exported slices directly must not do so concurrently
	// with RestartDataProvider.
	svcMu sync.RWMutex

	// traceMu guards tracers: one per node role and per client, created
	// lazily when Config.TraceSampleEvery is set.
	traceMu sync.Mutex
	tracers []*trace.Tracer

	// journalMu guards journals: one event journal per simulated node
	// (restart creates a fresh one, like a real process restart).
	journalMu     sync.Mutex
	journals      []*events.Journal
	repairJournal *events.Journal
	// hbPool is the heartbeat loops' shared client pool, retained so
	// ResumeProviderHeartbeat can relaunch a stopped loop.
	hbPool *rpc.Pool
}

// newTracer creates (and retains, for TraceSpans) a span tracer for the
// named node, or returns nil when tracing is disabled.
func (c *Cluster) newTracer(node string) *trace.Tracer {
	if c.cfg.TraceSampleEvery <= 0 {
		return nil
	}
	t := trace.New(node, trace.DefaultRing, c.cfg.TraceSampleEvery)
	c.traceMu.Lock()
	c.tracers = append(c.tracers, t)
	c.traceMu.Unlock()
	return t
}

// TraceSpans gathers every recorded span of one trace across all node
// and client ring buffers — the in-process equivalent of blobctl trace
// querying MSpans on each node.
func (c *Cluster) TraceSpans(traceID uint64) []trace.Span {
	c.traceMu.Lock()
	tracers := append([]*trace.Tracer(nil), c.tracers...)
	c.traceMu.Unlock()
	var spans []trace.Span
	for _, t := range tracers {
		spans = append(spans, t.SpansFor(traceID)...)
	}
	return spans
}

// newJournal creates (and retains, for Events) the event journal of the
// named simulated node, or nil when Config.EventRing is negative.
func (c *Cluster) newJournal(node string) *events.Journal {
	if c.cfg.EventRing < 0 {
		return nil
	}
	j := events.NewJournal(node, c.cfg.EventRing)
	c.journalMu.Lock()
	c.journals = append(c.journals, j)
	c.journalMu.Unlock()
	return j
}

// Events merges every live node journal, oldest first by timestamp —
// the in-process equivalent of the monitor tailing MEvents cluster-wide.
// Journals of restarted nodes' dead incarnations are included (their
// events happened), which is exactly what a drill asserting event order
// wants.
func (c *Cluster) Events() []events.Event {
	c.journalMu.Lock()
	journals := append([]*events.Journal(nil), c.journals...)
	c.journalMu.Unlock()
	var evs []events.Event
	for _, j := range journals {
		evs = append(evs, j.Events()...)
	}
	sort.SliceStable(evs, func(i, k int) bool { return evs[i].Time < evs[k].Time })
	return evs
}

// dataService returns the current RPC service of data provider i, which
// RestartDataProvider may have replaced since launch.
func (c *Cluster) dataService(i int) *provider.Service {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	return c.DataServices[i]
}

// dataHostName names the simulated host of data provider i.
func (c *Cluster) dataHostName(i int) string {
	if c.cfg.CoLocate || (c.cfg.DataProviders == c.cfg.MetaProviders) {
		return fmt.Sprintf("node%d", i)
	}
	return fmt.Sprintf("data%d", i)
}

// newDataService hosts a provider service over st with repair armed:
// the service gets a connection pool dialing from its own host (the
// vantage MPullPages pulls peers from) and the configured pull throttle.
func (c *Cluster) newDataService(i int, st provider.PageStore, j *events.Journal) *provider.Service {
	svc := provider.NewService(st)
	pool := rpc.NewPool(hostDialer{c.fab.Host(c.dataHostName(i))})
	pool.SetJournal(j)
	c.svcMu.Lock()
	c.pools = append(c.pools, pool)
	c.svcMu.Unlock()
	svc.EnableRepair(pool, c.cfg.RepairRateBytes)
	return svc
}

// newDataStore builds data provider i's storage backend from the
// deployment config: RAM-only by default, or a disk-backed segment log
// (with an optional write-through RAM cache) under Config.DataDir.
func (c *Cluster) newDataStore(i int, j *events.Journal) (provider.PageStore, error) {
	if c.cfg.DataDir == "" {
		return provider.NewStore(c.cfg.ProviderCapacity), nil
	}
	ds, err := provider.NewDiskStore(diskstore.Options{
		Dir:              filepath.Join(c.cfg.DataDir, fmt.Sprintf("provider-%d", i)),
		SegmentSize:      c.cfg.SegmentSize,
		CompactEvery:     c.cfg.CompactEvery,
		CompactRateBytes: c.cfg.CompactRateBytes,
		Journal:          j,
	}, c.cfg.ProviderCapacity)
	if err != nil {
		return nil, err
	}
	if c.cfg.DiskCacheBytes > 0 {
		return provider.NewCachedStore(ds, c.cfg.DiskCacheBytes), nil
	}
	return ds, nil
}

// vmRepairStore builds the metadata client a version manager's repair
// path writes no-op patches through, dialing from the given host. Nil
// (and no error) when dead-writer repair is disabled.
func (c *Cluster) vmRepairStore(host *netsim.Host) (vmanager.NodeStore, error) {
	if c.cfg.RepairTimeout <= 0 {
		return nil, nil
	}
	pool := rpc.NewPool(hostDialer{host})
	c.svcMu.Lock()
	c.pools = append(c.pools, pool)
	c.svcMu.Unlock()
	kv, err := dht.NewDirectoryClient(context.Background(), pool, c.DirAddr, c.cfg.MetaReplicas)
	if err != nil {
		return nil, err
	}
	return mstore.New(kv, 0), nil
}

// launchVMGroup boots the sharded, replicated version plane: VShards x
// VReplicas Replica processes, each on its own simulated host
// "vm-s<shard>r<replica>". Peer addresses are deterministic functions of
// the shard layout, so every replica knows its shard-mates up front and
// a restarted replica comes back at the same address
// (docs/vmanager-group.md).
func (c *Cluster) launchVMGroup() error {
	c.VMReplicas = make([][]*vmanager.Replica, c.cfg.VShards)
	c.VMShardAddrs = make([][]string, c.cfg.VShards)
	c.VMServers = make([][]*rpc.Server, c.cfg.VShards)
	for s := 0; s < c.cfg.VShards; s++ {
		peers := make([]string, c.cfg.VReplicas)
		for j := range peers {
			peers[j] = fmt.Sprintf("vm-s%dr%d:rpc", s, j)
		}
		c.VMShardAddrs[s] = peers
		c.VMReplicas[s] = make([]*vmanager.Replica, c.cfg.VReplicas)
		c.VMServers[s] = make([]*rpc.Server, c.cfg.VReplicas)
		for j := 0; j < c.cfg.VReplicas; j++ {
			if err := c.startVMReplica(s, j, false); err != nil {
				return err
			}
		}
	}
	// Legacy single-address fields point at shard 0 replica 0 so
	// address-only consumers (logs, health checks) have something sane.
	c.VMAddr = c.VMShardAddrs[0][0]
	return nil
}

// startVMReplica builds and serves replica j of vmanager shard s on its
// dedicated host. Used at launch (rejoin=false) and by RestartVMReplica
// (rejoin=true: the replica boots follower even at index 0).
func (c *Cluster) startVMReplica(s, j int, rejoin bool) error {
	host := c.fab.Host(fmt.Sprintf("vm-s%dr%d", s, j))
	repairStore, err := c.vmRepairStore(host)
	if err != nil {
		return err
	}
	pool := rpc.NewPool(hostDialer{host})
	c.svcMu.Lock()
	c.pools = append(c.pools, pool)
	c.svcMu.Unlock()
	// A restarted replica gets a fresh journal, like a real process
	// restart; MEvents pollers detect the sequence reset and re-tail.
	jn := c.newJournal(host.Name())
	pool.SetJournal(jn)
	rep := vmanager.NewReplica(vmanager.ReplicaConfig{
		Shard:           s,
		Shards:          c.cfg.VShards,
		Index:           j,
		Peers:           c.VMShardAddrs[s],
		Pool:            pool,
		Heartbeat:       c.cfg.VMHeartbeat,
		ElectionTimeout: c.cfg.VMElectionTimeout,
		AppendDelay:     c.cfg.VMAppendDelay,
		MaxLogRecords:   c.cfg.VMMaxLogRecords,
		Rejoin:          rejoin,
		Journal:         jn,
		Manager: vmanager.Config{
			RepairTimeout: c.cfg.RepairTimeout,
			Store:         repairStore,
		},
	})
	srv := rpc.NewServer()
	if t := c.newTracer(host.Name() + ":rpc"); t != nil {
		srv.SetTracer(t)
	}
	srv.SetJournal(jn)
	rep.RegisterHandlers(srv)
	l, err := host.Listen("rpc")
	if err != nil {
		rep.Close()
		return err
	}
	srv.Start(l)
	c.svcMu.Lock()
	c.servers = append(c.servers, srv)
	c.VMReplicas[s][j] = rep
	c.VMServers[s][j] = srv
	c.svcMu.Unlock()
	return nil
}

// hostDialer adapts a netsim host to rpc.Network.
type hostDialer struct{ h *netsim.Host }

// Dial implements rpc.Network.
func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

// Launch starts a deployment.
func Launch(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	if err := cfg.Redundancy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Redundancy.IsRS() && cfg.DataProviders < cfg.Redundancy.Shards() {
		return nil, fmt.Errorf("cluster: %s needs at least %d data providers, config has %d",
			cfg.Redundancy, cfg.Redundancy.Shards(), cfg.DataProviders)
	}
	c := &Cluster{
		cfg:       cfg,
		fab:       netsim.New(cfg.Net),
		hbStop:    make(chan struct{}),
		repairNow: make(chan struct{}, 1),
	}

	var lastServer *rpc.Server
	serve := func(host *netsim.Host, port string, register func(*rpc.Server)) (string, error) {
		srv := rpc.NewServer()
		if t := c.newTracer(host.Name() + ":" + port); t != nil {
			srv.SetTracer(t)
		}
		register(srv)
		l, err := host.Listen(port)
		if err != nil {
			return "", err
		}
		srv.Start(l)
		c.servers = append(c.servers, srv)
		lastServer = srv
		return host.Name() + ":" + port, nil
	}

	// Provider manager + metadata directory share the "pm" node.
	var hbTimeout time.Duration
	if cfg.HeartbeatInterval > 0 {
		hbTimeout = 4 * cfg.HeartbeatInterval
	}
	jPM := c.newJournal("pm")
	c.PM = pmanager.New(pmanager.Config{
		Strategy:         cfg.Strategy,
		HeartbeatTimeout: hbTimeout,
		Replicas:         cfg.DataReplicas,
		Redundancy:       cfg.Redundancy,
		Journal:          jPM,
	})
	c.Dir = dht.NewDirectory()
	pmHost := c.fab.Host("pm")
	addr, err := serve(pmHost, "rpc", func(s *rpc.Server) {
		c.PM.RegisterHandlers(s)
		c.Dir.RegisterHandlers(s)
		s.SetJournal(jPM)
	})
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.PMAddr, c.DirAddr = addr, addr

	// Storage nodes.
	dataHost := c.dataHostName
	metaHost := func(i int) string {
		if cfg.CoLocate || (cfg.DataProviders == cfg.MetaProviders) {
			return fmt.Sprintf("node%d", i)
		}
		return fmt.Sprintf("meta%d", i)
	}
	for i := 0; i < cfg.DataProviders; i++ {
		j := c.newJournal(dataHost(i))
		st, err := c.newDataStore(i, j)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		svc := c.newDataService(i, st, j)
		c.DataStores = append(c.DataStores, st)
		c.DataServices = append(c.DataServices, svc)
		c.dataHosts = append(c.dataHosts, dataHost(i))
		addr, err := serve(c.fab.Host(dataHost(i)), "data", func(s *rpc.Server) {
			svc.RegisterHandlers(s)
			s.SetJournal(j)
		})
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.PM.Register(addr, cfg.ProviderCapacity)
		c.DataServers = append(c.DataServers, lastServer)
	}
	for i := 0; i < cfg.MetaProviders; i++ {
		st := dht.NewStore()
		st.PutDelay = cfg.MetaPutDelay
		c.MetaStores = append(c.MetaStores, st)
		addr, err := serve(c.fab.Host(metaHost(i)), "meta", st.RegisterHandlers)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Dir.Register(addr)
		c.MetaServers = append(c.MetaServers, lastServer)
	}

	// Version plane. Legacy mode: one Manager on the "vm" node. Group
	// mode: VShards x VReplicas Replica processes on their own nodes,
	// each with its own repair-path metadata client.
	if !cfg.vmGrouped() {
		vmHost := c.fab.Host("vm")
		repairStore, err := c.vmRepairStore(vmHost)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.VM = vmanager.New(vmanager.Config{
			RepairTimeout: cfg.RepairTimeout,
			Store:         repairStore,
		})
		c.VMAddr, err = serve(vmHost, "rpc", c.VM.RegisterHandlers)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
	} else {
		if err := c.launchVMGroup(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}

	if cfg.HeartbeatInterval > 0 {
		c.startHeartbeats()
	}
	if cfg.RepairInterval > 0 {
		// The repair agent is a client-side process with no RPC service
		// of its own; give its journal a dedicated node so the monitor
		// can tail sweep events like any other node's.
		c.repairJournal = c.newJournal("repair")
		if c.repairJournal != nil {
			addr, err := serve(c.fab.Host("repair"), "rpc", func(s *rpc.Server) {
				s.SetJournal(c.repairJournal)
			})
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			c.RepairAddr = addr
		}
		go c.repairLoop()
		if cfg.HeartbeatInterval > 0 {
			// Heartbeat-death detection triggers an immediate repair
			// pass instead of waiting out the RepairInterval timer.
			go c.PM.DeathWatch(c.hbStop, func(uint32) {
				select {
				case c.repairNow <- struct{}{}:
				default:
				}
			})
		}
	}
	if cfg.Monitor {
		mpool := rpc.NewPool(hostDialer{c.fab.Host("monitor")})
		c.pools = append(c.pools, mpool)
		var eventNodes []string
		if c.RepairAddr != "" {
			eventNodes = append(eventNodes, c.RepairAddr)
		}
		c.Mon = monitor.New(monitor.Config{
			Pool:       mpool,
			PMAddr:     c.PMAddr,
			VMShards:   c.VMShardAddrs,
			EventNodes: eventNodes,
			Interval:   cfg.MonitorInterval,
		})
		c.Mon.Start()
	}
	return c, nil
}

// repairLoop periodically runs the replica repair agent over every blob
// the version manager knows, so redundancy degraded by provider crashes
// or disk loss converges back to full without client involvement.
func (c *Cluster) repairLoop() {
	t := time.NewTicker(c.cfg.RepairInterval)
	defer t.Stop()
	var client *core.Client
	var agent *repair.Repairer
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	timeout := 4 * c.cfg.RepairInterval
	if timeout < 30*time.Second {
		timeout = 30 * time.Second
	}
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
		case <-c.repairNow:
			// Provider-manager death detection: repair immediately
			// rather than letting the degradation window run out the
			// ticker (a second loss inside that window is the data-loss
			// scenario repair exists to shrink).
		}
		if agent == nil {
			cl, err := core.NewClient(context.Background(), c.ClientOptions("repair-agent"))
			if err != nil {
				continue // managers not reachable yet; retry next tick
			}
			client, agent = cl, repair.New(cl)
			agent.Journal = c.repairJournal
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		// Enumerate blobs through the client's version-plane routing so
		// the loop works in both single-manager and group mode.
		if blobs, err := client.VersionManager().Blobs(ctx); err == nil {
			_, _ = agent.RepairAll(ctx, blobs)
		}
		cancel()
	}
}

// StopProviderHeartbeat kills data provider i's heartbeat loop — the
// fault-injection hook for "the node silently died": the provider
// manager stops hearing from it, excludes it from placement, and (when
// a repair loop is armed) DeathWatch triggers an immediate repair pass.
// A no-op without Config.HeartbeatInterval; ResumeProviderHeartbeat
// brings the loop back.
func (c *Cluster) StopProviderHeartbeat(i int) {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	if i >= 0 && i < len(c.hbProvStop) {
		select {
		case <-c.hbProvStop[i]:
		default:
			close(c.hbProvStop[i])
		}
	}
}

// ResumeProviderHeartbeat relaunches data provider i's heartbeat loop
// after StopProviderHeartbeat — the "node came back" half of a silent
// death drill. The manager re-admits the provider on its next beat
// (same id, bumped epoch). A no-op if the loop is still running.
func (c *Cluster) ResumeProviderHeartbeat(i int) {
	c.svcMu.Lock()
	defer c.svcMu.Unlock()
	if i < 0 || i >= len(c.hbProvStop) {
		return
	}
	select {
	case <-c.hbProvStop[i]:
		// Closed: the loop exited. Swap in a fresh stop channel and
		// restart the loop against it.
		stop := make(chan struct{})
		c.hbProvStop[i] = stop
		go c.providerHeartbeatLoop(i, stop)
	default:
		// Still running; nothing to resume.
	}
}

// startHeartbeats runs one reporting loop per data provider.
func (c *Cluster) startHeartbeats() {
	c.hbPool = rpc.NewPool(hostDialer{c.fab.Host("hb")})
	c.pools = append(c.pools, c.hbPool)
	for i := range c.DataServices {
		stop := make(chan struct{})
		c.hbProvStop = append(c.hbProvStop, stop)
		go c.providerHeartbeatLoop(i, stop)
	}
}

// providerHeartbeatLoop reports data provider i's load to the provider
// manager every HeartbeatInterval until stop (or cluster shutdown).
func (c *Cluster) providerHeartbeatLoop(i int, stop chan struct{}) {
	id := uint32(i + 1) // registration order matches IDs
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	// Digest piggyback state: the bloom digest is recomputed
	// only when the store's write/delete counters move, and its
	// bytes ride a heartbeat only while the manager's held hash
	// disagrees — steady state costs 8 extra bytes per beat.
	var digHash uint64
	var digest []byte
	var held uint64
	lastPuts, lastPages := int64(-1), int64(-1)
	for {
		select {
		case <-c.hbStop:
			return
		case <-stop:
			return
		case <-t.C:
			// Re-resolve each tick: RestartDataProvider swaps
			// the service, and heartbeats must report the live
			// store's load, not the dead one's.
			sv := c.dataService(i)
			snap := sv.Snapshot()
			if snap.Puts != lastPuts || snap.PageCount != lastPages {
				digHash, digest, _ = sv.DigestBytes()
				lastPuts, lastPages = snap.Puts, snap.PageCount
			}
			var payload []byte
			if digHash != 0 && digHash != held {
				payload = digest
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			if h, err := pmanager.SendHeartbeatDigest(ctx, c.hbPool, c.PMAddr, id,
				snap.BytesUsed, snap.ActiveOps, digHash, payload); err == nil {
				held = h
			}
			cancel()
		}
	}
}

// ClientOptions returns core.Options for a client on the named simulated
// host (each client host has its own NIC, like the paper's client nodes).
func (c *Cluster) ClientOptions(hostName string) core.Options {
	return core.Options{
		Network:          hostDialer{c.fab.Host(hostName)},
		VManagerAddr:     c.VMAddr,
		VManagerShards:   c.VMShardAddrs,
		PManagerAddr:     c.PMAddr,
		MetaDirAddr:      c.DirAddr,
		DataReplicas:     c.cfg.DataReplicas,
		Redundancy:       c.cfg.Redundancy,
		MetaReplicas:     c.cfg.MetaReplicas,
		CacheNodes:       c.cfg.CacheNodes,
		MetaProcessDelay: c.cfg.MetaProcessDelay,
		DisableHedging:   c.cfg.DisableHedging,
		Breakers:         c.cfg.Breakers,
		Journal:          c.newJournal(hostName),
		Tracer:           c.newTracer(hostName),
		SlowThreshold:    c.cfg.SlowThreshold,
	}
}

// NewClient connects a client on a fresh simulated host.
func (c *Cluster) NewClient(ctx context.Context) (*core.Client, error) {
	seq := c.clientSeq.Add(1)
	return core.NewClient(ctx, c.ClientOptions(fmt.Sprintf("client%d", seq)))
}

// NewClientAt connects a client on a specific simulated host.
func (c *Cluster) NewClientAt(ctx context.Context, host string) (*core.Client, error) {
	return core.NewClient(ctx, c.ClientOptions(host))
}

// TotalDataPages sums the page counts across data providers.
func (c *Cluster) TotalDataPages() int64 {
	c.svcMu.RLock()
	stores := append([]provider.PageStore(nil), c.DataStores...)
	c.svcMu.RUnlock()
	var n int64
	for _, st := range stores {
		n += st.Snapshot().PageCount
	}
	return n
}

// TotalMetaNodes sums stored tree nodes across metadata providers.
func (c *Cluster) TotalMetaNodes() int {
	n := 0
	for _, st := range c.MetaStores {
		n += st.Len()
	}
	return n
}

// RestartDataProvider simulates a crash-and-relaunch of data provider i:
// its RPC server stops, its store closes (for a disk-backed provider
// this is where durability matters — a RAM provider comes back empty),
// and a fresh store is opened over the same data directory and served at
// the same address, so placements recorded in the metadata remain valid.
// The fresh service starts with zeroed repair counters: post-restart
// stats report only the new incarnation's repair work.
func (c *Cluster) RestartDataProvider(i int) error {
	return c.restartDataProvider(i, false)
}

// WipeDataProvider restarts data provider i with its data directory
// destroyed first — the total-disk-loss scenario the repair protocol
// exists for. The provider comes back empty at the same address; the
// repair agent (or read-repair) must restore its replicas. For a
// RAM-only provider this is identical to RestartDataProvider.
func (c *Cluster) WipeDataProvider(i int) error {
	return c.restartDataProvider(i, true)
}

func (c *Cluster) restartDataProvider(i int, wipe bool) error {
	if i < 0 || i >= len(c.DataStores) {
		return fmt.Errorf("cluster: no data provider %d", i)
	}
	c.svcMu.RLock()
	oldSrv, oldStore := c.DataServers[i], c.DataStores[i]
	c.svcMu.RUnlock()
	oldSrv.Close()
	if cl, ok := oldStore.(io.Closer); ok {
		if err := cl.Close(); err != nil {
			return fmt.Errorf("cluster: close provider %d store: %w", i, err)
		}
	}
	if wipe && c.cfg.DataDir != "" {
		dir := filepath.Join(c.cfg.DataDir, fmt.Sprintf("provider-%d", i))
		if err := os.RemoveAll(dir); err != nil {
			return fmt.Errorf("cluster: wipe provider %d data dir: %w", i, err)
		}
	}
	// The new incarnation gets a fresh journal, like a real process
	// restart; MEvents pollers detect the sequence reset and re-tail.
	jn := c.newJournal(c.dataHosts[i])
	st, err := c.newDataStore(i, jn)
	if err != nil {
		return fmt.Errorf("cluster: reopen provider %d store: %w", i, err)
	}
	svc := c.newDataService(i, st, jn)
	srv := rpc.NewServer()
	if t := c.newTracer(c.dataHosts[i] + ":data"); t != nil {
		srv.SetTracer(t)
	}
	srv.SetJournal(jn)
	svc.RegisterHandlers(srv)
	l, err := c.fab.Host(c.dataHosts[i]).Listen("data")
	if err != nil {
		return fmt.Errorf("cluster: relisten provider %d: %w", i, err)
	}
	srv.Start(l)
	c.svcMu.Lock()
	c.DataStores[i] = st
	c.DataServices[i] = svc
	c.DataServers[i] = srv
	c.servers = append(c.servers, srv)
	c.svcMu.Unlock()
	return nil
}

// Shutdown stops every service and the fabric, closing any persistent
// data stores.
func (c *Cluster) Shutdown() {
	if c.Mon != nil {
		c.Mon.Close()
	}
	select {
	case <-c.hbStop:
	default:
		close(c.hbStop)
	}
	if c.VM != nil {
		c.VM.Close()
	}
	c.svcMu.RLock()
	replicas := append([][]*vmanager.Replica(nil), c.VMReplicas...)
	c.svcMu.RUnlock()
	for _, shard := range replicas {
		for _, rep := range shard {
			if rep != nil {
				rep.Close()
			}
		}
	}
	c.svcMu.RLock()
	pools := append([]*rpc.Pool(nil), c.pools...)
	servers := append([]*rpc.Server(nil), c.servers...)
	stores := append([]provider.PageStore(nil), c.DataStores...)
	c.svcMu.RUnlock()
	for _, p := range pools {
		p.Close()
	}
	for _, s := range servers {
		s.Close()
	}
	for _, st := range stores {
		if cl, ok := st.(io.Closer); ok {
			cl.Close()
		}
	}
	c.fab.Close()
}
