package cluster_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/dht"
	"blob/internal/meta"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/vmanager"
)

// The snapshot-isolation invariant (docs/workloads.md): once a client
// pins a published version V, every page of V must reread byte-identical
// forever, no matter how many later versions ingestion publishes on top
// — with no lease, lock, or any other server-side cooperation from the
// readers. These tests state it directly against core.Blob.ReadPinned
// under -race: a writer hammers versions V+1..V+k over the same extent
// while concurrent reader clients reread V and compare against a frozen
// model. The same invariant runs on the simulated fabric and on real
// TCP loopback sockets, since the two transports exercise different
// connection and buffer management.

// snapshotIsolationInvariant drives the invariant against any
// deployment reachable through newClient. Each reader gets its own
// client (own connections); the writer keeps the only mutable model.
func snapshotIsolationInvariant(t *testing.T, newClient func(t *testing.T) *core.Client) {
	ctx := context.Background()
	const (
		page    = 1 << 10
		pages   = 16
		readers = 3
		passes  = 20
		hammer  = 12 // versions published on top of the pin
	)

	w := newClient(t)
	b, err := w.CreateBlob(ctx, page, pages*page)
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, pages*page)
	rng := rand.New(rand.NewSource(42))
	write := func(off uint64, n int) meta.Version {
		t.Helper()
		seg := make([]byte, n)
		rng.Read(seg)
		v, err := b.Write(ctx, seg, off)
		if err != nil {
			t.Fatal(err)
		}
		copy(model[off:], seg)
		return v
	}
	write(0, pages*page)
	pin := write(2*page, 3*page)
	snap := append([]byte(nil), model...) // frozen contents of version `pin`

	errCh := make(chan error, readers+1)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rc := newClient(t)
		rb, err := rc.OpenBlob(ctx, b.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, pages*page)
			for p := 0; p < passes; p++ {
				if err := rb.ReadPinned(ctx, buf, 0, pin); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(buf, snap) {
					errCh <- &snapshotViolation{reader: r, pass: p, version: pin}
					return
				}
			}
		}(r)
	}
	// The hammer: overlapping page-aligned writes covering the pinned
	// extent, each publishing a new version while the readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		offRng := rand.New(rand.NewSource(7))
		for i := 0; i < hammer; i++ {
			off := uint64(offRng.Intn(pages-2)) * page
			if _, err := b.Write(ctx, bytes.Repeat([]byte{byte(i)}, 2*page), off); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// A fresh client still reads the pin byte-identically after the
	// storm — the snapshot outlives every connection that observed it.
	fc := newClient(t)
	fb, err := fc.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pages*page)
	if err := fb.ReadPinned(ctx, buf, 0, pin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, snap) {
		t.Fatalf("fresh client read of pinned v%d differs from snapshot", pin)
	}
	latest, _, err := fb.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if latest < pin+hammer {
		t.Fatalf("latest = v%d, want >= v%d (hammer underran)", latest, pin+hammer)
	}
}

type snapshotViolation struct {
	reader, pass int
	version      meta.Version
}

func (e *snapshotViolation) Error() string {
	return "snapshot violation: reader reread of pinned version produced different bytes"
}

func TestSnapshotIsolationNetsim(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{DataProviders: 4, MetaProviders: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	snapshotIsolationInvariant(t, func(t *testing.T) *core.Client {
		c, err := cl.NewClient(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	})
}

func TestSnapshotIsolationTCP(t *testing.T) {
	// Real loopback sockets, assembled like cmd/blobnode deploys them
	// (see TestRealTCPDeployment).
	start := func(register func(*rpc.Server)) string {
		srv := rpc.NewServer()
		register(srv)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback TCP unavailable: %v", err)
		}
		srv.Start(l)
		t.Cleanup(srv.Close)
		return l.Addr().String()
	}
	pm := pmanager.New(pmanager.Config{})
	dir := dht.NewDirectory()
	pmAddr := start(func(s *rpc.Server) {
		pm.RegisterHandlers(s)
		dir.RegisterHandlers(s)
	})
	vm := vmanager.New(vmanager.Config{})
	t.Cleanup(vm.Close)
	vmAddr := start(vm.RegisterHandlers)
	for i := 0; i < 3; i++ {
		ds := provider.NewService(provider.NewStore(0))
		ms := dht.NewStore()
		addr := start(func(s *rpc.Server) {
			ds.RegisterHandlers(s)
			ms.RegisterHandlers(s)
		})
		pm.Register(addr, 0)
		dir.Register(addr)
	}
	snapshotIsolationInvariant(t, func(t *testing.T) *core.Client {
		c, err := core.NewClient(context.Background(), core.Options{
			Network:      rpc.TCP{},
			VManagerAddr: vmAddr,
			PManagerAddr: pmAddr,
			MetaDirAddr:  pmAddr,
			CacheNodes:   -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	})
}
