package cluster_test

import (
	"bytes"
	"context"
	"net"
	"testing"

	"blob/internal/core"
	"blob/internal/dht"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/vmanager"
)

// TestRealTCPDeployment wires every service over genuine TCP loopback
// sockets — the deployment mode of cmd/blobnode — and runs a full
// write/read/append round trip. This keeps the TCP path covered by
// `go test ./...`, not just by manual runs of the binaries.
func TestRealTCPDeployment(t *testing.T) {
	listen := func() (net.Listener, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback TCP unavailable: %v", err)
		}
		return l, l.Addr().String()
	}
	start := func(register func(*rpc.Server)) string {
		srv := rpc.NewServer()
		register(srv)
		l, addr := listen()
		srv.Start(l)
		t.Cleanup(srv.Close)
		return addr
	}

	// Managers: provider manager + metadata directory on one "node".
	pm := pmanager.New(pmanager.Config{})
	dir := dht.NewDirectory()
	pmAddr := start(func(s *rpc.Server) {
		pm.RegisterHandlers(s)
		dir.RegisterHandlers(s)
	})
	vm := vmanager.New(vmanager.Config{})
	t.Cleanup(vm.Close)
	vmAddr := start(vm.RegisterHandlers)

	// Three storage nodes, each hosting a data and a metadata provider.
	for i := 0; i < 3; i++ {
		ds := provider.NewService(provider.NewStore(0))
		ms := dht.NewStore()
		addr := start(func(s *rpc.Server) {
			ds.RegisterHandlers(s)
			ms.RegisterHandlers(s)
		})
		pm.Register(addr, 0)
		dir.Register(addr)
		_ = i
	}

	ctx := context.Background()
	client, err := core.NewClient(ctx, core.Options{
		Network:      rpc.TCP{},
		VManagerAddr: vmAddr,
		PManagerAddr: pmAddr,
		MetaDirAddr:  pmAddr,
		CacheNodes:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const page = 4 << 10
	b, err := client.CreateBlob(ctx, page, 64*page)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xA5}, 4*page)
	v, err := b.Write(ctx, data, 8*page)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*page)
	if _, err := b.Read(ctx, got, 8*page, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip corrupted data")
	}

	// Append and a second client.
	if _, _, err := b.Append(ctx, data[:page]); err != nil {
		t.Fatal(err)
	}
	c2, err := core.NewClient(ctx, core.Options{
		Network:      rpc.TCP{},
		VManagerAddr: vmAddr,
		PManagerAddr: pmAddr,
		MetaDirAddr:  pmAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	latest, size, err := b2.Latest(ctx)
	if err != nil || latest != 2 {
		t.Fatalf("latest over TCP = v%d size %d err %v", latest, size, err)
	}
	small := make([]byte, page)
	if _, err := b2.Read(ctx, small, 8*page, latest); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, data[:page]) {
		t.Fatal("cross-client TCP read mismatch")
	}
}
