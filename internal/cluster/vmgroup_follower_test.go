package cluster_test

import (
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/netsim"
)

// TestVMGroupFollowerLossOrphanRepair covers the quorum-loss wedge on a
// shard whose leader never changes: with n=2 the follower's death
// blocks appends, a write that times out against the blocked shard
// leaves an assigned-but-never-committed version, and once the
// follower rejoins the STANDING leader's repair scan — not a
// promotion-time RepairOrphans — must fill the orphan so publication
// advances again. Regression test for the operator drill in
// docs/vmanager-group.md §7.
func TestVMGroupFollowerLossOrphanRepair(t *testing.T) {
	cfg := vmGroupConfig(1, 2)
	cfg.RepairTimeout = 100 * time.Millisecond
	cfg.Net = netsim.Fast()
	c, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	ctx := context.Background()
	cl, err := c.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	blobs := blobPerShard(t, ctx, cl, 1)
	b := blobs[0]

	data := make([]byte, b.PageSize())
	for i := range data {
		data[i] = 0x5a
	}
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first write published v%d, want v1", v)
	}

	// Kill the follower: the strict n=2 quorum is gone, so the next
	// write's assign cannot be acked and must fail/expire cleanly.
	c.KillVMReplica(0, 1)
	wctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	if _, err := b.Write(wctx, data, 0); err == nil {
		cancel()
		t.Fatal("write succeeded with the only follower dead; n=2 quorum should block it")
	}
	cancel()

	// Rejoin the follower. The standing leader (term unchanged, no
	// promotion) must repair the orphaned assign via its scan loop and
	// publication must advance for new writes.
	if err := c.RestartVMReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	wctx2, cancel2 := context.WithTimeout(ctx, 15*time.Second)
	defer cancel2()
	v2, err := b.Write(wctx2, data, 0)
	if err != nil {
		t.Fatalf("write after follower rejoin: %v", err)
	}
	if v2 <= v {
		t.Fatalf("post-rejoin write published v%d, want > v%d", v2, v)
	}

	// The wedged write's version must be resolved (aborted/repaired),
	// never half-pending: Latest reflects the newest real write.
	lead := c.VMShardLeader(0)
	latest, _, err := c.VMReplica(0, lead).Manager().Latest(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if latest < v2 {
		t.Fatalf("Latest %d < last acked write %d after repair", latest, v2)
	}
}
