package cluster_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"blob/internal/cluster"
	"blob/internal/meta"
)

// TestHistoricalReadsSurviveVMLogTruncation pins the contract behind
// time-travel reads: reading at an explicit old version must keep
// working after the vmanager group's publish log has been truncated
// (VMMaxLogRecords). Truncation only limits follower catch-up via log
// replay — the blob-state checkpoints carry every version's size and
// history, and page metadata lives in the DHT untouched — so every
// historical version of a 40-version blob must stay byte-exact and
// VersionSize-queryable afterwards.
func TestHistoricalReadsSurviveVMLogTruncation(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 4,
		MetaProviders: 4,
		VShards:       2,
		VReplicas:     2,
		// Far below the 40 publishes issued here, forcing repeated
		// half-drop truncations at the shard leader while history builds.
		VMMaxLogRecords: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	const (
		page     = 1 << 10
		pages    = 16
		versions = 40
	)
	b, err := c.CreateBlob(ctx, page, pages*page)
	if err != nil {
		t.Fatal(err)
	}

	// In-memory model: full extent snapshot + logical size per version.
	model := make([]byte, pages*page)
	var size uint64
	snaps := make(map[meta.Version][]byte, versions)
	sizes := make(map[meta.Version]uint64, versions)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < versions; i++ {
		n := (1 + rng.Intn(3)) * page
		off := uint64(rng.Intn(pages-3)) * page
		seg := make([]byte, n)
		rng.Read(seg)
		v, err := b.Write(ctx, seg, off)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		copy(model[off:], seg)
		if end := off + uint64(n); end > size {
			size = end
		}
		snaps[v] = append([]byte(nil), model[:size]...)
		sizes[v] = size
	}

	if len(snaps) != versions || len(snaps[1]) == 0 {
		t.Fatalf("expected %d sequential versions starting at v1, got %d snapshots", versions, len(snaps))
	}

	// Every published version — including the ones whose log records
	// were dropped long ago — reads back byte-exact, and its size is
	// still queryable at the version manager.
	for v, want := range snaps {
		got, err := b.VersionSize(ctx, v)
		if err != nil {
			t.Fatalf("VersionSize(v%d): %v", v, err)
		}
		if got != sizes[v] {
			t.Fatalf("VersionSize(v%d) = %d, want %d", v, got, sizes[v])
		}
		buf := make([]byte, len(want))
		if _, err := b.Read(ctx, buf, 0, v); err != nil {
			t.Fatalf("read at v%d: %v", v, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("contents of v%d diverged from the model", v)
		}
	}

	// A fresh client (cold metadata cache, fresh vmanager session) sees
	// the same history.
	c2, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	probe := meta.Version(1) // the oldest — truncated first
	buf := make([]byte, len(snaps[probe]))
	if _, err := b2.Read(ctx, buf, 0, probe); err != nil {
		t.Fatalf("fresh-client read at v%d: %v", probe, err)
	}
	if !bytes.Equal(buf, snaps[probe]) {
		t.Fatalf("fresh-client contents of v%d diverged", probe)
	}
}
