// Fault injection. Two families live here:
//
//   - Crash faults for the sharded version plane (group mode only; see
//     docs/vmanager-group.md): kill, restart and partition individual
//     vmanager replicas and wait out leader handoff.
//
//   - Gray failures over the netsim fabric (docs/robustness.md):
//     SlowProvider, StallProvider, FlakyProvider and FlakyLink degrade
//     a node's links without stopping its process — heartbeats keep
//     flowing (they are sent by the harness's own "hb" host), so the
//     provider manager keeps believing the node is healthy. These are
//     the failures the deadline/hedge/breaker machinery is built to
//     absorb, and Heal undoes them all.

package cluster

import (
	"fmt"
	"time"

	"blob/internal/netsim"
	"blob/internal/vmanager"
)

// VMReplica returns replica j of vmanager shard s, or nil after
// KillVMReplica (until RestartVMReplica brings it back).
func (c *Cluster) VMReplica(s, j int) *vmanager.Replica {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	if s < 0 || s >= len(c.VMReplicas) || j < 0 || j >= len(c.VMReplicas[s]) {
		return nil
	}
	return c.VMReplicas[s][j]
}

// VMShardLeader polls the live replicas of shard s and returns the index
// of the one currently claiming leadership, or -1 if none does. When
// several claim (a partitioned stale leader plus its replacement), the
// highest term wins.
func (c *Cluster) VMShardLeader(s int) int {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	if s < 0 || s >= len(c.VMReplicas) {
		return -1
	}
	best, bestTerm := -1, uint64(0)
	for j, rep := range c.VMReplicas[s] {
		if rep == nil {
			continue
		}
		if st := rep.Status(); st.IsLeader && (best < 0 || st.Term > bestTerm) {
			best, bestTerm = j, st.Term
		}
	}
	return best
}

// KillVMReplica crash-stops replica j of shard s: its RPC server closes
// (in-flight and future connections die) and the replica process stops.
// All in-memory version state is lost — exactly a node crash. Restart
// with RestartVMReplica. No-op if already killed.
func (c *Cluster) KillVMReplica(s, j int) error {
	c.svcMu.Lock()
	if s < 0 || s >= len(c.VMReplicas) || j < 0 || j >= len(c.VMReplicas[s]) {
		c.svcMu.Unlock()
		return fmt.Errorf("cluster: no vmanager replica s%dr%d", s, j)
	}
	rep, srv := c.VMReplicas[s][j], c.VMServers[s][j]
	c.VMReplicas[s][j] = nil
	c.VMServers[s][j] = nil
	c.svcMu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if rep != nil {
		rep.Close()
	}
	return nil
}

// RestartVMReplica relaunches a killed replica at its original address
// with empty state. It boots as a follower (or as the deterministic
// term-0 leader if it is replica 0 — a stale claim the incumbent's
// higher term immediately deposes) and catches up by snapshot install
// from the current leader.
func (c *Cluster) RestartVMReplica(s, j int) error {
	c.svcMu.RLock()
	ok := s >= 0 && s < len(c.VMReplicas) && j >= 0 && j < len(c.VMReplicas[s])
	var running bool
	if ok {
		running = c.VMReplicas[s][j] != nil
	}
	c.svcMu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: no vmanager replica s%dr%d", s, j)
	}
	if running {
		return fmt.Errorf("cluster: vmanager replica s%dr%d still running", s, j)
	}
	return c.startVMReplica(s, j, true)
}

// PartitionVMReplica cuts replica j of shard s off from the network in
// both directions without stopping it — it keeps running (and a
// partitioned leader keeps believing it leads until it fails to reach a
// quorum). Heal with HealVMReplica.
func (c *Cluster) PartitionVMReplica(s, j int) {
	if rep := c.VMReplica(s, j); rep != nil {
		rep.SetNetFault(true)
	}
}

// HealVMReplica reconnects a partitioned replica.
func (c *Cluster) HealVMReplica(s, j int) {
	if rep := c.VMReplica(s, j); rep != nil {
		rep.SetNetFault(false)
	}
}

// Fabric exposes the simulated network fabric for fault injection the
// helpers below do not cover.
func (c *Cluster) Fabric() *netsim.Net { return c.fab }

// DataHostName returns the simulated host name of data provider i —
// the value FlakyLink and Fabric-level fault injection address hosts
// by.
func (c *Cluster) DataHostName(i int) string { return c.dataHostName(i) }

// dataAddr is data provider i's RPC endpoint on the fabric. Faults are
// installed on the endpoint, not the host, so a co-located metadata
// provider on the same simulated machine stays healthy — the sharpest
// form of gray failure.
func (c *Cluster) dataAddr(i int) string { return c.dataHostName(i) + ":data" }

// SlowProvider makes data provider i slow without killing it: every
// frame to or from its RPC endpoint is delayed by extra, plus a
// uniformly random jitter in [0, jitter). The provider keeps serving
// and heartbeating — it is just gray. Undo with HealProvider or Heal.
func (c *Cluster) SlowProvider(i int, extra, jitter time.Duration) {
	c.fab.SetAddrFault(c.dataAddr(i), netsim.Fault{ExtraLatency: extra, Jitter: jitter})
}

// StallProvider freezes data provider i's RPC endpoint: connections
// stay up, dials succeed, but no frame moves in either direction until
// HealProvider or Heal. The gray failure a crash detector never sees.
func (c *Cluster) StallProvider(i int) {
	c.fab.SetAddrFault(c.dataAddr(i), netsim.Fault{Stall: true})
}

// FlakyProvider makes connections touching data provider i's RPC
// endpoint reset with probability p per frame (a TCP RST, never silent
// byte loss — the rpc layer sees a clean connection error and its
// retry/breaker machinery takes over).
func (c *Cluster) FlakyProvider(i int, p float64) {
	c.fab.SetAddrFault(c.dataAddr(i), netsim.Fault{DropProb: p})
}

// HealProvider clears the gray fault on data provider i's endpoint.
func (c *Cluster) HealProvider(i int) { c.fab.SetAddrFault(c.dataAddr(i), netsim.Fault{}) }

// FlakyLink makes the directed fabric link from one named host to
// another reset connections with probability p per frame. Host names
// follow the Launch topology ("client1", "node0", "pm", ...). Undo
// with p == 0 or Heal.
func (c *Cluster) FlakyLink(from, to string, p float64) {
	c.fab.SetLinkFault(from, to, netsim.Fault{DropProb: p})
}

// Heal removes every injected fabric fault (but does not rejoin
// vmanager partitions — those are process-level, see HealVMReplica).
func (c *Cluster) Heal() { c.fab.Heal() }

// WaitVMLeader blocks until shard s has a replica claiming leadership
// whose index differs from `not` (pass -1 to accept any), returning the
// leader index, or -1 on timeout. The usual call after killing a leader:
// WaitVMLeader(shard, killed, timeout).
func (c *Cluster) WaitVMLeader(s, not int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if l := c.VMShardLeader(s); l >= 0 && l != not {
			return l
		}
		if time.Now().After(deadline) {
			return -1
		}
		time.Sleep(2 * time.Millisecond)
	}
}
