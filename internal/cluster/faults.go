// Fault injection for the sharded version plane (group mode only; see
// docs/vmanager-group.md). The harness can kill, restart and partition
// individual vmanager replicas and wait out leader handoff — the
// primitives the kill-leader-mid-publish and partition/heal tests are
// built from.

package cluster

import (
	"fmt"
	"time"

	"blob/internal/vmanager"
)

// VMReplica returns replica j of vmanager shard s, or nil after
// KillVMReplica (until RestartVMReplica brings it back).
func (c *Cluster) VMReplica(s, j int) *vmanager.Replica {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	if s < 0 || s >= len(c.VMReplicas) || j < 0 || j >= len(c.VMReplicas[s]) {
		return nil
	}
	return c.VMReplicas[s][j]
}

// VMShardLeader polls the live replicas of shard s and returns the index
// of the one currently claiming leadership, or -1 if none does. When
// several claim (a partitioned stale leader plus its replacement), the
// highest term wins.
func (c *Cluster) VMShardLeader(s int) int {
	c.svcMu.RLock()
	defer c.svcMu.RUnlock()
	if s < 0 || s >= len(c.VMReplicas) {
		return -1
	}
	best, bestTerm := -1, uint64(0)
	for j, rep := range c.VMReplicas[s] {
		if rep == nil {
			continue
		}
		if st := rep.Status(); st.IsLeader && (best < 0 || st.Term > bestTerm) {
			best, bestTerm = j, st.Term
		}
	}
	return best
}

// KillVMReplica crash-stops replica j of shard s: its RPC server closes
// (in-flight and future connections die) and the replica process stops.
// All in-memory version state is lost — exactly a node crash. Restart
// with RestartVMReplica. No-op if already killed.
func (c *Cluster) KillVMReplica(s, j int) error {
	c.svcMu.Lock()
	if s < 0 || s >= len(c.VMReplicas) || j < 0 || j >= len(c.VMReplicas[s]) {
		c.svcMu.Unlock()
		return fmt.Errorf("cluster: no vmanager replica s%dr%d", s, j)
	}
	rep, srv := c.VMReplicas[s][j], c.VMServers[s][j]
	c.VMReplicas[s][j] = nil
	c.VMServers[s][j] = nil
	c.svcMu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if rep != nil {
		rep.Close()
	}
	return nil
}

// RestartVMReplica relaunches a killed replica at its original address
// with empty state. It boots as a follower (or as the deterministic
// term-0 leader if it is replica 0 — a stale claim the incumbent's
// higher term immediately deposes) and catches up by snapshot install
// from the current leader.
func (c *Cluster) RestartVMReplica(s, j int) error {
	c.svcMu.RLock()
	ok := s >= 0 && s < len(c.VMReplicas) && j >= 0 && j < len(c.VMReplicas[s])
	var running bool
	if ok {
		running = c.VMReplicas[s][j] != nil
	}
	c.svcMu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: no vmanager replica s%dr%d", s, j)
	}
	if running {
		return fmt.Errorf("cluster: vmanager replica s%dr%d still running", s, j)
	}
	return c.startVMReplica(s, j, true)
}

// PartitionVMReplica cuts replica j of shard s off from the network in
// both directions without stopping it — it keeps running (and a
// partitioned leader keeps believing it leads until it fails to reach a
// quorum). Heal with HealVMReplica.
func (c *Cluster) PartitionVMReplica(s, j int) {
	if rep := c.VMReplica(s, j); rep != nil {
		rep.SetNetFault(true)
	}
}

// HealVMReplica reconnects a partitioned replica.
func (c *Cluster) HealVMReplica(s, j int) {
	if rep := c.VMReplica(s, j); rep != nil {
		rep.SetNetFault(false)
	}
}

// WaitVMLeader blocks until shard s has a replica claiming leadership
// whose index differs from `not` (pass -1 to accept any), returning the
// leader index, or -1 on timeout. The usual call after killing a leader:
// WaitVMLeader(shard, killed, timeout).
func (c *Cluster) WaitVMLeader(s, not int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if l := c.VMShardLeader(s); l >= 0 && l != not {
			return l
		}
		if time.Now().After(deadline) {
			return -1
		}
		time.Sleep(2 * time.Millisecond)
	}
}
