package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/netsim"
	"blob/internal/pmanager"
	"blob/internal/rpc"
	"blob/internal/vmanager"
)

const pageSize = 4 << 10

func TestLaunchDefaultsAndShutdown(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.DataStores) != 4 || len(cl.MetaStores) != 4 {
		t.Errorf("defaults: %d data, %d meta providers", len(cl.DataStores), len(cl.MetaStores))
	}
	if cl.VMAddr == "" || cl.PMAddr == "" {
		t.Error("manager addresses empty")
	}
	cl.Shutdown()
	// Shutdown must be idempotent.
	cl.Shutdown()
}

func TestClientsOnDistinctHosts(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c1, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	b, err := c1.CreateBlob(ctx, pageSize, 16*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, pageSize)
	if _, err := b2.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-host read mismatch")
	}
}

func TestCountersTrackStorage(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{DataProviders: 3, MetaProviders: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if cl.TotalDataPages() != 0 || cl.TotalMetaNodes() != 0 {
		t.Fatal("fresh cluster not empty")
	}
	if _, err := b.Write(ctx, make([]byte, 8*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	if got := cl.TotalDataPages(); got != 8 {
		t.Errorf("data pages = %d, want 8", got)
	}
	if got := cl.TotalMetaNodes(); got < 15 {
		t.Errorf("meta nodes = %d, want >= 15 (2*8-1)", got)
	}
}

func TestDeadWriterRepairOverRealStack(t *testing.T) {
	// End-to-end version of the repair scenario: a writer obtains a
	// version directly from the version manager and vanishes without
	// storing metadata. Later writers must still publish, and readers of
	// the repaired version must see the previous content (no-op patch).
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 3, MetaProviders: 3,
		RepairTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	base := bytes.Repeat([]byte{5}, 4*pageSize)
	if _, err := b.Write(ctx, base, 0); err != nil {
		t.Fatal(err)
	}

	// The doomed writer: assign version 2 over pages [1,3) and die.
	vmc := vmanager.NewClient(c.Pool(), cl.VMAddr)
	asg, err := vmc.AssignVersion(ctx, b.ID(), 666, pageSize, 2*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Version != 2 {
		t.Fatalf("doomed writer got v%d, want 2", asg.Version)
	}

	// A healthy write must eventually publish past the hole.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	patch := bytes.Repeat([]byte{9}, pageSize)
	v3, err := b.Write(wctx, patch, 3*pageSize)
	if err != nil {
		t.Fatalf("write behind dead writer: %v", err)
	}
	if v3 != 3 {
		t.Errorf("healthy write got v%d, want 3", v3)
	}

	// Version 2 (repaired) must read as version 1's content.
	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, 2); err != nil {
		t.Fatalf("read repaired version: %v", err)
	}
	if !bytes.Equal(got, base) {
		t.Error("repaired version is not a no-op patch of v1")
	}
	// Version 3 composes over the repaired v2.
	want := append([]byte(nil), base...)
	copy(want[3*pageSize:], patch)
	if _, err := b.Read(ctx, got, 0, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("v3 composition over repaired v2 wrong")
	}

	// The dead writer's belated commit is rejected.
	if _, err := vmc.Commit(ctx, b.ID(), 2, false); err == nil || !rpc.IsServerError(err) {
		t.Errorf("belated commit = %v, want server error", err)
	}
}

func TestHeartbeatsKeepProvidersAllocatable(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 2, MetaProviders: 2,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wait past several heartbeat timeouts: allocation must keep
	// working because heartbeats keep arriving.
	time.Sleep(200 * time.Millisecond)
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	if _, err := b.Write(ctx, make([]byte, pageSize), 0); err != nil {
		t.Fatalf("write after heartbeat interval: %v", err)
	}

	// Heartbeats carry load: the manager's least-loaded view should see
	// nonzero bytes after a flush interval.
	time.Sleep(100 * time.Millisecond)
	_, infos := cl.PM.List()
	if len(infos) != 2 {
		t.Fatalf("providers = %d", len(infos))
	}
}

func TestSeparateDataAndMetaHosts(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 2, MetaProviders: 3, CoLocate: false,
		Net: netsim.Fast(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	if _, err := b.Write(ctx, make([]byte, 2*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*pageSize)
	if _, err := b.Read(ctx, got, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementStrategyPropagates(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 4, MetaProviders: 4,
		Strategy: pmanager.LeastLoaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	for i := 0; i < 4; i++ {
		if _, err := b.Write(ctx, make([]byte, 4*pageSize), uint64(i)*4*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	// Least-loaded over equal providers behaves near-uniformly; just
	// assert all providers were used.
	for i, st := range cl.DataStores {
		if st.Snapshot().PageCount == 0 {
			t.Errorf("provider %d unused under least-loaded", i)
		}
	}
}

func TestVersionManagerUnreachableAfterShutdown(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		cl.Shutdown()
		t.Fatal(err)
	}
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	cl.Shutdown()
	_, err = b.Write(ctx, make([]byte, pageSize), 0)
	if err == nil {
		t.Fatal("write succeeded against a shut-down cluster")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("unexpected timeout rather than refusal: %v", err)
	}
	c.Close()
}
