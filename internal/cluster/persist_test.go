package cluster_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"blob/internal/cluster"
)

// TestPersistentProvidersSurviveRestart is the subsystem's cluster-level
// acceptance: pages written through the client remain readable after
// every data provider is killed and relaunched over its data directory.
// RAM providers would serve nothing after the same sequence.
func TestPersistentProvidersSurviveRestart(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		DataDir:       t.TempDir(),
		SegmentSize:   4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()

	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*pageSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Kill and relaunch every data provider over its directory.
	for i := range cl.DataStores {
		if err := cl.RestartDataProvider(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.TotalDataPages(); got != 8 {
		t.Fatalf("recovered pages = %d, want 8", got)
	}

	// A fresh client (the old one's connections died with the servers)
	// reads everything back through the normal path.
	c2, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := b2.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data mismatch after provider restart")
	}
}

// TestRAMProvidersLosePagesOnRestart pins the contrast: without DataDir
// the same kill/relaunch sequence leaves the providers empty — the
// diskstore is what makes restart survivable.
func TestRAMProvidersLosePagesOnRestart(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{DataProviders: 2, MetaProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, make([]byte, 4*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	for i := range cl.DataStores {
		if err := cl.RestartDataProvider(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.TotalDataPages(); got != 0 {
		t.Errorf("RAM providers kept %d pages across restart", got)
	}
}

// tornLastSegment cuts n bytes off the highest-id segment file in dir,
// simulating a crash that tore the final append.
func tornLastSegment(t *testing.T, dir string, n int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	sort.Strings(matches)
	last := matches[len(matches)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestTornWriteRecoveredWithoutEarlierLoss kills a provider, tears the
// tail of its newest segment (a crash mid-append), relaunches it and
// verifies the earlier version is fully readable while the torn write's
// version reports its page unavailable rather than serving bad bytes.
func TestTornWriteRecoveredWithoutEarlierLoss(t *testing.T) {
	dataDir := t.TempDir()
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 1,
		MetaProviders: 1,
		DataDir:       dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.Repeat([]byte{0xA5}, 2*pageSize)
	v1, err := b.Write(ctx, first, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The write that will be torn: one page at a fresh offset.
	v2, err := b.Write(ctx, bytes.Repeat([]byte{0x5A}, pageSize), 4*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	cl.DataServers[0].Close()
	tornLastSegment(t, filepath.Join(dataDir, "provider-0"), 3)
	if err := cl.RestartDataProvider(0); err != nil {
		t.Fatal(err)
	}

	c2, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(first))
	if _, err := b2.Read(ctx, got, 0, v1); err != nil {
		t.Fatalf("earlier write lost to torn tail: %v", err)
	}
	if !bytes.Equal(got, first) {
		t.Error("earlier write corrupted by torn-tail recovery")
	}
	// The torn page must be reported unavailable, never served corrupt.
	torn := make([]byte, pageSize)
	if _, err := b2.Read(ctx, torn, 4*pageSize, v2); err == nil {
		t.Error("torn page served after truncation")
	}
}
