package cluster_test

// Live-TCP variant of the vmanager-group fault tests: a 1-shard,
// 3-replica group on genuine loopback sockets (the deployment mode of
// cmd/blobnode -vpeers), with a leader crash, handoff, and a
// Rejoin-restart at the original address. The netsim variants in
// vmgroup_test.go cover the storm and partition matrix; this one proves
// the protocol holds on a real network stack.

import (
	"context"
	"net"
	"testing"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/rpc"
	"blob/internal/vmanager"
)

func TestVMGroupRealTCP(t *testing.T) {
	const n = 3
	// Bind every replica address first: peers must be known before any
	// replica boots, exactly as -vpeers requires of the binaries.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for j := 0; j < n; j++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback TCP unavailable: %v", err)
		}
		listeners[j] = l
		addrs[j] = l.Addr().String()
	}

	reps := make([]*vmanager.Replica, n)
	srvs := make([]*rpc.Server, n)
	start := func(j int, rejoin bool, l net.Listener) {
		pool := rpc.NewPool(rpc.TCP{})
		t.Cleanup(pool.Close)
		rep := vmanager.NewReplica(vmanager.ReplicaConfig{
			Shard: 0, Shards: 1, Index: j,
			Peers:           addrs,
			Pool:            pool,
			Heartbeat:       5 * time.Millisecond,
			ElectionTimeout: 40 * time.Millisecond,
			Rejoin:          rejoin,
		})
		srv := rpc.NewServer()
		rep.RegisterHandlers(srv)
		srv.Start(l)
		reps[j], srvs[j] = rep, srv
	}
	for j := 0; j < n; j++ {
		start(j, false, listeners[j])
	}
	defer func() {
		for j := 0; j < n; j++ {
			if srvs[j] != nil {
				srvs[j].Close()
			}
			if reps[j] != nil {
				reps[j].Close()
			}
		}
	}()

	leaderIdx := func() int {
		best, bestTerm := -1, uint64(0)
		for j, rep := range reps {
			if rep == nil {
				continue
			}
			if st := rep.Status(); st.IsLeader && (best < 0 || st.Term > bestTerm) {
				best, bestTerm = j, st.Term
			}
		}
		return best
	}
	waitLeader := func(not int, timeout time.Duration) int {
		deadline := time.Now().Add(timeout)
		for {
			if l := leaderIdx(); l >= 0 && l != not {
				return l
			}
			if time.Now().After(deadline) {
				return -1
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	ctx := context.Background()
	cpool := rpc.NewPool(rpc.TCP{})
	defer cpool.Close()
	g := vmanager.NewGroupClient(cpool, [][]string{addrs})

	blob, err := g.CreateBlob(ctx, pageSize, 16*pageSize, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	var last meta.Version
	publish := func(writeID uint64) {
		t.Helper()
		a, err := g.AssignVersion(ctx, blob, writeID, 0, pageSize, false)
		if err != nil {
			t.Fatalf("assign %d: %v", writeID, err)
		}
		if _, err := g.Commit(ctx, blob, a.Version, true); err != nil {
			t.Fatalf("commit %d: %v", writeID, err)
		}
		last = a.Version
	}
	for i := 0; i < 5; i++ {
		publish(uint64(10 + i))
	}

	// Crash the leader: server first (sockets die), then the replica.
	lead := waitLeader(-1, 5*time.Second)
	if lead < 0 {
		t.Fatal("no leader over TCP")
	}
	srvs[lead].Close()
	reps[lead].Close()
	reps[lead], srvs[lead] = nil, nil

	next := waitLeader(lead, 10*time.Second)
	if next < 0 {
		t.Fatal("no handoff after TCP leader crash")
	}
	if v, _, err := g.Latest(ctx, blob); err != nil || v != last {
		t.Fatalf("latest after handoff = v%d, %v; want v%d", v, err, last)
	}
	publish(100)

	// Restart the crashed replica at its original address (retry the
	// bind briefly: the old listener's close may still be settling).
	var nl net.Listener
	for i := 0; i < 100; i++ {
		if nl, err = net.Listen("tcp", addrs[lead]); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addrs[lead], err)
	}
	start(lead, true, nl)

	// The rejoined replica catches up with the incumbent's term and log.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := leaderIdx()
		if cur >= 0 && cur != lead {
			ls, rs := reps[cur].Status(), reps[lead].Status()
			if rs.Term == ls.Term && rs.LogLen == ls.LogLen && rs.Blobs == ls.Blobs {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoined replica never caught up over TCP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	publish(200)
	if v, _, err := g.Latest(ctx, blob); err != nil || v != last {
		t.Fatalf("final latest = v%d, %v; want v%d", v, err, last)
	}
}
