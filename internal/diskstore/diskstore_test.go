package diskstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, blob, write uint64, rel uint32, data []byte) {
	t.Helper()
	if _, err := s.PutPages([]Page{{Blob: blob, Write: write, Rel: rel, Data: data}}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	mustPut(t, s, 1, 10, 0, []byte("page zero"))
	mustPut(t, s, 1, 10, 1, []byte("page one"))
	d, ok := s.GetPage(1, 10, 1)
	if !ok || string(d) != "page one" {
		t.Errorf("GetPage = %q, %v", d, ok)
	}
	if _, ok := s.GetPage(1, 10, 2); ok {
		t.Error("absent page reported found")
	}
	if _, ok := s.GetPage(2, 10, 0); ok {
		t.Error("wrong blob reported found")
	}
	st := s.Stats()
	if st.Pages != 2 || st.PageBytes != int64(len("page zero")+len("page one")) {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutIdempotent(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	mustPut(t, s, 1, 1, 0, []byte("first"))
	before := s.Stats().DiskBytes
	mustPut(t, s, 1, 1, 0, []byte("second"))
	if s.Stats().DiskBytes != before {
		t.Error("duplicate put wrote bytes")
	}
	d, _ := s.GetPage(1, 1, 0)
	if string(d) != "first" {
		t.Errorf("page overwritten: %q", d)
	}
}

func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 256}) // force several segments
	type pg struct {
		w   uint64
		rel uint32
	}
	want := map[pg][]byte{}
	for w := uint64(1); w <= 5; w++ {
		for rel := uint32(0); rel < 8; rel++ {
			data := bytes.Repeat([]byte{byte(w), byte(rel)}, 20)
			mustPut(t, s, 7, w, rel, data)
			want[pg{w, rel}] = data
		}
	}
	if _, err := s.DeleteWrite(7, 3); err != nil {
		t.Fatal(err)
	}
	for rel := uint32(0); rel < 8; rel++ {
		delete(want, pg{3, rel})
	}
	if _, err := s.DeletePages(7, 4, []uint32{1, 5}); err != nil {
		t.Fatal(err)
	}
	delete(want, pg{4, 1})
	delete(want, pg{4, 5})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{SegmentSize: 256})
	for k, data := range want {
		d, ok := r.GetPage(7, k.w, k.rel)
		if !ok || !bytes.Equal(d, data) {
			t.Fatalf("after restart: page (%d,%d) = %v, %v", k.w, k.rel, ok, d)
		}
	}
	if _, ok := r.GetPage(7, 3, 0); ok {
		t.Error("deleted write resurrected by restart")
	}
	if _, ok := r.GetPage(7, 4, 5); ok {
		t.Error("deleted page resurrected by restart")
	}
	if got := r.Stats().Pages; got != int64(len(want)) {
		t.Errorf("recovered pages = %d, want %d", got, len(want))
	}
}

// lastSegment returns the path of the highest-id segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ids, err := listSegmentIDs(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return segmentPath(dir, ids[len(ids)-1])
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustPut(t, s, 1, 1, 0, []byte("earlier record"))
	mustPut(t, s, 1, 1, 1, []byte("the torn one"))
	s.Close()

	// Cut the final record short, as a crash mid-append would.
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	if d, ok := r.GetPage(1, 1, 0); !ok || string(d) != "earlier record" {
		t.Errorf("earlier record lost: %q, %v", d, ok)
	}
	if _, ok := r.GetPage(1, 1, 1); ok {
		t.Error("torn record served")
	}
	if r.Stats().TruncatedBytes == 0 {
		t.Error("no truncation reported")
	}
	// The torn bytes must be physically gone so new appends are clean.
	mustPut(t, r, 1, 1, 2, []byte("after recovery"))
	r.Close()
	r2 := openTest(t, dir, Options{})
	if d, ok := r2.GetPage(1, 1, 2); !ok || string(d) != "after recovery" {
		t.Errorf("post-recovery append lost: %q, %v", d, ok)
	}
}

func TestCorruptChecksumRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustPut(t, s, 1, 1, 0, []byte("good"))
	mustPut(t, s, 1, 1, 1, []byte("will rot"))
	s.Close()

	// Flip one bit inside the second record's payload.
	path := lastSegment(t, dir)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	if d, ok := r.GetPage(1, 1, 0); !ok || string(d) != "good" {
		t.Errorf("good record lost: %q, %v", d, ok)
	}
	if d, ok := r.GetPage(1, 1, 1); ok {
		t.Errorf("rotten record served: %q", d)
	}
}

// TestSealedSegmentCorruptionFailsOpen pins the recovery policy split:
// only the newest segment can legitimately hold a torn record, so when a
// sealed segment must be replayed (no usable index sidecar), bit rot in
// it must fail Open loudly rather than silently dropping the records
// behind it (which could resurrect deleted pages).
func TestSealedSegmentCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128})
	mustPut(t, s, 1, 1, 0, bytes.Repeat([]byte("a"), 120)) // fills seg1
	mustPut(t, s, 1, 2, 0, bytes.Repeat([]byte("b"), 120)) // fills seg2
	mustPut(t, s, 1, 3, 0, []byte("c"))                    // seg3 (newest)
	s.Close()
	buf, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(segmentPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Force the replay path: without its sidecar the sealed segment must
	// be scanned, and the scan must refuse the rotten record.
	if err := os.Remove(sidecarPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentSize: 128}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

// TestBitRotBehindValidSidecarSurfacesAtRead pins the sidecar-era side
// of the policy: a sealed segment with a valid sidecar is not replayed,
// so data-level bit rot surfaces at read time — the record checksum makes
// GetPage report the page absent rather than serve bad bytes — while
// every other page keeps working.
func TestBitRotBehindValidSidecarSurfacesAtRead(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128})
	mustPut(t, s, 1, 1, 0, bytes.Repeat([]byte("a"), 120)) // fills seg1
	mustPut(t, s, 1, 2, 0, bytes.Repeat([]byte("b"), 120)) // fills seg2
	mustPut(t, s, 1, 3, 0, []byte("c"))
	s.Close()
	buf, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(segmentPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir, Options{SegmentSize: 128})
	if d, ok := r.GetPage(1, 1, 0); ok {
		t.Errorf("rotten record served: %q", d)
	}
	if d, ok := r.GetPage(1, 2, 0); !ok || !bytes.Equal(d, bytes.Repeat([]byte("b"), 120)) {
		t.Errorf("healthy page lost: %v", ok)
	}
}

func TestCompactionReclaimsDisk(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 512})
	for w := uint64(1); w <= 10; w++ {
		for rel := uint32(0); rel < 4; rel++ {
			mustPut(t, s, 1, w, rel, bytes.Repeat([]byte{byte(w)}, 64))
		}
	}
	for w := uint64(1); w <= 8; w++ {
		if _, err := s.DeleteWrite(1, w); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	for {
		again, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	after := s.Stats()
	if after.DiskBytes >= before.DiskBytes {
		t.Errorf("disk not reclaimed: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	if after.Compactions == 0 {
		t.Error("no compactions counted")
	}
	for w := uint64(9); w <= 10; w++ {
		for rel := uint32(0); rel < 4; rel++ {
			d, ok := s.GetPage(1, w, rel)
			if !ok || !bytes.Equal(d, bytes.Repeat([]byte{byte(w)}, 64)) {
				t.Fatalf("survivor (%d,%d) lost after compaction", w, rel)
			}
		}
	}
	// Compaction must preserve durability: restart and re-check.
	s.Close()
	r := openTest(t, dir, Options{SegmentSize: 512})
	if _, ok := r.GetPage(1, 1, 0); ok {
		t.Error("deleted page resurrected after compaction+restart")
	}
	if d, ok := r.GetPage(1, 9, 3); !ok || !bytes.Equal(d, bytes.Repeat([]byte{9}, 64)) {
		t.Error("survivor lost after compaction+restart")
	}
}

// TestTombstoneSurvivesCompactionOfItsSegment pins the subtle replay-
// order invariant: compacting the segment that holds a tombstone, while
// the put record it guards still exists in an older segment, must not
// resurrect the page on restart.
func TestTombstoneSurvivesCompactionOfItsSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128})
	mustPut(t, s, 1, 1, 0, bytes.Repeat([]byte("a"), 120)) // fills segment 1
	mustPut(t, s, 1, 2, 0, bytes.Repeat([]byte("b"), 120)) // fills segment 2
	// Segment 3: tombstone for the write in segment 1, plus one live page
	// so the segment isn't fully dead bookkeeping.
	if _, err := s.DeleteWrite(1, 1); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, 1, 3, 0, []byte("c"))
	// Force-compact every sealed segment (threshold 0 approximated by a
	// tiny min-dead) except the oldest, so the tombstone's own segment is
	// rewritten while segment 1's put record remains on disk.
	s.mu.RLock()
	var tombSeg *segment
	for _, seg := range s.segs {
		if seg != s.active && seg.live < seg.size && seg.id != 1 {
			tombSeg = seg
		}
	}
	s.mu.RUnlock()
	if tombSeg == nil {
		t.Skip("layout changed; tombstone segment not identifiable")
	}
	s.opts.CompactMinDead = 0.01
	if _, err := s.CompactOnce(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openTest(t, dir, Options{SegmentSize: 128})
	if _, ok := r.GetPage(1, 1, 0); ok {
		t.Error("tombstone dropped during compaction: deleted page resurrected")
	}
	if d, ok := r.GetPage(1, 3, 0); !ok || string(d) != "c" {
		t.Errorf("live page lost: %q, %v", d, ok)
	}
}

func TestConcurrentReadDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 1024, CompactMinDead: 0.2})
	const writes = 20
	page := func(w uint64, rel uint32) []byte {
		return bytes.Repeat([]byte{byte(w), byte(rel)}, 50)
	}
	for w := uint64(1); w <= writes; w++ {
		for rel := uint32(0); rel < 4; rel++ {
			mustPut(t, s, 1, w, rel, page(w, rel))
		}
	}
	// Kill most even writes so many segments qualify for compaction.
	for w := uint64(2); w <= writes; w += 2 {
		if _, err := s.DeleteWrite(1, w); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := uint64(2*(i%(writes/2)) + 1) // odd writes stay live
				rel := uint32(i % 4)
				d, ok := s.GetPage(1, w, rel)
				if !ok || !bytes.Equal(d, page(w, rel)) {
					errc <- fmt.Errorf("goroutine %d: page (%d,%d) = %v, %v", g, w, rel, d, ok)
					return
				}
			}
		}(g)
	}
	for {
		again, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

func TestTruncatedHeaderTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	mustPut(t, s, 1, 1, 0, []byte("keep me"))
	s.Close()
	path := lastSegment(t, dir)
	// Append a lone partial header (3 bytes of a length prefix).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff})
	f.Close()
	r := openTest(t, dir, Options{})
	if d, ok := r.GetPage(1, 1, 0); !ok || string(d) != "keep me" {
		t.Errorf("record lost: %q, %v", d, ok)
	}
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A segment whose first record claims a body far past maxBodyLen
	// must not panic or allocate wildly — the whole file is truncated.
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<31-1)
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if st := s.Stats(); st.Pages != 0 || st.TruncatedBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReplayResolvesBySeqNotFilePosition pins the recovery semantics
// compaction relies on: a rewritten tombstone may physically sit in a
// higher-id segment than a newer re-put of the same page, and recovery
// must resolve by sequence number, not segment order.
func TestReplayResolvesBySeqNotFilePosition(t *testing.T) {
	dir := t.TempDir()
	// seg1: the re-put of page X (seq 5). seg2: a stale tombstone for X
	// (seq 3) — the layout a compactor that relocated the tombstone
	// leaves behind.
	if err := os.WriteFile(segmentPath(dir, 1),
		appendPutRecord(nil, 5, 1, 1, 0, []byte("re-put wins")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, 2),
		appendDelWriteRecord(nil, 3, 1, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if d, ok := s.GetPage(1, 1, 0); !ok || string(d) != "re-put wins" {
		t.Errorf("stale relocated tombstone killed a newer put: %q, %v", d, ok)
	}
	// And the converse: a tombstone with a higher seq deletes the page
	// wherever the records sit.
	dir2 := t.TempDir()
	if err := os.WriteFile(segmentPath(dir2, 1),
		appendDelWriteRecord(nil, 7, 1, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir2, 2),
		appendPutRecord(nil, 5, 1, 1, 0, []byte("deleted")), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir2, Options{})
	if _, ok := s2.GetPage(1, 1, 0); ok {
		t.Error("page with seq below its tombstone resurrected")
	}
}

// TestRePutAfterDeleteSurvivesCompactionAndRestart exercises the
// end-to-end sequence the seq numbers exist for: put, GC delete, re-put,
// compact everything eligible, restart — the re-put data must survive.
func TestRePutAfterDeleteSurvivesCompactionAndRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128, CompactMinDead: 0.1})
	mustPut(t, s, 1, 1, 0, bytes.Repeat([]byte("a"), 120)) // fills seg1
	mustPut(t, s, 1, 9, 0, bytes.Repeat([]byte("b"), 120)) // fills seg2
	if _, err := s.DeleteWrite(1, 1); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, 1, 1, 0, []byte("second life")) // re-put after GC
	for {
		again, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	if d, ok := s.GetPage(1, 1, 0); !ok || string(d) != "second life" {
		t.Fatalf("re-put lost after compaction: %q, %v", d, ok)
	}
	s.Close()
	r := openTest(t, dir, Options{SegmentSize: 128})
	if d, ok := r.GetPage(1, 1, 0); !ok || string(d) != "second life" {
		t.Errorf("re-put lost after compaction+restart: %q, %v", d, ok)
	}
	if d, ok := r.GetPage(1, 9, 0); !ok || !bytes.Equal(d, bytes.Repeat([]byte("b"), 120)) {
		t.Errorf("bystander write lost: %v", ok)
	}
}

// TestCapacityIdempotentRetry pins the capacity accounting: a retried
// batch of already-stored pages must succeed near the limit, because
// nothing new is written.
func TestCapacityIdempotentRetry(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Capacity: 100})
	batch := []Page{{Blob: 1, Write: 1, Rel: 0, Data: make([]byte, 60)}}
	if _, err := s.PutPages(batch); err != nil {
		t.Fatal(err)
	}
	// The retry carries no new bytes and must not trip the capacity gate.
	if n, err := s.PutPages(batch); err != nil || n != 0 {
		t.Errorf("idempotent retry: stored %d, err %v", n, err)
	}
	// A genuinely new over-limit batch still fails atomically.
	over := []Page{
		{Blob: 1, Write: 2, Rel: 0, Data: make([]byte, 30)},
		{Blob: 1, Write: 2, Rel: 1, Data: make([]byte, 30)},
	}
	if _, err := s.PutPages(over); !errors.Is(err, ErrCapacity) {
		t.Errorf("err = %v, want ErrCapacity", err)
	}
	if _, ok := s.GetPage(1, 2, 0); ok {
		t.Error("partial batch stored despite capacity failure")
	}
	// After freeing space the same batch fits.
	if _, err := s.DeleteWrite(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPages(over); err != nil {
		t.Errorf("put after delete: %v", err)
	}
}

// TestOversizedPageRejected pins the up-front bound: a page too large to
// re-decode must be refused, not persisted as a poison record.
func TestOversizedPageRejected(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	huge := Page{Blob: 1, Write: 1, Rel: 0, Data: make([]byte, MaxPageSize+1)}
	if _, err := s.PutPages([]Page{huge}); err == nil {
		t.Fatal("oversized page accepted")
	}
	if st := s.Stats(); st.DiskBytes != 0 {
		t.Errorf("oversized page left %d bytes on disk", st.DiskBytes)
	}
}

func TestForEachPage(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	mustPut(t, s, 1, 1, 0, []byte("aa"))
	mustPut(t, s, 2, 1, 1, []byte("bb"))
	seen := map[string]bool{}
	s.ForEachPage(func(blob, write uint64, rel uint32, data []byte) {
		seen[fmt.Sprintf("%d/%d/%d=%s", blob, write, rel, data)] = true
	})
	if !seen["1/1/0=aa"] || !seen["2/1/1=bb"] || len(seen) != 2 {
		t.Errorf("seen = %v", seen)
	}
}
