package diskstore

import (
	"blob/internal/wire"
)

// Per-segment bloom filters. Each sealed segment's sidecar carries a
// bloom filter over the page keys of every put record in the segment
// (live or since-deleted), so "does this segment possibly hold a record
// for page X?" is answerable without reading the segment or the index.
// The store keeps loaded filters in memory for MightContain — the cheap
// negative-lookup primitive remote/replicated backends can use to rule a
// provider out without an exact index probe.
//
// Sizing: bloomBitsPerEntry bits per put record with bloomHashes probe
// positions gives a false-positive rate under 1%. Probe positions use
// double hashing over the page key's dispersal hash (see hashPageKey and
// docs/diskstore-format.md for the exact byte-level definition).

const (
	bloomBitsPerEntry = 10
	bloomHashes       = 7
)

// bloomFilter is a fixed-size bloom filter over page keys.
type bloomFilter struct {
	k    uint32
	bits []uint64
}

// newBloom sizes a filter for n expected entries.
func newBloom(n int) *bloomFilter {
	words := (n*bloomBitsPerEntry + 63) / 64
	if words < 1 {
		words = 1
	}
	return &bloomFilter{k: bloomHashes, bits: make([]uint64, words)}
}

// hashPageKey derives the two double-hashing bases for one page key.
// h2 is forced odd so the probe stride is coprime with any power-of-two
// modulus and never degenerates to a single position.
func hashPageKey(blob, write uint64, rel uint32) (h1, h2 uint64) {
	h1 = wire.HashFields(blob, write, uint64(rel))
	h2 = wire.Mix64(h1) | 1
	return h1, h2
}

func (b *bloomFilter) nbits() uint64 { return uint64(len(b.bits)) * 64 }

// add records one page key.
func (b *bloomFilter) add(blob, write uint64, rel uint32) {
	h1, h2 := hashPageKey(blob, write, rel)
	m := b.nbits()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mightContain reports whether the key may have been added: false means
// definitely absent, true means possibly present.
func (b *bloomFilter) mightContain(blob, write uint64, rel uint32) bool {
	h1, h2 := hashPageKey(blob, write, rel)
	m := b.nbits()
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// encode appends the filter's wire form (hash count, word count, words).
func (b *bloomFilter) encode(w *wire.Writer) {
	w.Uint32(b.k)
	w.Uint32(uint32(len(b.bits)))
	for _, word := range b.bits {
		w.Uint64(word)
	}
}

// decodeBloom reads a filter written by encode. Structural errors poison
// the reader, which the sidecar loader turns into a replay fallback.
func decodeBloom(r *wire.Reader) *bloomFilter {
	k := r.Uint32()
	words := int(r.Uint32())
	if r.Err() != nil || k == 0 || words <= 0 || words > r.Remaining()/8+1 {
		return nil
	}
	b := &bloomFilter{k: k, bits: make([]uint64, words)}
	for i := range b.bits {
		b.bits[i] = r.Uint64()
	}
	if r.Err() != nil {
		return nil
	}
	return b
}
