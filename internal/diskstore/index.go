// Index sidecar files.
//
// When a segment is sealed the store writes a companion file
// (seg-NNNNNNNN.idx) holding everything recovery would otherwise learn
// by replaying the segment's data: every put record's page key with its
// sequence number, offset and encoded size, every tombstone with its
// sequence number, and a bloom filter over the segment's put keys. On
// the next Open, sealed segments whose sidecar is present and matches
// the segment file byte count are absorbed by reading only the sidecar —
// restart cost becomes O(live index), not O(disk) — while the active
// tail segment is always replayed (it is the only file a crash can tear)
// and any segment whose sidecar is missing, torn or checksum-corrupt
// degrades to the pre-sidecar full replay of just that segment.
//
// Sidecars are pure acceleration: they are written tmp+rename (never
// partially visible under their final name), carry a whole-file
// checksum, and are deleted with their segment by the compactor, so a
// lost or rotten sidecar can cost time but never correctness. The exact
// byte layout is specified in docs/diskstore-format.md.

package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"blob/internal/wire"
)

const (
	idxSuffix = ".idx"
	idxTmp    = ".idx.tmp"

	idxMagic   = 0x58444953 // "SIDX", little-endian
	idxVersion = 1
)

// sidecarPath returns the sidecar filename for segment id.
func sidecarPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, id, idxSuffix))
}

// sidecarPut is one put record's index entry.
type sidecarPut struct {
	blob  uint64
	write uint64
	rel   uint32
	seq   uint64
	off   int64
	size  int64
}

// sidecarDelPages is one page of an opDelPages tombstone (the record is
// flattened to one entry per rel, which is what replay resolution needs).
type sidecarDelPages struct {
	blob  uint64
	write uint64
	rel   uint32
	seq   uint64
}

// sidecarDelWrite is one opDelWrite tombstone.
type sidecarDelWrite struct {
	blob  uint64
	write uint64
	seq   uint64
}

// sidecar is the decoded content of one .idx file.
type sidecar struct {
	id        uint64
	dataSize  int64 // segment .log byte count this sidecar describes
	maxSeq    uint64
	puts      []sidecarPut
	delPages  []sidecarDelPages
	delWrites []sidecarDelWrite
	bloom     *wire.Bloom
}

// encode returns the sidecar's file bytes: fixed-width little-endian
// fields followed by a whole-file FNV-1a checksum.
func (sc *sidecar) encode() []byte {
	w := wire.NewWriter(64 + 44*len(sc.puts) + 28*len(sc.delPages) + 24*len(sc.delWrites))
	w.Uint32(idxMagic)
	w.Uint32(idxVersion)
	w.Uint64(sc.id)
	w.Uint64(uint64(sc.dataSize))
	w.Uint64(sc.maxSeq)
	w.Uint64(uint64(len(sc.puts)))
	for _, p := range sc.puts {
		w.Uint64(p.blob)
		w.Uint64(p.write)
		w.Uint32(p.rel)
		w.Uint64(p.seq)
		w.Uint64(uint64(p.off))
		w.Uint64(uint64(p.size))
	}
	w.Uint64(uint64(len(sc.delPages)))
	for _, d := range sc.delPages {
		w.Uint64(d.blob)
		w.Uint64(d.write)
		w.Uint32(d.rel)
		w.Uint64(d.seq)
	}
	w.Uint64(uint64(len(sc.delWrites)))
	for _, d := range sc.delWrites {
		w.Uint64(d.blob)
		w.Uint64(d.write)
		w.Uint64(d.seq)
	}
	sc.bloom.Encode(w)
	w.Uint64(wire.Checksum64(w.Bytes()))
	return w.Bytes()
}

// decodeSidecar parses and validates sidecar file bytes. Any structural
// defect — short file, bad magic or version, checksum mismatch,
// implausible counts — returns ErrCorrupt; the caller falls back to a
// full replay of the segment.
func decodeSidecar(buf []byte) (*sidecar, error) {
	if len(buf) < 48+8 {
		return nil, fmt.Errorf("%w: sidecar %d bytes", ErrCorrupt, len(buf))
	}
	body, sumBytes := buf[:len(buf)-8], buf[len(buf)-8:]
	if wire.Checksum64(body) != wire.NewReader(sumBytes).Uint64() {
		return nil, fmt.Errorf("%w: sidecar checksum mismatch", ErrCorrupt)
	}
	r := wire.NewReader(body)
	if m := r.Uint32(); m != idxMagic {
		return nil, fmt.Errorf("%w: sidecar magic %#x", ErrCorrupt, m)
	}
	if v := r.Uint32(); v != idxVersion {
		return nil, fmt.Errorf("%w: sidecar version %d", ErrCorrupt, v)
	}
	sc := &sidecar{}
	sc.id = r.Uint64()
	sc.dataSize = int64(r.Uint64())
	sc.maxSeq = r.Uint64()

	nPuts := r.Uint64()
	if nPuts > uint64(r.Remaining())/44 {
		return nil, fmt.Errorf("%w: sidecar put count %d", ErrCorrupt, nPuts)
	}
	sc.puts = make([]sidecarPut, nPuts)
	for i := range sc.puts {
		sc.puts[i] = sidecarPut{
			blob: r.Uint64(), write: r.Uint64(), rel: r.Uint32(),
			seq: r.Uint64(), off: int64(r.Uint64()), size: int64(r.Uint64()),
		}
	}
	nDelPages := r.Uint64()
	if nDelPages > uint64(r.Remaining())/28 {
		return nil, fmt.Errorf("%w: sidecar del-pages count %d", ErrCorrupt, nDelPages)
	}
	sc.delPages = make([]sidecarDelPages, nDelPages)
	for i := range sc.delPages {
		sc.delPages[i] = sidecarDelPages{
			blob: r.Uint64(), write: r.Uint64(), rel: r.Uint32(), seq: r.Uint64(),
		}
	}
	nDelWrites := r.Uint64()
	if nDelWrites > uint64(r.Remaining())/24 {
		return nil, fmt.Errorf("%w: sidecar del-writes count %d", ErrCorrupt, nDelWrites)
	}
	sc.delWrites = make([]sidecarDelWrite, nDelWrites)
	for i := range sc.delWrites {
		sc.delWrites[i] = sidecarDelWrite{
			blob: r.Uint64(), write: r.Uint64(), seq: r.Uint64(),
		}
	}
	sc.bloom = wire.DecodeBloom(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: sidecar body: %v", ErrCorrupt, err)
	}
	if sc.bloom == nil || sc.dataSize < 0 {
		return nil, fmt.Errorf("%w: sidecar structure", ErrCorrupt)
	}
	for _, p := range sc.puts {
		// Subtractive form: p.off + p.size could overflow int64 on a
		// checksum-valid-but-hostile file and wrap past the bound.
		if p.off < 0 || p.size < recHeaderSize+putBodyPrefix ||
			p.size > sc.dataSize || p.off > sc.dataSize-p.size {
			return nil, fmt.Errorf("%w: sidecar entry out of range", ErrCorrupt)
		}
	}
	return sc, nil
}

// writeSidecarFile atomically replaces segment id's sidecar.
func writeSidecarFile(dir string, sc *sidecar) error {
	return writeSidecarBytes(dir, sc.id, sc.encode())
}

// writeSidecarBytes atomically installs already-encoded sidecar bytes:
// they land under a temporary name and are renamed into place, so a
// crash mid-write never leaves a short file under the .idx name (and a
// torn rename target would fail the checksum anyway).
func writeSidecarBytes(dir string, id uint64, data []byte) error {
	final := sidecarPath(dir, id)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// removeOrphanSidecars deletes .idx and .idx.tmp files whose segment no
// longer exists. Run at Open, before any appends: it prevents a stale
// sidecar left by a compacted-away segment from ever being paired with a
// future segment that reuses the id after a restart.
func removeOrphanSidecars(dir string, ids []uint64) {
	live := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		live[id] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		if strings.HasSuffix(name, idxTmp) {
			os.Remove(filepath.Join(dir, name)) // torn sidecar write leftover
			continue
		}
		base, ok := strings.CutSuffix(name, idxSuffix)
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(base, segPrefix), 10, 64)
		if err != nil {
			continue
		}
		if !live[id] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
