package diskstore

import "time"

// compactThrottle charges n bytes of compaction I/O against the
// CompactRateBytes budget (a shared throttle.TokenBucket), sleeping off
// any debt. It returns ErrClosed if the store closes during the wait so
// a throttled compaction never delays shutdown. Must not be called with
// the store lock held.
func (s *Store) compactThrottle(n int64) error {
	if s.compactTB == nil || n <= 0 {
		return nil
	}
	d := s.compactTB.Reserve(n)
	if d <= 0 {
		return nil
	}
	s.throttleWait.Add(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return ErrClosed
	case <-t.C:
		return nil
	}
}
