package diskstore

import (
	"sync"
	"time"
)

// tokenBucket meters the compactor's I/O. Tokens are bytes; they refill
// continuously at rate per second up to burst. reserve always succeeds
// immediately and may drive the balance negative (a compactor read can
// exceed the burst), returning how long the caller must sleep before
// doing more I/O — the debt-repayment model keeps accounting exact even
// when charges arrive after the I/O they cover (record rewrites are
// post-paid so the sleep happens outside the store's writer lock).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

// newTokenBucket creates a bucket refilling rate bytes/sec with one
// second of burst, starting full.
func newTokenBucket(rate int64) *tokenBucket {
	b := &tokenBucket{rate: float64(rate), burst: float64(rate), now: time.Now}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// reserve consumes n tokens and returns how long the caller must wait
// for the balance to return to zero (0 when the bucket covers n).
func (b *tokenBucket) reserve(n int64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// compactThrottle charges n bytes of compaction I/O against the
// CompactRateBytes budget, sleeping off any debt. It returns ErrClosed
// if the store closes during the wait so a throttled compaction never
// delays shutdown. Must not be called with the store lock held.
func (s *Store) compactThrottle(n int64) error {
	if s.throttle == nil || n <= 0 {
		return nil
	}
	d := s.throttle.reserve(n)
	if d <= 0 {
		return nil
	}
	s.throttleWait.Add(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return ErrClosed
	case <-t.C:
		return nil
	}
}
