package diskstore

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// FuzzDecodeRecord asserts the record decoder never panics, never
// accepts a record that does not round-trip, and never reports a size
// beyond the input.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(appendPutRecord(nil, 1, 1, 2, 3, []byte("payload")))
	f.Add(appendDelPagesRecord(nil, 2, 9, 8, []uint32{0, 1, 7}))
	f.Add(appendDelWriteRecord(nil, 3, 5, 6))
	torn := appendPutRecord(nil, 4, 1, 2, 3, []byte("torn"))
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded size %d of %d input bytes", n, len(data))
		}
		// An accepted record must re-encode to exactly the bytes it was
		// decoded from — the checksum leaves no slack for smuggled bytes.
		var re []byte
		switch rec.op {
		case opPut:
			re = appendPutRecord(nil, rec.seq, rec.blob, rec.write, rec.rel, rec.data)
		case opDelPages:
			re = appendDelPagesRecord(nil, rec.seq, rec.blob, rec.write, rec.rels)
		case opDelWrite:
			re = appendDelWriteRecord(nil, rec.seq, rec.blob, rec.write)
		default:
			t.Fatalf("accepted unknown opcode %d", rec.op)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("record does not round-trip:\n got %x\nwant %x", re, data[:n])
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the startup scan as a
// segment file. Whatever the input, Open must not panic, and every page
// the recovered store serves must match an independent replay of the
// file's valid record prefix — corrupt or truncated input is rejected or
// truncated, never served.
func FuzzSegmentScan(f *testing.F) {
	var seed []byte
	seed = appendPutRecord(seed, 1, 1, 10, 0, []byte("alpha"))
	seed = appendPutRecord(seed, 2, 1, 10, 1, []byte("beta"))
	seed = appendDelPagesRecord(seed, 3, 1, 10, []uint32{0})
	seed = appendPutRecord(seed, 4, 2, 11, 0, []byte("gamma"))
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-4])                    // torn tail
	f.Add(append(bytes.Clone(seed), 0xde, 0xad)) // garbage tail
	flipped := bytes.Clone(seed)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped) // checksum-breaking bit flip
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir})
		if err != nil {
			return // rejecting the file outright is fine
		}
		defer s.Close()

		// Independent seq-based replay of the valid prefix: keep the
		// highest-seq put and tombstone per page, then resolve.
		type pk struct {
			blob, write uint64
			rel         uint32
		}
		type wk struct{ blob, write uint64 }
		puts := map[pk][]byte{}
		putSeq := map[pk]uint64{}
		delPage := map[pk]uint64{}
		delWrite := map[wk]uint64{}
		for off := 0; off < len(data); {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				break
			}
			switch rec.op {
			case opPut:
				k := pk{rec.blob, rec.write, rec.rel}
				if rec.seq > putSeq[k] {
					putSeq[k] = rec.seq
					puts[k] = bytes.Clone(rec.data)
				}
			case opDelPages:
				for _, rel := range rec.rels {
					k := pk{rec.blob, rec.write, rel}
					if rec.seq > delPage[k] {
						delPage[k] = rec.seq
					}
				}
			case opDelWrite:
				k := wk{rec.blob, rec.write}
				if rec.seq > delWrite[k] {
					delWrite[k] = rec.seq
				}
			}
			off += n
		}
		want := map[string][]byte{}
		for k, d := range puts {
			seq := putSeq[k]
			if seq > delWrite[wk{k.blob, k.write}] && seq > delPage[k] {
				want[fmt.Sprintf("%d/%d/%d", k.blob, k.write, k.rel)] = d
			}
		}

		got := map[string][]byte{}
		s.ForEachPage(func(blob, write uint64, rel uint32, d []byte) {
			got[fmt.Sprintf("%d/%d/%d", blob, write, rel)] = d
		})
		if len(got) != len(want) {
			t.Fatalf("recovered %d pages, replay expects %d", len(got), len(want))
		}
		for k, w := range want {
			if g, ok := got[k]; !ok || !bytes.Equal(g, w) {
				t.Fatalf("page %s: served %q, replay expects %q", k, g, w)
			}
		}
	})
}
