package diskstore

import (
	"fmt"
	"time"

	"blob/internal/events"
)

// Compaction rewrites mostly-dead sealed segments: every still-live put
// record is re-appended (bytes verbatim — records are self-contained,
// already checksummed, and keep their sequence number) to the active
// segment, the index is repointed, and the old file is unlinked once the
// last in-flight reader drains — its index sidecar with it; the records
// live on in whatever segment received them, which gets its own sidecar
// when it seals. Reads never block: a reader that resolved the old
// location before the repoint finishes against the unlinked file's
// still-open handle. When Options.CompactRateBytes is set, candidate
// reads and record rewrites are metered through a token bucket (see
// throttle.go), so reclamation yields the disk to foreground traffic.
//
// Tombstones need care: a tombstone guards every dead put record with a
// lower sequence number that is still physically on disk — dropping it
// while such a put survives would resurrect the page on the next
// restart (recovery resolves by sequence number, so *where* the records
// sit is irrelevant, but *whether* the tombstone exists is not). Dead
// puts are never rewritten, and a record's segment is never newer than
// segments created after it, so every put a tombstone guards lives in a
// segment with an id at most the tombstone's own. The compactor
// therefore rewrites tombstones verbatim, dropping them only when the
// candidate is the oldest segment — where anything they guard is being
// dropped in the same pass.

// compactLoop drives CompactOnce every Options.CompactEvery until the
// store closes.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for {
				again, err := s.CompactOnce()
				if err != nil || !again {
					break
				}
			}
		}
	}
}

// CompactOnce rewrites the deadest sealed segment whose dead fraction is
// at least Options.CompactMinDead. It reports whether a segment was
// compacted; false with a nil error means nothing qualified.
func (s *Store) CompactOnce() (bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, ErrClosed
	}
	var cand *segment
	var candDead float64
	minID := uint64(0)
	for id, seg := range s.segs {
		if minID == 0 || id < minID {
			minID = id
		}
		if seg == s.active || seg.size == 0 {
			continue
		}
		dead := float64(seg.size-seg.live) / float64(seg.size)
		if dead >= s.opts.CompactMinDead && (cand == nil || dead > candDead) {
			cand, candDead = seg, dead
		}
	}
	if cand != nil {
		cand.acquire()
	}
	size := int64(0)
	if cand != nil {
		size = cand.size // sealed: immutable from here on
	}
	s.mu.RUnlock()
	if cand == nil {
		return false, nil
	}
	defer cand.release()
	dropTombstones := cand.id == minID

	// Pre-pay the candidate read against the I/O budget; rewrites below
	// are post-paid after each append so the throttle sleep never holds
	// the writer lock foreground puts need.
	if err := s.compactThrottle(size); err != nil {
		return false, err
	}
	buf := make([]byte, size)
	if _, err := cand.f.ReadAt(buf, 0); err != nil {
		return false, fmt.Errorf("diskstore: compact read %s: %w", cand.path, err)
	}
	for off := int64(0); off < size; {
		rec, n, err := decodeRecord(buf[off:])
		if err != nil {
			// A sealed segment should never fail to decode; leave it in
			// place rather than silently dropping its tail.
			return false, fmt.Errorf("diskstore: compact %s at %d: %w", cand.path, off, err)
		}
		raw := buf[off : off+int64(n)]
		rewrote, err := s.rewriteRecord(cand, rec, off, raw, dropTombstones)
		if err != nil {
			return false, err
		}
		if rewrote {
			if err := s.compactThrottle(int64(n)); err != nil {
				return false, err
			}
		}
		off += int64(n)
	}

	// The rewritten records must be durable before the only other copy
	// is unlinked: power loss between the unlink and a page-cache flush
	// would otherwise lose pages that had already survived restarts.
	s.mu.Lock()
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil {
			s.mu.Unlock()
			return false, fmt.Errorf("diskstore: compact sync: %w", err)
		}
	}
	delete(s.segs, cand.id)
	s.compactions++
	s.mu.Unlock()
	cand.retire(true)
	s.opts.Journal.Emit(events.SevInfo, events.CompactionDone, size-cand.live,
		"rewrote segment %d: %d of %d bytes dead reclaimed", cand.id, size-cand.live, size)
	return true, nil
}

// rewriteRecord migrates one record out of a segment being compacted,
// reporting whether bytes were actually re-appended (for the caller's
// I/O accounting).
func (s *Store) rewriteRecord(cand *segment, rec record, off int64, raw []byte, dropTombstones bool) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	switch rec.op {
	case opPut:
		k := writeKey{rec.blob, rec.write}
		old, ok := s.index[k][rec.rel]
		if !ok || old.seg != cand || old.off != off {
			return false, nil // dead (deleted or duplicate): drop
		}
		l, err := s.appendLocked(raw, rec.meta())
		if err != nil {
			return false, err
		}
		s.index[k][rec.rel] = l
		l.seg.live += l.size
	case opDelPages, opDelWrite:
		if dropTombstones {
			return false, nil
		}
		if _, err := s.appendLocked(raw, rec.meta()); err != nil {
			return false, err
		}
	}
	return true, nil
}
