package diskstore

import (
	"blob/internal/wire"

	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

// segment is one append-only file of records. Its bytes are immutable
// once written (only the tail grows), so concurrent ReadAt needs no
// locking. size and live are guarded by the store's writer lock.
type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64 // bytes written (valid prefix after recovery)
	live int64 // bytes occupied by live put records

	// bloom is the filter over the segment's put page keys, set when the
	// segment is sealed (sidecar written) or its sidecar is loaded; nil
	// for the active segment and for sealed segments whose sidecar write
	// failed. Immutable once set — sealed segments never gain records.
	bloom *wire.Bloom

	// idx accumulates the segment's sidecar entries as records are
	// appended (or replayed at open), so sealing writes the sidecar from
	// memory instead of re-reading and re-decoding the segment under the
	// store's writer lock. Guarded by the writer lock; cleared once the
	// sidecar is written.
	idx *sidecar

	// refs counts in-flight readers plus one for store membership; the
	// count reaching zero closes and removes the file. Compaction drops
	// the membership ref after unmapping the segment from the index, so
	// the file disappears only after the last concurrent reader is done.
	refs    atomic.Int64
	doomed  atomic.Bool // remove the file once refs drains
	retired atomic.Bool
}

func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, id, segSuffix))
}

// openSegment opens (or creates) segment id for reading and appending.
func openSegment(dir string, id uint64) (*segment, error) {
	path := segmentPath(dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, path: path, f: f}
	seg.refs.Store(1) // store-membership reference
	return seg, nil
}

// acquire pins the segment's file open for one reader.
func (g *segment) acquire() { g.refs.Add(1) }

// noteRecord feeds one just-appended (or just-replayed) record into the
// segment's sidecar accumulator. Caller holds the store's writer lock
// (or owns the store exclusively during Open).
func (g *segment) noteRecord(m recMeta, off, size int64) {
	if g.idx == nil {
		g.idx = &sidecar{id: g.id}
	}
	sc := g.idx
	if m.seq > sc.maxSeq {
		sc.maxSeq = m.seq
	}
	switch m.op {
	case opPut:
		sc.puts = append(sc.puts, sidecarPut{
			blob: m.blob, write: m.write, rel: m.rel,
			seq: m.seq, off: off, size: size,
		})
	case opDelPages:
		for _, rel := range m.rels {
			sc.delPages = append(sc.delPages, sidecarDelPages{
				blob: m.blob, write: m.write, rel: rel, seq: m.seq,
			})
		}
	case opDelWrite:
		sc.delWrites = append(sc.delWrites, sidecarDelWrite{
			blob: m.blob, write: m.write, seq: m.seq,
		})
	}
}

// release drops a reader pin, closing and removing the file if the
// segment was retired and this was the last reference. A removed
// segment's index sidecar goes with it — the records it described no
// longer exist.
func (g *segment) release() {
	if g.refs.Add(-1) == 0 {
		g.f.Close()
		if g.doomed.Load() {
			os.Remove(g.path)
			os.Remove(sidecarPath(filepath.Dir(g.path), g.id))
		}
	}
}

// retire drops the store-membership reference, at most once. With
// remove set the file is unlinked after the last reader drains.
func (g *segment) retire(remove bool) {
	if g.retired.Swap(true) {
		return
	}
	g.doomed.Store(remove)
	g.release()
}
