// Package diskstore is a crash-recoverable persistent page store: the
// disk-backed counterpart of the data provider's in-RAM store. It keeps
// the paper's access model — pages are immutable once written, a write
// never updates data in place, deletion happens only when the garbage
// collector orders it — and adds durability so a provider restarted over
// its data directory serves every page it held before the crash.
//
// Layout: pages (blob, write, rel) → data are appended as checksummed
// records into fixed-size segment files (seg-NNNNNNNN.log) under one
// directory. Deletions append tombstone records. An in-memory index maps
// each live page to its (segment, offset) and is rebuilt on startup; a
// torn final record — the footprint of a crash mid-append — is truncated
// away, keeping every record before it. Per-segment live-byte accounting
// feeds a compactor that rewrites mostly-dead segments' surviving
// records to the active segment and deletes the file, reclaiming disk
// after garbage collection. The compactor's I/O can be throttled
// (Options.CompactRateBytes) so reclamation never starves foreground
// page traffic.
//
// Restart cost is O(live index), not O(disk): sealing a segment writes a
// checksummed index sidecar (seg-NNNNNNNN.idx, see index.go and
// docs/diskstore-format.md) holding the segment's index entries,
// tombstones and a bloom filter over its page keys. Open absorbs sealed
// segments by reading only their sidecars; the active tail segment is
// always replayed (it is the only file a crash can tear), and a segment
// whose sidecar is missing, stale or corrupt degrades to a full replay
// of just that segment, after which its sidecar is rewritten.
//
// Concurrency: appends and index mutations serialize on one writer lock;
// reads take a read lock only to resolve the index, then read the record
// bytes with ReadAt and verify its checksum — segments are immutable, so
// reads proceed in parallel with appends and with compaction. A segment
// being compacted away is unmapped from the index first and its file is
// closed only when the last in-flight reader releases it.
package diskstore

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/events"
	"blob/internal/throttle"
	"blob/internal/wire"
)

// Options configures a Store.
type Options struct {
	// Dir is the segment directory; created if absent.
	Dir string
	// SegmentSize is the size at which the active segment is sealed and a
	// new one started (default 4 MiB). Individual records may exceed it —
	// a segment always holds at least one record.
	SegmentSize int64
	// Capacity bounds live page payload bytes (0 = unlimited). A put
	// batch whose genuinely new pages would exceed it fails atomically
	// with ErrCapacity before anything is written; already-present pages
	// don't count, so idempotent retries near the limit stay safe.
	Capacity int64
	// Sync makes every append batch fsync before returning. Off by
	// default: the paper's providers favour throughput, and recovery
	// already tolerates a torn tail.
	Sync bool
	// CompactMinDead is the fraction of a sealed segment's bytes that
	// must be dead before the compactor rewrites it (default 0.5).
	CompactMinDead float64
	// CompactEvery, when positive, starts a background compaction loop
	// with that period. Compaction can also be driven explicitly through
	// CompactOnce.
	CompactEvery time.Duration
	// CompactRateBytes, when positive, caps compaction I/O (candidate
	// reads plus record rewrites) at roughly this many bytes per second
	// through a token bucket, so background reclamation cannot starve
	// foreground page traffic. Zero leaves compaction unthrottled.
	CompactRateBytes int64
	// Journal, if set, records compactions and sidecar-degrade
	// recoveries as cluster events for the monitor plane.
	Journal *events.Journal
}

func (o *Options) fillDefaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.CompactMinDead <= 0 || o.CompactMinDead > 1 {
		o.CompactMinDead = 0.5
	}
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("diskstore: closed")

// ErrCapacity is returned when a put batch's new pages would exceed
// Options.Capacity.
var ErrCapacity = errors.New("diskstore: capacity exceeded")

// writeKey identifies all pages of one write on one blob.
type writeKey struct {
	blob  uint64
	write uint64
}

// loc locates one live page record inside a segment.
type loc struct {
	seg  *segment
	off  int64 // record start (length prefix)
	size int64 // total encoded size, header included
}

func (l loc) dataLen() int64 { return l.size - recHeaderSize - putBodyPrefix }

// Store is a persistent page store over one directory of segment files.
type Store struct {
	opts Options

	mu      sync.RWMutex
	index   map[writeKey]map[uint32]loc
	segs    map[uint64]*segment
	active  *segment
	nextID  uint64
	nextSeq uint64 // next record sequence number (see record.go)
	closed  bool

	pageCount int64
	pageBytes int64 // live page payload bytes

	compactions int64
	truncated   int64 // bytes discarded by torn-tail recovery

	// Recovery telemetry, written once by Open.
	replayedBytes  int64 // segment bytes fully replayed at open
	sidecarBytes   int64 // sidecar bytes read in place of replay
	segsReplayed   int64 // segments that took the replay path
	sidecarsLoaded int64 // segments absorbed from their sidecar

	compactTB    *throttle.TokenBucket // nil when CompactRateBytes == 0
	throttleWait atomic.Int64          // nanoseconds the compactor slept throttled

	stop chan struct{}
	wg   sync.WaitGroup
}

// Stats is a point-in-time usage snapshot.
type Stats struct {
	// Pages and PageBytes count live pages and their payload bytes.
	Pages     int64
	PageBytes int64
	// DiskBytes is the total size of all segment files; LiveBytes is the
	// portion occupied by live page records. Their ratio drives
	// compaction.
	DiskBytes int64
	LiveBytes int64
	// Segments counts segment files, the active one included.
	Segments int64
	// Compactions counts segments rewritten since open; TruncatedBytes
	// counts bytes discarded by torn-tail recovery at open.
	Compactions    int64
	TruncatedBytes int64
	// Recovery telemetry from Open: ReplayedBytes is segment-file bytes
	// that had to be fully replayed (the active tail plus any segment
	// lacking a usable sidecar), SidecarBytes is index-sidecar bytes read
	// in their place, and SegmentsReplayed / SidecarsLoaded count the
	// segments that took each path.
	ReplayedBytes    int64
	SidecarBytes     int64
	SegmentsReplayed int64
	SidecarsLoaded   int64
	// ThrottleWait is the total time compaction has slept in the
	// CompactRateBytes token bucket since open.
	ThrottleWait time.Duration
}

// LiveRatio is LiveBytes/DiskBytes, 1 for an empty store.
func (s Stats) LiveRatio() float64 {
	if s.DiskBytes == 0 {
		return 1
	}
	return float64(s.LiveBytes) / float64(s.DiskBytes)
}

// Open opens (or creates) the store in opts.Dir, rebuilding the page
// index. Sealed segments with a valid index sidecar are absorbed by
// reading only the sidecar; the newest segment — the active tail, the
// only file a crash can tear — is always replayed, and a torn final
// record is truncated away, keeping every record before it. A sealed
// segment whose sidecar is missing, stale or corrupt is fully replayed
// instead, and its sidecar rewritten for the next restart.
func Open(opts Options) (*Store, error) {
	opts.fillDefaults()
	if opts.Dir == "" {
		return nil, errors.New("diskstore: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:    opts,
		index:   make(map[writeKey]map[uint32]loc),
		segs:    make(map[uint64]*segment),
		nextID:  1,
		nextSeq: 1,
		stop:    make(chan struct{}),
	}
	if opts.CompactRateBytes > 0 {
		s.compactTB = throttle.New(opts.CompactRateBytes)
	}
	ids, err := listSegmentIDs(opts.Dir)
	if err != nil {
		return nil, err
	}
	removeOrphanSidecars(opts.Dir, ids)
	replay := newReplayState()
	var replayed []*segment // sealed segments that need a fresh sidecar
	for i, id := range ids {
		seg, err := openSegment(opts.Dir, id)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		last := i == len(ids)-1
		if !last {
			if fi, err := seg.f.Stat(); err == nil && fi.Size() == 0 {
				// A roll that crashed before its first append (or an
				// operator-truncated file): the segment holds no records,
				// so recover it as empty by deleting it — keeping it would
				// pin the oldest-segment id forever and block the
				// compactor's tombstone dropping.
				seg.retire(true)
				s.nextID = id + 1
				continue
			}
			if s.loadSidecar(seg, replay) {
				s.segs[id] = seg
				s.nextID = id + 1
				continue
			}
			// A sealed segment should always absorb from its sidecar;
			// reaching the replay path means the sidecar was missing,
			// stale or corrupt.
			opts.Journal.Emit(events.SevError, events.SidecarDegrade, seg.size,
				"segment %s: sidecar missing or corrupt; fully replaying %d bytes", seg.path, seg.size)
		}
		if err := s.scanSegment(seg, replay, last); err != nil {
			seg.f.Close()
			s.closeAll()
			return nil, err
		}
		s.segsReplayed++
		if !last {
			replayed = append(replayed, seg)
		}
		s.segs[id] = seg
		s.nextID = id + 1
	}
	s.resolveReplay(replay)
	// Reuse the newest segment for appends if it has room, else start a
	// fresh one lazily on first append.
	if len(ids) > 0 {
		last := s.segs[ids[len(ids)-1]]
		if last.size < opts.SegmentSize {
			s.active = last
		} else {
			replayed = append(replayed, last) // stays sealed: index it
		}
	}
	for _, seg := range replayed {
		s.writeSidecarFor(seg)
	}
	if opts.CompactEvery > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// loadSidecar tries to absorb a sealed segment from its index sidecar,
// feeding the entries into the replay state. It reports success; any
// failure (no sidecar, torn or checksum-corrupt file, or a sidecar that
// does not describe the segment file's exact byte count — the footprint
// of a segment that was appended to after the sidecar was written) means
// the caller must fully replay the segment.
func (s *Store) loadSidecar(seg *segment, rp *replayState) bool {
	buf, err := os.ReadFile(sidecarPath(s.opts.Dir, seg.id))
	if err != nil {
		return false
	}
	sc, err := decodeSidecar(buf)
	if err != nil || sc.id != seg.id {
		return false
	}
	fi, err := seg.f.Stat()
	if err != nil || fi.Size() != sc.dataSize {
		return false
	}
	seg.size = sc.dataSize
	seg.bloom = sc.bloom
	for _, p := range sc.puts {
		pk := pageKey{writeKey{p.blob, p.write}, p.rel}
		if p.seq > rp.putSeq[pk] {
			rp.puts[pk] = loc{seg: seg, off: p.off, size: p.size}
			rp.putSeq[pk] = p.seq
		}
	}
	for _, d := range sc.delPages {
		pk := pageKey{writeKey{d.blob, d.write}, d.rel}
		if d.seq > rp.delPage[pk] {
			rp.delPage[pk] = d.seq
		}
	}
	for _, d := range sc.delWrites {
		k := writeKey{d.blob, d.write}
		if d.seq > rp.delWrite[k] {
			rp.delWrite[k] = d.seq
		}
	}
	if sc.maxSeq > rp.maxSeq {
		rp.maxSeq = sc.maxSeq
	}
	s.sidecarBytes += int64(len(buf))
	s.sidecarsLoaded++
	return true
}

// writeSidecarFor builds seg's index sidecar from the entries its
// accumulator collected as records were appended or replayed — no
// segment bytes are re-read — retains the bloom filter in memory, and
// hands the encoded bytes to a tracked goroutine for the actual file
// write, so sealing never stalls the writer lock on filesystem I/O.
// Sidecars are an acceleration, not a correctness requirement, so a
// failed write only logs: the segment will be replayed on the next
// open.
func (s *Store) writeSidecarFor(seg *segment) {
	sc := seg.idx
	if sc == nil {
		if seg.size > 0 {
			// A non-empty segment with no accumulator is a caller bug
			// (already-sealed segment, or a second seal). Writing an
			// empty-but-valid sidecar here would make the next Open
			// absorb the segment as empty — silent data loss. Refuse;
			// worst case the segment is replayed on restart.
			log.Printf("diskstore: refusing sidecar for %s: no accumulated entries for %d data bytes", seg.path, seg.size)
			return
		}
		sc = &sidecar{id: seg.id}
	}
	seg.idx = nil // sealed: no further records; entries move to the file
	sc.dataSize = seg.size
	sc.bloom = wire.NewBloom(len(sc.puts))
	for _, p := range sc.puts {
		sc.bloom.Add(p.blob, p.write, p.rel)
	}
	seg.bloom = sc.bloom // valid regardless of the file write's fate
	data := sc.encode()
	dir := s.opts.Dir
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := writeSidecarBytes(dir, seg.id, data); err != nil {
			log.Printf("diskstore: sidecar for %s: %v (segment will be replayed on restart)", seg.path, err)
		}
		// The write can race a compaction that unlinked the segment (and
		// its sidecar) while we were renaming: the rename happens before
		// this doomed check, and retire sets doomed before removing, so
		// whichever side runs last sees the other's work and the .idx
		// never outlives its segment.
		if seg.doomed.Load() {
			os.Remove(sidecarPath(dir, seg.id))
		}
	}()
}

// listSegmentIDs returns the ids of all segment files in dir, ascending.
func listSegmentIDs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// pageKey identifies one page during the recovery replay.
type pageKey struct {
	k   writeKey
	rel uint32
}

// replayState accumulates the recovery scan. Records carry store-wide
// sequence numbers, so the scan just collects the highest-seq put and
// tombstone per page and resolves liveness afterwards — file positions
// (which compaction rearranges) carry no meaning.
type replayState struct {
	puts     map[pageKey]loc    // highest-seq put per page
	putSeq   map[pageKey]uint64 // its sequence number
	delPage  map[pageKey]uint64 // highest per-page tombstone seq
	delWrite map[writeKey]uint64
	maxSeq   uint64
}

func newReplayState() *replayState {
	return &replayState{
		puts:     make(map[pageKey]loc),
		putSeq:   make(map[pageKey]uint64),
		delPage:  make(map[pageKey]uint64),
		delWrite: make(map[writeKey]uint64),
	}
}

// scanSegment feeds one segment into the replay state. A corrupt record
// in the newest segment is a torn tail — the footprint of a crash
// mid-append — and is truncated away, keeping every record before it.
// Sealed segments are fsynced before the log moves past them, so
// corruption there is bit rot, not a crash: silently dropping the
// records after it would lose healthy pages and resurrect tombstoned
// ones, so Open fails loudly instead and leaves the file for the
// operator. Called only from Open, before the store is shared.
func (s *Store) scanSegment(seg *segment, rp *replayState, last bool) error {
	buf, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	s.replayedBytes += int64(len(buf))
	off := int64(0)
	for off < int64(len(buf)) {
		rec, n, err := decodeRecord(buf[off:])
		if err != nil {
			if !last {
				return fmt.Errorf("diskstore: sealed segment %s corrupt at offset %d: %w", seg.path, off, err)
			}
			// Torn or corrupt tail: keep the valid prefix, drop the rest.
			s.truncated += int64(len(buf)) - off
			if err := seg.f.Truncate(off); err != nil {
				return fmt.Errorf("diskstore: truncate %s at %d: %w", seg.path, off, err)
			}
			break
		}
		if rec.seq > rp.maxSeq {
			rp.maxSeq = rec.seq
		}
		seg.noteRecord(rec.meta(), off, int64(n))
		k := writeKey{rec.blob, rec.write}
		switch rec.op {
		case opPut:
			pk := pageKey{k, rec.rel}
			if rec.seq > rp.putSeq[pk] {
				rp.puts[pk] = loc{seg: seg, off: off, size: int64(n)}
				rp.putSeq[pk] = rec.seq
			}
		case opDelPages:
			for _, rel := range rec.rels {
				pk := pageKey{k, rel}
				if rec.seq > rp.delPage[pk] {
					rp.delPage[pk] = rec.seq
				}
			}
		case opDelWrite:
			if rec.seq > rp.delWrite[k] {
				rp.delWrite[k] = rec.seq
			}
		}
		off += int64(n)
	}
	seg.size = off
	return nil
}

// resolveReplay turns the scanned replay state into the live index: a
// page is live iff its newest put outlives every tombstone covering it.
func (s *Store) resolveReplay(rp *replayState) {
	for pk, l := range rp.puts {
		seq := rp.putSeq[pk]
		if seq <= rp.delWrite[pk.k] || seq <= rp.delPage[pk] {
			continue
		}
		wm := s.index[pk.k]
		if wm == nil {
			wm = make(map[uint32]loc)
			s.index[pk.k] = wm
		}
		wm[pk.rel] = l
		l.seg.live += l.size
		s.pageCount++
		s.pageBytes += l.dataLen()
	}
	if rp.maxSeq >= s.nextSeq {
		s.nextSeq = rp.maxSeq + 1
	}
}

// dropPage removes one page from the index, crediting its segment's dead
// bytes. The caller holds the writer lock (or is the startup scan).
func (s *Store) dropPage(wm map[uint32]loc, k writeKey, rel uint32) bool {
	l, ok := wm[rel]
	if !ok {
		return false
	}
	delete(wm, rel)
	if len(wm) == 0 {
		delete(s.index, k)
	}
	l.seg.live -= l.size
	s.pageCount--
	s.pageBytes -= l.dataLen()
	return true
}

// PutPages appends a batch of pages, returning how many were genuinely
// new. Re-putting an existing page is idempotent (first wins), which
// makes client retries after partial failures safe — the duplicate
// bytes are never written and don't count against Capacity. Pages
// larger than MaxPageSize are rejected: their records could not be
// decoded again, so persisting one would read as a torn tail on
// recovery.
func (s *Store) PutPages(pages []Page) (int, error) {
	for _, p := range pages {
		if len(p.Data) > MaxPageSize {
			return 0, fmt.Errorf("diskstore: page (%d,%d,%d) is %d bytes, max %d",
				p.Blob, p.Write, p.Rel, len(p.Data), MaxPageSize)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	fresh := make([]Page, 0, len(pages))
	inBatch := make(map[pageKey]bool, len(pages))
	var newBytes int64
	for _, p := range pages {
		pk := pageKey{writeKey{p.Blob, p.Write}, p.Rel}
		if inBatch[pk] {
			continue
		}
		if _, exists := s.index[pk.k][p.Rel]; exists {
			continue
		}
		inBatch[pk] = true
		fresh = append(fresh, p)
		newBytes += int64(len(p.Data))
	}
	if s.opts.Capacity > 0 && s.pageBytes+newBytes > s.opts.Capacity {
		return 0, fmt.Errorf("%w: %d live + %d new > %d",
			ErrCapacity, s.pageBytes, newBytes, s.opts.Capacity)
	}
	for _, p := range fresh {
		seq := s.takeSeq()
		buf := appendPutRecord(nil, seq, p.Blob, p.Write, p.Rel, p.Data)
		l, err := s.appendLocked(buf, recMeta{op: opPut, seq: seq, blob: p.Blob, write: p.Write, rel: p.Rel})
		if err != nil {
			return 0, err
		}
		k := writeKey{p.Blob, p.Write}
		wm := s.index[k]
		if wm == nil {
			wm = make(map[uint32]loc)
			s.index[k] = wm
		}
		wm[p.Rel] = l
		l.seg.live += l.size
		s.pageCount++
		s.pageBytes += int64(len(p.Data))
	}
	if s.opts.Sync && s.active != nil && len(fresh) > 0 {
		if err := s.active.f.Sync(); err != nil {
			return len(fresh), err
		}
	}
	return len(fresh), nil
}

// Page is one page upload unit.
type Page struct {
	Blob  uint64
	Write uint64
	Rel   uint32
	Data  []byte
}

// takeSeq allocates the next record sequence number. Caller holds mu.
func (s *Store) takeSeq() uint64 {
	seq := s.nextSeq
	s.nextSeq++
	return seq
}

// appendLocked writes one encoded record to the active segment, rolling
// to a fresh segment first if the active one is full, and feeds the
// record into the segment's sidecar accumulator. Caller holds mu.
func (s *Store) appendLocked(buf []byte, m recMeta) (loc, error) {
	if s.active == nil || s.active.size >= s.opts.SegmentSize {
		if err := s.rollLocked(); err != nil {
			return loc{}, err
		}
	}
	seg := s.active
	off := seg.size
	if _, err := seg.f.WriteAt(buf, off); err != nil {
		return loc{}, fmt.Errorf("diskstore: append to %s: %w", seg.path, err)
	}
	seg.size += int64(len(buf))
	seg.noteRecord(m, off, int64(len(buf)))
	return loc{seg: seg, off: off, size: int64(len(buf))}, nil
}

// rollLocked seals the active segment (fsync, then index sidecar) and
// opens a fresh one. The sidecar is written only after the sync, so its
// entries never describe records the segment file could still lose; if
// the process dies between the two, the missing sidecar just means one
// full segment replay on the next open.
func (s *Store) rollLocked() error {
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil {
			return err
		}
		s.writeSidecarFor(s.active)
	}
	seg, err := openSegment(s.opts.Dir, s.nextID)
	if err != nil {
		return err
	}
	s.nextID++
	s.segs[seg.id] = seg
	s.active = seg
	return nil
}

// GetPage returns one page's bytes, or false if absent. The returned
// slice is freshly read from disk and owned by the caller. A record whose
// checksum no longer matches (disk corruption) is reported as absent —
// bad bytes are never served.
func (s *Store) GetPage(blob, write uint64, rel uint32) ([]byte, bool) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false
	}
	l, ok := s.index[writeKey{blob, write}][rel]
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	l.seg.acquire()
	s.mu.RUnlock()
	defer l.seg.release()

	buf := make([]byte, l.size)
	if _, err := l.seg.f.ReadAt(buf, l.off); err != nil {
		return nil, false
	}
	rec, _, err := decodeRecord(buf)
	if err != nil || rec.op != opPut {
		return nil, false
	}
	return rec.data, true
}

// DeletePages removes specific pages of a write, returning how many were
// present. The deletion is durable: a tombstone record is appended so
// recovery replays it.
func (s *Store) DeletePages(blob, write uint64, rels []uint32) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	k := writeKey{blob, write}
	wm := s.index[k]
	present := rels[:0:0]
	for _, rel := range rels {
		if _, ok := wm[rel]; ok {
			present = append(present, rel)
		}
	}
	if len(present) == 0 {
		return 0, nil
	}
	seq := s.takeSeq()
	if _, err := s.appendLocked(appendDelPagesRecord(nil, seq, blob, write, present),
		recMeta{op: opDelPages, seq: seq, blob: blob, write: write, rels: present}); err != nil {
		return 0, err
	}
	for _, rel := range present {
		s.dropPage(wm, k, rel)
	}
	return len(present), nil
}

// DeleteWrite removes every page of (blob, write), returning how many
// pages were freed.
func (s *Store) DeleteWrite(blob, write uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	k := writeKey{blob, write}
	wm := s.index[k]
	if len(wm) == 0 {
		return 0, nil
	}
	seq := s.takeSeq()
	if _, err := s.appendLocked(appendDelWriteRecord(nil, seq, blob, write),
		recMeta{op: opDelWrite, seq: seq, blob: blob, write: write}); err != nil {
		return 0, err
	}
	n := 0
	for rel := range wm {
		if s.dropPage(wm, k, rel) {
			n++
		}
	}
	return n, nil
}

// ForEachPage visits every live page. The data slice is a private copy.
// Iteration order is unspecified. Pages put or deleted concurrently may
// or may not be visited.
func (s *Store) ForEachPage(fn func(blob, write uint64, rel uint32, data []byte)) {
	type entry struct {
		k   writeKey
		rel uint32
	}
	s.mu.RLock()
	entries := make([]entry, 0, s.pageCount)
	for k, wm := range s.index {
		for rel := range wm {
			entries = append(entries, entry{k, rel})
		}
	}
	s.mu.RUnlock()
	for _, e := range entries {
		if data, ok := s.GetPage(e.k.blob, e.k.write, e.rel); ok {
			fn(e.k.blob, e.k.write, e.rel, data)
		}
	}
}

// MightContain is the bloom-backed negative-lookup primitive: false
// means the store definitely holds no live page under the key, true
// means it may. True is conservative twice over — bloom false
// positives, and deleted pages whose put records a bloom-covered
// segment still physically holds (they keep answering true until
// compaction drops them; segments without a filter are answered from
// the exact index instead). It lets a caller — a replica router, a
// future remote backend — rule this store out without a GetPage round
// trip or disk touch.
func (s *Store) MightContain(blob, write uint64, rel uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	unfiltered := false
	for _, seg := range s.segs {
		if seg.bloom == nil {
			if seg.size > 0 {
				unfiltered = true
			}
			continue
		}
		if seg.bloom.MightContain(blob, write, rel) {
			return true
		}
	}
	if unfiltered {
		_, ok := s.index[writeKey{blob, write}][rel]
		return ok
	}
	return false
}

// BloomDigest exports the store's holdings summary for the repair
// protocol (docs/replication.md): one bloom filter per segment —
// verbatim the filters the index sidecars maintain for sealed segments,
// and a filter built from the active segment's in-memory sidecar
// accumulator. The union is conservative the same way MightContain is:
// a key answering false on every filter is definitely not held live; a
// key answering true may be live, dead-but-unreclaimed, or a false
// positive. The returned filters are shared immutable snapshots; callers
// must not mutate them.
func (s *Store) BloomDigest() []*wire.Bloom {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil
	}
	var out []*wire.Bloom
	covered := true
	for _, seg := range s.segs {
		switch {
		case seg.bloom != nil:
			out = append(out, seg.bloom)
		case seg.idx != nil:
			b := wire.NewBloom(len(seg.idx.puts))
			for _, p := range seg.idx.puts {
				b.Add(p.blob, p.write, p.rel)
			}
			out = append(out, b)
		case seg.size > 0:
			covered = false
		}
	}
	if !covered {
		// A non-empty segment with neither filter nor accumulator has no
		// per-segment summary; cover the whole live index instead so the
		// digest never yields a false negative.
		b := wire.NewBloom(int(s.pageCount))
		for k, wm := range s.index {
			for rel := range wm {
				b.Add(k.blob, k.write, rel)
			}
		}
		out = append(out, b)
	}
	return out
}

// ForEachWrite visits every (blob, write) holding at least one live page
// together with its live page count. Unlike ForEachPage this touches
// only the in-memory index — no segment data is read — so it is cheap
// enough for the repair protocol's holdings enumeration. Iteration order
// is unspecified.
func (s *Store) ForEachWrite(fn func(blob, write uint64, pages int)) {
	type entry struct {
		blob, write uint64
		pages       int
	}
	s.mu.RLock()
	entries := make([]entry, 0, len(s.index))
	for k, wm := range s.index {
		entries = append(entries, entry{k.blob, k.write, len(wm)})
	}
	s.mu.RUnlock()
	for _, e := range entries {
		fn(e.blob, e.write, e.pages)
	}
}

// Stats returns a usage snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Pages:            s.pageCount,
		PageBytes:        s.pageBytes,
		Segments:         int64(len(s.segs)),
		Compactions:      s.compactions,
		TruncatedBytes:   s.truncated,
		ReplayedBytes:    s.replayedBytes,
		SidecarBytes:     s.sidecarBytes,
		SegmentsReplayed: s.segsReplayed,
		SidecarsLoaded:   s.sidecarsLoaded,
		ThrottleWait:     time.Duration(s.throttleWait.Load()),
	}
	for _, seg := range s.segs {
		st.DiskBytes += seg.size
		st.LiveBytes += seg.live
	}
	return st
}

// Close stops the compactor, fsyncs the active segment and closes every
// segment file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	var err error
	if s.active != nil {
		err = s.active.f.Sync()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	s.closeAll()
	s.mu.Unlock()
	return err
}

// closeAll closes every segment file. Caller holds mu (or owns the store
// exclusively during a failed Open).
func (s *Store) closeAll() {
	for _, seg := range s.segs {
		seg.retire(false)
	}
	s.segs = map[uint64]*segment{}
	s.active = nil
}
