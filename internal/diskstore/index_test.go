package diskstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blob/internal/wire"
)

// fillSealed writes enough pages (with some cross-segment deletes) to
// leave the store with several sealed segments, and returns the expected
// page map.
func fillSealed(t *testing.T, s *Store) map[string][]byte {
	t.Helper()
	for w := uint64(1); w <= 6; w++ {
		for rel := uint32(0); rel < 6; rel++ {
			mustPut(t, s, 7, w, rel, bytes.Repeat([]byte{byte(w), byte(rel)}, 30))
		}
	}
	// Tombstones land in later segments than the puts they kill, so the
	// sidecar replay-state merge across segments is exercised.
	if _, err := s.DeleteWrite(7, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeletePages(7, 3, []uint32{1, 4}); err != nil {
		t.Fatal(err)
	}
	return pageMap(s)
}

// pageMap snapshots every live page.
func pageMap(s *Store) map[string][]byte {
	m := map[string][]byte{}
	s.ForEachPage(func(blob, write uint64, rel uint32, data []byte) {
		m[fmt.Sprintf("%d/%d/%d", blob, write, rel)] = data
	})
	return m
}

func samePages(t *testing.T, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d pages, want %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || !bytes.Equal(g, w) {
			t.Fatalf("page %s: got %q (present %v), want %q", k, g, ok, w)
		}
	}
}

// TestSidecarRestartReadsIndexNotData is the acceptance check for the
// sidecar design: reopening a store with N sealed segments must read the
// small .idx files plus only the tail segment's data — not the full disk
// footprint — and serve an identical page set.
func TestSidecarRestartReadsIndexNotData(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 512})
	want := fillSealed(t, s)
	stBefore := s.Stats()
	if stBefore.Segments < 4 {
		t.Fatalf("want several segments, got %d", stBefore.Segments)
	}
	s.Close()

	r := openTest(t, dir, Options{SegmentSize: 512})
	st := r.Stats()
	if st.SidecarsLoaded != stBefore.Segments-1 {
		t.Errorf("sidecars loaded = %d, want %d (every sealed segment)", st.SidecarsLoaded, stBefore.Segments-1)
	}
	if st.SegmentsReplayed != 1 {
		t.Errorf("segments replayed = %d, want 1 (the active tail only)", st.SegmentsReplayed)
	}
	if st.SidecarBytes == 0 {
		t.Error("no sidecar bytes counted")
	}
	// The replayed bytes must be the tail segment, not the whole log.
	if st.ReplayedBytes >= stBefore.DiskBytes/2 {
		t.Errorf("replayed %d of %d disk bytes; sidecars not used", st.ReplayedBytes, stBefore.DiskBytes)
	}
	samePages(t, pageMap(r), want)
}

// TestSidecarStalenessFallsBackToReplay corrupts, truncates or deletes
// one sealed segment's sidecar and asserts recovery degrades to a full
// replay of exactly that segment, with an identical resulting index.
func TestSidecarStalenessFallsBackToReplay(t *testing.T) {
	for _, tc := range []struct {
		name   string
		break_ func(t *testing.T, path string)
	}{
		{"corrupt", func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)/3] ^= 0x20
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{SegmentSize: 512})
			want := fillSealed(t, s)
			sealed := s.Stats().Segments - 1
			s.Close()

			ids, err := listSegmentIDs(dir)
			if err != nil || len(ids) < 3 {
				t.Fatalf("segment ids: %v (%v)", ids, err)
			}
			victim := ids[1] // a sealed, non-tail segment
			tc.break_(t, sidecarPath(dir, victim))

			r := openTest(t, dir, Options{SegmentSize: 512})
			st := r.Stats()
			if st.SegmentsReplayed != 2 {
				t.Errorf("segments replayed = %d, want 2 (victim + tail)", st.SegmentsReplayed)
			}
			if st.SidecarsLoaded != sealed-1 {
				t.Errorf("sidecars loaded = %d, want %d", st.SidecarsLoaded, sealed-1)
			}
			samePages(t, pageMap(r), want)
			r.Close()

			// The fallback replay rewrites the sidecar: the next open is
			// back to loading every sealed segment from its index.
			r2 := openTest(t, dir, Options{SegmentSize: 512})
			st2 := r2.Stats()
			if st2.SidecarsLoaded != sealed || st2.SegmentsReplayed != 1 {
				t.Errorf("after rewrite: loaded %d replayed %d, want %d and 1",
					st2.SidecarsLoaded, st2.SegmentsReplayed, sealed)
			}
			samePages(t, pageMap(r2), want)
		})
	}
}

// TestSidecarStaleOnSizeMismatch pins the staleness rule: a sidecar
// describing fewer bytes than the segment file holds (the segment was
// appended to after the sidecar was written, e.g. under a larger
// SegmentSize) must be rejected in favour of a replay.
func TestSidecarStaleOnSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 128})
	mustPut(t, s, 1, 1, 0, bytes.Repeat([]byte("a"), 120)) // fills seg1
	mustPut(t, s, 1, 2, 0, []byte("tail"))
	s.Close()

	// Grow the segment size so seg1's sidecar goes stale once seg1 gains
	// another record. Reopen appends into... seg2 (the tail); so instead
	// append a record to seg1 by hand — the sidecar no longer matches.
	extra := appendPutRecord(nil, 99, 1, 5, 0, []byte("late"))
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTest(t, dir, Options{SegmentSize: 128})
	if d, ok := r.GetPage(1, 5, 0); !ok || string(d) != "late" {
		t.Errorf("appended record invisible: stale sidecar was trusted (%q, %v)", d, ok)
	}
	if st := r.Stats(); st.SidecarsLoaded != 0 || st.SegmentsReplayed != 2 {
		t.Errorf("loaded %d replayed %d, want 0 and 2", st.SidecarsLoaded, st.SegmentsReplayed)
	}
}

// TestZeroLengthSealedSegmentRecoveredAsEmpty pins the fix for the
// zero-byte edge: a sealed segment file with no records (e.g. created by
// a roll that crashed before the first append, then orphaned by later
// segments) must recover as empty — Open deletes the file rather than
// failing, because keeping it would pin the oldest-segment id forever
// and block the compactor's tombstone dropping.
func TestZeroLengthSealedSegmentRecoveredAsEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, 2),
		appendPutRecord(nil, 1, 1, 1, 0, []byte("live")), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if d, ok := s.GetPage(1, 1, 0); !ok || string(d) != "live" {
		t.Fatalf("page lost next to empty segment: %q, %v", d, ok)
	}
	if st := s.Stats(); st.Segments != 1 || st.Pages != 1 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("empty sealed segment not deleted at open")
	}
	// New appends must not collide with the deleted segment's id.
	mustPut(t, s, 1, 2, 0, []byte("after"))
	s.Close()

	r := openTest(t, dir, Options{})
	if d, ok := r.GetPage(1, 1, 0); !ok || string(d) != "live" {
		t.Fatalf("page lost after reopen: %q, %v", d, ok)
	}
	if d, ok := r.GetPage(1, 2, 0); !ok || string(d) != "after" {
		t.Fatalf("post-recovery append lost: %q, %v", d, ok)
	}
}

// TestCompactionRemovesSidecar asserts a compacted-away segment's .idx
// file is unlinked with its .log, and a restart over the compacted
// directory reaches the identical page set.
func TestCompactionRemovesSidecar(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 512})
	want := fillSealed(t, s)
	for {
		again, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	s.Close()

	logs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	idxs, _ := filepath.Glob(filepath.Join(dir, "*"+idxSuffix))
	for _, idx := range idxs {
		log := filepath.Join(dir, filepath.Base(idx[:len(idx)-len(idxSuffix)])+segSuffix)
		if _, err := os.Stat(log); err != nil {
			t.Errorf("orphan sidecar %s survives its segment", idx)
		}
	}
	if len(idxs) > len(logs) {
		t.Errorf("%d sidecars for %d segments", len(idxs), len(logs))
	}
	r := openTest(t, dir, Options{SegmentSize: 512})
	samePages(t, pageMap(r), want)
}

// TestOrphanSidecarRemovedAtOpen pins the id-reuse guard: an .idx file
// whose segment is gone is deleted by Open, so it can never be paired
// with a future segment that reuses the id.
func TestOrphanSidecarRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	sc := &sidecar{id: 9, dataSize: 0, bloom: wire.NewBloom(0)}
	if err := writeSidecarFile(dir, sc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sidecarPath(dir, 3)+".tmp", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	s.Close()
	if _, err := os.Stat(sidecarPath(dir, 9)); !os.IsNotExist(err) {
		t.Error("orphan sidecar survived Open")
	}
	if _, err := os.Stat(sidecarPath(dir, 3) + ".tmp"); !os.IsNotExist(err) {
		t.Error("torn sidecar temp file survived Open")
	}
}

// TestSidecarRoundTrip checks the codec against itself, including the
// corrupt-rejection paths the staleness machinery relies on.
func TestSidecarRoundTrip(t *testing.T) {
	sc := &sidecar{
		id:       4,
		dataSize: 4096,
		maxSeq:   77,
		puts: []sidecarPut{
			{blob: 1, write: 2, rel: 3, seq: 10, off: 0, size: 100},
			{blob: 1, write: 2, rel: 4, seq: 11, off: 100, size: 200},
		},
		delPages:  []sidecarDelPages{{blob: 1, write: 9, rel: 0, seq: 12}},
		delWrites: []sidecarDelWrite{{blob: 2, write: 1, seq: 13}},
		bloom:     wire.NewBloom(2),
	}
	sc.bloom.Add(1, 2, 3)
	sc.bloom.Add(1, 2, 4)
	buf := sc.encode()
	got, err := decodeSidecar(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.id != sc.id || got.dataSize != sc.dataSize || got.maxSeq != sc.maxSeq ||
		len(got.puts) != 2 || got.puts[1] != sc.puts[1] ||
		len(got.delPages) != 1 || got.delPages[0] != sc.delPages[0] ||
		len(got.delWrites) != 1 || got.delWrites[0] != sc.delWrites[0] {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !got.bloom.MightContain(1, 2, 3) {
		t.Error("bloom lost an entry in the round trip")
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b[5] ^= 1; return b },        // header bit
		func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, // checksum bit
		func(b []byte) []byte { return b[:len(b)-3] },        // torn tail
		func(b []byte) []byte { return b[:20] },              // short file
	} {
		if _, err := decodeSidecar(mutate(bytes.Clone(buf))); err == nil {
			t.Error("corrupt sidecar accepted")
		}
	}

	// A checksum-valid file whose put entry overflows off+size must be
	// rejected, not wrapped past the range check into a giant GetPage
	// allocation.
	evil := &sidecar{
		id: 4, dataSize: 4096,
		puts:  []sidecarPut{{blob: 1, write: 2, rel: 3, seq: 10, off: 1 << 62, size: 1 << 62}},
		bloom: wire.NewBloom(1),
	}
	if _, err := decodeSidecar(evil.encode()); err == nil {
		t.Error("overflowing put entry accepted")
	}
}

// TestBloomFilter pins no-false-negatives and a sane false-positive rate
// at the configured 10 bits/entry.
func TestBloomFilter(t *testing.T) {
	const n = 2000
	b := wire.NewBloom(n)
	for i := 0; i < n; i++ {
		b.Add(uint64(i), uint64(i*31), uint32(i%7))
	}
	for i := 0; i < n; i++ {
		if !b.MightContain(uint64(i), uint64(i*31), uint32(i%7)) {
			t.Fatalf("false negative for entry %d", i)
		}
	}
	fp := 0
	for i := 0; i < n; i++ {
		if b.MightContain(uint64(i+1000000), uint64(i), uint32(i%5)) {
			fp++
		}
	}
	if rate := float64(fp) / n; rate > 0.03 {
		t.Errorf("false positive rate %.3f, want < 0.03", rate)
	}
}

// TestMightContain exercises the store-level negative lookup across
// bloom-covered sealed segments and the bloom-less active tail.
func TestMightContain(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentSize: 256})
	for w := uint64(1); w <= 8; w++ {
		mustPut(t, s, 3, w, 0, bytes.Repeat([]byte{byte(w)}, 60))
	}
	for w := uint64(1); w <= 8; w++ {
		if !s.MightContain(3, w, 0) {
			t.Errorf("false negative for write %d", w)
		}
	}
	absent := 0
	for w := uint64(100); w < 300; w++ {
		if !s.MightContain(3, w, 0) {
			absent++
		}
	}
	if absent < 190 {
		t.Errorf("only %d/200 absent pages ruled out", absent)
	}
}

// TestCompactThrottleCharges asserts a throttled compaction still
// completes correctly and accounts its sleeps. The bucket is reconfigured
// to a tiny burst with a fast refill so waits are recorded without
// slowing the test down. (The bucket itself is unit-tested in
// internal/throttle.)
func TestCompactThrottleCharges(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentSize: 512, CompactRateBytes: 64 << 20})
	s.compactTB.SetBurst(1)
	want := fillSealed(t, s)
	for {
		again, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !again {
			break
		}
	}
	if s.Stats().ThrottleWait <= 0 {
		t.Error("throttled compaction recorded no wait")
	}
	samePages(t, pageMap(s), want)
}
