// Record encoding for segment files.
//
// A segment is a flat sequence of length-prefixed, checksummed records:
//
//	u32  bodyLen   (little endian)
//	u64  checksum  (FNV-1a of body)
//	body
//
// The body starts with a one-byte opcode and the record's store-wide
// sequence number, followed by the write identity:
//
//	opPut:        op | u64 seq | u64 blob | u64 write | u32 rel | page bytes
//	opDelPages:   op | u64 seq | u64 blob | u64 write | u32 n | n × u32 rel
//	opDelWrite:   op | u64 seq | u64 blob | u64 write
//
// The sequence number totally orders records across segments: recovery
// resolves each page by comparing sequence numbers, not file positions,
// so compaction may freely relocate records (a rewritten tombstone or
// put keeps its original seq) without replay-order hazards.
//
// Records are immutable once written; the only in-place file mutation the
// store ever performs is truncating a torn tail during recovery. Any
// record whose length prefix overruns the file, whose checksum does not
// match, or whose body fails structural validation marks the end of the
// usable prefix of its segment — everything from its offset on is
// discarded, never served.
//
// (This file comment is deliberately detached from the package clause —
// the package's doc comment lives in diskstore.go.)

package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"blob/internal/wire"
)

const (
	opPut      = 1
	opDelPages = 2
	opDelWrite = 3

	recHeaderSize = 12                // u32 len + u64 checksum
	putBodyPrefix = 1 + 8 + 8 + 8 + 4 // op, seq, blob, write, rel
	delPrefix     = 1 + 8 + 8 + 8     // op, seq, blob, write

	// maxBodyLen bounds a single record body. It must comfortably exceed
	// any realistic page size while rejecting corrupt length prefixes
	// before they trigger huge allocations.
	maxBodyLen = 1 << 28

	// MaxPageSize is the largest page payload one record can carry;
	// PutPages rejects bigger pages up front, since a record that cannot
	// be decoded again would read as a torn tail on recovery.
	MaxPageSize = maxBodyLen - putBodyPrefix
)

// ErrCorrupt marks a structurally invalid or checksum-failing record.
var ErrCorrupt = errors.New("diskstore: corrupt record")

// record is a decoded segment record.
type record struct {
	op    byte
	seq   uint64
	blob  uint64
	write uint64
	rel   uint32   // opPut only
	data  []byte   // opPut only; aliases the scan buffer
	rels  []uint32 // opDelPages only
}

// recMeta is the append-side identity of a record: what the writer knew
// before encoding it. It travels alongside the encoded bytes so the
// sidecar accumulator never has to decode its own output.
type recMeta struct {
	op    byte
	seq   uint64
	blob  uint64
	write uint64
	rel   uint32   // opPut only
	rels  []uint32 // opDelPages only
}

func (rec record) meta() recMeta {
	return recMeta{op: rec.op, seq: rec.seq, blob: rec.blob, write: rec.write, rel: rec.rel, rels: rec.rels}
}

// appendPutRecord appends an encoded opPut record for one page to dst.
func appendPutRecord(dst []byte, seq, blob, write uint64, rel uint32, data []byte) []byte {
	bodyLen := putBodyPrefix + len(data)
	dst = appendRecordHeaderSpace(dst, bodyLen)
	body := dst[len(dst)-bodyLen:]
	body[0] = opPut
	binary.LittleEndian.PutUint64(body[1:], seq)
	binary.LittleEndian.PutUint64(body[9:], blob)
	binary.LittleEndian.PutUint64(body[17:], write)
	binary.LittleEndian.PutUint32(body[25:], rel)
	copy(body[putBodyPrefix:], data)
	fillChecksum(dst, bodyLen)
	return dst
}

// appendDelPagesRecord appends an encoded opDelPages tombstone to dst.
func appendDelPagesRecord(dst []byte, seq, blob, write uint64, rels []uint32) []byte {
	bodyLen := delPrefix + 4 + 4*len(rels)
	dst = appendRecordHeaderSpace(dst, bodyLen)
	body := dst[len(dst)-bodyLen:]
	body[0] = opDelPages
	binary.LittleEndian.PutUint64(body[1:], seq)
	binary.LittleEndian.PutUint64(body[9:], blob)
	binary.LittleEndian.PutUint64(body[17:], write)
	binary.LittleEndian.PutUint32(body[25:], uint32(len(rels)))
	for i, r := range rels {
		binary.LittleEndian.PutUint32(body[delPrefix+4+4*i:], r)
	}
	fillChecksum(dst, bodyLen)
	return dst
}

// appendDelWriteRecord appends an encoded opDelWrite tombstone to dst.
func appendDelWriteRecord(dst []byte, seq, blob, write uint64) []byte {
	dst = appendRecordHeaderSpace(dst, delPrefix)
	body := dst[len(dst)-delPrefix:]
	body[0] = opDelWrite
	binary.LittleEndian.PutUint64(body[1:], seq)
	binary.LittleEndian.PutUint64(body[9:], blob)
	binary.LittleEndian.PutUint64(body[17:], write)
	fillChecksum(dst, delPrefix)
	return dst
}

// appendRecordHeaderSpace grows dst by one record of bodyLen, writing the
// length prefix and zeroing the checksum slot; the caller fills the body
// then calls fillChecksum.
func appendRecordHeaderSpace(dst []byte, bodyLen int) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, recHeaderSize+bodyLen)...)
	binary.LittleEndian.PutUint32(dst[off:], uint32(bodyLen))
	return dst
}

// fillChecksum computes the checksum over the trailing bodyLen bytes of a
// just-appended record and stores it in the record's checksum slot.
func fillChecksum(dst []byte, bodyLen int) {
	body := dst[len(dst)-bodyLen:]
	binary.LittleEndian.PutUint64(dst[len(dst)-bodyLen-8:], wire.Checksum64(body))
}

// decodeRecord parses the record starting at buf. It returns the decoded
// record and the total encoded size. A short buffer, checksum mismatch or
// malformed body returns ErrCorrupt: callers treat the record's offset as
// the end of the segment's usable prefix.
func decodeRecord(buf []byte) (record, int, error) {
	var rec record
	if len(buf) < recHeaderSize {
		return rec, 0, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf))
	if bodyLen <= 0 || bodyLen > maxBodyLen {
		return rec, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, bodyLen)
	}
	if len(buf) < recHeaderSize+bodyLen {
		return rec, 0, fmt.Errorf("%w: truncated body (%d of %d bytes)",
			ErrCorrupt, len(buf)-recHeaderSize, bodyLen)
	}
	sum := binary.LittleEndian.Uint64(buf[4:])
	body := buf[recHeaderSize : recHeaderSize+bodyLen]
	if wire.Checksum64(body) != sum {
		return rec, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec.op = body[0]
	switch rec.op {
	case opPut:
		if bodyLen < putBodyPrefix {
			return rec, 0, fmt.Errorf("%w: put body %d bytes", ErrCorrupt, bodyLen)
		}
		rec.seq = binary.LittleEndian.Uint64(body[1:])
		rec.blob = binary.LittleEndian.Uint64(body[9:])
		rec.write = binary.LittleEndian.Uint64(body[17:])
		rec.rel = binary.LittleEndian.Uint32(body[25:])
		rec.data = body[putBodyPrefix:]
	case opDelPages:
		if bodyLen < delPrefix+4 {
			return rec, 0, fmt.Errorf("%w: del-pages body %d bytes", ErrCorrupt, bodyLen)
		}
		rec.seq = binary.LittleEndian.Uint64(body[1:])
		rec.blob = binary.LittleEndian.Uint64(body[9:])
		rec.write = binary.LittleEndian.Uint64(body[17:])
		n := int(binary.LittleEndian.Uint32(body[25:]))
		if n < 0 || delPrefix+4+4*n != bodyLen {
			return rec, 0, fmt.Errorf("%w: del-pages count %d for body %d", ErrCorrupt, n, bodyLen)
		}
		rec.rels = make([]uint32, n)
		for i := range rec.rels {
			rec.rels[i] = binary.LittleEndian.Uint32(body[delPrefix+4+4*i:])
		}
	case opDelWrite:
		if bodyLen != delPrefix {
			return rec, 0, fmt.Errorf("%w: del-write body %d bytes", ErrCorrupt, bodyLen)
		}
		rec.seq = binary.LittleEndian.Uint64(body[1:])
		rec.blob = binary.LittleEndian.Uint64(body[9:])
		rec.write = binary.LittleEndian.Uint64(body[17:])
	default:
		return rec, 0, fmt.Errorf("%w: opcode %d", ErrCorrupt, rec.op)
	}
	return rec, recHeaderSize + bodyLen, nil
}
