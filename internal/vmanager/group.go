package vmanager

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/backoff"
	"blob/internal/dht"
	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/rpc"
	"blob/internal/wire"
)

// The version space is sharded by blob id over the same consistent-hash
// ring the data plane uses: shard i is ring node i+1, and a blob lives
// on whichever shard the ring's Primary places its hashed id. Every
// client computes the same placement locally, so routing needs no
// directory — only the NotLeader redirect dance within the owning
// shard (docs/vmanager-group.md §4).

var shardRings sync.Map // int (shard count) -> *dht.Ring

func ringFor(nshards int) *dht.Ring {
	if v, ok := shardRings.Load(nshards); ok {
		return v.(*dht.Ring)
	}
	nodes := make([]dht.NodeInfo, nshards)
	for i := range nodes {
		nodes[i] = dht.NodeInfo{ID: uint64(i + 1)}
	}
	ring := dht.NewRing(nodes)
	actual, _ := shardRings.LoadOrStore(nshards, ring)
	return actual.(*dht.Ring)
}

// ShardOf maps a blob id to its owning shard in an nshards-way group.
func ShardOf(nshards int, blob uint64) int {
	if nshards <= 1 {
		return 0
	}
	// Mix first: blob ids are small and sequential, ring points are
	// uniform hashes — raw ids would all land on one shard.
	n, ok := ringFor(nshards).Primary(wire.Mix64(blob))
	if !ok {
		return 0
	}
	return int(n.ID - 1)
}

// ParseGroupAddrs parses the flag syntax for a vmanager group:
// semicolon-separated shards, comma-separated replicas within a shard
// ("a:1,b:1;c:1,d:1"). A single plain address parses as one unreplicated
// shard, keeping old invocations working.
func ParseGroupAddrs(s string) ([][]string, error) {
	var shards [][]string
	for _, shard := range strings.Split(s, ";") {
		var reps []string
		for _, addr := range strings.Split(shard, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("vmanager: empty replica entry in group address %q", s)
			}
			reps = append(reps, addr)
		}
		shards = append(shards, reps)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("vmanager: empty group address %q", s)
	}
	return shards, nil
}

// GroupClient routes vmanager calls across a sharded, replicated
// group. Per-blob calls go to the blob's owning shard; within a shard
// the client remembers the last known leader and follows NotLeader
// redirects, falling back to a scan of the replicas (with backoff) when
// the shard is mid-handoff.
type GroupClient struct {
	pool   *rpc.Pool
	shards [][]string
	leader []atomic.Int32 // last known leader index per shard
	rr     atomic.Uint64  // round-robin cursor for CreateBlob
	// MaxAttempts bounds the per-call retry loop (default 4 full
	// passes over the shard's replicas).
	maxAttempts int
}

// NewGroupClient builds a client for the given shard/replica address
// matrix. A [][]string{{addr}} group degenerates to the single-manager
// behaviour of Client.
func NewGroupClient(pool *rpc.Pool, shards [][]string) *GroupClient {
	g := &GroupClient{pool: pool, shards: shards, leader: make([]atomic.Int32, len(shards))}
	g.maxAttempts = 4
	for i := range g.shards {
		if len(g.shards[i]) == 0 {
			panic("vmanager: shard with no replicas")
		}
	}
	return g
}

// Shards returns the group's address matrix.
func (g *GroupClient) Shards() [][]string { return g.shards }

// shardOf maps a blob to its shard index.
func (g *GroupClient) shardOf(blob uint64) int { return ShardOf(len(g.shards), blob) }

// groupBackoff paces full-pass retries while a shard is mid-election:
// jittered exponential delays from the shared policy (see
// internal/backoff), replacing the jitter math this file used to
// hand-roll.
var groupBackoff = backoff.Policy{Base: 4 * time.Millisecond, Max: 100 * time.Millisecond}

// call invokes method on the shard's leader, following NotLeader
// redirects and retrying transient unavailability (handoffs, quorum
// loss, dead replicas) on the shard's other replicas with backoff.
func (g *GroupClient) call(ctx context.Context, shard int, method uint32, body []byte) ([]byte, error) {
	reps := g.shards[shard]
	idx := int(g.leader[shard].Load())
	if idx < 0 || idx >= len(reps) {
		idx = 0
	}
	var lastErr error
	pass := 0
	for attempt := 0; attempt < g.maxAttempts*len(reps); attempt++ {
		resp, err := g.pool.Call(ctx, reps[idx], method, body)
		switch {
		case err == nil:
			g.leader[shard].Store(int32(idx))
			return resp, nil
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			if hint, notLeader := ParseNotLeader(err); notLeader {
				lastErr = err
				if hint >= 0 && hint < len(reps) && hint != idx {
					// Redirect straight to the hinted leader.
					idx = hint
					continue
				}
				// Stale hint: scan.
			} else if rpc.IsServerError(err) && !IsUnavailable(err) {
				// A genuine application error from the leader.
				return nil, err
			} else {
				lastErr = err
			}
		}
		idx = (idx + 1) % len(reps)
		if (attempt+1)%len(reps) == 0 {
			// Completed a full pass without a leader: back off so an
			// election can finish.
			if err := groupBackoff.Sleep(ctx, pass); err != nil {
				return nil, err
			}
			pass++
		}
	}
	return nil, fmt.Errorf("vmanager: shard %d unreachable after retries: %w", shard, lastErr)
}

// CreateBlob allocates a blob on some shard of the group (round-robin
// spread); the chosen shard picks an id the ring maps back to it, so
// all later calls route correctly.
func (g *GroupClient) CreateBlob(ctx context.Context, pageSize, capacityBytes uint64, red erasure.Redundancy) (uint64, error) {
	shard := int(g.rr.Add(1)-1) % len(g.shards)
	w := newCreateReq(pageSize, capacityBytes, red)
	resp, err := g.call(ctx, shard, MCreate, w)
	if err != nil {
		return 0, err
	}
	return decodeUint64(resp)
}

// Info fetches blob geometry and published state.
func (g *GroupClient) Info(ctx context.Context, blob uint64) (BlobInfo, error) {
	resp, err := g.call(ctx, g.shardOf(blob), MInfo, encodeUint64(blob))
	if err != nil {
		return BlobInfo{}, err
	}
	return decodeBlobInfo(resp)
}

// AssignVersion requests a version for a write from the blob's shard.
func (g *GroupClient) AssignVersion(ctx context.Context, blob, writeID, offset, length uint64, isAppend bool) (Assignment, error) {
	w := newAssignReq(blob, writeID, offset, length, isAppend)
	resp, err := g.call(ctx, g.shardOf(blob), MAssign, w)
	if err != nil {
		return Assignment{}, err
	}
	return DecodeAssignment(resp)
}

// Commit reports completion of a write; with block it waits for
// publication.
func (g *GroupClient) Commit(ctx context.Context, blob uint64, v meta.Version, block bool) (meta.Version, error) {
	resp, err := g.call(ctx, g.shardOf(blob), MCommit, newCommitReq(blob, v, block))
	if err != nil {
		return 0, err
	}
	return decodeUint64(resp)
}

// Abort withdraws an assigned version.
func (g *GroupClient) Abort(ctx context.Context, blob uint64, v meta.Version) error {
	_, err := g.call(ctx, g.shardOf(blob), MAbort, newAbortReq(blob, v))
	return err
}

// Latest returns the newest published version and its byte size.
func (g *GroupClient) Latest(ctx context.Context, blob uint64) (meta.Version, uint64, error) {
	resp, err := g.call(ctx, g.shardOf(blob), MLatest, encodeUint64(blob))
	if err != nil {
		return 0, 0, err
	}
	return decodeUint64Pair(resp)
}

// VersionInfo reports publication state and size of a version.
func (g *GroupClient) VersionInfo(ctx context.Context, blob uint64, v meta.Version) (published bool, size uint64, err error) {
	resp, err := g.call(ctx, g.shardOf(blob), MVersionInfo, newAbortReq(blob, v))
	if err != nil {
		return false, 0, err
	}
	return decodeBoolUint64(resp)
}

// History fetches write records for versions in (from, to].
func (g *GroupClient) History(ctx context.Context, blob uint64, from, to meta.Version) ([]WriteRecord, error) {
	resp, err := g.call(ctx, g.shardOf(blob), MHistory, newHistoryReq(blob, from, to))
	if err != nil {
		return nil, err
	}
	return DecodeHistory(resp)
}

// Blobs merges the blob lists of every shard — the repair agent's walk
// over the whole version plane.
func (g *GroupClient) Blobs(ctx context.Context) ([]uint64, error) {
	var all []uint64
	for shard := range g.shards {
		resp, err := g.call(ctx, shard, MBlobs, nil)
		if err != nil {
			return nil, fmt.Errorf("vmanager: blobs of shard %d: %w", shard, err)
		}
		ids, err := decodeUint64List(resp)
		if err != nil {
			return nil, err
		}
		all = append(all, ids...)
	}
	return all, nil
}

// --- request/response codecs shared with Client ---

func encodeUint64(v uint64) []byte {
	w := wire.NewWriter(8)
	w.Uint64(v)
	return w.Bytes()
}

func decodeUint64(body []byte) (uint64, error) {
	r := wire.NewReader(body)
	v := r.Uint64()
	return v, r.Err()
}

func decodeUint64Pair(body []byte) (uint64, uint64, error) {
	r := wire.NewReader(body)
	a := r.Uint64()
	b := r.Uint64()
	return a, b, r.Err()
}

func decodeBoolUint64(body []byte) (bool, uint64, error) {
	r := wire.NewReader(body)
	b := r.Bool()
	v := r.Uint64()
	return b, v, r.Err()
}

func decodeUint64List(body []byte) ([]uint64, error) {
	r := wire.NewReader(body)
	ids := r.Uint64Slice()
	return ids, r.Err()
}

func decodeBlobInfo(body []byte) (BlobInfo, error) {
	r := wire.NewReader(body)
	info := BlobInfo{
		ID:              r.Uint64(),
		PageSize:        r.Uint64(),
		TotalPages:      r.Uint64(),
		LatestPublished: r.Uint64(),
		SizeBytes:       r.Uint64(),
	}
	info.Redundancy = erasure.Redundancy{K: int(r.Uint8()), M: int(r.Uint8())}
	return info, r.Err()
}

func newCreateReq(pageSize, capacityBytes uint64, red erasure.Redundancy) []byte {
	w := wire.NewWriter(18)
	w.Uint64(pageSize)
	w.Uint64(capacityBytes)
	w.Uint8(uint8(red.K))
	w.Uint8(uint8(red.M))
	return w.Bytes()
}

func newAssignReq(blob, writeID, offset, length uint64, isAppend bool) []byte {
	w := wire.NewWriter(40)
	w.Uint64(blob)
	w.Uint64(writeID)
	w.Uint64(offset)
	w.Uint64(length)
	w.Bool(isAppend)
	return w.Bytes()
}

func newCommitReq(blob uint64, v meta.Version, block bool) []byte {
	w := wire.NewWriter(24)
	w.Uint64(blob)
	w.Uint64(v)
	w.Bool(block)
	return w.Bytes()
}

func newAbortReq(blob uint64, v meta.Version) []byte {
	w := wire.NewWriter(16)
	w.Uint64(blob)
	w.Uint64(v)
	return w.Bytes()
}

func newHistoryReq(blob uint64, from, to meta.Version) []byte {
	w := wire.NewWriter(24)
	w.Uint64(blob)
	w.Uint64(from)
	w.Uint64(to)
	return w.Bytes()
}

// FetchStatus polls one replica's MVmStatus directly (no leader
// routing) — the raw material for blobctl vmstatus and the
// fault-injection harness's convergence waits.
func (g *GroupClient) FetchStatus(ctx context.Context, shard, replica int) (ReplicaStatus, error) {
	if shard < 0 || shard >= len(g.shards) || replica < 0 || replica >= len(g.shards[shard]) {
		return ReplicaStatus{}, fmt.Errorf("vmanager: no replica s%dr%d in group", shard, replica)
	}
	resp, err := g.pool.Call(ctx, g.shards[shard][replica], MVmStatus, nil)
	if err != nil {
		return ReplicaStatus{}, err
	}
	return DecodeReplicaStatus(resp)
}
