package vmanager

import (
	"encoding/binary"
	"errors"
	"fmt"

	"blob/internal/meta"
	"blob/internal/wire"
)

// The replicated publish log (docs/vmanager-group.md §2). Every mutation
// a shard leader executes is appended to an in-memory log of LogRecords
// and replicated to the shard's followers before the client call
// returns. Followers re-execute the records in sequence order against
// their own Manager, so a follower's state is a deterministic function
// of the record stream. The byte framing below is also what travels in
// MVmAppend bodies, which is why it is checksummed and torn-tail
// tolerant like the diskstore segment log: a record that does not
// decode cleanly truncates the stream at the last good record instead
// of poisoning the replica.

// Log record operation codes. The op determines which body fields are
// meaningful.
const (
	// OpCreate allocates blob Blob with geometry (PageSize, Capacity)
	// and redundancy rs(K,M).
	OpCreate = uint8(1)
	// OpAssign assigns Version to a write of [Offset, Offset+Length) by
	// WriteID on Blob. The offset is already append-resolved by the
	// leader, so replay is deterministic.
	OpAssign = uint8(2)
	// OpCommit marks (Blob, Version) committed.
	OpCommit = uint8(3)
	// OpAbort marks (Blob, Version) aborted (writer withdrew; repair to
	// follow).
	OpAbort = uint8(4)
	// OpRepaired marks (Blob, Version) repaired: aborted in history and
	// committed so publication advances past it.
	OpRepaired = uint8(5)
)

// LogRecord is one replicated mutation. Seq is the shard-wide log
// sequence number, contiguous from 1.
type LogRecord struct {
	Seq  uint64
	Op   uint8
	Blob uint64

	// OpAssign/OpCommit/OpAbort/OpRepaired.
	Version meta.Version

	// OpCreate.
	PageSize uint64
	Capacity uint64
	K, M     uint8

	// OpAssign.
	WriteID uint64
	Offset  uint64
	Length  uint64
}

// Decode errors. Torn means the buffer ends mid-record (a clean prefix
// may still be recovered); corrupt means the bytes present are wrong.
var (
	ErrLogTorn    = errors.New("vmanager: log record torn")
	ErrLogCorrupt = errors.New("vmanager: log record corrupt")
)

// maxLogPayload bounds a single record's payload. Real records are tens
// of bytes; the cap keeps a corrupt length field from looking like a
// multi-gigabyte torn tail.
const maxLogPayload = 1 << 20

// AppendLogRecord appends rec's framed encoding to dst and returns the
// extended slice. Frame: u32 payload length, u64 FNV-1a checksum of the
// payload, payload.
func AppendLogRecord(dst []byte, rec LogRecord) []byte {
	w := wire.NewWriter(64)
	w.Uint64(rec.Seq)
	w.Uint8(rec.Op)
	w.Uint64(rec.Blob)
	switch rec.Op {
	case OpCreate:
		w.Uint64(rec.PageSize)
		w.Uint64(rec.Capacity)
		w.Uint8(rec.K)
		w.Uint8(rec.M)
	case OpAssign:
		w.Uint64(rec.Version)
		w.Uint64(rec.WriteID)
		w.Uint64(rec.Offset)
		w.Uint64(rec.Length)
	default:
		w.Uint64(rec.Version)
	}
	payload := w.Bytes()
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], wire.Checksum64(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeLogRecord decodes one framed record from the front of buf,
// returning the record and the number of bytes consumed. ErrLogTorn
// means buf ends before the record does; ErrLogCorrupt means the bytes
// present fail the checksum or do not parse.
func DecodeLogRecord(buf []byte) (LogRecord, int, error) {
	if len(buf) < 12 {
		return LogRecord{}, 0, ErrLogTorn
	}
	plen := int(binary.LittleEndian.Uint32(buf[0:4]))
	if plen > maxLogPayload {
		return LogRecord{}, 0, fmt.Errorf("%w: payload length %d", ErrLogCorrupt, plen)
	}
	if len(buf) < 12+plen {
		return LogRecord{}, 0, ErrLogTorn
	}
	sum := binary.LittleEndian.Uint64(buf[4:12])
	payload := buf[12 : 12+plen]
	if wire.Checksum64(payload) != sum {
		return LogRecord{}, 0, fmt.Errorf("%w: checksum mismatch", ErrLogCorrupt)
	}
	r := wire.NewReader(payload)
	var rec LogRecord
	rec.Seq = r.Uint64()
	rec.Op = r.Uint8()
	rec.Blob = r.Uint64()
	switch rec.Op {
	case OpCreate:
		rec.PageSize = r.Uint64()
		rec.Capacity = r.Uint64()
		rec.K = r.Uint8()
		rec.M = r.Uint8()
	case OpAssign:
		rec.Version = r.Uint64()
		rec.WriteID = r.Uint64()
		rec.Offset = r.Uint64()
		rec.Length = r.Uint64()
	case OpCommit, OpAbort, OpRepaired:
		rec.Version = r.Uint64()
	default:
		return LogRecord{}, 0, fmt.Errorf("%w: unknown op %d", ErrLogCorrupt, rec.Op)
	}
	if err := r.Err(); err != nil {
		return LogRecord{}, 0, fmt.Errorf("%w: %v", ErrLogCorrupt, err)
	}
	if r.Remaining() != 0 {
		return LogRecord{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrLogCorrupt, r.Remaining())
	}
	return rec, 12 + plen, nil
}

// RecoverLog decodes records from buf until it hits a torn or corrupt
// frame, returning the clean prefix of records and its byte length —
// truncate-and-recover semantics, never a panic. Sequence numbers must
// be contiguous; a gap also truncates.
func RecoverLog(buf []byte) ([]LogRecord, int) {
	var recs []LogRecord
	n := 0
	for n < len(buf) {
		rec, sz, err := DecodeLogRecord(buf[n:])
		if err != nil {
			break
		}
		if len(recs) > 0 && rec.Seq != recs[len(recs)-1].Seq+1 {
			break
		}
		recs = append(recs, rec)
		n += sz
	}
	return recs, n
}

// EncodeLogRecords frames a batch of records for an MVmAppend body.
func EncodeLogRecords(recs []LogRecord) []byte {
	var out []byte
	for _, rec := range recs {
		out = AppendLogRecord(out, rec)
	}
	return out
}

// DecodeLogRecords decodes a full batch; unlike RecoverLog it fails on
// any torn or corrupt frame, because an RPC body is never legitimately
// truncated.
func DecodeLogRecords(buf []byte) ([]LogRecord, error) {
	var recs []LogRecord
	n := 0
	for n < len(buf) {
		rec, sz, err := DecodeLogRecord(buf[n:])
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		n += sz
	}
	return recs, nil
}
