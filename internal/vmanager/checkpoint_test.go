package vmanager

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"blob/internal/meta"
	"blob/internal/wire"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	ctx := context.Background()
	blob := newBlob(t, m)

	// Build interesting state: two published versions, one pending,
	// one committed-but-unpublished (blocked behind the pending one).
	a1, _ := m.AssignVersion(blob, 11, 0, 4*pageSize, false)
	m.Commit(ctx, blob, a1.Version, true)
	a2, _ := m.AssignVersion(blob, 22, 2*pageSize, 2*pageSize, false)
	m.Commit(ctx, blob, a2.Version, true)
	a3, _ := m.AssignVersion(blob, 33, 4*pageSize, 2*pageSize, false) // pending, uncommitted
	a4, _ := m.AssignVersion(blob, 44, 0, pageSize, false)
	m.Commit(ctx, blob, a4.Version, false) // committed, blocked behind v3

	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	r, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Published state survives.
	v, size, err := r.Latest(blob)
	if err != nil || v != 2 || size != 4*pageSize {
		t.Fatalf("restored latest = v%d size %d err %v", v, size, err)
	}
	info, err := r.Info(blob)
	if err != nil || info.PageSize != pageSize || info.TotalPages != 64 {
		t.Fatalf("restored info = %+v err %v", info, err)
	}

	// History survives, including all four records.
	recs, err := r.History(blob, 0, 10)
	if err != nil || len(recs) != 4 {
		t.Fatalf("restored history = %d records, err %v", len(recs), err)
	}

	// The pending write can still commit and unblocks v4.
	if _, err := r.Commit(ctx, blob, a3.Version, true); err != nil {
		t.Fatalf("commit pending after restore: %v", err)
	}
	v, _, _ = r.Latest(blob)
	if v != 4 {
		t.Fatalf("latest after draining pending = %d, want 4", v)
	}

	// Border resolution continues correctly: a new write over pages
	// [0,8) must see v4 on [0,1), v3 on [4,6), etc. Check one border.
	a5, err := r.AssignVersion(blob, 55, 8*pageSize, 8*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range a5.Borders {
		if b.Child == (meta.NodeRange{Start: 4, Size: 2}) && b.Ver != 3 {
			t.Errorf("border (4,2) = v%d, want 3", b.Ver)
		}
		if b.Child == (meta.NodeRange{Start: 0, Size: 8}) && b.Ver != 4 {
			t.Errorf("border (0,8) = v%d, want 4", b.Ver)
		}
	}
	if a5.Version != 5 {
		t.Errorf("next version after restore = %d, want 5", a5.Version)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a checkpoint")), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := Restore(&empty, Config{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestRestorePreservesBlobIDSequence(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	id1, _ := m.CreateBlob(pageSize, capBytes)
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	id2, err := r.CreateBlob(pageSize, capBytes)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("restored manager reissued blob id %d", id1)
	}
}

func TestRestoreWithRepairCompletesDeadWriters(t *testing.T) {
	// A writer dies, the manager crashes and restarts from checkpoint:
	// the restored manager must repair the orphan and make progress.
	store := newFakeStore()
	m := New(Config{RepairTimeout: time.Hour, RepairScan: time.Hour, Store: store})
	blob := newBlob(t, m)
	ctx := context.Background()

	a1, _ := m.AssignVersion(blob, 11, 0, 2*pageSize, false) // writer dies
	_ = a1
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m.Close()

	r, err := Restore(&buf, Config{
		RepairTimeout: 30 * time.Millisecond,
		RepairScan:    10 * time.Millisecond,
		Store:         store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A new write after the dead one must eventually publish.
	a2, err := r.AssignVersion(blob, 22, 4*pageSize, 2*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	store.storeBuilt(t, r, blob, a2, meta.PageRange{First: 4, Count: 2}, 22)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := r.Commit(cctx, blob, a2.Version, true); err != nil {
		t.Fatalf("commit after restore+repair: %v", err)
	}
	if _, err := r.Commit(ctx, blob, a1.Version, false); !errors.Is(err, ErrAborted) {
		t.Errorf("dead writer's commit after restore = %v, want ErrAborted", err)
	}
}

func TestCheckpointMultipleBlobs(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	ctx := context.Background()
	ids := make([]uint64, 3)
	for i := range ids {
		ids[i], _ = m.CreateBlob(pageSize, capBytes)
		a, _ := m.AssignVersion(ids[i], uint64(i+1), 0, pageSize*uint64(i+1), false)
		m.Commit(ctx, ids[i], a.Version, true)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, id := range ids {
		_, size, err := r.Latest(id)
		if err != nil || size != pageSize*uint64(i+1) {
			t.Errorf("blob %d: size %d err %v", id, size, err)
		}
	}
}

// TestRestoreG1Checkpoint pins upgrade compatibility: a BLOBVMG1 stream
// from a pre-erasure build (no per-blob redundancy bytes) must restore,
// with every blob replicated — the checkpoint is the version manager's
// only durable state, and an upgrade must never strand it.
func TestRestoreG1Checkpoint(t *testing.T) {
	// Hand-encode a G1 stream: one blob, one published write.
	enc := wire.NewWriter(256)
	enc.Uint64(checkpointMagicG1)
	enc.Uint64(2) // nextID
	enc.Uvarint(1)
	enc.Uint64(1)        // blob id
	enc.Uint64(pageSize) // pageSize
	enc.Uint64(64)       // totalPages (no redundancy bytes in G1)
	enc.Uint64(1)        // latestAssigned
	enc.Uint64(1)        // latestPublished
	enc.Uint64Slice([]uint64{0, 4 * pageSize})
	enc.Uvarint(1) // history
	enc.Uvarint(1)
	enc.Uvarint(0)
	enc.Uvarint(4)
	enc.Uint64(77)
	enc.Bool(false)
	enc.Uvarint(0) // pending

	m, err := Restore(bytes.NewReader(enc.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, err := m.Info(1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redundancy.IsRS() {
		t.Fatalf("G1 blob restored as %v, want replicate", info.Redundancy)
	}
	if info.LatestPublished != 1 || info.SizeBytes != 4*pageSize {
		t.Fatalf("info = %+v", info)
	}
	// And the restored manager re-checkpoints as G2, round-tripping.
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(&buf, Config{}); err != nil {
		t.Fatal(err)
	}
}
