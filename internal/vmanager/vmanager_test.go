package vmanager

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/netsim"
	"blob/internal/rpc"
)

const (
	pageSize = 64 << 10
	capBytes = 64 * pageSize // 64 pages
)

func newBlob(t *testing.T, m *Manager) uint64 {
	t.Helper()
	id, err := m.CreateBlob(pageSize, capBytes)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCreateBlobValidation(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	if _, err := m.CreateBlob(1000, 64000); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := m.CreateBlob(1024, 1000); err == nil {
		t.Error("capacity not multiple of page size accepted")
	}
	if _, err := m.CreateBlob(1024, 3*1024); err == nil {
		t.Error("non-power-of-two page count accepted")
	}
	id1, err := m.CreateBlob(1024, 4*1024)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := m.CreateBlob(1024, 4*1024)
	if id1 == id2 {
		t.Error("blob IDs not unique")
	}
}

func TestAssignCommitPublish(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	a, err := m.AssignVersion(blob, 100, 0, 4*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 || a.Offset != 0 {
		t.Fatalf("assignment = %+v", a)
	}
	// Not yet published.
	if v, _, _ := m.Latest(blob); v != 0 {
		t.Errorf("latest before commit = %d", v)
	}
	pub, err := m.Commit(ctx, blob, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if pub != 1 {
		t.Errorf("published = %d, want 1", pub)
	}
	v, size, err := m.Latest(blob)
	if err != nil || v != 1 || size != 4*pageSize {
		t.Errorf("latest = v%d size %d err %v", v, size, err)
	}
}

func TestPublicationOrder(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	a1, _ := m.AssignVersion(blob, 1, 0, pageSize, false)
	a2, _ := m.AssignVersion(blob, 2, pageSize, pageSize, false)
	a3, _ := m.AssignVersion(blob, 3, 2*pageSize, pageSize, false)
	if a1.Version != 1 || a2.Version != 2 || a3.Version != 3 {
		t.Fatal("versions not sequential")
	}

	// Commit out of order: 3, then 2, then 1.
	if _, err := m.Commit(ctx, blob, 3, false); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := m.Latest(blob); v != 0 {
		t.Errorf("latest after commit(3) = %d, want 0", v)
	}
	if _, err := m.Commit(ctx, blob, 2, false); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := m.Latest(blob); v != 0 {
		t.Errorf("latest after commit(3,2) = %d, want 0", v)
	}
	if _, err := m.Commit(ctx, blob, 1, false); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := m.Latest(blob); v != 3 {
		t.Errorf("latest after commit(3,2,1) = %d, want 3", v)
	}
}

func TestBlockingCommitWaitsForPredecessors(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	m.AssignVersion(blob, 1, 0, pageSize, false)
	m.AssignVersion(blob, 2, 0, pageSize, false)

	done := make(chan meta.Version, 1)
	go func() {
		pub, err := m.Commit(ctx, blob, 2, true)
		if err != nil {
			t.Error(err)
		}
		done <- pub
	}()
	select {
	case <-done:
		t.Fatal("commit(2) returned before commit(1)")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := m.Commit(ctx, blob, 1, true); err != nil {
		t.Fatal(err)
	}
	select {
	case pub := <-done:
		if pub != 2 {
			t.Errorf("published = %d, want 2", pub)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked commit never released")
	}
}

func TestBordersReflectUnpublishedWrites(t *testing.T) {
	// The defining lock-free property: writer 2's borders must reference
	// version 1 even though version 1 has not committed yet.
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)

	m.AssignVersion(blob, 1, 0, 8*pageSize, false) // v1 uncommitted
	a2, err := m.AssignVersion(blob, 2, 4*pageSize, 4*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range a2.Borders {
		if b.Child == (meta.NodeRange{Start: 0, Size: 4}) {
			found = true
			if b.Ver != 1 {
				t.Errorf("border (0,4) = v%d, want v1 (unpublished)", b.Ver)
			}
		}
	}
	if !found {
		t.Fatalf("border (0,4) missing from %+v", a2.Borders)
	}
}

func TestAppendResolvesOffset(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	a1, err := m.AssignVersion(blob, 1, 0, 2*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Offset != 0 {
		t.Errorf("first append offset = %d", a1.Offset)
	}
	// Second append must land after the first even before it commits.
	a2, err := m.AssignVersion(blob, 2, 0, 3*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Offset != 2*pageSize {
		t.Errorf("second append offset = %d, want %d", a2.Offset, 2*pageSize)
	}
	m.Commit(ctx, blob, 1, false)
	m.Commit(ctx, blob, 2, false)
	_, size, _ := m.Latest(blob)
	if size != 5*pageSize {
		t.Errorf("size = %d, want %d", size, 5*pageSize)
	}
}

func TestAssignValidation(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	if _, err := m.AssignVersion(blob, 1, 13, pageSize, false); !errors.Is(err, ErrBadRange) {
		t.Errorf("unaligned offset: %v", err)
	}
	if _, err := m.AssignVersion(blob, 1, 0, 0, false); !errors.Is(err, ErrBadRange) {
		t.Errorf("zero length: %v", err)
	}
	if _, err := m.AssignVersion(blob, 1, 0, capBytes+pageSize, false); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow: %v", err)
	}
	if _, err := m.AssignVersion(999, 1, 0, pageSize, false); !errors.Is(err, ErrNoBlob) {
		t.Errorf("unknown blob: %v", err)
	}
}

func TestVersionInfoAndSizes(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()
	m.AssignVersion(blob, 1, 0, 2*pageSize, false)
	m.AssignVersion(blob, 2, 8*pageSize, 2*pageSize, false)
	m.Commit(ctx, blob, 1, false)

	pub, size, err := m.VersionInfo(blob, 1)
	if err != nil || !pub || size != 2*pageSize {
		t.Errorf("v1 info = %v %d %v", pub, size, err)
	}
	pub, size, err = m.VersionInfo(blob, 2)
	if err != nil || pub || size != 10*pageSize {
		t.Errorf("v2 info = %v %d %v (should be unpublished, size 10 pages)", pub, size, err)
	}
	if _, _, err := m.VersionInfo(blob, 9); !errors.Is(err, ErrVersionUnknown) {
		t.Errorf("unknown version: %v", err)
	}
}

func TestHistoryFilter(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	for i := 0; i < 5; i++ {
		m.AssignVersion(blob, uint64(i+1), uint64(i)*pageSize, pageSize, false)
	}
	recs, err := m.History(blob, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Version != 2 || recs[1].Version != 3 {
		t.Errorf("history (1,3] = %+v", recs)
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	const writers = 16
	var wg sync.WaitGroup
	versions := make([]meta.Version, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := m.AssignVersion(blob, uint64(i+1), uint64(i%8)*pageSize, pageSize, false)
			if err != nil {
				t.Error(err)
				return
			}
			versions[i] = a.Version
			if _, err := m.Commit(ctx, blob, a.Version, true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	seen := map[meta.Version]bool{}
	for _, v := range versions {
		if v == 0 || seen[v] {
			t.Fatalf("duplicate or zero version %d in %v", v, versions)
		}
		seen[v] = true
	}
	if v, _, _ := m.Latest(blob); v != writers {
		t.Errorf("latest = %d, want %d", v, writers)
	}
}

func TestCommitUnknownVersion(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	if _, err := m.Commit(context.Background(), blob, 7, false); !errors.Is(err, ErrNotPending) {
		t.Errorf("err = %v, want ErrNotPending", err)
	}
}

func TestCommitIdempotentAfterPublish(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()
	a, _ := m.AssignVersion(blob, 1, 0, pageSize, false)
	if _, err := m.Commit(ctx, blob, a.Version, true); err != nil {
		t.Fatal(err)
	}
	// A duplicate commit (client retry after lost response) succeeds.
	pub, err := m.Commit(ctx, blob, a.Version, true)
	if err != nil || pub < 1 {
		t.Errorf("duplicate commit = %d, %v", pub, err)
	}
}

// fakeStore is an in-memory NodeStore for repair tests.
type fakeStore struct {
	mu    sync.Mutex
	nodes map[meta.NodeKey][]byte
}

func newFakeStore() *fakeStore {
	return &fakeStore{nodes: make(map[meta.NodeKey][]byte)}
}

func (f *fakeStore) FetchNode(_ context.Context, key meta.NodeKey) (*meta.Node, error) {
	f.mu.Lock()
	body, ok := f.nodes[key]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fakeStore: missing %+v", key)
	}
	return meta.DecodeNode(body, key)
}

func (f *fakeStore) StoreNodes(_ context.Context, nodes []meta.Node) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range nodes {
		k := nodes[i].Key
		if _, dup := f.nodes[k]; !dup { // write-once
			f.nodes[k] = nodes[i].Encode()
		}
	}
	return nil
}

func (f *fakeStore) storeBuilt(t *testing.T, m *Manager, blob uint64, a Assignment, wr meta.PageRange, writeID uint64) {
	t.Helper()
	nodes, err := meta.Build(blob, a.Version, capBytes/pageSize, wr,
		meta.BorderResolver(a.Borders),
		func(p uint64) (meta.LeafData, error) {
			return meta.LeafData{Write: writeID, RelPage: uint32(p - wr.First)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StoreNodes(context.Background(), nodes); err != nil {
		t.Fatal(err)
	}
}

func TestRepairUnblocksSuccessors(t *testing.T) {
	store := newFakeStore()
	m := New(Config{RepairTimeout: 50 * time.Millisecond, RepairScan: 10 * time.Millisecond, Store: store})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	// v1 writes pages [0,4) and commits properly.
	a1, _ := m.AssignVersion(blob, 11, 0, 4*pageSize, false)
	store.storeBuilt(t, m, blob, a1, meta.PageRange{First: 0, Count: 4}, 11)
	if _, err := m.Commit(ctx, blob, a1.Version, true); err != nil {
		t.Fatal(err)
	}

	// v2 is assigned pages [2,4)... and the writer dies silently.
	a2, _ := m.AssignVersion(blob, 22, 2*pageSize, 2*pageSize, false)
	_ = a2

	// v3 writes pages [0,2) and commits; publication must eventually
	// advance past the dead v2 thanks to repair.
	a3, _ := m.AssignVersion(blob, 33, 0, 2*pageSize, false)
	store.storeBuilt(t, m, blob, a3, meta.PageRange{First: 0, Count: 2}, 33)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	pub, err := m.Commit(cctx, blob, a3.Version, true)
	if err != nil {
		t.Fatalf("commit(v3) failed: %v", err)
	}
	if pub < 3 {
		t.Errorf("published = %d, want >= 3", pub)
	}
	if m.Repairs.Value() != 1 {
		t.Errorf("repairs = %d, want 1", m.Repairs.Value())
	}

	// The repaired v2 leaves must reference v1's pages (no-op patch).
	for page := uint64(2); page < 4; page++ {
		n, err := store.FetchNode(ctx, meta.NodeKey{
			Blob: blob, Version: 2, Range: meta.NodeRange{Start: page, Size: 1},
		})
		if err != nil {
			t.Fatalf("repaired leaf missing: %v", err)
		}
		if n.Leaf.Write != 11 {
			t.Errorf("repaired leaf page %d references write %d, want 11", page, n.Leaf.Write)
		}
	}

	// The dead writer's late commit must be rejected.
	if _, err := m.Commit(ctx, blob, a2.Version, false); !errors.Is(err, ErrAborted) {
		t.Errorf("late commit of repaired version = %v, want ErrAborted", err)
	}

	// History must mark v2 aborted.
	recs, _ := m.History(blob, 0, 10)
	for _, rec := range recs {
		if rec.Version == 2 && !rec.Aborted {
			t.Error("v2 not marked aborted in history")
		}
	}
}

func TestRepairZeroPages(t *testing.T) {
	// Dead writer on a fresh blob: repair must produce zero-page leaves.
	store := newFakeStore()
	m := New(Config{RepairTimeout: 30 * time.Millisecond, RepairScan: 10 * time.Millisecond, Store: store})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	a1, _ := m.AssignVersion(blob, 11, 0, 2*pageSize, false)
	_ = a1 // writer dies

	a2, _ := m.AssignVersion(blob, 22, 4*pageSize, 2*pageSize, false)
	store.storeBuilt(t, m, blob, a2, meta.PageRange{First: 4, Count: 2}, 22)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := m.Commit(cctx, blob, a2.Version, true); err != nil {
		t.Fatal(err)
	}
	n, err := store.FetchNode(ctx, meta.NodeKey{Blob: blob, Version: 1, Range: meta.NodeRange{Start: 0, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n.Leaf.Write != 0 {
		t.Errorf("repaired fresh-blob leaf = write %d, want 0 (zero page)", n.Leaf.Write)
	}
}

func TestExplicitAbortRepairs(t *testing.T) {
	store := newFakeStore()
	m := New(Config{RepairTimeout: time.Hour, RepairScan: time.Hour, Store: store})
	defer m.Close()
	blob := newBlob(t, m)
	ctx := context.Background()

	a1, _ := m.AssignVersion(blob, 11, 0, 2*pageSize, false)
	if err := m.Abort(blob, a1.Version); err != nil {
		t.Fatal(err)
	}
	// Abort repaired synchronously: v1 should be published as a no-op.
	if v, _, _ := m.Latest(blob); v != 1 {
		t.Errorf("latest after abort = %d, want 1", v)
	}
	if _, err := m.Commit(ctx, blob, a1.Version, false); !errors.Is(err, ErrAborted) {
		t.Errorf("commit after abort = %v, want ErrAborted", err)
	}
}

type hostDialer struct{ h *netsim.Host }

func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

func TestServiceOverRPC(t *testing.T) {
	fab := netsim.New(netsim.Fast())
	defer fab.Close()
	m := New(Config{})
	defer m.Close()
	srv := rpc.NewServer()
	m.RegisterHandlers(srv)
	l, err := fab.Host("vm").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	defer srv.Close()

	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	defer pool.Close()
	c := NewClient(pool, "vm:rpc")
	ctx := context.Background()

	blob, err := c.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(ctx, blob)
	if err != nil || info.TotalPages != 64 || info.PageSize != pageSize {
		t.Fatalf("info = %+v, %v", info, err)
	}

	a, err := c.AssignVersion(ctx, blob, 5, 0, 2*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 || len(a.Borders) == 0 {
		t.Fatalf("assignment = %+v", a)
	}
	pub, err := c.Commit(ctx, blob, a.Version, true)
	if err != nil || pub != 1 {
		t.Fatalf("commit = %d, %v", pub, err)
	}
	v, size, err := c.Latest(ctx, blob)
	if err != nil || v != 1 || size != 2*pageSize {
		t.Fatalf("latest = %d %d %v", v, size, err)
	}
	published, _, err := c.VersionInfo(ctx, blob, 1)
	if err != nil || !published {
		t.Fatalf("versioninfo = %v %v", published, err)
	}
	recs, err := c.History(ctx, blob, 0, 10)
	if err != nil || len(recs) != 1 || recs[0].WriteID != 5 {
		t.Fatalf("history = %+v, %v", recs, err)
	}
	if err := c.Abort(ctx, blob, 99); err == nil {
		t.Error("abort of unknown version should fail")
	}
}

func BenchmarkAssignVersion(b *testing.B) {
	m := New(Config{})
	defer m.Close()
	blob, _ := m.CreateBlob(64<<10, 1<<40) // 1 TB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%1000) * 128 * (64 << 10)
		a, err := m.AssignVersion(blob, uint64(i), off, 128*(64<<10), false)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Commit(context.Background(), blob, a.Version, false); err != nil {
			b.Fatal(err)
		}
	}
}
