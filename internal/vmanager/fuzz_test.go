package vmanager

import (
	"bytes"
	"testing"
)

// FuzzLogRecordDecode asserts the publish-log record decoder never
// panics, never accepts a frame that does not round-trip byte-for-byte,
// and that RecoverLog's truncate-and-recover semantics hold on arbitrary
// damage: the recovered prefix re-decodes cleanly and its length never
// exceeds the input.
func FuzzLogRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(EncodeLogRecords(sampleRecords()))
	whole := EncodeLogRecords(sampleRecords())
	f.Add(whole[:len(whole)-3]) // torn tail
	flipped := bytes.Clone(whole)
	flipped[17] ^= 0x20
	f.Add(flipped) // checksum-breaking bit flip
	bigLen := bytes.Clone(whole)
	bigLen[3] = 0xff
	f.Add(bigLen) // absurd length field
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeLogRecord(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decoded size %d of %d input bytes", n, len(data))
			}
			// The checksummed frame leaves no slack: re-encoding must
			// reproduce the consumed bytes exactly.
			if re := AppendLogRecord(nil, rec); !bytes.Equal(re, data[:n]) {
				t.Fatalf("record does not round-trip:\n got %x\nwant %x", re, data[:n])
			}
		}

		recs, rn := RecoverLog(data)
		if rn < 0 || rn > len(data) {
			t.Fatalf("recovered %d bytes of %d", rn, len(data))
		}
		// The clean prefix is self-consistent: re-encoding it yields the
		// recovered byte range, and sequence numbers are contiguous.
		var re []byte
		for i, rec := range recs {
			if i > 0 && rec.Seq != recs[i-1].Seq+1 {
				t.Fatalf("recovered gap: seq %d after %d", rec.Seq, recs[i-1].Seq)
			}
			re = AppendLogRecord(re, rec)
		}
		if !bytes.Equal(re, data[:rn]) {
			t.Fatalf("recovered prefix does not round-trip")
		}

		// The strict batch decoder agrees with full-clean recovery.
		if brecs, err := DecodeLogRecords(data); err == nil {
			if len(data) != rn && len(brecs) != len(recs) {
				t.Fatalf("batch decoded %d records where recovery got %d of %d bytes", len(brecs), len(recs), rn)
			}
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint restorer:
// whatever the input, Restore must reject or accept without panicking,
// and an accepted state must survive a checkpoint/restore round trip
// (i.e. Restore only admits states the Manager itself could have
// written).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	// A real checkpoint with history, a pending write and an abort.
	m := New(Config{})
	blob, _ := m.CreateBlob(pageSize, capBytes)
	a1, _ := m.AssignVersion(blob, 11, 0, 2*pageSize, false)
	m.commitObserve(blob, a1.Version)
	a2, _ := m.AssignVersion(blob, 22, 0, pageSize, true)
	m.markAborted(blob, a2.Version)
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	m.Close()
	whole := buf.Bytes()
	f.Add(bytes.Clone(whole))
	f.Add(bytes.Clone(whole[:len(whole)-4])) // torn
	for _, off := range []int{8, 16, 24, len(whole) / 2, len(whole) - 2} {
		if off < len(whole) {
			flipped := bytes.Clone(whole)
			flipped[off] ^= 0x01
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Restore(bytes.NewReader(data), Config{})
		if err != nil {
			return // rejected: fine
		}
		defer r.Close()
		// Accepted state must be internally consistent enough to
		// checkpoint again and restore to the same blob set.
		var out bytes.Buffer
		if err := r.Checkpoint(&out); err != nil {
			t.Fatalf("restored state cannot re-checkpoint: %v", err)
		}
		r2, err := Restore(&out, Config{})
		if err != nil {
			t.Fatalf("re-checkpointed state rejected: %v", err)
		}
		defer r2.Close()
		b1, b2 := r.Blobs(), r2.Blobs()
		if len(b1) != len(b2) {
			t.Fatalf("round trip changed blob count: %d != %d", len(b1), len(b2))
		}
		// Exercise the read paths — they must not panic on any accepted
		// state, and Latest/History must agree across the round trip.
		for _, id := range b1 {
			v1, s1, e1 := r.Latest(id)
			v2, s2, e2 := r2.Latest(id)
			if v1 != v2 || s1 != s2 || (e1 == nil) != (e2 == nil) {
				t.Fatalf("blob %d: latest diverged (%d,%d,%v) != (%d,%d,%v)", id, v1, s1, e1, v2, s2, e2)
			}
			h1, _ := r.History(id, 0, ^uint64(0))
			h2, _ := r2.History(id, 0, ^uint64(0))
			if len(h1) != len(h2) {
				t.Fatalf("blob %d: history diverged", id)
			}
		}
	})
}
