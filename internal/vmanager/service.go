package vmanager

import (
	"context"
	"fmt"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/rpc"
	"blob/internal/wire"
)

// RPC method identifiers for the version manager service (0x05xx block).
const (
	MCreate      = 0x0501
	MInfo        = 0x0502
	MAssign      = 0x0503
	MCommit      = 0x0504
	MAbort       = 0x0505
	MLatest      = 0x0506
	MVersionInfo = 0x0507
	MHistory     = 0x0508
	MBlobs       = 0x0509
)

func init() {
	rpc.RegisterMethodName(MCreate, "vmanager.MCreate")
	rpc.RegisterMethodName(MInfo, "vmanager.MInfo")
	rpc.RegisterMethodName(MAssign, "vmanager.MAssign")
	rpc.RegisterMethodName(MCommit, "vmanager.MCommit")
	rpc.RegisterMethodName(MAbort, "vmanager.MAbort")
	rpc.RegisterMethodName(MLatest, "vmanager.MLatest")
	rpc.RegisterMethodName(MVersionInfo, "vmanager.MVersionInfo")
	rpc.RegisterMethodName(MHistory, "vmanager.MHistory")
	rpc.RegisterMethodName(MBlobs, "vmanager.MBlobs")
}

// RegisterHandlers wires the manager's RPC methods onto srv.
func (m *Manager) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MCreate, m.handleCreate)
	srv.Handle(MInfo, m.handleInfo)
	srv.Handle(MAssign, m.handleAssign)
	srv.Handle(MCommit, m.handleCommit)
	srv.Handle(MAbort, m.handleAbort)
	srv.Handle(MLatest, m.handleLatest)
	srv.Handle(MVersionInfo, m.handleVersionInfo)
	srv.Handle(MHistory, m.handleHistory)
	srv.Handle(MBlobs, m.handleBlobs)
}

// handleBlobs serves the blob ID list (the repair agent's work list).
func (m *Manager) handleBlobs(_ context.Context, _ []byte) ([]byte, error) {
	ids := m.Blobs()
	w := wire.NewWriter(8 + 8*len(ids))
	w.Uint64Slice(ids)
	return w.Bytes(), nil
}

func (m *Manager) handleCreate(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	pageSize := r.Uint64()
	capacity := r.Uint64()
	red := erasure.Redundancy{K: int(r.Uint8()), M: int(r.Uint8())}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager create: %w", err)
	}
	id, err := m.CreateBlobMode(pageSize, capacity, red)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8)
	w.Uint64(id)
	return w.Bytes(), nil
}

func (m *Manager) handleInfo(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager info: %w", err)
	}
	info, err := m.Info(blob)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(48)
	w.Uint64(info.ID)
	w.Uint64(info.PageSize)
	w.Uint64(info.TotalPages)
	w.Uint64(info.LatestPublished)
	w.Uint64(info.SizeBytes)
	w.Uint8(uint8(info.Redundancy.K))
	w.Uint8(uint8(info.Redundancy.M))
	return w.Bytes(), nil
}

func (m *Manager) handleAssign(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	writeID := r.Uint64()
	offset := r.Uint64()
	length := r.Uint64()
	isAppend := r.Bool()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager assign: %w", err)
	}
	a, err := m.AssignVersion(blob, writeID, offset, length, isAppend)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(32 + 24*len(a.Borders))
	w.Uint64(a.Version)
	w.Uint64(a.Offset)
	w.Uvarint(uint64(len(a.Borders)))
	for _, b := range a.Borders {
		w.Uvarint(b.Child.Start)
		w.Uvarint(b.Child.Size)
		w.Uvarint(b.Ver)
	}
	return w.Bytes(), nil
}

// DecodeAssignment parses an MAssign response.
func DecodeAssignment(body []byte) (Assignment, error) {
	r := wire.NewReader(body)
	var a Assignment
	a.Version = r.Uint64()
	a.Offset = r.Uint64()
	n := int(r.Uvarint())
	a.Borders = make([]meta.Border, 0, n)
	for i := 0; i < n; i++ {
		a.Borders = append(a.Borders, meta.Border{
			Child: meta.NodeRange{Start: r.Uvarint(), Size: r.Uvarint()},
			Ver:   r.Uvarint(),
		})
	}
	return a, r.Err()
}

func (m *Manager) handleCommit(ctx context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	v := r.Uint64()
	block := r.Bool()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager commit: %w", err)
	}
	pub, err := m.Commit(ctx, blob, v, block)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8)
	w.Uint64(pub)
	return w.Bytes(), nil
}

func (m *Manager) handleAbort(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	v := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager abort: %w", err)
	}
	if err := m.Abort(blob, v); err != nil {
		return nil, err
	}
	return nil, nil
}

func (m *Manager) handleLatest(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager latest: %w", err)
	}
	v, size, err := m.Latest(blob)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(16)
	w.Uint64(v)
	w.Uint64(size)
	return w.Bytes(), nil
}

func (m *Manager) handleVersionInfo(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	v := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager versioninfo: %w", err)
	}
	published, size, err := m.VersionInfo(blob, v)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(16)
	w.Bool(published)
	w.Uint64(size)
	return w.Bytes(), nil
}

func (m *Manager) handleHistory(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	blob := r.Uint64()
	from := r.Uint64()
	to := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vmanager history: %w", err)
	}
	recs, err := m.History(blob, from, to)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8 + 32*len(recs))
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		w.Uvarint(rec.Version)
		w.Uvarint(rec.Range.First)
		w.Uvarint(rec.Range.Count)
		w.Uint64(rec.WriteID)
		w.Bool(rec.Aborted)
	}
	return w.Bytes(), nil
}

// DecodeHistory parses an MHistory response.
func DecodeHistory(body []byte) ([]WriteRecord, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	out := make([]WriteRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, WriteRecord{
			Version: r.Uvarint(),
			Range:   meta.PageRange{First: r.Uvarint(), Count: r.Uvarint()},
			WriteID: r.Uint64(),
			Aborted: r.Bool(),
		})
	}
	return out, r.Err()
}

// Client is a typed client for the version manager service.
type Client struct {
	pool *rpc.Pool
	addr string
}

// NewClient returns a client for the manager at addr.
func NewClient(pool *rpc.Pool, addr string) *Client {
	return &Client{pool: pool, addr: addr}
}

// CreateBlob allocates a blob with the given redundancy mode (zero
// value = full replication).
func (c *Client) CreateBlob(ctx context.Context, pageSize, capacityBytes uint64, red erasure.Redundancy) (uint64, error) {
	w := wire.NewWriter(18)
	w.Uint64(pageSize)
	w.Uint64(capacityBytes)
	w.Uint8(uint8(red.K))
	w.Uint8(uint8(red.M))
	resp, err := c.pool.Call(ctx, c.addr, MCreate, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := r.Uint64()
	return id, r.Err()
}

// Info fetches blob geometry and published state.
func (c *Client) Info(ctx context.Context, blob uint64) (BlobInfo, error) {
	w := wire.NewWriter(8)
	w.Uint64(blob)
	resp, err := c.pool.Call(ctx, c.addr, MInfo, w.Bytes())
	if err != nil {
		return BlobInfo{}, err
	}
	r := wire.NewReader(resp)
	info := BlobInfo{
		ID:              r.Uint64(),
		PageSize:        r.Uint64(),
		TotalPages:      r.Uint64(),
		LatestPublished: r.Uint64(),
		SizeBytes:       r.Uint64(),
	}
	info.Redundancy = erasure.Redundancy{K: int(r.Uint8()), M: int(r.Uint8())}
	return info, r.Err()
}

// AssignVersion requests a version for a write. On the write hot path:
// the pooled response is released after decoding (the Assignment owns
// its memory), with Pool.Call's redial-once resilience kept.
func (c *Client) AssignVersion(ctx context.Context, blob, writeID, offset, length uint64, isAppend bool) (Assignment, error) {
	w := wire.NewWriter(40)
	w.Uint64(blob)
	w.Uint64(writeID)
	w.Uint64(offset)
	w.Uint64(length)
	w.Bool(isAppend)
	var asg Assignment
	err := c.pool.CallWith(ctx, c.addr, MAssign, w.Bytes(), func(resp []byte) error {
		var err error
		asg, err = DecodeAssignment(resp)
		return err
	})
	if err != nil {
		return Assignment{}, err
	}
	return asg, nil
}

// Commit reports completion of a write; with block it waits for
// publication.
func (c *Client) Commit(ctx context.Context, blob uint64, v meta.Version, block bool) (meta.Version, error) {
	w := wire.NewWriter(24)
	w.Uint64(blob)
	w.Uint64(v)
	w.Bool(block)
	var pub meta.Version
	err := c.pool.CallWith(ctx, c.addr, MCommit, w.Bytes(), func(resp []byte) error {
		r := wire.NewReader(resp)
		pub = r.Uint64()
		return r.Err()
	})
	return pub, err
}

// Abort withdraws an assigned version.
func (c *Client) Abort(ctx context.Context, blob uint64, v meta.Version) error {
	w := wire.NewWriter(16)
	w.Uint64(blob)
	w.Uint64(v)
	_, err := c.pool.Call(ctx, c.addr, MAbort, w.Bytes())
	return err
}

// Latest returns the newest published version and its byte size. On
// the read hot path: the pooled response is released after decoding.
func (c *Client) Latest(ctx context.Context, blob uint64) (meta.Version, uint64, error) {
	w := wire.NewWriter(8)
	w.Uint64(blob)
	var v meta.Version
	var size uint64
	err := c.pool.CallWith(ctx, c.addr, MLatest, w.Bytes(), func(resp []byte) error {
		r := wire.NewReader(resp)
		v = r.Uint64()
		size = r.Uint64()
		return r.Err()
	})
	return v, size, err
}

// VersionInfo reports publication state and size of a version.
func (c *Client) VersionInfo(ctx context.Context, blob uint64, v meta.Version) (published bool, size uint64, err error) {
	w := wire.NewWriter(16)
	w.Uint64(blob)
	w.Uint64(v)
	resp, err := c.pool.Call(ctx, c.addr, MVersionInfo, w.Bytes())
	if err != nil {
		return false, 0, err
	}
	r := wire.NewReader(resp)
	published = r.Bool()
	size = r.Uint64()
	return published, size, r.Err()
}

// Blobs lists every blob ID the manager knows — the work list of the
// replica repair agent (and diagnostics).
func (c *Client) Blobs(ctx context.Context) ([]uint64, error) {
	resp, err := c.pool.Call(ctx, c.addr, MBlobs, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	ids := r.Uint64Slice()
	return ids, r.Err()
}

// History fetches write records for versions in (from, to].
func (c *Client) History(ctx context.Context, blob uint64, from, to meta.Version) ([]WriteRecord, error) {
	w := wire.NewWriter(24)
	w.Uint64(blob)
	w.Uint64(from)
	w.Uint64(to)
	resp, err := c.pool.Call(ctx, c.addr, MHistory, w.Bytes())
	if err != nil {
		return nil, err
	}
	return DecodeHistory(resp)
}
