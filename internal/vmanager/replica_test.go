package vmanager

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/netsim"
	"blob/internal/rpc"
)

// testShard is an in-package harness for one replicated shard: n
// replicas on their own simulated hosts, plus kill/restart primitives.
// The cross-layer variant (many shards, live clients, a full cluster)
// lives in internal/cluster.
type testShard struct {
	t     *testing.T
	fab   *netsim.Net
	peers []string
	cfg   func(j int) ReplicaConfig

	mu   sync.Mutex
	reps []*Replica
	srvs []*rpc.Server
}

// newTestShard boots an n-replica shard with simulation-fast timings.
// mut, if non-nil, adjusts each replica's config before boot.
func newTestShard(t *testing.T, n int, mut func(j int, cfg *ReplicaConfig)) *testShard {
	t.Helper()
	fab := netsim.New(netsim.Fast())
	ts := &testShard{
		t:    t,
		fab:  fab,
		reps: make([]*Replica, n),
		srvs: make([]*rpc.Server, n),
	}
	for j := 0; j < n; j++ {
		ts.peers = append(ts.peers, fmt.Sprintf("r%d:rpc", j))
	}
	ts.cfg = func(j int) ReplicaConfig {
		cfg := ReplicaConfig{
			Shard:           0,
			Shards:          1,
			Index:           j,
			Peers:           ts.peers,
			Pool:            rpc.NewPool(hostDialer{fab.Host(fmt.Sprintf("r%d", j))}),
			Heartbeat:       4 * time.Millisecond,
			ElectionTimeout: 30 * time.Millisecond,
			Logf:            t.Logf,
		}
		if mut != nil {
			mut(j, &cfg)
		}
		return cfg
	}
	for j := 0; j < n; j++ {
		ts.start(j, false)
	}
	t.Cleanup(ts.close)
	return ts
}

func (ts *testShard) start(j int, rejoin bool) {
	ts.t.Helper()
	cfg := ts.cfg(j)
	cfg.Rejoin = rejoin
	rep := NewReplica(cfg)
	srv := rpc.NewServer()
	rep.RegisterHandlers(srv)
	l, err := ts.fab.Host(fmt.Sprintf("r%d", j)).Listen("rpc")
	if err != nil {
		rep.Close()
		ts.t.Fatal(err)
	}
	srv.Start(l)
	ts.mu.Lock()
	ts.reps[j], ts.srvs[j] = rep, srv
	ts.mu.Unlock()
}

func (ts *testShard) rep(j int) *Replica {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.reps[j]
}

// kill crash-stops replica j: server closed, process stopped, state lost.
func (ts *testShard) kill(j int) {
	ts.mu.Lock()
	rep, srv := ts.reps[j], ts.srvs[j]
	ts.reps[j], ts.srvs[j] = nil, nil
	ts.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if rep != nil {
		rep.Close()
	}
}

// restart relaunches a killed replica at the same address, empty, as a
// rejoining follower.
func (ts *testShard) restart(j int) { ts.start(j, true) }

func (ts *testShard) close() {
	ts.mu.Lock()
	reps, srvs := ts.reps, ts.srvs
	ts.reps, ts.srvs = make([]*Replica, len(reps)), make([]*rpc.Server, len(srvs))
	ts.mu.Unlock()
	for _, s := range srvs {
		if s != nil {
			s.Close()
		}
	}
	for _, r := range reps {
		if r != nil {
			r.Close()
		}
	}
	ts.fab.Close()
}

// leaderIdx polls live replicas for the current leadership claimant.
// A partitioned stale leader may still claim its old term, so the
// highest-term claimant wins.
func (ts *testShard) leaderIdx() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	best, bestTerm := -1, uint64(0)
	for j, r := range ts.reps {
		if r == nil {
			continue
		}
		if st := r.Status(); st.IsLeader && (best < 0 || st.Term > bestTerm) {
			best, bestTerm = j, st.Term
		}
	}
	return best
}

// waitLeader blocks until some live replica other than `not` claims
// leadership.
func (ts *testShard) waitLeader(not int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if l := ts.leaderIdx(); l >= 0 && l != not {
			return l
		}
		if time.Now().After(deadline) {
			ts.t.Fatalf("no leader (excluding %d) within %v", not, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// client builds a GroupClient dialing from its own host.
func (ts *testShard) client() *GroupClient {
	pool := rpc.NewPool(hostDialer{ts.fab.Host("cli")})
	ts.t.Cleanup(pool.Close)
	return NewGroupClient(pool, [][]string{ts.peers})
}

func TestReplicatedBasicOps(t *testing.T) {
	ts := newTestShard(t, 3, nil)
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.AssignVersion(ctx, blob, 7, 0, 2*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if pub, err := g.Commit(ctx, blob, a.Version, true); err != nil || pub != a.Version {
		t.Fatalf("commit = %d, %v", pub, err)
	}
	v, size, err := g.Latest(ctx, blob)
	if err != nil || v != a.Version || size != 2*pageSize {
		t.Fatalf("latest = %d %d %v", v, size, err)
	}
	recs, err := g.History(ctx, blob, 0, 10)
	if err != nil || len(recs) != 1 || recs[0].WriteID != 7 {
		t.Fatalf("history = %+v, %v", recs, err)
	}

	// Every mutation was quorum-acked; with an idle shard the followers
	// converge to the full log (create + assign + commit = 3 records).
	deadline := time.Now().Add(2 * time.Second)
	for j := 0; j < 3; j++ {
		for {
			st := ts.rep(j).Status()
			if st.LogLen == 3 && st.Blobs == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d stuck at %+v", j, st)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestFollowerRedirects(t *testing.T) {
	ts := newTestShard(t, 3, nil)
	ctx := context.Background()

	// Direct call to a follower must produce a parseable redirect.
	_, err := ts.rep(1).CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err == nil {
		t.Fatal("follower accepted a mutation")
	}
	leader, ok := ParseNotLeader(err)
	if !ok || leader != 0 {
		t.Fatalf("redirect = %v (leader %d, ok %v), want leader 0", err, leader, ok)
	}
}

func TestLeaderHandoffPreservesAckedWrites(t *testing.T) {
	ts := newTestShard(t, 3, nil)
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	var acked []meta.Version
	for i := 0; i < 5; i++ {
		a, err := g.AssignVersion(ctx, blob, uint64(100+i), 0, pageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Commit(ctx, blob, a.Version, true); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, a.Version)
	}

	// Kill the leader. Deterministic handoff: replica 1 is next in
	// index order.
	ts.kill(0)
	if l := ts.waitLeader(0, 5*time.Second); l != 1 {
		t.Errorf("handoff went to replica %d, want 1", l)
	}

	// Every acked commit must survive into the new leader.
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	v, _, err := g.Latest(cctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	if want := acked[len(acked)-1]; v != want {
		t.Fatalf("latest after handoff = %d, want %d", v, want)
	}

	// The shard keeps taking writes (quorum = 2 of 3 still live).
	a, err := g.AssignVersion(cctx, blob, 999, 0, pageSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(cctx, blob, a.Version, true); err != nil {
		t.Fatal(err)
	}

	// The old leader rejoins as a follower and catches up.
	ts.restart(0)
	deadline := time.Now().Add(5 * time.Second)
	lead := ts.rep(1).Status()
	for {
		st := ts.rep(0).Status()
		if !st.IsLeader && st.Term >= lead.Term && st.LogLen >= lead.LogLen && st.Blobs == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica stuck at %+v (leader %+v)", st, lead)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRestartedReplicaZeroDoesNotServeEmptyState(t *testing.T) {
	// A killed replica 0 restarted *before* anyone campaigns must not
	// reclaim its term-0 leadership with empty state: rejoining replicas
	// boot follower and redirect clients until the shard has a leader.
	ts := newTestShard(t, 2, func(_ int, cfg *ReplicaConfig) {
		// Slow elections: the restart happens well before any campaign.
		cfg.ElectionTimeout = 300 * time.Millisecond
	})
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.AssignVersion(ctx, blob, 1, 0, pageSize, false)
	if _, err := g.Commit(ctx, blob, a.Version, true); err != nil {
		t.Fatal(err)
	}

	ts.kill(0)
	ts.restart(0)

	// The rejoined replica must answer with a redirect, not empty data.
	if _, err := ts.rep(0).AssignVersion(ctx, blob, 2, 0, pageSize, false); err == nil {
		t.Fatal("rejoined replica 0 accepted a mutation before any election")
	} else if _, ok := ParseNotLeader(err); !ok && !IsUnavailable(err) {
		t.Fatalf("rejoined replica error = %v, want redirect or unavailable", err)
	}

	// Eventually the shard elects a leader holding the acked state.
	ts.waitLeader(-1, 5*time.Second)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	v, _, err := g.Latest(cctx, blob)
	if err != nil || v != a.Version {
		t.Fatalf("latest after rejoin = %d, %v, want %d", v, err, a.Version)
	}
}

func TestSnapshotCatchUpAfterTruncation(t *testing.T) {
	ts := newTestShard(t, 2, func(_ int, cfg *ReplicaConfig) {
		cfg.MaxLogRecords = 8 // force truncation quickly
	})
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}

	// With 2 replicas a deaf follower stalls every quorum (strict
	// majority): a mutation must fail, not ack. Use CreateBlob as the
	// probe — unlike an assign, a locally-executed-but-unacked create
	// cannot wedge later publications.
	ts.rep(1).SetNetFault(true)
	sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	_, err = ts.rep(0).CreateBlob(sctx, pageSize, capBytes, erasure.Redundancy{})
	cancel()
	if err == nil {
		t.Fatal("mutation quorum-acked with the only follower partitioned")
	}
	ts.rep(1).SetNetFault(false)

	// Healed: writes flow again, and enough of them truncate the log.
	var last meta.Version
	for i := 0; i < 30; i++ {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		a, err := g.AssignVersion(cctx, blob, uint64(10+i), 0, pageSize, false)
		if err != nil {
			cancel()
			t.Fatalf("write %d after heal: %v", i, err)
		}
		if _, err := g.Commit(cctx, blob, a.Version, true); err != nil {
			cancel()
			t.Fatalf("commit %d after heal: %v", i, err)
		}
		cancel()
		last = a.Version
	}
	if base := ts.rep(0).Status().LogBase; base == 0 {
		t.Error("leader log never truncated; test exercises nothing")
	}

	// Now a real snapshot catch-up: kill + restart the follower (comes
	// back empty, far behind the truncation horizon) and make sure it
	// reinstalls state by snapshot.
	ts.kill(1)
	ts.restart(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := ts.rep(1).Status()
		lead := ts.rep(0).Status()
		if st.Blobs == lead.Blobs && st.LogLen >= lead.LogLen && st.LogBase > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up by snapshot: %+v (leader %+v)", st, lead)
		}
		time.Sleep(time.Millisecond)
	}
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if v, _, err := g.Latest(cctx, blob); err != nil || v != last {
		t.Fatalf("latest after follower rejoin = %d, %v, want %d", v, err, last)
	}
}

func TestPartitionedLeaderCannotAck(t *testing.T) {
	ts := newTestShard(t, 3, nil)
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}

	// Partition the leader. Its own clients get "unavailable"; the
	// remaining majority elects a new leader and keeps going.
	ts.rep(0).SetNetFault(true)
	if _, err := ts.rep(0).AssignVersion(ctx, blob, 1, 0, pageSize, false); !IsUnavailable(err) {
		t.Fatalf("partitioned leader error = %v, want unavailable", err)
	}
	newLead := ts.waitLeader(0, 5*time.Second)

	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	a, err := g.AssignVersion(cctx, blob, 2, 0, pageSize, false)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, err := g.Commit(cctx, blob, a.Version, true); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	// Heal: the deposed leader must step down (higher term wins) and
	// resync to the majority's state.
	ts.rep(0).SetNetFault(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := ts.rep(0).Status()
		lead := ts.rep(newLead).Status()
		if !st.IsLeader && st.Term == lead.Term && st.LogLen >= lead.LogLen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed ex-leader never converged: %+v (leader %+v)", st, lead)
		}
		time.Sleep(time.Millisecond)
	}
}

// gateStore wraps a fakeStore; while blocked it wedges StoreNodes until
// the context dies — the "slow metadata plane" fault for repair tests.
type gateStore struct {
	*fakeStore
	blocked chan struct{} // closed = pass through
}

func (g *gateStore) StoreNodes(ctx context.Context, nodes []meta.Node) error {
	select {
	case <-g.blocked:
	case <-ctx.Done():
		return ctx.Err()
	}
	return g.fakeStore.StoreNodes(ctx, nodes)
}

func TestRepairSurvivesHandoff(t *testing.T) {
	// PR 5 pinned the abort path: the abort mark lands before the repair
	// fill, so a crash between the two leaves a repairable orphan, never
	// a version that can be re-admitted. Extend that across a leader
	// change: the leader dies after quorum-acking the abort but before
	// the fill completes; the next leader must finish the fill.
	shared := newFakeStore()
	gate := &gateStore{fakeStore: shared, blocked: make(chan struct{})}
	ts := newTestShard(t, 2, func(j int, cfg *ReplicaConfig) {
		cfg.Manager.RepairTimeout = 25 * time.Millisecond
		cfg.Manager.RepairScan = 10 * time.Millisecond
		if j == 0 {
			cfg.Manager.Store = gate // leader's fill wedges
		} else {
			cfg.Manager.Store = shared
		}
	})
	g := ts.client()
	ctx := context.Background()

	blob, err := g.CreateBlob(ctx, pageSize, capBytes, erasure.Redundancy{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := g.AssignVersion(ctx, blob, 11, 0, 2*pageSize, false)
	if err != nil {
		t.Fatal(err)
	}

	// Abort v1. The abort mark quorum-acks, then the leader's fill hangs
	// on its gated store until the bounded repair context dies — Abort
	// returns an error, leaving an aborted-but-uncommitted orphan.
	if err := g.Abort(ctx, blob, a1.Version); err == nil {
		t.Fatal("abort fill succeeded through a wedged store")
	}
	// The follower has the abort mark (it was quorum-acked).
	recs, err := g.History(ctx, blob, 0, 10)
	if err != nil || len(recs) != 1 || !recs[0].Aborted {
		t.Fatalf("history after abort = %+v, %v", recs, err)
	}

	// Leader dies mid-repair; the survivor campaigns. With 2 replicas a
	// lone survivor may self-elect but cannot ack mutations until its
	// peer returns (strict quorum), so restart the dead one too.
	ts.kill(0)
	ts.restart(0)
	newLead := ts.waitLeader(-1, 5*time.Second)

	// The new leader's RepairOrphans (or repair scan) must finish the
	// fill through its *unblocked* store and publish v1 as a no-op.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		v, _, err := g.Latest(cctx, blob)
		cancel()
		if err == nil && v == a1.Version {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned abort never repaired (leader %d): latest = %d, %v", newLead, v, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead writer's late commit stays rejected after the handoff
	// (the wire flattens ErrAborted to a server-error string, so just
	// require rejection).
	if _, err := g.Commit(ctx, blob, a1.Version, false); err == nil {
		t.Fatal("late commit accepted after repaired handoff")
	}

	// And the repaired leaves reference the zero page (fresh blob).
	n, err := shared.FetchNode(ctx, meta.NodeKey{
		Blob: blob, Version: a1.Version, Range: meta.NodeRange{Start: 0, Size: 1},
	})
	if err != nil {
		t.Fatalf("repaired leaf missing: %v", err)
	}
	if n.Leaf.Write != 0 {
		t.Errorf("repaired leaf = write %d, want 0 (zero page)", n.Leaf.Write)
	}
}

func TestShardOfStableAndBalanced(t *testing.T) {
	// Placement must be deterministic (same blob -> same shard, every
	// call) and must actually use all shards.
	const shards = 4
	seen := make(map[int]int)
	for id := uint64(1); id <= 512; id++ {
		s := ShardOf(shards, id)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%d) = %d out of range", id, s)
		}
		if again := ShardOf(shards, id); again != s {
			t.Fatalf("ShardOf(%d) unstable: %d then %d", id, s, again)
		}
		seen[s]++
	}
	for s := 0; s < shards; s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d never chosen over 512 ids", s)
		}
	}
}

func TestParseGroupAddrs(t *testing.T) {
	g, err := ParseGroupAddrs("a:1,b:1;c:1,d:1")
	if err != nil || len(g) != 2 || len(g[0]) != 2 || g[1][1] != "d:1" {
		t.Fatalf("parse = %+v, %v", g, err)
	}
	single, err := ParseGroupAddrs("vm:rpc")
	if err != nil || len(single) != 1 || len(single[0]) != 1 {
		t.Fatalf("single parse = %+v, %v", single, err)
	}
	if _, err := ParseGroupAddrs(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := ParseGroupAddrs("a,;b"); err == nil {
		t.Error("empty replica entry accepted")
	}
}
