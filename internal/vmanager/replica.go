package vmanager

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/meta"
	"blob/internal/rpc"
	"blob/internal/wire"
)

// Replica wraps a Manager as one member of a replicated vmanager shard
// (docs/vmanager-group.md). Exactly one replica per shard acts as
// leader: it executes client mutations against its Manager, appends a
// LogRecord per mutation to the shard's publish log, and acks the
// client only after a follower quorum has applied the record. Followers
// replay the log; on leader death the deterministic handoff below
// promotes the live replica with the freshest state.
//
// Lock order: Replica.mu before Manager.mu, never the reverse.

// Replication RPC method identifiers (continuing the vmanager 0x05xx
// block).
const (
	MVmAppend  = 0x0510
	MVmStatus  = 0x0511
	MVmState   = 0x0512
	MVmInstall = 0x0513
)

func init() {
	rpc.RegisterMethodName(MVmAppend, "vmanager.MVmAppend")
	rpc.RegisterMethodName(MVmStatus, "vmanager.MVmStatus")
	rpc.RegisterMethodName(MVmState, "vmanager.MVmState")
	rpc.RegisterMethodName(MVmInstall, "vmanager.MVmInstall")
}

// Error vocabulary clients route on. NotLeader carries a redirect hint;
// unavailable errors are transient (quorum loss, partitions, handoffs)
// and worth retrying on another replica.
const (
	notLeaderPrefix   = "vmanager: not leader"
	unavailablePrefix = "vmanager: unavailable"
)

// NotLeaderError builds the redirect error a non-leader replica returns
// to client mutations. leader is the replica index to try next (may be
// the replica's possibly-stale belief).
func NotLeaderError(shard, leader int) error {
	return fmt.Errorf("%s (shard %d, try replica %d)", notLeaderPrefix, shard, leader)
}

// ParseNotLeader recognizes a NotLeaderError (locally or over RPC) and
// extracts the leader hint (-1 if none parsed).
func ParseNotLeader(err error) (leader int, ok bool) {
	if err == nil {
		return 0, false
	}
	s := err.Error()
	i := strings.Index(s, notLeaderPrefix)
	if i < 0 {
		return 0, false
	}
	leader = -1
	if j := strings.Index(s[i:], "try replica "); j >= 0 {
		fmt.Sscanf(s[i+j:], "try replica %d", &leader)
	}
	return leader, true
}

// IsUnavailable recognizes the transient replica errors (partitioned,
// no quorum, handoff in progress) that a group client retries.
func IsUnavailable(err error) bool {
	return err != nil && strings.Contains(err.Error(), unavailablePrefix)
}

func unavailableErr(why string) error {
	return fmt.Errorf("%s: %s", unavailablePrefix, why)
}

// Replica roles.
const (
	roleFollower = iota
	roleLeader
)

// ReplicaConfig parameterizes one shard member.
type ReplicaConfig struct {
	// Shard is this shard's index; Shards is the group's shard count
	// (blob ids are accepted only if the ring places them here).
	Shard, Shards int
	// Index is this replica's position in Peers; Peers lists every
	// replica address of this shard, leader included.
	Index int
	Peers []string
	// Pool carries the replication RPCs to peers.
	Pool *rpc.Pool
	// Heartbeat is the leader's idle append interval (default 100ms).
	Heartbeat time.Duration
	// ElectionTimeout is the base silence a follower tolerates before
	// campaigning; replica i waits ElectionTimeout*(1+distance) where
	// distance is its ring distance from the dead leader, so handoff is
	// deterministic (default 10*Heartbeat).
	ElectionTimeout time.Duration
	// QuorumTimeout bounds how long a mutation waits for follower acks
	// (default 2*ElectionTimeout).
	QuorumTimeout time.Duration
	// MaxLogRecords caps the in-memory publish log; beyond it the
	// prefix is dropped and lagging followers catch up by checkpoint
	// snapshot instead (default 4096).
	MaxLogRecords int
	// AppendDelay simulates per-record append durability cost, slept
	// while holding the shard's serializing lock — the bench knob that
	// makes per-shard throughput measurable (default 0).
	AppendDelay time.Duration
	// Rejoin marks a replica that is restarting into an existing shard:
	// it boots as a follower even at Index 0, because the deterministic
	// term-0 leadership only belongs to a cold-booting group — a
	// restarted replica 0 claiming it could serve empty state to clients
	// until the live leader's first message deposed it.
	Rejoin bool
	// Manager configures the wrapped Manager. Replicate is overwritten.
	Manager Config
	// Logf, if set, receives handoff/resync events.
	Logf func(format string, args ...any)
	// Journal, if set, records cluster events (elections, term
	// changes, truncation, snapshot installs) for the monitor plane.
	Journal *events.Journal
}

func (c *ReplicaConfig) defaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 10 * c.Heartbeat
	}
	if c.QuorumTimeout <= 0 {
		c.QuorumTimeout = 2 * c.ElectionTimeout
	}
	if c.MaxLogRecords <= 0 {
		c.MaxLogRecords = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Replica is one member of a replicated vmanager shard.
type Replica struct {
	cfg ReplicaConfig

	mu       sync.Mutex
	mgr      *Manager
	log      []LogRecord // records (logBase, logBase+len]
	logBase  uint64      // highest truncated-away sequence number
	term     uint64
	role     int
	leader   int // believed leader index this term
	lastBeat time.Time
	// Leader-side per-peer replication state.
	ackSeq     []uint64 // highest seq each follower confirmed applied
	peerResync []bool   // follower asked for a snapshot
	needResync bool     // our own state diverged; expect a snapshot
	ackCh      chan struct{}
	closed     bool

	netFault atomic.Bool

	kick []chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewReplica builds and starts a shard member. Replica 0 boots as
// leader of term 0 (the deterministic initial assignment); everyone
// else boots follower. A restarted replica also boots this way — a
// stale claim to term 0 is deposed by the first message from the real
// leader's higher term.
func NewReplica(cfg ReplicaConfig) *Replica {
	cfg.defaults()
	r := &Replica{
		cfg:        cfg,
		role:       roleFollower,
		leader:     0,
		lastBeat:   time.Now(),
		ackSeq:     make([]uint64, len(cfg.Peers)),
		peerResync: make([]bool, len(cfg.Peers)),
		ackCh:      make(chan struct{}),
		stop:       make(chan struct{}),
	}
	mcfg := cfg.Manager
	mcfg.Replicate = r.replicateRepair
	r.mgr = New(mcfg)
	if cfg.Index == 0 && !cfg.Rejoin {
		r.role = roleLeader
	} else {
		r.mgr.SetPassive(true)
	}
	r.kick = make([]chan struct{}, len(cfg.Peers))
	for j := range cfg.Peers {
		if j == cfg.Index {
			continue
		}
		r.kick[j] = make(chan struct{}, 1)
		r.wg.Add(1)
		go r.sender(j)
	}
	if len(cfg.Peers) > 1 {
		r.wg.Add(1)
		go r.electionLoop()
	}
	return r
}

// Close stops replication and the wrapped manager.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.stop)
	r.broadcastLocked()
	mgr := r.mgr
	r.mu.Unlock()
	r.wg.Wait()
	mgr.Close()
}

// SetNetFault cuts the replica off from its peers and clients (both
// directions) without stopping it — the harness's partition primitive.
func (r *Replica) SetNetFault(fault bool) {
	r.netFault.Store(fault)
	if !fault {
		r.mu.Lock()
		// Healing resets the election timer so the replica listens for
		// the incumbent before campaigning.
		r.lastBeat = time.Now()
		r.mu.Unlock()
	}
}

// Manager exposes the wrapped manager (tests, checkpointing).
func (r *Replica) Manager() *Manager {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mgr
}

// ReplicaStatus is a replica's self-description (MVmStatus).
type ReplicaStatus struct {
	Shard, Index int
	Term         uint64
	IsLeader     bool
	Leader       int
	LogLen       uint64 // logBase + len(log): total records applied
	LogBase      uint64
	Blobs        uint64
}

// Status reports the replica's current role and log position.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Shard:    r.cfg.Shard,
		Index:    r.cfg.Index,
		Term:     r.term,
		IsLeader: r.role == roleLeader,
		Leader:   r.leader,
		LogLen:   r.logLenLocked(),
		LogBase:  r.logBase,
		Blobs:    uint64(len(r.mgr.Blobs())),
	}
}

func (r *Replica) logLenLocked() uint64 { return r.logBase + uint64(len(r.log)) }

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf("vmanager s%dr%d: "+format, append([]any{r.cfg.Shard, r.cfg.Index}, args...)...)
	}
}

// emit records a cluster event prefixed with this replica's identity.
// Safe when no journal is configured.
func (r *Replica) emit(sev events.Severity, typ events.Type, val int64, format string, args ...any) {
	r.cfg.Journal.Emit(sev, typ, val, "s%dr%d: "+format, append([]any{r.cfg.Shard, r.cfg.Index}, args...)...)
}

// leaderLocked gates a client call on this replica being the live
// leader.
func (r *Replica) leaderLocked() error {
	if r.netFault.Load() {
		return unavailableErr("partitioned")
	}
	if r.role != roleLeader {
		hint := r.leader
		if hint == r.cfg.Index {
			// A rejoined replica believes "itself" until it hears from
			// the incumbent; don't send clients in a circle.
			hint = -1
		}
		return NotLeaderError(r.cfg.Shard, hint)
	}
	return nil
}

// broadcastLocked wakes every quorum waiter.
func (r *Replica) broadcastLocked() {
	close(r.ackCh)
	r.ackCh = make(chan struct{})
}

// appendLocked assigns the next sequence number, appends the record,
// simulates append durability cost, truncates the log if oversized and
// kicks the senders. Caller holds r.mu and has already executed the
// mutation on the manager.
func (r *Replica) appendLocked(rec LogRecord) LogRecord {
	rec.Seq = r.logLenLocked() + 1
	r.log = append(r.log, rec)
	if r.cfg.AppendDelay > 0 {
		time.Sleep(r.cfg.AppendDelay)
	}
	r.truncateLocked()
	for j, ch := range r.kick {
		if j == r.cfg.Index || ch == nil {
			continue
		}
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	return rec
}

// truncateLocked reuses the checkpoint machinery as log truncation:
// once the in-memory log exceeds MaxLogRecords the older half is
// dropped, and any follower that still needed it is resynced with a
// full state snapshot instead.
func (r *Replica) truncateLocked() {
	if len(r.log) <= r.cfg.MaxLogRecords {
		return
	}
	drop := len(r.log) - r.cfg.MaxLogRecords/2
	r.logBase += uint64(drop)
	r.log = append([]LogRecord(nil), r.log[drop:]...)
	r.emit(events.SevInfo, events.LogTruncate, int64(drop),
		"dropped %d publish-log records (base now %d)", drop, r.logBase)
}

// stepDownLocked demotes a leader (or re-aims a follower) to follow
// leaderIdx at term. A deposed leader may hold un-acked divergent
// records, so it always asks for a snapshot resync.
func (r *Replica) stepDownLocked(term uint64, leaderIdx int) {
	wasLeader := r.role == roleLeader
	termChanged := term != r.term
	r.term = term
	r.role = roleFollower
	r.leader = leaderIdx
	r.lastBeat = time.Now()
	if wasLeader {
		r.needResync = true
		r.mgr.SetPassive(true)
		r.logf("stepping down to follower of r%d at term %d (resync pending)", leaderIdx, term)
		r.emit(events.SevWarn, events.ElectionLost, int64(term),
			"deposed; following r%d at term %d", leaderIdx, term)
	} else if termChanged {
		r.emit(events.SevInfo, events.TermChange, int64(term),
			"adopted term %d under leader r%d", term, leaderIdx)
	}
	r.broadcastLocked()
}

// waitQuorum blocks until ceil(n/2) of the shard's followers have
// acknowledged seq (i.e. a majority of replicas, leader included, hold
// the record), the replica loses leadership, or time runs out.
func (r *Replica) waitQuorum(ctx context.Context, term, seq uint64) error {
	need := len(r.cfg.Peers) / 2 // follower acks; self is the +1
	if need == 0 {
		return nil
	}
	timer := time.NewTimer(r.cfg.QuorumTimeout)
	defer timer.Stop()
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return unavailableErr("replica closed")
		}
		if r.term != term || r.role != roleLeader {
			r.mu.Unlock()
			return unavailableErr("leadership lost during replication")
		}
		got := 0
		for j, ack := range r.ackSeq {
			if j != r.cfg.Index && ack >= seq {
				got++
			}
		}
		if got >= need {
			r.mu.Unlock()
			return nil
		}
		ch := r.ackCh
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			return unavailableErr(fmt.Sprintf("no follower quorum for seq %d (shard %d)", seq, r.cfg.Shard))
		case <-r.stop:
			return unavailableErr("replica closed")
		}
		r.mu.Lock()
	}
}

// replicateRepair is the Manager's Config.Replicate hook: the repair
// path's abort mark and repaired-publish flow through here so they
// enter the log in execution order.
func (r *Replica) replicateRepair(op uint8, blob uint64, v meta.Version) error {
	r.mu.Lock()
	if err := r.leaderLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	term := r.term
	var err error
	switch op {
	case OpAbort:
		_, err = r.mgr.markAborted(blob, v)
	case OpRepaired:
		err = r.mgr.applyRepaired(blob, v)
	default:
		err = fmt.Errorf("vmanager: replicate: unexpected op %d", op)
	}
	if err != nil {
		r.mu.Unlock()
		return err
	}
	rec := r.appendLocked(LogRecord{Op: op, Blob: blob, Version: v})
	r.mu.Unlock()
	return r.waitQuorum(context.Background(), term, rec.Seq)
}

// --- Client-facing mutations (leader only) ---

// CreateBlob allocates a blob whose id this shard owns, replicated to
// quorum before returning.
func (r *Replica) CreateBlob(ctx context.Context, pageSize, capacityBytes uint64, red erasure.Redundancy) (uint64, error) {
	r.mu.Lock()
	if err := r.leaderLocked(); err != nil {
		r.mu.Unlock()
		return 0, err
	}
	term := r.term
	id, err := r.mgr.CreateBlobOwned(pageSize, capacityBytes, red, r.owns)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	rec := r.appendLocked(LogRecord{
		Op: OpCreate, Blob: id, PageSize: pageSize, Capacity: capacityBytes,
		K: uint8(red.K), M: uint8(red.M),
	})
	r.mu.Unlock()
	if err := r.waitQuorum(ctx, term, rec.Seq); err != nil {
		return 0, err
	}
	return id, nil
}

// owns reports whether the group's ring places blob id on this shard.
func (r *Replica) owns(id uint64) bool {
	return ShardOf(r.cfg.Shards, id) == r.cfg.Shard
}

// AssignVersion serializes a write, quorum-replicating the (already
// append-resolved) assignment.
func (r *Replica) AssignVersion(ctx context.Context, blob, writeID, offset, length uint64, isAppend bool) (Assignment, error) {
	r.mu.Lock()
	if err := r.leaderLocked(); err != nil {
		r.mu.Unlock()
		return Assignment{}, err
	}
	term := r.term
	a, err := r.mgr.AssignVersion(blob, writeID, offset, length, isAppend)
	if err != nil {
		r.mu.Unlock()
		return Assignment{}, err
	}
	rec := r.appendLocked(LogRecord{
		Op: OpAssign, Blob: blob, Version: a.Version,
		WriteID: writeID, Offset: a.Offset, Length: length,
	})
	r.mu.Unlock()
	if err := r.waitQuorum(ctx, term, rec.Seq); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// Commit marks a version committed; the commit record is quorum-acked
// before the call returns (and before the blocking wait, so an acked
// commit survives leader death).
func (r *Replica) Commit(ctx context.Context, blob uint64, v meta.Version, block bool) (meta.Version, error) {
	r.mu.Lock()
	if err := r.leaderLocked(); err != nil {
		r.mu.Unlock()
		return 0, err
	}
	term := r.term
	pub, transitioned, err := r.mgr.commitObserve(blob, v)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	var seq uint64
	if transitioned {
		seq = r.appendLocked(LogRecord{Op: OpCommit, Blob: blob, Version: v}).Seq
	}
	mgr := r.mgr
	r.mu.Unlock()
	if transitioned {
		if err := r.waitQuorum(ctx, term, seq); err != nil {
			return 0, err
		}
	}
	if !block {
		return pub, nil
	}
	return mgr.WaitPublished(ctx, blob, v)
}

// Abort withdraws a version. The abort mark is quorum-acked first; the
// repair fill then runs on a background context so a slow metadata
// store cannot wedge the client (and a leader crash mid-fill leaves an
// orphan the next leader repairs — see RepairOrphans).
func (r *Replica) Abort(ctx context.Context, blob uint64, v meta.Version) error {
	r.mu.Lock()
	if err := r.leaderLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	term := r.term
	changed, err := r.mgr.markAborted(blob, v)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	var seq uint64
	if changed {
		seq = r.appendLocked(LogRecord{Op: OpAbort, Blob: blob, Version: v}).Seq
	}
	mgr := r.mgr
	r.mu.Unlock()
	if changed {
		if err := r.waitQuorum(ctx, term, seq); err != nil {
			return err
		}
	}
	if mgr.cfg.RepairTimeout > 0 {
		rctx, cancel := context.WithTimeout(context.Background(), 4*mgr.cfg.RepairTimeout)
		defer cancel()
		return mgr.repairVersion(rctx, blob, v)
	}
	return nil
}

// --- RPC wiring ---

// RegisterHandlers wires both the client-facing vmanager methods and
// the shard replication protocol onto srv.
func (r *Replica) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MCreate, r.handleCreate)
	srv.Handle(MInfo, r.readHandler(func(m *Manager, ctx context.Context, b []byte) ([]byte, error) { return m.handleInfo(ctx, b) }))
	srv.Handle(MAssign, r.handleAssign)
	srv.Handle(MCommit, r.handleCommit)
	srv.Handle(MAbort, r.handleAbort)
	srv.Handle(MLatest, r.readHandler(func(m *Manager, ctx context.Context, b []byte) ([]byte, error) { return m.handleLatest(ctx, b) }))
	srv.Handle(MVersionInfo, r.readHandler(func(m *Manager, ctx context.Context, b []byte) ([]byte, error) { return m.handleVersionInfo(ctx, b) }))
	srv.Handle(MHistory, r.readHandler(func(m *Manager, ctx context.Context, b []byte) ([]byte, error) { return m.handleHistory(ctx, b) }))
	srv.Handle(MBlobs, r.readHandler(func(m *Manager, ctx context.Context, b []byte) ([]byte, error) { return m.handleBlobs(ctx, b) }))
	srv.Handle(MVmAppend, r.handleVmAppend)
	srv.Handle(MVmStatus, r.handleVmStatus)
	srv.Handle(MVmState, r.handleVmState)
	srv.Handle(MVmInstall, r.handleVmInstall)
}

// readHandler serves a read from the local manager, leader-gated so
// clients never observe a stale follower's state.
func (r *Replica) readHandler(h func(*Manager, context.Context, []byte) ([]byte, error)) rpc.HandlerFunc {
	return func(ctx context.Context, body []byte) ([]byte, error) {
		r.mu.Lock()
		err := r.leaderLocked()
		mgr := r.mgr
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return h(mgr, ctx, body)
	}
}

func (r *Replica) handleCreate(ctx context.Context, body []byte) ([]byte, error) {
	rd := wire.NewReader(body)
	pageSize := rd.Uint64()
	capacity := rd.Uint64()
	red := erasure.Redundancy{K: int(rd.Uint8()), M: int(rd.Uint8())}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager create: %w", err)
	}
	id, err := r.CreateBlob(ctx, pageSize, capacity, red)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8)
	w.Uint64(id)
	return w.Bytes(), nil
}

func (r *Replica) handleAssign(ctx context.Context, body []byte) ([]byte, error) {
	rd := wire.NewReader(body)
	blob := rd.Uint64()
	writeID := rd.Uint64()
	offset := rd.Uint64()
	length := rd.Uint64()
	isAppend := rd.Bool()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager assign: %w", err)
	}
	a, err := r.AssignVersion(ctx, blob, writeID, offset, length, isAppend)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(32 + 24*len(a.Borders))
	w.Uint64(a.Version)
	w.Uint64(a.Offset)
	w.Uvarint(uint64(len(a.Borders)))
	for _, b := range a.Borders {
		w.Uvarint(b.Child.Start)
		w.Uvarint(b.Child.Size)
		w.Uvarint(b.Ver)
	}
	return w.Bytes(), nil
}

func (r *Replica) handleCommit(ctx context.Context, body []byte) ([]byte, error) {
	rd := wire.NewReader(body)
	blob := rd.Uint64()
	v := rd.Uint64()
	block := rd.Bool()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager commit: %w", err)
	}
	pub, err := r.Commit(ctx, blob, v, block)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(8)
	w.Uint64(pub)
	return w.Bytes(), nil
}

func (r *Replica) handleAbort(ctx context.Context, body []byte) ([]byte, error) {
	rd := wire.NewReader(body)
	blob := rd.Uint64()
	v := rd.Uint64()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager abort: %w", err)
	}
	if err := r.Abort(ctx, blob, v); err != nil {
		return nil, err
	}
	return nil, nil
}

// --- Replication protocol ---

// Append request: term u64, leader u8, prevSeq u64, framed records.
// Append/install response: term u64, leader u8, logLen u64, flags u8.
const (
	respResync   = 1 << 0
	respRejected = 1 << 1
)

func encodeAppendResp(term uint64, leader int, logLen uint64, flags uint8) []byte {
	w := wire.NewWriter(18)
	w.Uint64(term)
	w.Uint8(uint8(leader))
	w.Uint64(logLen)
	w.Uint8(flags)
	return w.Bytes()
}

type appendResp struct {
	term   uint64
	leader int
	logLen uint64
	flags  uint8
}

func decodeAppendResp(body []byte) (appendResp, error) {
	rd := wire.NewReader(body)
	resp := appendResp{
		term:   rd.Uint64(),
		leader: int(rd.Uint8()),
		logLen: rd.Uint64(),
		flags:  rd.Uint8(),
	}
	return resp, rd.Err()
}

// acceptLeaderLocked runs the term/leader admission shared by append
// and install. It returns a rejection response if the sender is stale,
// or nil if the sender is (now) our leader.
func (r *Replica) acceptLeaderLocked(term uint64, leaderIdx int) []byte {
	switch {
	case term < r.term:
		return encodeAppendResp(r.term, r.leader, r.logLenLocked(), respRejected)
	case term > r.term:
		r.stepDownLocked(term, leaderIdx)
	default: // same term
		if r.role == roleLeader || r.leader != leaderIdx {
			// Two claimants in one term (possible only under extreme
			// timer coincidence): the lowest replica index wins, the
			// loser resyncs.
			if leaderIdx < r.leaderClaimLocked() {
				r.stepDownLocked(term, leaderIdx)
			} else {
				return encodeAppendResp(r.term, r.leaderClaimLocked(), r.logLenLocked(), respRejected)
			}
		}
	}
	r.lastBeat = time.Now()
	return nil
}

// leaderClaimLocked is who we currently believe leads this term —
// ourselves if we are leader.
func (r *Replica) leaderClaimLocked() int {
	if r.role == roleLeader {
		return r.cfg.Index
	}
	return r.leader
}

func (r *Replica) handleVmAppend(_ context.Context, body []byte) ([]byte, error) {
	if r.netFault.Load() {
		return nil, unavailableErr("partitioned")
	}
	rd := wire.NewReader(body)
	term := rd.Uint64()
	leaderIdx := int(rd.Uint8())
	prevSeq := rd.Uint64()
	payload := rd.Raw(rd.Remaining())
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager append: %w", err)
	}
	recs, err := DecodeLogRecords(payload)
	if err != nil {
		return nil, fmt.Errorf("vmanager append: %w", err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if rej := r.acceptLeaderLocked(term, leaderIdx); rej != nil {
		return rej, nil
	}
	if r.needResync {
		return encodeAppendResp(r.term, r.leader, r.logLenLocked(), respResync), nil
	}
	if prevSeq > r.logLenLocked() {
		// Gap: we are missing records before this batch. Report our
		// length; the leader backs up (or snapshots us).
		return encodeAppendResp(r.term, r.leader, r.logLenLocked(), 0), nil
	}
	for _, rec := range recs {
		cur := r.logLenLocked()
		if rec.Seq <= cur {
			continue // duplicate delivery
		}
		if rec.Seq != cur+1 {
			break // gap inside batch (cannot happen with a correct leader)
		}
		if err := r.mgr.ApplyRecord(rec); err != nil {
			// Divergence: stop applying and ask for a snapshot.
			r.needResync = true
			r.logf("apply seq %d failed (%v); requesting resync", rec.Seq, err)
			return encodeAppendResp(r.term, r.leader, cur, respResync), nil
		}
		r.log = append(r.log, rec)
		r.truncateLocked()
	}
	return encodeAppendResp(r.term, r.leader, r.logLenLocked(), 0), nil
}

func (r *Replica) handleVmStatus(_ context.Context, _ []byte) ([]byte, error) {
	if r.netFault.Load() {
		return nil, unavailableErr("partitioned")
	}
	st := r.Status()
	w := wire.NewWriter(64)
	w.Uint32(uint32(st.Shard))
	w.Uint32(uint32(st.Index))
	w.Uint64(st.Term)
	w.Bool(st.IsLeader)
	w.Uint32(uint32(st.Leader))
	w.Uint64(st.LogLen)
	w.Uint64(st.LogBase)
	w.Uint64(st.Blobs)
	return w.Bytes(), nil
}

// DecodeReplicaStatus parses an MVmStatus response.
func DecodeReplicaStatus(body []byte) (ReplicaStatus, error) {
	rd := wire.NewReader(body)
	st := ReplicaStatus{
		Shard:    int(rd.Uint32()),
		Index:    int(rd.Uint32()),
		Term:     rd.Uint64(),
		IsLeader: rd.Bool(),
		Leader:   int(rd.Uint32()),
		LogLen:   rd.Uint64(),
		LogBase:  rd.Uint64(),
		Blobs:    rd.Uint64(),
	}
	return st, rd.Err()
}

// handleVmState serves the full-state snapshot: term u64, logLen u64,
// checkpoint stream. Candidates pull it to adopt the freshest state;
// leaders push it (as MVmInstall) to lagging followers.
func (r *Replica) handleVmState(_ context.Context, _ []byte) ([]byte, error) {
	if r.netFault.Load() {
		return nil, unavailableErr("partitioned")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf bytes.Buffer
	if err := r.mgr.Checkpoint(&buf); err != nil {
		return nil, err
	}
	w := wire.NewWriter(24 + buf.Len())
	w.Uint64(r.term)
	w.Uint64(r.logLenLocked())
	w.Raw(buf.Bytes())
	return w.Bytes(), nil
}

func (r *Replica) handleVmInstall(_ context.Context, body []byte) ([]byte, error) {
	if r.netFault.Load() {
		return nil, unavailableErr("partitioned")
	}
	rd := wire.NewReader(body)
	term := rd.Uint64()
	leaderIdx := int(rd.Uint8())
	seq := rd.Uint64()
	ckpt := rd.Raw(rd.Remaining())
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("vmanager install: %w", err)
	}

	r.mu.Lock()
	if rej := r.acceptLeaderLocked(term, leaderIdx); rej != nil {
		r.mu.Unlock()
		return rej, nil
	}
	if err := r.installLocked(seq, ckpt); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	resp := encodeAppendResp(r.term, r.leader, r.logLenLocked(), 0)
	r.mu.Unlock()
	return resp, nil
}

// installLocked replaces the local manager with a restored snapshot at
// log position seq. The old manager is closed asynchronously (Close
// joins its repair loop, which may be lock-ordered behind us).
func (r *Replica) installLocked(seq uint64, ckpt []byte) error {
	mcfg := r.cfg.Manager
	mcfg.Replicate = r.replicateRepair
	mgr, err := Restore(bytes.NewReader(ckpt), mcfg)
	if err != nil {
		return fmt.Errorf("vmanager install: %w", err)
	}
	if r.role != roleLeader {
		mgr.SetPassive(true)
	}
	old := r.mgr
	r.mgr = mgr
	r.log = nil
	r.logBase = seq
	r.needResync = false
	r.logf("installed snapshot at seq %d", seq)
	r.emit(events.SevInfo, events.SnapshotInstall, int64(seq),
		"installed leader snapshot at seq %d", seq)
	go old.Close()
	return nil
}

// --- Leader-side replication senders ---

// sender keeps one follower in sync: batched log appends when the
// follower is within the log window, a checkpoint snapshot when it fell
// behind the truncation horizon or asked to resync, and heartbeats
// (empty appends) when idle.
func (r *Replica) sender(peer int) {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		case <-r.kick[peer]:
		}
		// Drain until the follower is caught up (or we stop leading).
		for r.syncPeer(peer) {
		}
	}
}

// syncPeer makes one replication RPC to the follower; it reports
// whether more records remain to push.
func (r *Replica) syncPeer(peer int) bool {
	r.mu.Lock()
	if r.closed || r.role != roleLeader || r.netFault.Load() {
		r.mu.Unlock()
		return false
	}
	term := r.term
	method := uint32(MVmAppend)
	var body []byte
	fLen := r.ackSeq[peer]
	switch {
	case r.peerResync[peer] || fLen < r.logBase:
		// Beyond the log window: push the whole state.
		var buf bytes.Buffer
		if err := r.mgr.Checkpoint(&buf); err != nil {
			r.mu.Unlock()
			return false
		}
		method = MVmInstall
		w := wire.NewWriter(24 + buf.Len())
		w.Uint64(term)
		w.Uint8(uint8(r.cfg.Index))
		w.Uint64(r.logLenLocked())
		w.Raw(buf.Bytes())
		body = w.Bytes()
	default:
		batch := r.log[fLen-r.logBase:]
		const maxBatch = 256
		if len(batch) > maxBatch {
			batch = batch[:maxBatch]
		}
		w := wire.NewWriter(24 + 64*len(batch))
		w.Uint64(term)
		w.Uint8(uint8(r.cfg.Index))
		w.Uint64(fLen)
		w.Raw(EncodeLogRecords(batch))
		body = w.Bytes()
	}
	addr := r.cfg.Peers[peer]
	r.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 4*r.cfg.Heartbeat)
	respBody, err := r.cfg.Pool.Call(ctx, addr, method, body)
	cancel()
	if err != nil {
		return false // dead or partitioned peer; heartbeat retries
	}
	resp, err := decodeAppendResp(respBody)
	if err != nil {
		return false
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.term != term || r.role != roleLeader {
		return false
	}
	if resp.flags&respRejected != 0 {
		if resp.term > r.term {
			r.stepDownLocked(resp.term, resp.leader)
		} else if resp.term == r.term && resp.leader < r.cfg.Index {
			// Same-term claimant with a lower index wins the tie.
			r.stepDownLocked(resp.term, resp.leader)
		}
		return false
	}
	r.peerResync[peer] = resp.flags&respResync != 0
	if resp.logLen > r.logLenLocked() {
		// The follower holds a log tail we never saw: un-acked records
		// a dead leader appended locally, on a replica our campaign did
		// not reach (acked records always survive into the new leader —
		// the campaign and ack quorums intersect). Overwrite it with a
		// snapshot rather than letting a bogus ackSeq satisfy quorums.
		r.peerResync[peer] = true
		r.ackSeq[peer] = 0
		return true
	}
	if resp.logLen > r.ackSeq[peer] || method == MVmInstall {
		r.ackSeq[peer] = resp.logLen
		r.broadcastLocked()
	} else if resp.logLen < r.ackSeq[peer] {
		// Follower went backwards (restarted empty): resend from its
		// actual position.
		r.ackSeq[peer] = resp.logLen
	}
	return !r.peerResync[peer] && r.ackSeq[peer] < r.logLenLocked()
}

// --- Elections ---

// electionLoop watches for leader silence. The wait is staggered by
// ring distance from the dead leader — the next replica in index order
// fires a full ElectionTimeout before the one after it — making
// handoff deterministic when timers are respected, while the campaign
// quorum keeps it safe when they are not.
func (r *Replica) electionLoop() {
	defer r.wg.Done()
	tick := r.cfg.ElectionTimeout / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		if r.closed || r.role == roleLeader || r.netFault.Load() {
			r.mu.Unlock()
			continue
		}
		n := len(r.cfg.Peers)
		distance := (r.cfg.Index - r.leader - 1 + n) % n
		wait := r.cfg.ElectionTimeout * time.Duration(1+distance)
		if time.Since(r.lastBeat) < wait {
			r.mu.Unlock()
			continue
		}
		startTerm := r.term
		r.mu.Unlock()
		r.campaign(startTerm)
	}
}

// campaign polls the shard for the freshest state and promotes this
// replica if it can reach a quorum and no live leader objects. The
// candidate adopts the highest (term, logLen) state it sees before
// promoting at maxTerm+1, so every quorum-acked record survives the
// handoff: the ack quorum and the campaign quorum always intersect.
func (r *Replica) campaign(startTerm uint64) {
	n := len(r.cfg.Peers)
	reached := 1 // self
	maxTerm := startTerm
	bestTerm, bestLen := startTerm, uint64(0)
	r.mu.Lock()
	bestLen = r.logLenLocked()
	r.mu.Unlock()
	bestPeer := -1

	for j, addr := range r.cfg.Peers {
		if j == r.cfg.Index {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 4*r.cfg.Heartbeat)
		respBody, err := r.cfg.Pool.Call(ctx, addr, MVmStatus, nil)
		cancel()
		if err != nil {
			continue
		}
		st, err := DecodeReplicaStatus(respBody)
		if err != nil {
			continue
		}
		reached++
		if st.Term > maxTerm {
			maxTerm = st.Term
		}
		if st.IsLeader && st.Term >= startTerm {
			// A live leader at our term or newer: follow it.
			r.mu.Lock()
			if r.term <= st.Term {
				r.term = st.Term
				r.role = roleFollower
				r.leader = st.Index
				r.lastBeat = time.Now()
			}
			r.mu.Unlock()
			return
		}
		if st.Term > bestTerm || (st.Term == bestTerm && st.LogLen > bestLen) {
			bestTerm, bestLen, bestPeer = st.Term, st.LogLen, j
		}
	}

	// Safety: the campaign set must intersect every possible ack set
	// (ceil(n/2) replicas, self included).
	if reached < n-n/2 {
		r.logf("campaign reached %d/%d replicas; not enough for a safe takeover", reached, n)
		return
	}

	// Adopt the freshest state seen, if it beats our own.
	if bestPeer >= 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*r.cfg.Heartbeat)
		respBody, err := r.cfg.Pool.Call(ctx, r.cfg.Peers[bestPeer], MVmState, nil)
		cancel()
		if err != nil {
			return // retry next tick
		}
		rd := wire.NewReader(respBody)
		rd.Uint64() // peer's term, already folded into maxTerm
		seq := rd.Uint64()
		ckpt := rd.Raw(rd.Remaining())
		if err := rd.Err(); err != nil {
			return
		}
		r.mu.Lock()
		if r.term != startTerm || r.role != roleFollower || r.closed {
			r.mu.Unlock()
			return
		}
		if seq >= r.logLenLocked() {
			if err := r.installLocked(seq, ckpt); err != nil {
				r.mu.Unlock()
				return
			}
		}
		r.mu.Unlock()
	}

	r.mu.Lock()
	if r.term != startTerm || r.role != roleFollower || r.closed || r.netFault.Load() {
		r.mu.Unlock()
		return
	}
	r.term = maxTerm + 1
	r.role = roleLeader
	r.leader = r.cfg.Index
	r.needResync = false
	for j := range r.ackSeq {
		r.ackSeq[j] = 0
		r.peerResync[j] = false
	}
	mgr := r.mgr
	mgr.SetPassive(false)
	r.broadcastLocked()
	for j, ch := range r.kick {
		if j == r.cfg.Index || ch == nil {
			continue
		}
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	term := r.term
	r.mu.Unlock()
	r.logf("promoted to leader at term %d", term)
	r.emit(events.SevInfo, events.ElectionWon, int64(term), "leads at term %d", term)

	// Finish what the dead leader started: fill any version that was
	// abort-marked but never repaired.
	if mgr.cfg.RepairTimeout > 0 {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 4*mgr.cfg.RepairTimeout)
			defer cancel()
			mgr.RepairOrphans(ctx)
		}()
	}
}
