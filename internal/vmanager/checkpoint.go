package vmanager

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/wire"
)

// Checkpointing addresses the paper's acknowledged single point of
// failure: "we plan to also include fault-tolerance mechanisms for the
// entities that currently represent single points of failure (version
// manager, provider manager)". The version manager's entire state — blob
// geometry, version counters, logical sizes, the write history and the
// pending set — serializes to a stream; Restore rebuilds the manager,
// reconstructing each blob's interval-version map by replaying its write
// history in version order. Data and metadata live on the providers and
// the DHT and need no recovery.

// checkpointMagic identifies the stream format. G2 added the per-blob
// redundancy mode (docs/erasure.md); new checkpoints are written as G2,
// and G1 streams from pre-erasure builds still restore (every blob in
// them predates rs modes, so they decode as replicated) — the
// checkpoint is the version manager's only durable state, and an
// upgrade must never strand it.
const (
	checkpointMagic   = 0x424c4f42564d4732 // "BLOBVMG2"
	checkpointMagicG1 = 0x424c4f42564d4731 // "BLOBVMG1"
)

// Checkpoint writes the manager's full state to w. It holds the manager
// lock for the duration, so writes pause briefly; state sizes are small
// (history records, not data).
func (m *Manager) Checkpoint(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	enc := wire.NewWriter(1 << 16)
	enc.Uint64(checkpointMagic)
	enc.Uint64(m.nextID)
	enc.Uvarint(uint64(len(m.blobs)))
	for id, b := range m.blobs {
		enc.Uint64(id)
		enc.Uint64(b.pageSize)
		enc.Uint64(b.totalPages)
		enc.Uint8(uint8(b.red.K))
		enc.Uint8(uint8(b.red.M))
		enc.Uint64(b.latestAssigned)
		enc.Uint64(b.latestPublished)
		enc.Uint64Slice(b.sizes)
		enc.Uvarint(uint64(len(b.history)))
		for _, rec := range b.history {
			enc.Uvarint(rec.Version)
			enc.Uvarint(rec.Range.First)
			enc.Uvarint(rec.Range.Count)
			enc.Uint64(rec.WriteID)
			enc.Bool(rec.Aborted)
		}
		enc.Uvarint(uint64(len(b.pending)))
		for v, p := range b.pending {
			enc.Uvarint(v)
			enc.Uvarint(p.wr.First)
			enc.Uvarint(p.wr.Count)
			enc.Uint64(p.writeID)
			enc.Bool(p.committed)
			enc.Bool(p.aborted)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(enc.Bytes()); err != nil {
		return fmt.Errorf("vmanager: checkpoint: %w", err)
	}
	return bw.Flush()
}

// Restore rebuilds a Manager from a checkpoint stream. The configuration
// (repair timeout, node store) is supplied fresh — it is deployment
// state, not blob state. Pending writes resume with fresh repair
// deadlines; their writers may still commit normally.
func Restore(r io.Reader, cfg Config) (*Manager, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("vmanager: restore: %w", err)
	}
	dec := wire.NewReader(raw)
	magic := dec.Uint64()
	if magic != checkpointMagic && magic != checkpointMagicG1 {
		return nil, fmt.Errorf("vmanager: restore: bad magic %#x", magic)
	}
	hasRed := magic == checkpointMagic
	m := New(cfg)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID = dec.Uint64()
	nblobs := int(dec.Uvarint())
	for i := 0; i < nblobs; i++ {
		id := dec.Uint64()
		b := &blobState{
			id:         id,
			pageSize:   dec.Uint64(),
			totalPages: dec.Uint64(),
			pending:    make(map[meta.Version]*pendingWrite),
			changed:    make(chan struct{}),
		}
		if hasRed {
			// A G1 blob predates erasure coding: replicated by
			// definition, so red stays the zero value.
			b.red = erasure.Redundancy{K: int(dec.Uint8()), M: int(dec.Uint8())}
		}
		b.latestAssigned = dec.Uint64()
		b.latestPublished = dec.Uint64()
		b.sizes = dec.Uint64Slice()
		nhist := dec.Uvarint()
		// A history record is at least 12 encoded bytes; a forged count
		// beyond what the stream can hold must fail here, not spin a
		// 2^40-iteration loop of zero records (reader errors are sticky
		// but do not break the loop).
		if nhist > uint64(dec.Remaining())/12 {
			return nil, fmt.Errorf("vmanager: restore blob %d: history count %d exceeds stream", id, nhist)
		}
		for j := uint64(0); j < nhist; j++ {
			b.history = append(b.history, WriteRecord{
				Version: dec.Uvarint(),
				Range:   meta.PageRange{First: dec.Uvarint(), Count: dec.Uvarint()},
				WriteID: dec.Uint64(),
				Aborted: dec.Bool(),
			})
		}
		npend := dec.Uvarint()
		if npend > uint64(dec.Remaining())/13 {
			return nil, fmt.Errorf("vmanager: restore blob %d: pending count %d exceeds stream", id, npend)
		}
		for j := uint64(0); j < npend; j++ {
			v := dec.Uvarint()
			p := &pendingWrite{
				wr:        meta.PageRange{First: dec.Uvarint(), Count: dec.Uvarint()},
				writeID:   dec.Uint64(),
				committed: dec.Bool(),
				aborted:   dec.Bool(),
			}
			if cfg.RepairTimeout > 0 {
				p.deadline = time.Now().Add(cfg.RepairTimeout)
			}
			b.pending[v] = p
		}
		if err := dec.Err(); err != nil {
			return nil, fmt.Errorf("vmanager: restore blob %d: %w", id, err)
		}
		// Validate the decoded state before replay: IntervalVersionMap
		// panics on out-of-range or out-of-order assignments (its
		// in-process callers guarantee both), so a corrupt stream must
		// be rejected here, never replayed.
		if err := validateBlobState(b); err != nil {
			return nil, fmt.Errorf("vmanager: restore blob %d: %w", id, err)
		}
		// Rebuild the interval map by replaying history in order (the
		// history is append-only, hence already version-ordered).
		ivm, err := meta.NewIntervalVersionMap(b.totalPages)
		if err != nil {
			return nil, fmt.Errorf("vmanager: restore blob %d: %w", id, err)
		}
		for _, rec := range b.history {
			ivm.Assign(rec.Range, rec.Version)
		}
		b.ivm = ivm
		m.blobs[id] = b
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("vmanager: restore: %w", err)
	}
	return m, nil
}

// validateBlobState checks a decoded blob's internal consistency so the
// history replay cannot panic and the counters cannot index out of
// bounds. Torn or bit-flipped checkpoints land here, not in a crash.
func validateBlobState(b *blobState) error {
	if err := b.red.Validate(); err != nil {
		return err
	}
	if !meta.IsPowerOfTwo(b.pageSize) || !meta.IsPowerOfTwo(b.totalPages) {
		return fmt.Errorf("geometry not a power of two (pageSize %d, totalPages %d)", b.pageSize, b.totalPages)
	}
	if b.latestPublished > b.latestAssigned {
		return fmt.Errorf("published v%d beyond assigned v%d", b.latestPublished, b.latestAssigned)
	}
	if b.latestAssigned+1 == 0 || uint64(len(b.sizes)) != b.latestAssigned+1 {
		return fmt.Errorf("%d sizes for %d assigned versions", len(b.sizes), b.latestAssigned)
	}
	prev := meta.ZeroVersion
	for _, rec := range b.history {
		if rec.Version <= prev || rec.Version > b.latestAssigned {
			return fmt.Errorf("history version v%d out of order (prev v%d, assigned v%d)",
				rec.Version, prev, b.latestAssigned)
		}
		if err := meta.ValidateGeometry(b.totalPages, rec.Range); err != nil {
			return fmt.Errorf("history v%d: %w", rec.Version, err)
		}
		prev = rec.Version
	}
	for v, p := range b.pending {
		if v <= b.latestPublished || v > b.latestAssigned {
			return fmt.Errorf("pending v%d outside (%d, %d]", v, b.latestPublished, b.latestAssigned)
		}
		if err := meta.ValidateGeometry(b.totalPages, p.wr); err != nil {
			return fmt.Errorf("pending v%d: %w", v, err)
		}
	}
	return nil
}
