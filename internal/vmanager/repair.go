package vmanager

import (
	"context"
	"fmt"
	"time"

	"blob/internal/meta"
)

// Repair: the liveness extension for dead writers.
//
// A version v that was assigned but never committed would block
// publication of every later version forever (versions publish strictly
// in order). The paper lists fault tolerance for its central entities as
// future work; we close the gap for writers: after RepairTimeout the
// manager materializes v's metadata itself as a logical no-op patch.
//
//   - The node set is exactly WriteSet(v.range) — the same keys the dead
//     writer would have used, so versions > v that already resolved
//     borders against v remain valid.
//   - Interior children that intersect v's range point to v; the rest
//     carry the border versions recomputed from the write history as it
//     was below v (identical to what the writer got at assignment).
//   - Leaves reference the page content of the previous version: the
//     repairer fetches the leaf of the latest version below v covering
//     each page and copies its location. Pages never written resolve to
//     the zero page (LeafData.Write == 0 — readers zero-fill).
//
// Because the metadata store is write-once (first value wins), any nodes
// the dead writer did manage to store are kept; the repairer's copies
// fill only the holes. The published content of an aborted version is
// therefore the previous snapshot with a possibly-partial application of
// the failed write — torn-write-on-crash semantics; every successfully
// committed write remains atomic.

// repairLoop periodically scans for expired pending writes.
func (m *Manager) repairLoop() {
	defer m.repairWG.Done()
	ticker := time.NewTicker(m.cfg.RepairScan)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopRepair:
			return
		case <-ticker.C:
			m.scanExpired()
		}
	}
}

// scanExpired finds expired writes and repairs them. Passive replicas
// skip the scan entirely: their leader repairs, and the resulting
// OpAbort/OpRepaired records arrive through the log.
func (m *Manager) scanExpired() {
	if m.passive.Load() {
		return
	}
	type target struct {
		blob uint64
		v    meta.Version
	}
	var targets []target
	now := time.Now()
	m.mu.Lock()
	for id, b := range m.blobs {
		for v, p := range b.pending {
			// Uncommitted past deadline — dead writer. Also aborted but
			// never committed: an orphan whose repairing leader died
			// between the abort mark and the fill (the new leader picks
			// it up here).
			expired := !p.deadline.IsZero() && p.deadline.Before(now)
			if !p.committed && !p.repairing && expired {
				p.repairing = true
				targets = append(targets, target{blob: id, v: v})
			}
		}
	}
	m.mu.Unlock()
	for _, t := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.RepairTimeout)
		if err := m.repairVersion(ctx, t.blob, t.v); err != nil {
			// Retry on a later scan.
			m.mu.Lock()
			if b, ok := m.blobs[t.blob]; ok {
				if p, ok := b.pending[t.v]; ok {
					p.repairing = false
					p.deadline = time.Now().Add(m.cfg.RepairTimeout)
				}
			}
			m.mu.Unlock()
		}
		cancel()
	}
}

// prevVersionsFor computes, for each page of wr, the latest version BELOW
// v that wrote it — reconstructed from the write history, because the
// interval map has already absorbed versions above v.
func prevVersionsFor(history []WriteRecord, v meta.Version, wr meta.PageRange) []meta.Version {
	out := make([]meta.Version, wr.Count)
	for _, rec := range history {
		if rec.Version >= v {
			continue
		}
		lo, hi := rec.Range.First, rec.Range.End()
		if lo < wr.First {
			lo = wr.First
		}
		if hi > wr.End() {
			hi = wr.End()
		}
		for p := lo; p < hi; p++ {
			if rec.Version > out[p-wr.First] {
				out[p-wr.First] = rec.Version
			}
		}
	}
	return out
}

// repairVersion materializes version v's metadata as a no-op patch and
// then marks it committed so publication can advance.
func (m *Manager) repairVersion(ctx context.Context, blob uint64, v meta.Version) error {
	m.mu.Lock()
	b, ok := m.blobs[blob]
	if !ok {
		m.mu.Unlock()
		return ErrNoBlob
	}
	p, ok := b.pending[v]
	if !ok {
		m.mu.Unlock()
		return nil // already published
	}
	if p.committed {
		m.mu.Unlock()
		return nil
	}
	wr := p.wr
	totalPages := b.totalPages
	// Recompute the same borders the writer received: resolve against
	// history below v. (History records below v are immutable, so this
	// is stable no matter when it runs relative to newer writes.)
	borders := meta.Borders(totalPages, wr)
	for i := range borders {
		borders[i].Ver = maxHistoryIntersecting(b.history, v, borders[i].Child)
	}
	prevVers := prevVersionsFor(b.history, v, wr)
	needMark := !p.aborted
	if needMark && m.cfg.Replicate == nil {
		// Mark aborted in history (the write did not take effect as
		// issued).
		p.aborted = true
		for i := len(b.history) - 1; i >= 0; i-- {
			if b.history[i].Version == v {
				b.history[i].Aborted = true
				break
			}
		}
	}
	m.mu.Unlock()

	if needMark && m.cfg.Replicate != nil {
		// Replicated shard: the abort mark must reach the log before
		// the fill, so a leader that dies mid-repair leaves followers
		// an orphan they can finish, not a version they re-admit.
		if err := m.cfg.Replicate(OpAbort, blob, v); err != nil {
			return fmt.Errorf("vmanager: repair v%d: replicate abort: %w", v, err)
		}
	}

	// Fetch the previous leaf for every page (outside the lock).
	leaves := make(map[uint64]meta.LeafData, wr.Count)
	for i := uint64(0); i < wr.Count; i++ {
		page := wr.First + i
		pv := prevVers[i]
		if pv == meta.ZeroVersion {
			leaves[page] = meta.LeafData{} // zero page
			continue
		}
		node, err := m.cfg.Store.FetchNode(ctx, meta.NodeKey{
			Blob: blob, Version: pv, Range: meta.NodeRange{Start: page, Size: 1},
		})
		if err != nil {
			return fmt.Errorf("vmanager: repair v%d: fetch prev leaf page %d (v%d): %w", v, page, pv, err)
		}
		leaves[page] = *node.Leaf
	}

	nodes, err := meta.Build(blob, v, totalPages, wr, meta.BorderResolver(borders),
		func(page uint64) (meta.LeafData, error) { return leaves[page], nil })
	if err != nil {
		return fmt.Errorf("vmanager: repair v%d: build: %w", v, err)
	}
	if err := m.cfg.Store.StoreNodes(ctx, nodes); err != nil {
		return fmt.Errorf("vmanager: repair v%d: store: %w", v, err)
	}

	// Publish the repaired version — through the log on a replicated
	// shard, directly otherwise.
	if m.cfg.Replicate != nil {
		if err := m.cfg.Replicate(OpRepaired, blob, v); err != nil {
			return fmt.Errorf("vmanager: repair v%d: replicate publish: %w", v, err)
		}
		return nil
	}
	m.mu.Lock()
	if p, ok := b.pending[v]; ok {
		p.committed = true
		m.advanceLocked(b)
	}
	m.Repairs.Inc()
	m.mu.Unlock()
	return nil
}

// RepairOrphans immediately repairs every version that is aborted but
// not committed — the holes a crashed leader left between its abort
// mark and its fill. A freshly promoted leader calls this so blocked
// blobs recover now rather than a repair-scan period later.
func (m *Manager) RepairOrphans(ctx context.Context) {
	if m.cfg.RepairTimeout <= 0 {
		return
	}
	type target struct {
		blob uint64
		v    meta.Version
	}
	var targets []target
	m.mu.Lock()
	for id, b := range m.blobs {
		for v, p := range b.pending {
			if p.aborted && !p.committed && !p.repairing {
				p.repairing = true
				targets = append(targets, target{blob: id, v: v})
			}
		}
	}
	m.mu.Unlock()
	for _, t := range targets {
		if err := m.repairVersion(ctx, t.blob, t.v); err != nil {
			m.mu.Lock()
			if b, ok := m.blobs[t.blob]; ok {
				if p, ok := b.pending[t.v]; ok {
					p.repairing = false
					p.deadline = time.Now().Add(m.cfg.RepairTimeout)
				}
			}
			m.mu.Unlock()
		}
	}
}

// maxHistoryIntersecting returns the highest version below v whose write
// intersects r (ZeroVersion if none).
func maxHistoryIntersecting(history []WriteRecord, v meta.Version, r meta.NodeRange) meta.Version {
	var best meta.Version
	for _, rec := range history {
		if rec.Version >= v || rec.Version <= best {
			continue
		}
		if rec.Range.Intersects(r) {
			best = rec.Version
		}
	}
	return best
}
