package vmanager

import (
	"errors"
	"testing"
)

func sampleRecords() []LogRecord {
	return []LogRecord{
		{Seq: 1, Op: OpCreate, Blob: 7, PageSize: 4096, Capacity: 1 << 20, K: 2, M: 1},
		{Seq: 2, Op: OpAssign, Blob: 7, Version: 1, WriteID: 42, Offset: 8192, Length: 4096},
		{Seq: 3, Op: OpCommit, Blob: 7, Version: 1},
		{Seq: 4, Op: OpAbort, Blob: 7, Version: 2},
		{Seq: 5, Op: OpRepaired, Blob: 7, Version: 2},
	}
}

func TestLogRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		buf := AppendLogRecord(nil, want)
		got, n, err := DecodeLogRecord(buf)
		if err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if n != len(buf) {
			t.Errorf("op %d: consumed %d of %d bytes", want.Op, n, len(buf))
		}
		if got != want {
			t.Errorf("op %d: round trip %+v != %+v", want.Op, got, want)
		}
	}
}

func TestLogBatchRoundTrip(t *testing.T) {
	want := sampleRecords()
	buf := EncodeLogRecords(want)
	got, err := DecodeLogRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	buf := AppendLogRecord(nil, sampleRecords()[1])

	// Every strict prefix is torn, not corrupt (the checksummed frame
	// only reports corruption when all its bytes are present and wrong).
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeLogRecord(buf[:cut]); !errors.Is(err, ErrLogTorn) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrLogTorn", cut, len(buf), err)
		}
	}

	// Any single bit flip in the payload is corrupt.
	for bit := 12 * 8; bit < len(buf)*8; bit += 7 {
		mut := append([]byte(nil), buf...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, _, err := DecodeLogRecord(mut); !errors.Is(err, ErrLogCorrupt) {
			t.Fatalf("bit %d flipped: err = %v, want ErrLogCorrupt", bit, err)
		}
	}

	// A corrupt length field must not be treated as a huge torn tail.
	mut := append([]byte(nil), buf...)
	mut[3] = 0xff // length |= 0xff000000
	if _, _, err := DecodeLogRecord(mut); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("corrupt length: err = %v, want ErrLogCorrupt", err)
	}

	// Unknown op: rewrite the op byte and fix the checksum so only the
	// op validation can object.
	rec := sampleRecords()[2]
	rec.Op = 99
	if _, _, err := DecodeLogRecord(AppendLogRecord(nil, rec)); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("unknown op: err = %v, want ErrLogCorrupt", err)
	}
}

func TestRecoverLogTruncatesAtDamage(t *testing.T) {
	recs := sampleRecords()
	buf := EncodeLogRecords(recs)

	// Clean stream recovers fully.
	got, n := RecoverLog(buf)
	if len(got) != len(recs) || n != len(buf) {
		t.Fatalf("clean recover = %d records, %d bytes; want %d, %d", len(got), n, len(recs), len(buf))
	}

	// Torn tail: drop the last 5 bytes; recovery keeps the prefix.
	got, n = RecoverLog(buf[: len(buf)-5 : len(buf)-5])
	if len(got) != len(recs)-1 {
		t.Fatalf("torn recover = %d records, want %d", len(got), len(recs)-1)
	}
	if want := len(buf) - frameLen(recs[len(recs)-1]); n != want {
		t.Fatalf("torn recover consumed %d bytes, want %d", n, want)
	}

	// Bit flip in record 3's payload: records 1-2 survive.
	mut := append([]byte(nil), buf...)
	off := frameLen(recs[0]) + frameLen(recs[1]) + 13
	mut[off] ^= 0x40
	if got, _ = RecoverLog(mut); len(got) != 2 {
		t.Fatalf("corrupt recover = %d records, want 2", len(got))
	}

	// A sequence gap truncates even when frames are intact.
	gap := append([]LogRecord(nil), recs...)
	gap[3].Seq = 9
	if got, _ = RecoverLog(EncodeLogRecords(gap)); len(got) != 3 {
		t.Fatalf("gap recover = %d records, want 3", len(got))
	}

	// The batch decoder refuses damage outright.
	if _, err := DecodeLogRecords(mut); err == nil {
		t.Error("DecodeLogRecords accepted a corrupt batch")
	}
	if _, err := DecodeLogRecords(buf[:len(buf)-5]); err == nil {
		t.Error("DecodeLogRecords accepted a torn batch")
	}
}

func frameLen(rec LogRecord) int { return len(AppendLogRecord(nil, rec)) }

func TestManagerApplyRecordReplay(t *testing.T) {
	// A follower's state is a deterministic function of the record
	// stream: replaying a leader's log into a fresh Manager must
	// reproduce its published state.
	leader := New(Config{})
	defer leader.Close()
	var log []LogRecord
	seq := uint64(0)
	app := func(rec LogRecord) {
		seq++
		rec.Seq = seq
		log = append(log, rec)
	}

	blob, err := leader.CreateBlob(pageSize, capBytes)
	if err != nil {
		t.Fatal(err)
	}
	app(LogRecord{Op: OpCreate, Blob: blob, PageSize: pageSize, Capacity: capBytes})
	for i := 0; i < 4; i++ {
		a, err := leader.AssignVersion(blob, uint64(100+i), uint64(i)*pageSize, pageSize, false)
		if err != nil {
			t.Fatal(err)
		}
		app(LogRecord{Op: OpAssign, Blob: blob, Version: a.Version, WriteID: uint64(100 + i), Offset: a.Offset, Length: pageSize})
		if i != 2 { // leave v3 pending
			if _, _, err := leader.commitObserve(blob, a.Version); err != nil {
				t.Fatal(err)
			}
			app(LogRecord{Op: OpCommit, Blob: blob, Version: a.Version})
		}
	}

	follower := New(Config{})
	defer follower.Close()
	for _, rec := range log {
		if err := follower.ApplyRecord(rec); err != nil {
			t.Fatalf("apply %+v: %v", rec, err)
		}
	}

	lv, lsize, lerr := leader.Latest(blob)
	fv, fsize, ferr := follower.Latest(blob)
	if lerr != nil || ferr != nil || lv != fv || lsize != fsize {
		t.Fatalf("replay diverged: leader (%d, %d, %v), follower (%d, %d, %v)", lv, lsize, lerr, fv, fsize, ferr)
	}
	lh, _ := leader.History(blob, 0, 100)
	fh, _ := follower.History(blob, 0, 100)
	if len(lh) != len(fh) {
		t.Fatalf("history length diverged: %d != %d", len(lh), len(fh))
	}
	for i := range lh {
		if lh[i] != fh[i] {
			t.Errorf("history[%d] diverged: %+v != %+v", i, lh[i], fh[i])
		}
	}

	// Replay is idempotent at the record level too (duplicate delivery).
	for _, rec := range log {
		if rec.Op == OpCommit {
			if err := follower.ApplyRecord(rec); err != nil {
				t.Fatalf("re-apply %+v: %v", rec, err)
			}
		}
	}
}

func TestApplyRecordDivergenceDetected(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	if err := m.ApplyRecord(LogRecord{Seq: 1, Op: OpCreate, Blob: 1, PageSize: pageSize, Capacity: capBytes}); err != nil {
		t.Fatal(err)
	}
	// An assign whose version does not match the manager's own serial
	// assignment is divergence, not data.
	err := m.ApplyRecord(LogRecord{Seq: 2, Op: OpAssign, Blob: 1, Version: 5, WriteID: 9, Offset: 0, Length: pageSize})
	if err == nil {
		t.Fatal("mismatched assign version applied silently")
	}
	// Bad geometry in a create must error, not panic.
	if err := m.ApplyRecord(LogRecord{Seq: 2, Op: OpCreate, Blob: 2, PageSize: 1000, Capacity: 4000}); err == nil {
		t.Fatal("invalid geometry applied")
	}
}

func BenchmarkAppendLogRecord(b *testing.B) {
	rec := LogRecord{Seq: 1, Op: OpAssign, Blob: 7, Version: 1, WriteID: 42, Offset: 8192, Length: 4096}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendLogRecord(buf[:0], rec)
	}
}
