// Package vmanager implements the version manager, "the key actor of the
// system" (paper §III.A). It is the only serialization point: it assigns
// version numbers to writes, precomputes the border-node versions each
// writer needs to weave its partial metadata tree into the forest of
// earlier versions (§IV.C), tracks which versions have committed, and
// publishes versions strictly in order — giving the global
// serializability and liveness properties of §II.
//
// Beyond the paper, the manager implements the fault-tolerance extension
// sketched in its future work: if a writer that was assigned a version
// dies before committing, the manager repairs the hole by materializing
// that version's metadata itself (a logical no-op patch referencing the
// previous content), so publication of later versions is never blocked
// forever. See repair.go.
package vmanager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/stats"
)

// Errors returned to clients.
var (
	ErrNoBlob         = errors.New("vmanager: unknown blob")
	ErrAborted        = errors.New("vmanager: version aborted")
	ErrNotPending     = errors.New("vmanager: version not pending")
	ErrBadRange       = errors.New("vmanager: invalid range")
	ErrVersionUnknown = errors.New("vmanager: version not yet assigned")
)

// WriteRecord is the durable history entry for one assigned write,
// consumed by the garbage collector and the repair path.
type WriteRecord struct {
	Version meta.Version
	Range   meta.PageRange
	WriteID uint64
	Aborted bool
}

// pendingWrite tracks an assigned, not-yet-published version.
type pendingWrite struct {
	wr        meta.PageRange
	writeID   uint64
	committed bool
	aborted   bool
	deadline  time.Time
	repairing bool
}

// blobState is the manager's record of one blob.
type blobState struct {
	id         uint64
	pageSize   uint64
	totalPages uint64
	// red is the blob's redundancy mode, fixed at ALLOC: zero value =
	// full replication, K>0 = rs(K,M) erasure-coded stripes
	// (docs/erasure.md). Readers, writers and the repair agent all
	// learn it from Info.
	red erasure.Redundancy

	latestAssigned  meta.Version
	latestPublished meta.Version
	// sizes[v] is the logical size in bytes of version v (grows with
	// writes past the end and with appends). sizes[0] == 0.
	sizes []uint64

	ivm     *meta.IntervalVersionMap
	pending map[meta.Version]*pendingWrite
	history []WriteRecord

	// changed is closed and replaced whenever publication state moves,
	// waking blocked Commit calls.
	changed chan struct{}
}

// Assignment is the version manager's reply to a write's version request:
// the version number, the final byte offset (resolved for appends), and
// the precomputed border set with which the writer builds its metadata in
// complete isolation.
type Assignment struct {
	Version meta.Version
	Offset  uint64
	Borders []meta.Border
}

// Config parameterizes a Manager.
type Config struct {
	// RepairTimeout is how long an assigned version may stay uncommitted
	// before the manager repairs it as a no-op patch. Zero disables
	// repair (the paper's baseline behaviour, where a dead writer blocks
	// publication of successors).
	RepairTimeout time.Duration
	// RepairScan is how often the repair loop scans for expired writes
	// (default: RepairTimeout/4).
	RepairScan time.Duration
	// Store gives the repair path access to the metadata providers.
	// Required only when RepairTimeout > 0.
	Store NodeStore
	// Replicate, when set, routes the repair path's two mutations (the
	// abort mark and the final repaired commit) through the replication
	// layer instead of applying them directly, so followers of a
	// replicated shard see them in log order (see replica.go). The
	// callback is invoked with no Manager locks held.
	Replicate func(op uint8, blob uint64, v meta.Version) error
}

// NodeStore is the slice of the metadata-provider interface the repair
// path needs. internal/mstore.Client satisfies it.
type NodeStore interface {
	FetchNode(ctx context.Context, key meta.NodeKey) (*meta.Node, error)
	StoreNodes(ctx context.Context, nodes []meta.Node) error
}

// Manager is the version manager service state.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	blobs  map[uint64]*blobState
	nextID uint64

	// Metrics.
	Assigns   stats.Counter
	Commits   stats.Counter
	Publishes stats.Counter
	Aborts    stats.Counter
	Repairs   stats.Counter

	// passive suppresses autonomous repair activity. A replicated
	// shard's followers run passive: they apply the leader's log and
	// must not race it with repairs of their own (replica.go flips this
	// on promotion/demotion).
	passive atomic.Bool

	stopRepair chan struct{}
	repairWG   sync.WaitGroup
	closed     bool
}

// SetPassive switches autonomous repair scanning off (true) or on
// (false). State mutations via ApplyRecord are unaffected.
func (m *Manager) SetPassive(p bool) { m.passive.Store(p) }

// New creates a Manager and starts its repair loop if configured.
func New(cfg Config) *Manager {
	if cfg.RepairScan <= 0 {
		cfg.RepairScan = cfg.RepairTimeout / 4
	}
	m := &Manager{
		cfg:        cfg,
		blobs:      make(map[uint64]*blobState),
		nextID:     1,
		stopRepair: make(chan struct{}),
	}
	if cfg.RepairTimeout > 0 {
		if cfg.Store == nil {
			panic("vmanager: RepairTimeout set without a NodeStore")
		}
		m.repairWG.Add(1)
		go m.repairLoop()
	}
	return m
}

// Close stops background work.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stopRepair)
	m.repairWG.Wait()
}

// CreateBlob allocates a new blob (the paper's ALLOC primitive) in the
// default full-replication mode. See CreateBlobMode.
func (m *Manager) CreateBlob(pageSize, capacityBytes uint64) (uint64, error) {
	return m.CreateBlobMode(pageSize, capacityBytes, erasure.Redundancy{})
}

// CreateBlobMode allocates a new blob: a globally unique id for a
// string of capacityBytes bytes in pageSize pages, with the given
// redundancy mode fixed for the blob's lifetime (the mode shapes every
// write's metadata, so it cannot change once pages exist).
// capacityBytes/pageSize must be a power of two.
func (m *Manager) CreateBlobMode(pageSize, capacityBytes uint64, red erasure.Redundancy) (uint64, error) {
	return m.CreateBlobOwned(pageSize, capacityBytes, red, nil)
}

// CreateBlobOwned allocates a blob whose id satisfies owns — a shard of
// a replicated vmanager group only hands out ids that the dht ring
// places on that shard, so every client routes the blob back here (see
// group.go). A nil owns accepts any id.
func (m *Manager) CreateBlobOwned(pageSize, capacityBytes uint64, red erasure.Redundancy, owns func(uint64) bool) (uint64, error) {
	if err := validateGeometry(pageSize, capacityBytes, red); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	for owns != nil && !owns(id) {
		id++
	}
	if err := m.createBlobAtLocked(id, pageSize, capacityBytes, red); err != nil {
		return 0, err
	}
	return id, nil
}

func validateGeometry(pageSize, capacityBytes uint64, red erasure.Redundancy) error {
	if err := red.Validate(); err != nil {
		return err
	}
	if !meta.IsPowerOfTwo(pageSize) {
		return fmt.Errorf("vmanager: page size %d not a power of two", pageSize)
	}
	if capacityBytes == 0 || capacityBytes%pageSize != 0 {
		return fmt.Errorf("vmanager: capacity %d not a multiple of page size %d", capacityBytes, pageSize)
	}
	return nil
}

// createBlobAtLocked creates a blob with a caller-chosen id (log replay
// uses the leader's id). Idempotent for an identical existing blob.
func (m *Manager) createBlobAtLocked(id, pageSize, capacityBytes uint64, red erasure.Redundancy) error {
	totalPages := capacityBytes / pageSize
	if prev, ok := m.blobs[id]; ok {
		if prev.pageSize == pageSize && prev.totalPages == totalPages && prev.red == red {
			return nil
		}
		return fmt.Errorf("vmanager: blob %d already exists with different geometry", id)
	}
	ivm, err := meta.NewIntervalVersionMap(totalPages)
	if err != nil {
		return fmt.Errorf("vmanager: %w", err)
	}
	m.blobs[id] = &blobState{
		id:         id,
		pageSize:   pageSize,
		totalPages: totalPages,
		red:        red,
		sizes:      []uint64{0},
		ivm:        ivm,
		pending:    make(map[meta.Version]*pendingWrite),
		changed:    make(chan struct{}),
	}
	if id >= m.nextID {
		m.nextID = id + 1
	}
	return nil
}

// BlobInfo describes a blob's static geometry and current published state.
type BlobInfo struct {
	ID              uint64
	PageSize        uint64
	TotalPages      uint64
	LatestPublished meta.Version
	SizeBytes       uint64
	// Redundancy is the blob's fixed redundancy mode (zero = replication).
	Redundancy erasure.Redundancy
}

// Info returns a blob's current info.
func (m *Manager) Info(blob uint64) (BlobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return BlobInfo{}, ErrNoBlob
	}
	return BlobInfo{
		ID:              b.id,
		PageSize:        b.pageSize,
		TotalPages:      b.totalPages,
		LatestPublished: b.latestPublished,
		SizeBytes:       b.sizes[b.latestPublished],
		Redundancy:      b.red,
	}, nil
}

// AssignVersion serializes a write into the version order. For appends
// the offset is resolved to the current logical end of the blob. The
// returned border set reflects exactly the writes numbered below the new
// version, whether or not they have published — the mechanism that lets
// concurrent writers proceed without synchronizing with each other.
func (m *Manager) AssignVersion(blob, writeID uint64, offset, length uint64, isAppend bool) (Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return Assignment{}, ErrNoBlob
	}
	if isAppend {
		offset = b.sizes[b.latestAssigned]
	}
	if offset%b.pageSize != 0 || length == 0 || length%b.pageSize != 0 {
		return Assignment{}, fmt.Errorf("%w: offset %d length %d not aligned to page size %d",
			ErrBadRange, offset, length, b.pageSize)
	}
	wr := meta.PageRange{First: offset / b.pageSize, Count: length / b.pageSize}
	if wr.End() > b.totalPages {
		return Assignment{}, fmt.Errorf("%w: write [%d,%d) exceeds capacity of %d pages",
			ErrBadRange, wr.First, wr.End(), b.totalPages)
	}

	v := b.latestAssigned + 1
	borders := meta.Borders(b.totalPages, wr)
	b.ivm.ResolveBorders(borders) // before Assign: sees versions 1..v-1
	b.ivm.Assign(wr, v)
	b.latestAssigned = v

	// Track the logical size of this version.
	newSize := b.sizes[v-1]
	if end := offset + length; end > newSize {
		newSize = end
	}
	b.sizes = append(b.sizes, newSize)

	var deadline time.Time
	if m.cfg.RepairTimeout > 0 {
		deadline = time.Now().Add(m.cfg.RepairTimeout)
	}
	b.pending[v] = &pendingWrite{
		wr: wr, writeID: writeID, deadline: deadline,
	}
	b.history = append(b.history, WriteRecord{Version: v, Range: wr, WriteID: writeID})
	m.Assigns.Inc()
	return Assignment{Version: v, Offset: offset, Borders: borders}, nil
}

// Commit reports that the writer of (blob, v) finished storing data and
// metadata. If block is true, Commit waits until v is actually published
// (all earlier versions committed too) or ctx expires, so a returned
// WRITE is immediately readable.
func (m *Manager) Commit(ctx context.Context, blob uint64, v meta.Version, block bool) (meta.Version, error) {
	pub, _, err := m.commitObserve(blob, v)
	if err != nil || !block {
		return pub, err
	}
	return m.WaitPublished(ctx, blob, v)
}

// commitObserve is the non-blocking half of Commit. transitioned
// reports whether this call actually flipped the version to committed —
// a replicated shard leader appends a log record exactly when it did
// (duplicate commits and the already-published path mutate nothing).
func (m *Manager) commitObserve(blob uint64, v meta.Version) (pub meta.Version, transitioned bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return 0, false, ErrNoBlob
	}
	p, ok := b.pending[v]
	switch {
	case ok && p.aborted:
		return 0, false, fmt.Errorf("%w: version %d", ErrAborted, v)
	case !ok:
		if v <= b.latestPublished {
			// Already published: the repair path may have completed the
			// version on the writer's behalf. Check the abort flag.
			if historyAborted(b.history, v) {
				return 0, false, fmt.Errorf("%w: version %d", ErrAborted, v)
			}
			return b.latestPublished, false, nil
		}
		return 0, false, fmt.Errorf("%w: version %d", ErrNotPending, v)
	}
	if !p.committed {
		p.committed = true
		transitioned = true
		m.Commits.Inc()
		m.advanceLocked(b)
	}
	return b.latestPublished, transitioned, nil
}

// WaitPublished blocks until version v of blob is published (or ctx
// expires), returning the latest published version. A version that
// aborts while waited on returns ErrAborted.
func (m *Manager) WaitPublished(ctx context.Context, blob uint64, v meta.Version) (meta.Version, error) {
	m.mu.Lock()
	for {
		b, ok := m.blobs[blob]
		if !ok {
			m.mu.Unlock()
			return 0, ErrNoBlob
		}
		if b.latestPublished >= v {
			if historyAborted(b.history, v) {
				m.mu.Unlock()
				return 0, fmt.Errorf("%w: version %d", ErrAborted, v)
			}
			pub := b.latestPublished
			m.mu.Unlock()
			return pub, nil
		}
		if p, ok := b.pending[v]; ok && p.aborted {
			m.mu.Unlock()
			return 0, fmt.Errorf("%w: version %d", ErrAborted, v)
		}
		ch := b.changed
		m.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		m.mu.Lock()
	}
}

// historyAborted reports whether version v is flagged aborted in the
// write history.
func historyAborted(history []WriteRecord, v meta.Version) bool {
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Version == v {
			return history[i].Aborted
		}
	}
	return false
}

// advanceLocked publishes the longest committed prefix.
func (m *Manager) advanceLocked(b *blobState) {
	moved := false
	for {
		next := b.latestPublished + 1
		p, ok := b.pending[next]
		if !ok || !p.committed {
			break
		}
		delete(b.pending, next)
		b.latestPublished = next
		m.Publishes.Inc()
		moved = true
	}
	if moved {
		close(b.changed)
		b.changed = make(chan struct{})
	}
}

// Abort withdraws an assigned version (the writer knows it failed). The
// version is immediately repaired as a no-op patch if repair is enabled;
// otherwise it is marked committed-as-aborted so publication can proceed
// once its metadata exists. Abort with repair disabled requires that the
// caller has itself stored valid metadata for the version (or accepts
// that readers of later versions may fail).
func (m *Manager) Abort(blob uint64, v meta.Version) error {
	if _, err := m.markAborted(blob, v); err != nil {
		return err
	}
	if m.cfg.RepairTimeout > 0 {
		return m.repairVersion(context.Background(), blob, v)
	}
	return nil
}

// markAborted flags a pending version aborted and wakes blocked
// commits, without triggering repair. Idempotent (changed reports
// whether this call made the transition); a version that is no longer
// pending but already flagged in history (replayed abort) is accepted.
func (m *Manager) markAborted(blob uint64, v meta.Version) (changed bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return false, ErrNoBlob
	}
	p, ok := b.pending[v]
	if !ok {
		if historyAborted(b.history, v) {
			return false, nil
		}
		return false, fmt.Errorf("%w: version %d", ErrNotPending, v)
	}
	if p.aborted {
		return false, nil
	}
	p.aborted = true
	for i := len(b.history) - 1; i >= 0; i-- {
		if b.history[i].Version == v {
			b.history[i].Aborted = true
			break
		}
	}
	m.Aborts.Inc()
	// Wake any blocked Commit for this version.
	close(b.changed)
	b.changed = make(chan struct{})
	return true, nil
}

// applyRepaired is the second half of the repair path as a log-replay
// mutation: the version's metadata exists (the leader stored it), so
// flag it aborted-and-committed and advance publication. Idempotent.
func (m *Manager) applyRepaired(blob uint64, v meta.Version) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return ErrNoBlob
	}
	for i := len(b.history) - 1; i >= 0; i-- {
		if b.history[i].Version == v {
			b.history[i].Aborted = true
			break
		}
	}
	p, ok := b.pending[v]
	if !ok {
		return nil // already published
	}
	p.aborted = true
	if !p.committed {
		p.committed = true
		m.Repairs.Inc()
		m.advanceLocked(b)
	}
	return nil
}

// ApplyRecord applies one replicated log record to the manager's state —
// the follower half of the shard replication protocol. Records must be
// applied in log order; any divergence from the leader's expectations
// (version mismatch, unknown blob) is returned as an error, signalling
// the replica layer to resynchronize from a snapshot rather than limp
// on with drifted state.
func (m *Manager) ApplyRecord(rec LogRecord) error {
	switch rec.Op {
	case OpCreate:
		red := erasure.Redundancy{K: int(rec.K), M: int(rec.M)}
		if err := validateGeometry(rec.PageSize, rec.Capacity, red); err != nil {
			return err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.createBlobAtLocked(rec.Blob, rec.PageSize, rec.Capacity, red)
	case OpAssign:
		return m.applyAssign(rec)
	case OpCommit:
		_, _, err := m.commitObserve(rec.Blob, rec.Version)
		if errors.Is(err, ErrAborted) {
			// The leader committed this version before aborting it in a
			// later record we have not applied yet; our abort state can
			// only come from the same log, so this cannot happen in
			// order — but a duplicate delivery after the abort can.
			return nil
		}
		return err
	case OpAbort:
		_, err := m.markAborted(rec.Blob, rec.Version)
		return err
	case OpRepaired:
		return m.applyRepaired(rec.Blob, rec.Version)
	default:
		return fmt.Errorf("%w: unknown op %d", ErrLogCorrupt, rec.Op)
	}
}

// applyAssign re-executes an assignment deterministically: the offset
// was append-resolved by the leader, so the assigned version must come
// out identical; if it does not, the replica has diverged.
func (m *Manager) applyAssign(rec LogRecord) error {
	a, err := m.AssignVersion(rec.Blob, rec.WriteID, rec.Offset, rec.Length, false)
	if err != nil {
		return err
	}
	if a.Version != rec.Version {
		return fmt.Errorf("vmanager: replay diverged: assigned v%d, log says v%d (blob %d)",
			a.Version, rec.Version, rec.Blob)
	}
	return nil
}

// Latest returns the newest published version and its size.
func (m *Manager) Latest(blob uint64) (meta.Version, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return 0, 0, ErrNoBlob
	}
	return b.latestPublished, b.sizes[b.latestPublished], nil
}

// VersionInfo reports whether v is published and its logical size.
func (m *Manager) VersionInfo(blob uint64, v meta.Version) (published bool, size uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return false, 0, ErrNoBlob
	}
	if v > b.latestAssigned {
		return false, 0, ErrVersionUnknown
	}
	return v <= b.latestPublished, b.sizes[v], nil
}

// History returns write records for versions in (from, to], for the GC.
func (m *Manager) History(blob uint64, from, to meta.Version) ([]WriteRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[blob]
	if !ok {
		return nil, ErrNoBlob
	}
	out := make([]WriteRecord, 0, len(b.history))
	for _, rec := range b.history {
		if rec.Version > from && rec.Version <= to {
			out = append(out, rec)
		}
	}
	return out, nil
}

// Blobs lists all blob IDs (diagnostics).
func (m *Manager) Blobs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.blobs))
	for id := range m.blobs {
		out = append(out, id)
	}
	return out
}
