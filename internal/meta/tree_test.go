package meta

import (
	"math/rand"
	"testing"
)

// naiveWriteSet enumerates all node ranges of the full tree and keeps the
// intersecting ones — the O(totalPages) specification WriteSet must match.
func naiveWriteSet(totalPages uint64, wr PageRange) map[NodeRange]bool {
	out := map[NodeRange]bool{}
	for size := totalPages; size >= 1; size /= 2 {
		for start := uint64(0); start < totalPages; start += size {
			r := NodeRange{start, size}
			if wr.Intersects(r) {
				out[r] = true
			}
		}
	}
	return out
}

func TestWriteSetMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		total := uint64(1) << (rng.Intn(7) + 1) // 2..128 pages
		first := uint64(rng.Intn(int(total)))
		count := uint64(rng.Intn(int(total-first))) + 1
		wr := PageRange{first, count}
		got := WriteSet(total, wr)
		want := naiveWriteSet(total, wr)
		if len(got) != len(want) {
			t.Fatalf("total=%d wr=%v: got %d nodes, want %d", total, wr, len(got), len(want))
		}
		for _, r := range got {
			if !want[r] {
				t.Fatalf("total=%d wr=%v: unexpected node %v", total, wr, r)
			}
		}
		if CountWriteSet(total, wr) != len(want) {
			t.Fatalf("CountWriteSet disagrees with WriteSet")
		}
	}
}

func TestWriteSetPreOrderRootFirst(t *testing.T) {
	got := WriteSet(8, PageRange{3, 2})
	if got[0] != (NodeRange{0, 8}) {
		t.Errorf("first node = %v, want root", got[0])
	}
	// Every node must appear after its parent.
	seen := map[NodeRange]bool{got[0]: true}
	for _, r := range got[1:] {
		parent := NodeRange{r.Start &^ (r.Size*2 - 1), r.Size * 2}
		if !seen[parent] {
			t.Errorf("node %v before its parent %v", r, parent)
		}
		seen[r] = true
	}
}

func TestWriteSetSizes(t *testing.T) {
	// Full-blob write of N pages creates 2N-1 nodes.
	if n := CountWriteSet(16, PageRange{0, 16}); n != 31 {
		t.Errorf("full write nodes = %d, want 31", n)
	}
	// Single-page write creates one node per level.
	if n := CountWriteSet(16, PageRange{5, 1}); n != TreeHeight(16) {
		t.Errorf("single-page write nodes = %d, want %d", n, TreeHeight(16))
	}
}

func TestTreeHeight(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 2, 4: 3, 16: 5, 1 << 24: 25}
	for total, want := range cases {
		if got := TreeHeight(total); got != want {
			t.Errorf("TreeHeight(%d) = %d, want %d", total, got, want)
		}
	}
}

func TestBordersProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		total := uint64(1) << (rng.Intn(7) + 1)
		first := uint64(rng.Intn(int(total)))
		count := uint64(rng.Intn(int(total-first))) + 1
		wr := PageRange{first, count}
		borders := Borders(total, wr)
		created := naiveWriteSet(total, wr)
		seen := map[NodeRange]bool{}
		for _, b := range borders {
			if wr.Intersects(b.Child) {
				t.Fatalf("wr=%v: border child %v intersects the write", wr, b.Child)
			}
			if !created[b.Parent] {
				t.Fatalf("wr=%v: border parent %v is not a created node", wr, b.Parent)
			}
			l, r := b.Parent.Children()
			if b.Child != l && b.Child != r {
				t.Fatalf("wr=%v: %v is not a child of %v", wr, b.Child, b.Parent)
			}
			if seen[b.Child] {
				t.Fatalf("wr=%v: duplicate border child %v", wr, b.Child)
			}
			seen[b.Child] = true
		}
		// Every created interior node's children are each either created
		// or a border child.
		for r := range created {
			if r.IsLeaf() {
				continue
			}
			l, rr := r.Children()
			for _, c := range []NodeRange{l, rr} {
				if !created[c] && !seen[c] {
					t.Fatalf("wr=%v: child %v of %v neither created nor border", wr, c, r)
				}
			}
		}
	}
}

func TestBordersFullWriteEmpty(t *testing.T) {
	if b := Borders(32, PageRange{0, 32}); len(b) != 0 {
		t.Errorf("full-blob write has %d borders, want 0", len(b))
	}
}

func TestBuildValidation(t *testing.T) {
	noResolve := func(NodeRange) (Version, error) { return 0, nil }
	noLeaf := func(uint64) (LeafData, error) { return LeafData{}, nil }
	if _, err := Build(1, 1, 12, PageRange{0, 1}, noResolve, noLeaf); err == nil {
		t.Error("non-power-of-two total accepted")
	}
	if _, err := Build(1, 1, 16, PageRange{0, 0}, noResolve, noLeaf); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := Build(1, 1, 16, PageRange{8, 16}, noResolve, noLeaf); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	if _, err := Build(1, ZeroVersion, 16, PageRange{0, 1}, noResolve, noLeaf); err == nil {
		t.Error("zero version accepted")
	}
}

func TestBuildPaperScenario(t *testing.T) {
	// Reproduces Figure 2(b): a 4-page blob. Version 1 writes everything;
	// version 2 patches page 1; version 3 patches page 2.
	const total = 4
	mkLeaf := func(v Version) func(uint64) (LeafData, error) {
		return func(p uint64) (LeafData, error) {
			return LeafData{Write: v * 100, RelPage: uint32(p)}, nil
		}
	}
	ivm, err := NewIntervalVersionMap(total)
	if err != nil {
		t.Fatal(err)
	}

	buildAt := func(v Version, wr PageRange) []Node {
		borders := Borders(total, wr)
		ivm.ResolveBorders(borders)
		ivm.Assign(wr, v)
		nodes, err := Build(9, v, total, wr, BorderResolver(borders), mkLeaf(v))
		if err != nil {
			t.Fatal(err)
		}
		return nodes
	}

	v1 := buildAt(1, PageRange{0, 4})
	if len(v1) != 7 {
		t.Fatalf("v1 nodes = %d, want 7", len(v1))
	}

	v2 := buildAt(2, PageRange{1, 1})
	// Expected: root(0,4), interior(0,2), leaf(1,1) — three nodes.
	if len(v2) != 3 {
		t.Fatalf("v2 nodes = %d, want 3", len(v2))
	}
	byRange := map[NodeRange]Node{}
	for _, n := range v2 {
		byRange[n.Key.Range] = n
	}
	root := byRange[NodeRange{0, 4}]
	// Paper: "the missing right child of A2 is set to C1" — right half
	// (2,2) resolves to version 1.
	if root.LeftVer != 2 || root.RightVer != 1 {
		t.Errorf("v2 root children = (%d,%d), want (2,1)", root.LeftVer, root.RightVer)
	}
	b2 := byRange[NodeRange{0, 2}]
	// "the missing left child of B2 is set to D1" — left half (0,1) is 1.
	if b2.LeftVer != 1 || b2.RightVer != 2 {
		t.Errorf("v2 (0,2) children = (%d,%d), want (1,2)", b2.LeftVer, b2.RightVer)
	}

	v3 := buildAt(3, PageRange{2, 1})
	byRange = map[NodeRange]Node{}
	for _, n := range v3 {
		byRange[n.Key.Range] = n
	}
	root = byRange[NodeRange{0, 4}]
	// "the left child of A3 is set to B2" — left half resolves to 2.
	if root.LeftVer != 2 || root.RightVer != 3 {
		t.Errorf("v3 root children = (%d,%d), want (2,3)", root.LeftVer, root.RightVer)
	}
	c3 := byRange[NodeRange{2, 2}]
	// "the right child of C3 is set to G1" — page 3 still version 1.
	if c3.LeftVer != 3 || c3.RightVer != 1 {
		t.Errorf("v3 (2,2) children = (%d,%d), want (3,1)", c3.LeftVer, c3.RightVer)
	}
}

func TestBuildResolverMissingBorder(t *testing.T) {
	resolve := BorderResolver(nil) // empty: every border lookup fails
	_, err := Build(1, 1, 8, PageRange{0, 1}, resolve, func(uint64) (LeafData, error) {
		return LeafData{}, nil
	})
	if err == nil {
		t.Error("Build should fail when a border version is unresolved")
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	interior := Node{
		Key:     NodeKey{Blob: 3, Version: 9, Range: NodeRange{8, 4}},
		LeftVer: 9, RightVer: 2,
	}
	b := interior.Encode()
	got, err := DecodeNode(b, interior.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.LeftVer != 9 || got.RightVer != 2 || got.Leaf != nil {
		t.Errorf("interior round-trip = %+v", got)
	}

	leaf := Node{
		Key: NodeKey{Blob: 3, Version: 9, Range: NodeRange{5, 1}},
		Leaf: &LeafData{
			Write: 77, RelPage: 3, Providers: []uint32{2, 5}, Checksum: 0xfeed,
		},
	}
	b = leaf.Encode()
	got, err = DecodeNode(b, leaf.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf == nil || got.Leaf.Write != 77 || got.Leaf.RelPage != 3 ||
		got.Leaf.Checksum != 0xfeed || len(got.Leaf.Providers) != 2 {
		t.Errorf("leaf round-trip = %+v", got.Leaf)
	}
}

func TestDecodeNodeKeyMismatch(t *testing.T) {
	n := Node{Key: NodeKey{Blob: 1, Version: 1, Range: NodeRange{0, 2}}}
	b := n.Encode()
	wrong := NodeKey{Blob: 2, Version: 1, Range: NodeRange{0, 2}}
	if _, err := DecodeNode(b, wrong); err == nil {
		t.Error("key mismatch not detected")
	}
}

func TestDecodeNodeShapeMismatch(t *testing.T) {
	// A leaf payload claiming an interior range must be rejected.
	n := Node{
		Key:  NodeKey{Blob: 1, Version: 1, Range: NodeRange{0, 1}},
		Leaf: &LeafData{Write: 1},
	}
	b := n.Encode()
	// Craft a decode expectation with an interior range by re-encoding
	// with a doctored key.
	n2 := Node{Key: NodeKey{Blob: 1, Version: 1, Range: NodeRange{0, 2}}, Leaf: &LeafData{Write: 1}}
	b2 := n2.Encode()
	if _, err := DecodeNode(b2, n2.Key); err == nil {
		t.Error("leaf payload on interior range not rejected")
	}
	if _, err := DecodeNode(b, n.Key); err != nil {
		t.Errorf("valid leaf rejected: %v", err)
	}
}

func TestBytesToPages(t *testing.T) {
	pr, err := BytesToPages(128<<10, 256<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if pr != (PageRange{2, 4}) {
		t.Errorf("pr = %v, want [2,6)", pr)
	}
	if _, err := BytesToPages(1, 64<<10, 64<<10); err == nil {
		t.Error("unaligned offset accepted")
	}
	if _, err := BytesToPages(0, 1000, 64<<10); err == nil {
		t.Error("unaligned length accepted")
	}
	if _, err := BytesToPages(0, 0, 64<<10); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := BytesToPages(0, 64, 100); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
}

func TestNodeKeyHashDisperses(t *testing.T) {
	seen := map[uint64]bool{}
	for v := Version(1); v <= 64; v++ {
		for s := uint64(0); s < 16; s++ {
			k := NodeKey{Blob: 1, Version: v, Range: NodeRange{s, 1}}
			h := k.Hash()
			if seen[h] {
				t.Fatalf("hash collision at %+v", k)
			}
			seen[h] = true
		}
	}
}

func BenchmarkBuild128PageWrite(b *testing.B) {
	const total = 1 << 24 // 1 TB at 64 KB pages
	wr := PageRange{12345 * 128, 128}
	borders := Borders(total, wr)
	ivm, _ := NewIntervalVersionMap(total)
	ivm.ResolveBorders(borders)
	resolve := BorderResolver(borders)
	leaf := func(p uint64) (LeafData, error) {
		return LeafData{Write: 1, RelPage: uint32(p - wr.First)}, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(1, 5, total, wr, resolve, leaf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNodeStripeRefRoundTrip(t *testing.T) {
	leaf := Node{
		Key: NodeKey{Blob: 3, Version: 9, Range: NodeRange{5, 1}},
		Leaf: &LeafData{
			Write: 77, RelPage: 5, Providers: []uint32{2}, Checksum: 0xfeed,
			Stripe: &StripeRef{
				K: 4, M: 2, FirstRel: 4, ParityRel0: 1<<31 | 2,
				Provs: []uint32{2, 3, 4, 5, 6, 7},
				Sums:  []uint64{1, 2, 3, 4, 5, 6},
			},
		},
	}
	got, err := DecodeNode(leaf.Encode(), leaf.Key)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Leaf.Stripe
	if s == nil || s.K != 4 || s.M != 2 || s.FirstRel != 4 || s.ParityRel0 != 1<<31|2 ||
		len(s.Provs) != 6 || s.Provs[5] != 7 || len(s.Sums) != 6 || s.Sums[5] != 6 {
		t.Fatalf("stripe round-trip = %+v", s)
	}
	// Slot addressing both ways.
	if s.SlotRel(1) != 5 || s.SlotRel(4) != 1<<31|2 || s.SlotRel(5) != 1<<31|3 {
		t.Errorf("SlotRel = %d, %d, %d", s.SlotRel(1), s.SlotRel(4), s.SlotRel(5))
	}
	if s.SlotOf(5) != 1 || s.SlotOf(1<<31|3) != 5 || s.SlotOf(99) != -1 {
		t.Errorf("SlotOf = %d, %d, %d", s.SlotOf(5), s.SlotOf(1<<31|3), s.SlotOf(99))
	}

	// A ref whose slice lengths disagree with its geometry is rejected.
	leaf.Leaf.Stripe.Provs = leaf.Leaf.Stripe.Provs[:5]
	if _, err := DecodeNode(leaf.Encode(), leaf.Key); err == nil {
		t.Error("short Provs slice not rejected")
	}
}
