// Package meta implements the metadata representation at the heart of the
// paper: a per-version distributed segment tree over the page space of a
// blob, plus the interval-version bookkeeping the version manager uses to
// precompute the "weaving" of a new partial tree into the forest of
// earlier versions (paper §III.C and §IV.C).
//
// Terminology follows the paper: a blob of totalPages pages (a power of
// two) has, per version, a full binary tree whose root covers
// [0, totalPages) and whose leaves cover single pages. A node is
// identified by (blob, version, start, size); it exists exactly when the
// version's written segment intersects [start, start+size). Interior
// nodes record the version numbers of their two children; a child version
// of zero denotes the implicit all-zero subtree of the initial blob
// state. Leaves record where the page bytes live (the owning write and
// its replica providers).
package meta

import (
	"fmt"

	"blob/internal/wire"
)

// Version numbers a snapshot of a blob. Versions are consecutive
// integers; ZeroVersion is the implicit all-zero initial string.
type Version = uint64

// ZeroVersion is the version of the initial, all-zero blob content.
const ZeroVersion Version = 0

// PageRange is a run of consecutive pages: [First, First+Count).
type PageRange struct {
	First uint64
	Count uint64
}

// End returns the exclusive upper page bound.
func (p PageRange) End() uint64 { return p.First + p.Count }

// Empty reports whether the range covers no pages.
func (p PageRange) Empty() bool { return p.Count == 0 }

// Intersects reports whether p overlaps node range r.
func (p PageRange) Intersects(r NodeRange) bool {
	return p.First < r.End() && r.Start < p.End()
}

// String renders the range for diagnostics.
func (p PageRange) String() string {
	return fmt.Sprintf("[%d,%d)", p.First, p.End())
}

// NodeRange is the page interval covered by a segment tree node:
// [Start, Start+Size) with Size a power of two and Start a multiple of
// Size (the standard segment tree alignment).
type NodeRange struct {
	Start uint64
	Size  uint64
}

// End returns the exclusive upper page bound.
func (r NodeRange) End() uint64 { return r.Start + r.Size }

// IsLeaf reports whether the node covers a single page.
func (r NodeRange) IsLeaf() bool { return r.Size == 1 }

// Children returns the two halves of the node's interval.
func (r NodeRange) Children() (left, right NodeRange) {
	h := r.Size / 2
	return NodeRange{r.Start, h}, NodeRange{r.Start + h, h}
}

// Contains reports whether page p falls inside the node's interval.
func (r NodeRange) Contains(p uint64) bool {
	return p >= r.Start && p < r.End()
}

// String renders the range for diagnostics.
func (r NodeRange) String() string {
	return fmt.Sprintf("(%d,%d)", r.Start, r.Size)
}

// IsPowerOfTwo reports whether v is a positive power of two.
func IsPowerOfTwo(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// ValidateGeometry checks that totalPages is a power of two and wr is a
// non-empty in-bounds page range.
func ValidateGeometry(totalPages uint64, wr PageRange) error {
	if !IsPowerOfTwo(totalPages) {
		return fmt.Errorf("meta: totalPages %d is not a power of two", totalPages)
	}
	if wr.Empty() {
		return fmt.Errorf("meta: empty page range")
	}
	if wr.End() > totalPages || wr.End() < wr.First {
		return fmt.Errorf("meta: range %v exceeds blob of %d pages", wr, totalPages)
	}
	return nil
}

// NodeKey is the global identity of one tree node.
type NodeKey struct {
	Blob    uint64
	Version Version
	Range   NodeRange
}

// Hash maps the key onto the DHT key space; nodes of the same tree
// disperse uniformly over the metadata providers.
func (k NodeKey) Hash() uint64 {
	return wire.HashFields(k.Blob, k.Version, k.Range.Start, k.Range.Size)
}

// RootKey returns the key of version v's root node.
func RootKey(blob uint64, v Version, totalPages uint64) NodeKey {
	return NodeKey{Blob: blob, Version: v, Range: NodeRange{0, totalPages}}
}

// BytesToPages converts a byte extent to a page range, requiring page
// alignment: the paper's access unit is the segment, a concatenation of
// consecutive pages.
func BytesToPages(off, length, pageSize uint64) (PageRange, error) {
	if !IsPowerOfTwo(pageSize) {
		return PageRange{}, fmt.Errorf("meta: page size %d is not a power of two", pageSize)
	}
	if off%pageSize != 0 {
		return PageRange{}, fmt.Errorf("meta: offset %d not aligned to page size %d", off, pageSize)
	}
	if length == 0 || length%pageSize != 0 {
		return PageRange{}, fmt.Errorf("meta: length %d not a positive multiple of page size %d", length, pageSize)
	}
	return PageRange{First: off / pageSize, Count: length / pageSize}, nil
}
