package meta

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// geometry is a quick-generatable tree geometry plus write extent.
type geometry struct {
	TotalLog uint8 // tree size = 2^(TotalLog%10 + 1)
	First    uint16
	Count    uint16
}

func (g geometry) normalize() (total uint64, wr PageRange) {
	total = uint64(1) << (g.TotalLog%10 + 1)
	first := uint64(g.First) % total
	count := uint64(g.Count)%(total-first) + 1
	return total, PageRange{First: first, Count: count}
}

// Generate implements quick.Generator for geometry.
func (geometry) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(geometry{
		TotalLog: uint8(r.Uint32()),
		First:    uint16(r.Uint32()),
		Count:    uint16(r.Uint32()),
	})
}

func TestQuickWriteSetAllIntersect(t *testing.T) {
	f := func(g geometry) bool {
		total, wr := g.normalize()
		for _, r := range WriteSet(total, wr) {
			if !wr.Intersects(r) {
				return false
			}
			if !IsPowerOfTwo(r.Size) || r.Start%r.Size != 0 {
				return false // misaligned node
			}
			if r.End() > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteSetLeafCountEqualsPages(t *testing.T) {
	f := func(g geometry) bool {
		total, wr := g.normalize()
		leaves := 0
		for _, r := range WriteSet(total, wr) {
			if r.IsLeaf() {
				leaves++
			}
		}
		return uint64(leaves) == wr.Count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBordersDisjointFromWrite(t *testing.T) {
	f := func(g geometry) bool {
		total, wr := g.normalize()
		for _, b := range Borders(total, wr) {
			if wr.Intersects(b.Child) {
				return false
			}
			l, r := b.Parent.Children()
			if b.Child != l && b.Child != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBuildNodeCountMatchesWriteSet(t *testing.T) {
	f := func(g geometry) bool {
		total, wr := g.normalize()
		borders := Borders(total, wr)
		for i := range borders {
			borders[i].Ver = 0
		}
		nodes, err := Build(1, 1, total, wr, BorderResolver(borders),
			func(p uint64) (LeafData, error) {
				return LeafData{Write: 1, RelPage: uint32(p - wr.First)}, nil
			})
		if err != nil {
			return false
		}
		return len(nodes) == CountWriteSet(total, wr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNodeEncodeDecode(t *testing.T) {
	f := func(blob, ver uint64, startRaw, sizeLog uint8, write uint64, rel uint32, provs []uint32, sum uint64, leaf bool) bool {
		if ver == 0 {
			ver = 1
		}
		size := uint64(1) << (sizeLog % 16)
		if leaf {
			size = 1
		} else if size == 1 {
			size = 2
		}
		start := (uint64(startRaw) % 16) * size
		n := Node{Key: NodeKey{Blob: blob, Version: ver, Range: NodeRange{Start: start, Size: size}}}
		if leaf {
			n.Leaf = &LeafData{Write: write, RelPage: rel, Providers: provs, Checksum: sum}
		} else {
			n.LeftVer = write
			n.RightVer = sum
		}
		got, err := DecodeNode(n.Encode(), n.Key)
		if err != nil {
			return false
		}
		if leaf {
			if got.Leaf == nil || got.Leaf.Write != write || got.Leaf.RelPage != rel ||
				got.Leaf.Checksum != sum || len(got.Leaf.Providers) != len(provs) {
				return false
			}
			for i := range provs {
				if got.Leaf.Providers[i] != provs[i] {
					return false
				}
			}
			return true
		}
		return got.LeftVer == write && got.RightVer == sum && got.Leaf == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIVMapAgainstModel(t *testing.T) {
	type op struct {
		First, Count uint16
	}
	f := func(totalLog uint8, ops []op, qFirst, qCount uint16) bool {
		total := uint64(1) << (totalLog%8 + 1)
		ivm, err := NewIntervalVersionMap(total)
		if err != nil {
			return false
		}
		model := newModelMap(total)
		for i, o := range ops {
			first := uint64(o.First) % total
			count := uint64(o.Count)%(total-first) + 1
			wr := PageRange{First: first, Count: count}
			v := Version(i + 1)
			ivm.Assign(wr, v)
			model.assign(wr, v)
		}
		qf := uint64(qFirst) % total
		qc := uint64(qCount)%(total-qf) + 1
		q := PageRange{First: qf, Count: qc}
		return ivm.MaxIntersectingPages(q) == model.maxIntersecting(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
