package meta

import "fmt"

// This file implements the tree construction of paper §III.C: a WRITE
// producing version v builds "the smallest (possibly incomplete) binary
// tree of the same height as the initial tree such that its leaves are
// exactly the leaves covering the pages of the patched segment", then
// weaves it into the previous version's tree by completing each border
// node with a reference to the corresponding child of an earlier
// version.
//
// In our representation the weaving is implicit: every created interior
// node stores the version number of each child. A child that intersects
// the written segment is version v itself; a child that does not (the
// missing child of a border node) is resolved to the latest version
// whose write intersected that child's range — computed by the version
// manager from its interval map (see Borders and internal/vmanager).

// Border is one border-node child: a range outside the written segment
// whose owning version must be resolved by the version manager.
type Border struct {
	// Parent is the created node whose child this is.
	Parent NodeRange
	// Child is the range the resolved version must cover.
	Child NodeRange
	// Ver is the resolved version (filled by the version manager).
	Ver Version
}

// walk visits, in deterministic pre-order (parent before children, left
// before right), every node range of the tree over totalPages that
// intersects wr. For interior nodes it reports each child range that does
// NOT intersect wr through the border callback.
func walk(totalPages uint64, wr PageRange, visit func(NodeRange), border func(parent, child NodeRange)) {
	var rec func(r NodeRange)
	rec = func(r NodeRange) {
		if !wr.Intersects(r) {
			return
		}
		if visit != nil {
			visit(r)
		}
		if r.IsLeaf() {
			return
		}
		left, right := r.Children()
		if wr.Intersects(left) {
			rec(left)
		} else if border != nil {
			border(r, left)
		}
		if wr.Intersects(right) {
			rec(right)
		} else if border != nil {
			border(r, right)
		}
	}
	rec(NodeRange{0, totalPages})
}

// WriteSet returns every node range a write of wr creates, in pre-order.
// The count is O(wr.Count + log2(totalPages)).
func WriteSet(totalPages uint64, wr PageRange) []NodeRange {
	var out []NodeRange
	walk(totalPages, wr, func(r NodeRange) { out = append(out, r) }, nil)
	return out
}

// Borders returns, in deterministic order, the border children of the
// partial tree a write of wr creates: the child ranges whose versions the
// version manager must resolve. Ver fields are left zero.
func Borders(totalPages uint64, wr PageRange) []Border {
	var out []Border
	walk(totalPages, wr, nil, func(parent, child NodeRange) {
		out = append(out, Border{Parent: parent, Child: child})
	})
	return out
}

// CountWriteSet returns how many nodes a write of wr creates, without
// allocating the list.
func CountWriteSet(totalPages uint64, wr PageRange) int {
	n := 0
	walk(totalPages, wr, func(NodeRange) { n++ }, nil)
	return n
}

// Build materializes every node of version v's partial tree for a write
// of wr. Border children are resolved through resolve (typically a map
// lookup over the Borders the version manager returned); leaf payloads
// come from leafFor, invoked with the absolute page index. The returned
// nodes are in pre-order.
//
// Build is pure computation: the caller stores the nodes through the
// metadata provider client. Crucially — this is the lock-free property of
// paper §IV.C — Build needs no view of other writers' trees: the resolve
// set was precomputed by the version manager at version-assignment time,
// so metadata construction proceeds in complete isolation even while
// earlier versions are still being written.
func Build(blob uint64, v Version, totalPages uint64, wr PageRange,
	resolve func(NodeRange) (Version, error),
	leafFor func(page uint64) (LeafData, error)) ([]Node, error) {

	if err := ValidateGeometry(totalPages, wr); err != nil {
		return nil, err
	}
	if v == ZeroVersion {
		return nil, fmt.Errorf("meta: cannot build tree for the zero version")
	}
	out := make([]Node, 0, CountWriteSet(totalPages, wr))
	var rec func(r NodeRange) error
	rec = func(r NodeRange) error {
		n := Node{Key: NodeKey{Blob: blob, Version: v, Range: r}}
		if r.IsLeaf() {
			leaf, err := leafFor(r.Start)
			if err != nil {
				return err
			}
			n.Leaf = &leaf
			out = append(out, n)
			return nil
		}
		left, right := r.Children()
		if wr.Intersects(left) {
			n.LeftVer = v
		} else {
			ver, err := resolve(left)
			if err != nil {
				return err
			}
			n.LeftVer = ver
		}
		if wr.Intersects(right) {
			n.RightVer = v
		} else {
			ver, err := resolve(right)
			if err != nil {
				return err
			}
			n.RightVer = ver
		}
		out = append(out, n)
		if wr.Intersects(left) {
			if err := rec(left); err != nil {
				return err
			}
		}
		if wr.Intersects(right) {
			if err := rec(right); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(NodeRange{0, totalPages}); err != nil {
		return nil, err
	}
	return out, nil
}

// BorderResolver converts a resolved border list into the resolve
// function Build expects. Unknown ranges are an error: they indicate the
// client and version manager disagree on tree geometry.
func BorderResolver(borders []Border) func(NodeRange) (Version, error) {
	m := make(map[NodeRange]Version, len(borders))
	for _, b := range borders {
		m[b.Child] = b.Ver
	}
	return func(r NodeRange) (Version, error) {
		v, ok := m[r]
		if !ok {
			return 0, fmt.Errorf("meta: no resolved version for border child %v", r)
		}
		return v, nil
	}
}

// TreeHeight returns the number of levels in the tree over totalPages
// (a single-page blob has height 1).
func TreeHeight(totalPages uint64) int {
	h := 1
	for s := totalPages; s > 1; s /= 2 {
		h++
	}
	return h
}
