package meta

import (
	"fmt"

	"blob/internal/wire"
)

// LeafData records where one page's bytes physically live. The page is
// keyed on data providers by (blob, Write, RelPage): Write is the
// client-generated write identity (pages are pushed before the version
// number exists — paper §III.B), and RelPage the page's index relative to
// the write's first page. Providers lists the replica provider IDs.
// Checksum is the FNV-1a hash of the page content, verified on read.
type LeafData struct {
	Write     uint64
	RelPage   uint32
	Providers []uint32
	Checksum  uint64
}

// Node is one segment tree node: its key plus either child versions
// (interior) or leaf data. A child version of ZeroVersion denotes the
// implicit all-zero subtree.
type Node struct {
	Key NodeKey

	// Interior fields (Key.Range.Size > 1).
	LeftVer  Version
	RightVer Version

	// Leaf field (Key.Range.Size == 1); nil for interior nodes.
	Leaf *LeafData
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Key.Range.IsLeaf() }

const (
	nodeFlagLeaf = 1 << 0
)

// Encode serializes the node. The key is embedded in the value so a
// decoder can detect hash collisions or routing mistakes.
func (n *Node) Encode() []byte {
	w := wire.NewWriter(64 + 4*len(nProviders(n)))
	w.Uint64(n.Key.Blob)
	w.Uvarint(n.Key.Version)
	w.Uvarint(n.Key.Range.Start)
	w.Uvarint(n.Key.Range.Size)
	if n.Leaf != nil {
		w.Uint8(nodeFlagLeaf)
		w.Uvarint(n.Leaf.Write)
		w.Uvarint(uint64(n.Leaf.RelPage))
		w.Uint64(n.Leaf.Checksum)
		w.Uint32Slice(n.Leaf.Providers)
	} else {
		w.Uint8(0)
		w.Uvarint(n.LeftVer)
		w.Uvarint(n.RightVer)
	}
	return w.Bytes()
}

func nProviders(n *Node) []uint32 {
	if n.Leaf == nil {
		return nil
	}
	return n.Leaf.Providers
}

// DecodeNode parses a node and verifies it matches the expected key.
func DecodeNode(body []byte, want NodeKey) (*Node, error) {
	r := wire.NewReader(body)
	var n Node
	n.Key.Blob = r.Uint64()
	n.Key.Version = r.Uvarint()
	n.Key.Range.Start = r.Uvarint()
	n.Key.Range.Size = r.Uvarint()
	flags := r.Uint8()
	if flags&nodeFlagLeaf != 0 {
		leaf := &LeafData{
			Write:   r.Uvarint(),
			RelPage: uint32(r.Uvarint()),
		}
		leaf.Checksum = r.Uint64()
		leaf.Providers = r.Uint32Slice()
		n.Leaf = leaf
	} else {
		n.LeftVer = r.Uvarint()
		n.RightVer = r.Uvarint()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("meta: decode node: %w", err)
	}
	if n.Key != want {
		return nil, fmt.Errorf("meta: node key mismatch: stored %+v, expected %+v (hash collision or routing bug)", n.Key, want)
	}
	if n.Leaf != nil && !n.Key.Range.IsLeaf() {
		return nil, fmt.Errorf("meta: leaf payload on interior range %v", n.Key.Range)
	}
	if n.Leaf == nil && n.Key.Range.IsLeaf() {
		return nil, fmt.Errorf("meta: interior payload on leaf range %v", n.Key.Range)
	}
	return &n, nil
}
