package meta

import (
	"fmt"

	"blob/internal/wire"
)

// LeafData records where one page's bytes physically live. The page is
// keyed on data providers by (blob, Write, RelPage): Write is the
// client-generated write identity (pages are pushed before the version
// number exists — paper §III.B), and RelPage the page's index relative to
// the write's first page. Providers lists the replica provider IDs.
// Checksum is the FNV-1a hash of the page content, verified on read.
//
// Under rs(k,m) redundancy (docs/erasure.md) Providers holds the single
// provider of the page's data shard and Stripe describes the rest of
// the page's stripe — everything a degraded read or the repair agent
// needs to reconstruct any shard from k survivors without further
// metadata fetches.
type LeafData struct {
	Write     uint64
	RelPage   uint32
	Providers []uint32
	Checksum  uint64
	Stripe    *StripeRef
}

// StripeRef is one stripe's full layout, embedded in each of its data
// leaves (stripe members share a write, so the duplication is a few
// dozen bytes per leaf and keeps reconstruction single-fetch). Slot i
// of [0,K) is the data page at rel FirstRel+i; slot K+j the parity
// page at rel ParityRel0+j. K is the stripe's own width — a short
// final stripe records its actual data count, making every stripe
// self-describing.
type StripeRef struct {
	K, M       uint8
	FirstRel   uint32
	ParityRel0 uint32
	// Provs holds the K+M provider IDs of the stripe's slots; Sums the
	// matching shard checksums (verified on every reconstruction pull).
	Provs []uint32
	Sums  []uint64
}

// SlotRel returns the rel-page of stripe slot i (data then parity).
func (s *StripeRef) SlotRel(i int) uint32 {
	if i < int(s.K) {
		return s.FirstRel + uint32(i)
	}
	return s.ParityRel0 + uint32(i-int(s.K))
}

// SlotOf returns the stripe slot index of a rel-page, or -1.
func (s *StripeRef) SlotOf(rel uint32) int {
	if rel >= s.FirstRel && rel < s.FirstRel+uint32(s.K) {
		return int(rel - s.FirstRel)
	}
	if rel >= s.ParityRel0 && rel < s.ParityRel0+uint32(s.M) {
		return int(s.K) + int(rel-s.ParityRel0)
	}
	return -1
}

// Node is one segment tree node: its key plus either child versions
// (interior) or leaf data. A child version of ZeroVersion denotes the
// implicit all-zero subtree.
type Node struct {
	Key NodeKey

	// Interior fields (Key.Range.Size > 1).
	LeftVer  Version
	RightVer Version

	// Leaf field (Key.Range.Size == 1); nil for interior nodes.
	Leaf *LeafData
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Key.Range.IsLeaf() }

const (
	nodeFlagLeaf   = 1 << 0
	nodeFlagStripe = 1 << 1
)

// Encode serializes the node. The key is embedded in the value so a
// decoder can detect hash collisions or routing mistakes.
func (n *Node) Encode() []byte {
	w := wire.NewWriter(64 + 4*len(nProviders(n)))
	n.EncodeTo(w)
	return w.Bytes()
}

// EncodeTo appends the node's encoding to w, so batched callers
// (mstore.StoreNodes) can pack a whole write's nodes into one shared
// arena instead of allocating an encode buffer per node.
func (n *Node) EncodeTo(w *wire.Writer) {
	w.Uint64(n.Key.Blob)
	w.Uvarint(n.Key.Version)
	w.Uvarint(n.Key.Range.Start)
	w.Uvarint(n.Key.Range.Size)
	if n.Leaf != nil {
		flags := uint8(nodeFlagLeaf)
		if n.Leaf.Stripe != nil {
			flags |= nodeFlagStripe
		}
		w.Uint8(flags)
		w.Uvarint(n.Leaf.Write)
		w.Uvarint(uint64(n.Leaf.RelPage))
		w.Uint64(n.Leaf.Checksum)
		w.Uint32Slice(n.Leaf.Providers)
		if s := n.Leaf.Stripe; s != nil {
			w.Uint8(s.K)
			w.Uint8(s.M)
			w.Uint32(s.FirstRel)
			w.Uint32(s.ParityRel0)
			w.Uint32Slice(s.Provs)
			w.Uint64Slice(s.Sums)
		}
	} else {
		w.Uint8(0)
		w.Uvarint(n.LeftVer)
		w.Uvarint(n.RightVer)
	}
}

func nProviders(n *Node) []uint32 {
	if n.Leaf == nil {
		return nil
	}
	return n.Leaf.Providers
}

// DecodeNode parses a node and verifies it matches the expected key.
func DecodeNode(body []byte, want NodeKey) (*Node, error) {
	r := wire.NewReader(body)
	var n Node
	n.Key.Blob = r.Uint64()
	n.Key.Version = r.Uvarint()
	n.Key.Range.Start = r.Uvarint()
	n.Key.Range.Size = r.Uvarint()
	flags := r.Uint8()
	if flags&nodeFlagLeaf != 0 {
		leaf := &LeafData{
			Write:   r.Uvarint(),
			RelPage: uint32(r.Uvarint()),
		}
		leaf.Checksum = r.Uint64()
		leaf.Providers = r.Uint32Slice()
		if flags&nodeFlagStripe != 0 {
			s := &StripeRef{
				K:          r.Uint8(),
				M:          r.Uint8(),
				FirstRel:   r.Uint32(),
				ParityRel0: r.Uint32(),
			}
			s.Provs = r.Uint32Slice()
			s.Sums = r.Uint64Slice()
			if r.Err() == nil {
				if want := int(s.K) + int(s.M); len(s.Provs) != want || len(s.Sums) != want {
					return nil, fmt.Errorf("meta: stripe ref shape %d provs/%d sums for rs(%d,%d)",
						len(s.Provs), len(s.Sums), s.K, s.M)
				}
			}
			leaf.Stripe = s
		}
		n.Leaf = leaf
	} else {
		n.LeftVer = r.Uvarint()
		n.RightVer = r.Uvarint()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("meta: decode node: %w", err)
	}
	if n.Key != want {
		return nil, fmt.Errorf("meta: node key mismatch: stored %+v, expected %+v (hash collision or routing bug)", n.Key, want)
	}
	if n.Leaf != nil && !n.Key.Range.IsLeaf() {
		return nil, fmt.Errorf("meta: leaf payload on interior range %v", n.Key.Range)
	}
	if n.Leaf == nil && n.Key.Range.IsLeaf() {
		return nil, fmt.Errorf("meta: interior payload on leaf range %v", n.Key.Range)
	}
	return &n, nil
}
