package meta

import (
	"math/rand"
	"testing"
)

// DecodeNode consumes bytes fetched from remote, potentially corrupted
// storage: it must never panic and must reject anything that does not
// round-trip to the expected key.

func TestDecodeNodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	key := NodeKey{Blob: 1, Version: 1, Range: NodeRange{Start: 0, Size: 4}}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		// Any outcome but a panic is acceptable; a success must carry
		// the exact key (which random bytes essentially never encode).
		node, err := DecodeNode(buf, key)
		if err == nil && node.Key != key {
			t.Fatalf("decode accepted wrong key: %+v", node.Key)
		}
	}
}

func TestDecodeNodeBitFlips(t *testing.T) {
	// Flip every single bit of a valid encoding: decoding must either
	// fail or, when the flip lands in payload fields that are not
	// key/shape-relevant, produce a node with the correct key. No panics.
	orig := Node{
		Key: NodeKey{Blob: 7, Version: 3, Range: NodeRange{Start: 8, Size: 1}},
		Leaf: &LeafData{
			Write: 99, RelPage: 2, Providers: []uint32{1, 4}, Checksum: 0xbeef,
		},
	}
	enc := orig.Encode()
	for byteIdx := 0; byteIdx < len(enc); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[byteIdx] ^= 1 << bit
			node, err := DecodeNode(mut, orig.Key)
			if err == nil && node.Key != orig.Key {
				t.Fatalf("flip %d.%d: accepted with wrong key %+v", byteIdx, bit, node.Key)
			}
		}
	}
}

func TestDecodeNodeTruncations(t *testing.T) {
	orig := Node{
		Key:     NodeKey{Blob: 2, Version: 5, Range: NodeRange{Start: 0, Size: 8}},
		LeftVer: 5, RightVer: 1,
	}
	enc := orig.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeNode(enc[:cut], orig.Key); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeNode(enc, orig.Key); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}
