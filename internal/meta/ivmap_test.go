package meta

import (
	"math/rand"
	"testing"
)

// modelMap is the naive O(pages) reference implementation.
type modelMap struct {
	pages []Version
}

func newModelMap(total uint64) *modelMap {
	return &modelMap{pages: make([]Version, total)}
}

func (m *modelMap) assign(wr PageRange, v Version) {
	for p := wr.First; p < wr.End(); p++ {
		m.pages[p] = v
	}
}

func (m *modelMap) maxIntersecting(q PageRange) Version {
	var best Version
	end := q.End()
	if end > uint64(len(m.pages)) {
		end = uint64(len(m.pages))
	}
	for p := q.First; p < end; p++ {
		if m.pages[p] > best {
			best = m.pages[p]
		}
	}
	return best
}

func TestIVMapMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		total := uint64(1) << (rng.Intn(8) + 1) // up to 256 pages
		ivm, err := NewIntervalVersionMap(total)
		if err != nil {
			t.Fatal(err)
		}
		model := newModelMap(total)
		for v := Version(1); v <= 60; v++ {
			first := uint64(rng.Intn(int(total)))
			count := uint64(rng.Intn(int(total-first))) + 1
			wr := PageRange{first, count}
			ivm.Assign(wr, v)
			model.assign(wr, v)

			// Check a batch of random queries after every write.
			for q := 0; q < 20; q++ {
				qf := uint64(rng.Intn(int(total)))
				qc := uint64(rng.Intn(int(total-qf))) + 1
				pq := PageRange{qf, qc}
				got := ivm.MaxIntersectingPages(pq)
				want := model.maxIntersecting(pq)
				if got != want {
					t.Fatalf("trial %d v%d: query %v = %d, want %d", trial, v, pq, got, want)
				}
			}
		}
	}
}

func TestIVMapFreshIsZero(t *testing.T) {
	ivm, _ := NewIntervalVersionMap(64)
	if got := ivm.MaxIntersecting(NodeRange{0, 64}); got != ZeroVersion {
		t.Errorf("fresh map max = %d, want 0", got)
	}
	if got := ivm.MaxIntersecting(NodeRange{8, 8}); got != ZeroVersion {
		t.Errorf("fresh sub-range max = %d, want 0", got)
	}
}

func TestIVMapQueryOutOfBounds(t *testing.T) {
	ivm, _ := NewIntervalVersionMap(16)
	ivm.Assign(PageRange{0, 16}, 3)
	if got := ivm.MaxIntersectingPages(PageRange{100, 4}); got != ZeroVersion {
		t.Errorf("out-of-bounds query = %d, want 0", got)
	}
	if got := ivm.MaxIntersectingPages(PageRange{0, 0}); got != ZeroVersion {
		t.Errorf("empty query = %d, want 0", got)
	}
}

func TestIVMapMonotonicityEnforced(t *testing.T) {
	ivm, _ := NewIntervalVersionMap(8)
	ivm.Assign(PageRange{0, 4}, 5)
	defer func() {
		if recover() == nil {
			t.Error("non-monotone Assign should panic")
		}
	}()
	ivm.Assign(PageRange{4, 4}, 3)
}

func TestIVMapRejectsBadGeometry(t *testing.T) {
	if _, err := NewIntervalVersionMap(12); err == nil {
		t.Error("non-power-of-two total accepted")
	}
	ivm, _ := NewIntervalVersionMap(8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Assign should panic")
		}
	}()
	ivm.Assign(PageRange{6, 4}, 1)
}

func TestResolveBordersSemantics(t *testing.T) {
	// Three writes; the fourth's borders must see the freshest
	// intersecting version for each border child.
	const total = 16
	ivm, _ := NewIntervalVersionMap(total)
	ivm.Assign(PageRange{0, 16}, 1)
	ivm.Assign(PageRange{0, 4}, 2)
	ivm.Assign(PageRange{12, 4}, 3)

	// Write 4 touches pages [6,8): borders include (4,2)->? and (0,4)->2
	// and (8,8)->3 among others.
	borders := Borders(total, PageRange{6, 2})
	ivm.ResolveBorders(borders)
	got := map[NodeRange]Version{}
	for _, b := range borders {
		got[b.Child] = b.Ver
	}
	if got[NodeRange{0, 4}] != 2 {
		t.Errorf("border (0,4) = %d, want 2", got[NodeRange{0, 4}])
	}
	if got[NodeRange{4, 2}] != 1 {
		t.Errorf("border (4,2) = %d, want 1", got[NodeRange{4, 2}])
	}
	if got[NodeRange{8, 8}] != 3 {
		t.Errorf("border (8,8) = %d, want 3", got[NodeRange{8, 8}])
	}
}

func TestResolveBordersUntouchedRangeIsZero(t *testing.T) {
	const total = 8
	ivm, _ := NewIntervalVersionMap(total)
	// First-ever write to pages [0,2): everything else resolves to the
	// zero version (implicit all-zero subtree).
	borders := Borders(total, PageRange{0, 2})
	ivm.ResolveBorders(borders)
	for _, b := range borders {
		if b.Ver != ZeroVersion {
			t.Errorf("border %v = %d, want 0 on fresh blob", b.Child, b.Ver)
		}
	}
}

func BenchmarkIVMapAssignQuery(b *testing.B) {
	const total = 1 << 24
	ivm, _ := NewIntervalVersionMap(total)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first := uint64(rng.Intn(total - 256))
		ivm.Assign(PageRange{first, 128}, Version(i+1))
		ivm.MaxIntersectingPages(PageRange{first / 2, 4096})
	}
}
