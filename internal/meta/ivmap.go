package meta

import "fmt"

// IntervalVersionMap records, for every page of a blob, the highest
// version number assigned to a write covering that page. The version
// manager holds one per blob and uses it to answer the border queries of
// paper §IV.C: when assigning version v to a write, the latest version
// v' <= v-1 whose segment intersects a border child range R is exactly
// MaxIntersecting(R) evaluated before Assign(wr, v) — versions are
// assigned in increasing order, so the map contains precisely the writes
// numbered 1..v-1 at that moment. That version's node (v', R) is
// guaranteed to exist (a write creates nodes for every range its segment
// intersects), even if v' is still being written: node keys are
// deterministic, so referencing before storing is sound.
//
// The structure is a sparse segment tree over [0, totalPages) with lazy
// range assignment and range-max queries, O(log totalPages) per
// operation and memory proportional to the number of distinct write
// extents — a 1 TB blob of 64 KB pages (2^24 pages) costs at most ~24
// nodes per write.
type IntervalVersionMap struct {
	total uint64
	root  *ivNode
}

type ivNode struct {
	// full, when nonzero, means the entire subtree range is covered by
	// this version (a pending lazy assignment not yet pushed down).
	full Version
	// max is the maximum version present anywhere in the subtree.
	max         Version
	left, right *ivNode
}

// NewIntervalVersionMap creates a map over a blob of totalPages pages.
func NewIntervalVersionMap(totalPages uint64) (*IntervalVersionMap, error) {
	if !IsPowerOfTwo(totalPages) {
		return nil, fmt.Errorf("meta: totalPages %d is not a power of two", totalPages)
	}
	return &IntervalVersionMap{total: totalPages, root: &ivNode{}}, nil
}

// TotalPages returns the page-space size the map covers.
func (m *IntervalVersionMap) TotalPages() uint64 { return m.total }

// Assign records that version v wrote the pages of wr. Versions must be
// assigned in non-decreasing order (the version manager's serialization
// guarantees this); violating that is a programming error and panics.
func (m *IntervalVersionMap) Assign(wr PageRange, v Version) {
	if err := ValidateGeometry(m.total, wr); err != nil {
		panic(fmt.Sprintf("meta: bad Assign range: %v", err))
	}
	if v < m.root.max {
		panic(fmt.Sprintf("meta: Assign version %d below current max %d", v, m.root.max))
	}
	assign(m.root, NodeRange{0, m.total}, wr, v)
}

func assign(n *ivNode, r NodeRange, wr PageRange, v Version) {
	if !wr.Intersects(r) {
		return
	}
	if wr.First <= r.Start && r.End() <= wr.End() {
		// Fully covered: lazy assignment. Because versions are monotone,
		// overwriting any pending lazy value is correct.
		n.full = v
		n.max = v
		return
	}
	push(n)
	left, right := r.Children()
	assign(child(n, &n.left), left, wr, v)
	assign(child(n, &n.right), right, wr, v)
	n.max = maxVer(childMax(n.left), childMax(n.right))
}

// MaxIntersecting returns the highest version assigned to any page in q,
// or ZeroVersion if no write has touched q.
func (m *IntervalVersionMap) MaxIntersecting(q NodeRange) Version {
	if q.Size == 0 || q.Start >= m.total {
		return ZeroVersion
	}
	return query(m.root, NodeRange{0, m.total}, PageRange{q.Start, q.Size})
}

// MaxIntersectingPages is MaxIntersecting for an arbitrary page range.
func (m *IntervalVersionMap) MaxIntersectingPages(q PageRange) Version {
	if q.Empty() || q.First >= m.total {
		return ZeroVersion
	}
	return query(m.root, NodeRange{0, m.total}, q)
}

func query(n *ivNode, r NodeRange, q PageRange) Version {
	if n == nil || !q.Intersects(r) {
		return ZeroVersion
	}
	if n.full != ZeroVersion {
		// Entire subtree uniformly covered by n.full; deeper structure
		// (if any) is superseded.
		return n.full
	}
	if q.First <= r.Start && r.End() <= q.End() {
		return n.max
	}
	left, right := r.Children()
	return maxVer(query(n.left, left, q), query(n.right, right, q))
}

// push propagates a pending full assignment to the children.
func push(n *ivNode) {
	if n.full == ZeroVersion {
		return
	}
	l := child(n, &n.left)
	r := child(n, &n.right)
	l.full, l.max = n.full, n.full
	r.full, r.max = n.full, n.full
	n.full = ZeroVersion
}

// child returns *slot, allocating an empty node on first use.
func child(_ *ivNode, slot **ivNode) *ivNode {
	if *slot == nil {
		*slot = &ivNode{}
	}
	return *slot
}

func childMax(n *ivNode) Version {
	if n == nil {
		return ZeroVersion
	}
	return n.max
}

func maxVer(a, b Version) Version {
	if a > b {
		return a
	}
	return b
}

// ResolveBorders fills the Ver field of each border from the map. It must
// be called BEFORE Assign for the version being created, under the same
// lock — the map then reflects exactly the writes numbered below it.
func (m *IntervalVersionMap) ResolveBorders(borders []Border) {
	for i := range borders {
		borders[i].Ver = m.MaxIntersecting(borders[i].Child)
	}
}
