package meta

import (
	"fmt"
	"math/rand"
	"testing"
)

// forest is an in-memory stand-in for the metadata providers: every built
// node stored by key. It lets the test traverse trees exactly the way a
// reading client would, without any networking.
type forest struct {
	total uint64
	nodes map[NodeKey]*Node
}

func newForest(total uint64) *forest {
	return &forest{total: total, nodes: make(map[NodeKey]*Node)}
}

func (f *forest) store(ns []Node) {
	for i := range ns {
		n := ns[i]
		if _, dup := f.nodes[n.Key]; dup {
			// Write-once store: first wins (matches dht.Store semantics).
			continue
		}
		f.nodes[n.Key] = &n
	}
}

// resolvePage walks version v's tree down to the leaf covering page p.
// It returns (leaf, true) or (zero, false) when the path hits the
// implicit zero subtree.
func (f *forest) resolvePage(t *testing.T, blob uint64, v Version, p uint64) (LeafData, bool) {
	t.Helper()
	if v == ZeroVersion {
		return LeafData{}, false
	}
	cur := NodeKey{Blob: blob, Version: v, Range: NodeRange{0, f.total}}
	for {
		n, ok := f.nodes[cur]
		if !ok {
			t.Fatalf("missing node %+v while resolving page %d of v%d", cur, p, v)
		}
		if n.IsLeaf() {
			return *n.Leaf, true
		}
		left, right := n.Key.Range.Children()
		var childRange NodeRange
		var childVer Version
		if left.Contains(p) {
			childRange, childVer = left, n.LeftVer
		} else {
			childRange, childVer = right, n.RightVer
		}
		if childVer == ZeroVersion {
			return LeafData{}, false
		}
		cur = NodeKey{Blob: blob, Version: childVer, Range: childRange}
	}
}

// flatModel tracks, per version, which write owns each page — the
// specification the tree forest must match.
type flatModel struct {
	total    uint64
	byVer    []([]uint64) // byVer[v][p] = write id owning page p at version v (0 = zero)
	relByVer []([]uint32)
}

func newFlatModel(total uint64) *flatModel {
	m := &flatModel{total: total}
	m.byVer = append(m.byVer, make([]uint64, total)) // version 0: zeros
	m.relByVer = append(m.relByVer, make([]uint32, total))
	return m
}

func (m *flatModel) applyWrite(wr PageRange, writeID uint64) {
	prev := m.byVer[len(m.byVer)-1]
	prevRel := m.relByVer[len(m.relByVer)-1]
	next := append([]uint64(nil), prev...)
	nextRel := append([]uint32(nil), prevRel...)
	for p := wr.First; p < wr.End(); p++ {
		next[p] = writeID
		nextRel[p] = uint32(p - wr.First)
	}
	m.byVer = append(m.byVer, next)
	m.relByVer = append(m.relByVer, nextRel)
}

// TestWeavingOracle drives the full write pipeline (border resolution,
// interval map update, tree build) for a random workload and then
// verifies every page of every version resolves to exactly the write the
// flat model says — i.e. each snapshot equals the successive application
// of all patches up to it (the paper's global serializability property).
func TestWeavingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		total := uint64(1) << (rng.Intn(6) + 2) // 4..128 pages
		const blobID = 42
		f := newForest(total)
		model := newFlatModel(total)
		ivm, err := NewIntervalVersionMap(total)
		if err != nil {
			t.Fatal(err)
		}

		const numWrites = 40
		for v := Version(1); v <= numWrites; v++ {
			first := uint64(rng.Intn(int(total)))
			count := uint64(rng.Intn(int(total-first))) + 1
			wr := PageRange{first, count}
			writeID := uint64(1000 + v)

			borders := Borders(total, wr)
			ivm.ResolveBorders(borders)
			ivm.Assign(wr, v)
			nodes, err := Build(blobID, v, total, wr, BorderResolver(borders),
				func(p uint64) (LeafData, error) {
					return LeafData{Write: writeID, RelPage: uint32(p - wr.First)}, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			f.store(nodes)
			model.applyWrite(wr, writeID)
		}

		for v := Version(0); v <= numWrites; v++ {
			for p := uint64(0); p < total; p++ {
				leaf, ok := f.resolvePage(t, blobID, v, p)
				wantWrite := model.byVer[v][p]
				if !ok {
					if wantWrite != 0 {
						t.Fatalf("trial %d: v%d page %d resolved to zero, want write %d",
							trial, v, p, wantWrite)
					}
					continue
				}
				if leaf.Write != wantWrite {
					t.Fatalf("trial %d: v%d page %d resolved to write %d, want %d",
						trial, v, p, leaf.Write, wantWrite)
				}
				if leaf.RelPage != model.relByVer[v][p] {
					t.Fatalf("trial %d: v%d page %d rel = %d, want %d",
						trial, v, p, leaf.RelPage, model.relByVer[v][p])
				}
			}
		}
	}
}

// TestWeavingOutOfOrderMetadataWrites simulates the concurrency scenario
// of paper §IV.C: several writers get versions assigned in order, but
// store their metadata in a DIFFERENT order (later versions land first).
// Because border versions were precomputed at assignment time, the final
// forest must still resolve identically.
func TestWeavingOutOfOrderMetadataWrites(t *testing.T) {
	const total = 64
	const blobID = 7
	rng := rand.New(rand.NewSource(5))

	ivm, _ := NewIntervalVersionMap(total)
	model := newFlatModel(total)
	f := newForest(total)

	type pendingBuild struct {
		v     Version
		nodes []Node
	}
	var builds []pendingBuild

	const numWrites = 25
	for v := Version(1); v <= numWrites; v++ {
		first := uint64(rng.Intn(total))
		count := uint64(rng.Intn(int(total-first))) + 1
		wr := PageRange{first, count}
		writeID := uint64(2000 + v)

		// Version assignment (serialized at the version manager):
		borders := Borders(total, wr)
		ivm.ResolveBorders(borders)
		ivm.Assign(wr, v)

		// Metadata construction (fully parallel, isolated):
		nodes, err := Build(blobID, v, total, wr, BorderResolver(borders),
			func(p uint64) (LeafData, error) {
				return LeafData{Write: writeID, RelPage: uint32(p - wr.First)}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		builds = append(builds, pendingBuild{v: v, nodes: nodes})
		model.applyWrite(wr, writeID)
	}

	// Store metadata in random order — writers racing to the DHT.
	rng.Shuffle(len(builds), func(i, j int) { builds[i], builds[j] = builds[j], builds[i] })
	for _, b := range builds {
		f.store(b.nodes)
	}

	for v := Version(0); v <= numWrites; v++ {
		for p := uint64(0); p < total; p++ {
			leaf, ok := f.resolvePage(t, blobID, v, p)
			want := model.byVer[v][p]
			if (!ok && want != 0) || (ok && leaf.Write != want) {
				t.Fatalf("v%d page %d: got (%v,%v), want write %d", v, p, leaf, ok, want)
			}
		}
	}
}

// TestWeavingSharing verifies the space-efficiency claim: a small patch
// on a huge blob creates O(patch + log) nodes, sharing everything else
// with earlier versions.
func TestWeavingSharing(t *testing.T) {
	const total = 1 << 20
	ivm, _ := NewIntervalVersionMap(total)

	full := PageRange{0, total}
	ivm.ResolveBorders(nil)
	ivm.Assign(full, 1)

	patch := PageRange{12345, 4}
	borders := Borders(total, patch)
	ivm.ResolveBorders(borders)
	ivm.Assign(patch, 2)
	nodes, err := Build(1, 2, total, patch, BorderResolver(borders),
		func(p uint64) (LeafData, error) { return LeafData{Write: 9}, nil })
	if err != nil {
		t.Fatal(err)
	}
	// 4 pages in a 2^20-page tree: at most ~2*height nodes.
	if max := 2 * TreeHeight(total); len(nodes) > max {
		t.Errorf("small patch created %d nodes, want <= %d", len(nodes), max)
	}
	// All borders must resolve to version 1.
	for _, b := range borders {
		if b.Ver != 1 {
			t.Errorf("border %v = v%d, want v1", b.Child, b.Ver)
		}
	}
}

func ExampleBuild() {
	// A 4-page blob: version 1 wrote everything, version 2 patches page 1
	// (the scenario of the paper's Figure 2b).
	const total = 4
	ivm, _ := NewIntervalVersionMap(total)
	ivm.Assign(PageRange{0, 4}, 1)

	wr := PageRange{1, 1}
	borders := Borders(total, wr)
	ivm.ResolveBorders(borders)
	ivm.Assign(wr, 2)

	nodes, _ := Build(1, 2, total, wr, BorderResolver(borders),
		func(p uint64) (LeafData, error) { return LeafData{Write: 200, RelPage: 0}, nil })
	for _, n := range nodes {
		if n.IsLeaf() {
			fmt.Printf("leaf %v -> write %d\n", n.Key.Range, n.Leaf.Write)
		} else {
			fmt.Printf("node %v children v%d,v%d\n", n.Key.Range, n.LeftVer, n.RightVer)
		}
	}
	// Output:
	// node (0,4) children v2,v1
	// node (0,2) children v1,v2
	// leaf (1,1) -> write 200
}
